// Dynamic-graph benchmark: delta-driven re-enumeration vs full re-match.
//
// A MatchService over a ~100k-edge R-MAT graph carries a few standing
// queries. Each round applies one small update batch (default 0.5% of the
// edges, half inserts / half removals) and measures both maintenance
// strategies:
//
//   delta      ApplyUpdates end to end — incremental CandidateSpace
//              maintenance plus exact delta enumeration seeded at the
//              changed edges — plus draining the subscription queues.
//   rescratch  what a static engine must do instead: materialize the new
//              snapshot and run a full DafMatch per standing query.
//
// Both run every round, so the rescratch result doubles as an oracle: the
// folded delta counts (initial matches + created - destroyed) must equal
// the fresh embedding counts exactly; any divergence is a violation and a
// nonzero exit. The report (BENCH_dynamic.json) records exact p50/p95/p99
// per side and the p50 speedup.
//
// With --persist the benchmark instead measures the durability tax: the
// same batch stream is applied to four otherwise identical services — no
// store, and a DurableStore under each fsync policy (off / interval /
// every) — and the report records per-batch apply latency for each plus
// the overhead ratio vs the in-memory baseline. The smoke gate for this
// mode requires the fsync-off WAL overhead to stay under 10%.
//
//   $ ./bench/bench_dynamic                  # 50 batches, 100k edges
//   $ ./bench/bench_dynamic --smoke          # CI gate: p50 speedup >= 5x
//   $ ./bench/bench_dynamic --batch_edges 1000 --batches 200
//   $ ./bench/bench_dynamic --persist --smoke   # WAL overhead gate < 10%
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "persist/store.h"

#include "daf/engine.h"
#include "dyn/update_batch.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/service_metrics.h"
#include "service/match_service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace daf {
namespace {

struct LatencySummary {
  double p50 = 0, p95 = 0, p99 = 0, max = 0, mean = 0;
};

LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples.size()));
    return samples[std::min(i, samples.size() - 1)];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

void WriteLatency(obs::JsonWriter& w, const LatencySummary& s) {
  w.BeginObject()
      .Key("p50_ms").Double(s.p50)
      .Key("p95_ms").Double(s.p95)
      .Key("p99_ms").Double(s.p99)
      .Key("max_ms").Double(s.max)
      .Key("mean_ms").Double(s.mean)
      .EndObject();
}

// The standing queries: small connected patterns over the generator's most
// frequent labels, so they match often enough that batches regularly
// create and destroy embeddings (Zipf labeling makes label 0 common).
std::vector<Graph> StandingQueries() {
  std::vector<Graph> queries;
  queries.push_back(Graph::FromEdges({1, 0, 2}, {{0, 1}, {1, 2}}));
  queries.push_back(
      Graph::FromEdges({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
  return queries;
}

// One small batch against the current snapshot: `size` operations, half
// removals of random existing edges, half inserts of random new pairs.
// Keeps the edge count roughly stable across a long run.
dyn::UpdateBatch MakeBatch(const Graph& snapshot, uint64_t size, Rng& rng) {
  const uint32_t n = snapshot.NumVertices();
  dyn::UpdateBatch batch;
  for (uint64_t i = 0; i < size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    auto neighbors = snapshot.Neighbors(u);
    if (neighbors.empty()) continue;
    batch.RemoveEdge(u, neighbors[rng.UniformInt(neighbors.size())]);
  }
  for (uint64_t i = 0; i < size - size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u != v && !snapshot.HasEdge(u, v)) batch.InsertEdge(u, v);
  }
  return batch;
}

/// A mkdtemp store directory removed when the phase ends.
struct TempStoreDir {
  TempStoreDir() {
    char tmpl[] = "/tmp/daf_bench_persist_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path = made != nullptr ? made : "";
  }
  ~TempStoreDir() {
    if (path.empty()) return;
    std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  std::string path;
};

struct PersistMode {
  const char* name;          // "none" or the fsync policy name
  bool durable = false;
  persist::FsyncPolicy policy = persist::FsyncPolicy::kOff;
};

/// Applies the deterministic batch stream to a service configured per
/// `mode`, returning per-batch ApplyUpdates latencies. Every mode sees the
/// identical stream (same seed, same initial graph), so the latency delta
/// is purely the durability tax.
std::vector<double> RunPersistMode(const Graph& data, const PersistMode& mode,
                                   int64_t batches, int64_t batch_edges,
                                   uint64_t seed, uint64_t* wal_bytes) {
  TempStoreDir dir;
  service::ServiceOptions options;
  options.num_workers = 1;
  if (mode.durable) {
    persist::DurableStore::Options store_options;
    store_options.fsync_policy = mode.policy;
    std::string error;
    auto store = persist::DurableStore::Open(dir.path, store_options, &error);
    if (store == nullptr) {
      std::fprintf(stderr, "persist bench: cannot open store: %s\n",
                   error.c_str());
      return {};
    }
    options.data_store = std::move(store);
  }
  Graph copy = data;
  service::MatchService service(std::move(copy), options);

  Rng rng(seed);
  std::vector<double> samples;
  std::shared_ptr<const Graph> snapshot = service.Snapshot();
  for (int64_t round = 0; round < batches; ++round) {
    dyn::UpdateBatch batch =
        MakeBatch(*snapshot, static_cast<uint64_t>(batch_edges), rng);
    Stopwatch timer;
    service::UpdateOutcome out = service.ApplyUpdates(batch);
    samples.push_back(timer.ElapsedMs());
    if (!out.ok) {
      std::fprintf(stderr, "persist bench (%s): batch %lld rejected: %s\n",
                   mode.name, static_cast<long long>(round),
                   out.error.c_str());
      return {};
    }
    snapshot = service.Snapshot();
  }
  *wal_bytes = service.Metrics().persist_wal_bytes;
  service.GracefulShutdown(/*grace_ms=*/2000);
  return samples;
}

/// The --persist benchmark: durability tax per fsync policy.
int RunPersistBench(const Graph& data, int64_t batches, int64_t batch_edges,
                    uint64_t seed, const std::string& report, bool smoke) {
  const PersistMode modes[] = {
      {"none", false, persist::FsyncPolicy::kOff},
      {"off", true, persist::FsyncPolicy::kOff},
      {"interval", true, persist::FsyncPolicy::kInterval},
      {"every", true, persist::FsyncPolicy::kEveryBatch},
  };
  LatencySummary summaries[4];
  uint64_t wal_bytes[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    std::fprintf(stderr, "persist mode %s...\n", modes[i].name);
    std::vector<double> samples = RunPersistMode(
        data, modes[i], batches, batch_edges, seed, &wal_bytes[i]);
    if (samples.empty()) return 1;
    summaries[i] = Summarize(std::move(samples));
  }
  const double base_p50 = summaries[0].p50;
  auto overhead = [&](int i) {
    return base_p50 > 0 ? summaries[i].p50 / base_p50 - 1.0 : 0.0;
  };

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("dynamic_persist");
  w.Key("config").BeginObject()
      .Key("batches").Int(batches)
      .Key("batch_edges").Int(batch_edges)
      .Key("seed").Int(static_cast<int64_t>(seed))
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("modes").BeginObject();
  for (int i = 0; i < 4; ++i) {
    w.Key(modes[i].name).BeginObject();
    w.Key("latency");
    WriteLatency(w, summaries[i]);
    w.Key("wal_bytes").Uint(wal_bytes[i]);
    if (i > 0) w.Key("p50_overhead").Double(overhead(i));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);

  std::printf(
      "bench_dynamic --persist: %lld batches of %lld ops\n"
      "  none      p50 %.3f ms (in-memory baseline)\n"
      "  off       p50 %.3f ms  (+%5.1f%%)\n"
      "  interval  p50 %.3f ms  (+%5.1f%%)\n"
      "  every     p50 %.3f ms  (+%5.1f%%)\n"
      "  report    %s\n",
      static_cast<long long>(batches), static_cast<long long>(batch_edges),
      summaries[0].p50, summaries[1].p50, 100 * overhead(1),
      summaries[2].p50, 100 * overhead(2), summaries[3].p50,
      100 * overhead(3), report.c_str());

  if (smoke && overhead(1) >= 0.10) {
    std::fprintf(stderr,
                 "persist GATE: fsync-off WAL overhead %.1f%% >= 10%% "
                 "(none %.3f ms, off %.3f ms)\n",
                 100 * overhead(1), summaries[0].p50, summaries[1].p50);
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  int64_t& rmat_scale =
      flags.Int64("rmat_scale", 15, "R-MAT vertex scale (2^scale vertices)");
  int64_t& edges = flags.Int64("edges", 100000, "data graph edges");
  int64_t& num_labels = flags.Int64("labels", 24, "vertex label count");
  int64_t& batches = flags.Int64("batches", 50, "update batches to apply");
  int64_t& batch_edges = flags.Int64(
      "batch_edges", 500, "operations per batch (<= 1% of edges)");
  int64_t& seed = flags.Int64("seed", 42, "generator seed");
  std::string& report =
      flags.String("report", "BENCH_dynamic.json", "JSON report path");
  bool& smoke = flags.Bool(
      "smoke", false,
      "CI mode: fewer batches; exit nonzero unless delta beats rescratch "
      "by >= 5x p50 and every oracle check passes");
  bool& persist = flags.Bool(
      "persist", false,
      "measure the durability tax instead: per-batch apply latency with no "
      "store vs a WAL under each fsync policy (smoke gate: fsync-off "
      "overhead < 10%)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (smoke) batches = std::min<int64_t>(batches, 12);

  Rng rng(static_cast<uint64_t>(seed));
  std::fprintf(stderr, "synthesizing R-MAT graph (scale %lld, %lld edges)\n",
               static_cast<long long>(rmat_scale),
               static_cast<long long>(edges));
  const uint32_t n = 1u << static_cast<uint32_t>(rmat_scale);
  std::vector<Edge> data_edges =
      RmatEdges(static_cast<uint32_t>(rmat_scale),
                static_cast<uint64_t>(edges), 0.57, 0.19, 0.19, rng);
  ConnectComponents(n, &data_edges, rng);
  Graph data = Graph::FromEdges(
      ZipfLabels(n, static_cast<uint32_t>(num_labels), 0.7, rng),
      data_edges);
  std::fprintf(stderr, "data: %u vertices, %llu edges\n", data.NumVertices(),
               static_cast<unsigned long long>(data.NumEdges()));

  if (persist) {
    if (report == "BENCH_dynamic.json") report = "BENCH_dynamic_persist.json";
    return RunPersistBench(data, batches, batch_edges,
                           static_cast<uint64_t>(seed), report, smoke);
  }

  service::ServiceOptions options;
  options.num_workers = 1;  // updates and matching are measured inline
  service::MatchService service(std::move(data), options);

  const std::vector<Graph> queries = StandingQueries();
  std::vector<service::SubscriptionHandle> subs;
  std::vector<int64_t> live;  // folded embedding count per standing query
  for (const Graph& q : queries) {
    service::QueryJob job;
    job.query = q;
    subs.push_back(service.Subscribe(std::move(job)));
    if (!subs.back().ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   subs.back().error().c_str());
      return 1;
    }
    MatchResult r = DafMatch(q, *service.Snapshot(), {});
    if (!r.ok) {
      std::fprintf(stderr, "initial match failed: %s\n", r.error.c_str());
      return 1;
    }
    live.push_back(static_cast<int64_t>(r.embeddings));
  }

  std::fprintf(stderr,
               "applying %lld batches of %lld ops (%.2f%% of edges)...\n",
               static_cast<long long>(batches),
               static_cast<long long>(batch_edges),
               100.0 * static_cast<double>(batch_edges) /
                   static_cast<double>(edges));
  int violations = 0;
  uint64_t deltas_streamed = 0;
  std::vector<double> delta_ms, rescratch_ms;
  std::shared_ptr<const Graph> snapshot = service.Snapshot();
  for (int64_t round = 0; round < batches; ++round) {
    dyn::UpdateBatch batch = MakeBatch(
        *snapshot, static_cast<uint64_t>(batch_edges), rng);

    // The delta path: apply + maintain + enumerate + drain.
    Stopwatch delta_timer;
    service::UpdateOutcome out = service.ApplyUpdates(batch);
    if (!out.ok) {
      std::fprintf(stderr, "batch %lld rejected: %s\n",
                   static_cast<long long>(round), out.error.c_str());
      return 1;
    }
    for (size_t s = 0; s < subs.size(); ++s) {
      for (service::DeltaBatch& db : subs[s].Drain()) {
        if (db.resync) {
          ++violations;
          std::fprintf(stderr, "VIOLATION: unexpected resync (round %lld)\n",
                       static_cast<long long>(round));
          continue;
        }
        for (const service::EmbeddingDelta& d : db.deltas) {
          live[s] += d.created ? 1 : -1;
          ++deltas_streamed;
        }
      }
    }
    delta_ms.push_back(delta_timer.ElapsedMs());

    // The rescratch baseline — and the oracle for the folded counts.
    Stopwatch rescratch_timer;
    snapshot = service.Snapshot();
    for (size_t s = 0; s < queries.size(); ++s) {
      MatchResult r = DafMatch(queries[s], *snapshot, {});
      if (!r.ok || static_cast<int64_t>(r.embeddings) != live[s]) {
        ++violations;
        std::fprintf(
            stderr,
            "VIOLATION: query %zu round %lld: folded %lld != fresh %llu\n",
            s, static_cast<long long>(round),
            static_cast<long long>(live[s]),
            static_cast<unsigned long long>(r.embeddings));
      }
    }
    rescratch_ms.push_back(rescratch_timer.ElapsedMs());
  }

  const LatencySummary delta_lat = Summarize(delta_ms);
  const LatencySummary rescratch_lat = Summarize(rescratch_ms);
  const double p50_speedup =
      delta_lat.p50 > 0 ? rescratch_lat.p50 / delta_lat.p50 : 0.0;
  obs::ServiceMetricsSnapshot metrics = service.Metrics();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("dynamic");
  w.Key("config").BeginObject()
      .Key("rmat_scale").Int(rmat_scale)
      .Key("edges").Int(edges)
      .Key("labels").Int(num_labels)
      .Key("batches").Int(batches)
      .Key("batch_edges").Int(batch_edges)
      .Key("batch_fraction")
      .Double(static_cast<double>(batch_edges) /
              static_cast<double>(edges))
      .Key("standing_queries").Uint(queries.size())
      .Key("seed").Int(seed)
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("latency_delta");
  WriteLatency(w, delta_lat);
  w.Key("latency_rescratch");
  WriteLatency(w, rescratch_lat);
  w.Key("p50_speedup").Double(p50_speedup);
  w.Key("deltas_streamed").Uint(deltas_streamed);
  w.Key("violations").Int(violations);
  w.Key("service_metrics");
  obs::WriteServiceMetrics(w, metrics);
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);

  std::printf(
      "bench_dynamic: %lld batches of %lld ops over %llu edges\n"
      "  delta      p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      "  rescratch  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      "  p50 speedup %.1fx, %llu deltas streamed, %llu incremental / "
      "%llu rebuilds\n"
      "  oracle     %d violation(s)\n"
      "  report     %s\n",
      static_cast<long long>(batches),
      static_cast<long long>(batch_edges),
      static_cast<unsigned long long>(snapshot->NumEdges()), delta_lat.p50,
      delta_lat.p95, delta_lat.p99, rescratch_lat.p50, rescratch_lat.p95,
      rescratch_lat.p99, p50_speedup,
      static_cast<unsigned long long>(deltas_streamed),
      static_cast<unsigned long long>(metrics.dyn_cs_incremental),
      static_cast<unsigned long long>(metrics.dyn_cs_rebuilds), violations,
      report.c_str());

  if (violations > 0) return 1;
  if (smoke && p50_speedup < 5.0) {
    std::fprintf(stderr,
                 "dynamic GATE: p50 speedup %.2fx < 5x (delta %.3f ms, "
                 "rescratch %.3f ms)\n",
                 p50_speedup, delta_lat.p50, rescratch_lat.p50);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace daf

int main(int argc, char** argv) { return daf::Run(argc, argv); }

// Dynamic-graph benchmark: delta-driven re-enumeration vs full re-match.
//
// A MatchService over a ~100k-edge R-MAT graph carries a few standing
// queries. Each round applies one small update batch (default 0.5% of the
// edges, half inserts / half removals) and measures both maintenance
// strategies:
//
//   delta      ApplyUpdates end to end — incremental CandidateSpace
//              maintenance plus exact delta enumeration seeded at the
//              changed edges — plus draining the subscription queues.
//   rescratch  what a static engine must do instead: materialize the new
//              snapshot and run a full DafMatch per standing query.
//
// Both run every round, so the rescratch result doubles as an oracle: the
// folded delta counts (initial matches + created - destroyed) must equal
// the fresh embedding counts exactly; any divergence is a violation and a
// nonzero exit. The report (BENCH_dynamic.json) records exact p50/p95/p99
// per side and the p50 speedup.
//
//   $ ./bench/bench_dynamic                  # 50 batches, 100k edges
//   $ ./bench/bench_dynamic --smoke          # CI gate: p50 speedup >= 5x
//   $ ./bench/bench_dynamic --batch_edges 1000 --batches 200
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "dyn/update_batch.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/service_metrics.h"
#include "service/match_service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace daf {
namespace {

struct LatencySummary {
  double p50 = 0, p95 = 0, p99 = 0, max = 0, mean = 0;
};

LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples.size()));
    return samples[std::min(i, samples.size() - 1)];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

void WriteLatency(obs::JsonWriter& w, const LatencySummary& s) {
  w.BeginObject()
      .Key("p50_ms").Double(s.p50)
      .Key("p95_ms").Double(s.p95)
      .Key("p99_ms").Double(s.p99)
      .Key("max_ms").Double(s.max)
      .Key("mean_ms").Double(s.mean)
      .EndObject();
}

// The standing queries: small connected patterns over the generator's most
// frequent labels, so they match often enough that batches regularly
// create and destroy embeddings (Zipf labeling makes label 0 common).
std::vector<Graph> StandingQueries() {
  std::vector<Graph> queries;
  queries.push_back(Graph::FromEdges({1, 0, 2}, {{0, 1}, {1, 2}}));
  queries.push_back(
      Graph::FromEdges({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
  return queries;
}

// One small batch against the current snapshot: `size` operations, half
// removals of random existing edges, half inserts of random new pairs.
// Keeps the edge count roughly stable across a long run.
dyn::UpdateBatch MakeBatch(const Graph& snapshot, uint64_t size, Rng& rng) {
  const uint32_t n = snapshot.NumVertices();
  dyn::UpdateBatch batch;
  for (uint64_t i = 0; i < size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    auto neighbors = snapshot.Neighbors(u);
    if (neighbors.empty()) continue;
    batch.RemoveEdge(u, neighbors[rng.UniformInt(neighbors.size())]);
  }
  for (uint64_t i = 0; i < size - size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u != v && !snapshot.HasEdge(u, v)) batch.InsertEdge(u, v);
  }
  return batch;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  int64_t& rmat_scale =
      flags.Int64("rmat_scale", 15, "R-MAT vertex scale (2^scale vertices)");
  int64_t& edges = flags.Int64("edges", 100000, "data graph edges");
  int64_t& num_labels = flags.Int64("labels", 24, "vertex label count");
  int64_t& batches = flags.Int64("batches", 50, "update batches to apply");
  int64_t& batch_edges = flags.Int64(
      "batch_edges", 500, "operations per batch (<= 1% of edges)");
  int64_t& seed = flags.Int64("seed", 42, "generator seed");
  std::string& report =
      flags.String("report", "BENCH_dynamic.json", "JSON report path");
  bool& smoke = flags.Bool(
      "smoke", false,
      "CI mode: fewer batches; exit nonzero unless delta beats rescratch "
      "by >= 5x p50 and every oracle check passes");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (smoke) batches = std::min<int64_t>(batches, 12);

  Rng rng(static_cast<uint64_t>(seed));
  std::fprintf(stderr, "synthesizing R-MAT graph (scale %lld, %lld edges)\n",
               static_cast<long long>(rmat_scale),
               static_cast<long long>(edges));
  const uint32_t n = 1u << static_cast<uint32_t>(rmat_scale);
  std::vector<Edge> data_edges =
      RmatEdges(static_cast<uint32_t>(rmat_scale),
                static_cast<uint64_t>(edges), 0.57, 0.19, 0.19, rng);
  ConnectComponents(n, &data_edges, rng);
  Graph data = Graph::FromEdges(
      ZipfLabels(n, static_cast<uint32_t>(num_labels), 0.7, rng),
      data_edges);
  std::fprintf(stderr, "data: %u vertices, %llu edges\n", data.NumVertices(),
               static_cast<unsigned long long>(data.NumEdges()));

  service::ServiceOptions options;
  options.num_workers = 1;  // updates and matching are measured inline
  service::MatchService service(std::move(data), options);

  const std::vector<Graph> queries = StandingQueries();
  std::vector<service::SubscriptionHandle> subs;
  std::vector<int64_t> live;  // folded embedding count per standing query
  for (const Graph& q : queries) {
    service::QueryJob job;
    job.query = q;
    subs.push_back(service.Subscribe(std::move(job)));
    if (!subs.back().ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   subs.back().error().c_str());
      return 1;
    }
    MatchResult r = DafMatch(q, *service.Snapshot(), {});
    if (!r.ok) {
      std::fprintf(stderr, "initial match failed: %s\n", r.error.c_str());
      return 1;
    }
    live.push_back(static_cast<int64_t>(r.embeddings));
  }

  std::fprintf(stderr,
               "applying %lld batches of %lld ops (%.2f%% of edges)...\n",
               static_cast<long long>(batches),
               static_cast<long long>(batch_edges),
               100.0 * static_cast<double>(batch_edges) /
                   static_cast<double>(edges));
  int violations = 0;
  uint64_t deltas_streamed = 0;
  std::vector<double> delta_ms, rescratch_ms;
  std::shared_ptr<const Graph> snapshot = service.Snapshot();
  for (int64_t round = 0; round < batches; ++round) {
    dyn::UpdateBatch batch = MakeBatch(
        *snapshot, static_cast<uint64_t>(batch_edges), rng);

    // The delta path: apply + maintain + enumerate + drain.
    Stopwatch delta_timer;
    service::UpdateOutcome out = service.ApplyUpdates(batch);
    if (!out.ok) {
      std::fprintf(stderr, "batch %lld rejected: %s\n",
                   static_cast<long long>(round), out.error.c_str());
      return 1;
    }
    for (size_t s = 0; s < subs.size(); ++s) {
      for (service::DeltaBatch& db : subs[s].Drain()) {
        if (db.resync) {
          ++violations;
          std::fprintf(stderr, "VIOLATION: unexpected resync (round %lld)\n",
                       static_cast<long long>(round));
          continue;
        }
        for (const service::EmbeddingDelta& d : db.deltas) {
          live[s] += d.created ? 1 : -1;
          ++deltas_streamed;
        }
      }
    }
    delta_ms.push_back(delta_timer.ElapsedMs());

    // The rescratch baseline — and the oracle for the folded counts.
    Stopwatch rescratch_timer;
    snapshot = service.Snapshot();
    for (size_t s = 0; s < queries.size(); ++s) {
      MatchResult r = DafMatch(queries[s], *snapshot, {});
      if (!r.ok || static_cast<int64_t>(r.embeddings) != live[s]) {
        ++violations;
        std::fprintf(
            stderr,
            "VIOLATION: query %zu round %lld: folded %lld != fresh %llu\n",
            s, static_cast<long long>(round),
            static_cast<long long>(live[s]),
            static_cast<unsigned long long>(r.embeddings));
      }
    }
    rescratch_ms.push_back(rescratch_timer.ElapsedMs());
  }

  const LatencySummary delta_lat = Summarize(delta_ms);
  const LatencySummary rescratch_lat = Summarize(rescratch_ms);
  const double p50_speedup =
      delta_lat.p50 > 0 ? rescratch_lat.p50 / delta_lat.p50 : 0.0;
  obs::ServiceMetricsSnapshot metrics = service.Metrics();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("dynamic");
  w.Key("config").BeginObject()
      .Key("rmat_scale").Int(rmat_scale)
      .Key("edges").Int(edges)
      .Key("labels").Int(num_labels)
      .Key("batches").Int(batches)
      .Key("batch_edges").Int(batch_edges)
      .Key("batch_fraction")
      .Double(static_cast<double>(batch_edges) /
              static_cast<double>(edges))
      .Key("standing_queries").Uint(queries.size())
      .Key("seed").Int(seed)
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("latency_delta");
  WriteLatency(w, delta_lat);
  w.Key("latency_rescratch");
  WriteLatency(w, rescratch_lat);
  w.Key("p50_speedup").Double(p50_speedup);
  w.Key("deltas_streamed").Uint(deltas_streamed);
  w.Key("violations").Int(violations);
  w.Key("service_metrics");
  obs::WriteServiceMetrics(w, metrics);
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);

  std::printf(
      "bench_dynamic: %lld batches of %lld ops over %llu edges\n"
      "  delta      p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      "  rescratch  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      "  p50 speedup %.1fx, %llu deltas streamed, %llu incremental / "
      "%llu rebuilds\n"
      "  oracle     %d violation(s)\n"
      "  report     %s\n",
      static_cast<long long>(batches),
      static_cast<long long>(batch_edges),
      static_cast<unsigned long long>(snapshot->NumEdges()), delta_lat.p50,
      delta_lat.p95, delta_lat.p99, rescratch_lat.p50, rescratch_lat.p95,
      rescratch_lat.p99, p50_speedup,
      static_cast<unsigned long long>(deltas_streamed),
      static_cast<unsigned long long>(metrics.dyn_cs_incremental),
      static_cast<unsigned long long>(metrics.dyn_cs_rebuilds), violations,
      report.c_str());

  if (violations > 0) return 1;
  if (smoke && p50_speedup < 5.0) {
    std::fprintf(stderr,
                 "dynamic GATE: p50 speedup %.2fx < 5x (delta %.3f ms, "
                 "rescratch %.3f ms)\n",
                 p50_speedup, delta_lat.p50, rescratch_lat.p50);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace daf

int main(int argc, char** argv) { return daf::Run(argc, argv); }

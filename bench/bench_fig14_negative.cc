// Regenerates Figure 14 (Appendix A.3): DAF's behavior on negative queries
// generated from Human's Q20N set by (a) randomly changing 1..10 vertex
// labels and (b) adding random edges (up to the complete graph "C").
// Reports, per perturbation level: #positive / #negative / #unsolved,
// #negatives whose CS size is 0 (negativity certified with zero search),
// the average elapsed time of positives vs negatives (split by CS=0), and
// the average CS size. Expected shape: label changes quickly drive most
// negatives to CS=0 (time collapses); edge additions saturate instead.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/negative.h"

namespace daf::bench {
namespace {

struct LevelStats {
  int positive = 0;
  int negative = 0;
  int negative_cs_zero = 0;
  int unsolved = 0;
  double positive_ms = 0;
  double negative_ms = 0;          // all negatives
  double negative_nonzero_ms = 0;  // negatives with CS size > 0
  double cs_size = 0;
  int total = 0;
};

void PrintLevel(const char* family, const std::string& level,
                const LevelStats& s) {
  int solved = s.positive + s.negative;
  std::printf("%-8s%-8s%6d%6d%10d%10d%12.2f%12.2f%14.2f%12.0f\n", family,
              level.c_str(), s.positive, s.negative, s.negative_cs_zero,
              s.unsolved, s.positive > 0 ? s.positive_ms / s.positive : 0.0,
              s.negative > 0 ? s.negative_ms / s.negative : 0.0,
              (s.negative - s.negative_cs_zero) > 0
                  ? s.negative_nonzero_ms / (s.negative - s.negative_cs_zero)
                  : 0.0,
              solved > 0 ? s.cs_size / solved : 0.0);
}

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  Graph data = BuildDataset(workload::DatasetId::kHuman, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 6421);
  workload::QuerySet base = workload::MakeQuerySet(
      data, 20, /*sparse=*/false, static_cast<uint32_t>(common.queries), rng);
  std::printf(
      "== Figure 14: negative queries (Human, Q20N perturbations) ==\n");
  std::printf("%-8s%-8s%6s%6s%10s%10s%12s%12s%14s%12s\n", "Family", "Level",
              "pos", "neg", "neg_cs0", "unsolv", "pos_ms", "neg_ms",
              "neg_cs>0_ms", "avg_cs");

  auto evaluate = [&](const char* family, const std::string& level,
                      const std::vector<Graph>& queries) {
    LevelStats stats;
    for (const Graph& q : queries) {
      MatchOptions opts;
      opts.limit = static_cast<uint64_t>(common.k);
      opts.time_limit_ms = static_cast<uint64_t>(common.timeout_ms);
      MatchResult r = DafMatch(q, data, opts);
      ++stats.total;
      if (!r.ok || r.timed_out) {
        ++stats.unsolved;
        continue;
      }
      double ms = r.preprocess_ms + r.search_ms;
      stats.cs_size += static_cast<double>(r.cs_candidates);
      if (r.embeddings > 0) {
        ++stats.positive;
        stats.positive_ms += ms;
      } else {
        ++stats.negative;
        stats.negative_ms += ms;
        if (r.cs_certified_negative) {
          ++stats.negative_cs_zero;
        } else {
          stats.negative_nonzero_ms += ms;
        }
      }
    }
    PrintLevel(family, level, stats);
  };

  // (a) Change 1..10 labels.
  for (uint32_t changes : {1u, 2u, 4u, 6u, 8u, 10u}) {
    std::vector<Graph> perturbed;
    for (const Graph& q : base.queries) {
      perturbed.push_back(workload::PerturbLabels(q, data, changes, rng));
    }
    evaluate("labels", std::to_string(changes), perturbed);
  }
  // (b) Add random edges; "C" completes the query graph.
  for (uint32_t extra : {1u, 3u, 10u, 30u, 100u}) {
    std::vector<Graph> perturbed;
    for (const Graph& q : base.queries) {
      perturbed.push_back(workload::AddRandomEdges(q, extra, rng));
    }
    evaluate("edges", std::to_string(extra), perturbed);
  }
  {
    std::vector<Graph> complete;
    for (const Graph& q : base.queries) {
      complete.push_back(workload::AddRandomEdges(q, 1u << 30, rng));
    }
    evaluate("edges", "C", complete);
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

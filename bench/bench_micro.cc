// Micro-benchmarks (google-benchmark) of the core primitives: graph
// accessors, DAG construction, CS construction (DAG-graph DP), weight-array
// DP, vertex-equivalence computation, and the backtracking throughput.
// The *Warm variants run through a reused MatchContext (arena + scratch),
// measuring the steady-state path long-lived callers hit; the plain
// variants pay cold per-call allocation. `--smoke` runs every benchmark for
// a token duration (CI: "does every benchmark still run?").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "daf/boost.h"
#include "graph/io.h"
#include "obs/json.h"
#include "daf/candidate_space.h"
#include "daf/engine.h"
#include "daf/match_context.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "graph/query_extract.h"
#include "util/intersect.h"
#include "util/stop.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace daf::bench {
namespace {

const Graph& YeastData() {
  static const Graph* data = new Graph(
      workload::MakeDataset(workload::DatasetId::kYeast, 0.5, 1));
  return *data;
}

const Graph& YeastQuery(uint32_t size) {
  static std::map<uint32_t, Graph>* cache = new std::map<uint32_t, Graph>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    Rng rng(42 + size);
    auto extracted = ExtractRandomWalkQuery(YeastData(), size, -1.0, rng);
    it = cache->emplace(size, extracted->query).first;
  }
  return it->second;
}

void BM_HasEdge(benchmark::State& state) {
  const Graph& g = YeastData();
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.UniformInt(g.NumVertices())),
                       static_cast<VertexId>(rng.UniformInt(g.NumVertices())));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(g.HasEdge(u, v));
  }
}
BENCHMARK(BM_HasEdge);

void BM_NeighborsWithLabel(benchmark::State& state) {
  const Graph& g = YeastData();
  Rng rng(8);
  size_t i = 0;
  std::vector<std::pair<VertexId, Label>> probes;
  for (int k = 0; k < 1024; ++k) {
    probes.emplace_back(static_cast<VertexId>(rng.UniformInt(g.NumVertices())),
                        static_cast<Label>(rng.UniformInt(g.NumLabels())));
  }
  for (auto _ : state) {
    const auto& [v, l] = probes[i++ & 1023];
    benchmark::DoNotOptimize(g.NeighborsWithLabel(v, l).size());
  }
}
BENCHMARK(BM_NeighborsWithLabel);

void BM_BuildQueryDag(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    QueryDag dag = QueryDag::Build(query, data);
    benchmark::DoNotOptimize(dag.root());
  }
}
BENCHMARK(BM_BuildQueryDag)->Arg(20)->Arg(50)->Arg(100);

void BM_BuildCandidateSpace(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  for (auto _ : state) {
    CandidateSpace cs = CandidateSpace::Build(query, dag, data);
    benchmark::DoNotOptimize(cs.TotalCandidates());
  }
}
BENCHMARK(BM_BuildCandidateSpace)->Arg(20)->Arg(50)->Arg(100);

void BM_BuildCandidateSpaceWarm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  MatchContext context;
  for (auto _ : state) {
    context.arena().Reset();
    CandidateSpace cs = CandidateSpace::Build(
        query, dag, data, {}, &context.arena(), &context.cs_scratch());
    benchmark::DoNotOptimize(cs.TotalCandidates());
  }
  state.counters["arena_kb"] = benchmark::Counter(
      static_cast<double>(context.arena_stats().capacity_bytes) / 1024.0);
}
BENCHMARK(BM_BuildCandidateSpaceWarm)->Arg(20)->Arg(50)->Arg(100);

void BM_WeightArray(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  for (auto _ : state) {
    WeightArray w = WeightArray::Compute(dag, cs);
    benchmark::DoNotOptimize(w.Weight(dag.root(), 0));
  }
}
BENCHMARK(BM_WeightArray)->Arg(20)->Arg(50)->Arg(100);

void BM_WeightArrayWarm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  Arena arena;  // reset per iteration: the weight array alone cycles in it
  for (auto _ : state) {
    arena.Reset();
    WeightArray w = WeightArray::Compute(dag, cs, &arena);
    benchmark::DoNotOptimize(w.Weight(dag.root(), 0));
  }
}
BENCHMARK(BM_WeightArrayWarm)->Arg(20)->Arg(50)->Arg(100);

void BM_DafMatchFirst1000(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  MatchOptions opts;
  opts.limit = 1000;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DafMatchFirst1000)->Arg(20)->Arg(50);

void BM_DafMatchFirst1000Warm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  MatchOptions opts;
  opts.limit = 1000;
  MatchContext context;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts, &context);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
  state.counters["arena_kb"] = benchmark::Counter(
      static_cast<double>(context.arena_stats().capacity_bytes) / 1024.0);
}
BENCHMARK(BM_DafMatchFirst1000Warm)->Arg(20)->Arg(50);

void BM_DafMatchStopConditionArmed(benchmark::State& state) {
  // Same workload as BM_DafMatchFirst1000Warm but with an armed (never
  // firing) CancelToken + deadline: compares against the Warm variant to
  // put a number on the StopCondition poll folded into the search loop's
  // every-4096-calls cadence. Expected to be within noise.
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  CancelToken cancel;
  MatchOptions opts;
  opts.limit = 1000;
  opts.time_limit_ms = 600000;
  opts.cancel = &cancel;
  MatchContext context;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts, &context);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DafMatchStopConditionArmed)->Arg(20)->Arg(50);

void BM_StopConditionCheck(benchmark::State& state) {
  // The raw cost of one StopCondition::Check (atomic load + clock read),
  // i.e. what each 4096-call poll window pays.
  CancelToken cancel;
  Deadline deadline(600000);
  StopCondition stop(&deadline, &cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stop.Check());
  }
}
BENCHMARK(BM_StopConditionCheck);

// Sorted-set intersection kernels — the inner loop of
// ComputeExtendableCandidates (Definition 5.2). Args are {small side size,
// large/small ratio}; IntersectSorted switches from the merge scan to
// galloping (branchless binary probes into the long side) past a 32x ratio,
// which is exactly the skewed shape CS adjacency lists produce when one
// parent is much more selective than the other.
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> IntersectInput(
    size_t small_n, size_t ratio) {
  Rng rng(1234 + small_n * 31 + ratio);
  const uint64_t universe = static_cast<uint64_t>(small_n) * ratio * 2 + 1;
  auto make_sorted = [&](size_t n) {
    std::vector<uint32_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.UniformInt(universe)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  return {make_sorted(small_n), make_sorted(small_n * ratio)};
}

void BM_IntersectMergeScan(benchmark::State& state) {
  auto [small, large] = IntersectInput(static_cast<size_t>(state.range(0)),
                                       static_cast<size_t>(state.range(1)));
  std::vector<uint32_t> out;
  out.reserve(small.size());
  for (auto _ : state) {
    out.clear();
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(out));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IntersectMergeScan)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Args({64, 1024});

void BM_IntersectSorted(benchmark::State& state) {
  auto [small, large] = IntersectInput(static_cast<size_t>(state.range(0)),
                                       static_cast<size_t>(state.range(1)));
  std::vector<uint32_t> out;
  out.reserve(small.size());
  for (auto _ : state) {
    IntersectSorted(small.data(), small.size(), large.data(), large.size(),
                    &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IntersectSorted)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Args({64, 1024});

void BM_VertexEquivalence(benchmark::State& state) {
  const Graph& data = YeastData();
  for (auto _ : state) {
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    benchmark::DoNotOptimize(eq.NumClasses());
  }
}
BENCHMARK(BM_VertexEquivalence);

void BM_LoadGraphText(benchmark::State& state) {
  const Graph& data = YeastData();
  const std::string path = "/tmp/daf_bench_graph.txt";
  std::string error;
  SaveGraph(data, path, &error);
  for (auto _ : state) {
    auto g = LoadGraph(path, &error);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_LoadGraphText);

void BM_LoadGraphBinary(benchmark::State& state) {
  const Graph& data = YeastData();
  std::string path = "/tmp/daf_bench_graph.dafg";
  std::string error;
  SaveGraphBinary(data, path, &error);
  for (auto _ : state) {
    auto g = LoadGraphBinary(path, &error);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_LoadGraphBinary);

}  // namespace

// ---------------------------------------------------------------------------
// Intersection kernel matrix: every kernel (merge, gallop, SSE, AVX2,
// bitmap, dispatch) timed over a (size-ratio x density) grid, written to
// BENCH_micro.json. In --smoke mode the matrix doubles as a perf gate: the
// best SIMD kernel must not lose to the scalar merge on the dense
// comparable-size shape, and the dispatcher must stay within generous slack
// of the best hand-picked kernel everywhere (i.e. its heuristics never pick
// a disastrous kernel).
// ---------------------------------------------------------------------------

// `n` sorted unique values spread over [0, universe) with average gap
// universe/n — density is n/universe by construction (the list may come up
// a few elements short when the random gaps overshoot; actual sizes are
// what get reported).
std::vector<uint32_t> DensityControlledList(Rng& rng, size_t n,
                                            uint64_t universe) {
  std::vector<uint32_t> v;
  v.reserve(n);
  const uint64_t step = std::max<uint64_t>(1, universe / n);
  uint64_t value = rng.UniformInt(step);
  while (v.size() < n && value < universe) {
    v.push_back(static_cast<uint32_t>(value));
    value += 1 + rng.UniformInt(std::max<uint64_t>(1, 2 * step - 1));
  }
  return v;
}

// Runs `f` (returning a checksum) in timed batches of at least `min_ms`
// wall time and reports nanoseconds per call. Takes the fastest of three
// batches: on a shared core a preempted batch reads several times slower
// than the true cost, and the minimum filters those spikes where a mean
// would absorb them (the gate compares cells, so spikes mean flakes).
template <typename F>
double NsPerOp(F&& f, double min_ms) {
  f();  // warm caches and page in the inputs
  auto timed_ms = [&](size_t iters) {
    const auto t0 = std::chrono::steady_clock::now();
    size_t sink = 0;
    for (size_t i = 0; i < iters; ++i) sink += f();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  size_t iters = 1;
  double ms = timed_ms(iters);
  while (ms < min_ms && iters < (size_t{1} << 24)) {
    iters *= 4;
    ms = timed_ms(iters);
  }
  for (int rep = 0; rep < 2; ++rep) ms = std::min(ms, timed_ms(iters));
  return ms * 1e6 / static_cast<double>(iters);
}

int RunKernelMatrix(bool smoke) {
  // Smoke windows are short but not token: the gate compares timings, so
  // each cell needs enough wall time to ride out scheduler noise on a
  // shared CI core.
  const double min_ms = smoke ? 2.0 : 20.0;
  struct Shape {
    size_t small_n;
    size_t ratio;             // large_n = small_n * ratio
    uint32_t density_permille;  // large-side density over the universe
  };
  const Shape shapes[] = {
      {256, 1, 20},  {256, 1, 200},  {256, 1, 500},
      {256, 4, 20},  {256, 4, 200},  {256, 4, 500},
      {256, 32, 20}, {256, 32, 200}, {256, 32, 500},
      {64, 256, 20}, {64, 256, 200}, {64, 256, 500},
  };
  const SimdLevel level = DetectedSimdLevel();
  const char* level_name = level == SimdLevel::kAvx2  ? "avx2"
                           : level == SimdLevel::kSse ? "sse"
                                                      : "none";

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_intersect_kernels");
  w.Key("simd_level").String(level_name);
  w.Key("smoke").Bool(smoke);
  w.Key("rows").BeginArray();

  bool gate_ok = true;
  std::string gate_log;
  double dense_eq_merge_ns = -1.0;
  double dense_eq_simd_ns = -1.0;

  for (const Shape& shape : shapes) {
    const size_t large_n = shape.small_n * shape.ratio;
    const uint64_t universe = std::max<uint64_t>(
        large_n + 1, large_n * 1000 / shape.density_permille);
    Rng rng(9000 + shape.small_n * 131 + shape.ratio * 7 +
            shape.density_permille);
    const std::vector<uint32_t> small =
        DensityControlledList(rng, shape.small_n, universe);
    const std::vector<uint32_t> large =
        DensityControlledList(rng, large_n, universe);
    const size_t na = small.size(), nb = large.size();
    std::vector<uint32_t> out(std::min(na, nb) + kIntersectOutPad);
    BitmapScratch bitmap_scratch;
    const uint32_t* lists[2] = {small.data(), large.data()};
    const size_t sizes[2] = {na, nb};

    struct Timing {
      const char* kernel;
      double ns;
    };
    std::vector<Timing> timings;
    timings.push_back({"merge", NsPerOp(
        [&] { return IntersectMergeKernel(small.data(), na, large.data(), nb,
                                          out.data()); },
        min_ms)});
    timings.push_back({"gallop", NsPerOp(
        [&] { return IntersectGallopKernel(small.data(), na, large.data(), nb,
                                           out.data()); },
        min_ms)});
    if (intersect_internal::CpuSupportsSse()) {
      timings.push_back({"sse", NsPerOp(
          [&] {
            return intersect_internal::IntersectSseKernel(
                small.data(), na, large.data(), nb, out.data());
          },
          min_ms)});
    }
    if (intersect_internal::CpuSupportsAvx2()) {
      timings.push_back({"avx2", NsPerOp(
          [&] {
            return intersect_internal::IntersectAvx2Kernel(
                small.data(), na, large.data(), nb, out.data());
          },
          min_ms)});
    }
    timings.push_back({"bitmap", NsPerOp(
        [&] {
          return IntersectBitmapKernel(lists, sizes, 2,
                                       static_cast<uint32_t>(universe),
                                       &bitmap_scratch, out.data());
        },
        min_ms)});
    timings.push_back({"dispatch", NsPerOp(
        [&] {
          return IntersectDispatch(small.data(), na, large.data(), nb,
                                   out.data());
        },
        min_ms)});

    double merge_ns = 0, gallop_ns = 0, dispatch_ns = 0;
    double best_simd_ns = -1.0;
    for (const Timing& t : timings) {
      w.BeginObject();
      w.Key("kernel").String(t.kernel);
      w.Key("small_n").Uint(na);
      w.Key("large_n").Uint(nb);
      w.Key("ratio").Uint(shape.ratio);
      w.Key("density_permille").Uint(shape.density_permille);
      w.Key("universe").Uint(universe);
      w.Key("ns_per_op").Double(t.ns);
      w.EndObject();
      const std::string_view name = t.kernel;
      if (name == "merge") merge_ns = t.ns;
      if (name == "gallop") gallop_ns = t.ns;
      if (name == "dispatch") dispatch_ns = t.ns;
      if (name == "sse" || name == "avx2") {
        if (best_simd_ns < 0 || t.ns < best_simd_ns) best_simd_ns = t.ns;
      }
    }

    // Gate 1 input: the dense comparable-size shape the SIMD kernels exist
    // for (the dense-CS-segment regime of ComputeExtendableCandidates).
    // Re-measured like the parity gate when the first reading looks like a
    // loss — only a reproducible loss should fail CI.
    if (shape.ratio == 1 && shape.density_permille == 500) {
      for (int attempt = 0;
           attempt < 2 && level == SimdLevel::kAvx2 && best_simd_ns >= 0 &&
           best_simd_ns > merge_ns * 1.05;
           ++attempt) {
        merge_ns = NsPerOp(
            [&] {
              return IntersectMergeKernel(small.data(), na, large.data(), nb,
                                          out.data());
            },
            min_ms);
        best_simd_ns = NsPerOp(
            [&] {
              return intersect_internal::IntersectAvx2Kernel(
                  small.data(), na, large.data(), nb, out.data());
            },
            min_ms);
      }
      dense_eq_merge_ns = merge_ns;
      dense_eq_simd_ns = best_simd_ns;
    }
    // Gate 2: the dispatcher must track the best baseline kernel within
    // generous slack on every shape (timing noise plus a flat floor for
    // the dispatch branch itself).
    // 1.75x: wide enough for boundary shapes (at exactly kGallopRatio the
    // dispatcher legitimately picks merge while standalone gallop edges it
    // out) plus shared-runner noise; a wrong-regime pick shows up as 3-10x.
    // A failing shape is re-measured before it fails the gate: one long
    // preemption on a shared core can poison a whole cell, and only a
    // *reproducible* loss is a regression.
    auto parity_holds = [&] {
      return dispatch_ns <= std::min(merge_ns, gallop_ns) * 1.75 + 200.0;
    };
    for (int attempt = 0; attempt < 2 && !parity_holds(); ++attempt) {
      merge_ns = NsPerOp(
          [&] {
            return IntersectMergeKernel(small.data(), na, large.data(), nb,
                                        out.data());
          },
          min_ms);
      gallop_ns = NsPerOp(
          [&] {
            return IntersectGallopKernel(small.data(), na, large.data(), nb,
                                         out.data());
          },
          min_ms);
      dispatch_ns = NsPerOp(
          [&] {
            return IntersectDispatch(small.data(), na, large.data(), nb,
                                     out.data());
          },
          min_ms);
    }
    if (!parity_holds()) {
      gate_ok = false;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "dispatch %.0fns vs best baseline %.0fns at "
                    "ratio=%zu density=%u; ",
                    dispatch_ns, std::min(merge_ns, gallop_ns), shape.ratio,
                    shape.density_permille);
      gate_log += buf;
    }
  }
  w.EndArray();

  // Gate 1: on the dense comparable-size shape the SIMD kernel must at
  // least match the scalar merge (the full-mode runs show the real margin;
  // the smoke gate only catches a kernel that silently became a loss).
  // Gated at the AVX2 tier only: the 128-bit SSE path is an out-of-line
  // fallback whose margin over the inlined merge is CPU-dependent.
  const bool simd_gate_applicable =
      level == SimdLevel::kAvx2 && dense_eq_simd_ns >= 0;
  if (simd_gate_applicable &&
      dense_eq_simd_ns > dense_eq_merge_ns * 1.05) {
    gate_ok = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "simd %.0fns slower than merge %.0fns on dense "
                  "comparable-size shape; ",
                  dense_eq_simd_ns, dense_eq_merge_ns);
    gate_log += buf;
  }
  w.Key("gate").BeginObject();
  w.Key("checked").Bool(smoke);
  w.Key("simd_gate_applicable").Bool(simd_gate_applicable);
  if (simd_gate_applicable) {
    w.Key("dense_eq_simd_speedup")
        .Double(dense_eq_merge_ns / dense_eq_simd_ns);
  }
  w.Key("ok").Bool(gate_ok);
  if (!gate_ok) w.Key("log").String(gate_log);
  w.EndObject();
  w.EndObject();

  std::ofstream file("BENCH_micro.json");
  file << w.str() << "\n";
  file.close();
  std::fprintf(stderr, "kernel matrix written to BENCH_micro.json (simd=%s)\n",
               level_name);
  if (simd_gate_applicable) {
    std::fprintf(stderr, "dense comparable-size: simd %.0fns vs merge %.0fns "
                 "(%.2fx)\n",
                 dense_eq_simd_ns, dense_eq_merge_ns,
                 dense_eq_merge_ns / dense_eq_simd_ns);
  }
  if (smoke && !gate_ok) {
    std::fprintf(stderr, "kernel matrix gate FAILED: %s\n", gate_log.c_str());
    return 1;
  }
  return 0;
}

}  // namespace daf::bench

// Like BENCHMARK_MAIN(), plus a `--smoke` flag: run every benchmark for a
// token duration so CI can verify the whole suite still executes without
// paying for stable timings.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string_view(*it) == "--smoke") {
      smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The kernel matrix runs after the registered benchmarks: it emits
  // BENCH_micro.json and, under --smoke, enforces the SIMD/dispatch perf
  // gates (nonzero exit on failure).
  return daf::bench::RunKernelMatrix(smoke);
}

// Micro-benchmarks (google-benchmark) of the core primitives: graph
// accessors, DAG construction, CS construction (DAG-graph DP), weight-array
// DP, vertex-equivalence computation, and the backtracking throughput.
// The *Warm variants run through a reused MatchContext (arena + scratch),
// measuring the steady-state path long-lived callers hit; the plain
// variants pay cold per-call allocation. `--smoke` runs every benchmark for
// a token duration (CI: "does every benchmark still run?").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "daf/boost.h"
#include "graph/io.h"
#include "daf/candidate_space.h"
#include "daf/engine.h"
#include "daf/match_context.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "graph/query_extract.h"
#include "util/intersect.h"
#include "util/stop.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace daf::bench {
namespace {

const Graph& YeastData() {
  static const Graph* data = new Graph(
      workload::MakeDataset(workload::DatasetId::kYeast, 0.5, 1));
  return *data;
}

const Graph& YeastQuery(uint32_t size) {
  static std::map<uint32_t, Graph>* cache = new std::map<uint32_t, Graph>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    Rng rng(42 + size);
    auto extracted = ExtractRandomWalkQuery(YeastData(), size, -1.0, rng);
    it = cache->emplace(size, extracted->query).first;
  }
  return it->second;
}

void BM_HasEdge(benchmark::State& state) {
  const Graph& g = YeastData();
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.UniformInt(g.NumVertices())),
                       static_cast<VertexId>(rng.UniformInt(g.NumVertices())));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(g.HasEdge(u, v));
  }
}
BENCHMARK(BM_HasEdge);

void BM_NeighborsWithLabel(benchmark::State& state) {
  const Graph& g = YeastData();
  Rng rng(8);
  size_t i = 0;
  std::vector<std::pair<VertexId, Label>> probes;
  for (int k = 0; k < 1024; ++k) {
    probes.emplace_back(static_cast<VertexId>(rng.UniformInt(g.NumVertices())),
                        static_cast<Label>(rng.UniformInt(g.NumLabels())));
  }
  for (auto _ : state) {
    const auto& [v, l] = probes[i++ & 1023];
    benchmark::DoNotOptimize(g.NeighborsWithLabel(v, l).size());
  }
}
BENCHMARK(BM_NeighborsWithLabel);

void BM_BuildQueryDag(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    QueryDag dag = QueryDag::Build(query, data);
    benchmark::DoNotOptimize(dag.root());
  }
}
BENCHMARK(BM_BuildQueryDag)->Arg(20)->Arg(50)->Arg(100);

void BM_BuildCandidateSpace(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  for (auto _ : state) {
    CandidateSpace cs = CandidateSpace::Build(query, dag, data);
    benchmark::DoNotOptimize(cs.TotalCandidates());
  }
}
BENCHMARK(BM_BuildCandidateSpace)->Arg(20)->Arg(50)->Arg(100);

void BM_BuildCandidateSpaceWarm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  MatchContext context;
  for (auto _ : state) {
    context.arena().Reset();
    CandidateSpace cs = CandidateSpace::Build(
        query, dag, data, {}, &context.arena(), &context.cs_scratch());
    benchmark::DoNotOptimize(cs.TotalCandidates());
  }
  state.counters["arena_kb"] = benchmark::Counter(
      static_cast<double>(context.arena_stats().capacity_bytes) / 1024.0);
}
BENCHMARK(BM_BuildCandidateSpaceWarm)->Arg(20)->Arg(50)->Arg(100);

void BM_WeightArray(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  for (auto _ : state) {
    WeightArray w = WeightArray::Compute(dag, cs);
    benchmark::DoNotOptimize(w.Weight(dag.root(), 0));
  }
}
BENCHMARK(BM_WeightArray)->Arg(20)->Arg(50)->Arg(100);

void BM_WeightArrayWarm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  Arena arena;  // reset per iteration: the weight array alone cycles in it
  for (auto _ : state) {
    arena.Reset();
    WeightArray w = WeightArray::Compute(dag, cs, &arena);
    benchmark::DoNotOptimize(w.Weight(dag.root(), 0));
  }
}
BENCHMARK(BM_WeightArrayWarm)->Arg(20)->Arg(50)->Arg(100);

void BM_DafMatchFirst1000(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  MatchOptions opts;
  opts.limit = 1000;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DafMatchFirst1000)->Arg(20)->Arg(50);

void BM_DafMatchFirst1000Warm(benchmark::State& state) {
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  MatchOptions opts;
  opts.limit = 1000;
  MatchContext context;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts, &context);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
  state.counters["arena_kb"] = benchmark::Counter(
      static_cast<double>(context.arena_stats().capacity_bytes) / 1024.0);
}
BENCHMARK(BM_DafMatchFirst1000Warm)->Arg(20)->Arg(50);

void BM_DafMatchStopConditionArmed(benchmark::State& state) {
  // Same workload as BM_DafMatchFirst1000Warm but with an armed (never
  // firing) CancelToken + deadline: compares against the Warm variant to
  // put a number on the StopCondition poll folded into the search loop's
  // every-4096-calls cadence. Expected to be within noise.
  const Graph& data = YeastData();
  const Graph& query = YeastQuery(static_cast<uint32_t>(state.range(0)));
  CancelToken cancel;
  MatchOptions opts;
  opts.limit = 1000;
  opts.time_limit_ms = 600000;
  opts.cancel = &cancel;
  MatchContext context;
  uint64_t embeddings = 0;
  for (auto _ : state) {
    MatchResult r = DafMatch(query, data, opts, &context);
    embeddings += r.embeddings;
    benchmark::DoNotOptimize(r.recursive_calls);
  }
  state.counters["embeddings/iter"] =
      benchmark::Counter(static_cast<double>(embeddings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DafMatchStopConditionArmed)->Arg(20)->Arg(50);

void BM_StopConditionCheck(benchmark::State& state) {
  // The raw cost of one StopCondition::Check (atomic load + clock read),
  // i.e. what each 4096-call poll window pays.
  CancelToken cancel;
  Deadline deadline(600000);
  StopCondition stop(&deadline, &cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stop.Check());
  }
}
BENCHMARK(BM_StopConditionCheck);

// Sorted-set intersection kernels — the inner loop of
// ComputeExtendableCandidates (Definition 5.2). Args are {small side size,
// large/small ratio}; IntersectSorted switches from the merge scan to
// galloping (branchless binary probes into the long side) past a 32x ratio,
// which is exactly the skewed shape CS adjacency lists produce when one
// parent is much more selective than the other.
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> IntersectInput(
    size_t small_n, size_t ratio) {
  Rng rng(1234 + small_n * 31 + ratio);
  const uint64_t universe = static_cast<uint64_t>(small_n) * ratio * 2 + 1;
  auto make_sorted = [&](size_t n) {
    std::vector<uint32_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.UniformInt(universe)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  return {make_sorted(small_n), make_sorted(small_n * ratio)};
}

void BM_IntersectMergeScan(benchmark::State& state) {
  auto [small, large] = IntersectInput(static_cast<size_t>(state.range(0)),
                                       static_cast<size_t>(state.range(1)));
  std::vector<uint32_t> out;
  out.reserve(small.size());
  for (auto _ : state) {
    out.clear();
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(out));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IntersectMergeScan)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Args({64, 1024});

void BM_IntersectSorted(benchmark::State& state) {
  auto [small, large] = IntersectInput(static_cast<size_t>(state.range(0)),
                                       static_cast<size_t>(state.range(1)));
  std::vector<uint32_t> out;
  out.reserve(small.size());
  for (auto _ : state) {
    IntersectSorted(small.data(), small.size(), large.data(), large.size(),
                    &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IntersectSorted)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Args({64, 1024});

void BM_VertexEquivalence(benchmark::State& state) {
  const Graph& data = YeastData();
  for (auto _ : state) {
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    benchmark::DoNotOptimize(eq.NumClasses());
  }
}
BENCHMARK(BM_VertexEquivalence);

void BM_LoadGraphText(benchmark::State& state) {
  const Graph& data = YeastData();
  const std::string path = "/tmp/daf_bench_graph.txt";
  std::string error;
  SaveGraph(data, path, &error);
  for (auto _ : state) {
    auto g = LoadGraph(path, &error);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_LoadGraphText);

void BM_LoadGraphBinary(benchmark::State& state) {
  const Graph& data = YeastData();
  std::string path = "/tmp/daf_bench_graph.dafg";
  std::string error;
  SaveGraphBinary(data, path, &error);
  for (auto _ : state) {
    auto g = LoadGraphBinary(path, &error);
    benchmark::DoNotOptimize(g->NumEdges());
  }
}
BENCHMARK(BM_LoadGraphBinary);

}  // namespace
}  // namespace daf::bench

// Like BENCHMARK_MAIN(), plus a `--smoke` flag: run every benchmark for a
// token duration so CI can verify the whole suite still executes without
// paying for stable timings.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string_view(*it) == "--smoke") {
      smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

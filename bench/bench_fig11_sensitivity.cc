// Regenerates Figure 11, the parameter sensitivity analysis (Section 7.2):
// synthetic data graphs obtained by upscaling Yeast (our stand-in for
// EvoGraph) with power-law labels, varying
//   (a) |V(q)|, (b) avg-deg(q), (c) diam(q), (d) scale(G), (e) |Sigma|,
// one at a time around the paper's defaults (|V(q)|=100, 3<deg<=5,
// 10<=diam<=12, scale=2, |Sigma|=70), with sizes shrunk by --qscale to fit
// small machines. Diameter buckets are derived from the empirical diameter
// distribution at the scaled query size (the paper's absolute 10/12 bounds
// only make sense at |V(q)|=100). Reports elapsed time and solved% for
// CFL-Match, DA, DAF. Expected shape: harder with |V(q)| and diam(q),
// easier with avg-deg(q) and |Sigma|; scale has little effect; DAF
// dominates, especially at large |V(q)|.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/query_extract.h"
#include "graph/upscale.h"

namespace daf::bench {
namespace {

Graph MakeSensitivityData(const CommonFlags& common, uint32_t scale,
                          uint32_t sigma) {
  // Yeast structure, upscaled, with a fresh power-law label assignment of
  // `sigma` labels (the paper assigns labels by power laws).
  Graph yeast = BuildDataset(workload::DatasetId::kYeast, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 31 + scale * 7 + sigma);
  Graph scaled = scale > 1 ? Upscale(yeast, scale, rng) : std::move(yeast);
  std::vector<Label> labels =
      ZipfLabels(scaled.NumVertices(), sigma, 1.6, rng);
  return Graph::FromEdges(std::move(labels), scaled.EdgeList());
}

// Tercile bounds (d1 <= d2) of the diameter distribution of size-`size`
// random-walk queries on `data`.
std::pair<uint32_t, uint32_t> DiameterTerciles(const Graph& data,
                                               uint32_t size, Rng& rng) {
  std::vector<uint32_t> diameters;
  for (int i = 0; i < 24; ++i) {
    auto e = ExtractRandomWalkQuery(data, size, -1.0, rng);
    if (e) diameters.push_back(Diameter(e->query));
  }
  if (diameters.empty()) return {4, 6};
  std::sort(diameters.begin(), diameters.end());
  uint32_t d1 = diameters[diameters.size() / 3];
  uint32_t d2 = diameters[(2 * diameters.size()) / 3];
  if (d2 <= d1) d2 = d1 + 1;
  return {d1, d2};
}

void RunPoint(const std::string& sweep, const std::string& value,
              const Graph& data, const workload::QueryConstraints& qc,
              const CommonFlags& common, Rng& rng) {
  std::vector<Graph> queries;
  for (int i = 0; i < common.queries; ++i) {
    auto q = workload::MakeConstrainedQuery(data, qc, rng, 300);
    if (q) queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::printf("%-10s%-12s  (no queries matched the constraints)\n",
                sweep.c_str(), value.c_str());
    return;
  }
  MatchOptions da;
  da.use_failing_sets = false;
  std::vector<Algorithm> algos{
      MakeBaselineAlgorithm("CFL-Match", data, common),
      MakeDafAlgorithm("DA", data, da, common),
      MakeDafAlgorithm("DAF", data, MatchOptions{}, common),
  };
  for (const Summary& s : EvaluateQuerySet(queries, algos,
                                           sweep + "/" + value)) {
    std::printf("%-10s%-12s%-11s%12.2f%16.0f%10.1f\n", sweep.c_str(),
                value.c_str(), s.algorithm.c_str(), s.avg_ms, s.avg_calls,
                s.solved_pct);
  }
}

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  double& qscale =
      flags.Double("qscale", 0.4, "shrink factor applied to the paper's "
                                  "query sizes (1.0 = paper)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const uint32_t default_size =
      std::max<uint32_t>(10, static_cast<uint32_t>(100 * qscale));

  std::printf("== Figure 11: sensitivity analysis (defaults: |V(q)|=%u, "
              "3<deg<=5, scale=2, |Sigma|=70; diam buckets empirical) ==\n",
              default_size);
  std::printf("%-10s%-12s%-11s%12s%16s%10s\n", "Sweep", "Value", "Algo",
              "avg_ms", "avg_rec_calls", "solved%");

  Rng rng(static_cast<uint64_t>(common.seed) * 40961);
  Graph default_data = MakeSensitivityData(common, 2, 70);

  workload::QueryConstraints defaults;
  defaults.size = default_size;
  defaults.min_avg_deg = 3.0;
  defaults.max_avg_deg = 5.0;

  // (a) |V(q)| sweep (paper: 50, 100, 200, 400, scaled by qscale).
  for (uint32_t paper_size : {50u, 100u, 200u, 400u}) {
    workload::QueryConstraints qc = defaults;
    qc.size = std::max<uint32_t>(
        6, static_cast<uint32_t>(paper_size * qscale));
    qc.min_avg_deg = 0;  // larger sizes make the 3-5 window rarer
    qc.max_avg_deg = 1e9;
    RunPoint("|V(q)|", std::to_string(qc.size), default_data, qc, common,
             rng);
  }
  // (b) avg-deg(q) sweep: <=3, (3,5], >5.
  {
    const char* names[] = {"<=3", "3-5", ">5"};
    const double lo[] = {0.0, 3.0, 5.0};
    const double hi[] = {3.0, 5.0, 1e9};
    for (int i = 0; i < 3; ++i) {
      workload::QueryConstraints qc = defaults;
      qc.min_avg_deg = lo[i];
      qc.max_avg_deg = hi[i];
      RunPoint("avg-deg", names[i], default_data, qc, common, rng);
    }
  }
  // (c) diam(q) sweep over empirical terciles.
  {
    auto [d1, d2] = DiameterTerciles(default_data, default_size, rng);
    const std::string names[] = {"<=" + std::to_string(d1),
                                 std::to_string(d1 + 1) + "-" +
                                     std::to_string(d2),
                                 ">=" + std::to_string(d2 + 1)};
    const uint32_t lo[] = {0, d1 + 1, d2 + 1};
    const uint32_t hi[] = {d1, d2, 1u << 30};
    for (int i = 0; i < 3; ++i) {
      workload::QueryConstraints qc;
      qc.size = default_size;
      qc.min_diameter = lo[i];
      qc.max_diameter = hi[i];
      RunPoint("diam", names[i], default_data, qc, common, rng);
    }
  }
  // (d) scale(G) sweep (paper: 2, 4, 8, 16).
  for (uint32_t scale : {2u, 4u, 8u, 16u}) {
    Graph data = MakeSensitivityData(common, scale, 70);
    RunPoint("scale(G)", std::to_string(scale), data, defaults, common, rng);
  }
  // (e) |Sigma| sweep (paper: 35, 70, 140, 280).
  for (uint32_t sigma : {35u, 70u, 140u, 280u}) {
    Graph data = MakeSensitivityData(common, 2, sigma);
    RunPoint("|Sigma|", std::to_string(sigma), data, defaults, common, rng);
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

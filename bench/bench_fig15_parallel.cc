// Regenerates Figure 15 (Appendix A.4): elapsed time of the parallelized
// DAF for 1, 2, 4, 8, 16 threads when finding k = 10^5 embeddings on
// Human, comparing the paper's root-cursor partitioning against the
// work-stealing engine (splittable subtree tasks). NOTE: on a single-core
// host the wall-clock gains cannot materialize; the harness therefore also
// prints the per-thread recursive-call split and the load-imbalance metric
// max/mean (1.00 = perfect balance, `threads` = one worker did everything)
// so the work distribution — the mechanism behind the paper's speedups —
// is still observable. See EXPERIMENTS.md, substitution 4.
#include <cstdio>

#include "bench_util.h"
#include "daf/parallel.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  Graph data = BuildDataset(workload::DatasetId::kHuman, common);
  const workload::DatasetSpec& spec =
      workload::GetSpec(workload::DatasetId::kHuman);
  Rng rng(static_cast<uint64_t>(common.seed) * 88001);
  std::printf("== Figure 15: parallel DAF, k=%lld embeddings (Human) ==\n",
              static_cast<long long>(common.k));
  std::printf("%-8s%-7s%-9s%12s%14s%10s%11s%22s\n", "Set", "strat", "threads",
              "avg_ms", "rec_calls", "solved%", "max/mean",
              "thread_call_balance");
  for (int si = 0; si < 2; ++si) {
    uint32_t size = spec.query_sizes[si];
    for (bool sparse : {true, false}) {
      workload::QuerySet set = workload::MakeQuerySet(
          data, size, sparse, static_cast<uint32_t>(common.queries), rng);
      if (set.queries.empty()) continue;
      for (ParallelStrategy strategy :
           {ParallelStrategy::kRootCursor, ParallelStrategy::kWorkStealing}) {
        const char* strat_name =
            strategy == ParallelStrategy::kWorkStealing ? "steal" : "cursor";
        for (uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
          double total_ms = 0;
          uint64_t total_calls = 0;
          int solved = 0;
          double imbalance_sum = 0;
          uint64_t max_thread_calls = 0;
          uint64_t min_thread_calls = ~0ull;
          for (const Graph& q : set.queries) {
            MatchOptions opts;
            opts.limit = static_cast<uint64_t>(common.k);
            opts.time_limit_ms = static_cast<uint64_t>(common.timeout_ms);
            opts.parallel_strategy = strategy;
            ParallelMatchResult r = ParallelDafMatch(q, data, opts, threads);
            if (!r.ok || r.timed_out) continue;
            ++solved;
            total_ms += r.preprocess_ms + r.search_ms;
            total_calls += r.recursive_calls;
            imbalance_sum += r.call_imbalance;
            for (uint64_t c : r.per_thread_calls) {
              max_thread_calls = std::max(max_thread_calls, c);
              min_thread_calls = std::min(min_thread_calls, c);
            }
          }
          if (solved == 0) continue;
          std::printf("%-8s%-7s%-9u%12.2f%14.0f%10.1f%11.2f%11llu/%-10llu\n",
                      set.Name().c_str(), strat_name, threads,
                      total_ms / solved,
                      static_cast<double>(total_calls) / solved,
                      100.0 * solved / set.queries.size(),
                      imbalance_sum / solved,
                      static_cast<unsigned long long>(min_thread_calls),
                      static_cast<unsigned long long>(max_thread_calls));
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

// Ablation study of DAF's design choices (not a paper figure; DESIGN.md):
//   1. number of DAG-graph DP refinement passes (the paper fixes 3 and
//      reports the filtering rate after 3 steps is < 1% — this table shows
//      the CS size and end-to-end effect of 0..5 passes),
//   2. the NLF / MND local filters,
//   3. the leaf decomposition strategy.
// All rows run DAF (path-size order + failing sets) on the Yeast stand-in.
#include <cstdio>
#include <string>

#include "bench_util.h"

namespace daf::bench {
namespace {

struct Config {
  std::string name;
  MatchOptions options;
};

void RunConfigs(const std::vector<Graph>& queries, const Graph& data,
                const std::vector<Config>& configs,
                const CommonFlags& common, const std::string& label) {
  std::vector<Algorithm> algos;
  for (const Config& config : configs) {
    algos.push_back(MakeDafAlgorithm(config.name, data, config.options,
                                     common));
  }
  for (const Summary& s : EvaluateQuerySet(queries, algos, label)) {
    std::printf("%-22s%12.0f%12.2f%12.2f%16.0f%10.1f\n", s.algorithm.c_str(),
                s.avg_aux, s.avg_preprocess_ms, s.avg_ms, s.avg_calls,
                s.solved_pct);
  }
}

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  int64_t& query_size = flags.Int64("query_size", 100, "query size");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  Graph data = BuildDataset(workload::DatasetId::kYeast, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 15073);
  workload::QuerySet set = workload::MakeQuerySet(
      data, static_cast<uint32_t>(query_size), /*sparse=*/true,
      static_cast<uint32_t>(common.queries), rng);
  std::printf("== Ablation: DAF design choices (Yeast, %s) ==\n",
              set.Name().c_str());
  std::printf("%-22s%12s%12s%12s%16s%10s\n", "config", "avg_cs", "prep_ms",
              "total_ms", "avg_rec_calls", "solved%");

  // 1. Refinement passes.
  {
    std::vector<Config> configs;
    for (int steps : {0, 1, 2, 3, 5}) {
      Config c;
      c.name = "refine=" + std::to_string(steps);
      c.options.refinement_steps = steps;
      configs.push_back(c);
    }
    RunConfigs(set.queries, data, configs, common, "refinement");
  }
  std::printf("\n");
  // 2. Local filters.
  {
    std::vector<Config> configs;
    for (int mask = 0; mask < 4; ++mask) {
      Config c;
      c.options.use_nlf_filter = (mask & 1) != 0;
      c.options.use_mnd_filter = (mask & 2) != 0;
      c.name = std::string("nlf=") + (c.options.use_nlf_filter ? "on" : "off") +
               " mnd=" + (c.options.use_mnd_filter ? "on" : "off");
      configs.push_back(c);
    }
    RunConfigs(set.queries, data, configs, common, "local_filters");
  }
  std::printf("\n");
  // 3. Leaf decomposition.
  {
    std::vector<Config> configs;
    for (bool leaves : {true, false}) {
      Config c;
      c.options.leaf_decomposition = leaves;
      c.name = std::string("leaf_decomp=") + (leaves ? "on" : "off");
      configs.push_back(c);
    }
    RunConfigs(set.queries, data, configs, common, "leaf_decomposition");
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

// Regenerates Figure 12 (Appendix A.1): the billion-scale Twitter
// experiment, run against the RMAT stand-in (DESIGN.md, substitution 2).
// Reports the elapsed-time breakdown into preprocessing and search time,
// recursive calls, and solved%. Expected shape: preprocessing dominates for
// big graphs and is similar between CFL-Match and DAF, while DAF's search
// time is orders of magnitude smaller on non-sparse sets.
#include <cstdio>

#include "bench_util.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  int64_t& num_sizes = flags.Int64("sizes", 4, "query sizes (up to 4)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const workload::DatasetSpec& spec =
      workload::GetSpec(workload::DatasetId::kTwitterSim);
  Graph data = BuildDataset(spec.id, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 52501);
  std::printf("== Figure 12: Twitter(-sim) — preprocessing/search split ==\n");
  std::printf("%-8s%-11s%12s%14s%12s%14s%10s\n", "Set", "Algo", "prep_ms",
              "search_ms", "total_ms", "rec_calls", "solved%");
  for (int si = 0; si < num_sizes && si < 4; ++si) {
    uint32_t size = spec.query_sizes[si];
    for (bool sparse : {true, false}) {
      workload::QuerySet set = workload::MakeQuerySet(
          data, size, sparse, static_cast<uint32_t>(common.queries), rng);
      if (set.queries.empty()) continue;
      MatchOptions da;
      da.use_failing_sets = false;
      std::vector<Algorithm> algos{
          MakeBaselineAlgorithm("CFL-Match", data, common),
          MakeDafAlgorithm("DA", data, da, common),
          MakeDafAlgorithm("DAF", data, MatchOptions{}, common),
      };
      for (const Summary& s : EvaluateQuerySet(
               set.queries, algos,
               std::string(spec.name) + "/" + set.Name())) {
        std::printf("%-8s%-11s%12.1f%14.1f%12.1f%14.0f%10.1f\n",
                    set.Name().c_str(), s.algorithm.c_str(),
                    s.avg_preprocess_ms, s.avg_ms - s.avg_preprocess_ms,
                    s.avg_ms, s.avg_calls, s.solved_pct);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

#ifndef DAF_BENCH_BENCH_UTIL_H_
#define DAF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "graph/graph.h"
#include "util/flags.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace daf::bench {

/// Flags shared by every figure/table harness. Defaults are sized so that
/// `for b in build/bench/*; do $b; done` completes on a laptop; raise
/// --scale / --queries / --timeout_ms to approach the paper's full protocol
/// (scale 1.0, 100 queries per set, k = 10^5, 10-minute timeout).
struct CommonFlags {
  double& scale;
  int64_t& queries;
  int64_t& k;
  int64_t& timeout_ms;
  int64_t& seed;

  explicit CommonFlags(FlagSet& flags)
      : scale(flags.Double("scale", 0.0,
                           "dataset scale in (0,1]; 0 = per-dataset default")),
        queries(flags.Int64("queries", 10, "queries per query set")),
        k(flags.Int64("k", 100000, "embeddings to find per query (paper: "
                                   "1e5); 0 = all")),
        timeout_ms(flags.Int64("timeout_ms", 2000,
                               "per-query time limit (paper: 600000)")),
        seed(flags.Int64("seed", 1, "workload RNG seed")) {}
};

/// The default shrink factor applied to each dataset so the harnesses run
/// in seconds instead of hours; overridden by --scale.
double DefaultScale(workload::DatasetId id);

/// Builds the dataset at the requested or default scale (logs to stderr).
Graph BuildDataset(workload::DatasetId id, const CommonFlags& flags);

/// Per-query outcome an algorithm adapter reports.
struct Outcome {
  double total_ms = 0;       // preprocessing + search
  double preprocess_ms = 0;
  uint64_t calls = 0;        // recursive calls (search-tree nodes)
  bool solved = false;       // finished within the time limit
  uint64_t aux_size = 0;     // Σ|C(u)| of the auxiliary structure
  uint64_t embeddings = 0;
};

/// An algorithm under benchmark: a display name and a per-query runner.
struct Algorithm {
  std::string name;
  std::function<Outcome(const Graph& query)> run;
};

/// Aggregate over one query set, following the paper's protocol: with n =
/// min #solved across the compared algorithms, averages are taken over each
/// algorithm's n least time-consuming solved queries; solved% is per
/// algorithm.
struct Summary {
  std::string algorithm;
  double avg_ms = 0;
  double avg_preprocess_ms = 0;
  double avg_calls = 0;
  double avg_aux = 0;
  double solved_pct = 0;
};

/// Runs every algorithm on every query and aggregates per the protocol.
std::vector<Summary> EvaluateQuerySet(const std::vector<Graph>& queries,
                                      const std::vector<Algorithm>& algos);

/// Standard adapters. `base` carries the variant switches; limit/time are
/// taken from flags.
Algorithm MakeDafAlgorithm(const std::string& name, const Graph& data,
                           const MatchOptions& base,
                           const CommonFlags& flags);
Algorithm MakeBaselineAlgorithm(const std::string& name, const Graph& data,
                                const CommonFlags& flags);  // by name

/// Table printing: column headers then one row per (query set, summary).
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintSummaryRow(const std::string& query_set, const Summary& summary);

}  // namespace daf::bench

#endif  // DAF_BENCH_BENCH_UTIL_H_

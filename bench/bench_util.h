#ifndef DAF_BENCH_BENCH_UTIL_H_
#define DAF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "graph/graph.h"
#include "util/flags.h"
#include "workload/datasets.h"
#include "workload/querygen.h"

namespace daf::bench {

/// Flags shared by every figure/table harness. Defaults are sized so that
/// `for b in build/bench/*; do $b; done` completes on a laptop; raise
/// --scale / --queries / --timeout_ms to approach the paper's full protocol
/// (scale 1.0, 100 queries per set, k = 10^5, 10-minute timeout).
struct CommonFlags {
  double& scale;
  int64_t& queries;
  int64_t& k;
  int64_t& timeout_ms;
  int64_t& seed;
  /// JSON report destination: empty = BENCH_<figure>.json in the working
  /// directory, "-" = disable recording, anything else = explicit path.
  std::string& report;

  explicit CommonFlags(FlagSet& flags);
  ~CommonFlags();

  CommonFlags(const CommonFlags&) = delete;
  CommonFlags& operator=(const CommonFlags&) = delete;
};

/// The default shrink factor applied to each dataset so the harnesses run
/// in seconds instead of hours; overridden by --scale.
double DefaultScale(workload::DatasetId id);

/// Builds the dataset at the requested or default scale (logs to stderr).
Graph BuildDataset(workload::DatasetId id, const CommonFlags& flags);

/// Per-query outcome an algorithm adapter reports.
struct Outcome {
  double total_ms = 0;       // preprocessing + search
  double preprocess_ms = 0;
  uint64_t calls = 0;        // recursive calls (search-tree nodes)
  bool solved = false;       // finished within the time limit
  uint64_t aux_size = 0;     // Σ|C(u)| of the auxiliary structure
  uint64_t embeddings = 0;
};

/// An algorithm under benchmark: a display name and a per-query runner.
struct Algorithm {
  std::string name;
  std::function<Outcome(const Graph& query)> run;
};

/// Aggregate over one query set, following the paper's protocol: with n =
/// min #solved across the compared algorithms, averages are taken over each
/// algorithm's n least time-consuming solved queries; solved% is per
/// algorithm.
struct Summary {
  std::string algorithm;
  double avg_ms = 0;
  double avg_preprocess_ms = 0;
  double avg_calls = 0;
  double avg_aux = 0;
  double solved_pct = 0;
};

/// Runs every algorithm on every query and aggregates per the protocol.
///
/// Every call also appends its summaries — tagged with `label`, e.g.
/// "yeast/Q4S" — to an in-process report that is rewritten after each call
/// to the machine-readable result file `BENCH_<figure>.json` (see
/// BenchReportPath), so the perf trajectory of every harness run is
/// recorded without extra plumbing in the harnesses.
std::vector<Summary> EvaluateQuerySet(const std::vector<Graph>& queries,
                                      const std::vector<Algorithm>& algos,
                                      const std::string& label = "");

/// Destination of the JSON report: `--report` when a CommonFlags is live
/// and the flag was set ("-" disables recording and yields ""), otherwise
/// `BENCH_<figure>.json` where <figure> is the binary name without a
/// leading "bench_" prefix.
std::string BenchReportPath();

/// Serializes every row recorded so far (obs JSON writer schema:
/// {"figure": ..., "rows": [{"label", "algorithm", "avg_ms",
/// "avg_preprocess_ms", "avg_calls", "avg_aux", "solved_pct"}]}).
std::string BenchReportJson();

/// Drops all recorded rows (tests).
void ResetBenchReport();

/// Standard adapters. `base` carries the variant switches; limit/time are
/// taken from flags.
Algorithm MakeDafAlgorithm(const std::string& name, const Graph& data,
                           const MatchOptions& base,
                           const CommonFlags& flags);
Algorithm MakeBaselineAlgorithm(const std::string& name, const Graph& data,
                                const CommonFlags& flags);  // by name

/// Table printing: column headers then one row per (query set, summary).
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintSummaryRow(const std::string& query_set, const Summary& summary);

}  // namespace daf::bench

#endif  // DAF_BENCH_BENCH_UTIL_H_

// Regenerates Figure 18 (Appendix A.6): the four-way variant comparison
// that selected the final algorithm — DA-cand, DA-path (candidate-size /
// path-size adaptive order without failing sets) and DAF-cand, DAF-path
// (with failing sets). Expected shape: failing sets help consistently; the
// cand/path gap is marginal with path slightly ahead — hence DAF = DAF-path.
#include <cstdio>

#include "bench_util.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf("== Figure 18: DA/DAF x cand/path variants ==\n");
  std::printf("%-8s%-8s%-11s%12s%16s%10s\n", "Dataset", "Set", "Algo",
              "avg_ms", "avg_rec_calls", "solved%");
  const workload::DatasetId datasets[] = {workload::DatasetId::kYeast,
                                          workload::DatasetId::kHuman};
  for (workload::DatasetId id : datasets) {
    const workload::DatasetSpec& spec = workload::GetSpec(id);
    Graph data = BuildDataset(id, common);
    Rng rng(static_cast<uint64_t>(common.seed) * 4493 +
            static_cast<uint64_t>(id));
    for (int si = 0; si < 2; ++si) {
      uint32_t size = spec.query_sizes[si];
      for (bool sparse : {true, false}) {
        workload::QuerySet set = workload::MakeQuerySet(
            data, size, sparse, static_cast<uint32_t>(common.queries), rng);
        if (set.queries.empty()) continue;
        std::vector<Algorithm> algos;
        for (bool failing : {false, true}) {
          for (MatchOrder order :
               {MatchOrder::kCandidateSize, MatchOrder::kPathSize}) {
            MatchOptions opts;
            opts.use_failing_sets = failing;
            opts.order = order;
            std::string name = std::string(failing ? "DAF" : "DA") +
                               (order == MatchOrder::kPathSize ? "-path"
                                                               : "-cand");
            algos.push_back(MakeDafAlgorithm(name, data, opts, common));
          }
        }
        for (const Summary& s : EvaluateQuerySet(
                 set.queries, algos,
                 std::string(spec.name) + "/" + set.Name())) {
          std::printf("%-8s%-8s%-11s%12.2f%16.0f%10.1f\n", spec.name,
                      set.Name().c_str(), s.algorithm.c_str(), s.avg_ms,
                      s.avg_calls, s.solved_pct);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

// Regenerates Figure 17 (Appendix A.5): DAF vs DAF-Boost (the BoostIso
// equivalence relationships SE/QDE applied to DAF). Also prints each
// stand-in's compression ratio — the paper's explanation for why boosting
// helps on Human (53.1%) but not on HPRD (1.4%).
#include <cstdio>

#include "bench_util.h"
#include "daf/boost.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf("== Figure 17: DAF vs DAF-Boost ==\n");
  std::printf("%-8s%-10s%-11s%12s%16s%10s\n", "Dataset", "Set", "Algo",
              "avg_ms", "avg_rec_calls", "solved%");
  const workload::DatasetId datasets[] = {workload::DatasetId::kHuman,
                                          workload::DatasetId::kEmail,
                                          workload::DatasetId::kHprd};
  for (workload::DatasetId id : datasets) {
    const workload::DatasetSpec& spec = workload::GetSpec(id);
    Graph data = BuildDataset(id, common);
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    std::fprintf(stderr, "[bench] %s compression ratio: %.1f%%\n", spec.name,
                 100.0 * eq.CompressionRatio());
    Rng rng(static_cast<uint64_t>(common.seed) * 3301 +
            static_cast<uint64_t>(id));
    for (int si = 0; si < 2; ++si) {
      uint32_t size = spec.query_sizes[si];
      for (bool sparse : {true, false}) {
        workload::QuerySet set = workload::MakeQuerySet(
            data, size, sparse, static_cast<uint32_t>(common.queries), rng);
        if (set.queries.empty()) continue;
        MatchOptions boosted;
        boosted.equivalence = &eq;
        std::vector<Algorithm> algos{
            MakeDafAlgorithm("DAF", data, MatchOptions{}, common),
            MakeDafAlgorithm("DAF-Boost", data, boosted, common),
        };
        for (const Summary& s : EvaluateQuerySet(
                 set.queries, algos,
                 std::string(spec.name) + "/" + set.Name())) {
          std::printf("%-8s%-10s%-11s%12.2f%16.0f%10.1f\n", spec.name,
                      set.Name().c_str(), s.algorithm.c_str(), s.avg_ms,
                      s.avg_calls, s.solved_pct);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

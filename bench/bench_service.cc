// Load-test harness for service::MatchService: a seeded generator mixes
// easy positive, hard (deadline-bound), and negative queries over one
// shared data graph, submits them round-robin across priority classes, and
// reports throughput plus exact p50/p95/p99 end-to-end latencies to
// BENCH_service.json. A separate probe measures cancel latency — the
// wall time from JobHandle::Cancel() on a running hard query to its
// terminal state — which the StopCondition poll cadence keeps well under
// 50 ms of search-loop time.
//
//   $ ./bench/bench_service                 # default: 256 queries, 4 workers
//   $ ./bench/bench_service --smoke         # CI: >= 64 queries, >= 4 workers
//   $ ./bench/bench_service --workers 16 --queries 2048 --scale 0.5
//
// --chaos switches to the fault-injection harness (docs/ROBUSTNESS.md):
// the same mixed load runs with every fault point armed at --fault_rate
// under --chaos_seed, a fraction of jobs carrying tiny memory budgets and
// an aggressive watchdog. The run then asserts the robustness invariants —
// every job in exactly one terminal status, terminal counters summing to
// submissions, exhausted jobs reporting honest partial results (never
// certified-negative), and the service still serving after the faults stop
// — and exits nonzero on any violation.
//
//   $ ./bench/bench_service --chaos --chaos_seed 7 --fault_rate 0.05
//   $ ./bench/bench_service --chaos --smoke   # CI liveness gate
//
// --zipf switches to the cache mixed-load harness: a pool of --patterns
// distinct query patterns is submitted --queries times under a Zipf
// popularity distribution, every submission randomly vertex-relabeled, so
// the cross-query plan/CS cache sees realistic skewed traffic where only
// canonical keying can match resubmissions. The report records the hit
// rate plus per-class (hit vs miss) run-time latencies; with --smoke the
// run exits nonzero unless the hit rate reaches 60% and the hit class's
// p50 beats the miss class's.
//
//   $ ./bench/bench_service --zipf
//   $ ./bench/bench_service --zipf --smoke    # CI cache gate
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "graph/canonical.h"
#include "obs/json.h"
#include "obs/service_metrics.h"
#include "service/match_service.h"
#include "util/fault_inject.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/negative.h"
#include "workload/querygen.h"

namespace daf {
namespace {

struct LatencySummary {
  double p50 = 0, p95 = 0, p99 = 0, max = 0, mean = 0;
};

LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples.size()));
    return samples[std::min(i, samples.size() - 1)];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

void WriteLatency(obs::JsonWriter& w, const LatencySummary& s) {
  w.BeginObject()
      .Key("p50_ms").Double(s.p50)
      .Key("p95_ms").Double(s.p95)
      .Key("p99_ms").Double(s.p99)
      .Key("max_ms").Double(s.max)
      .Key("mean_ms").Double(s.mean)
      .EndObject();
}

// Measures cancel latency against a dedicated tiny service over a dense
// clique graph: a 7-clique query in a 32-clique has ~10^10 embeddings, so
// the search provably outlives the probe unless the cancel stops it.
double CancelProbeMs() {
  std::vector<Label> labels(32, 0);
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < labels.size(); ++i) {
    for (uint32_t j = i + 1; j < labels.size(); ++j) edges.emplace_back(i, j);
  }
  Graph data = Graph::FromEdges(labels, edges);
  std::vector<Label> qlabels(7, 0);
  std::vector<Edge> qedges;
  for (uint32_t i = 0; i < qlabels.size(); ++i) {
    for (uint32_t j = i + 1; j < qlabels.size(); ++j) {
      qedges.emplace_back(i, j);
    }
  }
  service::MatchService probe(std::move(data), {.num_workers = 1});
  service::QueryJob job;
  job.query = Graph::FromEdges(qlabels, qedges);
  service::JobHandle handle = probe.Submit(std::move(job));
  while (handle.Status() != service::JobStatus::kRunning) {
  }
  Stopwatch timer;
  handle.Cancel();
  handle.Wait();
  return timer.ElapsedMs();
}

// The chaos harness: a seeded mixed load (easy / hard-deadlined / negative
// / tiny-memory-budget jobs) runs with every fault point armed, then the
// robustness invariants are asserted. Returns the number of violations.
int RunChaos(int64_t workers, int64_t queries, int64_t seed,
             int64_t chaos_seed, double fault_rate, double scale,
             int64_t hard_deadline_ms, const std::string& report) {
  std::fprintf(stderr,
               "chaos: seed %lld, fault rate %.3g, %lld queries, "
               "%lld workers\n",
               static_cast<long long>(chaos_seed), fault_rate,
               static_cast<long long>(queries),
               static_cast<long long>(workers));
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, scale,
                                     static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed));
  workload::QuerySet easy = workload::MakeQuerySet(data, 8, true, 16, rng);
  workload::QuerySet hard = workload::MakeQuerySet(data, 24, false, 8, rng);
  std::vector<Graph> negative;
  for (const Graph& q : easy.queries) {
    negative.push_back(workload::PerturbLabels(q, data, 3, rng));
  }

  service::ServiceOptions options;
  options.num_workers = static_cast<uint32_t>(workers);
  options.queue_capacity = static_cast<size_t>(queries) + 1;
  // Aggressive governance so the chaos run exercises every mechanism:
  // tight watchdog, pool footprint shedding, and a service-global ceiling
  // generous enough that only budgeted jobs normally exhaust.
  options.watchdog_interval_ms = 20;
  options.watchdog_grace_ms = 250;
  options.context_retained_bytes = 1u << 20;
  options.service_memory_limit_bytes = uint64_t{1} << 31;
  service::MatchService service(data, options);

  std::vector<service::JobHandle> handles;
  handles.reserve(static_cast<size_t>(queries));
  std::vector<FaultInjector::PointStats> fault_stats;
  uint64_t fault_fires = 0;
  Stopwatch wall;
  {
    ScopedFaultInjection chaos_faults(static_cast<uint64_t>(chaos_seed),
                                      fault_rate);
    for (int64_t i = 0; i < queries; ++i) {
      service::QueryJob job;
      job.priority =
          static_cast<service::Priority>(i % service::kNumPriorities);
      job.limit = 100000;
      switch (i % 4) {
        case 0:
          job.query = easy.queries[static_cast<size_t>(i / 4) %
                                   easy.queries.size()];
          break;
        case 1:
          job.query = hard.queries[static_cast<size_t>(i / 4) %
                                   hard.queries.size()];
          job.deadline_ms = static_cast<uint64_t>(hard_deadline_ms);
          break;
        case 2:
          job.query =
              negative[static_cast<size_t>(i / 4) % negative.size()];
          break;
        default:
          // Tiny budget: big enough to admit the query, far too small for
          // a hard query's candidate space — the exhaustion path.
          job.query = hard.queries[static_cast<size_t>(i / 4) %
                                   hard.queries.size()];
          job.max_memory_bytes = 96 * 1024;
          break;
      }
      handles.push_back(service.Submit(std::move(job)));
    }
    service.Drain();
    // Snapshot before ~ScopedFaultInjection: Disarm clears the counters.
    fault_stats = FaultInjector::Snapshot();
    fault_fires = FaultInjector::total_fires();
    // ~ScopedFaultInjection disarms before the liveness probe below.
  }
  const double wall_ms = wall.ElapsedMs();

  // --- Invariants. Every violation is reported; the count is the exit.
  int violations = 0;
  auto check = [&](bool ok, const char* what, size_t i) {
    if (ok) return;
    ++violations;
    std::fprintf(stderr, "chaos VIOLATION (job %zu): %s\n", i, what);
  };
  uint64_t terminal_counts[8] = {};
  for (size_t i = 0; i < handles.size(); ++i) {
    service::JobHandle& h = handles[i];
    const service::JobStatus status = h.Status();
    check(service::IsTerminal(status), "job not terminal after Drain", i);
    if (!service::IsTerminal(status)) continue;
    ++terminal_counts[static_cast<size_t>(status)];
    const MatchResult& r = h.Result();
    switch (status) {
      case service::JobStatus::kDone:
        check(r.ok, "kDone but result.ok false", i);
        break;
      case service::JobStatus::kResourceExhausted:
        check(r.resource_exhausted,
              "kResourceExhausted without result flag", i);
        check(!r.Complete(), "exhausted job claims Complete()", i);
        check(!r.cs_certified_negative,
              "exhausted job claims certified-negative", i);
        break;
      case service::JobStatus::kFailed:
        check(!r.ok && !r.error.empty(), "kFailed without an error", i);
        break;
      default:
        break;  // cancelled / timed out / rejected: partial counts only
    }
  }

  // The service's terminal counters must account for every submission.
  obs::ServiceMetricsSnapshot metrics = service.Metrics();
  const uint64_t counter_sum =
      metrics.counters.rejected + metrics.counters.completed +
      metrics.counters.cancelled + metrics.counters.timed_out +
      metrics.counters.failed + metrics.counters.resource_exhausted;
  if (metrics.counters.submitted != counter_sum) {
    ++violations;
    std::fprintf(stderr,
                 "chaos VIOLATION: submitted %llu != terminal sum %llu\n",
                 static_cast<unsigned long long>(metrics.counters.submitted),
                 static_cast<unsigned long long>(counter_sum));
  }
  // With no job running the global ledger holds exactly the query cache's
  // resident bytes: any difference is a per-job charge leak (or the cache's
  // own accounting disagreeing with the ledger).
  if (metrics.global_memory_used != metrics.cache_resident_bytes) {
    ++violations;
    std::fprintf(stderr,
                 "chaos VIOLATION: global ledger holds %llu bytes after "
                 "Drain, cache accounts for %llu (leak)\n",
                 static_cast<unsigned long long>(metrics.global_memory_used),
                 static_cast<unsigned long long>(
                     metrics.cache_resident_bytes));
  }

  // Liveness: with faults disarmed the same service must still serve.
  {
    service::QueryJob probe;
    probe.query = easy.queries.front();
    probe.limit = 1000;
    service::JobHandle h = service.Submit(std::move(probe));
    const service::JobStatus status = h.Wait();
    if (status != service::JobStatus::kDone) {
      ++violations;
      std::fprintf(stderr,
                   "chaos VIOLATION: post-chaos liveness probe ended %s\n",
                   service::ToString(status));
    }
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("service_chaos");
  w.Key("config").BeginObject()
      .Key("workers").Int(workers)
      .Key("queries").Int(queries)
      .Key("seed").Int(seed)
      .Key("chaos_seed").Int(chaos_seed)
      .Key("fault_rate").Double(fault_rate)
      .Key("scale").Double(scale)
      .EndObject();
  w.Key("wall_ms").Double(wall_ms);
  w.Key("fault_fires").Uint(fault_fires);
  w.Key("fault_points").BeginObject();
  for (const auto& p : fault_stats) {
    w.Key(p.name).BeginObject()
        .Key("polls").Uint(p.polls)
        .Key("fires").Uint(p.fires)
        .EndObject();
  }
  w.EndObject();
  w.Key("violations").Int(violations);
  w.Key("service_metrics");
  obs::WriteServiceMetrics(w, metrics);
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }

  std::printf(
      "bench_service --chaos: %zu jobs, %llu fault fires, "
      "%d violation(s)\n"
      "  outcomes  %llu done, %llu timed out, %llu cancelled, "
      "%llu exhausted, %llu failed, %llu rejected\n"
      "  watchdog  %llu fire(s); peak job %llu bytes\n"
      "  report    %s\n",
      handles.size(), static_cast<unsigned long long>(fault_fires),
      violations,
      static_cast<unsigned long long>(metrics.counters.completed),
      static_cast<unsigned long long>(metrics.counters.timed_out),
      static_cast<unsigned long long>(metrics.counters.cancelled),
      static_cast<unsigned long long>(metrics.counters.resource_exhausted),
      static_cast<unsigned long long>(metrics.counters.failed),
      static_cast<unsigned long long>(metrics.counters.rejected),
      static_cast<unsigned long long>(metrics.watchdog_fires),
      static_cast<unsigned long long>(metrics.peak_job_bytes),
      report.c_str());
  return violations == 0 ? 0 : 1;
}

// The cache mixed-load harness: Zipf-skewed resubmissions of a fixed
// pattern pool, each submission under a fresh random vertex relabeling.
// Returns nonzero (under `smoke`) when the cache misses its gates.
int RunZipf(int64_t workers, int64_t queries, int64_t seed, double scale,
            int64_t k, int64_t patterns, double zipf_s,
            const std::string& report, bool smoke) {
  std::fprintf(stderr,
               "zipf: %lld patterns, s=%.2f, %lld queries, %lld workers\n",
               static_cast<long long>(patterns), zipf_s,
               static_cast<long long>(queries),
               static_cast<long long>(workers));
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, scale,
                                     static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed));
  workload::QuerySet pool = workload::MakeQuerySet(
      data, 8, true, static_cast<uint32_t>(patterns), rng);
  std::vector<double> weights(pool.queries.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
  }

  service::ServiceOptions options;
  options.num_workers = static_cast<uint32_t>(workers);
  options.queue_capacity = static_cast<size_t>(queries) + 1;
  service::MatchService service(data, options);

  Stopwatch wall;
  std::vector<service::JobHandle> handles;
  handles.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    const Graph& base = pool.queries[rng.WeightedIndex(weights)];
    std::vector<VertexId> perm(base.NumVertices());
    std::iota(perm.begin(), perm.end(), 0u);
    rng.Shuffle(perm);
    service::QueryJob job;
    job.query = PermuteVertices(base, perm);
    job.limit = static_cast<uint64_t>(k);
    handles.push_back(service.Submit(std::move(job)));
  }
  service.Drain();
  const double wall_ms = wall.ElapsedMs();

  // Per-class *run* times (queue wait excluded): the hit class skips DAG +
  // CS construction, the miss class pays it; the delta is the cache win.
  std::vector<double> hit_run, miss_run;
  uint64_t done = 0, other = 0;
  for (service::JobHandle& h : handles) {
    if (h.Status() == service::JobStatus::kDone) {
      ++done;
    } else {
      ++other;
      continue;
    }
    switch (h.cache_outcome()) {
      case service::CacheOutcome::kHit:
      case service::CacheOutcome::kCoalesced:
        hit_run.push_back(h.run_ms());
        break;
      case service::CacheOutcome::kMiss:
        miss_run.push_back(h.run_ms());
        break;
      case service::CacheOutcome::kNone:
        break;  // never ran, or uncacheable
    }
  }
  const uint64_t classified = hit_run.size() + miss_run.size();
  const double hit_rate =
      classified == 0
          ? 0.0
          : static_cast<double>(hit_run.size()) /
                static_cast<double>(classified);
  const LatencySummary hit_lat = Summarize(hit_run);
  const LatencySummary miss_lat = Summarize(miss_run);

  obs::ServiceMetricsSnapshot metrics = service.Metrics();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("service_zipf");
  w.Key("config").BeginObject()
      .Key("workers").Int(workers)
      .Key("queries").Int(queries)
      .Key("seed").Int(seed)
      .Key("scale").Double(scale)
      .Key("limit").Int(k)
      .Key("patterns").Int(patterns)
      .Key("zipf_s").Double(zipf_s)
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("wall_ms").Double(wall_ms);
  w.Key("throughput_qps")
      .Double(static_cast<double>(handles.size()) / (wall_ms / 1000.0));
  w.Key("hit_rate").Double(hit_rate);
  w.Key("hit_jobs").Uint(hit_run.size());
  w.Key("miss_jobs").Uint(miss_run.size());
  w.Key("outcomes").BeginObject()
      .Key("done").Uint(done)
      .Key("other").Uint(other)
      .EndObject();
  w.Key("latency_hit_run");
  WriteLatency(w, hit_lat);
  w.Key("latency_miss_run");
  WriteLatency(w, miss_lat);
  w.Key("p50_speedup")
      .Double(hit_lat.p50 > 0 ? miss_lat.p50 / hit_lat.p50 : 0.0);
  w.Key("service_metrics");
  obs::WriteServiceMetrics(w, metrics);
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }

  std::printf(
      "bench_service --zipf: %zu queries over %lld patterns\n"
      "  hit rate      %.1f%% (%zu hit / %zu miss)\n"
      "  run latency   hit p50 %.2f ms p99 %.2f ms | miss p50 %.2f ms "
      "p99 %.2f ms\n"
      "  cache         %llu entries, %llu resident bytes, %llu evictions\n"
      "  report        %s\n",
      handles.size(), static_cast<long long>(patterns), 100.0 * hit_rate,
      hit_run.size(), miss_run.size(), hit_lat.p50, hit_lat.p99,
      miss_lat.p50, miss_lat.p99,
      static_cast<unsigned long long>(metrics.cache_entries),
      static_cast<unsigned long long>(metrics.cache_resident_bytes),
      static_cast<unsigned long long>(metrics.cache_evictions),
      report.c_str());

  if (!smoke) return 0;
  int failures = 0;
  if (hit_rate < 0.6) {
    ++failures;
    std::fprintf(stderr, "zipf GATE: hit rate %.3f < 0.6\n", hit_rate);
  }
  if (!(hit_lat.p50 < miss_lat.p50)) {
    ++failures;
    std::fprintf(stderr,
                 "zipf GATE: hit p50 %.3f ms not under miss p50 %.3f ms\n",
                 hit_lat.p50, miss_lat.p50);
  }
  return failures == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  int64_t& workers = flags.Int64("workers", 4, "service worker threads");
  int64_t& queries = flags.Int64("queries", 256, "total queries to submit");
  int64_t& seed = flags.Int64("seed", 42, "workload generator seed");
  double& scale = flags.Double("scale", 0.25, "dataset synthesis scale");
  int64_t& k = flags.Int64("k", 100000, "embedding limit per query");
  int64_t& hard_deadline_ms = flags.Int64(
      "hard_deadline_ms", 50, "deadline of the hard query class");
  std::string& report =
      flags.String("report", "BENCH_service.json", "JSON report path");
  bool& smoke = flags.Bool(
      "smoke", false,
      "CI mode: clamp to >= 64 queries / >= 4 workers, tiny dataset");
  bool& chaos = flags.Bool(
      "chaos", false,
      "fault-injection harness: assert robustness invariants under load");
  int64_t& chaos_seed =
      flags.Int64("chaos_seed", 1, "fault schedule seed (--chaos)");
  double& fault_rate = flags.Double(
      "fault_rate", 0.02, "per-poll fault probability (--chaos)");
  bool& zipf = flags.Bool(
      "zipf", false,
      "cache mixed-load harness: Zipf-skewed relabeled resubmissions");
  int64_t& patterns =
      flags.Int64("patterns", 16, "distinct pattern pool size (--zipf)");
  double& zipf_s =
      flags.Double("zipf_s", 1.0, "Zipf popularity exponent (--zipf)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (smoke) {
    queries = std::max<int64_t>(queries, 64);
    workers = std::max<int64_t>(workers, 4);
    scale = std::min(scale, 0.1);
  }
  if (chaos) {
    return RunChaos(workers, queries, seed, chaos_seed, fault_rate, scale,
                    hard_deadline_ms,
                    report == "BENCH_service.json" ? "BENCH_chaos.json"
                                                   : report);
  }
  if (zipf) {
    // Short limits keep the search phase comparable to the build phase in
    // smoke runs, so the hit-vs-miss delta measures the cache, not noise.
    if (smoke) k = std::min<int64_t>(k, 2000);
    return RunZipf(workers, queries, seed, scale, k, patterns, zipf_s,
                   report, smoke);
  }

  std::fprintf(stderr, "synthesizing Yeast stand-in (scale %.3g)...\n",
               scale);
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, scale,
                                     static_cast<uint64_t>(seed));
  std::fprintf(stderr, "data: %u vertices, %llu edges\n", data.NumVertices(),
               static_cast<unsigned long long>(data.NumEdges()));

  // The three traffic classes of the mix. "Hard" queries are larger,
  // denser extractions run under a tight deadline, so a fraction of them
  // times out by design — exactly the load shape a serving tier sees.
  Rng rng(static_cast<uint64_t>(seed));
  workload::QuerySet easy = workload::MakeQuerySet(data, 8, true, 16, rng);
  workload::QuerySet hard = workload::MakeQuerySet(data, 24, false, 8, rng);
  std::vector<Graph> negative;
  for (const Graph& q : easy.queries) {
    negative.push_back(workload::PerturbLabels(q, data, 3, rng));
  }

  service::ServiceOptions options;
  options.num_workers = static_cast<uint32_t>(workers);
  options.queue_capacity = static_cast<size_t>(queries);
  service::MatchService service(data, options);

  std::fprintf(stderr, "submitting %lld queries to %lld workers...\n",
               static_cast<long long>(queries),
               static_cast<long long>(workers));
  Stopwatch wall;
  std::vector<service::JobHandle> handles;
  handles.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    service::QueryJob job;
    job.priority =
        static_cast<service::Priority>(i % service::kNumPriorities);
    job.limit = static_cast<uint64_t>(k);
    switch (i % 3) {
      case 0:
        job.query = easy.queries[static_cast<size_t>(i / 3) %
                                 easy.queries.size()];
        break;
      case 1:
        job.query = hard.queries[static_cast<size_t>(i / 3) %
                                 hard.queries.size()];
        job.deadline_ms = static_cast<uint64_t>(hard_deadline_ms);
        break;
      default:
        job.query =
            negative[static_cast<size_t>(i / 3) % negative.size()];
        break;
    }
    handles.push_back(service.Submit(std::move(job)));
  }
  service.Drain();
  const double wall_ms = wall.ElapsedMs();

  // Exact per-class end-to-end latencies (queue wait + run).
  std::vector<double> all_lat, easy_lat, hard_lat, neg_lat;
  uint64_t done = 0, timed_out = 0, failed = 0, embeddings = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    service::JobHandle& h = handles[i];
    const double latency = h.wait_ms() + h.run_ms();
    all_lat.push_back(latency);
    (i % 3 == 0 ? easy_lat : i % 3 == 1 ? hard_lat : neg_lat)
        .push_back(latency);
    switch (h.Status()) {
      case service::JobStatus::kDone:
        ++done;
        embeddings += h.Result().embeddings;
        break;
      case service::JobStatus::kTimedOut:
        ++timed_out;
        break;
      default:
        ++failed;
        break;
    }
  }
  const double throughput =
      static_cast<double>(handles.size()) / (wall_ms / 1000.0);

  std::fprintf(stderr, "measuring cancel latency...\n");
  const double cancel_ms = CancelProbeMs();
  // TSan/ASan builds run the search loop an order of magnitude slower, so
  // the hard failure bound is generous; the JSON records the real number
  // against the 50 ms target.
  const bool cancel_ok = cancel_ms < 500.0;

  obs::ServiceMetricsSnapshot metrics = service.Metrics();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("service");
  w.Key("config").BeginObject()
      .Key("workers").Int(workers)
      .Key("queries").Int(queries)
      .Key("seed").Int(seed)
      .Key("scale").Double(scale)
      .Key("limit").Int(k)
      .Key("hard_deadline_ms").Int(hard_deadline_ms)
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("wall_ms").Double(wall_ms);
  w.Key("throughput_qps").Double(throughput);
  w.Key("outcomes").BeginObject()
      .Key("done").Uint(done)
      .Key("timed_out").Uint(timed_out)
      .Key("other").Uint(failed)
      .Key("embeddings").Uint(embeddings)
      .EndObject();
  w.Key("latency_all");
  WriteLatency(w, Summarize(all_lat));
  w.Key("latency_easy");
  WriteLatency(w, Summarize(easy_lat));
  w.Key("latency_hard");
  WriteLatency(w, Summarize(hard_lat));
  w.Key("latency_negative");
  WriteLatency(w, Summarize(neg_lat));
  w.Key("cancel_probe").BeginObject()
      .Key("latency_ms").Double(cancel_ms)
      .Key("target_ms").Double(50.0)
      .Key("under_target").Bool(cancel_ms < 50.0)
      .EndObject();
  w.Key("service_metrics");
  obs::WriteServiceMetrics(w, metrics);
  w.EndObject();

  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);

  LatencySummary all = Summarize(all_lat);
  std::printf(
      "bench_service: %zu queries, %lld workers\n"
      "  wall          %.1f ms\n"
      "  throughput    %.1f queries/s\n"
      "  latency       p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"
      "  outcomes      %llu done, %llu timed out, %llu other\n"
      "  cancel probe  %.2f ms (%s 50 ms target)\n"
      "  report        %s\n",
      handles.size(), static_cast<long long>(workers), wall_ms, throughput,
      all.p50, all.p95, all.p99, all.max,
      static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(failed), cancel_ms,
      cancel_ms < 50.0 ? "under" : "OVER", report.c_str());
  return cancel_ok ? 0 : 1;
}

}  // namespace
}  // namespace daf

int main(int argc, char** argv) { return daf::Run(argc, argv); }

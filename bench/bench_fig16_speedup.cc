// Regenerates Figure 16 (Appendix A.4): speedup of the parallelized DAF
// when finding ALL embeddings (k = infinity) of size-6 queries on Human, so
// the total work is identical for every thread count. On a single-core host
// the wall-clock speedup stays ~1; the per-thread work split (printed
// alongside) shows the load balance that produces the paper's 12.7x at 16
// threads on a 16-core machine. See EXPERIMENTS.md, substitution 4.
#include <cstdio>

#include "bench_util.h"
#include "daf/parallel.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  Graph data = BuildDataset(workload::DatasetId::kHuman, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 99707);
  std::printf(
      "== Figure 16: parallel speedup, all embeddings, |V(q)|=6 (Human) "
      "==\n");
  std::printf("%-8s%-9s%12s%12s%14s%24s\n", "Set", "threads", "avg_ms",
              "speedup", "rec_calls", "thread_call_balance");
  for (bool sparse : {true, false}) {
    workload::QuerySet set = workload::MakeQuerySet(
        data, 6, sparse, static_cast<uint32_t>(common.queries), rng);
    if (set.queries.empty()) continue;
    double single_thread_ms = 0;
    for (uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
      double total_ms = 0;
      uint64_t total_calls = 0;
      uint64_t max_thread_calls = 0;
      uint64_t min_thread_calls = ~0ull;
      int solved = 0;
      for (const Graph& q : set.queries) {
        MatchOptions opts;
        opts.limit = 0;  // all embeddings: equal work at any thread count
        opts.time_limit_ms = static_cast<uint64_t>(common.timeout_ms) * 5;
        ParallelMatchResult r = ParallelDafMatch(q, data, opts, threads);
        if (!r.ok || r.timed_out) continue;
        ++solved;
        total_ms += r.preprocess_ms + r.search_ms;
        total_calls += r.recursive_calls;
        for (uint64_t c : r.per_thread_calls) {
          max_thread_calls = std::max(max_thread_calls, c);
          min_thread_calls = std::min(min_thread_calls, c);
        }
      }
      if (solved == 0) continue;
      double avg_ms = total_ms / solved;
      if (threads == 1) single_thread_ms = avg_ms;
      std::printf("%-8s%-9u%12.2f%12.2f%14.0f%13llu/%-10llu\n",
                  set.Name().c_str(), threads, avg_ms,
                  avg_ms > 0 ? single_thread_ms / avg_ms : 0.0,
                  static_cast<double>(total_calls) / solved,
                  static_cast<unsigned long long>(min_thread_calls),
                  static_cast<unsigned long long>(max_thread_calls));
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

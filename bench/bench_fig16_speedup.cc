// Regenerates Figure 16 (Appendix A.4): speedup of the parallelized DAF
// when finding ALL embeddings (k = infinity) of size-6 queries on Human, so
// the total work is identical for every thread count, comparing the paper's
// root-cursor partitioning against the work-stealing engine. A synthetic
// *skewed* workload is added on top: a data graph with two root candidates
// whose subtrees differ by orders of magnitude — the shape where
// partitioning only the root's candidates (Appendix A.4) plateaus, because
// one worker inherits essentially the whole search tree. Work stealing
// splits that dominant subtree's candidate ranges on demand instead.
//
// On a single-core host the wall-clock speedup stays ~1; the per-thread
// work split and the load-imbalance metric max/mean per-thread recursive
// calls (1.00 = perfect balance, `threads` = fully serialized) show the
// load balance that produces the paper's 12.7x at 16 threads on a 16-core
// machine. See EXPERIMENTS.md, substitution 4.
//
// `--smoke` shrinks everything to a token run (CI: does the harness still
// execute end to end?). Results are also recorded to BENCH_fig16.json
// (override with --report) with one row per (workload, strategy, threads).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "daf/parallel.h"
#include "obs/json.h"

namespace daf::bench {
namespace {

struct Fig16Row {
  std::string label;
  std::string strategy;
  uint32_t threads = 0;
  double avg_ms = 0;
  double speedup = 0;
  double rec_calls = 0;
  double call_imbalance = 0;
  uint64_t steals = 0;
  uint64_t donations = 0;
};

const char* StrategyName(ParallelStrategy s) {
  return s == ParallelStrategy::kWorkStealing ? "steal" : "cursor";
}

/// The skew trap: one label-1 anchor owns a label-0 clique of `clique`
/// vertices (every ordered vertex triple is an embedding of the query's
/// triangle), the other owns a single label-0 triangle. The query root (two
/// candidates, the anchors) makes root partitioning hand one worker
/// ~clique^3 units of work and another ~6.
Graph MakeSkewedData(uint32_t clique) {
  std::vector<Label> labels;
  std::vector<Edge> edges;
  const VertexId anchor_a = 0;
  labels.push_back(1);
  for (uint32_t i = 0; i < clique; ++i) {
    VertexId v = static_cast<VertexId>(labels.size());
    labels.push_back(0);
    edges.emplace_back(anchor_a, v);
    for (VertexId w = anchor_a + 1; w < v; ++w) edges.emplace_back(w, v);
  }
  const VertexId anchor_b = static_cast<VertexId>(labels.size());
  labels.push_back(1);
  VertexId t0 = anchor_b + 1;
  for (int i = 0; i < 3; ++i) labels.push_back(0);
  for (int i = 0; i < 3; ++i) {
    edges.emplace_back(anchor_b, t0 + i);
    edges.emplace_back(t0 + i, t0 + (i + 1) % 3);
  }
  return Graph::FromEdges(std::move(labels), edges);
}

/// A label-1 pendant on a label-0 triangle.
Graph MakeSkewedQuery() {
  return Graph::FromEdges({1, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 1}});
}

void WriteReport(const std::vector<Fig16Row>& rows) {
  const std::string path = BenchReportPath();
  if (path.empty()) return;
  obs::JsonWriter w(2);
  w.BeginObject();
  w.Key("figure").String("fig16_speedup");
  w.Key("rows").BeginArray();
  for (const Fig16Row& r : rows) {
    w.BeginObject();
    w.Key("label").String(r.label);
    w.Key("strategy").String(r.strategy);
    w.Key("threads").Uint(r.threads);
    w.Key("avg_ms").Double(r.avg_ms);
    w.Key("speedup").Double(r.speedup);
    w.Key("rec_calls").Double(r.rec_calls);
    w.Key("call_imbalance").Double(r.call_imbalance);
    w.Key("steals").Uint(r.steals);
    w.Key("donations").Uint(r.donations);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // best effort, like bench_util's report
  std::string json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

void PrintRow(const Fig16Row& r, uint64_t min_calls, uint64_t max_calls) {
  std::printf("%-16s%-7s%-9u%12.2f%12.2f%14.0f%11.2f%11llu/%-10llu\n",
              r.label.c_str(), r.strategy.c_str(), r.threads, r.avg_ms,
              r.speedup, r.rec_calls, r.call_imbalance,
              static_cast<unsigned long long>(min_calls),
              static_cast<unsigned long long>(max_calls));
}

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  bool& smoke = flags.Bool("smoke", false,
                           "token run: tiny workloads, fewer thread counts");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  const std::vector<uint32_t> thread_counts =
      smoke ? std::vector<uint32_t>{1, 2, 4}
            : std::vector<uint32_t>{1, 2, 4, 8, 16};
  const uint32_t num_queries =
      smoke ? 2u : static_cast<uint32_t>(common.queries);
  std::vector<Fig16Row> rows;

  Graph data = BuildDataset(workload::DatasetId::kHuman, common);
  Rng rng(static_cast<uint64_t>(common.seed) * 99707);
  std::printf(
      "== Figure 16: parallel speedup, all embeddings, |V(q)|=6 (Human) "
      "==\n");
  std::printf("%-16s%-7s%-9s%12s%12s%14s%11s%22s\n", "Set", "strat",
              "threads", "avg_ms", "speedup", "rec_calls", "max/mean",
              "thread_call_balance");
  for (bool sparse : {true, false}) {
    workload::QuerySet set =
        workload::MakeQuerySet(data, 6, sparse, num_queries, rng);
    if (set.queries.empty()) continue;
    for (ParallelStrategy strategy :
         {ParallelStrategy::kRootCursor, ParallelStrategy::kWorkStealing}) {
      double single_thread_ms = 0;
      for (uint32_t threads : thread_counts) {
        double total_ms = 0;
        uint64_t total_calls = 0;
        double imbalance_sum = 0;
        uint64_t steals = 0;
        uint64_t donations = 0;
        uint64_t max_thread_calls = 0;
        uint64_t min_thread_calls = ~0ull;
        int solved = 0;
        for (const Graph& q : set.queries) {
          MatchOptions opts;
          opts.limit = 0;  // all embeddings: equal work at any thread count
          opts.time_limit_ms = static_cast<uint64_t>(common.timeout_ms) * 5;
          opts.parallel_strategy = strategy;
          // Pin workers socket-major: the speedup curves are what pinning
          // exists for (no-op on single-cpu hosts).
          opts.pin_workers = true;
          ParallelMatchResult r = ParallelDafMatch(q, data, opts, threads);
          if (!r.ok || r.timed_out) continue;
          ++solved;
          total_ms += r.preprocess_ms + r.search_ms;
          total_calls += r.recursive_calls;
          imbalance_sum += r.call_imbalance;
          steals += r.steals;
          donations += r.donations;
          for (uint64_t c : r.per_thread_calls) {
            max_thread_calls = std::max(max_thread_calls, c);
            min_thread_calls = std::min(min_thread_calls, c);
          }
        }
        if (solved == 0) continue;
        Fig16Row row;
        row.label = "human/" + set.Name();
        row.strategy = StrategyName(strategy);
        row.threads = threads;
        row.avg_ms = total_ms / solved;
        if (threads == 1) single_thread_ms = row.avg_ms;
        row.speedup = row.avg_ms > 0 ? single_thread_ms / row.avg_ms : 0.0;
        row.rec_calls = static_cast<double>(total_calls) / solved;
        row.call_imbalance = imbalance_sum / solved;
        row.steals = steals;
        row.donations = donations;
        PrintRow(row, min_thread_calls, max_thread_calls);
        rows.push_back(std::move(row));
      }
    }
  }

  // The skewed workload: two root candidates, one dominant subtree.
  const uint32_t clique = smoke ? 12u : 150u;
  Graph skew_data = MakeSkewedData(clique);
  Graph skew_query = MakeSkewedQuery();
  std::printf(
      "\n== Skewed roots: %u-clique vs triangle (root partitioning "
      "plateaus) ==\n",
      clique);
  std::printf("%-16s%-7s%-9s%12s%12s%14s%11s%22s\n", "Set", "strat",
              "threads", "avg_ms", "speedup", "rec_calls", "max/mean",
              "thread_call_balance");
  for (ParallelStrategy strategy :
       {ParallelStrategy::kRootCursor, ParallelStrategy::kWorkStealing}) {
    double single_thread_ms = 0;
    for (uint32_t threads : thread_counts) {
      MatchOptions opts;
      opts.limit = 0;
      opts.time_limit_ms = static_cast<uint64_t>(common.timeout_ms) * 5;
      opts.parallel_strategy = strategy;
      opts.pin_workers = true;
      ParallelMatchResult r =
          ParallelDafMatch(skew_query, skew_data, opts, threads);
      if (!r.ok || r.timed_out) continue;
      uint64_t max_thread_calls = 0;
      uint64_t min_thread_calls = ~0ull;
      for (uint64_t c : r.per_thread_calls) {
        max_thread_calls = std::max(max_thread_calls, c);
        min_thread_calls = std::min(min_thread_calls, c);
      }
      Fig16Row row;
      row.label = "skew/" + std::to_string(clique) + "clique";
      row.strategy = StrategyName(strategy);
      row.threads = threads;
      row.avg_ms = r.preprocess_ms + r.search_ms;
      if (threads == 1) single_thread_ms = row.avg_ms;
      row.speedup = row.avg_ms > 0 ? single_thread_ms / row.avg_ms : 0.0;
      row.rec_calls = static_cast<double>(r.recursive_calls);
      row.call_imbalance = r.call_imbalance;
      row.steals = r.steals;
      row.donations = r.donations;
      PrintRow(row, min_thread_calls, max_thread_calls);
      rows.push_back(std::move(row));
    }
  }

  WriteReport(rows);
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

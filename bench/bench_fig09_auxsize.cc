// Regenerates Figure 9: sizes of the auxiliary data structures of
// CFL-Match (CPI) and DAF (CS), measured as the average of Σ_u |C(u)| over
// each query set. The paper's claim: CS is consistently smaller than CPI.
#include <cstdio>

#include "bench_util.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  int64_t& num_sizes = flags.Int64("sizes", 2, "query sizes per dataset (up "
                                               "to 4, paper uses all 4)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf("== Figure 9: auxiliary structure sizes (avg Σ|C(u)|) ==\n");
  std::printf("%-8s%-10s%14s%14s%10s\n", "Dataset", "QuerySet", "CPI(CFL)",
              "CS(DAF)", "CS/CPI");
  for (const workload::DatasetSpec& spec : workload::Table2Specs()) {
    Graph data = BuildDataset(spec.id, common);
    Rng rng(static_cast<uint64_t>(common.seed) * 977 +
            static_cast<uint64_t>(spec.id));
    for (int si = 0; si < num_sizes && si < 4; ++si) {
      uint32_t size = spec.query_sizes[si];
      for (bool sparse : {true, false}) {
        workload::QuerySet set = workload::MakeQuerySet(
            data, size, sparse, static_cast<uint32_t>(common.queries), rng);
        if (set.queries.empty()) continue;
        std::vector<Algorithm> algos{
            MakeBaselineAlgorithm("CFL-Match", data, common),
            MakeDafAlgorithm("DAF", data, MatchOptions{}, common),
        };
        std::vector<Summary> summaries = EvaluateQuerySet(
            set.queries, algos, std::string(spec.name) + "/" + set.Name());
        double cpi = summaries[0].avg_aux;
        double cs = summaries[1].avg_aux;
        std::printf("%-8s%-10s%14.0f%14.0f%10.3f\n", spec.name,
                    set.Name().c_str(), cpi, cs, cpi > 0 ? cs / cpi : 0.0);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

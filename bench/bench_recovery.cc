// Recovery benchmark: what a restart of the durable match service costs.
//
// Three measurements over a synthetic R-MAT graph (the same generator the
// dynamic benchmark uses):
//
//   cold_start   loading the graph from the text format vs the DAFS binary
//                snapshot (median of --reps runs each). The binary path is
//                a bounds-checked memcpy into CSR arrays; the text path
//                re-parses and re-sorts. The smoke gate requires the
//                snapshot load to be >= 5x faster.
//   wal_replay   DurableStore::Open over a directory holding one snapshot
//                plus a WAL of --wal_batches batches: full recovery time
//                and records/second replayed.
//   sizes        bytes on disk for both formats (the snapshot also wins
//                on size; the report records the ratio).
//
//   $ ./bench/bench_recovery                 # full run, BENCH_recovery.json
//   $ ./bench/bench_recovery --smoke        # CI gate: cold-start >= 5x
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "obs/json.h"
#include "persist/snapshot.h"
#include "persist/store.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace daf {
namespace {

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/daf_bench_recovery_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path = made != nullptr ? made : "";
  }
  ~TempDir() {
    if (path.empty()) return;
    std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  std::string File(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// One balanced update batch against the current state (half removals of
/// existing edges, half fresh inserts), valid by construction.
dyn::UpdateBatch MakeBatch(const Graph& snapshot, uint64_t size, Rng& rng) {
  const uint32_t n = snapshot.NumVertices();
  dyn::UpdateBatch batch;
  for (uint64_t i = 0; i < size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    auto neighbors = snapshot.Neighbors(u);
    if (neighbors.empty()) continue;
    batch.RemoveEdge(u, neighbors[rng.UniformInt(neighbors.size())]);
  }
  for (uint64_t i = 0; i < size - size / 2; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u != v && !snapshot.HasEdge(u, v)) batch.InsertEdge(u, v);
  }
  return batch;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  int64_t& rmat_scale =
      flags.Int64("rmat_scale", 17, "R-MAT vertex scale (2^scale vertices)");
  int64_t& edges = flags.Int64("edges", 1000000, "data graph edges");
  int64_t& num_labels = flags.Int64("labels", 24, "vertex label count");
  int64_t& reps = flags.Int64("reps", 5, "load repetitions (median wins)");
  int64_t& wal_batches =
      flags.Int64("wal_batches", 200, "batches in the replayed WAL");
  int64_t& batch_edges =
      flags.Int64("batch_edges", 200, "operations per WAL batch");
  int64_t& seed = flags.Int64("seed", 42, "generator seed");
  std::string& report =
      flags.String("report", "BENCH_recovery.json", "JSON report path");
  bool& smoke = flags.Bool(
      "smoke", false,
      "CI mode: smaller graph; exit nonzero unless the binary snapshot "
      "cold-start beats the text load by >= 5x");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  if (smoke) {
    rmat_scale = std::min<int64_t>(rmat_scale, 15);
    edges = std::min<int64_t>(edges, 300000);
    wal_batches = std::min<int64_t>(wal_batches, 50);
  }

  Rng rng(static_cast<uint64_t>(seed));
  std::fprintf(stderr, "synthesizing R-MAT graph (scale %lld, %lld edges)\n",
               static_cast<long long>(rmat_scale),
               static_cast<long long>(edges));
  const uint32_t n = 1u << static_cast<uint32_t>(rmat_scale);
  std::vector<Edge> data_edges =
      RmatEdges(static_cast<uint32_t>(rmat_scale),
                static_cast<uint64_t>(edges), 0.57, 0.19, 0.19, rng);
  ConnectComponents(n, &data_edges, rng);
  const Graph data = Graph::FromEdges(
      ZipfLabels(n, static_cast<uint32_t>(num_labels), 0.7, rng), data_edges);
  std::fprintf(stderr, "data: %u vertices, %llu edges\n", data.NumVertices(),
               static_cast<unsigned long long>(data.NumEdges()));

  TempDir dir;
  const std::string text_path = dir.File("graph.txt");
  const std::string snap_path = dir.File("graph.dafs");
  std::string error;
  if (!SaveGraph(data, text_path, &error) ||
      !persist::WriteSnapshot(data, 0, snap_path, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  const uint64_t text_bytes = std::filesystem::file_size(text_path);
  const uint64_t snap_bytes = std::filesystem::file_size(snap_path);

  // --- Cold start: text vs binary snapshot.
  std::vector<double> text_ms, snap_ms;
  for (int64_t r = 0; r < reps; ++r) {
    Stopwatch t1;
    std::optional<Graph> g1 = LoadGraph(text_path, &error);
    text_ms.push_back(t1.ElapsedMs());
    Stopwatch t2;
    std::optional<Graph> g2 = persist::LoadSnapshot(snap_path, nullptr, &error);
    snap_ms.push_back(t2.ElapsedMs());
    if (!g1.has_value() || !g2.has_value() ||
        g1->NumEdges() != g2->NumEdges()) {
      std::fprintf(stderr, "cold-start load mismatch: %s\n", error.c_str());
      return 1;
    }
  }
  const double text_p50 = MedianMs(text_ms);
  const double snap_p50 = MedianMs(snap_ms);
  const double speedup = snap_p50 > 0 ? text_p50 / snap_p50 : 0.0;

  // --- WAL replay: seed a store, log a batch stream, recover it.
  const std::string store_dir = dir.File("store");
  uint64_t wal_bytes = 0;
  {
    persist::DurableStore::Options options;
    options.fsync_policy = persist::FsyncPolicy::kOff;
    auto store = persist::DurableStore::Open(store_dir, options, &error);
    if (store == nullptr || !store->InitializeFresh(data, 0, &error)) {
      std::fprintf(stderr, "store init failed: %s\n", error.c_str());
      return 1;
    }
    dyn::DeltaGraph dg(data);
    for (int64_t i = 0; i < wal_batches; ++i) {
      dyn::UpdateBatch batch = MakeBatch(
          *dg.Materialize(), static_cast<uint64_t>(batch_edges), rng);
      dyn::NormalizedBatch net;
      if (!dg.Normalize(batch, &net, &error) ||
          !store->AppendBatch(net, batch.add_vertices, dg.version() + 1,
                              &error)) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
      if (!dg.ApplyBatch(batch).ok) {
        std::fprintf(stderr, "apply failed\n");
        return 1;
      }
    }
    wal_bytes = store->Stats().wal_bytes;
    if (!store->Sync(&error)) {
      std::fprintf(stderr, "sync failed: %s\n", error.c_str());
      return 1;
    }
  }
  Stopwatch recovery_timer;
  auto store = persist::DurableStore::Open(store_dir, {}, &error);
  const double recovery_ms = recovery_timer.ElapsedMs();
  if (store == nullptr || !store->has_state()) {
    std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
    return 1;
  }
  const uint64_t replayed = store->recovery().wal_records_replayed;
  if (replayed != static_cast<uint64_t>(wal_batches)) {
    std::fprintf(stderr, "GATE: replayed %llu != logged %lld\n",
                 static_cast<unsigned long long>(replayed),
                 static_cast<long long>(wal_batches));
    return 1;
  }
  const double replay_per_sec =
      recovery_ms > 0 ? 1000.0 * static_cast<double>(replayed) / recovery_ms
                      : 0.0;

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("recovery");
  w.Key("config").BeginObject()
      .Key("rmat_scale").Int(rmat_scale)
      .Key("edges").Int(edges)
      .Key("labels").Int(num_labels)
      .Key("reps").Int(reps)
      .Key("wal_batches").Int(wal_batches)
      .Key("batch_edges").Int(batch_edges)
      .Key("seed").Int(seed)
      .Key("smoke").Bool(smoke)
      .EndObject();
  w.Key("cold_start").BeginObject()
      .Key("text_p50_ms").Double(text_p50)
      .Key("snapshot_p50_ms").Double(snap_p50)
      .Key("speedup").Double(speedup)
      .Key("text_bytes").Uint(text_bytes)
      .Key("snapshot_bytes").Uint(snap_bytes)
      .Key("size_ratio")
      .Double(snap_bytes > 0
                  ? static_cast<double>(text_bytes) /
                        static_cast<double>(snap_bytes)
                  : 0.0)
      .EndObject();
  w.Key("wal_replay").BeginObject()
      .Key("records").Uint(replayed)
      .Key("wal_bytes").Uint(wal_bytes)
      .Key("recovery_ms").Double(recovery_ms)
      .Key("records_per_sec").Double(replay_per_sec)
      .EndObject();
  w.EndObject();
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);

  std::printf(
      "bench_recovery: %u vertices, %llu edges\n"
      "  cold start  text %.1f ms (%.1f MB)  snapshot %.1f ms (%.1f MB)  "
      "speedup %.1fx\n"
      "  wal replay  %llu records in %.1f ms (%.0f records/s, %.2f MB)\n"
      "  report      %s\n",
      data.NumVertices(), static_cast<unsigned long long>(data.NumEdges()),
      text_p50, static_cast<double>(text_bytes) / 1e6, snap_p50,
      static_cast<double>(snap_bytes) / 1e6, speedup,
      static_cast<unsigned long long>(replayed), recovery_ms, replay_per_sec,
      static_cast<double>(wal_bytes) / 1e6, report.c_str());

  if (smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "recovery GATE: snapshot cold-start speedup %.2fx < 5x "
                 "(text %.2f ms, snapshot %.2f ms)\n",
                 speedup, text_p50, snap_p50);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace daf

int main(int argc, char** argv) { return daf::Run(argc, argv); }

// Regenerates Table 2: characteristics of the (synthesized stand-ins for
// the) six data graphs. Paper values are printed alongside the measured
// values of the stand-in at the chosen scale; at --scale=1 the |V|, |E|,
// |Sigma| columns must match the paper.
#include <cstdio>

#include "bench_util.h"
#include "graph/properties.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf("== Table 2: characteristics of datasets ==\n");
  std::printf("%-8s%12s%14s%10s%10s%8s%8s%8s  |  %-30s\n", "Dataset",
              "|V(G)|", "|E(G)|", "|Sigma|", "avg-deg", "clust", "degen",
              "H(L)", "paper: |V| / |E| / |S| / deg");
  for (const workload::DatasetSpec& spec : workload::Table2Specs()) {
    Graph g = BuildDataset(spec.id, common);
    GraphStats stats = ComputeStats(g);
    std::printf(
        "%-8s%12u%14llu%10u%10.2f%8.3f%8u%8.2f  |  %u / %llu / %u / %.2f\n",
        spec.name, stats.num_vertices,
        static_cast<unsigned long long>(stats.num_edges), stats.num_labels,
        stats.avg_degree, stats.clustering, stats.degeneracy,
        stats.label_entropy, spec.num_vertices,
        static_cast<unsigned long long>(spec.num_edges), spec.num_labels,
        spec.avg_degree);
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

#include "bench_util.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "baselines/cfl_match.h"
#include "baselines/gaddi.h"
#include "baselines/graphql.h"
#include "baselines/quicksi.h"
#include "baselines/spath.h"
#include "baselines/turboiso.h"
#include "baselines/vf2.h"
#include "obs/json.h"
#include "util/timer.h"

namespace daf::bench {

namespace {

// --- Machine-readable result recording (BENCH_<figure>.json) -------------

struct ReportRow {
  std::string label;
  Summary summary;
};

std::vector<ReportRow>& ReportRows() {
  static std::vector<ReportRow> rows;
  return rows;
}

// Points at the live CommonFlags' --report value while a harness runs.
const std::string* g_report_flag = nullptr;

// The harness binary's figure name: basename without a "bench_" prefix.
std::string FigureName() {
#if defined(__GLIBC__)
  const char* name = program_invocation_short_name;
#else
  const char* name = "bench";
#endif
  std::string figure = name != nullptr ? name : "bench";
  if (figure.rfind("bench_", 0) == 0) figure = figure.substr(6);
  return figure;
}

void FlushBenchReport(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // report is best-effort; never fail a run
  std::string json = BenchReportJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

CommonFlags::CommonFlags(FlagSet& flags)
    : scale(flags.Double("scale", 0.0,
                         "dataset scale in (0,1]; 0 = per-dataset default")),
      queries(flags.Int64("queries", 10, "queries per query set")),
      k(flags.Int64("k", 100000, "embeddings to find per query (paper: "
                                 "1e5); 0 = all")),
      timeout_ms(flags.Int64("timeout_ms", 2000,
                             "per-query time limit (paper: 600000)")),
      seed(flags.Int64("seed", 1, "workload RNG seed")),
      report(flags.String("report", "",
                          "JSON result file; empty = BENCH_<figure>.json, "
                          "'-' disables")) {
  g_report_flag = &report;
}

CommonFlags::~CommonFlags() {
  if (g_report_flag == &report) g_report_flag = nullptr;
}

std::string BenchReportPath() {
  if (g_report_flag != nullptr && *g_report_flag == "-") return "";
  if (g_report_flag != nullptr && !g_report_flag->empty()) {
    return *g_report_flag;
  }
  return "BENCH_" + FigureName() + ".json";
}

std::string BenchReportJson() {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("figure").String(FigureName());
  w.Key("rows").BeginArray();
  for (const ReportRow& row : ReportRows()) {
    const Summary& s = row.summary;
    w.BeginObject();
    w.Key("label").String(row.label);
    w.Key("algorithm").String(s.algorithm);
    w.Key("avg_ms").Double(s.avg_ms);
    w.Key("avg_preprocess_ms").Double(s.avg_preprocess_ms);
    w.Key("avg_calls").Double(s.avg_calls);
    w.Key("avg_aux").Double(s.avg_aux);
    w.Key("solved_pct").Double(s.solved_pct);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void ResetBenchReport() { ReportRows().clear(); }

double DefaultScale(workload::DatasetId id) {
  switch (id) {
    case workload::DatasetId::kYeast:
      return 0.5;
    case workload::DatasetId::kHuman:
      return 0.2;
    case workload::DatasetId::kHprd:
      return 0.3;
    case workload::DatasetId::kEmail:
      return 0.1;
    case workload::DatasetId::kDblp:
      return 0.02;
    case workload::DatasetId::kYago:
      return 0.005;
    case workload::DatasetId::kTwitterSim:
      return 0.02;
  }
  return 0.1;
}

Graph BuildDataset(workload::DatasetId id, const CommonFlags& flags) {
  double scale = flags.scale > 0 ? flags.scale : DefaultScale(id);
  Stopwatch timer;
  Graph g = workload::MakeDataset(id, scale, static_cast<uint64_t>(flags.seed));
  std::fprintf(stderr,
               "[bench] %s stand-in @ scale %.3g: |V|=%u |E|=%llu |Sigma|=%u "
               "avg-deg=%.2f (built in %.0f ms)\n",
               workload::GetSpec(id).name, scale, g.NumVertices(),
               static_cast<unsigned long long>(g.NumEdges()), g.NumLabels(),
               g.AverageDegree(), timer.ElapsedMs());
  return g;
}

std::vector<Summary> EvaluateQuerySet(const std::vector<Graph>& queries,
                                      const std::vector<Algorithm>& algos,
                                      const std::string& label) {
  struct PerAlgorithm {
    std::vector<Outcome> solved;
    uint32_t solved_count = 0;
  };
  std::vector<PerAlgorithm> results(algos.size());
  for (const Graph& query : queries) {
    for (size_t a = 0; a < algos.size(); ++a) {
      Outcome outcome = algos[a].run(query);
      if (outcome.solved) {
        results[a].solved.push_back(outcome);
        ++results[a].solved_count;
      }
    }
  }
  uint32_t n = queries.empty() ? 0 : static_cast<uint32_t>(-1);
  for (const PerAlgorithm& r : results) {
    n = std::min(n, r.solved_count);
  }
  std::vector<Summary> summaries;
  summaries.reserve(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    Summary s;
    s.algorithm = algos[a].name;
    s.solved_pct = queries.empty()
                       ? 0
                       : 100.0 * results[a].solved_count / queries.size();
    auto& solved = results[a].solved;
    std::sort(solved.begin(), solved.end(),
              [](const Outcome& x, const Outcome& y) {
                return x.total_ms < y.total_ms;
              });
    uint32_t count = std::min<uint32_t>(n, solved.size());
    if (count > 0) {
      for (uint32_t i = 0; i < count; ++i) {
        s.avg_ms += solved[i].total_ms;
        s.avg_preprocess_ms += solved[i].preprocess_ms;
        s.avg_calls += static_cast<double>(solved[i].calls);
        s.avg_aux += static_cast<double>(solved[i].aux_size);
      }
      s.avg_ms /= count;
      s.avg_preprocess_ms /= count;
      s.avg_calls /= count;
      s.avg_aux /= count;
    }
    summaries.push_back(s);
  }
  const std::string report_path = BenchReportPath();
  if (!report_path.empty()) {
    for (const Summary& s : summaries) ReportRows().push_back({label, s});
    FlushBenchReport(report_path);
  }
  return summaries;
}

Algorithm MakeDafAlgorithm(const std::string& name, const Graph& data,
                           const MatchOptions& base,
                           const CommonFlags& flags) {
  MatchOptions options = base;
  options.limit = static_cast<uint64_t>(flags.k);
  options.time_limit_ms = static_cast<uint64_t>(flags.timeout_ms);
  return Algorithm{
      name, [&data, options](const Graph& query) {
        MatchResult r = DafMatch(query, data, options);
        Outcome o;
        o.total_ms = r.preprocess_ms + r.search_ms;
        o.preprocess_ms = r.preprocess_ms;
        o.calls = r.recursive_calls;
        o.solved = r.ok && !r.timed_out;
        o.aux_size = r.cs_candidates;
        o.embeddings = r.embeddings;
        return o;
      }};
}

Algorithm MakeBaselineAlgorithm(const std::string& name, const Graph& data,
                                const CommonFlags& flags) {
  using Fn = baselines::MatcherResult (*)(const Graph&, const Graph&,
                                          const baselines::MatcherOptions&);
  Fn fn = nullptr;
  if (name == "VF2") fn = &baselines::Vf2Match;
  if (name == "QuickSI") fn = &baselines::QuickSiMatch;
  if (name == "GraphQL") fn = &baselines::GraphQlMatch;
  if (name == "SPath") fn = &baselines::SPathMatch;
  if (name == "GADDI") fn = &baselines::GaddiMatch;
  if (name == "TurboISO") fn = &baselines::TurboIsoMatch;
  if (name == "CFL-Match") fn = &baselines::CflMatch;
  baselines::MatcherOptions options;
  options.limit = static_cast<uint64_t>(flags.k);
  options.time_limit_ms = static_cast<uint64_t>(flags.timeout_ms);
  return Algorithm{
      name, [&data, fn, options](const Graph& query) {
        baselines::MatcherResult r = fn(query, data, options);
        Outcome o;
        o.total_ms = r.preprocess_ms + r.search_ms;
        o.preprocess_ms = r.preprocess_ms;
        o.calls = r.recursive_calls;
        o.solved = r.ok && !r.timed_out;
        o.aux_size = r.aux_size;
        o.embeddings = r.embeddings;
        return o;
      }};
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& column : columns) {
    std::printf("%-14s", column.c_str());
  }
  std::printf("\n");
}

void PrintSummaryRow(const std::string& query_set, const Summary& summary) {
  std::printf("%-14s%-14s%-14.2f%-14.0f%-14.1f\n", query_set.c_str(),
              summary.algorithm.c_str(), summary.avg_ms, summary.avg_calls,
              summary.solved_pct);
}

}  // namespace daf::bench

// Regenerates Figure 13 (Appendix A.2): DAF against the remaining existing
// algorithms — VF2, QuickSI, GraphQL, GADDI, SPath and Turbo_iso. The paper
// runs the standard query sets; because the older algorithms explode on
// large queries, the default here uses moderate query sizes so the
// orders-of-magnitude ordering (DAF best, Turbo_iso runner-up, VF2/GADDI
// worst) is visible rather than a wall of timeouts; --paper_sizes restores
// the full sizes.
#include <cstdio>

#include "bench_util.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  bool& paper_sizes =
      flags.Bool("paper_sizes", false, "use the Table 2 query sizes instead "
                                       "of the small defaults");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf("== Figure 13: DAF vs other existing algorithms ==\n");
  std::printf("%-8s%-8s%-11s%12s%16s%10s\n", "Dataset", "Set", "Algo",
              "avg_ms", "avg_rec_calls", "solved%");
  const workload::DatasetId datasets[] = {workload::DatasetId::kYeast,
                                          workload::DatasetId::kEmail};
  const char* names[] = {"VF2",   "QuickSI", "GraphQL", "SPath",
                         "GADDI", "TurboISO"};
  for (workload::DatasetId id : datasets) {
    const workload::DatasetSpec& spec = workload::GetSpec(id);
    Graph data = BuildDataset(id, common);
    Rng rng(static_cast<uint64_t>(common.seed) * 773 +
            static_cast<uint64_t>(id));
    std::vector<uint32_t> sizes =
        paper_sizes ? std::vector<uint32_t>{spec.query_sizes[0],
                                            spec.query_sizes[1]}
                    : std::vector<uint32_t>{8, 12, 16};
    for (uint32_t size : sizes) {
      for (bool sparse : {true, false}) {
        workload::QuerySet set = workload::MakeQuerySet(
            data, size, sparse, static_cast<uint32_t>(common.queries), rng);
        if (set.queries.empty()) continue;
        std::vector<Algorithm> algos;
        for (const char* name : names) {
          algos.push_back(MakeBaselineAlgorithm(name, data, common));
        }
        algos.push_back(MakeDafAlgorithm("DAF", data, MatchOptions{},
                                         common));
        for (const Summary& s : EvaluateQuerySet(
                 set.queries, algos,
                 std::string(spec.name) + "/" + set.Name())) {
          std::printf("%-8s%-8s%-11s%12.2f%16.0f%10.1f\n", spec.name,
                      set.Name().c_str(), s.algorithm.c_str(), s.avg_ms,
                      s.avg_calls, s.solved_pct);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

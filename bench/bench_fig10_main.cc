// Regenerates Figure 10, the paper's main comparison: average elapsed time,
// average number of recursive calls, and percentage of solved queries for
// CFL-Match, DA (DAG-graph DP + adaptive order, no failing sets) and DAF
// (DA + failing-set pruning) on the six datasets and their Q_iS / Q_iN
// query sets. Expected shape: DAF >= DA >= CFL-Match in solved queries, and
// DAF ahead by orders of magnitude in recursive calls on hard sets.
#include <cstdio>

#include "bench_util.h"

namespace daf::bench {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  CommonFlags common(flags);
  int64_t& num_sizes = flags.Int64("sizes", 2, "query sizes per dataset (up "
                                               "to 4, paper uses all 4)");
  std::string& only = flags.String("dataset", "", "restrict to one dataset");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }
  std::printf(
      "== Figure 10: elapsed time / recursive calls / solved queries ==\n");
  std::printf("%-8s%-8s%-11s%12s%16s%10s\n", "Dataset", "Set", "Algo",
              "avg_ms", "avg_rec_calls", "solved%");
  for (const workload::DatasetSpec& spec : workload::Table2Specs()) {
    if (!only.empty() && only != spec.name) continue;
    Graph data = BuildDataset(spec.id, common);
    Rng rng(static_cast<uint64_t>(common.seed) * 1303 +
            static_cast<uint64_t>(spec.id));
    for (int si = 0; si < num_sizes && si < 4; ++si) {
      uint32_t size = spec.query_sizes[si];
      for (bool sparse : {true, false}) {
        workload::QuerySet set = workload::MakeQuerySet(
            data, size, sparse, static_cast<uint32_t>(common.queries), rng);
        if (set.queries.empty()) continue;
        MatchOptions da;
        da.use_failing_sets = false;
        std::vector<Algorithm> algos{
            MakeBaselineAlgorithm("CFL-Match", data, common),
            MakeDafAlgorithm("DA", data, da, common),
            MakeDafAlgorithm("DAF", data, MatchOptions{}, common),
        };
        for (const Summary& s : EvaluateQuerySet(
                 set.queries, algos,
                 std::string(spec.name) + "/" + set.Name())) {
          std::printf("%-8s%-8s%-11s%12.2f%16.0f%10.1f\n", spec.name,
                      set.Name().c_str(), s.algorithm.c_str(), s.avg_ms,
                      s.avg_calls, s.solved_pct);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace daf::bench

int main(int argc, char** argv) { return daf::bench::Run(argc, argv); }

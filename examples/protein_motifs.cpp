// Protein-motif search — the PPI-network scenario motivating the paper
// (protein interaction analysis [31]): count occurrences of small labeled
// motifs in a protein-protein interaction network.
//
//   $ ./examples/protein_motifs [--scale 0.5] [--k 100000]
//
// The network is the Yeast stand-in (see DESIGN.md); motifs are classic PPI
// patterns: a labeled triangle (three mutually interacting protein
// families), a "bi-fan"-style K2,2, and a hub-with-spokes star. For each
// motif the example reports the embedding count, the recursive calls, and
// the time split, comparing DAF against DAF without failing sets (DA).
#include <cstdio>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "graph/query_extract.h"
#include "util/flags.h"
#include "workload/datasets.h"

namespace {

struct Motif {
  std::string name;
  daf::Graph query;
};

// Builds motifs whose labels are the two most frequent protein families in
// the network, so they actually occur.
std::vector<Motif> MakeMotifs(const daf::Graph& network) {
  daf::Label a = 0;
  daf::Label b = 1;
  uint32_t best = 0;
  uint32_t second = 0;
  for (daf::Label l = 0; l < network.NumLabels(); ++l) {
    uint32_t f = network.LabelFrequency(l);
    if (f > best) {
      second = best;
      b = a;
      best = f;
      a = l;
    } else if (f > second) {
      second = f;
      b = l;
    }
  }
  daf::Label la = network.original_label(a);
  daf::Label lb = network.original_label(b);
  std::vector<Motif> motifs;
  motifs.push_back(
      {"triangle(A,A,B)",
       daf::Graph::FromEdges({la, la, lb}, {{0, 1}, {1, 2}, {0, 2}})});
  motifs.push_back(
      {"bi-fan K2,2", daf::Graph::FromEdges({la, la, lb, lb},
                                            {{0, 2}, {0, 3}, {1, 2}, {1, 3}})});
  motifs.push_back(
      {"hub star A->(B,B,B)",
       daf::Graph::FromEdges({la, lb, lb, lb}, {{0, 1}, {0, 2}, {0, 3}})});
  motifs.push_back(
      {"tailed triangle",
       daf::Graph::FromEdges({la, la, lb, lb},
                             {{0, 1}, {1, 2}, {0, 2}, {2, 3}})});
  return motifs;
}

}  // namespace

int main(int argc, char** argv) {
  daf::FlagSet flags;
  double& scale = flags.Double("scale", 0.5, "Yeast stand-in scale");
  int64_t& k = flags.Int64("k", 100000, "embeddings to count per motif");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  daf::Graph network =
      daf::workload::MakeDataset(daf::workload::DatasetId::kYeast, scale, 1);
  std::printf("PPI network: %u proteins, %llu interactions, %u families\n\n",
              network.NumVertices(),
              static_cast<unsigned long long>(network.NumEdges()),
              network.NumLabels());
  std::printf("%-22s%12s%14s%14s%12s%12s\n", "motif", "embeddings",
              "occurrences", "rec_calls", "DAF_ms", "DA_ms");
  for (const Motif& motif : MakeMotifs(network)) {
    daf::MatchOptions daf_options;
    daf_options.limit = static_cast<uint64_t>(k);
    daf::MatchResult with = daf::DafMatch(motif.query, network, daf_options);
    daf_options.use_failing_sets = false;
    daf::MatchResult without =
        daf::DafMatch(motif.query, network, daf_options);
    // Unordered occurrences = embeddings / |Aut(motif)| (exact when the
    // count completed below the k limit).
    uint64_t automorphisms = daf::CountAutomorphisms(motif.query);
    std::printf("%-22s%12llu%14llu%14llu%12.2f%12.2f\n", motif.name.c_str(),
                static_cast<unsigned long long>(with.embeddings),
                static_cast<unsigned long long>(
                    with.embeddings / std::max<uint64_t>(1, automorphisms)),
                static_cast<unsigned long long>(with.recursive_calls),
                with.preprocess_ms + with.search_ms,
                without.preprocess_ms + without.search_ms);
  }
  return 0;
}

// daf_server: a line-protocol front-end over service::MatchService — load a
// data graph once, then submit/poll/cancel subgraph-match jobs against it.
//
//   $ ./examples/daf_server                       # serve stdin/stdout
//   $ ./examples/daf_server --port 7878           # serve one TCP client
//   $ ./examples/daf_server --data g.txt --workers 8
//   $ ./examples/daf_server --data g.dafs --data-dir /var/lib/daf
//
// --data accepts any supported graph format (text, legacy DAFG binary, or
// a DAFS snapshot — see graph_convert). With --data-dir the service is
// durable (docs/PERSISTENCE.md): every update batch is WAL-appended before
// it applies, compaction rolls the log into a binary snapshot, and a
// restart recovers the newest snapshot plus the WAL tail — the preloaded
// graph only seeds the very first run. --fsync picks the durability/
// latency trade-off (every|interval|off). SIGTERM/SIGINT trigger a
// graceful shutdown: admission stops, in-flight jobs get --grace ms to
// drain, subscribers receive a final resync marker, and the WAL is
// fsynced before exit.
//
// Protocol (one command per line; every response is one or more lines, the
// last always starting with "ok" or "err"):
//
//   load <path>                         load the data graph from a t/v/e file
//   dataset <name> [scale] [seed]       synthesize a paper dataset stand-in
//                                       (yeast|human|hprd|email|dblp|yago)
//   start [workers] [queue_capacity]    start the service on the loaded graph
//   submit <query-path> [interactive|normal|batch] [deadline_ms] [limit]
//                                       -> "ok job <id> queued"
//   poll <id>                           -> "ok job <id> <status>"
//   wait <id>                           block until terminal; reports result
//   cancel <id>                         request cooperative cancellation
//   update <op>...                      apply one atomic update batch; ops:
//                                       +v <label> | -v <vertex> |
//                                       +e <u> <v> [edge-label] | -e <u> <v>
//                                       (new vertices get the next dense
//                                       ids, usable by later ops in the
//                                       same batch)
//   subscribe <query-path> [hom]        register a standing query
//                                       -> "ok sub <id> version=<v>"
//   deltas <id>                         drain the subscription's pending
//                                       embedding deltas, one per line:
//                                       "delta <version> +|- <v0> <v1> ..."
//                                       ("resync <version>" = deltas lost,
//                                       re-run the query at that version)
//   unsubscribe <id>                    deregister the standing query
//   stats                               service metrics as one JSON document
//   quit                                drain and exit
//
// Subscriptions are per connection: a session only ever sees deltas for
// standing queries it registered itself, and they are unsubscribed when
// the connection closes (each session owns its service instance, so a
// fresh connection starts from the loaded graph at version 0).
//
// The server is intentionally transport-thin: all scheduling, queueing,
// deadline, and cancellation behavior lives in MatchService (see
// docs/SERVICE.md).
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#ifdef __unix__
#include <cerrno>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++: iostream over an accepted fd
#endif

#include "dyn/update_batch.h"
#include "graph/io.h"
#include "obs/service_metrics.h"
#include "persist/snapshot.h"
#include "persist/store.h"
#include "service/match_service.h"
#include "util/fault_inject.h"
#include "util/flags.h"
#include "workload/datasets.h"

namespace {

using daf::Graph;
using daf::service::JobHandle;
using daf::service::JobStatus;
using daf::service::MatchService;
using daf::service::ParsePriority;
using daf::service::Priority;
using daf::service::QueryJob;
using daf::service::ServiceOptions;

// Set by the SIGTERM/SIGINT handler (installed without SA_RESTART, so a
// blocking accept/read returns EINTR and the loops notice the flag).
volatile std::sig_atomic_t g_stop = 0;

// Server-level settings that are not per-service knobs.
struct ServerConfig {
  std::string data_dir;  // empty = memory-only
  daf::persist::FsyncPolicy fsync_policy =
      daf::persist::FsyncPolicy::kEveryBatch;
  uint64_t grace_ms = 2000;  // graceful-shutdown drain bound
};

std::optional<daf::workload::DatasetId> DatasetByName(const std::string& s) {
  auto lower = [](std::string t) {
    for (char& c : t) c = static_cast<char>(std::tolower(c));
    return t;
  };
  const std::string wanted = lower(s);
  for (const auto& spec : daf::workload::Table2Specs()) {
    if (wanted == lower(spec.name)) return spec.id;
  }
  return std::nullopt;
}

// One protocol session: reads commands from `in`, answers on `out`.
class Session {
 public:
  Session(std::istream& in, std::ostream& out, ServiceOptions defaults,
          ServerConfig config)
      : in_(in), out_(out), defaults_(defaults), config_(std::move(config)) {}

  void SetData(Graph data) { data_ = std::move(data); has_data_ = true; }
  void StartService() {
    if (!config_.data_dir.empty()) {
      // Durable mode: recover (or seed) the data dir. The store is opened
      // per session — the control channel serves one client at a time, so
      // each service instance picks up exactly where the last left off.
      daf::persist::DurableStore::Options po;
      po.fsync_policy = config_.fsync_policy;
      po.delta_options.compaction_ratio = defaults_.delta_compaction_ratio;
      po.delta_options.compaction_min_edges =
          defaults_.delta_compaction_min_edges;
      std::string error;
      std::unique_ptr<daf::persist::DurableStore> store =
          daf::persist::DurableStore::Open(config_.data_dir, po, &error);
      if (store == nullptr) {
        Err(error);
        return;
      }
      if (!has_data_ && !store->has_state()) {
        Err("data dir " + config_.data_dir +
            " holds no recoverable state and no data graph was loaded "
            "(use load/dataset first)");
        return;
      }
      defaults_.data_store = std::move(store);
    }
    service_ = std::make_unique<MatchService>(data_, defaults_);
    out_ << "ok service started workers=" << defaults_.num_workers
         << " queue=" << defaults_.queue_capacity;
    if (defaults_.data_store != nullptr) {
      const daf::persist::RecoveryInfo& rec = defaults_.data_store->recovery();
      out_ << " data_dir=" << config_.data_dir
           << " recovered=" << (rec.recovered ? 1 : 0)
           << " version=" << service_->GraphVersion();
    }
    out_ << "\n";
  }

  void Run() {
    std::string line;
    while (g_stop == 0 && std::getline(in_, line)) {
      if (!Dispatch(line)) break;
      out_.flush();
    }
    for (auto& [id, sub] : subs_) sub.Unsubscribe();
    // Graceful even on an ordinary disconnect: drains in-flight jobs
    // (bounded) and fsyncs whatever the WAL policy deferred.
    if (service_ != nullptr) service_->GracefulShutdown(config_.grace_ms);
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd[0] == '#') return true;  // blank / comment
    if (cmd == "quit" || cmd == "exit") {
      out_ << "ok bye\n";
      return false;
    }
    if (cmd == "load") return CmdLoad(ss);
    if (cmd == "dataset") return CmdDataset(ss);
    if (cmd == "start") return CmdStart(ss);
    if (cmd == "submit") return CmdSubmit(ss);
    if (cmd == "poll") return CmdPoll(ss);
    if (cmd == "wait") return CmdWait(ss);
    if (cmd == "cancel") return CmdCancel(ss);
    if (cmd == "update") return CmdUpdate(ss);
    if (cmd == "subscribe") return CmdSubscribe(ss);
    if (cmd == "deltas") return CmdDeltas(ss);
    if (cmd == "unsubscribe") return CmdUnsubscribe(ss);
    if (cmd == "stats") return CmdStats();
    out_ << "err unknown command '" << cmd << "'\n";
    return true;
  }

  bool CmdLoad(std::istringstream& ss) {
    std::string path;
    if (!(ss >> path)) return Err("load needs a path");
    std::string error;
    std::optional<Graph> g = daf::persist::LoadGraphAnyFormat(path, &error);
    if (!g.has_value()) return Err(error);
    out_ << "ok graph vertices=" << g->NumVertices()
         << " edges=" << g->NumEdges() << "\n";
    SetData(std::move(*g));
    return true;
  }

  bool CmdDataset(std::istringstream& ss) {
    std::string name;
    double scale = 0.1;
    uint64_t seed = 1;
    if (!(ss >> name)) return Err("dataset needs a name");
    ss >> scale >> seed;
    std::optional<daf::workload::DatasetId> id = DatasetByName(name);
    if (!id.has_value()) return Err("unknown dataset '" + name + "'");
    Graph g = daf::workload::MakeDataset(*id, scale, seed);
    out_ << "ok graph vertices=" << g.NumVertices()
         << " edges=" << g.NumEdges() << "\n";
    SetData(std::move(g));
    return true;
  }

  bool CmdStart(std::istringstream& ss) {
    // In durable mode the data dir can supply the graph (recovery); a seed
    // graph is only mandatory memory-only or on the very first run.
    if (!has_data_ && config_.data_dir.empty()) {
      return Err("no data graph (use load/dataset first)");
    }
    if (service_ != nullptr) return Err("service already started");
    int64_t workers = 0, queue = 0;
    if (ss >> workers) defaults_.num_workers = static_cast<uint32_t>(workers);
    if (ss >> queue) defaults_.queue_capacity = static_cast<size_t>(queue);
    StartService();
    return true;
  }

  bool CmdSubmit(std::istringstream& ss) {
    if (service_ == nullptr) return Err("service not started");
    std::string path, priority_text;
    if (!(ss >> path)) return Err("submit needs a query path");
    QueryJob job;
    if (ss >> priority_text &&
        !ParsePriority(priority_text.c_str(), &job.priority)) {
      return Err("unknown priority '" + priority_text + "'");
    }
    ss >> job.deadline_ms >> job.limit;
    std::string error;
    std::optional<Graph> q = daf::LoadGraph(path, &error);
    if (!q.has_value()) return Err(error);
    job.query = std::move(*q);
    JobHandle handle = service_->Submit(std::move(job));
    jobs_.emplace(handle.id(), handle);
    out_ << "ok job " << handle.id() << " " << ToString(handle.Status())
         << "\n";
    return true;
  }

  JobHandle* FindJob(std::istringstream& ss) {
    uint64_t id = 0;
    if (!(ss >> id)) {
      Err("expected a job id");
      return nullptr;
    }
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      Err("no such job");
      return nullptr;
    }
    return &it->second;
  }

  bool CmdPoll(std::istringstream& ss) {
    if (JobHandle* job = FindJob(ss)) {
      out_ << "ok job " << job->id() << " " << ToString(job->Status())
           << "\n";
    }
    return true;
  }

  bool CmdWait(std::istringstream& ss) {
    JobHandle* job = FindJob(ss);
    if (job == nullptr) return true;
    JobStatus status = job->Wait();
    const daf::MatchResult& r = job->Result();
    out_ << "ok job " << job->id() << " " << ToString(status)
         << " embeddings=" << r.embeddings << " calls=" << r.recursive_calls
         << " wait_ms=" << job->wait_ms() << " run_ms=" << job->run_ms();
    if (!r.ok) out_ << " error=\"" << r.error << "\"";
    out_ << "\n";
    return true;
  }

  bool CmdCancel(std::istringstream& ss) {
    if (JobHandle* job = FindJob(ss)) {
      job->Cancel();
      out_ << "ok job " << job->id() << " cancel requested\n";
    }
    return true;
  }

  // update +v 3 +e 0 5 -e 1 2 -v 7   (one atomic batch per line)
  bool CmdUpdate(std::istringstream& ss) {
    if (service_ == nullptr) return Err("service not started");
    daf::dyn::UpdateBatch batch;
    std::string op;
    while (ss >> op) {
      if (op == "+v") {
        int64_t label = 0;
        if (!(ss >> label)) return Err("+v needs a label");
        batch.AddVertex(static_cast<daf::Label>(label));
      } else if (op == "-v") {
        uint32_t v = 0;
        if (!(ss >> v)) return Err("-v needs a vertex id");
        batch.RemoveVertex(v);
      } else if (op == "+e") {
        uint32_t u = 0, v = 0;
        if (!(ss >> u >> v)) return Err("+e needs two vertex ids");
        int64_t elabel = 0;
        ss >> elabel;  // optional; leaves 0 (unlabeled) when absent
        batch.InsertEdge(u, v, static_cast<daf::Label>(elabel));
      } else if (op == "-e") {
        uint32_t u = 0, v = 0;
        if (!(ss >> u >> v)) return Err("-e needs two vertex ids");
        batch.RemoveEdge(u, v);
      } else {
        return Err("unknown update op '" + op + "' (+v/-v/+e/-e)");
      }
    }
    daf::service::UpdateOutcome out = service_->ApplyUpdates(batch);
    if (!out.ok) return Err(out.error);
    out_ << "ok update version=" << out.version << " +e="
         << out.inserted_edges << " -e=" << out.removed_edges
         << " +v=" << out.added_vertices << " -v=" << out.removed_vertices
         << " ignored=" << out.ignored_ops
         << " created=" << out.embeddings_created
         << " destroyed=" << out.embeddings_destroyed
         << " notified=" << out.subscriptions_notified
         << " resyncs=" << out.resyncs << "\n";
    return true;
  }

  bool CmdSubscribe(std::istringstream& ss) {
    if (service_ == nullptr) return Err("service not started");
    std::string path, mode;
    if (!(ss >> path)) return Err("subscribe needs a query path");
    QueryJob job;
    if (ss >> mode) {
      if (mode != "hom") return Err("unknown subscribe mode '" + mode + "'");
      job.options.injective = false;
    }
    std::string error;
    std::optional<Graph> q = daf::LoadGraph(path, &error);
    if (!q.has_value()) return Err(error);
    job.query = std::move(*q);
    daf::service::SubscriptionHandle sub =
        service_->Subscribe(std::move(job));
    if (!sub.ok()) return Err(sub.error());
    subs_.emplace(sub.id(), sub);
    out_ << "ok sub " << sub.id() << " version=" << sub.subscribed_version()
         << "\n";
    return true;
  }

  daf::service::SubscriptionHandle* FindSub(std::istringstream& ss) {
    uint64_t id = 0;
    if (!(ss >> id)) {
      Err("expected a subscription id");
      return nullptr;
    }
    auto it = subs_.find(id);
    if (it == subs_.end()) {
      Err("no such subscription");  // per-connection: others' ids don't
      return nullptr;               // resolve here
    }
    return &it->second;
  }

  bool CmdDeltas(std::istringstream& ss) {
    daf::service::SubscriptionHandle* sub = FindSub(ss);
    if (sub == nullptr) return true;
    size_t batches = 0, deltas = 0;
    for (daf::service::DeltaBatch& batch : sub->Drain()) {
      ++batches;
      if (batch.resync) {
        out_ << "resync " << batch.version << "\n";
        continue;
      }
      for (const daf::service::EmbeddingDelta& d : batch.deltas) {
        ++deltas;
        out_ << "delta " << batch.version << (d.created ? " +" : " -");
        for (daf::VertexId v : d.embedding) out_ << " " << v;
        out_ << "\n";
      }
    }
    out_ << "ok sub " << sub->id() << " batches=" << batches
         << " deltas=" << deltas << "\n";
    return true;
  }

  bool CmdUnsubscribe(std::istringstream& ss) {
    daf::service::SubscriptionHandle* sub = FindSub(ss);
    if (sub == nullptr) return true;
    sub->Unsubscribe();
    out_ << "ok sub " << sub->id() << " unsubscribed\n";
    subs_.erase(sub->id());
    return true;
  }

  bool CmdStats() {
    if (service_ == nullptr) return Err("service not started");
    out_ << daf::obs::ServiceMetricsToJson(service_->Metrics()) << "\n"
         << "ok\n";
    return true;
  }

  bool Err(const std::string& message) {
    out_ << "err " << message << "\n";
    return true;
  }

  std::istream& in_;
  std::ostream& out_;
  ServiceOptions defaults_;
  ServerConfig config_;
  Graph data_;
  bool has_data_ = false;
  std::unique_ptr<MatchService> service_;
  std::map<uint64_t, JobHandle> jobs_;
  std::map<uint64_t, daf::service::SubscriptionHandle> subs_;
};

#ifdef __unix__
// An ostream sink over a raw fd that loops partial writes and retries
// EINTR, so a slow or half-closed client can't truncate a response or kill
// the process mid-write. A real write error (the client vanished — EPIPE,
// ECONNRESET, or an injected server_write fault) marks the buffer bad; the
// session's next getline/flush fails and only that connection ends.
class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }
  ~FdOutBuf() override {
    sync();
    ::close(fd_);  // owns its (dup'ed) fd
  }

 protected:
  int overflow(int ch) override {
    if (!FlushBuffer()) return traits_type::eof();
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return ch == traits_type::eof() ? 0 : ch;
  }
  int sync() override { return FlushBuffer() ? 0 : -1; }

 private:
  bool FlushBuffer() {
    const char* p = pbase();
    const char* end = pptr();
    while (p < end) {
      if (FAULT_POINT(server_write)) {
        errno = EPIPE;  // simulated peer disappearance
        return false;
      }
      ssize_t n = ::write(fd_, p, static_cast<size_t>(end - p));
      if (n < 0) {
        if (errno == EINTR) continue;  // interrupted: retry the same slice
        return false;                  // real error: poison this stream only
      }
      p += n;
    }
    setp(buffer_, buffer_ + sizeof(buffer_));
    return true;
  }

  int fd_;
  char buffer_[4096];
};

// Serves protocol sessions to TCP clients on 127.0.0.1:`port`, one client
// at a time (the service itself is concurrent; the control channel is not).
// Per-connection failures (protocol errors, write failures, exceptions) are
// contained: the session ends, the listener keeps accepting.
int ServeTcp(uint16_t port, const ServiceOptions& defaults,
             const ServerConfig& config,
             const std::optional<Graph>& preloaded) {
  // A client closing mid-response must surface as a write error on that
  // connection, not a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 8) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "daf_server listening on 127.0.0.1:%u\n", port);
  while (g_stop == 0) {
    int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) {
        // SIGTERM/SIGINT land here (no SA_RESTART): stop accepting and
        // exit; any in-session service already shut down gracefully when
        // its Run() loop saw the flag.
        if (g_stop != 0) break;
        continue;  // other signal during accept: keep serving
      }
      std::perror("accept");
      break;
    }
    try {
      __gnu_cxx::stdio_filebuf<char> inbuf(client, std::ios::in);
      FdOutBuf outbuf(::dup(client));
      std::istream in(&inbuf);
      std::ostream out(&outbuf);
      Session session(in, out, defaults, config);
      if (preloaded.has_value()) session.SetData(*preloaded);
      session.Run();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "session error: %s\n", e.what());
    }
    ::close(client);
  }
  if (g_stop != 0) std::fprintf(stderr, "daf_server: shutting down\n");
  ::close(listener);
  return 0;
}

// Installs the stop flag on SIGTERM/SIGINT without SA_RESTART, so blocking
// reads and accepts return EINTR and the serving loops wind down.
void InstallStopHandlers() {
  struct sigaction sa{};
  sa.sa_handler = [](int) { g_stop = 1; };
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}
#endif

}  // namespace

int main(int argc, char** argv) {
  daf::FlagSet flags;
  std::string& data_path =
      flags.String("data", "", "data graph to preload (t/v/e format)");
  std::string& dataset =
      flags.String("dataset", "", "paper dataset stand-in to preload");
  double& scale = flags.Double("scale", 0.1, "dataset synthesis scale");
  int64_t& workers = flags.Int64("workers", 4, "worker threads");
  int64_t& queue = flags.Int64("queue", 256, "admission queue capacity");
  int64_t& port =
      flags.Int64("port", 0, "serve TCP on 127.0.0.1:PORT (0 = stdin)");
  std::string& data_dir = flags.String(
      "data-dir", "", "durable-state directory (WAL + snapshots; empty = "
                      "memory-only)");
  std::string& fsync =
      flags.String("fsync", "every", "WAL fsync policy: every|interval|off");
  int64_t& grace =
      flags.Int64("grace", 2000, "graceful-shutdown drain bound (ms)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  ServiceOptions defaults;
  defaults.num_workers = static_cast<uint32_t>(workers);
  defaults.queue_capacity = static_cast<size_t>(queue);

  ServerConfig config;
  config.data_dir = data_dir;
  config.grace_ms = grace < 0 ? 0 : static_cast<uint64_t>(grace);
  if (!daf::persist::ParseFsyncPolicy(fsync, &config.fsync_policy)) {
    std::fprintf(stderr, "unknown --fsync policy %s (every|interval|off)\n",
                 fsync.c_str());
    return 1;
  }

  std::optional<Graph> preloaded;
  if (!data_path.empty()) {
    std::string error;
    preloaded = daf::persist::LoadGraphAnyFormat(data_path, &error);
    if (!preloaded.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", data_path.c_str(),
                   error.c_str());
      return 1;
    }
  } else if (!dataset.empty()) {
    std::optional<daf::workload::DatasetId> id = DatasetByName(dataset);
    if (!id.has_value()) {
      std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
      return 1;
    }
    preloaded = daf::workload::MakeDataset(*id, scale, 1);
  }

#ifdef __unix__
  InstallStopHandlers();
#endif

  if (port != 0) {
#ifdef __unix__
    return ServeTcp(static_cast<uint16_t>(port), defaults, config, preloaded);
#else
    std::fprintf(stderr, "--port requires a unix platform\n");
    return 1;
#endif
  }

  Session session(std::cin, std::cout, defaults, config);
  if (preloaded.has_value()) session.SetData(std::move(*preloaded));
  session.Run();
  return 0;
}

// Social-network pattern search — the social-network-analysis scenario of
// the paper's introduction [12, 37]: find structured groups of users in a
// heavy-tailed follower graph using the multi-threaded engine.
//
//   $ ./examples/social_network [--threads 4] [--k 1000]
//
// The data graph is the RMAT Twitter stand-in. The pattern is a "community
// seed": two influencers of the same interest with three common followers
// from a second interest group. Demonstrates ParallelDafMatch, the shared
// k-limit, and per-thread work counters.
#include <cstdio>

#include "daf/parallel.h"
#include "util/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  daf::FlagSet flags;
  int64_t& threads = flags.Int64("threads", 4, "worker threads");
  int64_t& k = flags.Int64("k", 1000, "pattern instances to find");
  double& scale = flags.Double("scale", 0.005, "network scale");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    flags.PrintUsage(argv[0]);
    return 1;
  }

  daf::Graph network = daf::workload::MakeDataset(
      daf::workload::DatasetId::kTwitterSim, scale, 7);
  std::printf("social graph: %u users, %llu links, %u interest groups\n",
              network.NumVertices(),
              static_cast<unsigned long long>(network.NumEdges()),
              network.NumLabels());

  // Pattern labels: the two most frequent interest groups.
  daf::Label a = 0;
  daf::Label b = 1;
  uint32_t fa = 0;
  uint32_t fb = 0;
  for (daf::Label l = 0; l < network.NumLabels(); ++l) {
    uint32_t f = network.LabelFrequency(l);
    if (f > fa) {
      fb = fa;
      b = a;
      fa = f;
      a = l;
    } else if (f > fb) {
      fb = f;
      b = l;
    }
  }
  // u0, u1: connected influencers (group A); u2..u4: followers of both
  // (group B).
  daf::Graph pattern = daf::Graph::FromEdges(
      {network.original_label(a), network.original_label(a),
       network.original_label(b), network.original_label(b),
       network.original_label(b)},
      {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 4}, {1, 4}});

  daf::MatchOptions options;
  options.limit = static_cast<uint64_t>(k);
  options.time_limit_ms = 30000;
  daf::ParallelMatchResult result = daf::ParallelDafMatch(
      pattern, network, options, static_cast<uint32_t>(threads));
  if (!result.ok) {
    std::fprintf(stderr, "match failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("found %llu community seeds in %.1f ms "
              "(preprocess %.1f ms, %u threads)\n",
              static_cast<unsigned long long>(result.embeddings),
              result.preprocess_ms + result.search_ms, result.preprocess_ms,
              result.threads_used);
  std::printf("per-thread search-tree nodes:");
  for (uint64_t calls : result.per_thread_calls) {
    std::printf(" %llu", static_cast<unsigned long long>(calls));
  }
  std::printf("\n");
  if (result.cs_certified_negative) {
    std::printf("(the candidate space proved the pattern absent without "
                "any search)\n");
  }
  return 0;
}

// Command-line subgraph matcher: load a data graph and a query graph from
// files (the standard `t/v/e` text format, see graph/io.h) and enumerate
// embeddings with any algorithm in the library.
//
//   $ ./examples/match_cli --data g.txt --query q.txt
//         [--algo daf|da|cfl|turboiso|vf2|quicksi|graphql|spath|gaddi]
//         [--k 100000] [--timeout_ms 60000] [--threads 1] [--print 5]
//         [--max-memory BYTES] [--profile[=FILE]]
//
// --max-memory (daf/da only) caps the search's arena + candidate-space
// staging memory; an over-budget run stops cooperatively and reports its
// partial counts with a "(RESOURCE EXHAUSTED)" marker (exit status 0, but
// the result is not a completed enumeration). See docs/ROBUSTNESS.md.
//
// --profile (daf/da only) attaches an obs::SearchProfile to the run and
// emits it as JSON together with the MatchResult: bare --profile prints to
// stdout, --profile=FILE writes the document to FILE. The schema is
// documented in docs/OBSERVABILITY.md.
#include <cstdio>
#include <string>

#include "baselines/cfl_match.h"
#include "baselines/gaddi.h"
#include "baselines/graphql.h"
#include "baselines/quicksi.h"
#include "baselines/spath.h"
#include "baselines/turboiso.h"
#include "baselines/vf2.h"
#include "daf/parallel.h"
#include "graph/io.h"
#include "obs/json.h"
#include "persist/snapshot.h"
#include "util/flags.h"
#include "util/memory_budget.h"

namespace {

int64_t g_printed = 0;
int64_t g_print_limit = 0;

bool PrintEmbedding(std::span<const daf::VertexId> embedding) {
  if (g_printed < g_print_limit) {
    ++g_printed;
    std::printf("M%lld:", static_cast<long long>(g_printed));
    for (uint32_t u = 0; u < embedding.size(); ++u) {
      std::printf(" %u->%u", u, embedding[u]);
    }
    std::printf("\n");
  }
  return true;
}

// Writes the JSON document to stdout ("-") or to `destination`.
bool EmitProfile(const std::string& destination, const std::string& json) {
  if (destination == "-") {
    std::printf("%s\n", json.c_str());
    return true;
  }
  std::FILE* f = std::fopen(destination.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write profile to %s\n", destination.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::fprintf(stderr, "profile written to %s\n", destination.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  daf::FlagSet flags;
  std::string& data_path = flags.String("data", "", "data graph file");
  std::string& query_path = flags.String("query", "", "query graph file");
  std::string& algo = flags.String("algo", "daf", "algorithm");
  int64_t& k = flags.Int64("k", 100000, "embeddings to find (0 = all)");
  int64_t& timeout_ms = flags.Int64("timeout_ms", 600000, "time limit");
  int64_t& threads = flags.Int64("threads", 1, "threads (daf only)");
  int64_t& print_limit =
      flags.Int64("print", 0, "print the first N embeddings");
  int64_t& max_memory = flags.Int64(
      "max-memory", 0, "search memory budget in bytes, daf/da (0 = none)");
  std::string& profile_out = flags.OptionalString(
      "profile", "", "-",
      "emit the JSON search profile (daf/da): bare = stdout, =FILE = file");
  if (!flags.Parse(argc, argv) || data_path.empty() || query_path.empty()) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
    }
    flags.PrintUsage(argv[0]);
    return 1;
  }
  g_print_limit = print_limit;
  std::string error;
  // Any supported format: text, legacy DAFG binary, or a DAFS snapshot
  // (see examples/graph_convert).
  auto data = daf::persist::LoadGraphAnyFormat(data_path, &error);
  if (!data) {
    std::fprintf(stderr, "cannot load data graph: %s\n", error.c_str());
    return 1;
  }
  auto query = daf::LoadGraph(query_path, &error);
  if (!query) {
    std::fprintf(stderr, "cannot load query graph: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "data: |V|=%u |E|=%llu; query: |V|=%u |E|=%llu\n",
               data->NumVertices(),
               static_cast<unsigned long long>(data->NumEdges()),
               query->NumVertices(),
               static_cast<unsigned long long>(query->NumEdges()));

  uint64_t embeddings = 0;
  uint64_t calls = 0;
  double ms = 0;
  bool timed_out = false;
  bool exhausted = false;
  bool ok = true;
  if (algo == "daf" || algo == "da") {
    daf::obs::SearchProfile profile;
    daf::MemoryBudget budget(
        max_memory > 0 ? static_cast<uint64_t>(max_memory) : 0);
    daf::MatchOptions options;
    options.limit = static_cast<uint64_t>(k);
    options.time_limit_ms = static_cast<uint64_t>(timeout_ms);
    options.use_failing_sets = algo == "daf";
    if (max_memory > 0) options.memory_budget = &budget;
    if (!profile_out.empty()) options.profile = &profile;
    if (g_print_limit > 0) options.callback = &PrintEmbedding;
    daf::MatchResult r;
    if (threads > 1) {
      r = daf::ParallelDafMatch(*query, *data, options,
                                static_cast<uint32_t>(threads));
    } else {
      r = daf::DafMatch(*query, *data, options);
    }
    ok = r.ok;
    if (!ok) std::fprintf(stderr, "%s\n", r.error.c_str());
    embeddings = r.embeddings;
    calls = r.recursive_calls;
    ms = r.preprocess_ms + r.search_ms;
    timed_out = r.timed_out;
    exhausted = r.resource_exhausted;
    if (ok && !profile_out.empty()) {
      std::string json = daf::obs::MatchResultToJson(r, &profile);
      if (!EmitProfile(profile_out, json)) return 1;
    }
  } else {
    using Fn = daf::baselines::MatcherResult (*)(
        const daf::Graph&, const daf::Graph&,
        const daf::baselines::MatcherOptions&);
    Fn fn = nullptr;
    if (algo == "cfl") fn = &daf::baselines::CflMatch;
    if (algo == "turboiso") fn = &daf::baselines::TurboIsoMatch;
    if (algo == "vf2") fn = &daf::baselines::Vf2Match;
    if (algo == "quicksi") fn = &daf::baselines::QuickSiMatch;
    if (algo == "graphql") fn = &daf::baselines::GraphQlMatch;
    if (algo == "spath") fn = &daf::baselines::SPathMatch;
    if (algo == "gaddi") fn = &daf::baselines::GaddiMatch;
    if (fn == nullptr) {
      std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
      return 1;
    }
    if (!profile_out.empty()) {
      std::fprintf(stderr,
                   "--profile is only supported for --algo daf|da; ignored\n");
    }
    daf::baselines::MatcherOptions options;
    options.limit = static_cast<uint64_t>(k);
    options.time_limit_ms = static_cast<uint64_t>(timeout_ms);
    if (g_print_limit > 0) options.callback = &PrintEmbedding;
    daf::baselines::MatcherResult r = fn(*query, *data, options);
    ok = r.ok;
    embeddings = r.embeddings;
    calls = r.recursive_calls;
    ms = r.preprocess_ms + r.search_ms;
    timed_out = r.timed_out;
  }
  if (!ok) return 1;
  std::printf("%llu embeddings, %llu recursive calls, %.2f ms%s%s\n",
              static_cast<unsigned long long>(embeddings),
              static_cast<unsigned long long>(calls), ms,
              timed_out ? " (TIMED OUT)" : "",
              exhausted ? " (RESOURCE EXHAUSTED)" : "");
  return 0;
}

// Quickstart: build a tiny labeled data graph, a query graph, and enumerate
// all embeddings with DAF.
//
//   $ ./examples/quickstart
//
// Demonstrates the three-line core API (Graph::FromEdges -> MatchOptions ->
// DafMatch with a per-embedding callback) and the pull-based alternative
// (EmbeddingCursor).
#include <cstdio>

#include "daf/cursor.h"
#include "daf/engine.h"

int main() {
  using daf::Edge;
  using daf::Graph;
  using daf::Label;
  using daf::VertexId;

  // Data graph: a labeled "bowtie" — two triangles sharing vertex 2.
  //   labels: 0 = circle, 1 = square, 2 = diamond
  //
  //      0(0) --- 1(1)        3(1) --- 4(0)
  //        \      /   \      /    \    /
  //         \    /     2(2)        \  /
  //          \  /     /    \        \/
  //           \/_____/      \______ /\ ...
  Graph data = Graph::FromEdges(
      {0, 1, 2, 1, 0},
      {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});

  // Query: a triangle circle - square - diamond.
  Graph query = Graph::FromEdges({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});

  daf::MatchOptions options;
  options.limit = 0;  // enumerate all embeddings
  options.callback = [&](std::span<const VertexId> embedding) {
    std::printf("embedding:");
    for (uint32_t u = 0; u < embedding.size(); ++u) {
      std::printf("  u%u -> v%u", u, embedding[u]);
    }
    std::printf("\n");
    return true;  // keep enumerating
  };

  daf::MatchResult result = daf::DafMatch(query, data, options);
  if (!result.ok) {
    std::fprintf(stderr, "match failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf(
      "found %llu embeddings with %llu recursive calls "
      "(CS: %llu candidates, %llu edges)\n",
      static_cast<unsigned long long>(result.embeddings),
      static_cast<unsigned long long>(result.recursive_calls),
      static_cast<unsigned long long>(result.cs_candidates),
      static_cast<unsigned long long>(result.cs_edges));

  // Same enumeration, pull-based: the search runs lazily and stops as soon
  // as the cursor is done with it.
  daf::EmbeddingCursor cursor(query, data);
  int pulled = 0;
  while (auto embedding = cursor.Next()) {
    ++pulled;
  }
  std::printf("cursor pulled %d embeddings lazily\n", pulled);
  return 0;
}

// Chemical substructure search — the compound-search scenario motivating
// the paper ([45]): find functional groups in molecules, where vertices are
// atoms (labeled by element) and edges are bonds (labeled by bond order).
// Uses the edge-label extension: an embedding must preserve bond types, so
// e.g. a C=C double bond never matches a C-C single bond.
//
//   $ ./examples/chemical_compounds
#include <cstdio>
#include <string>
#include <vector>

#include "daf/engine.h"

namespace {

// Element labels.
constexpr daf::Label kC = 6;   // carbon
constexpr daf::Label kN = 7;   // nitrogen
constexpr daf::Label kO = 8;   // oxygen
// Bond labels.
constexpr daf::Label kSingle = 1;
constexpr daf::Label kDouble = 2;
constexpr daf::Label kAromatic = 4;

struct Molecule {
  std::string name;
  daf::Graph graph;
};

// A tiny "database": acetic acid, acetamide, benzene, and phenol
// (hydrogens omitted, as is conventional for substructure search).
std::vector<Molecule> MakeDatabase() {
  std::vector<Molecule> db;
  // Acetic acid CH3-C(=O)-OH: C0-C1, C1=O2, C1-O3.
  db.push_back({"acetic acid",
                daf::Graph::FromLabeledEdges(
                    {kC, kC, kO, kO}, {{0, 1}, {1, 2}, {1, 3}},
                    {kSingle, kDouble, kSingle})});
  // Acetamide CH3-C(=O)-NH2: C0-C1, C1=O2, C1-N3.
  db.push_back({"acetamide",
                daf::Graph::FromLabeledEdges(
                    {kC, kC, kO, kN}, {{0, 1}, {1, 2}, {1, 3}},
                    {kSingle, kDouble, kSingle})});
  // Benzene ring: six aromatic C-C bonds.
  db.push_back({"benzene",
                daf::Graph::FromLabeledEdges(
                    {kC, kC, kC, kC, kC, kC},
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
                    {kAromatic, kAromatic, kAromatic, kAromatic, kAromatic,
                     kAromatic})});
  // Phenol: benzene ring + OH on C0.
  db.push_back({"phenol",
                daf::Graph::FromLabeledEdges(
                    {kC, kC, kC, kC, kC, kC, kO},
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 6}},
                    {kAromatic, kAromatic, kAromatic, kAromatic, kAromatic,
                     kAromatic, kSingle})});
  return db;
}

std::vector<Molecule> MakeQueries() {
  std::vector<Molecule> queries;
  // Carbonyl group C=O.
  queries.push_back({"carbonyl C=O",
                     daf::Graph::FromLabeledEdges({kC, kO}, {{0, 1}},
                                                  {kDouble})});
  // Carboxyl group O=C-O.
  queries.push_back({"carboxyl O=C-O",
                     daf::Graph::FromLabeledEdges(
                         {kO, kC, kO}, {{0, 1}, {1, 2}}, {kDouble, kSingle})});
  // Amide group O=C-N.
  queries.push_back({"amide O=C-N",
                     daf::Graph::FromLabeledEdges(
                         {kO, kC, kN}, {{0, 1}, {1, 2}}, {kDouble, kSingle})});
  // Aromatic C with hydroxyl (phenol fingerprint).
  queries.push_back({"aromatic C-OH",
                     daf::Graph::FromLabeledEdges(
                         {kC, kC, kO}, {{0, 1}, {0, 2}},
                         {kAromatic, kSingle})});
  // Three consecutive aromatic carbons.
  queries.push_back({"aromatic C:C:C",
                     daf::Graph::FromLabeledEdges(
                         {kC, kC, kC}, {{0, 1}, {1, 2}},
                         {kAromatic, kAromatic})});
  return queries;
}

}  // namespace

int main() {
  std::vector<Molecule> database = MakeDatabase();
  std::vector<Molecule> queries = MakeQueries();
  std::printf("%-18s", "substructure");
  for (const Molecule& m : database) std::printf("%-14s", m.name.c_str());
  std::printf("\n");
  for (const Molecule& q : queries) {
    std::printf("%-18s", q.name.c_str());
    uint64_t automorphisms = daf::CountAutomorphisms(q.graph);
    for (const Molecule& m : database) {
      daf::MatchResult r = daf::DafMatch(q.graph, m.graph);
      if (!r.ok) {
        std::printf("%-14s", "error");
        continue;
      }
      // Unordered occurrences.
      uint64_t occurrences =
          r.embeddings / std::max<uint64_t>(1, automorphisms);
      std::printf("%-14llu", static_cast<unsigned long long>(occurrences));
    }
    std::printf("\n");
  }
  std::printf(
      "\n(counts are unordered occurrences: embeddings / |Aut(query)|;\n"
      " bond orders are enforced, so the carbonyl never matches single "
      "bonds)\n");
  return 0;
}

// graph_convert: converts a data graph between the on-disk formats —
// literature text (t/v/e), legacy "DAFG" binary, and the checksummed
// "DAFS" snapshot format the durable match service uses
// (docs/PERSISTENCE.md).
//
//   $ ./examples/graph_convert --in yeast.txt --out yeast.dafs
//   $ ./examples/graph_convert --in yeast.dafs --out roundtrip.txt
//   $ ./examples/graph_convert --in yeast.dafs --info
//
// The input format is sniffed from the leading magic, so any supported
// file converts to any other; the output format comes from --to
// (text|dafs|dafg) or, when --to is unset, from the output extension
// (.dafs / .dafg / anything else = text). Conversion is lossless for
// everything the text format can express: text -> dafs -> text reproduces
// the original graph exactly (vertex ids, labels, adjacency). A DAFS
// snapshot additionally carries the dynamic-graph version (--graph-version
// to stamp one when converting in) and per-section CRCs.
#include <cstdio>
#include <string>

#include "graph/io.h"
#include "persist/snapshot.h"
#include "util/flags.h"

namespace {

std::string FormatFromExtension(const std::string& path) {
  const size_t dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".dafs") return "dafs";
  if (ext == ".dafg") return "dafg";
  return "text";
}

}  // namespace

int main(int argc, char** argv) {
  daf::FlagSet flags;
  std::string& in_path = flags.String("in", "", "input graph (any format)");
  std::string& out_path = flags.String("out", "", "output path");
  std::string& to =
      flags.String("to", "", "output format: text|dafs|dafg "
                             "(default: from the output extension)");
  int64_t& graph_version = flags.Int64(
      "graph-version", 0, "dynamic-graph version stamped into a DAFS output");
  bool& info = flags.Bool("info", false, "print input info and exit");
  if (!flags.Parse(argc, argv) || in_path.empty() ||
      (out_path.empty() && !info)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
    }
    flags.PrintUsage(argv[0]);
    return 1;
  }

  std::string error;
  if (info && daf::persist::SniffSnapshot(in_path)) {
    // Snapshot info is header-only — report it without loading the arrays.
    auto si = daf::persist::ReadSnapshotInfo(in_path, &error);
    if (!si.has_value()) {
      std::fprintf(stderr, "%s: %s\n", in_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("%s: dafs snapshot graph_version=%llu vertices=%u "
                "edges=%llu edge_labels=%s\n",
                in_path.c_str(),
                static_cast<unsigned long long>(si->graph_version),
                si->num_vertices,
                static_cast<unsigned long long>(si->num_edges),
                si->has_edge_labels ? "yes" : "no");
    if (out_path.empty()) return 0;
  }

  std::optional<daf::Graph> g =
      daf::persist::LoadGraphAnyFormat(in_path, &error);
  if (!g.has_value()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), error.c_str());
    return 1;
  }
  if (info) {
    std::printf("%s: vertices=%u edges=%llu\n", in_path.c_str(),
                g->NumVertices(),
                static_cast<unsigned long long>(g->NumEdges()));
    if (out_path.empty()) return 0;
  }

  const std::string format = to.empty() ? FormatFromExtension(out_path) : to;
  bool ok;
  if (format == "dafs") {
    ok = daf::persist::WriteSnapshot(
        *g, static_cast<uint64_t>(graph_version), out_path, &error);
  } else if (format == "dafg") {
    ok = daf::SaveGraphBinary(*g, out_path, &error);
  } else if (format == "text") {
    ok = daf::SaveGraph(*g, out_path, &error);
  } else {
    std::fprintf(stderr, "unknown format '%s' (text|dafs|dafg)\n",
                 format.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "%s: %s\n", out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s (%s, vertices=%u edges=%llu)\n", out_path.c_str(),
              format.c_str(), g->NumVertices(),
              static_cast<unsigned long long>(g->NumEdges()));
  return 0;
}

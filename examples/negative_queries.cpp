// Negative queries and pruning — shows the two mechanisms the paper adds
// for queries with few or no embeddings:
//   1. the CS structure certifying negativity with *zero* search
//      (Appendix A.3), and
//   2. failing-set pruning collapsing redundant search subtrees
//      (Section 6) when the CS alone cannot decide.
//
//   $ ./examples/negative_queries
#include <cstdio>
#include <vector>

#include "daf/engine.h"
#include "graph/query_extract.h"
#include "util/rng.h"
#include "workload/datasets.h"
#include "workload/negative.h"
#include "workload/querygen.h"

int main() {
  daf::Rng rng(11);
  daf::Graph data =
      daf::workload::MakeDataset(daf::workload::DatasetId::kHuman, 0.2, 1);
  std::printf("data graph: |V|=%u |E|=%llu\n\n", data.NumVertices(),
              static_cast<unsigned long long>(data.NumEdges()));

  // A positive query (extracted from the graph, so it must match) ...
  daf::workload::QuerySet set =
      daf::workload::MakeQuerySet(data, 12, /*sparse=*/false, 1, rng);
  if (set.queries.empty()) {
    std::fprintf(stderr, "query extraction failed\n");
    return 1;
  }
  const daf::Graph& positive = set.queries[0];

  daf::MatchOptions options;
  options.limit = 100000;
  daf::MatchResult r = daf::DafMatch(positive, data, options);
  std::printf("positive query:     %8llu embeddings, %8llu calls, "
              "CS size %llu\n",
              static_cast<unsigned long long>(r.embeddings),
              static_cast<unsigned long long>(r.recursive_calls),
              static_cast<unsigned long long>(r.cs_candidates));

  // ... its label-perturbed variants: most become negative, and most of
  // those are caught by an empty candidate set before any backtracking.
  int cs_certified = 0;
  int searched_negative = 0;
  int still_positive = 0;
  for (int i = 0; i < 25; ++i) {
    daf::Graph perturbed =
        daf::workload::PerturbLabels(positive, data, 3, rng);
    daf::MatchResult pr = daf::DafMatch(perturbed, data, options);
    if (pr.embeddings > 0) {
      ++still_positive;
    } else if (pr.cs_certified_negative) {
      ++cs_certified;
    } else {
      ++searched_negative;
    }
  }
  std::printf("label-perturbed x25: %d positive, %d negative certified by "
              "CS (0 search calls), %d negative after search\n\n",
              still_positive, cs_certified, searched_negative);

  // When the CS cannot decide, failing sets do the heavy lifting: compare
  // DA (no failing sets) and DAF on the perturbed queries that need search.
  uint64_t da_calls = 0;
  uint64_t daf_calls = 0;
  int compared = 0;
  for (int i = 0; i < 50 && compared < 5; ++i) {
    daf::Graph perturbed =
        daf::workload::PerturbLabels(positive, data, 2, rng);
    daf::MatchResult probe = daf::DafMatch(perturbed, data, options);
    if (probe.embeddings > 0 || probe.cs_certified_negative) continue;
    ++compared;
    daf::MatchOptions da = options;
    da.use_failing_sets = false;
    da_calls += daf::DafMatch(perturbed, data, da).recursive_calls;
    daf_calls += probe.recursive_calls;
  }
  if (compared > 0) {
    std::printf("on %d searched negatives: DA explored %llu nodes, DAF %llu "
                "(failing sets pruned %.1f%%)\n",
                compared, static_cast<unsigned long long>(da_calls),
                static_cast<unsigned long long>(daf_calls),
                da_calls > 0
                    ? 100.0 * (1.0 - static_cast<double>(daf_calls) /
                                         static_cast<double>(da_calls))
                    : 0.0);
  } else {
    std::printf("all perturbations were decided by the CS alone\n");
  }
  return 0;
}

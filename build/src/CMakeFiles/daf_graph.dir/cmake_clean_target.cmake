file(REMOVE_RECURSE
  "libdaf_graph.a"
)

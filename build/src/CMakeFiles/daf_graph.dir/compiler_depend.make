# Empty compiler generated dependencies file for daf_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/daf_graph.dir/graph/generators.cc.o"
  "CMakeFiles/daf_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/daf_graph.dir/graph/graph.cc.o"
  "CMakeFiles/daf_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/daf_graph.dir/graph/io.cc.o"
  "CMakeFiles/daf_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/daf_graph.dir/graph/properties.cc.o"
  "CMakeFiles/daf_graph.dir/graph/properties.cc.o.d"
  "CMakeFiles/daf_graph.dir/graph/query_extract.cc.o"
  "CMakeFiles/daf_graph.dir/graph/query_extract.cc.o.d"
  "CMakeFiles/daf_graph.dir/graph/upscale.cc.o"
  "CMakeFiles/daf_graph.dir/graph/upscale.cc.o.d"
  "libdaf_graph.a"
  "libdaf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

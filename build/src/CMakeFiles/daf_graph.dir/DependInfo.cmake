
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/daf_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/daf_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/daf_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/properties.cc" "src/CMakeFiles/daf_graph.dir/graph/properties.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/properties.cc.o.d"
  "/root/repo/src/graph/query_extract.cc" "src/CMakeFiles/daf_graph.dir/graph/query_extract.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/query_extract.cc.o.d"
  "/root/repo/src/graph/upscale.cc" "src/CMakeFiles/daf_graph.dir/graph/upscale.cc.o" "gcc" "src/CMakeFiles/daf_graph.dir/graph/upscale.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/daf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for daf_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/daf_util.dir/util/bitset.cc.o"
  "CMakeFiles/daf_util.dir/util/bitset.cc.o.d"
  "CMakeFiles/daf_util.dir/util/flags.cc.o"
  "CMakeFiles/daf_util.dir/util/flags.cc.o.d"
  "CMakeFiles/daf_util.dir/util/rng.cc.o"
  "CMakeFiles/daf_util.dir/util/rng.cc.o.d"
  "libdaf_util.a"
  "libdaf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdaf_util.a"
)

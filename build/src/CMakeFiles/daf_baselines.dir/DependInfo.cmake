
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bruteforce.cc" "src/CMakeFiles/daf_baselines.dir/baselines/bruteforce.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/bruteforce.cc.o.d"
  "/root/repo/src/baselines/cfl_match.cc" "src/CMakeFiles/daf_baselines.dir/baselines/cfl_match.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/cfl_match.cc.o.d"
  "/root/repo/src/baselines/gaddi.cc" "src/CMakeFiles/daf_baselines.dir/baselines/gaddi.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/gaddi.cc.o.d"
  "/root/repo/src/baselines/graphql.cc" "src/CMakeFiles/daf_baselines.dir/baselines/graphql.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/graphql.cc.o.d"
  "/root/repo/src/baselines/quicksi.cc" "src/CMakeFiles/daf_baselines.dir/baselines/quicksi.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/quicksi.cc.o.d"
  "/root/repo/src/baselines/spath.cc" "src/CMakeFiles/daf_baselines.dir/baselines/spath.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/spath.cc.o.d"
  "/root/repo/src/baselines/turboiso.cc" "src/CMakeFiles/daf_baselines.dir/baselines/turboiso.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/turboiso.cc.o.d"
  "/root/repo/src/baselines/vf2.cc" "src/CMakeFiles/daf_baselines.dir/baselines/vf2.cc.o" "gcc" "src/CMakeFiles/daf_baselines.dir/baselines/vf2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/daf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

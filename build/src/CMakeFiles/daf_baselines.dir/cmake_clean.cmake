file(REMOVE_RECURSE
  "CMakeFiles/daf_baselines.dir/baselines/bruteforce.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/bruteforce.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/cfl_match.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/cfl_match.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/gaddi.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/gaddi.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/graphql.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/graphql.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/quicksi.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/quicksi.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/spath.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/spath.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/turboiso.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/turboiso.cc.o.d"
  "CMakeFiles/daf_baselines.dir/baselines/vf2.cc.o"
  "CMakeFiles/daf_baselines.dir/baselines/vf2.cc.o.d"
  "libdaf_baselines.a"
  "libdaf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

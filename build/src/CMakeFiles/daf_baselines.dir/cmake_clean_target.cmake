file(REMOVE_RECURSE
  "libdaf_baselines.a"
)

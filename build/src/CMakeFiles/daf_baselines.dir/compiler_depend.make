# Empty compiler generated dependencies file for daf_baselines.
# This may be replaced when dependencies are built.

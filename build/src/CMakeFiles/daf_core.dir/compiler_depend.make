# Empty compiler generated dependencies file for daf_core.
# This may be replaced when dependencies are built.

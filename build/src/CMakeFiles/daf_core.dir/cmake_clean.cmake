file(REMOVE_RECURSE
  "CMakeFiles/daf_core.dir/daf/backtrack.cc.o"
  "CMakeFiles/daf_core.dir/daf/backtrack.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/boost.cc.o"
  "CMakeFiles/daf_core.dir/daf/boost.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/candidate_space.cc.o"
  "CMakeFiles/daf_core.dir/daf/candidate_space.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/cursor.cc.o"
  "CMakeFiles/daf_core.dir/daf/cursor.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/engine.cc.o"
  "CMakeFiles/daf_core.dir/daf/engine.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/parallel.cc.o"
  "CMakeFiles/daf_core.dir/daf/parallel.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/query_dag.cc.o"
  "CMakeFiles/daf_core.dir/daf/query_dag.cc.o.d"
  "CMakeFiles/daf_core.dir/daf/weights.cc.o"
  "CMakeFiles/daf_core.dir/daf/weights.cc.o.d"
  "libdaf_core.a"
  "libdaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daf/backtrack.cc" "src/CMakeFiles/daf_core.dir/daf/backtrack.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/backtrack.cc.o.d"
  "/root/repo/src/daf/boost.cc" "src/CMakeFiles/daf_core.dir/daf/boost.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/boost.cc.o.d"
  "/root/repo/src/daf/candidate_space.cc" "src/CMakeFiles/daf_core.dir/daf/candidate_space.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/candidate_space.cc.o.d"
  "/root/repo/src/daf/cursor.cc" "src/CMakeFiles/daf_core.dir/daf/cursor.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/cursor.cc.o.d"
  "/root/repo/src/daf/engine.cc" "src/CMakeFiles/daf_core.dir/daf/engine.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/engine.cc.o.d"
  "/root/repo/src/daf/parallel.cc" "src/CMakeFiles/daf_core.dir/daf/parallel.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/parallel.cc.o.d"
  "/root/repo/src/daf/query_dag.cc" "src/CMakeFiles/daf_core.dir/daf/query_dag.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/query_dag.cc.o.d"
  "/root/repo/src/daf/weights.cc" "src/CMakeFiles/daf_core.dir/daf/weights.cc.o" "gcc" "src/CMakeFiles/daf_core.dir/daf/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/daf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdaf_core.a"
)

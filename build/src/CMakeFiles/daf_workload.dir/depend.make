# Empty dependencies file for daf_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdaf_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/daf_workload.dir/workload/datasets.cc.o"
  "CMakeFiles/daf_workload.dir/workload/datasets.cc.o.d"
  "CMakeFiles/daf_workload.dir/workload/negative.cc.o"
  "CMakeFiles/daf_workload.dir/workload/negative.cc.o.d"
  "CMakeFiles/daf_workload.dir/workload/querygen.cc.o"
  "CMakeFiles/daf_workload.dir/workload/querygen.cc.o.d"
  "libdaf_workload.a"
  "libdaf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

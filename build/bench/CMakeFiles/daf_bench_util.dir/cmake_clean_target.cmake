file(REMOVE_RECURSE
  "libdaf_bench_util.a"
)

# Empty dependencies file for daf_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/daf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/daf_bench_util.dir/bench_util.cc.o.d"
  "libdaf_bench_util.a"
  "libdaf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_negative.
# This may be replaced when dependencies are built.

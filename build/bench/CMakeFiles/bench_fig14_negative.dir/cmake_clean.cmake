file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_negative.dir/bench_fig14_negative.cc.o"
  "CMakeFiles/bench_fig14_negative.dir/bench_fig14_negative.cc.o.d"
  "bench_fig14_negative"
  "bench_fig14_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

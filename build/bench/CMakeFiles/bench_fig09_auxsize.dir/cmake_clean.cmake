file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_auxsize.dir/bench_fig09_auxsize.cc.o"
  "CMakeFiles/bench_fig09_auxsize.dir/bench_fig09_auxsize.cc.o.d"
  "bench_fig09_auxsize"
  "bench_fig09_auxsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_auxsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

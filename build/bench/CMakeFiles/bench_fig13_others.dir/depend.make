# Empty dependencies file for bench_fig13_others.
# This may be replaced when dependencies are built.

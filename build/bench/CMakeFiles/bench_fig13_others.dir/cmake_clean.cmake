file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_others.dir/bench_fig13_others.cc.o"
  "CMakeFiles/bench_fig13_others.dir/bench_fig13_others.cc.o.d"
  "bench_fig13_others"
  "bench_fig13_others.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_others.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

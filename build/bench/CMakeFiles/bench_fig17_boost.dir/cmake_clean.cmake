file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_boost.dir/bench_fig17_boost.cc.o"
  "CMakeFiles/bench_fig17_boost.dir/bench_fig17_boost.cc.o.d"
  "bench_fig17_boost"
  "bench_fig17_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

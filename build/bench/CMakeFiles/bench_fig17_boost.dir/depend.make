# Empty dependencies file for bench_fig17_boost.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig12_twitter.
# This may be replaced when dependencies are built.

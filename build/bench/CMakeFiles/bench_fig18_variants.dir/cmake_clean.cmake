file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_variants.dir/bench_fig18_variants.cc.o"
  "CMakeFiles/bench_fig18_variants.dir/bench_fig18_variants.cc.o.d"
  "bench_fig18_variants"
  "bench_fig18_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig18_variants.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/daf_core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/daf_core_test.dir/daf/backtrack_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/backtrack_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/boost_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/boost_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/candidate_space_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/candidate_space_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/cursor_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/cursor_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/engine_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/engine_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/failing_set_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/failing_set_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/parallel_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/parallel_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/query_dag_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/query_dag_test.cc.o.d"
  "CMakeFiles/daf_core_test.dir/daf/weights_test.cc.o"
  "CMakeFiles/daf_core_test.dir/daf/weights_test.cc.o.d"
  "daf_core_test"
  "daf_core_test.pdb"
  "daf_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daf_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

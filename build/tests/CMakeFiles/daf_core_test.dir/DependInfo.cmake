
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/daf/backtrack_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/backtrack_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/backtrack_test.cc.o.d"
  "/root/repo/tests/daf/boost_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/boost_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/boost_test.cc.o.d"
  "/root/repo/tests/daf/candidate_space_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/candidate_space_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/candidate_space_test.cc.o.d"
  "/root/repo/tests/daf/cursor_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/cursor_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/cursor_test.cc.o.d"
  "/root/repo/tests/daf/engine_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/engine_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/engine_test.cc.o.d"
  "/root/repo/tests/daf/failing_set_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/failing_set_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/failing_set_test.cc.o.d"
  "/root/repo/tests/daf/parallel_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/parallel_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/parallel_test.cc.o.d"
  "/root/repo/tests/daf/query_dag_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/query_dag_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/query_dag_test.cc.o.d"
  "/root/repo/tests/daf/weights_test.cc" "tests/CMakeFiles/daf_core_test.dir/daf/weights_test.cc.o" "gcc" "tests/CMakeFiles/daf_core_test.dir/daf/weights_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/daf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for daf_core_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/edge_labels_test.cc" "tests/CMakeFiles/integration_test.dir/integration/edge_labels_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/edge_labels_test.cc.o.d"
  "/root/repo/tests/integration/equivalence_test.cc" "tests/CMakeFiles/integration_test.dir/integration/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/equivalence_test.cc.o.d"
  "/root/repo/tests/integration/options_stress_test.cc" "tests/CMakeFiles/integration_test.dir/integration/options_stress_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/options_stress_test.cc.o.d"
  "/root/repo/tests/integration/paper_scenarios_test.cc" "tests/CMakeFiles/integration_test.dir/integration/paper_scenarios_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/paper_scenarios_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/daf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/daf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for negative_queries.
# This may be replaced when dependencies are built.

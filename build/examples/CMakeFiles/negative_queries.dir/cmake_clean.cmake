file(REMOVE_RECURSE
  "CMakeFiles/negative_queries.dir/negative_queries.cpp.o"
  "CMakeFiles/negative_queries.dir/negative_queries.cpp.o.d"
  "negative_queries"
  "negative_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for match_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/match_cli.dir/match_cli.cpp.o"
  "CMakeFiles/match_cli.dir/match_cli.cpp.o.d"
  "match_cli"
  "match_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chemical_compounds.dir/chemical_compounds.cpp.o"
  "CMakeFiles/chemical_compounds.dir/chemical_compounds.cpp.o.d"
  "chemical_compounds"
  "chemical_compounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemical_compounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chemical_compounds.
# This may be replaced when dependencies are built.

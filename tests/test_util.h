#ifndef DAF_TESTS_TEST_UTIL_H_
#define DAF_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "graph/embedding.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace daf::testing {

/// A path graph v0 - v1 - ... - v_{n-1} with the given labels.
inline Graph MakePath(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i + 1 < labels.size(); ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(labels, edges);
}

/// A cycle graph over the given labels (n >= 3).
inline Graph MakeCycle(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  const uint32_t n = static_cast<uint32_t>(labels.size());
  for (uint32_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::FromEdges(labels, edges);
}

/// A complete graph over the given labels.
inline Graph MakeClique(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  const uint32_t n = static_cast<uint32_t>(labels.size());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(labels, edges);
}

/// A star: center = vertex 0, leaves 1..n-1.
inline Graph MakeStar(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  for (uint32_t i = 1; i < labels.size(); ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(labels, edges);
}

/// A connected random data graph for property tests.
inline Graph RandomDataGraph(uint32_t n, uint64_t m, uint32_t num_labels,
                             Rng& rng) {
  std::vector<Edge> edges = ErdosRenyiEdges(n, m, rng);
  ConnectComponents(n, &edges, rng);
  std::vector<Label> labels = ZipfLabels(n, num_labels, 0.5, rng);
  return Graph::FromEdges(std::move(labels), edges);
}

/// The set of embeddings as sorted mapping vectors, for exact comparisons
/// between algorithms (not just counts).
using EmbeddingSet = std::set<std::vector<VertexId>>;

/// Callback that records every embedding into `out`.
inline EmbeddingCallback Collector(EmbeddingSet* out) {
  return [out](std::span<const VertexId> embedding) {
    out->emplace(embedding.begin(), embedding.end());
    return true;
  };
}

}  // namespace daf::testing

#endif  // DAF_TESTS_TEST_UTIL_H_

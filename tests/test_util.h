#ifndef DAF_TESTS_TEST_UTIL_H_
#define DAF_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "graph/embedding.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace daf::testing {

/// A path graph v0 - v1 - ... - v_{n-1} with the given labels.
inline Graph MakePath(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  for (uint32_t i = 0; i + 1 < labels.size(); ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(labels, edges);
}

/// A cycle graph over the given labels (n >= 3).
inline Graph MakeCycle(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  const uint32_t n = static_cast<uint32_t>(labels.size());
  for (uint32_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::FromEdges(labels, edges);
}

/// A complete graph over the given labels.
inline Graph MakeClique(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  const uint32_t n = static_cast<uint32_t>(labels.size());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(labels, edges);
}

/// A star: center = vertex 0, leaves 1..n-1.
inline Graph MakeStar(const std::vector<Label>& labels) {
  std::vector<Edge> edges;
  for (uint32_t i = 1; i < labels.size(); ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(labels, edges);
}

/// A connected random data graph for property tests.
inline Graph RandomDataGraph(uint32_t n, uint64_t m, uint32_t num_labels,
                             Rng& rng) {
  std::vector<Edge> edges = ErdosRenyiEdges(n, m, rng);
  ConnectComponents(n, &edges, rng);
  std::vector<Label> labels = ZipfLabels(n, num_labels, 0.5, rng);
  return Graph::FromEdges(std::move(labels), edges);
}

/// The set of embeddings as sorted mapping vectors, for exact comparisons
/// between algorithms (not just counts).
using EmbeddingSet = std::set<std::vector<VertexId>>;

/// Callback that records every embedding into `out`.
inline EmbeddingCallback Collector(EmbeddingSet* out) {
  return [out](std::span<const VertexId> embedding) {
    out->emplace(embedding.begin(), embedding.end());
    return true;
  };
}

/// Verifies that `mapping` is a genuine embedding of `query` in `data`:
/// one data vertex per query vertex, injective (unless `injective` is
/// false — homomorphism mode), label-preserving, and with every query edge
/// realized by a data edge carrying the same edge label. Labels are
/// compared through `original_label`, since the two graphs remap their
/// dense label spaces independently.
inline ::testing::AssertionResult IsValidEmbedding(
    const Graph& query, const Graph& data, std::span<const VertexId> mapping,
    bool injective = true) {
  if (mapping.size() != query.NumVertices()) {
    return ::testing::AssertionFailure()
           << "mapping has " << mapping.size() << " entries for a "
           << query.NumVertices() << "-vertex query";
  }
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    if (mapping[u] >= data.NumVertices()) {
      return ::testing::AssertionFailure()
             << "M(" << u << ") = " << mapping[u] << " is not a data vertex";
    }
    if (query.original_label(query.label(u)) !=
        data.original_label(data.label(mapping[u]))) {
      return ::testing::AssertionFailure()
             << "label mismatch at u=" << u << ": query label "
             << query.original_label(query.label(u)) << ", data vertex "
             << mapping[u] << " has label "
             << data.original_label(data.label(mapping[u]));
    }
  }
  if (injective) {
    std::vector<VertexId> sorted(mapping.begin(), mapping.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return ::testing::AssertionFailure()
             << "mapping is not injective: some data vertex is used twice";
    }
  }
  const bool check_edge_labels = query.HasNontrivialEdgeLabels() ||
                                 data.HasNontrivialEdgeLabels();
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    for (VertexId w : query.Neighbors(u)) {
      if (w < u) continue;  // each undirected edge once
      if (check_edge_labels) {
        Label l = query.EdgeLabelBetween(u, w);
        if (!data.HasEdgeWithLabel(mapping[u], mapping[w], l)) {
          return ::testing::AssertionFailure()
                 << "query edge (" << u << ", " << w << ") with label " << l
                 << " has no matching data edge (" << mapping[u] << ", "
                 << mapping[w] << ")";
        }
      } else if (!data.HasEdge(mapping[u], mapping[w])) {
        return ::testing::AssertionFailure()
               << "query edge (" << u << ", " << w
               << ") is not realized: no data edge (" << mapping[u] << ", "
               << mapping[w] << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Callback that verifies every embedding against the graphs (reporting
/// gtest failures for invalid ones) and records it into `out`.
inline EmbeddingCallback VerifyingCollector(const Graph& query,
                                            const Graph& data,
                                            EmbeddingSet* out,
                                            bool injective = true) {
  return [&query, &data, out,
          injective](std::span<const VertexId> embedding) {
    EXPECT_TRUE(IsValidEmbedding(query, data, embedding, injective));
    out->emplace(embedding.begin(), embedding.end());
    return true;
  };
}

}  // namespace daf::testing

#endif  // DAF_TESTS_TEST_UTIL_H_

#include "daf/match_context.h"

#include <gtest/gtest.h>

#include <vector>

#include "daf/engine.h"
#include "daf/parallel.h"
#include "graph/query_extract.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakePath;

// Regression test for the warm-engine contract: the second DafMatch on a
// warmed MatchContext performs zero arena block allocations, and the
// SearchProfile memory counters report exactly that.
TEST(MatchContextTest, SecondRunWithWarmContextAcquiresNoBlocks) {
  Rng rng(311);
  Graph data = daf::testing::RandomDataGraph(60, 150, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  const Graph& query = extracted->query;

  MatchContext context;
  obs::SearchProfile profile;
  MatchOptions opts;
  opts.profile = &profile;

  MatchResult first = DafMatch(query, data, opts, &context);
  ASSERT_TRUE(first.ok);
  EXPECT_GT(profile.memory.arena_blocks_acquired, 0u);  // cold: must allocate
  EXPECT_GT(profile.memory.arena_bytes, 0u);
  const uint64_t cold_bytes = profile.memory.arena_bytes;

  MatchResult second = DafMatch(query, data, opts, &context);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.embeddings, first.embeddings);
  EXPECT_EQ(profile.memory.arena_blocks_acquired, 0u);  // zero steady-state
  EXPECT_EQ(profile.memory.arena_bytes, cold_bytes);    // same query, same CS
  EXPECT_EQ(context.arena_stats().blocks_acquired, 0u);
  EXPECT_GE(profile.memory.arena_capacity_bytes, cold_bytes);
}

// A context reused across *different* queries settles: once every query has
// been seen, a second pass over all of them allocates nothing.
TEST(MatchContextTest, VaryingQueriesSettleToZeroAllocations) {
  Rng rng(313);
  Graph data = daf::testing::RandomDataGraph(70, 180, 3, rng);
  std::vector<Graph> queries;
  for (int i = 0; i < 6 && queries.size() < 4; ++i) {
    auto extracted = ExtractRandomWalkQuery(
        data, 4 + static_cast<uint32_t>(rng.UniformInt(5)), -1.0, rng);
    if (extracted) queries.push_back(std::move(extracted->query));
  }
  ASSERT_GE(queries.size(), 2u);

  MatchContext context;
  std::vector<uint64_t> cold_counts;
  for (const Graph& q : queries) {
    MatchResult r = DafMatch(q, data, {}, &context);
    ASSERT_TRUE(r.ok);
    cold_counts.push_back(r.embeddings);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    MatchResult r = DafMatch(queries[i], data, {}, &context);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.embeddings, cold_counts[i]);
    EXPECT_EQ(context.arena_stats().blocks_acquired, 0u)
        << "query " << i << " allocated on a settled context";
  }
}

// Warm runs must be bit-for-bit equivalent to cold runs: the embedding sets
// agree, not just the counts.
TEST(MatchContextTest, WarmResultsMatchColdResults) {
  Rng rng(317);
  Graph data = daf::testing::RandomDataGraph(50, 120, 3, rng);
  MatchContext context;
  for (int trial = 0; trial < 5; ++trial) {
    auto extracted = ExtractRandomWalkQuery(
        data, 4 + static_cast<uint32_t>(rng.UniformInt(4)), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet cold;
    MatchOptions cold_opts;
    cold_opts.callback = Collector(&cold);
    ASSERT_TRUE(DafMatch(extracted->query, data, cold_opts).ok);

    EmbeddingSet warm;
    MatchOptions warm_opts;
    warm_opts.callback = Collector(&warm);
    ASSERT_TRUE(DafMatch(extracted->query, data, warm_opts, &context).ok);
    EXPECT_EQ(warm, cold) << "trial " << trial;
  }
}

TEST(MatchContextTest, TrimReleasesRetainedMemory) {
  Rng rng(331);
  Graph data = daf::testing::RandomDataGraph(50, 120, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());

  MatchContext context;
  MatchResult first = DafMatch(extracted->query, data, {}, &context);
  ASSERT_TRUE(first.ok);
  ASSERT_GT(context.arena_stats().capacity_bytes, 0u);

  context.Trim();
  EXPECT_EQ(context.arena_stats().capacity_bytes, 0u);

  // The context re-warms transparently.
  MatchResult again = DafMatch(extracted->query, data, {}, &context);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.embeddings, first.embeddings);
  EXPECT_GT(context.arena_stats().blocks_acquired, 0u);
}

// ParallelDafMatch shares one context across its workers and gets the same
// warm behavior: the second run allocates no arena blocks.
TEST(MatchContextTest, ParallelRunReusesASharedContext) {
  Rng rng(337);
  Graph data = daf::testing::RandomDataGraph(60, 150, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  MatchResult serial = DafMatch(extracted->query, data, {});
  ASSERT_TRUE(serial.ok);

  MatchContext context;
  ParallelMatchResult first =
      ParallelDafMatch(extracted->query, data, {}, 2, &context);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.embeddings, serial.embeddings);

  ParallelMatchResult second =
      ParallelDafMatch(extracted->query, data, {}, 2, &context);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.embeddings, serial.embeddings);
  EXPECT_EQ(context.arena_stats().blocks_acquired, 0u);
}

// Early exits (CS-certified negatives) still report the memory profile.
TEST(MatchContextTest, MemoryProfileFilledOnCertifiedNegative) {
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 9});  // label 9 absent from the data graph
  MatchContext context;
  obs::SearchProfile profile;
  MatchOptions opts;
  opts.profile = &profile;
  MatchResult result = DafMatch(query, data, opts, &context);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.cs_certified_negative);
  EXPECT_EQ(profile.memory.arena_bytes, context.arena_stats().bytes_used);
  EXPECT_EQ(profile.memory.arena_capacity_bytes,
            context.arena_stats().capacity_bytes);
}

}  // namespace
}  // namespace daf

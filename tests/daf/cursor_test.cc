#include "daf/cursor.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

TEST(CursorTest, EnumeratesExactlyTheEmbeddingSet) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingSet expected;
  MatchOptions collect;
  collect.callback = Collector(&expected);
  DafMatch(query, data, collect);

  EmbeddingCursor cursor(query, data);
  EmbeddingSet found;
  while (auto embedding = cursor.Next()) {
    found.insert(*embedding);
  }
  EXPECT_EQ(found, expected);
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, expected.size());
  EXPECT_TRUE(result.Complete());
}

TEST(CursorTest, NextAfterExhaustionKeepsReturningNullopt) {
  Graph data = MakePath({0, 1});
  Graph query = MakePath({0, 1});
  EmbeddingCursor cursor(query, data);
  ASSERT_TRUE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
}

TEST(CursorTest, EarlyAbandonStopsSearch) {
  // Huge search space; pulling 5 embeddings and destroying the cursor must
  // terminate promptly.
  std::vector<Label> labels(30, 0);
  Graph data = MakeClique(labels);
  Graph query = MakeClique(std::vector<Label>(6, 0));
  {
    EmbeddingCursor cursor(query, data);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cursor.Next().has_value());
    }
  }  // destructor closes + joins; hang here = bug
  SUCCEED();
}

TEST(CursorTest, FinishBeforeExhaustionStopsEarly) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingCursor cursor(query, data);
  ASSERT_TRUE(cursor.Next().has_value());
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.Complete());  // stopped early via the callback
}

TEST(CursorTest, RespectsLimitOption) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 120 embeddings
  MatchOptions options;
  options.limit = 4;
  EmbeddingCursor cursor(query, data, options);
  int count = 0;
  while (cursor.Next()) ++count;
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(cursor.Finish().limit_reached);
}

TEST(CursorTest, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(171);
  for (int trial = 0; trial < 8; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 100 + rng.UniformInt(80), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(4), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet expected;
    baselines::MatcherOptions brute;
    brute.callback = Collector(&expected);
    baselines::BruteForceMatch(extracted->query, data, brute);
    EmbeddingCursor cursor(extracted->query, data);
    EmbeddingSet found;
    while (auto embedding = cursor.Next()) found.insert(*embedding);
    EXPECT_EQ(found, expected);
  }
}

TEST(CursorTest, NegativeQueryYieldsNothing) {
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 9});
  EmbeddingCursor cursor(query, data);
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_TRUE(cursor.Finish().cs_certified_negative);
}

}  // namespace
}  // namespace daf

#include "daf/cursor.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

TEST(CursorTest, EnumeratesExactlyTheEmbeddingSet) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingSet expected;
  MatchOptions collect;
  collect.callback = Collector(&expected);
  DafMatch(query, data, collect);

  EmbeddingCursor cursor(query, data);
  EmbeddingSet found;
  while (auto embedding = cursor.Next()) {
    EXPECT_TRUE(daf::testing::IsValidEmbedding(query, data, *embedding));
    found.insert(*embedding);
  }
  EXPECT_EQ(found, expected);
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, expected.size());
  EXPECT_TRUE(result.Complete());
}

TEST(CursorTest, NextAfterExhaustionKeepsReturningNullopt) {
  Graph data = MakePath({0, 1});
  Graph query = MakePath({0, 1});
  EmbeddingCursor cursor(query, data);
  ASSERT_TRUE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
}

TEST(CursorTest, EarlyAbandonStopsSearch) {
  // Huge search space; pulling 5 embeddings and destroying the cursor must
  // terminate promptly.
  std::vector<Label> labels(30, 0);
  Graph data = MakeClique(labels);
  Graph query = MakeClique(std::vector<Label>(6, 0));
  {
    EmbeddingCursor cursor(query, data);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cursor.Next().has_value());
    }
  }  // destructor closes + joins; hang here = bug
  SUCCEED();
}

TEST(CursorTest, FinishBeforeExhaustionStopsEarly) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingCursor cursor(query, data);
  ASSERT_TRUE(cursor.Next().has_value());
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.Complete());  // stopped early via the callback
}

TEST(CursorTest, RespectsLimitOption) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 120 embeddings
  MatchOptions options;
  options.limit = 4;
  EmbeddingCursor cursor(query, data, options);
  int count = 0;
  while (cursor.Next()) ++count;
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(cursor.Finish().limit_reached);
}

TEST(CursorTest, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(171);
  for (int trial = 0; trial < 8; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 100 + rng.UniformInt(80), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(4), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet expected;
    baselines::MatcherOptions brute;
    brute.callback = Collector(&expected);
    baselines::BruteForceMatch(extracted->query, data, brute);
    EmbeddingCursor cursor(extracted->query, data);
    EmbeddingSet found;
    while (auto embedding = cursor.Next()) {
      EXPECT_TRUE(
          daf::testing::IsValidEmbedding(extracted->query, data, *embedding));
      found.insert(*embedding);
    }
    EXPECT_EQ(found, expected);
  }
}

TEST(CursorTest, NegativeQueryYieldsNothing) {
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 9});
  EmbeddingCursor cursor(query, data);
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_TRUE(cursor.Finish().cs_certified_negative);
}

// Resume semantics: pulling past the limit must not block or produce
// extras — the enumeration is exhausted at `limit` and every later Next()
// (including after Finish()) keeps returning nullopt.
TEST(CursorTest, PullingPastLimitKeepsReturningNullopt) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 120 embeddings
  MatchOptions options;
  options.limit = 4;
  EmbeddingCursor limited(query, data, options);
  int produced = 0;
  for (int pull = 0; pull < 12; ++pull) {
    auto embedding = limited.Next();
    if (embedding) {
      EXPECT_TRUE(daf::testing::IsValidEmbedding(query, data, *embedding));
      ++produced;
    } else {
      EXPECT_GE(pull, 4);
    }
  }
  EXPECT_EQ(produced, 4);
  EXPECT_TRUE(limited.Finish().limit_reached);
  EXPECT_FALSE(limited.Next().has_value());  // resume after Finish: still dry
}

// Two cursors enumerating the same (query, data) pair concurrently must
// not interfere: each one's pull sequence is an independent, complete
// enumeration even when the pulls interleave arbitrarily.
TEST(CursorTest, InterleavedCursorsEnumerateIndependently) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingSet expected;
  MatchOptions collect;
  collect.callback = Collector(&expected);
  DafMatch(query, data, collect);
  ASSERT_FALSE(expected.empty());

  EmbeddingCursor a(query, data);
  EmbeddingCursor b(query, data);
  EmbeddingSet found_a;
  EmbeddingSet found_b;
  // Unbalanced interleaving: a advances twice per b step.
  bool a_done = false;
  bool b_done = false;
  while (!a_done || !b_done) {
    for (int k = 0; k < 2 && !a_done; ++k) {
      if (auto e = a.Next()) {
        found_a.insert(*e);
      } else {
        a_done = true;
      }
    }
    if (!b_done) {
      if (auto e = b.Next()) {
        found_b.insert(*e);
      } else {
        b_done = true;
      }
    }
  }
  EXPECT_EQ(found_a, expected);
  EXPECT_EQ(found_b, expected);
  EXPECT_TRUE(a.Finish().Complete());
  EXPECT_TRUE(b.Finish().Complete());
}

// A timeout that fires mid-enumeration ends the stream cleanly: the pulls
// up to the cutoff are valid embeddings, the cursor then drains to nullopt
// (no hang), and the final result reports timed_out.
TEST(CursorTest, TimeoutMidEnumerationEndsStreamCleanly) {
  // ~40^7 embeddings: cannot complete within the time limit.
  Graph data = MakeClique(std::vector<Label>(40, 0));
  Graph query = MakeClique(std::vector<Label>(7, 0));
  MatchOptions options;
  options.time_limit_ms = 50;
  EmbeddingCursor cursor(query, data, options);
  uint64_t produced = 0;
  while (auto embedding = cursor.Next()) {
    if (produced < 16) {  // spot-check validity, don't drown in asserts
      EXPECT_TRUE(daf::testing::IsValidEmbedding(query, data, *embedding));
    }
    ++produced;
  }
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.Complete());
  EXPECT_FALSE(cursor.Next().has_value());  // stream stays dry after timeout
}

// Sequential cursors may share one MatchContext (the warm-engine path);
// each enumeration is complete and correct.
TEST(CursorTest, SequentialCursorsShareAMatchContext) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingSet expected;
  MatchOptions collect;
  collect.callback = Collector(&expected);
  DafMatch(query, data, collect);

  MatchContext context;
  for (int round = 0; round < 3; ++round) {
    EmbeddingCursor cursor(query, data, {}, &context);
    EmbeddingSet found;
    while (auto embedding = cursor.Next()) found.insert(*embedding);
    EXPECT_EQ(found, expected) << "round " << round;
    EXPECT_TRUE(cursor.Finish().Complete());
  }
  // The later rounds ran entirely out of retained memory.
  EXPECT_EQ(context.arena_stats().blocks_acquired, 0u);
}

}  // namespace
}  // namespace daf

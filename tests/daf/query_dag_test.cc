#include "daf/query_dag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "graph/properties.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::MakeCycle;
using daf::testing::MakePath;
using daf::testing::RandomDataGraph;

Graph RandomDataGraphFixture() {
  Rng rng(77);
  return RandomDataGraph(60, 180, 3, rng);
}

std::optional<Graph> ExtractedQueryFixture(const Graph& data, uint32_t size,
                                           Rng& rng) {
  auto e = ExtractRandomWalkQuery(data, size, -1.0, rng);
  if (!e) return std::nullopt;
  return e->query;
}

// Checks the structural invariants every query DAG must satisfy.
void CheckDagInvariants(const Graph& query, const QueryDag& dag) {
  const uint32_t n = query.NumVertices();
  ASSERT_EQ(dag.NumVertices(), n);
  EXPECT_EQ(dag.NumEdges(), query.NumEdges());

  // Root has no parents; every other vertex has at least one.
  EXPECT_TRUE(dag.Parents(dag.root()).empty());
  for (uint32_t u = 0; u < n; ++u) {
    if (u != dag.root()) {
      EXPECT_FALSE(dag.Parents(u).empty()) << "u=" << u;
    }
  }

  // Every query edge appears exactly once, directed.
  uint32_t directed_edges = 0;
  for (uint32_t u = 0; u < n; ++u) {
    for (VertexId c : dag.Children(u)) {
      EXPECT_TRUE(query.HasEdge(u, c));
      ++directed_edges;
    }
  }
  EXPECT_EQ(directed_edges, query.NumEdges());

  // Topological order: every vertex after all its parents.
  const auto& topo = dag.TopologicalOrder();
  ASSERT_EQ(topo.size(), n);
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[topo[i]] = i;
  EXPECT_EQ(topo[0], dag.root());
  for (uint32_t u = 0; u < n; ++u) {
    for (VertexId p : dag.Parents(u)) {
      EXPECT_LT(position[p], position[u]);
    }
  }

  // Parent/child symmetric and edge ids consistent.
  for (uint32_t u = 0; u < n; ++u) {
    const auto& parents = dag.Parents(u);
    const auto& edge_ids = dag.ParentEdgeIds(u);
    ASSERT_EQ(parents.size(), edge_ids.size());
    for (size_t i = 0; i < parents.size(); ++i) {
      VertexId p = parents[i];
      const auto& siblings = dag.Children(p);
      auto it = std::find(siblings.begin(), siblings.end(), u);
      ASSERT_NE(it, siblings.end());
      uint32_t pos = static_cast<uint32_t>(it - siblings.begin());
      EXPECT_EQ(dag.ChildEdgeId(p, pos), edge_ids[i]);
    }
  }

  // Ancestor sets: anc(u) contains u and the root, is ancestor-closed, and
  // matches the union of parents' ancestor sets.
  for (uint32_t u = 0; u < n; ++u) {
    const Bitset& anc = dag.Ancestors(u);
    EXPECT_TRUE(anc.Test(u));
    EXPECT_TRUE(anc.Test(dag.root()));
    Bitset expected(n);
    expected.Set(u);
    for (VertexId p : dag.Parents(u)) expected.UnionWith(dag.Ancestors(p));
    EXPECT_EQ(anc, expected);
  }

  // Levels: root at 0, every edge spans at most one level downward.
  EXPECT_EQ(dag.Level(dag.root()), 0u);
  for (uint32_t u = 0; u < n; ++u) {
    for (VertexId c : dag.Children(u)) {
      EXPECT_LE(dag.Level(u), dag.Level(c));
      EXPECT_LE(dag.Level(c), dag.Level(u) + 1);
    }
  }
}

TEST(QueryDagTest, PathQuery) {
  Graph data = MakePath({0, 1, 2, 1, 0});
  Graph query = MakePath({0, 1, 2});
  QueryDag dag = QueryDag::Build(query, data);
  CheckDagInvariants(query, dag);
}

TEST(QueryDagTest, CycleQueryHasOneMultiParentVertex) {
  Graph data = MakeCycle({0, 1, 2, 0, 1, 2});
  Graph query = MakeCycle({0, 1, 2});
  QueryDag dag = QueryDag::Build(query, data);
  CheckDagInvariants(query, dag);
  // In a directed triangle DAG exactly one vertex has two parents.
  int multi_parent = 0;
  for (uint32_t u = 0; u < 3; ++u) {
    if (dag.Parents(u).size() == 2) ++multi_parent;
  }
  EXPECT_EQ(multi_parent, 1);
}

TEST(QueryDagTest, RootMinimizesCandidateToDegreeRatio) {
  // Data: many label-0 vertices, one label-1 vertex. The query vertex with
  // label 1 must become the root.
  Graph data = Graph::FromEdges({0, 0, 0, 0, 1},
                                {{0, 4}, {1, 4}, {2, 4}, {3, 4}, {0, 1}});
  Graph query = MakePath({0, 1, 0});
  QueryDag dag = QueryDag::Build(query, data);
  EXPECT_EQ(dag.root(), 1u);
  CheckDagInvariants(query, dag);
}

TEST(QueryDagTest, InitialCandidateCountsRespectLabelAndDegree) {
  // Data: star center label 0 degree 3, leaves label 1 degree 1.
  Graph data = daf::testing::MakeStar({0, 1, 1, 1});
  Graph query = MakePath({1, 0, 1});
  QueryDag dag = QueryDag::Build(query, data);
  // Query center (label 0, degree 2): only the data center qualifies.
  EXPECT_EQ(dag.InitialCandidateCount(1), 1u);
  // Query endpoints (label 1, degree 1): all three leaves qualify.
  EXPECT_EQ(dag.InitialCandidateCount(0), 3u);
  EXPECT_EQ(dag.InitialCandidateCount(2), 3u);
}

TEST(QueryDagTest, MissingLabelYieldsZeroCandidates) {
  Graph data = MakePath({0, 0, 0});
  Graph query = MakePath({0, 7});
  QueryDag dag = QueryDag::Build(query, data);
  for (uint32_t u = 0; u < 2; ++u) {
    if (query.original_label(query.label(u)) == 7u) {
      EXPECT_EQ(dag.DataLabel(u), kNoSuchLabel);
      EXPECT_EQ(dag.InitialCandidateCount(u), 0u);
    }
  }
}

TEST(QueryDagTest, ExplicitRootIsHonored) {
  Graph data = RandomDataGraphFixture();
  Graph query = MakeCycle({0, 1, 2, 3});
  for (VertexId r = 0; r < 4; ++r) {
    QueryDag dag = QueryDag::BuildWithRoot(query, data, r);
    EXPECT_EQ(dag.root(), r);
    CheckDagInvariants(query, dag);
  }
}

TEST(QueryDagTest, RandomQueriesSatisfyInvariants) {
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    Graph data = RandomDataGraph(80, 200 + rng.UniformInt(200), 4, rng);
    auto extracted = ExtractedQueryFixture(data, 4 + rng.UniformInt(10), rng);
    if (!extracted.has_value()) continue;
    QueryDag dag = QueryDag::Build(*extracted, data);
    CheckDagInvariants(*extracted, dag);
  }
}

TEST(QueryDagTest, DisconnectedQueryGetsOneRootPerComponent) {
  Graph data = RandomDataGraphFixture();
  // Components: an edge {0,1} and an isolated vertex {2}.
  Graph query = Graph::FromEdges({0, 0, 1}, {{0, 1}});
  QueryDag dag = QueryDag::Build(query, data);
  ASSERT_EQ(dag.Roots().size(), 2u);
  EXPECT_EQ(dag.Roots()[0], dag.root());
  // Every vertex is either a root or has parents; every root has none.
  for (uint32_t u = 0; u < 3; ++u) {
    bool is_root = std::find(dag.Roots().begin(), dag.Roots().end(), u) !=
                   dag.Roots().end();
    EXPECT_EQ(dag.Parents(u).empty(), is_root) << "u=" << u;
  }
  // Topological order covers everything; ancestors stay within components.
  EXPECT_EQ(dag.TopologicalOrder().size(), 3u);
  EXPECT_TRUE(dag.Ancestors(2).Test(2));
  EXPECT_EQ(dag.Ancestors(2).Count(), 1u);
  EXPECT_EQ(dag.NumEdges(), 1u);
}

TEST(QueryDagTest, DisconnectedRandomQueriesStayConsistent) {
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data = RandomDataGraph(50, 140, 3, rng);
    // Build a 2-component query: two independent paths.
    std::vector<Label> labels{0, 1, 0, 1, 2};
    std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}};
    Graph query = Graph::FromEdges(labels, edges);
    QueryDag dag = QueryDag::Build(query, data);
    EXPECT_EQ(dag.Roots().size(), 2u);
    // Topological order: parents before children.
    const auto& topo = dag.TopologicalOrder();
    std::vector<uint32_t> position(5);
    for (uint32_t i = 0; i < 5; ++i) position[topo[i]] = i;
    for (uint32_t u = 0; u < 5; ++u) {
      for (VertexId p : dag.Parents(u)) {
        EXPECT_LT(position[p], position[u]);
      }
    }
    uint32_t directed = 0;
    for (uint32_t u = 0; u < 5; ++u) {
      directed += static_cast<uint32_t>(dag.Children(u).size());
    }
    EXPECT_EQ(directed, query.NumEdges());
  }
}

TEST(QueryDagTest, EdgeLabelsExposedPerDagEdge) {
  Graph data = Graph::FromLabeledEdges({0, 1, 1}, {{0, 1}, {0, 2}}, {5, 7});
  Graph query = Graph::FromLabeledEdges({0, 1}, {{0, 1}}, {5});
  QueryDag dag = QueryDag::Build(query, data);
  ASSERT_TRUE(dag.HasEdgeLabels());
  ASSERT_EQ(dag.NumEdges(), 1u);
  EXPECT_EQ(dag.EdgeLabelOf(0), 5u);
  // Unlabeled query: flag off, labels read as 0.
  Graph plain = Graph::FromEdges({0, 1}, {{0, 1}});
  QueryDag plain_dag = QueryDag::Build(plain, data);
  EXPECT_FALSE(plain_dag.HasEdgeLabels());
  EXPECT_EQ(plain_dag.EdgeLabelOf(0), 0u);
}

TEST(QueryDagTest, SingleVertexQuery) {
  Graph data = MakePath({3, 3});
  Graph query = Graph::FromEdges({3}, {});
  QueryDag dag = QueryDag::Build(query, data);
  EXPECT_EQ(dag.root(), 0u);
  EXPECT_EQ(dag.NumEdges(), 0u);
  EXPECT_TRUE(dag.Children(0).empty());
  EXPECT_TRUE(dag.Ancestors(0).Test(0));
}

}  // namespace
}  // namespace daf

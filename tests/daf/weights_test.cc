#include "daf/weights.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::MakePath;
using daf::testing::RandomDataGraph;

// Brute-force reference for W_u(v): enumerates the maximal tree-like paths
// of q_D starting at u (Definition 5.3) and counts the CS paths n(p, v) for
// each, returning the minimum.
class BruteWeights {
 public:
  BruteWeights(const QueryDag& dag, const CandidateSpace& cs)
      : dag_(dag), cs_(cs) {}

  uint64_t Weight(VertexId u, uint32_t idx) const {
    std::vector<std::vector<VertexId>> paths;
    std::vector<VertexId> prefix{u};
    EnumerateMaximalTreeLikePaths(u, &prefix, &paths);
    uint64_t best = ~0ull;
    for (const auto& path : paths) {
      best = std::min(best, CountCsPaths(path, 0, idx));
    }
    return paths.empty() ? 1 : best;
  }

 private:
  // Extends a tree-like path: the next vertex must be a child with exactly
  // one parent; a path is maximal when no such extension exists.
  void EnumerateMaximalTreeLikePaths(
      VertexId u, std::vector<VertexId>* prefix,
      std::vector<std::vector<VertexId>>* out) const {
    bool extended = false;
    for (VertexId c : dag_.Children(u)) {
      if (dag_.Parents(c).size() == 1) {
        prefix->push_back(c);
        EnumerateMaximalTreeLikePaths(c, prefix, out);
        prefix->pop_back();
        extended = true;
      }
    }
    if (!extended && prefix->size() > 1) out->push_back(*prefix);
  }

  uint64_t CountCsPaths(const std::vector<VertexId>& path, size_t pos,
                        uint32_t idx) const {
    if (pos + 1 == path.size()) return 1;
    VertexId u = path[pos];
    VertexId c = path[pos + 1];
    const auto& children = dag_.Children(u);
    uint32_t child_pos = static_cast<uint32_t>(
        std::find(children.begin(), children.end(), c) - children.begin());
    uint32_t edge_id = dag_.ChildEdgeId(u, child_pos);
    uint64_t total = 0;
    for (uint32_t ic : cs_.EdgeNeighbors(edge_id, idx)) {
      total += CountCsPaths(path, pos + 1, ic);
    }
    return total;
  }

  const QueryDag& dag_;
  const CandidateSpace& cs_;
};

// The DP of Section 5.2 computes min_i Σ_{v'} W_{c_i}(v'), which lower-
// bounds the path-count characterization min_{p∈P_u} n(p, v) (the min moves
// inside the sum), and the two coincide whenever each candidate's cheapest
// continuation follows the same tree-like path. The test asserts the bound
// plus positivity; exact equality is asserted on shapes where the orders
// provably coincide (below).
TEST(WeightsTest, LowerBoundsMinimumPathCount) {
  Rng rng(71);
  for (int trial = 0; trial < 15; ++trial) {
    Graph data = RandomDataGraph(60, 120 + rng.UniformInt(180), 4, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(6), -1.0, rng);
    if (!extracted) continue;
    const Graph& query = extracted->query;
    QueryDag dag = QueryDag::Build(query, data);
    CandidateSpace cs = CandidateSpace::Build(query, dag, data);
    WeightArray weights = WeightArray::Compute(dag, cs);
    BruteWeights brute(dag, cs);
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      for (uint32_t idx = 0; idx < cs.NumCandidates(u); ++idx) {
        EXPECT_LE(weights.Weight(u, idx), brute.Weight(u, idx))
            << "u=" << u << " idx=" << idx;
        EXPECT_GE(weights.Weight(u, idx), 1u);
      }
    }
  }
}

TEST(WeightsTest, ExactOnPathQueries) {
  // On a path query every vertex has at most one tree-like continuation,
  // so the DP equals min_p n(p, v) exactly.
  Rng rng(72);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data = RandomDataGraph(50, 100 + rng.UniformInt(100), 3, rng);
    auto extracted = ExtractRandomWalkQuery(data, 5, 2.0, rng);
    if (!extracted || extracted->query.NumEdges() != 4) continue;
    const Graph& query = extracted->query;
    bool is_path = true;
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      if (query.degree(u) > 2) is_path = false;
    }
    if (!is_path) continue;
    QueryDag dag = QueryDag::Build(query, data);
    CandidateSpace cs = CandidateSpace::Build(query, dag, data);
    WeightArray weights = WeightArray::Compute(dag, cs);
    BruteWeights brute(dag, cs);
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      bool single_chain = true;
      // Equality requires a unique tree-like continuation at every hop.
      for (VertexId x = u;;) {
        std::vector<VertexId> tree_children;
        for (VertexId c : dag.Children(x)) {
          if (dag.Parents(c).size() == 1) tree_children.push_back(c);
        }
        if (tree_children.size() > 1) {
          single_chain = false;
          break;
        }
        if (tree_children.empty()) break;
        x = tree_children[0];
      }
      if (!single_chain) continue;
      for (uint32_t idx = 0; idx < cs.NumCandidates(u); ++idx) {
        EXPECT_EQ(weights.Weight(u, idx), brute.Weight(u, idx));
      }
    }
  }
}

TEST(WeightsTest, LeafVerticesHaveUnitWeight) {
  Graph data = MakePath({0, 1, 2, 1, 0});
  Graph query = MakePath({0, 1, 2});
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  WeightArray weights = WeightArray::Compute(dag, cs);
  for (uint32_t u = 0; u < 3; ++u) {
    if (!dag.Children(u).empty()) continue;
    for (uint32_t idx = 0; idx < cs.NumCandidates(u); ++idx) {
      EXPECT_EQ(weights.Weight(u, idx), 1u);
    }
  }
}

TEST(WeightsTest, PathWeightsCountDownstreamFanout) {
  // Query: path A-B. Data: one A-hub adjacent to 3 B vertices.
  Graph query = MakePath({0, 1});
  Graph data = Graph::FromEdges({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  QueryDag dag = QueryDag::BuildWithRoot(query, data, 0);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  WeightArray weights = WeightArray::Compute(dag, cs);
  // Root candidate = the hub; its weight is the number of B candidates.
  ASSERT_EQ(cs.NumCandidates(0), 1u);
  EXPECT_EQ(weights.Weight(0, 0), 3u);
}

}  // namespace
}  // namespace daf

#include "daf/parallel.h"

#include <gtest/gtest.h>

#include <mutex>

#include "baselines/bruteforce.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;

TEST(ParallelTest, MatchesSequentialWithoutLimit) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(50, 120 + rng.UniformInt(120), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(4), -1.0, rng);
    if (!extracted) continue;
    MatchResult sequential = DafMatch(extracted->query, data);
    for (uint32_t threads : {1u, 2u, 4u}) {
      ParallelMatchResult parallel =
          ParallelDafMatch(extracted->query, data, MatchOptions{}, threads);
      ASSERT_TRUE(parallel.ok);
      EXPECT_EQ(parallel.embeddings, sequential.embeddings)
          << "threads=" << threads;
      EXPECT_EQ(parallel.threads_used, threads);
    }
  }
}

TEST(ParallelTest, ProducesExactEmbeddingSet) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  EmbeddingSet expected;
  MatchOptions seq;
  seq.callback = Collector(&expected);
  DafMatch(query, data, seq);

  EmbeddingSet found;
  MatchOptions par;
  par.callback = Collector(&found);  // engine serializes callback
  ParallelMatchResult result = ParallelDafMatch(query, data, par, 4);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(found, expected);
  EXPECT_EQ(result.embeddings, expected.size());
}

TEST(ParallelTest, RespectsLimitExactly) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 7*6*5 = 210 embeddings
  for (ParallelStrategy strategy :
       {ParallelStrategy::kWorkStealing, ParallelStrategy::kRootCursor}) {
    MatchOptions opts;
    opts.limit = 50;
    opts.parallel_strategy = strategy;
    ParallelMatchResult result = ParallelDafMatch(query, data, opts, 4);
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(result.limit_reached);
    // Claim-before-count on the shared counter: the reported count equals
    // the limit exactly, as in a single-threaded run — no overshoot from
    // in-flight embeddings.
    EXPECT_EQ(result.embeddings, 50u);
  }
}

TEST(ParallelTest, PerThreadCallsSumToTotal) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  ParallelMatchResult result =
      ParallelDafMatch(query, data, MatchOptions{}, 3);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.per_thread_calls.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t c : result.per_thread_calls) sum += c;
  EXPECT_EQ(sum, result.recursive_calls);
}

TEST(ParallelTest, SupportsDisconnectedQueries) {
  // Edge (6 ordered embeddings in K3) x isolated third vertex (1 choice
  // left) = 6.
  Graph data = MakeClique({0, 0, 0});
  Graph query = Graph::FromEdges({0, 0, 0}, {{0, 1}});
  ParallelMatchResult result =
      ParallelDafMatch(query, data, MatchOptions{}, 2);
  ASSERT_TRUE(result.ok);
  baselines::MatcherResult brute = baselines::BruteForceMatch(query, data);
  EXPECT_EQ(result.embeddings, brute.embeddings);
}

TEST(ParallelTest, HomomorphismModeAgrees) {
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  MatchOptions hom;
  hom.injective = false;
  ParallelMatchResult parallel = ParallelDafMatch(query, data, hom, 3);
  MatchResult sequential = DafMatch(query, data, hom);
  ASSERT_TRUE(parallel.ok && sequential.ok);
  EXPECT_EQ(parallel.embeddings, sequential.embeddings);
}

TEST(ParallelTest, ZeroThreadsClampsToOne) {
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  ParallelMatchResult result =
      ParallelDafMatch(query, data, MatchOptions{}, 0);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.threads_used, 1u);
  EXPECT_EQ(result.embeddings, 24u);
}

TEST(ParallelTest, NegativeQueryCertifiedWithoutSearch) {
  Graph data = MakeClique({0, 0, 0});
  Graph query = MakeCycle({0, 0, 7});
  ParallelMatchResult result =
      ParallelDafMatch(query, data, MatchOptions{}, 2);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.cs_certified_negative);
  EXPECT_EQ(result.embeddings, 0u);
}

}  // namespace
}  // namespace daf

// Memory-exhaustion-path consistency: a run stopped by its MemoryBudget —
// whether by a genuine over-limit charge, an external MarkExhausted, or an
// injected allocation/donation fault — must report ok / resource_exhausted /
// !Complete() with valid partial counts, and must never claim the
// certified-negative shortcut. Mirrors cancel_test.cc for the budget cause.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "daf/candidate_space.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "daf/query_dag.h"
#include "obs/json.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"
#include "util/memory_budget.h"
#include "util/stop.h"

namespace daf {
namespace {

using daf::testing::MakeClique;

// Same intractable space as cancel_test.cc: the run cannot finish within a
// test's lifetime unless the budget stops it.
Graph HardData() { return MakeClique(std::vector<Label>(32, 0)); }
Graph HardQuery() { return MakeClique(std::vector<Label>(7, 0)); }

class BudgetExhaustionTest : public ::testing::Test {
 protected:
  ~BudgetExhaustionTest() override { FaultInjector::Disarm(); }
};

TEST_F(BudgetExhaustionTest, TinyBudgetStopsRunInPreprocessing) {
  // 4 KiB cannot even hold the arena's first block: the CS build charges
  // over the limit immediately and the run unwinds from preprocessing.
  MemoryBudget budget(4 * 1024);
  MatchOptions options;
  options.memory_budget = &budget;
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.resource_exhausted);
  EXPECT_FALSE(result.Complete());
  EXPECT_FALSE(result.cs_certified_negative);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_GT(budget.rejections(), 0u);
  // The engine detached the arena on exit: nothing stays charged.
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_GT(budget.peak_bytes(), budget.limit());
}

TEST_F(BudgetExhaustionTest, MidSearchExhaustionReportsPartialCounts) {
  // Unlimited ledger; the flag is latched externally after 100 embeddings,
  // exercising the backtracker's StopCondition poll path.
  MemoryBudget budget;
  MatchOptions options;
  options.memory_budget = &budget;
  uint64_t seen = 0;
  options.callback = [&](std::span<const VertexId>) {
    if (++seen == 100) budget.MarkExhausted();
    return true;
  };
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.resource_exhausted);
  EXPECT_FALSE(result.cancelled);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.limit_reached);
  EXPECT_FALSE(result.Complete());
  EXPECT_GE(result.embeddings, 100u);
  EXPECT_GT(result.recursive_calls, 0u);
}

TEST_F(BudgetExhaustionTest, ExhaustionIsConsistentAcrossOptionMatrix) {
  // Every engine configuration must honor the budget and keep the
  // exhausted => !Complete && !cs_certified_negative invariant.
  struct Config {
    const char* name;
    bool failing_sets;
    bool leaf_decomposition;
    bool injective;
    uint32_t threads;  // 1 = DafMatch, >1 = ParallelDafMatch
  };
  const Config configs[] = {
      {"daf", true, true, true, 1},
      {"da_no_failing_sets", false, true, true, 1},
      {"no_leaf_decomposition", true, false, true, 1},
      {"homomorphism", true, true, false, 1},
      {"parallel", true, true, true, 4},
  };
  for (const Config& c : configs) {
    SCOPED_TRACE(c.name);
    MemoryBudget budget(4 * 1024);
    MatchOptions options;
    options.memory_budget = &budget;
    options.use_failing_sets = c.failing_sets;
    options.leaf_decomposition = c.leaf_decomposition;
    options.injective = c.injective;
    MatchResult result;
    if (c.threads > 1) {
      result = ParallelDafMatch(HardQuery(), HardData(), options, c.threads);
    } else {
      result = DafMatch(HardQuery(), HardData(), options);
    }
    EXPECT_TRUE(result.ok);
    EXPECT_TRUE(result.resource_exhausted);
    EXPECT_FALSE(result.Complete());
    EXPECT_FALSE(result.cs_certified_negative);
    EXPECT_EQ(budget.used(), 0u) << "charged bytes leaked";
  }
}

TEST_F(BudgetExhaustionTest, InjectedArenaAllocationFaultExhaustsRun) {
  // Force the first arena block acquisition to fail: the engine must treat
  // it exactly like a genuine over-limit charge.
  MemoryBudget budget;  // unlimited — only the fault can exhaust it
  FaultInjector::FireNth("arena_block_acquire", 1);
  MatchOptions options;
  options.memory_budget = &budget;
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.resource_exhausted);
  EXPECT_FALSE(result.Complete());
  EXPECT_FALSE(result.cs_certified_negative);
  EXPECT_EQ(FaultInjector::total_fires(), 1u);
}

TEST_F(BudgetExhaustionTest, InjectedDonationFaultExhaustsParallelRun) {
  // Every work-stealing donation attempt fails mid-steal: workers must
  // surface kResourceExhausted with a valid partial state instead of
  // wedging or losing subtrees.
  FaultInjector::ArmPoint("steal_donate", 99, 1.0);
  MatchOptions options;
  options.limit = 0;
  uint64_t count_limit_guard = 0;
  options.callback = [&](std::span<const VertexId>) {
    // Safety valve: the donation fault stops the run on the first steal
    // attempt, but cap the enumeration in case stealing never triggers.
    return ++count_limit_guard < 2000000;
  };
  ParallelMatchResult result =
      ParallelDafMatch(HardQuery(), HardData(), options, 4);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.resource_exhausted);
  EXPECT_FALSE(result.Complete());
  EXPECT_FALSE(result.cs_certified_negative);
}

TEST_F(BudgetExhaustionTest, GenerousBudgetCompletesAndReleasesEverything) {
  MemoryBudget budget(uint64_t{1} << 30);
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeClique({0, 0, 0});
  MatchOptions options;
  options.memory_budget = &budget;
  MatchResult result = DafMatch(query, data, options);
  EXPECT_TRUE(result.Complete());
  EXPECT_FALSE(result.resource_exhausted);
  EXPECT_EQ(result.embeddings, 24u);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.rejections(), 0u);
  EXPECT_EQ(budget.used(), 0u);   // arena detached, staging released
  EXPECT_GT(budget.peak_bytes(), 0u);  // ...but the run was really metered
}

TEST_F(BudgetExhaustionTest, InterruptedCsBuildReportsMemoryCause) {
  Graph data = HardData();
  Graph query = HardQuery();
  QueryDag dag = QueryDag::Build(query, data);
  MemoryBudget budget(1);  // any staging growth exceeds this
  budget.MarkExhausted();
  StopCondition stop(nullptr, nullptr, &budget);
  CandidateSpace::Options options;
  options.stop = &stop;
  options.budget = &budget;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, options);
  EXPECT_TRUE(cs.interrupted());
  EXPECT_EQ(cs.interrupt_cause(), StopCause::kMemoryExhausted);
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    EXPECT_EQ(cs.NumCandidates(u), 0u);
  }
  // The transient staging charge was released on return.
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(BudgetExhaustionTest, CompletedRunIgnoresLateExhaustion) {
  // Exhaustion latched after the search finished must not un-complete it.
  MemoryBudget budget;
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeClique({0, 0, 0});
  MatchOptions options;
  options.memory_budget = &budget;
  MatchResult result = DafMatch(query, data, options);
  budget.MarkExhausted();
  EXPECT_TRUE(result.Complete());
  EXPECT_FALSE(result.resource_exhausted);
  EXPECT_EQ(result.embeddings, 24u);
}

TEST_F(BudgetExhaustionTest, JsonExportCarriesResourceExhaustedFlag) {
  MemoryBudget budget(4 * 1024);
  MatchOptions options;
  options.memory_budget = &budget;
  obs::SearchProfile profile;
  options.profile = &profile;
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  ASSERT_TRUE(result.resource_exhausted);
  std::string json = obs::MatchResultToJson(result, &profile);
  EXPECT_NE(json.find("\"resource_exhausted\": true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"budget_exhausted\": true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"budget_rejections\""), std::string::npos) << json;
}

}  // namespace
}  // namespace daf

#include "daf/candidate_space.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/bruteforce.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakePath;
using daf::testing::RandomDataGraph;

// Structural invariants of any CS: candidates carry the right label and
// degree, edge lists are sorted index lists, every CS edge is a data edge,
// and the CS edges are complete w.r.t. condition (2) of the definition.
void CheckCsInvariants(const Graph& query, const QueryDag& dag,
                       const Graph& data, const CandidateSpace& cs) {
  for (uint32_t u = 0; u < query.NumVertices(); ++u) {
    auto cands = cs.Candidates(u);
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
    for (VertexId v : cands) {
      EXPECT_EQ(data.label(v), dag.DataLabel(u));
      EXPECT_GE(data.degree(v), query.degree(u));
    }
  }
  for (uint32_t u = 0; u < query.NumVertices(); ++u) {
    const auto& children = dag.Children(u);
    for (uint32_t pos = 0; pos < children.size(); ++pos) {
      VertexId c = children[pos];
      uint32_t edge_id = dag.ChildEdgeId(u, pos);
      for (uint32_t ip = 0; ip < cs.NumCandidates(u); ++ip) {
        auto targets = cs.EdgeNeighbors(edge_id, ip);
        EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
        VertexId vp = cs.CandidateVertex(u, ip);
        for (uint32_t ic : targets) {
          ASSERT_LT(ic, cs.NumCandidates(c));
          EXPECT_TRUE(data.HasEdge(vp, cs.CandidateVertex(c, ic)));
        }
        // Completeness: every adjacent candidate pair is materialized.
        size_t expected = 0;
        for (uint32_t ic = 0; ic < cs.NumCandidates(c); ++ic) {
          if (data.HasEdge(vp, cs.CandidateVertex(c, ic))) ++expected;
        }
        EXPECT_EQ(targets.size(), expected);
      }
    }
  }
}

TEST(CandidateSpaceTest, SoundnessOnRandomInstances) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    Graph data = RandomDataGraph(60, 150 + rng.UniformInt(150), 4, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    const Graph& query = extracted->query;
    QueryDag dag = QueryDag::Build(query, data);
    CandidateSpace cs = CandidateSpace::Build(query, dag, data);
    CheckCsInvariants(query, dag, data, cs);

    // Every true embedding survives every candidate set (Definition 4.2).
    EmbeddingSet embeddings;
    baselines::MatcherOptions opts;
    opts.callback = Collector(&embeddings);
    baselines::BruteForceMatch(query, data, opts);
    for (const auto& embedding : embeddings) {
      for (uint32_t u = 0; u < query.NumVertices(); ++u) {
        auto cands = cs.Candidates(u);
        EXPECT_TRUE(
            std::binary_search(cands.begin(), cands.end(), embedding[u]))
            << "embedding vertex dropped from C(" << u << ")";
      }
    }
  }
}

TEST(CandidateSpaceTest, RefinementOnlyShrinksCandidates) {
  Rng rng(62);
  Graph data = RandomDataGraph(80, 240, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 8, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  const Graph& query = extracted->query;
  QueryDag dag = QueryDag::Build(query, data);
  uint64_t previous = ~0ull;
  for (int steps = 0; steps <= 5; ++steps) {
    CandidateSpace cs = CandidateSpace::Build(query, dag, data, steps);
    EXPECT_LE(cs.TotalCandidates(), previous);
    previous = cs.TotalCandidates();
  }
}

TEST(CandidateSpaceTest, DagGraphDpRemovesDeadEnds) {
  // Query: path A-B-C-D. Data: good chain a-b1-c1-d plus a decoy branch
  // a-b2-c2 where c2 has no D-neighbor. b2 passes every *local* filter
  // (label, degree, MND, NLF: it has an A- and a C-neighbor); only the
  // DAG-graph DP recurrence — which needs a surviving C-child candidate,
  // and c2 dies because it lacks a D-neighbor — can eliminate it. This is
  // exactly the 2-hop propagation local filters cannot see.
  Graph query = MakePath({0, 1, 2, 3});
  Graph data = Graph::FromEdges({0, 1, 2, 3, 1, 2},
                                {{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}});
  QueryDag dag = QueryDag::BuildWithRoot(query, data, 0);
  CandidateSpace unrefined = CandidateSpace::Build(query, dag, data, 0);
  CandidateSpace refined = CandidateSpace::Build(query, dag, data, 3);
  const uint32_t ub = 1;  // query vertex with label B
  auto unrefined_b = unrefined.Candidates(ub);
  EXPECT_TRUE(std::binary_search(unrefined_b.begin(), unrefined_b.end(), 4u))
      << "decoy b2 should survive the local filters";
  ASSERT_EQ(refined.NumCandidates(ub), 1u);
  EXPECT_EQ(refined.CandidateVertex(ub, 0), 1u);
}

TEST(CandidateSpaceTest, NlfFilterPrunesAtSeedTime) {
  // Query center needs two B-neighbors; data vertex x has degree 2 but
  // only one B-neighbor, so only NLF (not the degree filter) rejects it.
  Graph query = MakePath({1, 0, 1});  // B - A - B
  Graph data = Graph::FromEdges(
      {0, 1, 2, 0, 1, 1},
      {{0, 1}, {0, 2}, {3, 4}, {3, 5}});  // x-B, x-C ; y-B, y-B
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, 0);
  const uint32_t center = 1;
  ASSERT_EQ(cs.NumCandidates(center), 1u);
  EXPECT_EQ(cs.CandidateVertex(center, 0), 3u);
}

TEST(CandidateSpaceTest, MissingLabelEmptiesCandidates) {
  Graph query = MakePath({0, 9});
  Graph data = MakePath({0, 0, 0});
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  bool some_empty = false;
  for (uint32_t u = 0; u < 2; ++u) {
    some_empty |= cs.NumCandidates(u) == 0;
  }
  EXPECT_TRUE(some_empty);
}

TEST(CandidateSpaceTest, SingleVertexQuery) {
  Graph query = Graph::FromEdges({5}, {});
  Graph data = Graph::FromEdges({5, 5, 6}, {{0, 1}, {1, 2}});
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace cs = CandidateSpace::Build(query, dag, data);
  EXPECT_EQ(cs.NumCandidates(0), 2u);
  EXPECT_EQ(cs.TotalCandidates(), 2u);
  EXPECT_EQ(cs.TotalEdges(), 0u);
}

TEST(CandidateSpaceTest, DisablingFiltersOnlyGrowsCandidates) {
  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data = RandomDataGraph(60, 150 + rng.UniformInt(100), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 5 + rng.UniformInt(4), -1.0, rng);
    if (!extracted) continue;
    QueryDag dag = QueryDag::Build(extracted->query, data);
    CandidateSpace::Options all_on;
    CandidateSpace::Options no_nlf;
    no_nlf.use_nlf_filter = false;
    CandidateSpace::Options no_mnd;
    no_mnd.use_mnd_filter = false;
    CandidateSpace::Options none;
    none.use_nlf_filter = false;
    none.use_mnd_filter = false;
    uint64_t base =
        CandidateSpace::Build(extracted->query, dag, data, all_on)
            .TotalCandidates();
    EXPECT_LE(base, CandidateSpace::Build(extracted->query, dag, data,
                                          no_nlf)
                        .TotalCandidates());
    EXPECT_LE(base, CandidateSpace::Build(extracted->query, dag, data,
                                          no_mnd)
                        .TotalCandidates());
    EXPECT_LE(base, CandidateSpace::Build(extracted->query, dag, data, none)
                        .TotalCandidates());
  }
}

TEST(CandidateSpaceTest, FiltersOffStillSound) {
  Rng rng(65);
  Graph data = RandomDataGraph(50, 140, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  const Graph& query = extracted->query;
  EmbeddingSet embeddings;
  baselines::MatcherOptions brute;
  brute.callback = Collector(&embeddings);
  baselines::BruteForceMatch(query, data, brute);
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace::Options none;
  none.use_nlf_filter = false;
  none.use_mnd_filter = false;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, none);
  for (const auto& embedding : embeddings) {
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      auto cands = cs.Candidates(u);
      EXPECT_TRUE(
          std::binary_search(cands.begin(), cands.end(), embedding[u]));
    }
  }
}

TEST(CandidateSpaceTest, HomomorphismModeKeepsCollapsedImages) {
  // Star query B-A-B; data path A-B. In injective mode the B-leaf demand
  // (NLF count 2) empties C(u_A); in homomorphism mode the data A vertex
  // must survive because the hom collapsing both leaves onto B exists.
  Graph query = MakePath({1, 0, 1});
  Graph data = MakePath({0, 1});
  QueryDag dag = QueryDag::Build(query, data);
  CandidateSpace::Options hom;
  hom.injective = false;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, hom);
  uint32_t center = 1;  // label A
  EXPECT_EQ(cs.NumCandidates(center), 1u);
  CandidateSpace strict = CandidateSpace::Build(query, dag, data);
  EXPECT_EQ(strict.NumCandidates(center), 0u);
}

TEST(CandidateSpaceTest, TotalsAreConsistent) {
  Rng rng(63);
  Graph data = RandomDataGraph(70, 200, 4, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  QueryDag dag = QueryDag::Build(extracted->query, data);
  CandidateSpace cs = CandidateSpace::Build(extracted->query, dag, data);
  uint64_t total = 0;
  for (uint32_t u = 0; u < extracted->query.NumVertices(); ++u) {
    total += cs.NumCandidates(u);
  }
  EXPECT_EQ(total, cs.TotalCandidates());
}

}  // namespace
}  // namespace daf

// Cancellation-path consistency across the three engine entry points:
// DafMatch, ParallelDafMatch, and EmbeddingCursor must all report a
// cancelled run as ok / cancelled / !Complete() with partial counts, and an
// interrupted CS build must never masquerade as a negativity certificate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "daf/candidate_space.h"
#include "daf/cursor.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "daf/query_dag.h"
#include "obs/json.h"
#include "tests/test_util.h"
#include "util/stop.h"

namespace daf {
namespace {

using daf::testing::MakeClique;

// A search space with billions of embeddings: clique query in a large
// clique, so no run at these sizes finishes within a test's lifetime
// unless it is stopped.
Graph HardData() { return MakeClique(std::vector<Label>(32, 0)); }
Graph HardQuery() { return MakeClique(std::vector<Label>(7, 0)); }

TEST(CancelTest, PreCancelledMatchStopsInPreprocessing) {
  CancelToken token;
  token.Cancel();
  MatchOptions options;
  options.cancel = &token;
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.Complete());
  EXPECT_EQ(result.embeddings, 0u);
  // The interrupted (empty) CS must not read as a proven-negative query.
  EXPECT_FALSE(result.cs_certified_negative);
}

TEST(CancelTest, CancelMidSearchReportsPartialCounts) {
  CancelToken token;
  MatchOptions options;
  options.cancel = &token;
  uint64_t seen = 0;
  options.callback = [&](std::span<const VertexId>) {
    if (++seen == 100) token.Cancel();
    return true;
  };
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.limit_reached);
  EXPECT_FALSE(result.Complete());
  // Partial but nonzero progress, far short of the full enumeration.
  EXPECT_GE(result.embeddings, 100u);
  EXPECT_GT(result.recursive_calls, 0u);
}

TEST(CancelTest, CancelFromAnotherThreadStopsRunningSearch) {
  CancelToken token;
  std::atomic<uint64_t> seen{0};
  MatchOptions options;
  options.cancel = &token;
  options.callback = [&](std::span<const VertexId>) {
    seen.fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  std::thread canceller([&] {
    // Wait until the search demonstrably runs, then pull the plug.
    while (seen.load(std::memory_order_relaxed) < 50) {
      std::this_thread::yield();
    }
    token.Cancel();
  });
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  canceller.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.Complete());
}

TEST(CancelTest, ParallelPreCancelledMatchesSequentialShape) {
  CancelToken token;
  token.Cancel();
  MatchOptions options;
  options.cancel = &token;
  ParallelMatchResult result =
      ParallelDafMatch(HardQuery(), HardData(), options, 4);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.Complete());
  EXPECT_EQ(result.embeddings, 0u);
  EXPECT_FALSE(result.cs_certified_negative);
}

TEST(CancelTest, ParallelCancelMidSearchStopsAllWorkers) {
  CancelToken token;
  MatchOptions options;
  options.cancel = &token;
  uint64_t seen = 0;  // callback runs under the engine's mutex
  options.callback = [&](std::span<const VertexId>) {
    if (++seen == 100) token.Cancel();
    return true;
  };
  ParallelMatchResult result =
      ParallelDafMatch(HardQuery(), HardData(), options, 4);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.Complete());
  EXPECT_GE(result.embeddings, 100u);
}

TEST(CancelTest, CursorCancelStopsProducerAndMarksCancelled) {
  // Named graphs: the cursor's producer thread holds them by reference.
  Graph query = HardQuery();
  Graph data = HardData();
  CancelToken token;
  MatchOptions options;
  options.cancel = &token;
  EmbeddingCursor cursor(query, data, options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cursor.Next().has_value());
  }
  token.Cancel();
  // Drain whatever was already buffered; the producer stops shortly.
  while (cursor.Next().has_value()) {
  }
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.Complete());
  EXPECT_GE(result.embeddings, 10u);
}

TEST(CancelTest, CursorCloseIsNotCancel) {
  // Consumer-side abandonment keeps its limit_reached reporting; the
  // cancelled flag is reserved for the token path.
  Graph query = HardQuery();
  Graph data = HardData();
  EmbeddingCursor cursor(query, data);
  ASSERT_TRUE(cursor.Next().has_value());
  cursor.Close();
  const MatchResult& result = cursor.Finish();
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.limit_reached);
  EXPECT_FALSE(result.cancelled);
  EXPECT_FALSE(result.Complete());
}

TEST(CancelTest, CompletedRunIgnoresLateCancel) {
  // A cancel that lands after the search finished must not un-complete it.
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeClique({0, 0, 0});
  CancelToken token;
  MatchOptions options;
  options.cancel = &token;
  MatchResult result = DafMatch(query, data, options);
  token.Cancel();
  EXPECT_TRUE(result.Complete());
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.embeddings, 24u);
}

TEST(CancelTest, InterruptedCsBuildIsEmptyButStructurallyValid) {
  Graph data = HardData();
  Graph query = HardQuery();
  QueryDag dag = QueryDag::Build(query, data);
  CancelToken token;
  token.Cancel();
  StopCondition stop(nullptr, &token);
  CandidateSpace::Options options;
  options.stop = &stop;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, options);
  EXPECT_TRUE(cs.interrupted());
  EXPECT_EQ(cs.interrupt_cause(), StopCause::kCancel);
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    EXPECT_EQ(cs.NumCandidates(u), 0u);
    EXPECT_TRUE(cs.Candidates(u).empty());
  }
}

TEST(CancelTest, ExpiredDeadlineInterruptsCsBuildWithDeadlineCause) {
  Graph data = HardData();
  Graph query = HardQuery();
  QueryDag dag = QueryDag::Build(query, data);
  Deadline deadline(1);
  while (!deadline.Expired()) {
  }
  StopCondition stop(&deadline, nullptr);
  CandidateSpace::Options options;
  options.stop = &stop;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, options);
  EXPECT_TRUE(cs.interrupted());
  EXPECT_EQ(cs.interrupt_cause(), StopCause::kDeadline);
}

TEST(CancelTest, UninterruptedBuildReportsNoCause) {
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeClique({0, 0, 0});
  QueryDag dag = QueryDag::Build(query, data);
  CancelToken token;  // armed but never cancelled
  StopCondition stop(nullptr, &token);
  CandidateSpace::Options options;
  options.stop = &stop;
  CandidateSpace cs = CandidateSpace::Build(query, dag, data, options);
  EXPECT_FALSE(cs.interrupted());
  EXPECT_EQ(cs.interrupt_cause(), StopCause::kNone);
  EXPECT_GT(cs.NumCandidates(0), 0u);
}

TEST(CancelTest, JsonExportCarriesCancelledFlag) {
  CancelToken token;
  token.Cancel();
  MatchOptions options;
  options.cancel = &token;
  MatchResult result = DafMatch(HardQuery(), HardData(), options);
  std::string json = obs::MatchResultToJson(result);
  EXPECT_NE(json.find("\"cancelled\": true"), std::string::npos) << json;
}

}  // namespace
}  // namespace daf

#include <gtest/gtest.h>

#include "daf/engine.h"
#include "tests/test_util.h"

namespace daf {
namespace {

// Regression tests for MatchResult timing on early-exit paths: preprocess_ms
// and search_ms must be populated (and consistent) even when the run never
// reaches the backtracking search.

TEST(EngineTimingTest, CertifiedNegativePopulatesPreprocessTime) {
  // Query label 9 does not occur in the data graph, so the CS certifies
  // negativity and the search never runs.
  Graph query = daf::testing::MakePath({0, 9});
  Graph data = daf::testing::MakePath({0, 0, 0});
  MatchResult r = DafMatch(query, data);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.cs_certified_negative);
  EXPECT_GT(r.preprocess_ms, 0.0);
  EXPECT_EQ(r.search_ms, 0.0);
  EXPECT_EQ(r.recursive_calls, 0u);
}

TEST(EngineTimingTest, TimeoutDuringPreprocessingPopulatesTimers) {
  // A data graph large enough that CS construction takes longer than the
  // 1 ms budget on any realistic machine. If the machine is somehow fast
  // enough to finish preprocessing in time, the run must complete normally
  // with consistent timers — either way, no path may leave them at zero.
  Rng rng(123);
  Graph data = daf::testing::RandomDataGraph(4000, 60000, 2, rng);
  Graph query = daf::testing::MakeCycle({0, 1, 0, 1, 0, 1});
  MatchOptions options;
  options.time_limit_ms = 1;
  MatchResult r = DafMatch(query, data, options);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.preprocess_ms, 0.0);
  if (r.timed_out && r.recursive_calls == 0) {
    // Timed out before the search started.
    EXPECT_EQ(r.search_ms, 0.0);
  } else if (r.timed_out) {
    // Timed out inside the search.
    EXPECT_GT(r.search_ms, 0.0);
  }
}

TEST(EngineTimingTest, CompletedRunPopulatesBothTimers) {
  Rng rng(9);
  Graph data = daf::testing::RandomDataGraph(50, 150, 2, rng);
  Graph query = daf::testing::MakePath({0, 1, 0});
  MatchResult r = DafMatch(query, data);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.preprocess_ms, 0.0);
  EXPECT_GT(r.search_ms, 0.0);
  EXPECT_GT(r.recursive_calls, 0u);
}

TEST(EngineTimingTest, ProfileStageTimersSumIntoPreprocess) {
  Rng rng(21);
  Graph data = daf::testing::RandomDataGraph(60, 200, 2, rng);
  Graph query = daf::testing::MakePath({0, 1, 0, 1});
  obs::SearchProfile profile;
  MatchOptions options;
  options.profile = &profile;
  MatchResult r = DafMatch(query, data, options);
  ASSERT_TRUE(r.ok);
  // Stage timers are sub-spans of the preprocess timer.
  EXPECT_GE(profile.dag_build_ms, 0.0);
  EXPECT_GT(profile.cs_build_ms, 0.0);
  EXPECT_LE(profile.dag_build_ms + profile.cs_build_ms + profile.weights_ms,
            r.preprocess_ms + 1.0);
  EXPECT_EQ(profile.search_ms, r.search_ms);
  // CS sub-stage timers are sub-spans of cs_build_ms.
  EXPECT_LE(profile.cs.seed_ms + profile.cs.refine_ms + profile.cs.edges_ms,
            profile.cs_build_ms + 1.0);
}

}  // namespace
}  // namespace daf

#include <gtest/gtest.h>

#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

// An Example 6.1-style instance. Query (labels in parentheses):
//
//   u1(A) - u2(B),  u1 - u3(C),  u3 - u5(B),  u1 - u4(D),  u4 - u6(E)
//
// Data: one A-hub v0; a single B vertex v1 adjacent to v0 and to every C
// vertex; `num_c` C vertices adjacent to the hub; `num_d` D vertices, each
// adjacent to the hub and to a private E vertex.
//
// Every search dead-ends in a conflict between u2 and u5 on v1 (the only B
// vertex), no matter which D vertex u4 takes — so u4 is *irrelevant to the
// failure* and the failing set {u1,u2,u3,u5} excludes u4. u4 carries a
// pendant E child so it is a non-leaf (leaf decomposition must not defer
// it), and with num_d < num_c the path-size order maps u4 before u3
// (w_M(u4) = num_d < w_M(u3) = num_c). Failing-set pruning must collapse
// the num_d redundant u4-subtrees into one (Lemma 6.1); the unpruned search
// explores all of them.
struct Instance {
  Graph query;
  Graph data;
};

Instance MakeInstance(uint32_t num_d, uint32_t num_c = 20) {
  Instance inst;
  inst.query = Graph::FromEdges(
      {0, 1, 2, 3, 1, 4},
      {{0, 1}, {0, 2}, {2, 4}, {0, 3}, {3, 5}});
  std::vector<Label> labels{0, 1};  // v0 = A hub, v1 = the only B
  std::vector<Edge> edges{{0, 1}};
  for (uint32_t i = 0; i < num_c; ++i) {
    VertexId c = static_cast<VertexId>(labels.size());
    labels.push_back(2);
    edges.emplace_back(0, c);
    edges.emplace_back(c, 1);
  }
  for (uint32_t i = 0; i < num_d; ++i) {
    VertexId d = static_cast<VertexId>(labels.size());
    labels.push_back(3);
    edges.emplace_back(0, d);
    VertexId e = static_cast<VertexId>(labels.size());
    labels.push_back(4);
    edges.emplace_back(d, e);
  }
  inst.data = Graph::FromEdges(std::move(labels), edges);
  return inst;
}

TEST(FailingSetTest, PrunesRedundantSiblings) {
  Instance inst = MakeInstance(/*num_d=*/15);

  MatchOptions with;
  with.use_failing_sets = true;
  MatchResult pruned = DafMatch(inst.query, inst.data, with);

  MatchOptions without;
  without.use_failing_sets = false;
  MatchResult unpruned = DafMatch(inst.query, inst.data, without);

  ASSERT_TRUE(pruned.ok);
  ASSERT_TRUE(unpruned.ok);
  EXPECT_EQ(pruned.embeddings, 0u);
  EXPECT_EQ(unpruned.embeddings, 0u);
  // Unpruned: all 15 u4 candidates are explored, each paying the full
  // 20-candidate u3 sweep. Pruned: the u4 branch is entered exactly once.
  EXPECT_GT(unpruned.recursive_calls, 300u);
  EXPECT_LT(pruned.recursive_calls, 80u);
}

TEST(FailingSetTest, PrunedSearchIsIndependentOfRedundancyWidth) {
  MatchOptions with;
  with.use_failing_sets = true;
  MatchResult narrow = DafMatch(MakeInstance(5).query,
                                MakeInstance(5).data, with);
  MatchResult wide = DafMatch(MakeInstance(18).query,
                              MakeInstance(18).data, with);
  ASSERT_TRUE(narrow.ok);
  ASSERT_TRUE(wide.ok);
  // Lemma 6.1 removes the whole redundant sibling range, so the pruned
  // search-tree size does not depend on how many u4 candidates exist.
  EXPECT_EQ(narrow.recursive_calls, wide.recursive_calls);
}

TEST(FailingSetTest, UnprunedSearchGrowsWithRedundancyWidth) {
  MatchOptions without;
  without.use_failing_sets = false;
  MatchResult narrow = DafMatch(MakeInstance(5).query,
                                MakeInstance(5).data, without);
  MatchResult wide = DafMatch(MakeInstance(18).query,
                              MakeInstance(18).data, without);
  EXPECT_GT(wide.recursive_calls, narrow.recursive_calls + 200);
}

TEST(FailingSetTest, NeverChangesResultsOnRandomInstances) {
  Rng rng(95);
  for (int trial = 0; trial < 25; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(50, 100 + rng.UniformInt(150), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(6), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet with;
    EmbeddingSet without;
    MatchOptions a;
    a.use_failing_sets = true;
    a.callback = Collector(&with);
    MatchResult ra = DafMatch(extracted->query, data, a);
    MatchOptions b;
    b.use_failing_sets = false;
    b.callback = Collector(&without);
    MatchResult rb = DafMatch(extracted->query, data, b);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(with, without);
    EXPECT_LE(ra.recursive_calls, rb.recursive_calls);
  }
}

TEST(FailingSetTest, WorksTogetherWithCandidateSizeOrder) {
  Instance inst = MakeInstance(15);
  MatchOptions opts;
  opts.order = MatchOrder::kCandidateSize;
  opts.use_failing_sets = true;
  MatchResult pruned = DafMatch(inst.query, inst.data, opts);
  opts.use_failing_sets = false;
  MatchResult unpruned = DafMatch(inst.query, inst.data, opts);
  EXPECT_EQ(pruned.embeddings, unpruned.embeddings);
  EXPECT_LE(pruned.recursive_calls, unpruned.recursive_calls);
}

}  // namespace
}  // namespace daf

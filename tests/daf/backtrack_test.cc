#include "daf/backtrack.h"

#include <gtest/gtest.h>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

struct Pipeline {
  QueryDag dag;
  CandidateSpace cs;
  WeightArray weights;

  Pipeline(const Graph& query, const Graph& data)
      : dag(QueryDag::Build(query, data)),
        cs(CandidateSpace::Build(query, dag, data)),
        weights(WeightArray::Compute(dag, cs)) {}
};

TEST(BacktrackTest, ReusableAcrossRuns) {
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  Pipeline p(query, data);
  Backtracker bt(query, p.dag, p.cs, &p.weights, data.NumVertices());
  BacktrackOptions opts;
  BacktrackStats first = bt.Run(opts);
  BacktrackStats second = bt.Run(opts);
  EXPECT_EQ(first.embeddings, 24u);
  EXPECT_EQ(second.embeddings, first.embeddings);
  EXPECT_EQ(second.recursive_calls, first.recursive_calls);
}

TEST(BacktrackTest, CandidateSizeOrderWorksWithoutWeights) {
  Graph data = MakeClique({0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  Pipeline p(query, data);
  Backtracker bt(query, p.dag, p.cs, nullptr, data.NumVertices());
  BacktrackOptions opts;
  opts.order = MatchOrder::kCandidateSize;
  EXPECT_EQ(bt.Run(opts).embeddings, 24u);
}

TEST(BacktrackTest, FailingSetsNeverChangeResults) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 100 + rng.UniformInt(100), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    Pipeline p(extracted->query, data);
    Backtracker bt(extracted->query, p.dag, p.cs, &p.weights,
                   data.NumVertices());
    EmbeddingSet with;
    EmbeddingSet without;
    BacktrackOptions a;
    a.use_failing_sets = true;
    a.callback = Collector(&with);
    BacktrackStats sa = bt.Run(a);
    BacktrackOptions b;
    b.use_failing_sets = false;
    b.callback = Collector(&without);
    BacktrackStats sb = bt.Run(b);
    EXPECT_EQ(with, without);
    // Pruning can only remove search-tree nodes.
    EXPECT_LE(sa.recursive_calls, sb.recursive_calls);
  }
}

TEST(BacktrackTest, ConflictNodesAreCounted) {
  // Query: path B-A-B; data: A-hub with exactly two B leaves. The second B
  // query vertex conflicts with the first on one branch, producing
  // conflict-class search-tree nodes.
  Graph query = MakePath({1, 0, 1});
  Graph data = Graph::FromEdges({0, 1, 1}, {{0, 1}, {0, 2}});
  Pipeline p(query, data);
  Backtracker bt(query, p.dag, p.cs, &p.weights, data.NumVertices());
  BacktrackOptions opts;
  BacktrackStats stats = bt.Run(opts);
  EXPECT_EQ(stats.embeddings, 2u);  // (1,0,2) and (2,0,1)
  // Nodes: root + hub + 2 first-B + 2 embeddings + 2 conflicts >= 7.
  EXPECT_GE(stats.recursive_calls, 7u);
}

TEST(BacktrackTest, SharedCountLimitsAcrossRuns) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 60 embeddings
  Pipeline p(query, data);
  Backtracker bt(query, p.dag, p.cs, &p.weights, data.NumVertices());
  std::atomic<uint64_t> shared{55};  // pretend another worker found 55
  BacktrackOptions opts;
  opts.limit = 60;
  opts.shared_count = &shared;
  BacktrackStats stats = bt.Run(opts);
  EXPECT_EQ(stats.embeddings, 5u);
  EXPECT_TRUE(stats.limit_reached);
}

TEST(BacktrackTest, RootCursorPartitionsWork) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  Pipeline p(query, data);
  // Two sequential "workers" sharing a cursor must partition the root
  // candidates and together find all embeddings exactly once.
  std::atomic<uint32_t> cursor{0};
  std::atomic<uint64_t> shared{0};
  EmbeddingSet all;
  uint64_t total = 0;
  for (int worker = 0; worker < 2; ++worker) {
    Backtracker bt(query, p.dag, p.cs, &p.weights, data.NumVertices());
    BacktrackOptions opts;
    opts.root_cursor = &cursor;
    opts.shared_count = &shared;
    opts.callback = Collector(&all);
    total += bt.Run(opts).embeddings;
  }
  EXPECT_EQ(total, 60u);
  EXPECT_EQ(all.size(), 60u);  // no duplicates
}

TEST(BacktrackTest, LeafDecompositionDefersLeaves) {
  // Star query: center + 3 leaves. With leaf decomposition the center (the
  // only non-leaf) must be matched first — identical results either way.
  Graph data = daf::testing::MakeStar({1, 0, 0, 0, 0});
  Graph query = daf::testing::MakeStar({1, 0, 0, 0});
  Pipeline p(query, data);
  Backtracker bt(query, p.dag, p.cs, &p.weights, data.NumVertices());
  EmbeddingSet with;
  EmbeddingSet without;
  BacktrackOptions a;
  a.leaf_decomposition = true;
  a.callback = Collector(&with);
  bt.Run(a);
  BacktrackOptions b;
  b.leaf_decomposition = false;
  b.callback = Collector(&without);
  bt.Run(b);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with.size(), 24u);  // 4*3*2 leaf assignments
}

}  // namespace
}  // namespace daf

#include "daf/boost.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakeStar;

TEST(VertexEquivalenceTest, StarLeavesAreEquivalent) {
  // SE: the leaves of a star share N(v) = {center} and the same label.
  Graph star = MakeStar({1, 0, 0, 0, 0});
  VertexEquivalence eq = VertexEquivalence::Compute(star);
  EXPECT_EQ(eq.ClassOf(1), eq.ClassOf(2));
  EXPECT_EQ(eq.ClassOf(2), eq.ClassOf(3));
  EXPECT_EQ(eq.ClassOf(3), eq.ClassOf(4));
  EXPECT_NE(eq.ClassOf(0), eq.ClassOf(1));
  EXPECT_EQ(eq.NumClasses(), 2u);
  EXPECT_NEAR(eq.CompressionRatio(), 1.0 - 2.0 / 5.0, 1e-9);
}

TEST(VertexEquivalenceTest, CliqueVerticesAreQdeEquivalent) {
  // QDE: in a monochromatic clique all closed neighborhoods coincide.
  Graph clique = MakeClique({0, 0, 0, 0});
  VertexEquivalence eq = VertexEquivalence::Compute(clique);
  EXPECT_EQ(eq.NumClasses(), 1u);
  EXPECT_EQ(eq.ClassSize(eq.ClassOf(0)), 4u);
}

TEST(VertexEquivalenceTest, LabelsSplitClasses) {
  Graph star = MakeStar({1, 0, 0, 2, 2});
  VertexEquivalence eq = VertexEquivalence::Compute(star);
  EXPECT_EQ(eq.ClassOf(1), eq.ClassOf(2));
  EXPECT_EQ(eq.ClassOf(3), eq.ClassOf(4));
  EXPECT_NE(eq.ClassOf(1), eq.ClassOf(3));
}

TEST(VertexEquivalenceTest, PathHasSymmetricEndpointsOnly) {
  Graph path = daf::testing::MakePath({0, 1, 0});
  VertexEquivalence eq = VertexEquivalence::Compute(path);
  EXPECT_EQ(eq.ClassOf(0), eq.ClassOf(2));  // both adjacent to the middle
  EXPECT_NE(eq.ClassOf(0), eq.ClassOf(1));
  EXPECT_EQ(eq.NumClasses(), 2u);
}

TEST(VertexEquivalenceTest, NoEquivalenceInAsymmetricGraph) {
  // Path with distinct labels: no two vertices equivalent.
  Graph path = daf::testing::MakePath({0, 1, 2, 3});
  VertexEquivalence eq = VertexEquivalence::Compute(path);
  EXPECT_EQ(eq.NumClasses(), 4u);
  EXPECT_DOUBLE_EQ(eq.CompressionRatio(), 0.0);
}

TEST(VertexEquivalenceTest, EdgeLabelsSplitSeClasses) {
  // Star where two leaves attach with bond 1 and one with bond 2: the
  // bond-2 leaf must not join the others' class (a boost-skip across
  // them would be unsound for edge-label-preserving matching).
  Graph star = Graph::FromLabeledEdges({1, 0, 0, 0},
                                       {{0, 1}, {0, 2}, {0, 3}}, {1, 1, 2});
  VertexEquivalence eq = VertexEquivalence::Compute(star);
  EXPECT_EQ(eq.ClassOf(1), eq.ClassOf(2));
  EXPECT_NE(eq.ClassOf(1), eq.ClassOf(3));
}

TEST(VertexEquivalenceTest, EdgeLabelsSplitQdeClasses) {
  // Triangle with one odd edge: x-y labeled 1, x-z labeled 1, y-z labeled
  // 2. y and z are adjacent twins structurally, and their remaining edges
  // (to x) carry equal labels, so y ~ z; but x pairs with neither (its
  // two edges both have label 1 while y/z each see a label-2 edge).
  Graph t = Graph::FromLabeledEdges({0, 0, 0}, {{0, 1}, {0, 2}, {1, 2}},
                                    {1, 1, 2});
  VertexEquivalence eq = VertexEquivalence::Compute(t);
  EXPECT_EQ(eq.ClassOf(1), eq.ClassOf(2));
  EXPECT_NE(eq.ClassOf(0), eq.ClassOf(1));
}

TEST(DafBoostTest, SoundOnEdgeLabeledGraphs) {
  // The decisive scenario: two structurally-twin leaves with different
  // bond labels, a query that matches only one of them. A label-blind
  // equivalence would let the boost skip the good leaf after the bad one
  // fails.
  Graph data = Graph::FromLabeledEdges(
      {1, 0, 0}, {{0, 1}, {0, 2}}, {1, 2});  // hub, leaf@1, leaf@2
  Graph query = Graph::FromLabeledEdges({1, 0}, {{0, 1}}, {2});
  VertexEquivalence eq = VertexEquivalence::Compute(data);
  MatchOptions opts;
  opts.equivalence = &eq;
  MatchResult r = DafMatch(query, data, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, 1u);
}

TEST(DafBoostTest, ProducesIdenticalEmbeddings) {
  Rng rng(111);
  for (int trial = 0; trial < 20; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 80 + rng.UniformInt(120), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    EmbeddingSet plain;
    EmbeddingSet boosted;
    MatchOptions a;
    a.callback = Collector(&plain);
    MatchResult ra = DafMatch(extracted->query, data, a);
    MatchOptions b;
    b.callback = Collector(&boosted);
    b.equivalence = &eq;
    MatchResult rb = DafMatch(extracted->query, data, b);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(plain, boosted);
    // Skipping can only reduce explored nodes.
    EXPECT_LE(rb.recursive_calls, ra.recursive_calls);
  }
}

TEST(DafBoostTest, SkipsEquivalentFailingSiblings) {
  // Same structure as the failing-set showcase (see failing_set_test.cc),
  // except all D vertices share one pendant E vertex, making them
  // SE-equivalent: N(d_i) = {hub, e0} for every i. Every d_i subtree fails
  // for reasons that do not involve d_i (the u2/u5 conflict on the only B
  // vertex), so with equivalence skipping — and failing sets disabled, to
  // isolate the boost effect — the D branch must be explored exactly once.
  Graph query = Graph::FromEdges(
      {0, 1, 2, 3, 1, 4},
      {{0, 1}, {0, 2}, {2, 4}, {0, 3}, {3, 5}});
  std::vector<Label> labels{0, 1, 4};  // v0 = A hub, v1 = only B, v2 = e0
  std::vector<Edge> edges{{0, 1}};
  constexpr uint32_t kNumC = 20;
  constexpr uint32_t kNumD = 15;
  for (uint32_t i = 0; i < kNumC; ++i) {
    VertexId c = static_cast<VertexId>(labels.size());
    labels.push_back(2);
    edges.emplace_back(0, c);
    edges.emplace_back(c, 1);
  }
  for (uint32_t i = 0; i < kNumD; ++i) {
    VertexId d = static_cast<VertexId>(labels.size());
    labels.push_back(3);
    edges.emplace_back(0, d);
    edges.emplace_back(d, 2);  // shared pendant e0
  }
  Graph data = Graph::FromEdges(std::move(labels), edges);
  VertexEquivalence eq = VertexEquivalence::Compute(data);
  // All D vertices form one class.
  EXPECT_EQ(eq.ClassSize(eq.ClassOf(3 + kNumC)), kNumD);

  MatchOptions plain;
  plain.use_failing_sets = false;
  MatchResult r_plain = DafMatch(query, data, plain);
  MatchOptions boosted;
  boosted.use_failing_sets = false;
  boosted.equivalence = &eq;
  MatchResult r_boost = DafMatch(query, data, boosted);
  ASSERT_TRUE(r_plain.ok && r_boost.ok);
  EXPECT_EQ(r_plain.embeddings, 0u);
  EXPECT_EQ(r_boost.embeddings, 0u);
  EXPECT_GT(r_plain.recursive_calls, 500u);
  EXPECT_LT(r_boost.recursive_calls, 150u);
}

TEST(DafBoostTest, AgreesWithBruteForceOnCompressibleGraphs) {
  // Highly compressible data graph: few hubs, many equivalent leaves.
  Rng rng(112);
  std::vector<Label> labels{0, 0, 0};
  std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  for (int i = 0; i < 40; ++i) {
    VertexId leaf = static_cast<VertexId>(labels.size());
    labels.push_back(1);
    edges.emplace_back(static_cast<VertexId>(i % 3), leaf);
  }
  Graph data = Graph::FromEdges(std::move(labels), edges);
  VertexEquivalence eq = VertexEquivalence::Compute(data);
  EXPECT_GT(eq.CompressionRatio(), 0.5);

  Graph query = Graph::FromEdges({0, 0, 1, 1}, {{0, 1}, {0, 2}, {1, 3}});
  EmbeddingSet expected;
  baselines::MatcherOptions brute;
  brute.callback = Collector(&expected);
  baselines::BruteForceMatch(query, data, brute);
  EmbeddingSet found;
  MatchOptions opts;
  opts.equivalence = &eq;
  opts.callback = Collector(&found);
  MatchResult result = DafMatch(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(found, expected);
}

}  // namespace
}  // namespace daf

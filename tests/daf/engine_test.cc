#include "daf/engine.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;
using daf::testing::MakeStar;

TEST(EngineTest, PathInPathAnalytic) {
  // Path A-B-C inside path A-B-C-B-A: embeddings = (0,1,2) and (4,3,2).
  Graph data = MakePath({0, 1, 2, 1, 0});
  Graph query = MakePath({0, 1, 2});
  EmbeddingSet found;
  MatchOptions opts;
  opts.callback = Collector(&found);
  MatchResult result = DafMatch(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u);
  EXPECT_TRUE(found.count({0, 1, 2}));
  EXPECT_TRUE(found.count({4, 3, 2}));
}

TEST(EngineTest, TriangleInCliqueAnalytic) {
  // Unlabeled triangle in K5: 5*4*3 = 60 ordered embeddings.
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 60u);
}

TEST(EngineTest, StarInStarAnalytic) {
  // Star with 2 leaves in star with 4 leaves: 4*3 = 12 embeddings.
  Graph data = MakeStar({1, 0, 0, 0, 0});
  Graph query = MakeStar({1, 0, 0});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 12u);
}

TEST(EngineTest, SingleVertexQuery) {
  Graph data = Graph::FromEdges({5, 5, 6}, {{0, 1}, {1, 2}});
  Graph query = Graph::FromEdges({5}, {});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(EngineTest, SingleEdgeQuery) {
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 1});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(EngineTest, NoEmbeddingsWithMissingLabel) {
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 9});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 0u);
  EXPECT_TRUE(result.cs_certified_negative);
  EXPECT_EQ(result.recursive_calls, 0u);
}

TEST(EngineTest, RejectsEmptyQuery) {
  Graph data = MakePath({0, 1});
  Graph query = Graph::FromEdges({}, {});
  MatchResult result = DafMatch(query, data);
  EXPECT_FALSE(result.ok);
}

TEST(EngineTest, SupportsDisconnectedQueries) {
  // Extension over the paper: one rooted DAG per component. Query = an
  // edge (0-0) plus an isolated 0-vertex; data = path of four 0-vertices.
  // Edge embeddings: 6 ordered; times 2 remaining vertices for the isolated
  // one = 12.
  Graph data = MakePath({0, 0, 0, 0});
  Graph query = Graph::FromEdges({0, 0, 0}, {{0, 1}});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 12u);
}

TEST(EngineTest, DisconnectedQueriesMatchBruteForce) {
  Rng rng(86);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 100 + rng.UniformInt(80), 3, rng);
    // Two independent random-walk components glued into one query graph.
    auto a = ExtractRandomWalkQuery(data, 3 + rng.UniformInt(3), -1.0, rng);
    auto b = ExtractRandomWalkQuery(data, 2 + rng.UniformInt(3), -1.0, rng);
    if (!a || !b) continue;
    std::vector<Label> labels;
    std::vector<Edge> edges;
    for (uint32_t u = 0; u < a->query.NumVertices(); ++u) {
      labels.push_back(a->query.original_label(a->query.label(u)));
    }
    uint32_t offset = a->query.NumVertices();
    for (uint32_t u = 0; u < b->query.NumVertices(); ++u) {
      labels.push_back(b->query.original_label(b->query.label(u)));
    }
    for (const Edge& e : a->query.EdgeList()) edges.push_back(e);
    for (const Edge& e : b->query.EdgeList()) {
      edges.emplace_back(e.first + offset, e.second + offset);
    }
    Graph query = Graph::FromEdges(std::move(labels), edges);
    EmbeddingSet expected;
    baselines::MatcherOptions brute;
    brute.callback = Collector(&expected);
    baselines::BruteForceMatch(query, data, brute);
    for (bool failing : {false, true}) {
      EmbeddingSet found;
      MatchOptions opts;
      opts.use_failing_sets = failing;
      opts.callback = Collector(&found);
      MatchResult result = DafMatch(query, data, opts);
      ASSERT_TRUE(result.ok);
      EXPECT_EQ(found, expected) << "failing=" << failing;
    }
  }
}

TEST(EngineTest, HomomorphismsMatchBruteForce) {
  Rng rng(87);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(25, 50 + rng.UniformInt(50), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 3 + rng.UniformInt(3), -1.0, rng);
    if (!extracted) continue;
    baselines::MatcherOptions brute;
    brute.injective = false;
    EmbeddingSet expected;
    brute.callback = Collector(&expected);
    baselines::BruteForceMatch(extracted->query, data, brute);
    EmbeddingSet found;
    MatchOptions opts;
    opts.injective = false;
    opts.callback = Collector(&found);
    MatchResult result = DafMatch(extracted->query, data, opts);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(found, expected);
    // Homomorphisms are a superset of embeddings.
    MatchResult embeddings = DafMatch(extracted->query, data);
    EXPECT_GE(result.embeddings, embeddings.embeddings);
  }
}

TEST(EngineTest, HomomorphismCollapseExample) {
  // Star query B-A-B can collapse both leaves onto the single data B: the
  // data path A-B has 0 embeddings but 1 homomorphism.
  Graph data = MakePath({0, 1});
  Graph query = MakePath({1, 0, 1});
  MatchResult strict = DafMatch(query, data);
  ASSERT_TRUE(strict.ok);
  EXPECT_EQ(strict.embeddings, 0u);
  MatchOptions hom;
  hom.injective = false;
  MatchResult relaxed = DafMatch(query, data, hom);
  ASSERT_TRUE(relaxed.ok);
  EXPECT_EQ(relaxed.embeddings, 1u);
}

TEST(EngineTest, CountAutomorphisms) {
  EXPECT_EQ(CountAutomorphisms(MakePath({0, 0, 0})), 2u);      // reflection
  EXPECT_EQ(CountAutomorphisms(MakePath({0, 1, 0})), 2u);
  EXPECT_EQ(CountAutomorphisms(MakePath({0, 1, 2})), 1u);      // rigid
  EXPECT_EQ(CountAutomorphisms(MakeCycle({0, 0, 0, 0})), 8u);  // dihedral
  EXPECT_EQ(CountAutomorphisms(MakeClique({0, 0, 0, 0})), 24u);  // S4
  EXPECT_EQ(CountAutomorphisms(MakeStar({1, 0, 0, 0})), 6u);   // 3! leaves
}

TEST(EngineTest, LimitStopsEarly) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 120 embeddings in K6
  MatchOptions opts;
  opts.limit = 7;
  MatchResult result = DafMatch(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 7u);
  EXPECT_TRUE(result.limit_reached);
  EXPECT_FALSE(result.Complete());
}

TEST(EngineTest, CallbackCanStopSearch) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  int seen = 0;
  MatchOptions opts;
  opts.callback = [&seen](std::span<const VertexId>) {
    return ++seen < 3;
  };
  MatchResult result = DafMatch(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(result.embeddings, 3u);
}

TEST(EngineTest, TimeLimitEventuallyFires) {
  // A large unlabeled clique query in a bigger clique explodes; with a
  // 1 ms budget the search must abort with timed_out.
  std::vector<Label> data_labels(64, 0);
  std::vector<Label> query_labels(12, 0);
  Graph data = MakeClique(data_labels);
  Graph query = MakeClique(query_labels);
  MatchOptions opts;
  opts.time_limit_ms = 1;
  MatchResult result = DafMatch(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.Complete());
}

TEST(EngineTest, AllVariantsAgreeWithBruteForce) {
  Rng rng(81);
  for (int trial = 0; trial < 15; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(50, 120 + rng.UniformInt(120), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet expected;
    baselines::MatcherOptions brute_opts;
    brute_opts.callback = Collector(&expected);
    baselines::BruteForceMatch(extracted->query, data, brute_opts);
    for (MatchOrder order :
         {MatchOrder::kPathSize, MatchOrder::kCandidateSize}) {
      for (bool failing : {false, true}) {
        for (bool leaf_dec : {false, true}) {
          EmbeddingSet found;
          MatchOptions opts;
          opts.order = order;
          opts.use_failing_sets = failing;
          opts.leaf_decomposition = leaf_dec;
          opts.callback = Collector(&found);
          MatchResult result = DafMatch(extracted->query, data, opts);
          ASSERT_TRUE(result.ok);
          EXPECT_EQ(found, expected)
              << "order=" << static_cast<int>(order)
              << " failing=" << failing << " leaf=" << leaf_dec;
        }
      }
    }
  }
}

TEST(EngineTest, ReportsCsStatistics) {
  Graph data = MakePath({0, 1, 2, 1, 0});
  Graph query = MakePath({0, 1, 2});
  MatchResult result = DafMatch(query, data);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.cs_candidates, 0u);
  EXPECT_GT(result.cs_edges, 0u);
  EXPECT_GT(result.recursive_calls, 0u);
  EXPECT_GE(result.preprocess_ms, 0.0);
}

}  // namespace
}  // namespace daf

// Differential tests of the work-stealing parallel engine: for every search
// option combination, the stolen-subtree decomposition must produce exactly
// the single-threaded engine's results — same embedding counts, and (without
// a limit) the same embedding *set*. The forced-split configuration
// (split_threshold = 1) donates maximally eagerly, so frame splitting, task
// replay, and the failing-set conservativeness rule at task boundaries are
// all exercised constantly; these tests also run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "daf/boost.h"
#include "daf/parallel.h"
#include "daf/steal.h"
#include "graph/query_extract.h"
#include "util/topo.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;

ParallelMatchResult RunStealing(const Graph& query, const Graph& data,
                                MatchOptions opts, uint32_t threads,
                                uint32_t split_threshold) {
  opts.parallel_strategy = ParallelStrategy::kWorkStealing;
  opts.split_threshold = split_threshold;
  return ParallelDafMatch(query, data, opts, threads);
}

TEST(WorkStealTest, FullOptionMatrixMatchesSequential) {
  Rng rng(2024);
  Graph data = daf::testing::RandomDataGraph(40, 140, 2, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  const Graph& query = extracted->query;
  for (MatchOrder order : {MatchOrder::kPathSize, MatchOrder::kCandidateSize}) {
    for (bool failing_sets : {true, false}) {
      for (bool leaf_decomposition : {true, false}) {
        for (bool injective : {true, false}) {
          MatchOptions opts;
          opts.order = order;
          opts.use_failing_sets = failing_sets;
          opts.leaf_decomposition = leaf_decomposition;
          opts.injective = injective;
          MatchResult sequential = DafMatch(query, data, opts);
          ASSERT_TRUE(sequential.ok);
          for (uint32_t threads : {2u, 4u}) {
            for (uint32_t threshold : {1u, 8u}) {
              ParallelMatchResult r =
                  RunStealing(query, data, opts, threads, threshold);
              ASSERT_TRUE(r.ok);
              EXPECT_EQ(r.embeddings, sequential.embeddings)
                  << "order=" << static_cast<int>(order)
                  << " fs=" << failing_sets << " leaf=" << leaf_decomposition
                  << " inj=" << injective << " threads=" << threads
                  << " threshold=" << threshold;
            }
          }
        }
      }
    }
  }
}

TEST(WorkStealTest, ExactEmbeddingSetUnderForcedSplitting) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0});
  EmbeddingSet expected;
  MatchOptions seq;
  seq.callback = Collector(&expected);
  MatchResult sequential = DafMatch(query, data, seq);
  ASSERT_TRUE(sequential.ok);
  ASSERT_FALSE(expected.empty());

  EmbeddingSet found;
  MatchOptions par;
  par.callback = Collector(&found);  // engine serializes the callback
  ParallelMatchResult r = RunStealing(query, data, par, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(found, expected);
  EXPECT_EQ(r.embeddings, expected.size());
}

TEST(WorkStealTest, BoostEquivalenceMatchesSequential) {
  // Every data vertex of a uniform clique is equivalent, so DAF-Boost's
  // failed-class skipping fires constantly; stolen tasks must start a fresh
  // failed-class record instead of inheriting the donor's.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0, 0});
  VertexEquivalence eq = VertexEquivalence::Compute(data);
  MatchOptions opts;
  opts.equivalence = &eq;
  MatchResult sequential = DafMatch(query, data, opts);
  ASSERT_TRUE(sequential.ok);
  for (uint32_t threshold : {1u, 8u}) {
    ParallelMatchResult r = RunStealing(query, data, opts, 4, threshold);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.embeddings, sequential.embeddings)
        << "threshold=" << threshold;
  }
}

TEST(WorkStealTest, ForcedStealStress) {
  // A search large enough (~10^5 nodes) that donated tasks are actually
  // stolen by other workers even on a single-core host, not just popped
  // back by the donor. Counts must stay exact regardless of who ran what.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0, 0, 0});
  MatchOptions opts;
  MatchResult sequential = DafMatch(query, data, opts);
  ASSERT_TRUE(sequential.ok);
  ParallelMatchResult r = RunStealing(query, data, opts, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, sequential.embeddings);
  // Stealing never prunes more than the sequential search (donated frames
  // report conservative failing sets), so it can only examine extra nodes
  // when a donated range would later have been certificate-pruned.
  EXPECT_GE(r.recursive_calls, sequential.recursive_calls);
  EXPECT_GT(r.donations, 0u);
  EXPECT_GT(r.tasks_executed, 1u);  // the seed plus donated subtrees
}

TEST(WorkStealTest, WorkConservation) {
  // With failing-set pruning off the search is exhaustive, so stealing
  // redistributes the tree without duplicating or dropping a single node:
  // summed recursive calls equal the single-threaded engine's exactly (the
  // root-cursor strategy pays one extra root scan per worker instead).
  // With pruning on, exact equality can break: a donated range may be one
  // the donor would later have pruned via a child's certificate.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0});
  MatchOptions opts;
  opts.use_failing_sets = false;
  MatchResult sequential = DafMatch(query, data, opts);
  ASSERT_TRUE(sequential.ok);
  for (uint32_t threads : {2u, 4u, 8u}) {
    ParallelMatchResult r = RunStealing(query, data, opts, threads,
                                        /*split_threshold=*/1);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.recursive_calls, sequential.recursive_calls)
        << "threads=" << threads;
    EXPECT_EQ(r.embeddings, sequential.embeddings);
  }
}

TEST(WorkStealTest, ExactLimit) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 8*7*6 = 336 embeddings
  for (uint32_t threads : {2u, 4u, 8u}) {
    for (uint32_t threshold : {1u, 8u}) {
      MatchOptions opts;
      opts.limit = 100;
      ParallelMatchResult r = RunStealing(query, data, opts, threads,
                                          threshold);
      ASSERT_TRUE(r.ok);
      EXPECT_TRUE(r.limit_reached);
      EXPECT_EQ(r.embeddings, 100u)
          << "threads=" << threads << " threshold=" << threshold;
    }
  }
}

TEST(WorkStealTest, ExactLimitWithDeadlineArmed) {
  // An armed (never firing) deadline routes every worker through the full
  // StopCondition path; the claim-before-count limit must stay exact.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  MatchOptions opts;
  opts.limit = 100;
  opts.time_limit_ms = 600000;
  ParallelMatchResult r = RunStealing(query, data, opts, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.limit_reached);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.embeddings, 100u);
}

TEST(WorkStealTest, LimitAboveTotalFindsEverything) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 6*5*4 = 120 embeddings
  MatchOptions opts;
  opts.limit = 100000;
  ParallelMatchResult r = RunStealing(query, data, opts, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.limit_reached);
  EXPECT_EQ(r.embeddings, 120u);
}

TEST(WorkStealTest, CancelMidRun) {
  // The callback cancels after 100 embeddings, strictly before the ~6.6e5
  // total, so the cancel always lands mid-search; every worker must then
  // stop within its next StopCondition poll window and report cancelled.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0, 0, 0});
  CancelToken cancel;
  std::atomic<uint64_t> delivered{0};
  MatchOptions opts;
  opts.cancel = &cancel;
  opts.callback = [&](std::span<const VertexId>) {
    if (delivered.fetch_add(1) + 1 == 100) cancel.Cancel();
    return true;
  };
  ParallelMatchResult r = RunStealing(query, data, opts, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.cancelled);
  EXPECT_GE(r.embeddings, 100u);
  EXPECT_LT(r.embeddings, 665280u);
}

TEST(WorkStealTest, CancelBeforeRun) {
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  CancelToken cancel;
  cancel.Cancel();
  MatchOptions opts;
  opts.cancel = &cancel;
  ParallelMatchResult r = RunStealing(query, data, opts, 4,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.cancelled);
}

TEST(WorkStealTest, SingleThreadFallsBackToSequentialEngine) {
  // num_threads == 1 short-circuits to the plain Run path even under
  // kWorkStealing; results and the steal counters must reflect that.
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  ParallelMatchResult r = RunStealing(query, data, MatchOptions{}, 1,
                                      /*split_threshold=*/1);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, 60u);
  EXPECT_EQ(r.tasks_executed, 0u);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_EQ(r.donations, 0u);
}

TEST(WorkStealTest, StrategiesAgreeOnRandomGraphs) {
  Rng rng(515);
  for (int trial = 0; trial < 5; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(50, 130 + rng.UniformInt(80), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 5 + rng.UniformInt(3), -1.0, rng);
    if (!extracted) continue;
    MatchOptions steal_opts;
    steal_opts.parallel_strategy = ParallelStrategy::kWorkStealing;
    steal_opts.split_threshold = 1;
    MatchOptions cursor_opts;
    cursor_opts.parallel_strategy = ParallelStrategy::kRootCursor;
    ParallelMatchResult steal =
        ParallelDafMatch(extracted->query, data, steal_opts, 4);
    ParallelMatchResult cursor =
        ParallelDafMatch(extracted->query, data, cursor_opts, 4);
    ASSERT_TRUE(steal.ok && cursor.ok);
    EXPECT_EQ(steal.embeddings, cursor.embeddings) << "trial=" << trial;
  }
}

TEST(WorkStealTest, ProfileReportsSchedulerCounters) {
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0});
  obs::SearchProfile profile;
  MatchOptions opts;
  opts.profile = &profile;
  opts.parallel_strategy = ParallelStrategy::kWorkStealing;
  opts.split_threshold = 1;
  ParallelMatchResult r = ParallelDafMatch(query, data, opts, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(profile.parallel.tasks_executed, r.tasks_executed);
  EXPECT_EQ(profile.parallel.steals, r.steals);
  EXPECT_EQ(profile.parallel.donations, r.donations);
  EXPECT_EQ(profile.parallel.call_imbalance, r.call_imbalance);
  ASSERT_EQ(profile.parallel.per_thread_calls.size(), 4u);
  ASSERT_EQ(profile.parallel.per_thread_steals.size(), 4u);
  uint64_t calls = 0;
  for (uint64_t c : profile.parallel.per_thread_calls) calls += c;
  EXPECT_EQ(calls, r.recursive_calls);
  uint64_t steals = 0;
  for (uint64_t s : profile.parallel.per_thread_steals) steals += s;
  EXPECT_EQ(steals, r.steals);
}

TEST(StealOrderTest, SameSocketVictimsSweepFirst) {
  // Workers 0,1 on socket 0 and 2,3 on socket 1: each thief must visit
  // its same-socket sibling before either remote worker, and the remote
  // victims must still follow the ring order.
  StealScheduler sched(4, /*split_threshold=*/8, {0, 0, 1, 1});
  EXPECT_EQ(sched.steal_order(0), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(sched.steal_order(1), (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(sched.steal_order(2), (std::vector<uint32_t>{3, 0, 1}));
  EXPECT_EQ(sched.steal_order(3), (std::vector<uint32_t>{2, 0, 1}));
}

TEST(StealOrderTest, FlatTopologyPreservesPlainRing) {
  // No socket vector (and a mis-sized one) both degrade to the original
  // ring sweep: thief t visits t+1, t+2, ... modulo n.
  StealScheduler plain(4, /*split_threshold=*/8);
  StealScheduler missized(4, /*split_threshold=*/8, {0, 1});
  for (uint32_t t = 0; t < 4; ++t) {
    std::vector<uint32_t> ring;
    for (uint32_t i = 1; i < 4; ++i) ring.push_back((t + i) % 4);
    EXPECT_EQ(plain.steal_order(t), ring) << "thief " << t;
    EXPECT_EQ(missized.steal_order(t), ring) << "thief " << t;
  }
}

TEST(StealOrderTest, LocalAndRemoteCountersPartitionSteals) {
  // On a flat (single-socket) machine every steal is local; the profile
  // must agree with the aggregate counter.
  Graph data = MakeClique({0, 0, 0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0, 0});
  obs::SearchProfile profile;
  MatchOptions opts;
  opts.profile = &profile;
  opts.parallel_strategy = ParallelStrategy::kWorkStealing;
  opts.split_threshold = 1;
  ParallelMatchResult r = ParallelDafMatch(query, data, opts, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.local_steals + r.remote_steals, r.steals);
  EXPECT_EQ(profile.parallel.local_steals, r.local_steals);
  EXPECT_EQ(profile.parallel.remote_steals, r.remote_steals);
  EXPECT_EQ(profile.parallel.pinned, r.pinned);
  if (HwTopology::Get().num_sockets == 1) {
    EXPECT_EQ(r.remote_steals, 0u);
  }
}

}  // namespace
}  // namespace daf

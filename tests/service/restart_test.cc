// Restart semantics of a durable MatchService (docs/PERSISTENCE.md): state
// and graph version survive a save/restore cycle, query-cache keys stay
// correct because the recovered version resumes (never restarts at 0),
// rejected batches are never logged, WAL faults reject the batch rather
// than desynchronize log and graph, and graceful shutdown drains jobs and
// hands every subscriber a final resync marker.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "dyn/update_batch.h"
#include "persist/store.h"
#include "service/match_service.h"
#include "tests/persist/persist_test_util.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"

namespace daf::service {
namespace {

using daf::testing::EmbeddingSet;
using daf::testing::MakePath;
using daf::testing::ScopedTempDir;

class RestartTest : public ::testing::Test {
 protected:
  ~RestartTest() override { FaultInjector::Disarm(); }
};

// Labeled path 0-1-2 (labels 1-2-3) plus a detached label-1 vertex 3.
Graph SmallData() {
  return Graph::FromEdges({1, 2, 3, 1}, {{0, 1}, {1, 2}});
}

std::shared_ptr<persist::DurableStore> OpenStore(const std::string& dir) {
  persist::DurableStore::Options options;
  options.fsync_policy = persist::FsyncPolicy::kOff;
  std::string error;
  auto store = persist::DurableStore::Open(dir, options, &error);
  EXPECT_NE(store, nullptr) << error;
  return store;
}

ServiceOptions DurableOptions(std::shared_ptr<persist::DurableStore> store) {
  ServiceOptions options;
  options.num_workers = 1;
  options.data_store = std::move(store);
  return options;
}

EmbeddingSet MatchNow(MatchService& service, Graph query) {
  QueryJob job;
  job.query = std::move(query);
  job.stream_embeddings = true;
  JobHandle h = service.Submit(std::move(job));
  EmbeddingSet out;
  for (;;) {
    auto batch = h.NextBatch();
    if (batch.empty()) break;
    for (auto& e : batch) out.insert(std::move(e));
  }
  EXPECT_EQ(h.Wait(), JobStatus::kDone);
  return out;
}

TEST_F(RestartTest, StateAndVersionSurviveRestart) {
  ScopedTempDir dir;
  EmbeddingSet expect;
  {
    MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
    dyn::UpdateBatch b1;
    b1.InsertEdge(1, 3);
    ASSERT_TRUE(service.ApplyUpdates(b1).ok);
    dyn::UpdateBatch b2;
    b2.AddVertex(3).InsertEdge(3, 4);
    ASSERT_TRUE(service.ApplyUpdates(b2).ok);
    expect = MatchNow(service, MakePath({1, 2, 3}));
    EXPECT_EQ(expect.size(), 2u);
    service.GracefulShutdown(/*grace_ms=*/2000);
  }
  {
    auto store = OpenStore(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->has_state());
    // The seed graph passed to the constructor is deliberately different:
    // recovery must win, proving restarts don't depend on reloading the
    // original text file.
    MatchService service(MakePath({7, 7}), DurableOptions(store));
    EXPECT_EQ(service.GraphVersion(), 2u);
    EXPECT_EQ(service.Snapshot()->NumVertices(), 5u);
    EXPECT_EQ(MatchNow(service, MakePath({1, 2, 3})), expect);

    const auto m = service.Metrics();
    EXPECT_TRUE(m.persist_enabled);
    EXPECT_TRUE(m.persist_recovered);
    EXPECT_EQ(m.persist_recovery_wal_replayed, 2u);
    EXPECT_EQ(m.graph_version, 2u);
  }
}

TEST_F(RestartTest, CacheKeysResumeAtRecoveredVersion) {
  ScopedTempDir dir;
  {
    MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
    dyn::UpdateBatch b;
    b.InsertEdge(1, 3);
    ASSERT_TRUE(service.ApplyUpdates(b).ok);
    service.GracefulShutdown(2000);
  }
  MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
  ASSERT_EQ(service.GraphVersion(), 1u);

  auto run = [&](CacheOutcome expect_outcome, size_t expect_count) {
    QueryJob job;
    job.query = MakePath({1, 2, 3});
    JobHandle h = service.Submit(std::move(job));
    EXPECT_EQ(h.Wait(), JobStatus::kDone);
    EXPECT_EQ(h.cache_outcome(), expect_outcome);
    EXPECT_EQ(h.Result().embeddings, expect_count);
  };
  // Fresh cache after restart: miss, then hit, keyed at version 1 — the
  // recovered graph (2 embeddings), not the pre-update one.
  run(CacheOutcome::kMiss, 2);
  run(CacheOutcome::kHit, 2);
  // And advancing the version still invalidates.
  dyn::UpdateBatch b;
  b.RemoveEdge(1, 3);
  ASSERT_TRUE(service.ApplyUpdates(b).ok);
  run(CacheOutcome::kMiss, 1);
}

TEST_F(RestartTest, RejectedBatchIsNeverLogged) {
  ScopedTempDir dir;
  {
    MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
    // Invalid batch: endpoint out of range. Rejected before any append.
    dyn::UpdateBatch bad;
    bad.InsertEdge(0, 99);
    EXPECT_FALSE(service.ApplyUpdates(bad).ok);
    EXPECT_EQ(service.GraphVersion(), 0u);
    EXPECT_EQ(service.Metrics().persist_wal_appended_batches, 0u);

    // Injected apply failure after a successful append: the record must be
    // rolled back, or restart would replay a batch the service reported
    // failed.
    FaultInjector::FireNth("delta_apply", 1);
    dyn::UpdateBatch b;
    b.InsertEdge(1, 3);
    EXPECT_FALSE(service.ApplyUpdates(b).ok);
    FaultInjector::Disarm();
    EXPECT_EQ(service.GraphVersion(), 0u);
    service.GracefulShutdown(2000);
  }
  auto store = OpenStore(dir.path());
  ASSERT_TRUE(store->has_state());
  EXPECT_EQ(store->recovery().wal_records_replayed, 0u);
  EXPECT_EQ(store->TakeRecoveredGraph().version(), 0u);
}

TEST_F(RestartTest, WalAppendFaultRejectsBatch) {
  ScopedTempDir dir;
  MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
  FaultInjector::FireNth("wal_append", 1);
  dyn::UpdateBatch b;
  b.InsertEdge(1, 3);
  UpdateOutcome out = service.ApplyUpdates(b);
  EXPECT_FALSE(out.ok);
  FaultInjector::Disarm();
  // Append-before-apply: if the log write failed, the graph must not move.
  EXPECT_EQ(service.GraphVersion(), 0u);
  EXPECT_GE(service.Metrics().dyn_batches_rejected, 1u);

  UpdateOutcome retry = service.ApplyUpdates(b);
  ASSERT_TRUE(retry.ok) << retry.error;
  EXPECT_EQ(retry.version, 1u);
  EXPECT_EQ(service.Metrics().persist_wal_appended_batches, 1u);
}

TEST_F(RestartTest, GracefulShutdownDrainsAndSendsResync) {
  ScopedTempDir dir;
  MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
  QueryJob standing;
  standing.query = MakePath({1, 2, 3});
  SubscriptionHandle sub = service.Subscribe(std::move(standing));
  ASSERT_TRUE(sub.ok()) << sub.error();

  dyn::UpdateBatch b;
  b.InsertEdge(1, 3);
  ASSERT_TRUE(service.ApplyUpdates(b).ok);

  service.GracefulShutdown(2000);

  // The delta stream ends with a final resync marker at the shutdown
  // version, so consumers know exactly where delivery stopped.
  auto batches = sub.Drain();
  ASSERT_GE(batches.size(), 2u);
  EXPECT_FALSE(batches.front().resync);
  EXPECT_TRUE(batches.back().resync);
  EXPECT_EQ(batches.back().version, 1u);

  // Post-shutdown traffic is rejected.
  QueryJob job;
  job.query = MakePath({1, 2, 3});
  JobHandle h = service.Submit(std::move(job));
  EXPECT_EQ(h.Status(), JobStatus::kRejected);
  EXPECT_FALSE(service.ApplyUpdates(b).ok);
}

TEST_F(RestartTest, ExplicitCheckpointSpeedsRecovery) {
  ScopedTempDir dir;
  {
    MatchService service(SmallData(), DurableOptions(OpenStore(dir.path())));
    dyn::UpdateBatch b;
    b.InsertEdge(1, 3);
    ASSERT_TRUE(service.ApplyUpdates(b).ok);
    std::string error;
    ASSERT_TRUE(service.Checkpoint(&error)) << error;
    const auto m = service.Metrics();
    EXPECT_GE(m.persist_snapshots_written, 2u);  // seed + explicit
    service.GracefulShutdown(2000);
  }
  auto store = OpenStore(dir.path());
  ASSERT_TRUE(store->has_state());
  // The checkpoint absorbed the WAL: nothing to replay.
  EXPECT_EQ(store->recovery().snapshot_version, 1u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 0u);
  EXPECT_EQ(store->TakeRecoveredGraph().version(), 1u);
}

TEST_F(RestartTest, MemoryOnlyServiceReportsPersistDisabled) {
  MatchService service(SmallData(), {.num_workers = 1});
  const auto m = service.Metrics();
  EXPECT_FALSE(m.persist_enabled);
  std::string error;
  EXPECT_FALSE(service.Checkpoint(&error));
  EXPECT_FALSE(error.empty());
  const std::string json = obs::ServiceMetricsToJson(m);
  EXPECT_NE(json.find("\"persist\""), std::string::npos);
}

}  // namespace
}  // namespace daf::service

// MatchService dynamic-graph tests: ApplyUpdates + Subscribe delta
// streaming, per-version snapshot isolation for ordinary jobs, query-cache
// invalidation across graph versions (a stale hit must be impossible),
// bounded-queue resync semantics, the delta_apply / subscriber_notify fault
// points, and the dynamics metrics block.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "dyn/update_batch.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"

namespace daf::service {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

class DynamicServiceTest : public ::testing::Test {
 protected:
  ~DynamicServiceTest() override { FaultInjector::Disarm(); }
};

// Data: labeled path 0-1-2 (labels 1-2-3) plus a detached label-1 vertex 3.
// The standing path query 1-2-3 has exactly one embedding initially; edge
// (1, 3) creates a second one through v3.
Graph SmallData() {
  return Graph::FromEdges({1, 2, 3, 1}, {{0, 1}, {1, 2}});
}

QueryJob PathJob() {
  QueryJob job;
  job.query = MakePath({1, 2, 3});
  return job;
}

// Folds every pending DeltaBatch of `handle` into `set` (created inserts,
// destroyed erases); fails the test on a resync marker.
void FoldDeltas(SubscriptionHandle& handle, EmbeddingSet* set) {
  for (DeltaBatch& batch : handle.Drain()) {
    ASSERT_FALSE(batch.resync) << "unexpected resync at v" << batch.version;
    for (EmbeddingDelta& d : batch.deltas) {
      if (d.created) {
        EXPECT_TRUE(set->insert(std::move(d.embedding)).second);
      } else {
        EXPECT_EQ(set->erase(d.embedding), 1u);
      }
    }
  }
}

EmbeddingSet MatchNow(MatchService& service, Graph query) {
  QueryJob job;
  job.query = std::move(query);
  job.stream_embeddings = true;
  JobHandle h = service.Submit(std::move(job));
  EmbeddingSet out;
  for (;;) {
    auto batch = h.NextBatch();
    if (batch.empty()) break;
    for (auto& e : batch) out.insert(std::move(e));
  }
  EXPECT_EQ(h.Wait(), JobStatus::kDone);
  return out;
}

TEST_F(DynamicServiceTest, SubscribeStreamsExactDeltas) {
  MatchService service(SmallData(), {.num_workers = 2});
  SubscriptionHandle sub = service.Subscribe(PathJob());
  ASSERT_TRUE(sub.ok()) << sub.error();
  EXPECT_EQ(sub.subscribed_version(), 0u);
  EXPECT_EQ(service.ActiveSubscriptions(), 1u);

  // Initial result set at the subscription version.
  EmbeddingSet live = MatchNow(service, MakePath({1, 2, 3}));
  EXPECT_EQ(live.size(), 1u);  // 0-1-2

  // v1: the detached label-1 vertex connects -> one more embedding.
  dyn::UpdateBatch b1;
  b1.InsertEdge(1, 3);
  UpdateOutcome o1 = service.ApplyUpdates(b1);
  ASSERT_TRUE(o1.ok) << o1.error;
  EXPECT_EQ(o1.version, 1u);
  EXPECT_EQ(o1.embeddings_created, 1u);
  EXPECT_EQ(o1.embeddings_destroyed, 0u);
  FoldDeltas(sub, &live);
  EXPECT_EQ(live, MatchNow(service, MakePath({1, 2, 3})));

  // v2: removing (1, 2) kills both embeddings through it.
  dyn::UpdateBatch b2;
  b2.RemoveEdge(1, 2);
  UpdateOutcome o2 = service.ApplyUpdates(b2);
  ASSERT_TRUE(o2.ok) << o2.error;
  EXPECT_EQ(o2.embeddings_destroyed, 2u);
  FoldDeltas(sub, &live);
  EXPECT_EQ(live, MatchNow(service, MakePath({1, 2, 3})));
  EXPECT_TRUE(live.empty());

  sub.Unsubscribe();
  EXPECT_FALSE(sub.active());
  dyn::UpdateBatch b3;
  b3.InsertEdge(1, 2);
  ASSERT_TRUE(service.ApplyUpdates(b3).ok);
  EXPECT_EQ(service.ActiveSubscriptions(), 0u);
  EXPECT_EQ(sub.PendingBatches(), 0u);  // swept before notification
}

TEST_F(DynamicServiceTest, SubscribeRejectsBadQueries) {
  MatchService service(SmallData(), {.num_workers = 1});
  // Disconnected pattern.
  QueryJob job;
  job.query = Graph::FromEdges({1, 1, 1, 1}, {{0, 1}, {2, 3}});
  SubscriptionHandle sub = service.Subscribe(std::move(job));
  EXPECT_FALSE(sub.ok());
  EXPECT_NE(sub.error().find("connected"), std::string::npos);
  EXPECT_EQ(service.ActiveSubscriptions(), 0u);

  // Reserved engine side channels.
  QueryJob chan = PathJob();
  chan.options.callback = [](std::span<const VertexId>) { return true; };
  SubscriptionHandle sub2 = service.Subscribe(std::move(chan));
  EXPECT_FALSE(sub2.ok());
}

TEST_F(DynamicServiceTest, JobsSeeTheVersionTheyWereDispatchedAt) {
  MatchService service(SmallData(), {.num_workers = 2});
  EXPECT_EQ(MatchNow(service, MakePath({1, 2, 3})).size(), 1u);

  dyn::UpdateBatch batch;
  batch.AddVertex(3).InsertEdge(1, 4);
  ASSERT_TRUE(service.ApplyUpdates(batch).ok);
  EXPECT_EQ(service.GraphVersion(), 1u);
  EXPECT_EQ(service.Snapshot()->NumVertices(), 5u);
  EXPECT_EQ(MatchNow(service, MakePath({1, 2, 3})).size(), 2u);
}

TEST_F(DynamicServiceTest, QueryCacheCannotServeStaleGraph) {
  // One worker so cache outcomes are deterministic.
  ServiceOptions options;
  options.num_workers = 1;
  MatchService service(SmallData(), options);

  auto run = [&](CacheOutcome expect_outcome, size_t expect_count) {
    QueryJob job = PathJob();
    JobHandle h = service.Submit(std::move(job));
    EXPECT_EQ(h.Wait(), JobStatus::kDone);
    EXPECT_EQ(h.cache_outcome(), expect_outcome);
    EXPECT_EQ(h.Result().embeddings, expect_count);
  };
  run(CacheOutcome::kMiss, 1);
  run(CacheOutcome::kHit, 1);

  // Advance the graph: the old blob's candidate space does not contain the
  // new embedding, so serving it would be wrong. The version in the cache
  // key makes the next lookup a miss; correctness shows in the count.
  dyn::UpdateBatch batch;
  batch.InsertEdge(1, 3);
  ASSERT_TRUE(service.ApplyUpdates(batch).ok);
  run(CacheOutcome::kMiss, 2);
  run(CacheOutcome::kHit, 2);

  // Metrics agree: two misses, two hits, no stale serving path exists.
  const auto m = service.Metrics();
  EXPECT_EQ(m.cache_misses, 2u);
  EXPECT_EQ(m.cache_hits, 2u);
}

TEST_F(DynamicServiceTest, OverflowDegradesToResync) {
  ServiceOptions options;
  options.num_workers = 1;
  options.subscription_queue_batches = 2;
  MatchService service(SmallData(), options);
  SubscriptionHandle sub = service.Subscribe(PathJob());
  ASSERT_TRUE(sub.ok());

  // Three updates without polling: the third overflows the 2-deep queue,
  // which drops the backlog and leaves one resync marker.
  for (int i = 0; i < 3; ++i) {
    dyn::UpdateBatch batch;
    if (i % 2 == 0) {
      batch.InsertEdge(1, 3);
    } else {
      batch.RemoveEdge(1, 3);
    }
    ASSERT_TRUE(service.ApplyUpdates(batch).ok);
  }
  auto batches = sub.Drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].resync);
  EXPECT_EQ(batches[0].version, 3u);
  EXPECT_TRUE(batches[0].deltas.empty());
  EXPECT_GE(service.Metrics().dyn_resyncs, 1u);

  // The subscription keeps working after a resync. After three alternating
  // batches the edge (1, 3) is present, so removing it destroys one
  // embedding.
  dyn::UpdateBatch batch;
  batch.RemoveEdge(1, 3);
  ASSERT_TRUE(service.ApplyUpdates(batch).ok);
  auto next = sub.Drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_FALSE(next[0].resync);
  EXPECT_EQ(next[0].deltas.size(), 1u);
}

TEST_F(DynamicServiceTest, DeltaApplyFaultRejectsAtomically) {
  MatchService service(SmallData(), {.num_workers = 1});
  SubscriptionHandle sub = service.Subscribe(PathJob());
  ASSERT_TRUE(sub.ok());

  FaultInjector::FireNth("delta_apply", 1);
  dyn::UpdateBatch batch;
  batch.InsertEdge(1, 3);
  UpdateOutcome out = service.ApplyUpdates(batch);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(service.GraphVersion(), 0u);
  // No subscriber observed the failed version.
  EXPECT_EQ(sub.PendingBatches(), 0u);
  EXPECT_EQ(service.Metrics().dyn_batches_rejected, 1u);

  // Retry succeeds (FireNth fires once).
  UpdateOutcome retry = service.ApplyUpdates(batch);
  ASSERT_TRUE(retry.ok);
  EXPECT_EQ(retry.version, 1u);
  EXPECT_EQ(sub.PendingBatches(), 1u);
}

TEST_F(DynamicServiceTest, SubscriberNotifyFaultDegradesToResync) {
  MatchService service(SmallData(), {.num_workers = 1});
  SubscriptionHandle sub = service.Subscribe(PathJob());
  ASSERT_TRUE(sub.ok());

  FaultInjector::FireNth("subscriber_notify", 1);
  dyn::UpdateBatch batch;
  batch.InsertEdge(1, 3);
  UpdateOutcome out = service.ApplyUpdates(batch);
  ASSERT_TRUE(out.ok);  // the graph still advanced
  EXPECT_EQ(out.resyncs, 1u);
  auto batches = sub.Drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].resync);

  // Recovery: re-run the query, fold later batches normally.
  EmbeddingSet live = MatchNow(service, MakePath({1, 2, 3}));
  EXPECT_EQ(live.size(), 2u);
  dyn::UpdateBatch b2;
  b2.RemoveEdge(0, 1);
  ASSERT_TRUE(service.ApplyUpdates(b2).ok);
  FoldDeltas(sub, &live);
  EXPECT_EQ(live, MatchNow(service, MakePath({1, 2, 3})));
}

TEST_F(DynamicServiceTest, MetricsDynamicsBlock) {
  MatchService service(SmallData(), {.num_workers = 1});
  SubscriptionHandle sub = service.Subscribe(PathJob());
  ASSERT_TRUE(sub.ok());
  dyn::UpdateBatch batch;
  batch.InsertEdge(1, 3);
  ASSERT_TRUE(service.ApplyUpdates(batch).ok);

  const auto m = service.Metrics();
  EXPECT_EQ(m.graph_version, 1u);
  EXPECT_EQ(m.dyn_batches_applied, 1u);
  EXPECT_EQ(m.dyn_active_subscriptions, 1u);
  EXPECT_EQ(m.dyn_cs_incremental + m.dyn_cs_rebuilds, 1u);
  EXPECT_EQ(m.dyn_embeddings_created, 1u);
  EXPECT_EQ(m.notify.count(), 1u);

  const std::string json = obs::ServiceMetricsToJson(m);
  EXPECT_NE(json.find("\"dynamic\""), std::string::npos);
  EXPECT_NE(json.find("\"notify_latency\""), std::string::npos);
}

}  // namespace
}  // namespace daf::service

#include "service/context_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/topo.h"

namespace daf::service {
namespace {

// A mocked dual-socket machine for the locality tests (the real test
// container is single-socket, so HwTopology::Get() is no use here).
HwTopology DualSocketTopo() {
  HwTopology topo;
  topo.num_sockets = 2;
  topo.num_cores = 4;
  for (uint32_t i = 0; i < 4; ++i) {
    topo.cpus.push_back({/*id=*/i, /*socket=*/i / 2, /*core=*/i,
                         /*smt_sibling=*/false});
  }
  return topo;
}

// Warms a leased context's arena past `bytes` of retained capacity.
void WarmArena(MatchContext* context, uint64_t bytes) {
  while (context->arena_stats().capacity_bytes <= bytes) {
    context->arena().AllocateBytes(1 << 16, 8);
  }
}

TEST(ContextPoolTest, LeaseGrantsExclusiveAccess) {
  ContextPool pool(1);
  auto lease = pool.TryAcquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(pool.TryAcquire().has_value());
  lease->Release();
  EXPECT_TRUE(pool.TryAcquire().has_value());
}

TEST(ContextPoolTest, SheddingCapsRetainedFootprintOnReturn) {
  constexpr uint64_t kRetain = 1 << 18;  // 256 KiB threshold
  ContextPool pool(1, kRetain);
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 4 * kRetain);
    EXPECT_GT(lease->arena_stats().capacity_bytes, kRetain);
  }  // return sheds
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_LE(lease->arena_stats().capacity_bytes, kRetain);
  // The shrunk context still serves allocations (it re-warms).
  void* p = lease->arena().AllocateBytes(1 << 12, 8);
  EXPECT_NE(p, nullptr);
}

TEST(ContextPoolTest, NoSheddingBelowThreshold) {
  constexpr uint64_t kRetain = 1 << 22;  // 4 MiB — far above the warmth
  ContextPool pool(1, kRetain);
  uint64_t warmed = 0;
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 1 << 17);
    warmed = lease->arena_stats().capacity_bytes;
    ASSERT_LE(warmed, kRetain);
  }
  // A context under the threshold keeps its warmth — the whole point of
  // the pool (shedding must not cold-start everyone).
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_EQ(lease->arena_stats().capacity_bytes, warmed);
}

TEST(ContextPoolTest, ZeroThresholdDisablesShedding) {
  ContextPool pool(1, 0);
  uint64_t warmed = 0;
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 1 << 20);
    warmed = lease->arena_stats().capacity_bytes;
  }
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_EQ(lease->arena_stats().capacity_bytes, warmed);
}

TEST(ContextPoolTest, PeakInUseTracksHighWaterMark) {
  ContextPool pool(3);
  EXPECT_EQ(pool.peak_in_use(), 0u);
  {
    ContextPool::Lease a = pool.Acquire();
    EXPECT_EQ(pool.peak_in_use(), 1u);
    ContextPool::Lease b = pool.Acquire();
    ContextPool::Lease c = pool.Acquire();
    EXPECT_EQ(pool.peak_in_use(), 3u);
  }
  // The mark is a high-water mark: it survives the leases.
  EXPECT_EQ(pool.peak_in_use(), 3u);
  EXPECT_EQ(pool.available(), 3u);
  ContextPool::Lease d = pool.Acquire();
  EXPECT_EQ(pool.peak_in_use(), 3u);
}

TEST(ContextPoolTest, SheddingIsSafeUnderContention) {
  constexpr uint64_t kRetain = 1 << 16;
  ContextPool pool(2, kRetain);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 50; ++i) {
        ContextPool::Lease lease = pool.Acquire();
        WarmArena(lease.get(), 1 << 17);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 2u);
  // Concurrency of the leases is scheduling-dependent; the mark only has
  // hard bounds.
  EXPECT_GE(pool.peak_in_use(), 1u);
  EXPECT_LE(pool.peak_in_use(), 2u);
  for (int i = 0; i < 2; ++i) {
    ContextPool::Lease lease = pool.Acquire();
    EXPECT_LE(lease->arena_stats().capacity_bytes, kRetain);
    lease.Release();
  }
}

TEST(ContextPoolSocketTest, HomeSocketsRoundRobin) {
  const HwTopology topo = DualSocketTopo();
  ContextPool pool(4, /*retained_bytes_limit=*/0, &topo);
  EXPECT_EQ(pool.num_sockets(), 2u);
  // Contexts alternate home sockets 0,1,0,1; observe via leases.
  std::vector<ContextPool::Lease> leases;
  uint32_t on_socket0 = 0;
  uint32_t on_socket1 = 0;
  for (int i = 0; i < 4; ++i) {
    leases.push_back(pool.Acquire(/*preferred_socket=*/0));
    const uint32_t home = pool.HomeSocketOf(leases.back().get());
    if (home == 0) ++on_socket0;
    if (home == 1) ++on_socket1;
  }
  EXPECT_EQ(on_socket0, 2u);
  EXPECT_EQ(on_socket1, 2u);
}

TEST(ContextPoolSocketTest, AcquirePrefersLocalThenSpillsRemote) {
  const HwTopology topo = DualSocketTopo();
  ContextPool pool(4, 0, &topo);
  // Two local grabs from socket 1 drain its free list; the next two spill
  // to socket 0 rather than blocking.
  ContextPool::Lease a = pool.Acquire(1);
  ContextPool::Lease b = pool.Acquire(1);
  EXPECT_EQ(pool.HomeSocketOf(a.get()), 1u);
  EXPECT_EQ(pool.HomeSocketOf(b.get()), 1u);
  EXPECT_EQ(pool.local_leases(), 2u);
  EXPECT_EQ(pool.remote_leases(), 0u);
  ContextPool::Lease c = pool.Acquire(1);
  ContextPool::Lease d = pool.Acquire(1);
  EXPECT_EQ(pool.HomeSocketOf(c.get()), 0u);
  EXPECT_EQ(pool.HomeSocketOf(d.get()), 0u);
  EXPECT_EQ(pool.local_leases(), 2u);
  EXPECT_EQ(pool.remote_leases(), 2u);
}

TEST(ContextPoolSocketTest, ReturnGoesBackToHomeSocket) {
  const HwTopology topo = DualSocketTopo();
  ContextPool pool(2, 0, &topo);
  // Lease the socket-1 context remotely (from socket 0 after draining
  // socket 0's list), release it, then check a socket-1 acquire is local
  // again: the context went home, not to the releaser's socket.
  ContextPool::Lease local0 = pool.Acquire(0);
  ASSERT_EQ(pool.HomeSocketOf(local0.get()), 0u);
  {
    ContextPool::Lease remote = pool.Acquire(0);
    ASSERT_EQ(pool.HomeSocketOf(remote.get()), 1u);
  }
  const uint64_t local_before = pool.local_leases();
  ContextPool::Lease again = pool.Acquire(1);
  EXPECT_EQ(pool.HomeSocketOf(again.get()), 1u);
  EXPECT_EQ(pool.local_leases(), local_before + 1);
}

TEST(ContextPoolSocketTest, OutOfRangePreferredSocketWraps) {
  const HwTopology topo = DualSocketTopo();
  ContextPool pool(2, 0, &topo);
  // preferred_socket is reduced modulo num_sockets: 2 -> 0.
  ContextPool::Lease lease = pool.Acquire(/*preferred_socket=*/2);
  EXPECT_EQ(pool.HomeSocketOf(lease.get()), 0u);
  EXPECT_EQ(pool.local_leases(), 1u);
}

TEST(ContextPoolSocketTest, DefaultTopologyIsSingleBucket) {
  // Without an injected topology the pool follows the machine; all we can
  // assert portably is internal consistency.
  ContextPool pool(3);
  EXPECT_GE(pool.num_sockets(), 1u);
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_LT(pool.HomeSocketOf(lease.get()), pool.num_sockets());
  EXPECT_EQ(pool.local_leases() + pool.remote_leases(), 1u);
}

}  // namespace
}  // namespace daf::service

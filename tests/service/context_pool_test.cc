#include "service/context_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace daf::service {
namespace {

// Warms a leased context's arena past `bytes` of retained capacity.
void WarmArena(MatchContext* context, uint64_t bytes) {
  while (context->arena_stats().capacity_bytes <= bytes) {
    context->arena().AllocateBytes(1 << 16, 8);
  }
}

TEST(ContextPoolTest, LeaseGrantsExclusiveAccess) {
  ContextPool pool(1);
  auto lease = pool.TryAcquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(pool.TryAcquire().has_value());
  lease->Release();
  EXPECT_TRUE(pool.TryAcquire().has_value());
}

TEST(ContextPoolTest, SheddingCapsRetainedFootprintOnReturn) {
  constexpr uint64_t kRetain = 1 << 18;  // 256 KiB threshold
  ContextPool pool(1, kRetain);
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 4 * kRetain);
    EXPECT_GT(lease->arena_stats().capacity_bytes, kRetain);
  }  // return sheds
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_LE(lease->arena_stats().capacity_bytes, kRetain);
  // The shrunk context still serves allocations (it re-warms).
  void* p = lease->arena().AllocateBytes(1 << 12, 8);
  EXPECT_NE(p, nullptr);
}

TEST(ContextPoolTest, NoSheddingBelowThreshold) {
  constexpr uint64_t kRetain = 1 << 22;  // 4 MiB — far above the warmth
  ContextPool pool(1, kRetain);
  uint64_t warmed = 0;
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 1 << 17);
    warmed = lease->arena_stats().capacity_bytes;
    ASSERT_LE(warmed, kRetain);
  }
  // A context under the threshold keeps its warmth — the whole point of
  // the pool (shedding must not cold-start everyone).
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_EQ(lease->arena_stats().capacity_bytes, warmed);
}

TEST(ContextPoolTest, ZeroThresholdDisablesShedding) {
  ContextPool pool(1, 0);
  uint64_t warmed = 0;
  {
    ContextPool::Lease lease = pool.Acquire();
    WarmArena(lease.get(), 1 << 20);
    warmed = lease->arena_stats().capacity_bytes;
  }
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_EQ(lease->arena_stats().capacity_bytes, warmed);
}

TEST(ContextPoolTest, PeakInUseTracksHighWaterMark) {
  ContextPool pool(3);
  EXPECT_EQ(pool.peak_in_use(), 0u);
  {
    ContextPool::Lease a = pool.Acquire();
    EXPECT_EQ(pool.peak_in_use(), 1u);
    ContextPool::Lease b = pool.Acquire();
    ContextPool::Lease c = pool.Acquire();
    EXPECT_EQ(pool.peak_in_use(), 3u);
  }
  // The mark is a high-water mark: it survives the leases.
  EXPECT_EQ(pool.peak_in_use(), 3u);
  EXPECT_EQ(pool.available(), 3u);
  ContextPool::Lease d = pool.Acquire();
  EXPECT_EQ(pool.peak_in_use(), 3u);
}

TEST(ContextPoolTest, SheddingIsSafeUnderContention) {
  constexpr uint64_t kRetain = 1 << 16;
  ContextPool pool(2, kRetain);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 50; ++i) {
        ContextPool::Lease lease = pool.Acquire();
        WarmArena(lease.get(), 1 << 17);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 2u);
  // Concurrency of the leases is scheduling-dependent; the mark only has
  // hard bounds.
  EXPECT_GE(pool.peak_in_use(), 1u);
  EXPECT_LE(pool.peak_in_use(), 2u);
  for (int i = 0; i < 2; ++i) {
    ContextPool::Lease lease = pool.Acquire();
    EXPECT_LE(lease->arena_stats().capacity_bytes, kRetain);
    lease.Release();
  }
}

}  // namespace
}  // namespace daf::service

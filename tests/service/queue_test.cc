// Unit tests of the service building blocks: the bounded multi-priority
// admission queue and the MatchContext pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/admission_queue.h"
#include "service/context_pool.h"
#include "service/job_state.h"

namespace daf::service {
namespace {

internal::JobStatePtr Job(uint64_t id, Priority priority = Priority::kNormal) {
  auto job = std::make_shared<internal::JobState>();
  job->id = id;
  job->priority = priority;
  return job;
}

TEST(AdmissionQueueTest, FifoWithinOnePriority) {
  AdmissionQueue queue(8);
  EXPECT_TRUE(queue.TryPush(Job(1)));
  EXPECT_TRUE(queue.TryPush(Job(2)));
  EXPECT_TRUE(queue.TryPush(Job(3)));
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.Pop()->id, 1u);
  EXPECT_EQ(queue.Pop()->id, 2u);
  EXPECT_EQ(queue.Pop()->id, 3u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueueTest, StrictPriorityAcrossLanes) {
  AdmissionQueue queue(8);
  EXPECT_TRUE(queue.TryPush(Job(1, Priority::kBatch)));
  EXPECT_TRUE(queue.TryPush(Job(2, Priority::kNormal)));
  EXPECT_TRUE(queue.TryPush(Job(3, Priority::kInteractive)));
  EXPECT_TRUE(queue.TryPush(Job(4, Priority::kInteractive)));
  EXPECT_EQ(queue.Pop()->id, 3u);  // interactive lane first, FIFO inside
  EXPECT_EQ(queue.Pop()->id, 4u);
  EXPECT_EQ(queue.Pop()->id, 2u);
  EXPECT_EQ(queue.Pop()->id, 1u);
}

TEST(AdmissionQueueTest, CapacityIsSharedAcrossLanes) {
  AdmissionQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.TryPush(Job(1, Priority::kBatch)));
  EXPECT_TRUE(queue.TryPush(Job(2, Priority::kInteractive)));
  // Overflow rejects regardless of the submitting lane's priority.
  EXPECT_FALSE(queue.TryPush(Job(3, Priority::kInteractive)));
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(Job(4)));
}

TEST(AdmissionQueueTest, CloseDrainsThenReturnsNull) {
  AdmissionQueue queue(8);
  EXPECT_TRUE(queue.TryPush(Job(1)));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(Job(2)));  // admission stops immediately
  EXPECT_EQ(queue.Pop()->id, 1u);       // queued work still drains
  EXPECT_EQ(queue.Pop(), nullptr);
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(AdmissionQueueTest, CloseWakesBlockedPop) {
  AdmissionQueue queue(8);
  std::atomic<bool> popped{false};
  std::thread waiter([&] {
    EXPECT_EQ(queue.Pop(), nullptr);
    popped.store(true);
  });
  queue.Close();
  waiter.join();
  EXPECT_TRUE(popped.load());
}

TEST(AdmissionQueueTest, FlushReturnsEverythingInPriorityOrder) {
  AdmissionQueue queue(8);
  EXPECT_TRUE(queue.TryPush(Job(1, Priority::kBatch)));
  EXPECT_TRUE(queue.TryPush(Job(2, Priority::kInteractive)));
  EXPECT_TRUE(queue.TryPush(Job(3, Priority::kNormal)));
  std::vector<internal::JobStatePtr> flushed = queue.Flush();
  ASSERT_EQ(flushed.size(), 3u);
  EXPECT_EQ(flushed[0]->id, 2u);
  EXPECT_EQ(flushed[1]->id, 3u);
  EXPECT_EQ(flushed[2]->id, 1u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueueTest, PopUnblocksOnPush) {
  AdmissionQueue queue(8);
  internal::JobStatePtr got;
  std::thread waiter([&] { got = queue.Pop(); });
  EXPECT_TRUE(queue.TryPush(Job(42)));
  waiter.join();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, 42u);
}

TEST(ContextPoolTest, CapacityAndAvailability) {
  ContextPool pool(2);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  {
    ContextPool::Lease a = pool.Acquire();
    EXPECT_TRUE(a);
    EXPECT_NE(a.get(), nullptr);
    EXPECT_EQ(pool.available(), 1u);
    ContextPool::Lease b = pool.Acquire();
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_NE(a.get(), b.get());
  }
  EXPECT_EQ(pool.available(), 2u);  // leases returned on destruction
}

TEST(ContextPoolTest, TryAcquireFailsWhenExhausted) {
  ContextPool pool(1);
  std::optional<ContextPool::Lease> first = pool.TryAcquire();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(pool.TryAcquire().has_value());
  first->Release();
  EXPECT_TRUE(pool.TryAcquire().has_value());
}

TEST(ContextPoolTest, ReleaseIsIdempotent) {
  ContextPool pool(1);
  ContextPool::Lease lease = pool.Acquire();
  lease.Release();
  lease.Release();
  EXPECT_FALSE(lease);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ContextPoolTest, MoveTransfersOwnership) {
  ContextPool pool(1);
  ContextPool::Lease a = pool.Acquire();
  MatchContext* context = a.get();
  ContextPool::Lease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting moved-from
  EXPECT_EQ(b.get(), context);
  EXPECT_EQ(pool.available(), 0u);
  b.Release();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ContextPoolTest, AcquireBlocksUntilAReturn) {
  ContextPool pool(1);
  ContextPool::Lease held = pool.Acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ContextPool::Lease lease = pool.Acquire();
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  held.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ContextPoolTest, TrimFreeKeepsContextsUsable) {
  ContextPool pool(2);
  pool.TrimFree();
  ContextPool::Lease lease = pool.Acquire();
  EXPECT_NE(lease.get(), nullptr);
}

TEST(ContextPoolTest, ConcurrentAcquireReleaseHandsOutExclusiveContexts) {
  ContextPool pool(3);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        ContextPool::Lease lease = pool.Acquire();
        int now = concurrent.fetch_add(1) + 1;
        int expected = peak.load();
        while (now > expected &&
               !peak.compare_exchange_weak(expected, now)) {
        }
        concurrent.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(peak.load(), 3);
  EXPECT_EQ(pool.available(), 3u);
}

}  // namespace
}  // namespace daf::service

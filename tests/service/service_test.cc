// End-to-end tests of the MatchService scheduler: admission overflow,
// priority ordering, cancellation mid-search, deadlines that expire before
// and during a run, streaming, shutdown semantics, and metrics accounting.
#include "service/match_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "daf/engine.h"
#include "tests/test_util.h"

namespace daf::service {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakePath;

// Clique-in-clique searches used throughout: easy ones finish instantly,
// the hard one has ~10^10 embeddings and never finishes un-stopped.
Graph SmallData() { return MakeClique(std::vector<Label>(8, 0)); }
Graph SmallQuery() { return MakeClique(std::vector<Label>(3, 0)); }
Graph HardData() { return MakeClique(std::vector<Label>(32, 0)); }
Graph HardQuery() { return MakeClique(std::vector<Label>(7, 0)); }

// A streaming job with more embeddings than the stream buffer holds
// (12*11*10 = 1320 > kBufferCapacity): the worker blocks on backpressure
// until the consumer drains or closes, pinning one worker deterministically.
JobHandle SubmitBlocker(MatchService& service) {
  QueryJob job;
  job.query = SmallQuery();
  job.stream_embeddings = true;
  return service.Submit(std::move(job));
}

Graph BlockerData() { return MakeClique(std::vector<Label>(12, 0)); }

void WaitForStatus(const JobHandle& handle, JobStatus want) {
  for (int i = 0; i < 10000 && handle.Status() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(handle.Status(), want);
}

TEST(MatchServiceTest, CompletedJobMatchesDirectEngineRun) {
  Graph data = SmallData();
  MatchResult expected = DafMatch(SmallQuery(), data);
  ASSERT_TRUE(expected.Complete());

  MatchService service(data, {.num_workers = 2});
  QueryJob job;
  job.query = SmallQuery();
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  const MatchResult& result = handle.Result();
  EXPECT_TRUE(result.Complete());
  EXPECT_EQ(result.embeddings, expected.embeddings);
  // The per-job profile was collected (search-tree nodes were recorded).
  EXPECT_GT(handle.Profile().backtrack.HistogramTotal(), 0u);
  EXPECT_GT(handle.start_seq(), 0u);
}

TEST(MatchServiceTest, IntraQueryParallelismForInteractiveJobs) {
  Graph data = SmallData();
  MatchResult expected = DafMatch(SmallQuery(), data);
  ASSERT_TRUE(expected.Complete());

  MatchService service(data,
                       {.num_workers = 1, .intra_query_threads = 4});
  // Interactive, non-streaming -> the work-stealing parallel engine.
  QueryJob interactive;
  interactive.query = SmallQuery();
  interactive.priority = Priority::kInteractive;
  JobHandle par_handle = service.Submit(std::move(interactive));
  EXPECT_EQ(par_handle.Wait(), JobStatus::kDone);
  EXPECT_EQ(par_handle.Result().embeddings, expected.embeddings);
  EXPECT_EQ(par_handle.Profile().threads, 4u);

  // Normal priority stays on the single-threaded engine.
  QueryJob batch;
  batch.query = SmallQuery();
  batch.priority = Priority::kNormal;
  JobHandle seq_handle = service.Submit(std::move(batch));
  EXPECT_EQ(seq_handle.Wait(), JobStatus::kDone);
  EXPECT_EQ(seq_handle.Result().embeddings, expected.embeddings);
  EXPECT_EQ(seq_handle.Profile().threads, 1u);

  service.Drain();  // Wait() returns before the metrics bookkeeping lands
  auto metrics = service.Metrics();
  EXPECT_EQ(metrics.counters.parallel_jobs, 1u);
  EXPECT_EQ(metrics.counters.completed, 2u);
}

TEST(MatchServiceTest, IntraQueryParallelLimitStaysExact) {
  MatchService service(BlockerData(),
                       {.num_workers = 1, .intra_query_threads = 4});
  QueryJob job;
  job.query = SmallQuery();  // 12*11*10 = 1320 embeddings
  job.priority = Priority::kInteractive;
  job.limit = 100;
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_TRUE(handle.Result().limit_reached);
  EXPECT_EQ(handle.Result().embeddings, 100u);
}

TEST(MatchServiceTest, StreamedEmbeddingsEqualTheDirectSet) {
  Graph data = SmallData();
  EmbeddingSet expected;
  MatchOptions collect;
  collect.callback = Collector(&expected);
  DafMatch(SmallQuery(), data, collect);
  ASSERT_FALSE(expected.empty());

  MatchService service(data, {.num_workers = 2});
  QueryJob job;
  job.query = SmallQuery();
  job.stream_embeddings = true;
  JobHandle handle = service.Submit(std::move(job));
  EmbeddingSet streamed;
  for (;;) {
    std::vector<std::vector<VertexId>> batch = handle.NextBatch(64);
    if (batch.empty()) break;  // terminal + drained = end of stream
    for (std::vector<VertexId>& e : batch) streamed.insert(std::move(e));
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_EQ(handle.Result().embeddings, expected.size());
}

TEST(MatchServiceTest, QueueOverflowRejectsInsteadOfBlocking) {
  MatchService service(BlockerData(),
                       {.num_workers = 1, .queue_capacity = 1});
  JobHandle blocker = SubmitBlocker(service);
  WaitForStatus(blocker, JobStatus::kRunning);

  QueryJob queued;
  queued.query = SmallQuery();
  JobHandle waiting = service.Submit(std::move(queued));
  EXPECT_EQ(waiting.Status(), JobStatus::kQueued);

  QueryJob overflow;
  overflow.query = SmallQuery();
  JobHandle rejected = service.Submit(std::move(overflow));
  EXPECT_EQ(rejected.Status(), JobStatus::kRejected);
  EXPECT_TRUE(rejected.Done());
  EXPECT_FALSE(rejected.Result().ok);

  blocker.CloseStream();
  EXPECT_EQ(waiting.Wait(), JobStatus::kDone);
  service.Drain();
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.rejected, 1u);
  EXPECT_EQ(m.counters.submitted, 3u);
}

TEST(MatchServiceTest, StrictPriorityOrderingUnderABusyWorker) {
  MatchService service(BlockerData(), {.num_workers = 1});
  JobHandle blocker = SubmitBlocker(service);
  WaitForStatus(blocker, JobStatus::kRunning);

  auto submit = [&](Priority p) {
    QueryJob job;
    job.query = SmallQuery();
    job.priority = p;
    return service.Submit(std::move(job));
  };
  // Submitted in inverse priority order while the only worker is pinned.
  JobHandle batch = submit(Priority::kBatch);
  JobHandle normal = submit(Priority::kNormal);
  JobHandle interactive = submit(Priority::kInteractive);

  blocker.CloseStream();
  service.Drain();
  EXPECT_EQ(interactive.Status(), JobStatus::kDone);
  EXPECT_EQ(normal.Status(), JobStatus::kDone);
  EXPECT_EQ(batch.Status(), JobStatus::kDone);
  // Pickup order follows the lanes, not submission order.
  EXPECT_LT(interactive.start_seq(), normal.start_seq());
  EXPECT_LT(normal.start_seq(), batch.start_seq());
}

TEST(MatchServiceTest, CancelStopsARunningHardQuery) {
  MatchService service(HardData(), {.num_workers = 1});
  QueryJob job;
  job.query = HardQuery();
  JobHandle handle = service.Submit(std::move(job));
  WaitForStatus(handle, JobStatus::kRunning);
  handle.Cancel();
  EXPECT_EQ(handle.Wait(), JobStatus::kCancelled);
  const MatchResult& result = handle.Result();
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.Complete());
  EXPECT_TRUE(result.cancelled);
}

TEST(MatchServiceTest, CancelWhileQueuedNeverRuns) {
  MatchService service(BlockerData(), {.num_workers = 1});
  JobHandle blocker = SubmitBlocker(service);
  WaitForStatus(blocker, JobStatus::kRunning);
  QueryJob job;
  job.query = SmallQuery();
  JobHandle queued = service.Submit(std::move(job));
  queued.Cancel();
  blocker.CloseStream();
  EXPECT_EQ(queued.Wait(), JobStatus::kCancelled);
  EXPECT_TRUE(queued.Result().cancelled);
  EXPECT_EQ(queued.Result().embeddings, 0u);
}

TEST(MatchServiceTest, CancelAfterCompletionKeepsDone) {
  MatchService service(SmallData(), {.num_workers = 1});
  QueryJob job;
  job.query = SmallQuery();
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  handle.Cancel();  // too late: cancellation never un-completes work
  EXPECT_EQ(handle.Status(), JobStatus::kDone);
  EXPECT_TRUE(handle.Result().Complete());
}

TEST(MatchServiceTest, DeadlineExpiringInQueueTimesOutWithoutRunning) {
  MatchService service(BlockerData(), {.num_workers = 1});
  JobHandle blocker = SubmitBlocker(service);
  WaitForStatus(blocker, JobStatus::kRunning);
  QueryJob job;
  job.query = SmallQuery();
  job.deadline_ms = 1;  // burns off while stuck behind the blocker
  JobHandle handle = service.Submit(std::move(job));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  blocker.CloseStream();
  EXPECT_EQ(handle.Wait(), JobStatus::kTimedOut);
  EXPECT_TRUE(handle.Result().timed_out);
  EXPECT_EQ(handle.Result().embeddings, 0u);
}

TEST(MatchServiceTest, DeadlineCutsOffARunningHardQuery) {
  // The deadline fires mid-run — during CS build or search — on a query
  // that would otherwise never finish.
  MatchService service(HardData(), {.num_workers = 1});
  QueryJob job;
  job.query = HardQuery();
  job.deadline_ms = 30;
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kTimedOut);
  EXPECT_TRUE(handle.Result().timed_out);
  EXPECT_FALSE(handle.Result().Complete());
}

TEST(MatchServiceTest, JobLimitOverridesAndReportsLimitReached) {
  MatchService service(SmallData(), {.num_workers = 1});
  QueryJob job;
  job.query = SmallQuery();
  job.limit = 5;
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);  // a limit hit is a success
  EXPECT_TRUE(handle.Result().limit_reached);
  EXPECT_EQ(handle.Result().embeddings, 5u);
}

TEST(MatchServiceTest, ReservedOptionChannelsFailTheJob) {
  MatchService service(SmallData(), {.num_workers = 1});
  QueryJob job;
  job.query = SmallQuery();
  job.options.callback = [](std::span<const VertexId>) { return true; };
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Status(), JobStatus::kFailed);
  EXPECT_FALSE(handle.Result().ok);
}

TEST(MatchServiceTest, ShutdownCancelsQueuedAndRunningJobs) {
  MatchService service(BlockerData(), {.num_workers = 1});
  JobHandle blocker = SubmitBlocker(service);
  WaitForStatus(blocker, JobStatus::kRunning);
  QueryJob job;
  job.query = SmallQuery();
  JobHandle queued = service.Submit(std::move(job));
  service.Shutdown();
  EXPECT_EQ(queued.Status(), JobStatus::kCancelled);
  EXPECT_TRUE(queued.Result().cancelled);
  EXPECT_EQ(blocker.Wait(), JobStatus::kCancelled);
  // Handles stay readable after shutdown (state is shared, not borrowed).
  EXPECT_FALSE(blocker.Result().Complete());
}

TEST(MatchServiceTest, SubmitAfterShutdownIsRejected) {
  MatchService service(SmallData(), {.num_workers = 1});
  service.Shutdown();
  QueryJob job;
  job.query = SmallQuery();
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Status(), JobStatus::kRejected);
  EXPECT_FALSE(handle.Result().ok);
}

TEST(MatchServiceTest, DrainWaitsForAllAdmittedJobs) {
  MatchService service(SmallData(), {.num_workers = 4});
  std::vector<JobHandle> handles;
  for (int i = 0; i < 32; ++i) {
    QueryJob job;
    job.query = SmallQuery();
    handles.push_back(service.Submit(std::move(job)));
  }
  service.Drain();
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.Status(), JobStatus::kDone);
  }
  EXPECT_EQ(service.QueueDepth(), 0u);
}

TEST(MatchServiceTest, MetricsAccountForEveryJob) {
  MatchService service(SmallData(), {.num_workers = 2});
  const MatchResult direct = DafMatch(SmallQuery(), SmallData());
  for (int i = 0; i < 10; ++i) {
    QueryJob job;
    job.query = SmallQuery();
    service.Submit(std::move(job));
  }
  service.Drain();
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.submitted, 10u);
  EXPECT_EQ(m.counters.completed, 10u);
  EXPECT_EQ(m.counters.rejected + m.counters.cancelled +
                m.counters.timed_out + m.counters.failed,
            0u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.running, 0u);
  EXPECT_EQ(m.workers, 2u);
  EXPECT_EQ(m.wait.count(), 10u);
  EXPECT_EQ(m.run.count(), 10u);
  EXPECT_EQ(m.total.count(), 10u);
  EXPECT_GE(m.total.max_ms(), m.run.min_ms());
  (void)direct;
  std::string json = obs::ServiceMetricsToJson(m);
  EXPECT_NE(json.find("\"completed\": 10"), std::string::npos) << json;
}

TEST(MatchServiceTest, ProfilesCanBeDisabled) {
  MatchService service(SmallData(),
                       {.num_workers = 1, .collect_profiles = false});
  QueryJob job;
  job.query = SmallQuery();
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_EQ(handle.Profile().backtrack.HistogramTotal(), 0u);
}

TEST(MatchServiceTest, ManyMixedJobsAllResolveCorrectly) {
  Graph data = SmallData();
  const MatchResult direct = DafMatch(SmallQuery(), data);
  const MatchResult direct_path = DafMatch(MakePath({0, 0}), data);
  MatchService service(data, {.num_workers = 4});
  std::vector<JobHandle> clique_jobs;
  std::vector<JobHandle> path_jobs;
  for (int i = 0; i < 24; ++i) {
    QueryJob job;
    job.priority = static_cast<Priority>(i % kNumPriorities);
    if (i % 2 == 0) {
      job.query = SmallQuery();
      clique_jobs.push_back(service.Submit(std::move(job)));
    } else {
      job.query = MakePath({0, 0});
      path_jobs.push_back(service.Submit(std::move(job)));
    }
  }
  service.Drain();
  for (JobHandle& h : clique_jobs) {
    EXPECT_EQ(h.Status(), JobStatus::kDone);
    EXPECT_EQ(h.Result().embeddings, direct.embeddings);
  }
  for (JobHandle& h : path_jobs) {
    EXPECT_EQ(h.Status(), JobStatus::kDone);
    EXPECT_EQ(h.Result().embeddings, direct_path.embeddings);
  }
}

}  // namespace
}  // namespace daf::service

// QueryCache unit and concurrency tests: canonical-key sharing across
// relabeled resubmissions, the single-build coalescing latch, refcounted
// eviction racing an active lease (ASan proves the blob outlives the
// entry), interrupted builds never publishing, the cache_insert/cache_evict
// fault points, and budget-ledger accounting.
#include "service/query_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "daf/prepared.h"
#include "graph/canonical.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"
#include "util/memory_budget.h"
#include "util/rng.h"
#include "util/stop.h"

namespace daf::service {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakePath;
using daf::testing::RandomDataGraph;

class QueryCacheTest : public ::testing::Test {
 protected:
  ~QueryCacheTest() override { FaultInjector::Disarm(); }
};

// Runs the prepared search of `lease` and returns the embeddings remapped
// into the submitted query's vertex numbering — the exact transformation
// MatchService applies on a hit.
EmbeddingSet RunLease(const QueryCache::Lease& lease, const Graph& data,
                      MatchOptions options = {}) {
  EmbeddingSet canonical;
  options.callback = Collector(&canonical);
  MatchResult r = DafMatchPrepared(*lease.prepared, data, options);
  EXPECT_TRUE(r.ok);
  EmbeddingSet out;
  for (const std::vector<VertexId>& e : canonical) {
    std::vector<VertexId> remapped(e.size());
    for (VertexId u = 0; u < remapped.size(); ++u) {
      remapped[u] = e[lease.form.to_canonical[u]];
    }
    out.insert(std::move(remapped));
  }
  return out;
}

EmbeddingSet ColdEmbeddings(const Graph& query, const Graph& data) {
  EmbeddingSet out;
  MatchOptions options;
  options.callback = Collector(&out);
  EXPECT_TRUE(DafMatch(query, data, options).ok);
  return out;
}

TEST_F(QueryCacheTest, MissThenHitSharesOneBlob) {
  QueryCache cache;
  Graph data = MakeClique(std::vector<Label>(8, 0));
  Graph query = MakeClique(std::vector<Label>(3, 0));

  QueryCache::Lease first = cache.Acquire(query, data, {});
  ASSERT_NE(first.prepared, nullptr);
  EXPECT_EQ(first.outcome, CacheOutcome::kMiss);

  QueryCache::Lease second = cache.Acquire(query, data, {});
  ASSERT_NE(second.prepared, nullptr);
  EXPECT_EQ(second.outcome, CacheOutcome::kHit);
  EXPECT_EQ(first.prepared.get(), second.prepared.get());

  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.coalesced, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
  EXPECT_EQ(s.hits + s.misses + s.coalesced, s.lookups);
}

TEST_F(QueryCacheTest, PermutedResubmissionHitsAndRemapsCorrectly) {
  Rng rng(11);
  QueryCache cache;
  Graph data = RandomDataGraph(60, 150, 3, rng);
  Graph query = MakePath({0, 1, 2, 1});

  QueryCache::Lease warm = cache.Acquire(query, data, {});
  ASSERT_NE(warm.prepared, nullptr);

  for (int i = 0; i < 5; ++i) {
    SCOPED_TRACE("perm " + std::to_string(i));
    std::vector<VertexId> perm(query.NumVertices());
    std::iota(perm.begin(), perm.end(), 0u);
    rng.Shuffle(perm);
    Graph permuted = PermuteVertices(query, perm);

    QueryCache::Lease lease = cache.Acquire(permuted, data, {});
    ASSERT_NE(lease.prepared, nullptr);
    EXPECT_EQ(lease.outcome, CacheOutcome::kHit);
    EXPECT_EQ(lease.prepared.get(), warm.prepared.get());
    // The remapped hit embeddings equal a cold run on the permuted query.
    EXPECT_EQ(RunLease(lease, data), ColdEmbeddings(permuted, data));
  }
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST_F(QueryCacheTest, CsShapingOptionsKeySeparately) {
  QueryCache cache;
  Graph data = MakeClique(std::vector<Label>(6, 0));
  Graph query = MakeClique(std::vector<Label>(3, 0));

  MatchOptions injective;  // defaults
  MatchOptions homomorphism;
  homomorphism.injective = false;
  MatchOptions one_pass;
  one_pass.refinement_steps = 1;

  EXPECT_EQ(cache.Acquire(query, data, injective).outcome,
            CacheOutcome::kMiss);
  EXPECT_EQ(cache.Acquire(query, data, homomorphism).outcome,
            CacheOutcome::kMiss);
  EXPECT_EQ(cache.Acquire(query, data, one_pass).outcome,
            CacheOutcome::kMiss);
  // Search-time options (limit, order, failing sets) do NOT key.
  MatchOptions limited;
  limited.limit = 5;
  limited.use_failing_sets = false;
  limited.order = MatchOrder::kCandidateSize;
  EXPECT_EQ(cache.Acquire(query, data, limited).outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.Stats().entries, 3u);
}

TEST_F(QueryCacheTest, ConcurrentIdenticalQueriesBuildExactlyOnce) {
  Rng rng(23);
  QueryCache cache;
  // A data graph big enough that the CS build takes real time, so the
  // threads genuinely overlap the in-flight window.
  Graph data = RandomDataGraph(3000, 12000, 2, rng);
  Graph query = MakePath({0, 1, 0, 1, 0});

  constexpr int kThreads = 8;
  std::vector<QueryCache::Lease> leases(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      leases[t] = cache.Acquire(query, data, {});
    });
  }
  for (std::thread& th : threads) th.join();

  const PreparedQuery* blob = nullptr;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(leases[t].prepared, nullptr) << "thread " << t;
    if (blob == nullptr) blob = leases[t].prepared.get();
    EXPECT_EQ(leases[t].prepared.get(), blob) << "thread " << t;
  }
  QueryCacheStats s = cache.Stats();
  // Exactly one build, counter-verified: every other thread either waited
  // on the latch (coalesced) or arrived after publication (hit).
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.hits + s.coalesced, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(s.hits + s.misses + s.coalesced, s.lookups);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(QueryCacheTest, EvictionRacingActiveLeaseNeverFreesTheBlob) {
  Graph data = MakeClique(std::vector<Label>(10, 0));
  Graph held_query = MakeClique(std::vector<Label>(4, 0));

  // Cap the cache at the held blob's footprint plus a few KiB of churn
  // headroom, so LRU pressure is guaranteed to reach the held entry.
  uint64_t held_bytes;
  {
    QueryCache probe;
    probe.Acquire(held_query, data, {});
    held_bytes = probe.Stats().resident_bytes;
  }
  QueryCacheOptions options;
  options.shards = 1;  // every insert contends with the held entry
  options.max_resident_bytes = held_bytes + 4096;
  QueryCache cache(options);

  QueryCache::Lease held = cache.Acquire(held_query, data, {});
  ASSERT_NE(held.prepared, nullptr);
  const uint64_t expected = ColdEmbeddings(held_query, data).size();

  // Churn distinct patterns through the one shard until LRU pressure has
  // evicted the held entry (distinct label sequences => distinct keys).
  int churned = 0;
  while (cache.Stats().evictions == 0 && churned < 200) {
    std::vector<Label> labels(5);
    for (size_t j = 0; j < labels.size(); ++j) {
      labels[j] = static_cast<Label>((churned >> (2 * j)) & 3);
    }
    cache.Acquire(MakePath(labels), data, {});
    ++churned;
  }
  ASSERT_GT(cache.Stats().evictions, 0u);

  // The lease keeps the evicted blob alive: using it now is valid (ASan
  // enforces this mechanically) and still produces the right embeddings.
  EXPECT_EQ(RunLease(held, data).size(), expected);

  // A re-acquire after eviction is a fresh miss, not a stale hit.
  uint64_t misses_before = cache.Stats().misses;
  QueryCache::Lease again = cache.Acquire(held_query, data, {});
  ASSERT_NE(again.prepared, nullptr);
  if (cache.Stats().misses > misses_before) {
    EXPECT_NE(again.prepared.get(), held.prepared.get());
  }
}

TEST_F(QueryCacheTest, CancelledBuildPublishesNoPoisonedEntry) {
  QueryCache cache;
  Graph data = MakeClique(std::vector<Label>(8, 0));
  Graph query = MakeClique(std::vector<Label>(3, 0));

  CancelToken token;
  token.Cancel();
  MatchOptions cancelled;
  cancelled.cancel = &token;
  QueryCache::Lease lease = cache.Acquire(query, data, cancelled);
  EXPECT_EQ(lease.prepared, nullptr);
  EXPECT_EQ(lease.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(lease.interrupted, StopCause::kCancel);
  EXPECT_EQ(cache.Stats().entries, 0u);

  // The next caller is not poisoned: a clean build and a working entry.
  QueryCache::Lease retry = cache.Acquire(query, data, {});
  ASSERT_NE(retry.prepared, nullptr);
  EXPECT_EQ(retry.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(RunLease(retry, data), ColdEmbeddings(query, data));
}

TEST_F(QueryCacheTest, CancelMidBuildRacingWaitersStaysConsistent) {
  // A builder being cancelled while waiters are coalesced on its latch:
  // whatever the interleaving, nobody deadlocks, nobody gets a poisoned
  // blob, and the counters stay classified.
  Rng rng(31);
  Graph data = RandomDataGraph(2000, 8000, 2, rng);
  Graph query = MakePath({0, 1, 0, 1});
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    QueryCache cache;
    CancelToken token;
    MatchOptions with_cancel;
    with_cancel.cancel = &token;

    std::vector<std::thread> threads;
    std::vector<QueryCache::Lease> leases(3);
    threads.emplace_back(
        [&] { leases[0] = cache.Acquire(query, data, with_cancel); });
    threads.emplace_back([&] { leases[1] = cache.Acquire(query, data, {}); });
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      token.Cancel();
    });
    for (std::thread& th : threads) th.join();

    QueryCacheStats s = cache.Stats();
    EXPECT_EQ(s.hits + s.misses + s.coalesced, s.lookups);
    // Liveness + correctness after the dust settles.
    QueryCache::Lease after = cache.Acquire(query, data, {});
    ASSERT_NE(after.prepared, nullptr);
    EXPECT_EQ(RunLease(after, data), ColdEmbeddings(query, data));
  }
}

TEST_F(QueryCacheTest, InsertFaultDropsEntryButStillServesBuilder) {
  FaultInjector::FireNth("cache_insert", 1);
  QueryCache cache;
  Graph data = MakeClique(std::vector<Label>(8, 0));
  Graph query = MakeClique(std::vector<Label>(3, 0));

  QueryCache::Lease lease = cache.Acquire(query, data, {});
  ASSERT_NE(lease.prepared, nullptr);  // the builder still gets its blob
  EXPECT_EQ(lease.outcome, CacheOutcome::kMiss);
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.insert_failures, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);

  // Nothing was retained, so the next acquire rebuilds — and retains.
  QueryCache::Lease retry = cache.Acquire(query, data, {});
  ASSERT_NE(retry.prepared, nullptr);
  EXPECT_EQ(retry.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST_F(QueryCacheTest, EvictFaultFailsTheInsertNotTheCaller) {
  Graph data = MakeClique(std::vector<Label>(10, 0));
  Graph a = MakeClique(std::vector<Label>(4, 0));
  Graph b = MakeClique(std::vector<Label>(5, 0));

  // Size the cache so exactly one blob fits: measure A's footprint first.
  uint64_t bytes_a;
  {
    QueryCache probe;
    probe.Acquire(a, data, {});
    bytes_a = probe.Stats().resident_bytes;
  }
  QueryCacheOptions options;
  options.shards = 1;
  options.max_resident_bytes = bytes_a;
  QueryCache cache(options);
  ASSERT_NE(cache.Acquire(a, data, {}).prepared, nullptr);
  ASSERT_EQ(cache.Stats().entries, 1u);

  // Inserting B must evict A; the armed fault aborts the eviction pass, so
  // the insert fails — but B's caller still gets a working blob.
  FaultInjector::FireNth("cache_evict", 1);
  QueryCache::Lease lease = cache.Acquire(b, data, {});
  ASSERT_NE(lease.prepared, nullptr);
  QueryCacheStats s = cache.Stats();
  EXPECT_GE(s.insert_failures, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);  // A survived the aborted eviction
  EXPECT_EQ(RunLease(lease, data), ColdEmbeddings(b, data));
}

TEST_F(QueryCacheTest, UncacheableQueryNeverEntersTheLookupPath) {
  QueryCacheOptions options;
  options.canonical_max_leaves = 1;  // abort any branching search
  QueryCache cache(options);
  // Petersen: 3-regular, twin-free, unlabeled — refinement cannot split it
  // and a one-leaf budget cannot finish the search.
  std::vector<Label> labels(10, 0);
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                             {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
                             {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}};
  Graph query = Graph::FromEdges(labels, edges);
  Graph data = MakeClique(std::vector<Label>(12, 0));

  QueryCache::Lease lease = cache.Acquire(query, data, {});
  EXPECT_EQ(lease.prepared, nullptr);
  EXPECT_EQ(lease.outcome, CacheOutcome::kNone);
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.uncacheable, 1u);
  EXPECT_EQ(s.lookups, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST_F(QueryCacheTest, ResidentBytesChargeTheParentLedgerAndClearReturns) {
  MemoryBudget parent;  // unlimited, pure accounting
  QueryCacheOptions options;
  options.budget = &parent;
  QueryCache cache(options);
  Graph data = MakeClique(std::vector<Label>(8, 0));

  QueryCache::Lease lease =
      cache.Acquire(MakeClique(std::vector<Label>(3, 0)), data, {});
  ASSERT_NE(lease.prepared, nullptr);
  QueryCacheStats s = cache.Stats();
  EXPECT_GT(s.resident_bytes, 0u);
  EXPECT_EQ(parent.used(), s.resident_bytes);

  cache.Clear();
  EXPECT_EQ(parent.used(), 0u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_FALSE(parent.exhausted());
  // The lease outlives Clear.
  EXPECT_EQ(RunLease(lease, data).size(),
            ColdEmbeddings(MakeClique(std::vector<Label>(3, 0)), data).size());
}

TEST_F(QueryCacheTest, ParentBudgetPressureNeverLatchesTheParent) {
  // A parent ledger too small for any blob: the insert must fail cleanly —
  // bytes returned, no entry retained, and crucially the *parent* never
  // left exhausted (that would poison every job budget chained under it).
  MemoryBudget parent(256);
  QueryCacheOptions options;
  options.budget = &parent;
  QueryCache cache(options);
  Graph data = MakeClique(std::vector<Label>(8, 0));

  QueryCache::Lease lease =
      cache.Acquire(MakeClique(std::vector<Label>(3, 0)), data, {});
  ASSERT_NE(lease.prepared, nullptr);  // caller is served regardless
  QueryCacheStats s = cache.Stats();
  EXPECT_GE(s.insert_failures, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(parent.used(), 0u);
  EXPECT_FALSE(parent.exhausted());
}

}  // namespace
}  // namespace daf::service

#include "bench_util.h"

#include <gtest/gtest.h>

namespace daf::bench {
namespace {

// Fakes: algorithms whose per-query outcomes are scripted.
Algorithm Scripted(const std::string& name, std::vector<Outcome> outcomes) {
  auto index = std::make_shared<size_t>(0);
  auto script = std::make_shared<std::vector<Outcome>>(std::move(outcomes));
  return Algorithm{name, [index, script](const Graph&) {
                     return (*script)[(*index)++ % script->size()];
                   }};
}

Outcome Solved(double ms, uint64_t calls) {
  Outcome o;
  o.total_ms = ms;
  o.calls = calls;
  o.solved = true;
  return o;
}

Outcome Unsolved() {
  Outcome o;
  o.solved = false;
  return o;
}

std::vector<Graph> DummyQueries(size_t count) {
  std::vector<Graph> queries;
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(Graph::FromEdges({0, 0}, {{0, 1}}));
  }
  return queries;
}

TEST(EvaluateQuerySetTest, AveragesOverAllWhenEverythingSolves) {
  std::vector<Algorithm> algos;
  algos.push_back(Scripted("A", {Solved(1, 10), Solved(3, 30)}));
  std::vector<Summary> s = EvaluateQuerySet(DummyQueries(2), algos);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].avg_ms, 2.0);
  EXPECT_DOUBLE_EQ(s[0].avg_calls, 20.0);
  EXPECT_DOUBLE_EQ(s[0].solved_pct, 100.0);
}

TEST(EvaluateQuerySetTest, UsesLeastTimeConsumingOfEachAlgorithm) {
  // The paper's protocol: n = min #solved across algorithms; each
  // algorithm averages its n *fastest* solved queries.
  std::vector<Algorithm> algos;
  // A solves all 3; B solves only 2 -> n = 2.
  algos.push_back(
      Scripted("A", {Solved(9, 90), Solved(1, 10), Solved(5, 50)}));
  algos.push_back(Scripted("B", {Solved(4, 40), Unsolved(), Solved(2, 20)}));
  std::vector<Summary> s = EvaluateQuerySet(DummyQueries(3), algos);
  ASSERT_EQ(s.size(), 2u);
  // A's two fastest solved: 1 ms and 5 ms.
  EXPECT_DOUBLE_EQ(s[0].avg_ms, 3.0);
  EXPECT_DOUBLE_EQ(s[0].avg_calls, 30.0);
  EXPECT_NEAR(s[0].solved_pct, 100.0, 1e-9);
  // B: both solved queries.
  EXPECT_DOUBLE_EQ(s[1].avg_ms, 3.0);
  EXPECT_NEAR(s[1].solved_pct, 200.0 / 3.0, 1e-9);
}

TEST(EvaluateQuerySetTest, AllUnsolvedYieldsZeroAverages) {
  std::vector<Algorithm> algos;
  algos.push_back(Scripted("A", {Unsolved()}));
  std::vector<Summary> s = EvaluateQuerySet(DummyQueries(2), algos);
  EXPECT_DOUBLE_EQ(s[0].avg_ms, 0.0);
  EXPECT_DOUBLE_EQ(s[0].solved_pct, 0.0);
}

TEST(EvaluateQuerySetTest, EmptyQuerySet) {
  std::vector<Algorithm> algos;
  algos.push_back(Scripted("A", {Solved(1, 1)}));
  std::vector<Summary> s = EvaluateQuerySet({}, algos);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].solved_pct, 0.0);
}

TEST(BenchReportTest, RecordsLabeledRowsAsJson) {
  ResetBenchReport();
  std::vector<Algorithm> algos;
  algos.push_back(Scripted("DAF", {Solved(2, 20)}));
  EvaluateQuerySet(DummyQueries(2), algos, "yeast/Q4S");
  EvaluateQuerySet(DummyQueries(2), algos, "yeast/Q4D");
  std::string json = BenchReportJson();
  EXPECT_NE(json.find("\"figure\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"yeast/Q4S\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"yeast/Q4D\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"DAF\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_ms\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"solved_pct\": 100"), std::string::npos);
  ResetBenchReport();
  EXPECT_EQ(BenchReportJson().find("\"label\""), std::string::npos);
}

TEST(BenchReportTest, DefaultPathUsesBinaryName) {
  // The test binary is not named bench_*, so the prefix is kept as-is.
  std::string path = BenchReportPath();
  EXPECT_NE(path.find("BENCH_"), std::string::npos);
  EXPECT_NE(path.find(".json"), std::string::npos);
}

TEST(DefaultScaleTest, CoversEveryDataset) {
  for (int id = 0;
       id <= static_cast<int>(workload::DatasetId::kTwitterSim); ++id) {
    double scale = DefaultScale(static_cast<workload::DatasetId>(id));
    EXPECT_GT(scale, 0.0);
    EXPECT_LE(scale, 1.0);
  }
}

}  // namespace
}  // namespace daf::bench

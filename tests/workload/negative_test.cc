#include "workload/negative.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf::workload {
namespace {

TEST(NegativeTest, PerturbLabelsKeepsStructure) {
  Rng rng(141);
  Graph data = daf::testing::RandomDataGraph(80, 240, 5, rng);
  auto extracted = ExtractRandomWalkQuery(data, 8, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  Graph perturbed = PerturbLabels(extracted->query, data, 3, rng);
  EXPECT_EQ(perturbed.NumVertices(), extracted->query.NumVertices());
  EXPECT_EQ(perturbed.NumEdges(), extracted->query.NumEdges());
}

TEST(NegativeTest, PerturbZeroIsIdentity) {
  Rng rng(142);
  Graph data = daf::testing::RandomDataGraph(50, 120, 4, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  Graph same = PerturbLabels(extracted->query, data, 0, rng);
  for (uint32_t u = 0; u < same.NumVertices(); ++u) {
    EXPECT_EQ(same.original_label(same.label(u)),
              extracted->query.original_label(extracted->query.label(u)));
  }
}

TEST(NegativeTest, PerturbedLabelsComeFromDataAlphabet) {
  Rng rng(143);
  Graph data = daf::testing::RandomDataGraph(50, 120, 4, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  Graph perturbed = PerturbLabels(extracted->query, data, 6, rng);
  for (uint32_t u = 0; u < perturbed.NumVertices(); ++u) {
    Label original = perturbed.original_label(perturbed.label(u));
    bool in_alphabet = false;
    for (uint32_t l = 0; l < data.NumLabels(); ++l) {
      in_alphabet |= data.original_label(l) == original;
    }
    EXPECT_TRUE(in_alphabet);
  }
}

TEST(NegativeTest, AddRandomEdgesGrowsEdgeCount) {
  Rng rng(144);
  Graph data = daf::testing::RandomDataGraph(80, 240, 4, rng);
  auto extracted = ExtractRandomWalkQuery(data, 8, 2.5, rng);
  ASSERT_TRUE(extracted.has_value());
  uint64_t before = extracted->query.NumEdges();
  Graph denser = AddRandomEdges(extracted->query, 5, rng);
  EXPECT_EQ(denser.NumEdges(), before + 5);
  EXPECT_EQ(denser.NumVertices(), extracted->query.NumVertices());
}

TEST(NegativeTest, AddingAllEdgesYieldsCompleteGraph) {
  Rng rng(145);
  Graph data = daf::testing::RandomDataGraph(60, 200, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, 2.5, rng);
  ASSERT_TRUE(extracted.has_value());
  Graph complete = AddRandomEdges(extracted->query, 10000, rng);
  EXPECT_EQ(complete.NumEdges(), 15u);  // C(6,2)
}

TEST(NegativeTest, PerturbLabelsKeepsEdgeLabels) {
  Graph query = Graph::FromLabeledEdges({0, 1, 2}, {{0, 1}, {1, 2}}, {4, 9});
  Graph data = Graph::FromLabeledEdges({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}},
                                       {4, 9, 4});
  Rng rng(147);
  Graph perturbed = PerturbLabels(query, data, 2, rng);
  EXPECT_EQ(perturbed.EdgeLabelBetween(0, 1), 4u);
  EXPECT_EQ(perturbed.EdgeLabelBetween(1, 2), 9u);
}

TEST(NegativeTest, AddRandomEdgesDrawsLabelsFromExistingAlphabet) {
  Graph query = Graph::FromLabeledEdges({0, 0, 0, 0},
                                        {{0, 1}, {1, 2}, {2, 3}}, {5, 5, 5});
  Rng rng(148);
  Graph denser = AddRandomEdges(query, 3, rng);
  EXPECT_EQ(denser.NumEdges(), 6u);
  for (const auto& [e, label] : denser.LabeledEdgeList()) {
    EXPECT_EQ(label, 5u) << e.first << "-" << e.second;
  }
}

TEST(NegativeTest, DafAgreesWithBruteForceOnNegativeQueries) {
  Rng rng(146);
  Graph data = daf::testing::RandomDataGraph(60, 180, 5, rng);
  int negatives_seen = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
    if (!extracted) continue;
    Graph perturbed = PerturbLabels(extracted->query, data, 4, rng);
    baselines::MatcherResult brute =
        baselines::BruteForceMatch(perturbed, data, {});
    MatchResult daf_result = DafMatch(perturbed, data);
    ASSERT_TRUE(daf_result.ok);
    EXPECT_EQ(daf_result.embeddings, brute.embeddings);
    if (brute.embeddings == 0) {
      ++negatives_seen;
      // A CS-certified negative must indeed be negative (soundness).
      if (daf_result.cs_certified_negative) {
        EXPECT_EQ(brute.embeddings, 0u);
      }
    }
  }
  EXPECT_GT(negatives_seen, 0);
}

}  // namespace
}  // namespace daf::workload

#include "workload/querygen.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/properties.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace daf::workload {
namespace {

TEST(QueryGenTest, NamesFollowPaperConvention) {
  QuerySet s;
  s.size = 50;
  s.sparse = true;
  EXPECT_EQ(s.Name(), "Q50S");
  s.size = 40;
  s.sparse = false;
  EXPECT_EQ(s.Name(), "Q40N");
}

TEST(QueryGenTest, SparseSetsRespectDegreeBound) {
  Rng rng(131);
  Graph data = MakeDataset(DatasetId::kHuman, 0.2, 1);  // dense data graph
  QuerySet set = MakeQuerySet(data, 10, /*sparse=*/true, 15, rng);
  ASSERT_EQ(set.queries.size(), 15u);
  for (const Graph& q : set.queries) {
    EXPECT_EQ(q.NumVertices(), 10u);
    EXPECT_LE(q.AverageDegree(), 3.0);
    EXPECT_TRUE(IsConnected(q));
  }
}

TEST(QueryGenTest, NonSparseSetsExceedDegreeBound) {
  Rng rng(132);
  Graph data = MakeDataset(DatasetId::kHuman, 0.2, 1);
  QuerySet set = MakeQuerySet(data, 10, /*sparse=*/false, 15, rng);
  ASSERT_EQ(set.queries.size(), 15u);
  for (const Graph& q : set.queries) {
    EXPECT_GT(q.AverageDegree(), 3.0);
    EXPECT_TRUE(IsConnected(q));
  }
}

TEST(QueryGenTest, QueriesArePositive) {
  // Every generated query must have at least one embedding by construction.
  Rng rng(133);
  Graph data = daf::testing::RandomDataGraph(120, 500, 4, rng);
  QuerySet set = MakeQuerySet(data, 6, /*sparse=*/true, 8, rng);
  for (const Graph& q : set.queries) {
    baselines::MatcherOptions opts;
    opts.limit = 1;
    baselines::MatcherResult r = baselines::BruteForceMatch(q, data, opts);
    EXPECT_GE(r.embeddings, 1u);
  }
}

TEST(QueryGenTest, ConstrainedQueryHonorsBounds) {
  Rng rng(134);
  Graph data = MakeDataset(DatasetId::kYeast, 0.5, 1);
  QueryConstraints c;
  c.size = 12;
  c.min_avg_deg = 3.0;
  c.max_avg_deg = 5.0;
  auto q = MakeConstrainedQuery(data, c, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumVertices(), 12u);
  EXPECT_GE(q->AverageDegree(), 3.0);
  EXPECT_LE(q->AverageDegree(), 5.0);
}

TEST(QueryGenTest, ConstrainedQueryDiameterBounds) {
  Rng rng(135);
  Graph data = MakeDataset(DatasetId::kYeast, 0.5, 1);
  QueryConstraints c;
  c.size = 10;
  c.min_diameter = 4;
  auto q = MakeConstrainedQuery(data, c, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_GE(Diameter(*q), 4u);
}

TEST(QueryGenTest, DenseExtractorProducesDenseConnectedQueries) {
  Rng rng(137);
  Graph data = MakeDataset(DatasetId::kHuman, 0.2, 1);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = ExtractDenseQuery(data, 12, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->NumVertices(), 12u);
    EXPECT_TRUE(IsConnected(*q));
    // Greedy densest-region growth should clearly beat random walks.
    EXPECT_GT(q->AverageDegree(), 2.0);
  }
}

TEST(QueryGenTest, DenseExtractorQueriesArePositive) {
  Rng rng(138);
  Graph data = daf::testing::RandomDataGraph(150, 700, 3, rng);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = ExtractDenseQuery(data, 8, rng);
    ASSERT_TRUE(q.has_value());
    baselines::MatcherOptions opts;
    opts.limit = 1;
    EXPECT_GE(baselines::BruteForceMatch(*q, data, opts).embeddings, 1u);
  }
}

TEST(QueryGenTest, ImpossibleConstraintsReturnNullopt) {
  Rng rng(136);
  Graph data = MakeDataset(DatasetId::kYeast, 0.2, 1);
  QueryConstraints c;
  c.size = 10;
  c.min_avg_deg = 8.9;  // a 10-vertex graph caps at avg-deg 9; unreachable
  auto q = MakeConstrainedQuery(data, c, rng, /*max_attempts=*/20);
  EXPECT_FALSE(q.has_value());
}

}  // namespace
}  // namespace daf::workload

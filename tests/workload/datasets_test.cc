#include "workload/datasets.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.h"

namespace daf::workload {
namespace {

TEST(DatasetsTest, Table2SpecsMatchThePaper) {
  const auto& specs = Table2Specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_STREQ(specs[0].name, "Yeast");
  EXPECT_EQ(specs[0].num_vertices, 3112u);
  EXPECT_EQ(specs[0].num_edges, 12519u);
  EXPECT_EQ(specs[0].num_labels, 71u);
  EXPECT_STREQ(specs[5].name, "YAGO");
  EXPECT_EQ(specs[5].num_vertices, 4295825u);
  EXPECT_EQ(specs[5].num_edges, 11413472u);
  EXPECT_EQ(specs[5].num_labels, 49676u);
}

TEST(DatasetsTest, QuerySizesFollowThePaper) {
  EXPECT_EQ(GetSpec(DatasetId::kYeast).query_sizes,
            (std::array<uint32_t, 4>{50, 100, 150, 200}));
  EXPECT_EQ(GetSpec(DatasetId::kHprd).query_sizes,
            (std::array<uint32_t, 4>{50, 100, 150, 200}));
  EXPECT_EQ(GetSpec(DatasetId::kHuman).query_sizes,
            (std::array<uint32_t, 4>{10, 20, 30, 40}));
  EXPECT_EQ(GetSpec(DatasetId::kEmail).query_sizes,
            (std::array<uint32_t, 4>{10, 20, 30, 40}));
}

TEST(DatasetsTest, FullScaleYeastMatchesSpec) {
  Graph yeast = MakeDataset(DatasetId::kYeast, 1.0, 1);
  const DatasetSpec& spec = GetSpec(DatasetId::kYeast);
  EXPECT_EQ(yeast.NumVertices(), spec.num_vertices);
  // Connecting bridges may add a handful of edges.
  EXPECT_NEAR(static_cast<double>(yeast.NumEdges()),
              static_cast<double>(spec.num_edges), spec.num_edges * 0.01);
  EXPECT_EQ(yeast.NumLabels(), spec.num_labels);
  EXPECT_NEAR(yeast.AverageDegree(), spec.avg_degree, 0.2);
  EXPECT_TRUE(IsConnected(yeast));
}

TEST(DatasetsTest, ScaleShrinksProportionally) {
  Graph half = MakeDataset(DatasetId::kHuman, 0.5, 1);
  const DatasetSpec& spec = GetSpec(DatasetId::kHuman);
  EXPECT_NEAR(static_cast<double>(half.NumVertices()),
              spec.num_vertices * 0.5, spec.num_vertices * 0.01);
  EXPECT_NEAR(static_cast<double>(half.NumEdges()), spec.num_edges * 0.5,
              spec.num_edges * 0.01);
  EXPECT_TRUE(IsConnected(half));
}

TEST(DatasetsTest, DeterministicInSeed) {
  Graph a = MakeDataset(DatasetId::kYeast, 0.2, 7);
  Graph b = MakeDataset(DatasetId::kYeast, 0.2, 7);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  Graph c = MakeDataset(DatasetId::kYeast, 0.2, 8);
  EXPECT_NE(a.EdgeList(), c.EdgeList());
}

TEST(DatasetsTest, StandInsAreClustered) {
  // Real PPI/social graphs are strongly clustered; the paper's random-walk
  // query extraction depends on it (non-sparse query sets would otherwise
  // be unreachable). Validate the synthesis preserves this.
  for (auto id : {DatasetId::kYeast, DatasetId::kHuman}) {
    Graph g = MakeDataset(id, 0.2, 5);
    EXPECT_GT(GlobalClusteringCoefficient(g), 0.05) << GetSpec(id).name;
  }
}

TEST(DatasetsTest, LabelSkewIsSubstantial) {
  // Entropy well below the uniform bound log2(|Sigma|) indicates the
  // calibrated skew driving the paper's hardness profile.
  Graph yeast = MakeDataset(DatasetId::kYeast, 0.5, 1);
  double uniform_bits = std::log2(static_cast<double>(yeast.NumLabels()));
  EXPECT_LT(LabelEntropy(yeast), 0.75 * uniform_bits);
}

TEST(DatasetsTest, TwitterSimIsHeavyTailed) {
  Graph tw = MakeDataset(DatasetId::kTwitterSim, 0.01, 1);
  EXPECT_GT(tw.NumVertices(), 10000u);
  uint32_t max_degree = 0;
  for (uint32_t v = 0; v < tw.NumVertices(); ++v) {
    max_degree = std::max(max_degree, tw.degree(v));
  }
  EXPECT_GT(max_degree, 20 * tw.AverageDegree());
  EXPECT_TRUE(IsConnected(tw));
}

TEST(DatasetsTest, EveryDatasetBuildsAtSmallScale) {
  for (int id = 0; id <= static_cast<int>(DatasetId::kTwitterSim); ++id) {
    Graph g = MakeDataset(static_cast<DatasetId>(id), 0.01, 3);
    EXPECT_GT(g.NumVertices(), 0u) << GetSpec(static_cast<DatasetId>(id)).name;
    EXPECT_TRUE(IsConnected(g));
  }
}

}  // namespace
}  // namespace daf::workload

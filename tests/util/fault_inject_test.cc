#include "util/fault_inject.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace daf {
namespace {

// Every test disarms on exit; the injector is process-global state.
class FaultInjectTest : public ::testing::Test {
 protected:
  ~FaultInjectTest() override { FaultInjector::Disarm(); }
};

TEST_F(FaultInjectTest, UnarmedPointsNeverFire) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(FAULT_POINT(test_point));
  }
  EXPECT_FALSE(FaultInjector::armed());
  // Unarmed polls never reach the registry: no stats, no fires.
  EXPECT_EQ(FaultInjector::total_fires(), 0u);
  EXPECT_TRUE(FaultInjector::Snapshot().empty());
}

TEST_F(FaultInjectTest, ProbabilityOneFiresEveryPoll) {
  FaultInjector::Arm(42, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FAULT_POINT(test_point));
  }
  EXPECT_EQ(FaultInjector::total_fires(), 100u);
}

TEST_F(FaultInjectTest, ProbabilityZeroNeverFires) {
  FaultInjector::Arm(42, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FAULT_POINT(test_point));
  }
  EXPECT_EQ(FaultInjector::total_fires(), 0u);
  // Armed polls are observed even when they never fire.
  auto stats = FaultInjector::Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test_point");
  EXPECT_EQ(stats[0].polls, 100u);
  EXPECT_EQ(stats[0].fires, 0u);
}

TEST_F(FaultInjectTest, ScheduleIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector::Arm(seed, 0.3);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(FAULT_POINT(test_point));
    FaultInjector::Disarm();
    return fired;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);      // same seed => identical schedule
  EXPECT_NE(a, c);      // different seed => (overwhelmingly) different
}

TEST_F(FaultInjectTest, DistinctPointsGetDistinctSchedules) {
  FaultInjector::Arm(7, 0.3);
  std::vector<bool> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(FAULT_POINT(point_a));
    b.push_back(FAULT_POINT(point_b));
  }
  EXPECT_NE(a, b);  // the name is hashed into the decision
}

TEST_F(FaultInjectTest, BernoulliRateIsRoughlyHonored) {
  FaultInjector::Arm(123, 0.25);
  int fires = 0;
  constexpr int kPolls = 10000;
  for (int i = 0; i < kPolls; ++i) {
    if (FAULT_POINT(test_point)) ++fires;
  }
  // 6-sigma band around p * n for p = 0.25, n = 10000 (sigma ~ 43).
  EXPECT_GT(fires, 2500 - 260);
  EXPECT_LT(fires, 2500 + 260);
}

TEST_F(FaultInjectTest, ArmPointTargetsOnePointOnly) {
  FaultInjector::ArmPoint("only_this", 42, 1.0);
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_TRUE(FAULT_POINT(only_this));
  EXPECT_FALSE(FAULT_POINT(some_other));
  EXPECT_EQ(FaultInjector::total_fires(), 1u);
}

TEST_F(FaultInjectTest, FireNthFiresExactlyOnce) {
  FaultInjector::FireNth("one_shot", 3);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(FAULT_POINT(one_shot));
  std::vector<bool> expected(10, false);
  expected[2] = true;  // the 3rd poll, then never again
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FaultInjector::total_fires(), 1u);
}

TEST_F(FaultInjectTest, FireNthIsRelativeToCurrentPollCount) {
  FaultInjector::ArmPoint("one_shot", 42, 0.0);
  for (int i = 0; i < 5; ++i) (void)FAULT_POINT(one_shot);
  FaultInjector::FireNth("one_shot", 2);  // 2nd poll *after* this call
  EXPECT_FALSE(FAULT_POINT(one_shot));
  EXPECT_TRUE(FAULT_POINT(one_shot));
  EXPECT_FALSE(FAULT_POINT(one_shot));
}

TEST_F(FaultInjectTest, DisarmClearsEverything) {
  FaultInjector::Arm(42, 1.0);
  (void)FAULT_POINT(test_point);
  FaultInjector::Disarm();
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_EQ(FaultInjector::total_fires(), 0u);
  EXPECT_TRUE(FaultInjector::Snapshot().empty());
  EXPECT_FALSE(FAULT_POINT(test_point));
}

TEST_F(FaultInjectTest, ScopedInjectionDisarmsOnExit) {
  {
    ScopedFaultInjection scoped(42, 1.0);
    EXPECT_TRUE(FaultInjector::armed());
    EXPECT_TRUE(FAULT_POINT(test_point));
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(FAULT_POINT(test_point));
}

TEST_F(FaultInjectTest, SnapshotSortsByName) {
  FaultInjector::Arm(42, 0.5);
  (void)FAULT_POINT(zebra);
  (void)FAULT_POINT(alpha);
  (void)FAULT_POINT(middle);
  auto stats = FaultInjector::Snapshot();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].name, "alpha");
  EXPECT_EQ(stats[1].name, "middle");
  EXPECT_EQ(stats[2].name, "zebra");
  for (const auto& p : stats) EXPECT_EQ(p.polls, 1u);
}

}  // namespace
}  // namespace daf

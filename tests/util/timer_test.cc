#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace daf {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = sw.ElapsedMs();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 5000.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedMs(), 15.0);
}

TEST(DeadlineTest, DisabledNeverExpires) {
  Deadline d(0);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterTimeout) {
  Deadline d(10);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.Expired());
}

}  // namespace
}  // namespace daf

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace daf {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformReal();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / (counts[1] + counts[2]), 0.75,
              0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace daf

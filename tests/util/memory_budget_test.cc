#include "util/memory_budget.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/stop.h"

namespace daf {
namespace {

TEST(MemoryBudgetTest, UnlimitedBudgetIsPureAccounting) {
  MemoryBudget budget;  // limit 0 = unlimited
  EXPECT_TRUE(budget.Charge(1 << 20));
  EXPECT_TRUE(budget.Charge(uint64_t{1} << 40));
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.used(), (uint64_t{1} << 40) + (1 << 20));
  EXPECT_EQ(budget.peak_bytes(), budget.used());
  EXPECT_EQ(budget.rejections(), 0u);
}

TEST(MemoryBudgetTest, OverLimitChargeLatchesExhausted) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(600));
  EXPECT_FALSE(budget.exhausted());
  // Soft charge: the bytes are recorded even though the charge fails.
  EXPECT_FALSE(budget.Charge(600));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.used(), 1200u);
  EXPECT_EQ(budget.rejections(), 1u);
  // Sticky: dropping back under the limit does not clear the flag...
  budget.Uncharge(600);
  EXPECT_TRUE(budget.exhausted());
  // ...only an explicit reset does (pooled-budget re-arm).
  budget.ResetExhausted();
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.used(), 600u);
}

TEST(MemoryBudgetTest, PeakSurvivesUncharge) {
  MemoryBudget budget;
  budget.Charge(500);
  budget.Charge(700);
  budget.Uncharge(1200);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 1200u);
}

TEST(MemoryBudgetTest, MarkExhaustedLatchesWithoutCharging) {
  MemoryBudget budget(1000);
  budget.MarkExhausted();
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.rejections(), 1u);
}

TEST(MemoryBudgetTest, ChargePropagatesToParent) {
  MemoryBudget global(0);
  MemoryBudget job(0, &global);
  EXPECT_TRUE(job.Charge(100));
  EXPECT_EQ(job.used(), 100u);
  EXPECT_EQ(global.used(), 100u);
  job.Uncharge(100);
  EXPECT_EQ(job.used(), 0u);
  EXPECT_EQ(global.used(), 0u);
}

TEST(MemoryBudgetTest, ParentLimitExhaustsChildOnly) {
  // A service-global parent pushed over by one greedy job must latch the
  // *charging* job's flag, not its own: the global ledger recovers as soon
  // as that job releases, so jobs admitted later run normally.
  MemoryBudget global(1000);
  MemoryBudget greedy(0, &global);
  EXPECT_FALSE(greedy.Charge(2000));
  EXPECT_TRUE(greedy.exhausted());
  EXPECT_FALSE(global.exhausted());
  EXPECT_EQ(global.rejections(), 1u);
  greedy.Uncharge(2000);

  MemoryBudget next(0, &global);
  EXPECT_TRUE(next.Charge(500));
  EXPECT_FALSE(next.exhausted());
}

TEST(MemoryBudgetTest, ChildLimitDoesNotPoisonParent) {
  MemoryBudget global(0);
  MemoryBudget job(100, &global);
  EXPECT_FALSE(job.Charge(200));
  EXPECT_TRUE(job.exhausted());
  EXPECT_FALSE(global.exhausted());
  EXPECT_EQ(job.rejections(), 1u);
  EXPECT_EQ(global.rejections(), 0u);
}

TEST(MemoryBudgetTest, ConcurrentChargesStayConsistent) {
  MemoryBudget global(0);
  MemoryBudget job(0, &global);
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&job] {
      for (int i = 0; i < kIterations; ++i) {
        job.Charge(3);
        job.Uncharge(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expected =
      uint64_t{kThreads} * kIterations * 2;  // +3 -1 per iteration
  EXPECT_EQ(job.used(), expected);
  EXPECT_EQ(global.used(), expected);
  EXPECT_GE(job.peak_bytes(), expected);
}

TEST(MemoryBudgetTest, StopConditionReportsMemoryExhausted) {
  MemoryBudget budget(100);
  StopCondition stop(nullptr, nullptr, &budget);
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kNone);
  budget.Charge(200);
  EXPECT_EQ(stop.Check(), StopCause::kMemoryExhausted);
}

TEST(MemoryBudgetTest, ArenaChargesBlockCapacity) {
  MemoryBudget budget;
  Arena arena;
  arena.SetBudget(&budget);
  arena.AllocateBytes(1 << 12, 8);
  EXPECT_EQ(budget.used(), arena.stats().capacity_bytes);
  EXPECT_GT(budget.used(), 0u);
  const uint64_t charged = budget.used();
  // Reset keeps the blocks: the retained capacity stays charged.
  arena.Reset();
  EXPECT_EQ(budget.used(), charged);
  // Detach uncharges everything.
  arena.SetBudget(nullptr);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak_bytes(), charged);
}

TEST(MemoryBudgetTest, WarmArenaChargesRetainedCapacityOnAttach) {
  Arena arena;
  arena.AllocateBytes(1 << 12, 8);  // warm it with no budget attached
  arena.Reset();
  const uint64_t capacity = arena.stats().capacity_bytes;
  ASSERT_GT(capacity, 0u);

  MemoryBudget budget;
  arena.SetBudget(&budget);
  EXPECT_EQ(budget.used(), capacity);
  arena.SetBudget(nullptr);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, ArenaDestructionUnchargesBudget) {
  MemoryBudget budget;
  {
    Arena arena;
    arena.SetBudget(&budget);
    arena.AllocateBytes(1 << 12, 8);
    EXPECT_GT(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, ArenaReleaseUnchargesBudget) {
  MemoryBudget budget;
  Arena arena;
  arena.SetBudget(&budget);
  arena.AllocateBytes(1 << 12, 8);
  EXPECT_GT(budget.used(), 0u);
  arena.Release();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, ArenaShrinkToUnchargesDroppedBlocks) {
  MemoryBudget budget;
  Arena arena(1 << 10);
  arena.SetBudget(&budget);
  // Force several geometrically growing blocks.
  for (int i = 0; i < 8; ++i) arena.AllocateBytes(1 << 12, 8);
  arena.Reset();
  const uint64_t before = arena.stats().capacity_bytes;
  ASSERT_GT(before, uint64_t{1} << 13);
  arena.ShrinkTo(1 << 13);
  EXPECT_LE(arena.stats().capacity_bytes, uint64_t{1} << 13);
  EXPECT_EQ(budget.used(), arena.stats().capacity_bytes);
  // The arena still works after shedding.
  void* p = arena.AllocateBytes(64, 8);
  EXPECT_NE(p, nullptr);
}

}  // namespace
}  // namespace daf

#include "util/stop.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/timer.h"

namespace daf {
namespace {

TEST(CancelTokenTest, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CancelIsStickyUntilReset) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CancelFromAnotherThreadBecomesVisible) {
  CancelToken token;
  std::thread canceller([&] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(StopConditionTest, DefaultIsUnarmedAndNeverFires) {
  StopCondition stop;
  EXPECT_FALSE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kNone);
}

TEST(StopConditionTest, NullSourcesStayUnarmed) {
  StopCondition stop(nullptr, nullptr);
  EXPECT_FALSE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kNone);
}

TEST(StopConditionTest, CancelSourceFiresOnCancel) {
  CancelToken token;
  StopCondition stop(nullptr, &token);
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kNone);
  token.Cancel();
  EXPECT_EQ(stop.Check(), StopCause::kCancel);
}

TEST(StopConditionTest, DeadlineSourceFiresOnExpiry) {
  // A 0-ms Deadline is disabled; use an already-expired 1-ms one.
  Deadline deadline(1);
  while (!deadline.Expired()) {
  }
  StopCondition stop(&deadline, nullptr);
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kDeadline);
}

TEST(StopConditionTest, DisabledDeadlineNeverFires) {
  Deadline deadline(0);
  StopCondition stop(&deadline, nullptr);
  // Armed (a source is attached) but the source can never trigger.
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.Check(), StopCause::kNone);
}

TEST(StopConditionTest, CancelWinsOverExpiredDeadline) {
  Deadline deadline(1);
  while (!deadline.Expired()) {
  }
  CancelToken token;
  token.Cancel();
  StopCondition stop(&deadline, &token);
  EXPECT_EQ(stop.Check(), StopCause::kCancel);
}

}  // namespace
}  // namespace daf

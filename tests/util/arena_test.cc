#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace daf {
namespace {

TEST(ArenaTest, FirstAllocationAcquiresABlock) {
  Arena arena;
  EXPECT_EQ(arena.stats().capacity_bytes, 0u);  // lazy: nothing until used
  uint32_t* p = arena.AllocateArray<uint32_t>(10);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 10 * sizeof(uint32_t));  // must be writable
  EXPECT_EQ(arena.stats().blocks_acquired, 1u);
  EXPECT_EQ(arena.stats().bytes_used, 10 * sizeof(uint32_t));
  EXPECT_GT(arena.stats().capacity_bytes, 0u);
}

TEST(ArenaTest, ZeroCountAllocationReturnsNonNull) {
  Arena arena;
  EXPECT_NE(arena.AllocateArray<uint64_t>(0), nullptr);
}

TEST(ArenaTest, AllocationsAreAlignedForTheirType) {
  Arena arena;
  arena.AllocateArray<char>(1);  // misalign the bump pointer
  uint64_t* p64 = arena.AllocateArray<uint64_t>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % alignof(uint64_t), 0u);
  arena.AllocateArray<char>(3);
  uint32_t* p32 = arena.AllocateArray<uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p32) % alignof(uint32_t), 0u);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);  // small first block: the sequence spans several blocks
  std::vector<uint32_t*> arrays;
  for (uint32_t i = 0; i < 32; ++i) {
    uint32_t* a = arena.AllocateArray<uint32_t>(100);
    for (uint32_t j = 0; j < 100; ++j) a[j] = i;
    arrays.push_back(a);
  }
  for (uint32_t i = 0; i < 32; ++i) {
    for (uint32_t j = 0; j < 100; ++j) {
      ASSERT_EQ(arrays[i][j], i) << "array " << i << " was clobbered";
    }
  }
  EXPECT_GE(arena.stats().blocks_acquired, 2u);
}

TEST(ArenaTest, GrowthIsGeometricNotLinear) {
  Arena arena(256);
  for (int i = 0; i < 1000; ++i) arena.AllocateArray<uint64_t>(16);
  // 128 KB served from a 256-byte start: geometric growth needs ~10 blocks,
  // linear growth would need ~500.
  EXPECT_LE(arena.stats().blocks_acquired, 16u);
}

TEST(ArenaTest, ResetMakesAReplayAllocationFree) {
  Arena arena(256);
  auto run_epoch = [&arena] {
    for (int i = 0; i < 50; ++i) {
      arena.AllocateArray<uint64_t>(64);
      arena.AllocateArray<uint32_t>(37);
      arena.AllocateArray<char>(5);
    }
  };
  run_epoch();
  ASSERT_GT(arena.stats().blocks_acquired, 0u);
  const uint64_t capacity = arena.stats().capacity_bytes;

  arena.Reset();
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  EXPECT_EQ(arena.stats().blocks_acquired, 0u);
  EXPECT_EQ(arena.stats().capacity_bytes, capacity);  // blocks retained

  run_epoch();  // identical sequence: served entirely from retained blocks
  EXPECT_EQ(arena.stats().blocks_acquired, 0u);
  EXPECT_EQ(arena.stats().capacity_bytes, capacity);
}

TEST(ArenaTest, SmallerEpochAfterResetAcquiresNothing) {
  Arena arena(256);
  for (int i = 0; i < 100; ++i) arena.AllocateArray<uint64_t>(32);
  arena.Reset();
  for (int i = 0; i < 10; ++i) arena.AllocateArray<uint64_t>(32);
  EXPECT_EQ(arena.stats().blocks_acquired, 0u);
}

TEST(ArenaTest, PeakBytesIsTheEpochHighWaterMark) {
  Arena arena;
  arena.AllocateArray<char>(10000);
  EXPECT_EQ(arena.stats().peak_bytes, 10000u);
  arena.Reset();
  arena.AllocateArray<char>(500);
  EXPECT_EQ(arena.stats().bytes_used, 500u);
  EXPECT_EQ(arena.stats().peak_bytes, 10000u);  // lifetime, not epoch
  arena.AllocateArray<char>(12000);
  EXPECT_EQ(arena.stats().peak_bytes, 12500u);
}

TEST(ArenaTest, OversizedRequestGetsADedicatedBlock) {
  Arena arena(256);
  char* big = arena.AllocateArray<char>(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 1 << 20);
  EXPECT_GE(arena.stats().capacity_bytes, uint64_t{1} << 20);
}

TEST(ArenaTest, ReleaseReturnsAllMemoryToTheSystem) {
  Arena arena;
  arena.AllocateArray<uint64_t>(1000);
  ASSERT_GT(arena.stats().capacity_bytes, 0u);
  arena.Release();
  EXPECT_EQ(arena.stats().capacity_bytes, 0u);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  // Usable again after a Release: re-warms from scratch.
  uint32_t* p = arena.AllocateArray<uint32_t>(8);
  ASSERT_NE(p, nullptr);
  p[7] = 42;
  EXPECT_EQ(arena.stats().blocks_acquired, 1u);
}

}  // namespace
}  // namespace daf

// HwTopology sysfs parsing against fixture trees (single-socket,
// dual-socket, SMT), the graceful flat fallback, pin-order policy, and
// MakePinPlan assignment.

#include "util/topo.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace daf {
namespace {

namespace fs = std::filesystem;

// Builds cpuN/topology/{physical_package_id,core_id} under `root`.
void AddCpu(const fs::path& root, uint32_t id, uint32_t package,
            uint32_t core, bool online = true) {
  const fs::path dir = root / ("cpu" + std::to_string(id)) / "topology";
  fs::create_directories(dir);
  std::ofstream(dir / "physical_package_id") << package << "\n";
  std::ofstream(dir / "core_id") << core << "\n";
  if (!online) {
    std::ofstream(dir.parent_path() / "online") << 0 << "\n";
  }
}

class TopoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("topo_fixture_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(TopoTest, SingleSocketNoSmt) {
  for (uint32_t i = 0; i < 4; ++i) AddCpu(root_, i, 0, i);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  ASSERT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.num_sockets, 1u);
  EXPECT_EQ(topo.num_cores, 4u);
  ASSERT_EQ(topo.cpus.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(topo.cpus[i].id, i);
    EXPECT_EQ(topo.cpus[i].socket, 0u);
    EXPECT_FALSE(topo.cpus[i].smt_sibling);
  }
}

TEST_F(TopoTest, DualSocketDenseRemap) {
  // Sparse, weird sysfs ids: packages 3 and 7, per-socket core ids
  // restarting at 0 — everything must re-map densely.
  AddCpu(root_, 0, 3, 0);
  AddCpu(root_, 1, 3, 1);
  AddCpu(root_, 2, 7, 0);
  AddCpu(root_, 3, 7, 1);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  ASSERT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.num_sockets, 2u);
  EXPECT_EQ(topo.num_cores, 4u);
  EXPECT_EQ(topo.SocketOfCpu(0), 0u);
  EXPECT_EQ(topo.SocketOfCpu(1), 0u);
  EXPECT_EQ(topo.SocketOfCpu(2), 1u);
  EXPECT_EQ(topo.SocketOfCpu(3), 1u);
  // (package 3, core 0) and (package 7, core 0) are distinct cores.
  EXPECT_NE(topo.cpus[0].core, topo.cpus[2].core);
}

TEST_F(TopoTest, SmtSiblingsDetected) {
  // The common Linux enumeration: cpu0-3 are core primaries, cpu4-7 their
  // hyperthread siblings (same core_id, higher cpu id).
  for (uint32_t i = 0; i < 4; ++i) AddCpu(root_, i, 0, i);
  for (uint32_t i = 0; i < 4; ++i) AddCpu(root_, 4 + i, 0, i);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  ASSERT_EQ(topo.cpus.size(), 8u);
  EXPECT_EQ(topo.num_cores, 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(topo.cpus[i].smt_sibling) << "cpu" << i;
    EXPECT_TRUE(topo.cpus[4 + i].smt_sibling) << "cpu" << 4 + i;
    EXPECT_EQ(topo.cpus[i].core, topo.cpus[4 + i].core);
  }
  // Pin order places all four primaries before any sibling.
  const std::vector<uint32_t> order = topo.PinOrder();
  for (size_t i = 0; i < 4; ++i) EXPECT_LT(order[i], 4u) << "slot " << i;
}

TEST_F(TopoTest, PinOrderIsSocketMajor) {
  // Dual socket with SMT: socket 0 = cpus {0,1 primaries, 4,5 siblings},
  // socket 1 = {2,3 primaries, 6,7 siblings}.
  AddCpu(root_, 0, 0, 0);
  AddCpu(root_, 1, 0, 1);
  AddCpu(root_, 2, 1, 2);
  AddCpu(root_, 3, 1, 3);
  AddCpu(root_, 4, 0, 0);
  AddCpu(root_, 5, 0, 1);
  AddCpu(root_, 6, 1, 2);
  AddCpu(root_, 7, 1, 3);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  const std::vector<uint32_t> order = topo.PinOrder();
  const std::vector<uint32_t> expected = {0, 1, 4, 5, 2, 3, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST_F(TopoTest, OfflineCpusSkipped) {
  AddCpu(root_, 0, 0, 0);
  AddCpu(root_, 1, 0, 1);
  AddCpu(root_, 2, 0, 2, /*online=*/false);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  ASSERT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.cpus.size(), 2u);
}

TEST_F(TopoTest, MissingSysfsFallsBackFlat) {
  const HwTopology topo =
      HwTopology::FromSysfs((root_ / "does_not_exist").string());
  EXPECT_FALSE(topo.from_sysfs);
  EXPECT_EQ(topo.num_sockets, 1u);
  EXPECT_GE(topo.cpus.size(), 1u);  // never empty, never throws
}

TEST_F(TopoTest, MalformedTopologyFilesFallBackFlat) {
  const fs::path dir = root_ / "cpu0" / "topology";
  fs::create_directories(dir);
  std::ofstream(dir / "physical_package_id") << "not-a-number\n";
  std::ofstream(dir / "core_id") << "-5\n";
  const HwTopology topo = HwTopology::FromSysfs(root_.string());
  EXPECT_FALSE(topo.from_sysfs);
  EXPECT_GE(topo.cpus.size(), 1u);
}

TEST(TopoFlatTest, FlatShapes) {
  const HwTopology topo = HwTopology::Flat(3);
  EXPECT_EQ(topo.num_sockets, 1u);
  EXPECT_EQ(topo.num_cores, 3u);
  EXPECT_EQ(topo.cpus.size(), 3u);
  EXPECT_EQ(HwTopology::Flat(0).cpus.size(), 1u);  // clamped
  EXPECT_EQ(topo.SocketOfCpu(999), 0u);            // unknown id -> socket 0
}

TEST(TopoGetTest, MachineTopologyIsSane) {
  const HwTopology& topo = HwTopology::Get();
  EXPECT_GE(topo.cpus.size(), 1u);
  EXPECT_GE(topo.num_sockets, 1u);
  EXPECT_LT(topo.CurrentSocket(), topo.num_sockets);
}

TEST_F(TopoTest, MakePinPlanAssignsAndWraps) {
  AddCpu(root_, 0, 0, 0);
  AddCpu(root_, 1, 0, 1);
  AddCpu(root_, 2, 1, 2);
  AddCpu(root_, 3, 1, 3);
  const HwTopology topo = HwTopology::FromSysfs(root_.string());

  const PinPlan plan = MakePinPlan(topo, 6, /*pin=*/true);
  ASSERT_TRUE(plan.active);
  ASSERT_EQ(plan.cpu.size(), 6u);
  // Socket-major order 0,1,2,3 then wrap.
  EXPECT_EQ(plan.cpu[0], 0);
  EXPECT_EQ(plan.cpu[1], 1);
  EXPECT_EQ(plan.cpu[2], 2);
  EXPECT_EQ(plan.cpu[3], 3);
  EXPECT_EQ(plan.cpu[4], 0);
  EXPECT_EQ(plan.socket[0], 0u);
  EXPECT_EQ(plan.socket[1], 0u);
  EXPECT_EQ(plan.socket[2], 1u);
  EXPECT_EQ(plan.socket[3], 1u);

  // Disabled pinning and single-cpu topologies are inactive but still
  // sized (schedulers consume plan.socket unconditionally).
  const PinPlan off = MakePinPlan(topo, 4, /*pin=*/false);
  EXPECT_FALSE(off.active);
  EXPECT_EQ(off.socket, std::vector<uint32_t>(4, 0));
  const PinPlan single = MakePinPlan(HwTopology::Flat(1), 4, /*pin=*/true);
  EXPECT_FALSE(single.active);
}

TEST(TopoPinTest, PinCurrentThreadRoundTrips) {
  const HwTopology& topo = HwTopology::Get();
  // Pinning to the first known cpu must succeed on Linux; a bad cpu id
  // must fail without crashing.
  EXPECT_TRUE(PinCurrentThreadToCpu(static_cast<int>(topo.cpus[0].id)));
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
}

}  // namespace
}  // namespace daf

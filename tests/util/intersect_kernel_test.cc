// Randomized differential tests of the full intersection kernel matrix
// (scalar merge, gallop, SSE, AVX2, blocked bitmap, k-way dispatch) against
// a trivial std::set_intersection reference, over seeded input shapes:
// empty, disjoint, identical, dense runs, ratio sweeps, and unaligned
// lengths straddling the SIMD block widths. Every kernel must produce the
// identical sorted result on every shape — including vector kernels forced
// on directly (not through dispatch), so an AVX2 host exercises the real
// SIMD code paths no matter what DAF_DISABLE_SIMD says.

#include "util/intersect.h"

#include <algorithm>
#include <cstdlib>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace daf {
namespace {

using intersect_internal::CpuSupportsAvx2;
using intersect_internal::CpuSupportsSse;
using intersect_internal::IntersectAvx2Kernel;
using intersect_internal::IntersectSseKernel;

constexpr uint32_t kPoison = 0xdeadbeefu;

std::vector<uint32_t> Reference(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// n distinct sorted values in [0, universe); n is clamped to universe.
std::vector<uint32_t> RandomSortedUnique(std::mt19937& rng, size_t n,
                                         uint32_t universe) {
  n = std::min<size_t>(n, universe);
  std::set<uint32_t> values;
  std::uniform_int_distribution<uint32_t> dist(0, universe - 1);
  while (values.size() < n) values.insert(dist(rng));
  return {values.begin(), values.end()};
}

// A contiguous run [start, start + n) — the dense-CS-segment shape.
std::vector<uint32_t> DenseRun(uint32_t start, size_t n) {
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = start + static_cast<uint32_t>(i);
  return out;
}

// Runs one pointer kernel into a poisoned, padded buffer and returns the
// written prefix. Also asserts the kernel respected the output bound.
using KernelFn = size_t (*)(const uint32_t*, size_t, const uint32_t*, size_t,
                            uint32_t*);

std::vector<uint32_t> RunKernel(KernelFn kernel,
                                const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out(std::min(a.size(), b.size()) + kIntersectOutPad,
                            kPoison);
  const size_t count =
      kernel(a.data(), a.size(), b.data(), b.size(), out.data());
  EXPECT_LE(count, std::min(a.size(), b.size()));
  out.resize(count);
  return out;
}

// The kernels applicable to one (a, b) shape, all checked against the
// reference. The gallop kernel's contract wants (shorter, longer).
void CheckAllTwoWay(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b, uint32_t universe) {
  const std::vector<uint32_t> expected = Reference(a, b);

  EXPECT_EQ(RunKernel(IntersectMergeKernel, a, b), expected);
  const auto& shorter = a.size() <= b.size() ? a : b;
  const auto& longer = a.size() <= b.size() ? b : a;
  EXPECT_EQ(RunKernel(IntersectGallopKernel, shorter, longer), expected);
  if (CpuSupportsSse()) {
    EXPECT_EQ(RunKernel(IntersectSseKernel, a, b), expected);
    EXPECT_EQ(RunKernel(IntersectSseKernel, b, a), expected);
  }
  if (CpuSupportsAvx2()) {
    EXPECT_EQ(RunKernel(IntersectAvx2Kernel, a, b), expected);
    EXPECT_EQ(RunKernel(IntersectAvx2Kernel, b, a), expected);
  }
  if (universe > 0) {
    const uint32_t* lists[2] = {a.data(), b.data()};
    const size_t sizes[2] = {a.size(), b.size()};
    BitmapScratch scratch;
    std::vector<uint32_t> out(a.size() + 1, kPoison);
    const size_t count =
        IntersectBitmapKernel(lists, sizes, 2, universe, &scratch, out.data());
    ASSERT_LE(count, a.size());
    out.resize(count);
    EXPECT_EQ(out, expected);
  }
  // The public dispatch entry (whatever kernel it picks must agree too).
  std::vector<uint32_t> via_sorted{kPoison};
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), &via_sorted);
  EXPECT_EQ(via_sorted, expected);
}

TEST(IntersectKernelMatrixTest, EmptyDisjointIdentical) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> some = {1, 5, 9, 12, 40};
  CheckAllTwoWay(empty, some, 64);
  CheckAllTwoWay(some, empty, 64);
  CheckAllTwoWay(empty, empty, 64);
  CheckAllTwoWay(some, some, 64);  // identical
  const std::vector<uint32_t> evens = DenseRun(0, 32);
  std::vector<uint32_t> odds;
  for (uint32_t i = 0; i < 32; ++i) odds.push_back(100 + i);
  CheckAllTwoWay(evens, odds, 160);  // fully disjoint ranges
}

// Unaligned lengths around the SSE (4), AVX2 (8) and dispatch-threshold
// (16) block widths: the scalar tails and the last partial block are where
// SIMD intersection bugs live.
TEST(IntersectKernelMatrixTest, LengthSweepNearSimdWidths) {
  std::mt19937 rng(7);
  for (size_t na = 0; na <= 20; ++na) {
    for (size_t nb : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                      size_t{7}, size_t{8}, size_t{9}, size_t{15}, size_t{16},
                      size_t{17}, size_t{20}}) {
      const uint32_t universe = 48;
      CheckAllTwoWay(RandomSortedUnique(rng, na, universe),
                     RandomSortedUnique(rng, nb, universe), universe);
    }
  }
}

// ~2.5k random shapes across density and ratio regimes.
TEST(IntersectKernelMatrixTest, RandomizedShapes) {
  std::mt19937 rng(12345);
  const uint32_t universes[] = {8, 32, 64, 200, 1000, 5000};
  const double densities[] = {0.02, 0.1, 0.3, 0.7, 1.0};
  int shapes = 0;
  for (int round = 0; round < 17; ++round) {
    for (uint32_t universe : universes) {
      for (double da : densities) {
        // Pair each a-density with a swept b-density to cover ratio space.
        const double db = densities[(round + 1) % 5];
        const size_t na = static_cast<size_t>(universe * da);
        const size_t nb = static_cast<size_t>(universe * db);
        CheckAllTwoWay(RandomSortedUnique(rng, na, universe),
                       RandomSortedUnique(rng, nb, universe), universe);
        ++shapes;
      }
    }
  }
  EXPECT_GE(shapes, 500);
}

// Extreme size ratios (the galloping regime) including ratios far past
// kGallopRatio, plus dense runs with partial overlap.
TEST(IntersectKernelMatrixTest, RatioSweepAndDenseRuns) {
  std::mt19937 rng(99);
  for (size_t small : {size_t{1}, size_t{2}, size_t{5}, size_t{16}}) {
    for (size_t ratio : {size_t{8}, size_t{32}, size_t{33}, size_t{100},
                         size_t{1000}}) {
      const size_t large = small * ratio;
      const uint32_t universe = static_cast<uint32_t>(large * 2 + 8);
      CheckAllTwoWay(RandomSortedUnique(rng, small, universe),
                     RandomSortedUnique(rng, large, universe), universe);
    }
  }
  for (uint32_t offset : {0u, 1u, 7u, 31u, 64u, 127u, 128u}) {
    CheckAllTwoWay(DenseRun(0, 128), DenseRun(offset, 128), offset + 128);
  }
}

// Folding reference for k lists.
std::vector<uint32_t> ReferenceKWay(
    const std::vector<std::vector<uint32_t>>& lists) {
  std::vector<uint32_t> acc = lists[0];
  for (size_t i = 1; i < lists.size(); ++i) {
    acc = Reference(acc, lists[i]);
  }
  return acc;
}

TEST(IntersectKWayTest, MatchesFoldedReferenceAcrossKAndDensity) {
  std::mt19937 rng(31337);
  KWayScratch scratch;
  IntersectStats stats;
  int bitmap_shapes = 0, chain_shapes = 0;
  for (size_t k : {size_t{2}, size_t{3}, size_t{5}}) {
    for (uint32_t universe : {16u, 64u, 256u, 2048u}) {
      for (double density : {0.02, 0.2, 0.6, 1.0}) {
        for (int round = 0; round < 8; ++round) {
          std::vector<std::vector<uint32_t>> lists;
          std::vector<KWayList> views;
          for (size_t i = 0; i < k; ++i) {
            const size_t n = static_cast<size_t>(universe * density);
            lists.push_back(RandomSortedUnique(rng, n, universe));
          }
          for (const auto& list : lists) {
            views.push_back(KWayList{list.data(), list.size()});
          }
          const uint64_t bitmap_before = stats.bitmap;
          std::vector<uint32_t> out{kPoison};
          IntersectKWay(views.data(), views.size(), universe, &scratch, &out,
                        &stats);
          EXPECT_EQ(out, ReferenceKWay(lists))
              << "k=" << k << " universe=" << universe
              << " density=" << density;
          if (stats.bitmap > bitmap_before) {
            ++bitmap_shapes;
          } else {
            ++chain_shapes;
          }
        }
      }
    }
  }
  // Both k-way strategies must actually have run in this sweep.
  EXPECT_GT(bitmap_shapes, 0);
  EXPECT_GT(chain_shapes, 0);
}

TEST(IntersectKWayTest, SingleListAndEmptyList) {
  KWayScratch scratch;
  std::vector<uint32_t> a = {3, 7, 9};
  KWayList one{a.data(), a.size()};
  std::vector<uint32_t> out;
  IntersectKWay(&one, 1, 16, &scratch, &out);
  EXPECT_EQ(out, a);

  std::vector<uint32_t> empty_list;
  KWayList views[2] = {{a.data(), a.size()},
                       {empty_list.data(), empty_list.size()}};
  out.assign(5, kPoison);
  IntersectKWay(views, 2, 16, &scratch, &out);
  EXPECT_TRUE(out.empty());

  IntersectKWay(views, 0, 16, &scratch, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectStatsTest, DispatchCountsKernelSelections) {
  std::mt19937 rng(5);
  IntersectStats stats;
  std::vector<uint32_t> out;

  // > kGallopRatio size ratio: the galloping probe.
  const auto small = RandomSortedUnique(rng, 4, 10000);
  const auto huge = RandomSortedUnique(rng, 4 * (kGallopRatio + 1), 10000);
  IntersectSorted(small.data(), small.size(), huge.data(), huge.size(), &out,
                  &stats);
  EXPECT_EQ(stats.gallop, 1u);

  // Comparable sizes >= kSimdMinSize: SIMD when the CPU has it, else merge.
  const auto a = RandomSortedUnique(rng, 64, 1000);
  const auto b = RandomSortedUnique(rng, 80, 1000);
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), &out, &stats);
  if (DetectedSimdLevel() != SimdLevel::kNone) {
    EXPECT_EQ(stats.simd, 1u);
    EXPECT_EQ(stats.merge, 0u);
  } else {
    EXPECT_EQ(stats.simd, 0u);
    EXPECT_EQ(stats.merge, 1u);
  }

  // Tiny comparable sizes: always the scalar merge.
  const auto ta = RandomSortedUnique(rng, 5, 40);
  const auto tb = RandomSortedUnique(rng, 6, 40);
  const uint64_t merge_before = stats.merge;
  IntersectSorted(ta.data(), ta.size(), tb.data(), tb.size(), &out, &stats);
  EXPECT_EQ(stats.merge, merge_before + 1);
}

TEST(SimdLevelTest, EnvDisableOverridesCpu) {
  const char* saved = std::getenv("DAF_DISABLE_SIMD");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("DAF_DISABLE_SIMD", "1", 1);
  EXPECT_EQ(ComputeSimdLevel(), SimdLevel::kNone);
  setenv("DAF_DISABLE_SIMD", "0", 1);
  const SimdLevel enabled = ComputeSimdLevel();
  unsetenv("DAF_DISABLE_SIMD");
  EXPECT_EQ(ComputeSimdLevel(), enabled);

  // The env-enabled level must reflect the CPU.
  if (CpuSupportsAvx2()) {
    EXPECT_EQ(enabled, SimdLevel::kAvx2);
  } else if (CpuSupportsSse()) {
    EXPECT_EQ(enabled, SimdLevel::kSse);
  } else {
    EXPECT_EQ(enabled, SimdLevel::kNone);
  }

  if (saved != nullptr) {
    setenv("DAF_DISABLE_SIMD", saved_value.c_str(), 1);
  } else {
    unsetenv("DAF_DISABLE_SIMD");
  }
}

}  // namespace
}  // namespace daf

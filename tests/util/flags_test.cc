#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace daf {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags;
  int64_t& k = flags.Int64("k", 42, "");
  std::string& name = flags.String("name", "x", "");
  bool& flag = flags.Bool("verbose", false, "");
  double& d = flags.Double("ratio", 0.5, "");
  Argv argv({"prog"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(k, 42);
  EXPECT_EQ(name, "x");
  EXPECT_FALSE(flag);
  EXPECT_DOUBLE_EQ(d, 0.5);
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags;
  int64_t& k = flags.Int64("k", 0, "");
  std::string& s = flags.String("s", "", "");
  Argv argv({"prog", "--k=17", "--s=hello"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(k, 17);
  EXPECT_EQ(s, "hello");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags;
  int64_t& k = flags.Int64("k", 0, "");
  double& r = flags.Double("r", 0, "");
  Argv argv({"prog", "--k", "-5", "--r", "2.25"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(k, -5);
  EXPECT_DOUBLE_EQ(r, 2.25);
}

TEST(FlagsTest, BareBoolSetsTrue) {
  FlagSet flags;
  bool& v = flags.Bool("verbose", false, "");
  Argv argv({"prog", "--verbose"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(v);
}

TEST(FlagsTest, BoolExplicitValues) {
  FlagSet flags;
  bool& a = flags.Bool("a", false, "");
  bool& b = flags.Bool("b", true, "");
  Argv argv({"prog", "--a=true", "--b=false"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  flags.Int64("k", 0, "");
  Argv argv({"prog", "--nope=1"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_NE(flags.error().find("nope"), std::string::npos);
}

TEST(FlagsTest, MalformedIntFails) {
  FlagSet flags;
  flags.Int64("k", 0, "");
  Argv argv({"prog", "--k=abc"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags;
  flags.Int64("k", 0, "");
  Argv argv({"prog", "--k"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagSet flags;
  Argv argv({"prog", "positional"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, OptionalStringDefault) {
  FlagSet flags;
  std::string& p = flags.OptionalString("profile", "", "-", "");
  Argv argv({"prog"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(p, "");
}

TEST(FlagsTest, OptionalStringBareTakesBareValue) {
  FlagSet flags;
  std::string& p = flags.OptionalString("profile", "", "-", "");
  Argv argv({"prog", "--profile"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(p, "-");
}

TEST(FlagsTest, OptionalStringEqualsSyntax) {
  FlagSet flags;
  std::string& p = flags.OptionalString("profile", "", "-", "");
  Argv argv({"prog", "--profile=out.json"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(p, "out.json");
}

TEST(FlagsTest, OptionalStringBareDoesNotConsumeNextFlag) {
  FlagSet flags;
  std::string& p = flags.OptionalString("profile", "", "-", "");
  int64_t& k = flags.Int64("k", 0, "");
  Argv argv({"prog", "--profile", "--k", "9"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(p, "-");
  EXPECT_EQ(k, 9);
}

}  // namespace
}  // namespace daf

#include "util/bitset.h"

#include <gtest/gtest.h>

namespace daf {
namespace {

TEST(BitsetTest, StartsCleared) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(65));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, ClearAllAndSetAll) {
  Bitset b(70);
  b.Set(5);
  b.Set(69);
  b.ClearAll();
  EXPECT_TRUE(b.None());
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(b.Test(i));
}

TEST(BitsetTest, SetAllDoesNotSpillPastSize) {
  Bitset b(65);
  b.SetAll();
  EXPECT_EQ(b.Count(), 65u);
}

TEST(BitsetTest, UnionWith) {
  Bitset a(128);
  Bitset b(128);
  a.Set(3);
  a.Set(64);
  b.Set(64);
  b.Set(127);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(64));
  EXPECT_TRUE(a.Test(127));
  EXPECT_EQ(a.Count(), 3u);
  // b unchanged.
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, IntersectWith) {
  Bitset a(80);
  Bitset b(80);
  a.Set(1);
  a.Set(70);
  b.Set(70);
  b.Set(2);
  a.IntersectWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(70));
}

TEST(BitsetTest, IsSubsetOf) {
  Bitset a(90);
  Bitset b(90);
  a.Set(10);
  b.Set(10);
  b.Set(20);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(BitsetTest, AssignCopiesContents) {
  Bitset a(64);
  Bitset b(64);
  b.Set(13);
  a.Assign(b);
  EXPECT_TRUE(a.Test(13));
  b.Set(14);
  EXPECT_FALSE(a.Test(14));  // deep copy
}

TEST(BitsetTest, EqualityAndToString) {
  Bitset a(5);
  Bitset b(5);
  a.Set(1);
  b.Set(1);
  EXPECT_EQ(a, b);
  a.Set(4);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.ToString(), "01001");
}

TEST(BitsetTest, ResizeClears) {
  Bitset a(10);
  a.Set(9);
  a.Resize(20);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_TRUE(a.None());
}

TEST(BitsetTest, ZeroSizeIsSafe) {
  Bitset a(0);
  EXPECT_TRUE(a.None());
  a.SetAll();
  EXPECT_TRUE(a.None());
  EXPECT_EQ(a.Count(), 0u);
}

}  // namespace
}  // namespace daf

#include "util/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "util/rng.h"

namespace daf {
namespace {

std::vector<uint32_t> SortedUnique(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<uint32_t> Reference(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  // Poison the output so stale contents from a previous call can't pass.
  std::vector<uint32_t> out = {0xdeadbeefu};
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), &out);
  return out;
}

TEST(IntersectTest, EmptyInputs) {
  EXPECT_TRUE(Intersect({}, {}).empty());
  EXPECT_TRUE(Intersect({1, 2, 3}, {}).empty());
  EXPECT_TRUE(Intersect({}, {1, 2, 3}).empty());
}

TEST(IntersectTest, BasicOverlap) {
  EXPECT_EQ(Intersect({1, 3, 5, 7}, {3, 4, 5, 6}),
            (std::vector<uint32_t>{3, 5}));
  EXPECT_EQ(Intersect({1, 2, 3}, {1, 2, 3}), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(Intersect({1, 3, 5}, {2, 4, 6}).empty());
}

TEST(IntersectTest, GallopingPathSymmetric) {
  // Size ratio far past kGallopRatio in both argument orders, including
  // keys below, inside, and above the long side's range.
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 4096; ++i) large.push_back(100 + i * 3);
  std::vector<uint32_t> small = {1, 100, 103, 5000, 12385, 12388, 999999};
  std::vector<uint32_t> expected = Reference(small, large);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(Intersect(small, large), expected);
  EXPECT_EQ(Intersect(large, small), expected);
}

TEST(IntersectTest, GallopingSingleElement) {
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 1000; ++i) large.push_back(i * 2);
  EXPECT_EQ(Intersect({500}, large), (std::vector<uint32_t>{500}));
  EXPECT_TRUE(Intersect({501}, large).empty());
  EXPECT_EQ(Intersect({0}, large), (std::vector<uint32_t>{0}));
  EXPECT_EQ(Intersect({1998}, large), (std::vector<uint32_t>{1998}));
  EXPECT_TRUE(Intersect({1999}, large).empty());
}

TEST(IntersectTest, BranchlessLowerBoundMatchesStd) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformInt(300);
    std::vector<uint32_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.UniformInt(1000)));
    }
    v = SortedUnique(std::move(v));
    for (int probe = 0; probe < 20; ++probe) {
      const uint32_t key = static_cast<uint32_t>(rng.UniformInt(1100));
      const size_t expected = static_cast<size_t>(
          std::lower_bound(v.begin(), v.end(), key) - v.begin());
      EXPECT_EQ(BranchlessLowerBound(v.data(), v.size(), key), expected)
          << "n=" << v.size() << " key=" << key;
    }
  }
}

TEST(IntersectTest, RandomizedAgainstStdSetIntersection) {
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    // Cover the merge path, both galloping directions, and the boundary
    // around the dispatch ratio.
    const size_t na = rng.UniformInt(80);
    const size_t ratio = 1 + rng.UniformInt(100);
    const size_t nb = rng.UniformInt(2) == 0 ? rng.UniformInt(80)
                                             : na * ratio + rng.UniformInt(8);
    const uint64_t universe = 1 + rng.UniformInt(4000);
    auto make = [&](size_t n) {
      std::vector<uint32_t> v;
      v.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<uint32_t>(rng.UniformInt(universe)));
      }
      return SortedUnique(std::move(v));
    };
    std::vector<uint32_t> a = make(na);
    std::vector<uint32_t> b = make(nb);
    EXPECT_EQ(Intersect(a, b), Reference(a, b))
        << "trial=" << trial << " |a|=" << a.size() << " |b|=" << b.size();
    EXPECT_EQ(Intersect(b, a), Reference(a, b));
  }
}

TEST(IntersectTest, OutputAliasesNeitherInput) {
  // The engine calls IntersectSorted with `out` = a scratch distinct from
  // both inputs; the contract clears the output first.
  std::vector<uint32_t> a = {1, 2, 3, 4};
  std::vector<uint32_t> b = {2, 4, 6};
  std::vector<uint32_t> out(100, 7);  // pre-sized garbage
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 4}));
}

}  // namespace
}  // namespace daf

#include "daf/dynamic_cs.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "daf/engine.h"
#include "dyn/delta_graph.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf::dyn {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

/// Soundness invariant: every embedding pair of the current graph must be
/// in the maintained bitmaps.
void ExpectCoversEmbeddings(const DynamicCandidateSpace& cs,
                            const Graph& query, const DeltaGraph& dg,
                            bool injective) {
  MatchOptions mo;
  mo.injective = injective;
  EmbeddingSet found;
  mo.callback = Collector(&found);
  std::shared_ptr<const Graph> snap = dg.Materialize();
  MatchResult r = DafMatch(query, *snap, mo);
  ASSERT_TRUE(r.ok);
  for (const auto& m : found) {
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      EXPECT_TRUE(cs.Has(u, m[u]))
          << "candidate (" << u << ", " << m[u] << ") missing";
    }
  }
}

/// Tightness sanity: no candidate may violate the label filter.
void ExpectLabelsRespected(const DynamicCandidateSpace& cs,
                           const Graph& query, const DeltaGraph& dg) {
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    const Label want = query.original_label(query.label(u));
    for (VertexId v = 0; v < dg.NumVertices(); ++v) {
      if (cs.Has(u, v)) {
        EXPECT_TRUE(dg.Alive(v));
        EXPECT_EQ(dg.OriginalLabel(v), want);
      }
    }
  }
}

TEST(DynamicCsTest, InitialBuildMatchesFreshCandidates) {
  // Triangle query A-B-C over a graph with one triangle.
  Graph query = testing::MakeCycle({1, 2, 3});
  Graph data = Graph::FromEdges({1, 2, 3, 1, 2},
                                {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {1, 3}});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, {});
  ExpectCoversEmbeddings(cs, query, dg, /*injective=*/true);
  ExpectLabelsRespected(cs, query, dg);
  EXPECT_FALSE(cs.EmptySomewhere());
}

TEST(DynamicCsTest, NewTriangleIsFloodedIn) {
  // The cyclic-dependency case that deadlocks a support-checked additive
  // fixpoint: three new vertices forming a brand-new triangle.
  Graph query = testing::MakeCycle({1, 2, 3});
  Graph data = Graph::FromEdges({1, 2, 3}, {{0, 1}, {1, 2}});  // no triangle
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace::Options options;
  options.rebuild_min_dirty_pairs = 1u << 30;  // force the incremental path
  DynamicCandidateSpace cs(query, dg, options);

  UpdateBatch batch;
  batch.AddVertex(1).AddVertex(2).AddVertex(3);
  batch.InsertEdge(3, 4).InsertEdge(4, 5).InsertEdge(5, 3);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  auto stats = cs.Apply(dg, net);
  EXPECT_FALSE(stats.rebuilt);
  EXPECT_GT(stats.added_pairs, 0u);
  EXPECT_TRUE(cs.Has(0, 3));
  EXPECT_TRUE(cs.Has(1, 4));
  EXPECT_TRUE(cs.Has(2, 5));
  ExpectCoversEmbeddings(cs, query, dg, true);
}

TEST(DynamicCsTest, RemovalCascades) {
  // Path query A-B-C; removing the only B-C data edge must also kill the
  // A-candidate whose support went through it.
  Graph query = testing::MakePath({1, 2, 3});
  Graph data = Graph::FromEdges({1, 2, 3}, {{0, 1}, {1, 2}});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace::Options options;
  options.rebuild_min_dirty_pairs = 1u << 30;
  DynamicCandidateSpace cs(query, dg, options);
  ASSERT_TRUE(cs.Has(0, 0));

  UpdateBatch batch;
  batch.RemoveEdge(1, 2);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  auto stats = cs.Apply(dg, net);
  EXPECT_FALSE(stats.rebuilt);
  EXPECT_GT(stats.removed_pairs, 0u);
  EXPECT_FALSE(cs.Has(2, 2));  // lost its edge
  EXPECT_FALSE(cs.Has(0, 0));  // cascaded: A's support chain broke
  EXPECT_TRUE(cs.EmptySomewhere());
}

TEST(DynamicCsTest, DirtyBudgetTriggersRebuild) {
  // Star with center label 1, leaves label 0; query is one 0-1 edge.
  Graph query = testing::MakePath({0, 1});
  Graph data = testing::MakeStar({1, 0, 0, 0});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace::Options options;
  options.rebuild_min_dirty_pairs = 0;
  options.rebuild_dirty_fraction = 0.0;  // any dirty work → rebuild
  DynamicCandidateSpace cs(query, dg, options);
  ASSERT_TRUE(cs.Has(0, 1));

  UpdateBatch batch;
  batch.RemoveEdge(0, 1);  // seeds re-checks at both endpoints
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  auto stats = cs.Apply(dg, net);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_FALSE(cs.Has(0, 1));
  ExpectCoversEmbeddings(cs, query, dg, true);
}

TEST(DynamicCsTest, RandomizedMaintenanceStaysSoundBothPaths) {
  for (bool injective : {true, false}) {
    for (bool force_incremental : {true, false}) {
      Rng rng(1000 + (injective ? 1 : 0) + (force_incremental ? 2 : 0));
      Graph data = testing::RandomDataGraph(35, 80, 3, rng);
      Graph query = testing::MakeCycle({0, 1, 2});
      DeltaGraph dg(std::move(data));
      DynamicCandidateSpace::Options options;
      options.injective = injective;
      if (force_incremental) {
        options.rebuild_min_dirty_pairs = 1u << 30;
      } else {
        options.rebuild_min_dirty_pairs = 0;
        options.rebuild_dirty_fraction = 0.0;
      }
      DynamicCandidateSpace cs(query, dg, options);
      for (int round = 0; round < 30; ++round) {
        UpdateBatch batch;
        for (int i = 0; i < 3; ++i) {
          const uint32_t n = dg.NumVertices();
          if (rng.Bernoulli(0.55)) {
            VertexId u = static_cast<VertexId>(rng.UniformInt(n));
            VertexId v = static_cast<VertexId>(rng.UniformInt(n));
            if (u != v && dg.Alive(u) && dg.Alive(v)) batch.InsertEdge(u, v);
          } else {
            auto edges = dg.CurrentEdges();
            if (!edges.empty()) {
              const auto& e =
                  edges[rng.UniformInt(edges.size())].first;
              batch.RemoveEdge(e.first, e.second);
            }
          }
        }
        NormalizedBatch net;
        ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
        auto stats = cs.Apply(dg, net);
        if (force_incremental) {
          EXPECT_FALSE(stats.rebuilt);
        }
        ExpectCoversEmbeddings(cs, query, dg, injective);
        ExpectLabelsRespected(cs, query, dg);
      }
    }
  }
}

}  // namespace
}  // namespace daf::dyn

#include "dyn/delta_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "graph/generators.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace daf::dyn {
namespace {

Graph SmallGraph() {
  // Labels: 0:A 1:B 2:A 3:B 4:C; path 0-1-2-3 plus edge 1-4.
  return Graph::FromEdges({10, 20, 10, 20, 30},
                          {{0, 1}, {1, 2}, {2, 3}, {1, 4}});
}

/// Reference view: edge map of the current graph per direct reads.
std::map<std::pair<VertexId, VertexId>, Label> EdgeMap(const DeltaGraph& dg) {
  std::map<std::pair<VertexId, VertexId>, Label> out;
  for (const auto& [e, l] : dg.CurrentEdges()) out[e] = l;
  return out;
}

TEST(DeltaGraphTest, InitialStateMatchesBase) {
  DeltaGraph dg(SmallGraph());
  EXPECT_EQ(dg.version(), 0u);
  EXPECT_EQ(dg.NumVertices(), 5u);
  EXPECT_EQ(dg.NumEdges(), 4u);
  EXPECT_TRUE(dg.HasEdge(0, 1));
  EXPECT_TRUE(dg.HasEdge(1, 0));
  EXPECT_FALSE(dg.HasEdge(0, 2));
  EXPECT_EQ(dg.OriginalLabel(0), 10u);
  EXPECT_EQ(dg.OriginalLabel(4), 30u);
  EXPECT_EQ(dg.Degree(1), 3u);
  EXPECT_EQ(dg.NeighborOriginalLabelCount(1, 10), 2u);
  EXPECT_EQ(dg.NeighborOriginalLabelCount(1, 30), 1u);
  EXPECT_EQ(dg.VerticesWithOriginalLabel(10),
            (std::vector<VertexId>{0, 2}));
}

TEST(DeltaGraphTest, InsertAndRemoveEdges) {
  DeltaGraph dg(SmallGraph());
  UpdateBatch batch;
  batch.InsertEdge(0, 3).RemoveEdge(1, 2);
  NormalizedBatch net;
  ApplyResult r = dg.ApplyBatch(batch, &net);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(r.inserted_edges, 1u);
  EXPECT_EQ(r.removed_edges, 1u);
  EXPECT_TRUE(dg.HasEdge(0, 3));
  EXPECT_FALSE(dg.HasEdge(1, 2));
  EXPECT_EQ(dg.NumEdges(), 4u);
  EXPECT_EQ(dg.Degree(2), 1u);
  EXPECT_EQ(dg.Degree(1), 2u);
  ASSERT_EQ(net.inserts.size(), 1u);
  EXPECT_EQ(net.removes.size(), 1u);
  // NLF view follows.
  EXPECT_EQ(dg.NeighborOriginalLabelCount(1, 10), 1u);
  EXPECT_EQ(dg.NeighborOriginalLabelCount(0, 20), 2u);
}

TEST(DeltaGraphTest, NetCancellationWithinBatch) {
  DeltaGraph dg(SmallGraph());
  // Removals run after insertions and take precedence: inserting and
  // removing a brand-new edge in one batch is a net no-op, and removing a
  // pre-existing edge wins over a same-batch duplicate insert.
  UpdateBatch batch;
  batch.InsertEdge(0, 3).RemoveEdge(0, 3).InsertEdge(0, 1).RemoveEdge(0, 1);
  NormalizedBatch net;
  ApplyResult r = dg.ApplyBatch(batch, &net);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(net.inserts.empty());
  ASSERT_EQ(net.removes.size(), 1u);
  EXPECT_FALSE(dg.HasEdge(0, 1));
  EXPECT_FALSE(dg.HasEdge(0, 3));
  EXPECT_EQ(dg.NumEdges(), 3u);
  // Version advances: the batch was applied.
  EXPECT_EQ(dg.version(), 1u);
}

TEST(DeltaGraphTest, EdgeLabelChangeAppearsInBothLists) {
  Graph base = Graph::FromLabeledEdges({1, 1, 1}, {{0, 1}, {1, 2}}, {5, 5});
  DeltaGraph dg(std::move(base));
  UpdateBatch batch;
  batch.InsertEdge(0, 1, 7);  // same edge, new label
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  ASSERT_EQ(net.removes.size(), 1u);
  ASSERT_EQ(net.inserts.size(), 1u);
  EXPECT_EQ(net.removes[0].edge_label, 5u);
  EXPECT_EQ(net.inserts[0].edge_label, 7u);
  EXPECT_TRUE(dg.HasEdgeWithLabel(0, 1, 7));
  EXPECT_FALSE(dg.HasEdgeWithLabel(0, 1, 5));
  EXPECT_EQ(dg.NumEdges(), 2u);
}

TEST(DeltaGraphTest, VertexAddConnectRemove) {
  DeltaGraph dg(SmallGraph());
  UpdateBatch batch;
  batch.AddVertex(30).InsertEdge(5, 0).InsertEdge(5, 2);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  EXPECT_EQ(dg.NumVertices(), 6u);
  EXPECT_TRUE(dg.Alive(5));
  EXPECT_EQ(dg.OriginalLabel(5), 30u);
  EXPECT_EQ(dg.Degree(5), 2u);
  EXPECT_TRUE(dg.HasEdge(5, 0));
  EXPECT_EQ(net.new_vertices, (std::vector<VertexId>{5}));

  UpdateBatch removal;
  removal.RemoveVertex(5);
  NormalizedBatch net2;
  ASSERT_TRUE(dg.ApplyBatch(removal, &net2).ok);
  EXPECT_FALSE(dg.Alive(5));
  EXPECT_EQ(dg.OriginalLabel(5), DeltaGraph::kTombstoneLabel);
  EXPECT_EQ(dg.Degree(5), 0u);
  EXPECT_FALSE(dg.HasEdge(5, 0));
  EXPECT_EQ(net2.removes.size(), 2u);  // incident edges expanded
  EXPECT_EQ(dg.NumVertices(), 6u);     // id space never shrinks

  // Operations on the tombstone are rejected (atomically).
  UpdateBatch bad;
  bad.InsertEdge(5, 1);
  ApplyResult r = dg.ApplyBatch(bad);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(dg.version(), 2u);
}

TEST(DeltaGraphTest, InvalidBatchIsAtomic) {
  DeltaGraph dg(SmallGraph());
  UpdateBatch batch;
  batch.InsertEdge(0, 3).InsertEdge(0, 99);  // second op invalid
  NormalizedBatch net;
  ApplyResult r = dg.ApplyBatch(batch, &net);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(dg.version(), 0u);
  EXPECT_FALSE(dg.HasEdge(0, 3));
  EXPECT_TRUE(net.Empty());
}

TEST(DeltaGraphTest, IgnoredOps) {
  DeltaGraph dg(SmallGraph());
  UpdateBatch batch;
  batch.InsertEdge(0, 1);   // duplicate of existing edge (same label)
  batch.InsertEdge(2, 2);   // self loop
  batch.RemoveEdge(0, 3);   // absent edge
  NormalizedBatch net;
  ApplyResult r = dg.ApplyBatch(batch, &net);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ignored_ops, 3u);
  EXPECT_TRUE(net.inserts.empty());
  EXPECT_TRUE(net.removes.empty());
}

TEST(DeltaGraphTest, DeltaApplyFaultLeavesGraphUntouched) {
  DeltaGraph dg(SmallGraph());
  FaultInjector::FireNth("delta_apply", 1);
  UpdateBatch batch;
  batch.InsertEdge(0, 3);
  ApplyResult r = dg.ApplyBatch(batch);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(dg.version(), 0u);
  EXPECT_FALSE(dg.HasEdge(0, 3));
  // Second attempt (one-shot fault consumed) succeeds.
  ApplyResult r2 = dg.ApplyBatch(batch);
  EXPECT_TRUE(r2.ok);
  EXPECT_TRUE(dg.HasEdge(0, 3));
  FaultInjector::Disarm();
}

TEST(DeltaGraphTest, MaterializePreservesIdsAndLabels) {
  DeltaGraph dg(SmallGraph());
  UpdateBatch batch;
  batch.AddVertex(40).InsertEdge(5, 4).RemoveEdge(0, 1).RemoveVertex(3);
  ASSERT_TRUE(dg.ApplyBatch(batch).ok);
  std::shared_ptr<const Graph> snap = dg.Materialize();
  ASSERT_EQ(snap->NumVertices(), dg.NumVertices());
  EXPECT_EQ(snap.get(), dg.Materialize().get());  // cached per version
  for (VertexId v = 0; v < dg.NumVertices(); ++v) {
    EXPECT_EQ(snap->original_label(snap->label(v)), dg.OriginalLabel(v))
        << "vertex " << v;
    EXPECT_EQ(snap->degree(v), dg.Degree(v)) << "vertex " << v;
  }
  EXPECT_EQ(snap->NumEdges(), dg.NumEdges());
  for (const auto& [e, l] : dg.CurrentEdges()) {
    EXPECT_TRUE(snap->HasEdgeWithLabel(e.first, e.second, l));
  }
}

TEST(DeltaGraphTest, RandomizedDifferentialAgainstMaterialized) {
  Rng rng(20260808);
  Graph base = testing::RandomDataGraph(40, 90, 3, rng);
  DeltaGraph::Options options;
  options.compaction_min_edges = 32;  // force frequent compaction
  options.compaction_ratio = 0.15;
  DeltaGraph dg(std::move(base), options);

  for (int round = 0; round < 60; ++round) {
    UpdateBatch batch;
    const int ops = 1 + static_cast<int>(rng.NextU64() % 6);
    for (int i = 0; i < ops; ++i) {
      const uint32_t n = dg.NumVertices();
      switch (rng.NextU64() % 10) {
        case 0:
          batch.AddVertex(static_cast<Label>(rng.NextU64() % 4));
          break;
        case 1:
        case 2: {
          // Remove a random existing edge.
          auto edges = dg.CurrentEdges();
          if (!edges.empty()) {
            const auto& [e, l] = edges[rng.NextU64() % edges.size()];
            (void)l;
            batch.RemoveEdge(e.first, e.second);
          }
          break;
        }
        case 3: {
          VertexId v = static_cast<VertexId>(rng.NextU64() % n);
          if (dg.Alive(v)) batch.RemoveVertex(v);
          break;
        }
        default: {
          VertexId u = static_cast<VertexId>(rng.NextU64() % n);
          VertexId v = static_cast<VertexId>(rng.NextU64() % n);
          if (u != v && dg.Alive(u) && dg.Alive(v)) {
            batch.InsertEdge(u, v, static_cast<Label>(rng.NextU64() % 3));
          }
          break;
        }
      }
    }
    ApplyResult r = dg.ApplyBatch(batch);
    ASSERT_TRUE(r.ok) << r.error;

    // Materialized CSR and overlay reads must agree on everything.
    std::shared_ptr<const Graph> snap = dg.Materialize();
    ASSERT_EQ(snap->NumVertices(), dg.NumVertices());
    ASSERT_EQ(snap->NumEdges(), dg.NumEdges());
    auto edge_map = EdgeMap(dg);
    uint64_t count = 0;
    for (VertexId v = 0; v < snap->NumVertices(); ++v) {
      EXPECT_EQ(snap->original_label(snap->label(v)), dg.OriginalLabel(v));
      EXPECT_EQ(snap->degree(v), dg.Degree(v));
      auto neighbors = snap->Neighbors(v);
      auto elabels = snap->NeighborEdgeLabels(v);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        EXPECT_TRUE(dg.HasEdgeWithLabel(v, neighbors[i], elabels[i]));
        if (v < neighbors[i]) {
          auto it = edge_map.find({v, neighbors[i]});
          ASSERT_NE(it, edge_map.end());
          EXPECT_EQ(it->second, elabels[i]);
          ++count;
        }
      }
    }
    EXPECT_EQ(count, edge_map.size());
  }
}

}  // namespace
}  // namespace daf::dyn

#include "dyn/delta_enumerate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "daf/engine.h"
#include "tests/test_util.h"

namespace daf::dyn {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

EmbeddingSet ToSet(const DeltaEnumResult& r) {
  EmbeddingSet out;
  for (const auto& m : r.embeddings) out.insert(m);
  return out;
}

EmbeddingSet MatchSet(const Graph& query, const Graph& data,
                      bool injective = true) {
  MatchOptions mo;
  mo.injective = injective;
  EmbeddingSet out;
  mo.callback = Collector(&out);
  MatchResult r = DafMatch(query, data, mo);
  EXPECT_TRUE(r.ok);
  return out;
}

DynamicCandidateSpace::Options IncrementalOptions(bool injective = true) {
  DynamicCandidateSpace::Options o;
  o.injective = injective;
  o.rebuild_min_dirty_pairs = 1u << 30;
  return o;
}

TEST(DeltaEnumerateTest, TriangleCreatedAndDestroyed) {
  Graph query = testing::MakeCycle({1, 1, 1});
  Graph data = Graph::FromEdges({1, 1, 1, 1}, {{0, 1}, {1, 2}, {2, 3}});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions());
  DeltaEnumerator en(query, cs);

  // Close the triangle 0-1-2.
  UpdateBatch batch;
  batch.InsertEdge(0, 2);
  NormalizedBatch net;
  ASSERT_TRUE(dg.Normalize(batch, &net, nullptr));
  EmbeddingSet before = MatchSet(query, *dg.Materialize());
  DeltaEnumResult destroyed = en.Destroyed(dg, net, {});
  EXPECT_TRUE(destroyed.embeddings.empty());
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumResult created = en.Created(dg, net, {});
  EXPECT_TRUE(created.complete);
  // Unlabeled triangle in a triangle: 6 embeddings, all new.
  EXPECT_EQ(created.embeddings.size(), 6u);
  EmbeddingSet after = MatchSet(query, *dg.Materialize());
  EXPECT_EQ(ToSet(created), after);
  EXPECT_TRUE(before.empty());

  // Now remove one triangle edge: all 6 are destroyed.
  UpdateBatch removal;
  removal.RemoveEdge(1, 2);
  NormalizedBatch net2;
  ASSERT_TRUE(dg.Normalize(removal, &net2, nullptr));
  DeltaEnumResult destroyed2 = en.Destroyed(dg, net2, {});
  EXPECT_EQ(ToSet(destroyed2), after);
  ASSERT_TRUE(dg.ApplyBatch(removal, &net2).ok);
  cs.Apply(dg, net2);
  DeltaEnumResult created2 = en.Created(dg, net2, {});
  EXPECT_TRUE(created2.embeddings.empty());
}

TEST(DeltaEnumerateTest, MultiChangedEdgeEmbeddingReportedOnce) {
  // Both edges of the path query are inserted by one batch.
  Graph query = testing::MakePath({1, 2, 1});
  Graph data = Graph::FromEdges({1, 2, 1}, {});
  // Disconnected data is fine; the query is what must be connected.
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions());
  DeltaEnumerator en(query, cs);

  UpdateBatch batch;
  batch.InsertEdge(0, 1).InsertEdge(1, 2);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumResult created = en.Created(dg, net, {});
  // Path 0-1-2 with labels 1-2-1: embeddings {0,1,2} and {2,1,0}; each
  // uses both inserted edges and must be reported exactly once.
  EXPECT_EQ(created.embeddings.size(), 2u);
  EXPECT_EQ(ToSet(created), MatchSet(query, *dg.Materialize()));
}

TEST(DeltaEnumerateTest, HomomorphismDedup) {
  // Symmetric path query, homomorphic matching: u0 and u2 may map to the
  // same data vertex, and both query edges map onto one data edge.
  Graph query = testing::MakePath({1, 2, 1});
  Graph data = Graph::FromEdges({1, 2}, {});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions(false));
  DeltaEnumerator en(query, cs);

  UpdateBatch batch;
  batch.InsertEdge(0, 1);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumResult created = en.Created(dg, net, {});
  // Only homomorphism: 0->0, 1->1, 2->0.
  ASSERT_EQ(created.embeddings.size(), 1u);
  EXPECT_EQ(created.embeddings[0], (std::vector<VertexId>{0, 1, 0}));
  EXPECT_EQ(ToSet(created),
            MatchSet(query, *dg.Materialize(), /*injective=*/false));
}

TEST(DeltaEnumerateTest, EdgeLabelChangeSwapsEmbeddings) {
  Graph query = Graph::FromLabeledEdges({1, 1}, {{0, 1}}, {7});
  Graph data = Graph::FromLabeledEdges({1, 1}, {{0, 1}}, {5});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions());
  DeltaEnumerator en(query, cs);
  EXPECT_TRUE(MatchSet(query, *dg.Materialize()).empty());

  UpdateBatch batch;
  batch.InsertEdge(0, 1, 7);  // label change 5 -> 7
  NormalizedBatch net;
  ASSERT_TRUE(dg.Normalize(batch, &net, nullptr));
  DeltaEnumResult destroyed = en.Destroyed(dg, net, {});
  EXPECT_TRUE(destroyed.embeddings.empty());  // nothing matched label 5
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumResult created = en.Created(dg, net, {});
  EXPECT_EQ(created.embeddings.size(), 2u);  // both orientations
  EXPECT_EQ(ToSet(created), MatchSet(query, *dg.Materialize()));
}

TEST(DeltaEnumerateTest, SingleVertexQuery) {
  Graph query = Graph::FromEdges({42}, {});
  Graph data = Graph::FromEdges({42, 7}, {{0, 1}});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions());
  DeltaEnumerator en(query, cs);

  UpdateBatch batch;
  batch.AddVertex(42).AddVertex(7);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumResult created = en.Created(dg, net, {});
  ASSERT_EQ(created.embeddings.size(), 1u);
  EXPECT_EQ(created.embeddings[0], (std::vector<VertexId>{2}));

  UpdateBatch removal;
  removal.RemoveVertex(2);
  NormalizedBatch net2;
  ASSERT_TRUE(dg.Normalize(removal, &net2, nullptr));
  DeltaEnumResult destroyed = en.Destroyed(dg, net2, {});
  ASSERT_EQ(destroyed.embeddings.size(), 1u);
  EXPECT_EQ(destroyed.embeddings[0], (std::vector<VertexId>{2}));
  ASSERT_TRUE(dg.ApplyBatch(removal, &net2).ok);
  cs.Apply(dg, net2);
}

TEST(DeltaEnumerateTest, LimitTruncates) {
  Graph query = testing::MakePath({1, 1});
  Graph data = Graph::FromEdges({1, 1, 1, 1}, {});
  DeltaGraph dg(std::move(data));
  DynamicCandidateSpace cs(query, dg, IncrementalOptions());
  DeltaEnumerator en(query, cs);

  UpdateBatch batch;
  batch.InsertEdge(0, 1).InsertEdge(2, 3).InsertEdge(0, 2);
  NormalizedBatch net;
  ASSERT_TRUE(dg.ApplyBatch(batch, &net).ok);
  cs.Apply(dg, net);
  DeltaEnumOptions limited;
  limited.limit = 2;
  DeltaEnumResult created = en.Created(dg, net, limited);
  EXPECT_FALSE(created.complete);
  EXPECT_EQ(created.embeddings.size(), 2u);
  DeltaEnumResult full = en.Created(dg, net, {});
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.embeddings.size(), 6u);  // 3 edges x 2 orientations
}

}  // namespace
}  // namespace daf::dyn

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/bruteforce.h"
#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

// Exhaustive interaction sweep of the engine options: every combination of
// (order, failing sets, leaf decomposition, boost, injectivity, refinement
// passes) must produce exactly the oracle's mapping set. This is the
// guard-rail for feature interactions (e.g. boost skipping under
// homomorphism semantics, failing sets with zero refinement passes).
class OptionsStressTest : public ::testing::TestWithParam<int> {};

TEST_P(OptionsStressTest, EveryOptionComboMatchesOracle) {
  Rng rng(5000 + GetParam());
  Graph data = daf::testing::RandomDataGraph(
      30 + static_cast<uint32_t>(rng.UniformInt(30)),
      70 + rng.UniformInt(120), 3, rng);
  auto extracted =
      ExtractRandomWalkQuery(data, 4 + rng.UniformInt(4), -1.0, rng);
  if (!extracted) GTEST_SKIP();
  const Graph& query = extracted->query;
  VertexEquivalence eq = VertexEquivalence::Compute(data);

  for (bool injective : {true, false}) {
    EmbeddingSet expected;
    baselines::MatcherOptions brute;
    brute.injective = injective;
    brute.callback = Collector(&expected);
    baselines::BruteForceMatch(query, data, brute);

    for (MatchOrder order :
         {MatchOrder::kPathSize, MatchOrder::kCandidateSize}) {
      for (bool failing : {false, true}) {
        for (bool leaves : {false, true}) {
          for (bool boost : {false, true}) {
            for (int steps : {0, 3}) {
              EmbeddingSet found;
              MatchOptions opts;
              opts.order = order;
              opts.use_failing_sets = failing;
              opts.leaf_decomposition = leaves;
              opts.injective = injective;
              opts.refinement_steps = steps;
              opts.equivalence = boost ? &eq : nullptr;
              opts.callback = Collector(&found);
              MatchResult result = DafMatch(query, data, opts);
              ASSERT_TRUE(result.ok);
              EXPECT_EQ(found, expected)
                  << "order=" << static_cast<int>(order)
                  << " failing=" << failing << " leaves=" << leaves
                  << " boost=" << boost << " injective=" << injective
                  << " steps=" << steps;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptionsStressTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace daf

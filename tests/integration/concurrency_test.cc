// Concurrent-safety suite: many threads running the DAF engine against one
// shared immutable data Graph with pooled MatchContexts, plus a mixed-load
// stress of the MatchService. Every concurrent result must equal the
// single-threaded ground truth — the shared graph and the CS build must be
// free of hidden mutable state. Run these under -DDAF_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "daf/cursor.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "service/context_pool.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf {
namespace {

using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;
using daf::testing::MakeStar;
using daf::testing::RandomDataGraph;

std::vector<Graph> TestQueries() {
  std::vector<Graph> queries;
  queries.push_back(MakePath({0, 1, 0}));
  queries.push_back(MakeCycle({0, 1, 2}));
  queries.push_back(MakeClique({0, 0, 0}));
  queries.push_back(MakeStar({1, 0, 0, 2}));
  queries.push_back(MakePath({2, 1, 0, 1}));
  return queries;
}

TEST(ConcurrencyTest, ThreadsSharingOneGraphMatchSingleThreadedCounts) {
  Rng rng(7);
  const Graph data = RandomDataGraph(300, 1200, 3, rng);
  const std::vector<Graph> queries = TestQueries();

  std::vector<uint64_t> expected;
  for (const Graph& q : queries) {
    MatchResult r = DafMatch(q, data);
    ASSERT_TRUE(r.Complete());
    expected.push_back(r.embeddings);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  service::ContextPool pool(kThreads);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          service::ContextPool::Lease lease = pool.Acquire();
          MatchResult r = DafMatch(queries[i], data, {}, lease.get());
          if (!r.Complete() || r.embeddings != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentCursorsOverOneGraph) {
  const Graph data = MakeClique(std::vector<Label>(9, 0));
  const Graph query = MakeClique(std::vector<Label>(3, 0));
  MatchResult direct = DafMatch(query, data);
  ASSERT_TRUE(direct.Complete());

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      EmbeddingCursor cursor(query, data);
      uint64_t n = 0;
      while (cursor.Next().has_value()) ++n;
      if (n != direct.embeddings) mismatches.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelEngineInsideConcurrentCallers) {
  // Two layers of parallelism: several caller threads, each running the
  // multi-threaded engine on the same data graph.
  const Graph data = MakeClique(std::vector<Label>(10, 0));
  const Graph query = MakeCycle({0, 0, 0, 0});
  MatchResult direct = DafMatch(query, data);
  ASSERT_TRUE(direct.Complete());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      ParallelMatchResult r = ParallelDafMatch(query, data, {}, 3);
      if (!r.Complete() || r.embeddings != direct.embeddings) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ServiceUnderMixedLoadMatchesGroundTruth) {
  Rng rng(11);
  const Graph data = RandomDataGraph(200, 700, 3, rng);
  const std::vector<Graph> queries = TestQueries();
  std::vector<uint64_t> expected;
  for (const Graph& q : queries) {
    expected.push_back(DafMatch(q, data).embeddings);
  }

  service::MatchService service(data, {.num_workers = 4});
  struct Submitted {
    service::JobHandle handle;
    size_t query = 0;
    bool cancelled_by_us = false;
  };
  std::vector<Submitted> jobs;
  for (int i = 0; i < 60; ++i) {
    service::QueryJob job;
    const size_t qi = static_cast<size_t>(i) % queries.size();
    job.query = queries[qi];
    job.priority = static_cast<service::Priority>(i % service::kNumPriorities);
    Submitted s;
    s.query = qi;
    s.cancelled_by_us = (i % 7 == 0);
    s.handle = service.Submit(std::move(job));
    if (s.cancelled_by_us) s.handle.Cancel();
    jobs.push_back(std::move(s));
  }
  service.Drain();
  for (Submitted& s : jobs) {
    ASSERT_TRUE(s.handle.Done());
    const service::JobStatus status = s.handle.Status();
    if (status == service::JobStatus::kDone) {
      // Finished jobs — including ones whose cancel arrived too late —
      // must report the exact single-threaded count.
      EXPECT_EQ(s.handle.Result().embeddings, expected[s.query]);
    } else {
      EXPECT_EQ(status, service::JobStatus::kCancelled);
      EXPECT_TRUE(s.cancelled_by_us);
    }
  }
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.submitted, 60u);
  EXPECT_EQ(m.counters.completed + m.counters.cancelled, 60u);
}

}  // namespace
}  // namespace daf

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "baselines/cfl_match.h"
#include "baselines/gaddi.h"
#include "baselines/graphql.h"
#include "baselines/quicksi.h"
#include "baselines/spath.h"
#include "baselines/turboiso.h"
#include "baselines/vf2.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "graph/io.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

TEST(EdgeLabelGraphTest, StorageAndAccessors) {
  // Triangle with bond types: 0-1 single(1), 1-2 double(2), 0-2 single(1).
  Graph g = Graph::FromLabeledEdges({0, 0, 1}, {{0, 1}, {1, 2}, {0, 2}},
                                    {1, 2, 1});
  EXPECT_TRUE(g.HasNontrivialEdgeLabels());
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 1u);
  EXPECT_EQ(g.EdgeLabelBetween(1, 2), 2u);
  EXPECT_EQ(g.EdgeLabelBetween(2, 1), 2u);  // symmetric
  EXPECT_TRUE(g.HasEdgeWithLabel(0, 1, 1));
  EXPECT_FALSE(g.HasEdgeWithLabel(0, 1, 2));
  EXPECT_FALSE(g.HasEdgeWithLabel(0, 1, 0));
  EXPECT_FALSE(g.HasEdgeWithLabel(1, 0, 2));
  // NeighborEdgeLabels aligned with Neighbors.
  auto neighbors = g.Neighbors(1);
  auto labels = g.NeighborEdgeLabels(1);
  ASSERT_EQ(neighbors.size(), labels.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(labels[i], g.EdgeLabelBetween(1, neighbors[i]));
  }
}

TEST(EdgeLabelGraphTest, UnlabeledGraphsAreTrivial) {
  Graph g = Graph::FromEdges({0, 0}, {{0, 1}});
  EXPECT_FALSE(g.HasNontrivialEdgeLabels());
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 0u);
  EXPECT_TRUE(g.HasEdgeWithLabel(0, 1, 0));
}

TEST(EdgeLabelGraphTest, DuplicateEdgeFirstLabelWins) {
  Graph g = Graph::FromLabeledEdges({0, 0}, {{0, 1}, {1, 0}}, {7, 9});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 7u);
}

TEST(EdgeLabelGraphTest, LabeledEdgeListRoundTrip) {
  Rng rng(201);
  Graph base = daf::testing::RandomDataGraph(40, 90, 3, rng);
  std::vector<Edge> edges = base.EdgeList();
  std::vector<Label> edge_labels;
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_labels.push_back(static_cast<Label>(rng.UniformInt(3)));
  }
  std::vector<Label> labels(base.NumVertices());
  for (uint32_t v = 0; v < base.NumVertices(); ++v) {
    labels[v] = base.original_label(base.label(v));
  }
  Graph g = Graph::FromLabeledEdges(labels, edges, edge_labels);
  Graph g2 = [&] {
    std::vector<Edge> e2;
    std::vector<Label> l2;
    for (const auto& [e, l] : g.LabeledEdgeList()) {
      e2.push_back(e);
      l2.push_back(l);
    }
    return Graph::FromLabeledEdges(labels, e2, l2);
  }();
  for (const auto& [e, l] : g.LabeledEdgeList()) {
    EXPECT_EQ(g2.EdgeLabelBetween(e.first, e.second), l);
  }
}

TEST(EdgeLabelIoTest, TextRoundTripKeepsEdgeLabels) {
  Graph g = Graph::FromLabeledEdges({5, 5, 6}, {{0, 1}, {1, 2}}, {3, 4});
  std::string error;
  auto g2 = ParseGraphText(GraphToText(g), &error);
  ASSERT_TRUE(g2.has_value()) << error;
  EXPECT_TRUE(g2->HasNontrivialEdgeLabels());
  EXPECT_EQ(g2->EdgeLabelBetween(0, 1), 3u);
  EXPECT_EQ(g2->EdgeLabelBetween(1, 2), 4u);
}

TEST(EdgeLabelMatchTest, BondTypesDiscriminate) {
  // Data "molecule": C=C-C (double bond then single bond), all carbons.
  Graph data = Graph::FromLabeledEdges({0, 0, 0}, {{0, 1}, {1, 2}}, {2, 1});
  // Query: two carbons joined by a double bond.
  Graph double_bond = Graph::FromLabeledEdges({0, 0}, {{0, 1}}, {2});
  Graph single_bond = Graph::FromLabeledEdges({0, 0}, {{0, 1}}, {1});
  MatchResult d = DafMatch(double_bond, data);
  MatchResult s = DafMatch(single_bond, data);
  ASSERT_TRUE(d.ok && s.ok);
  EXPECT_EQ(d.embeddings, 2u);  // (0,1) and (1,0)
  EXPECT_EQ(s.embeddings, 2u);  // (1,2) and (2,1)
  // Without edge labels both queries would match both edges (4 each).
  Graph unlabeled_query = Graph::FromEdges({0, 0}, {{0, 1}});
  Graph unlabeled_data = Graph::FromEdges({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(DafMatch(unlabeled_query, unlabeled_data).embeddings, 4u);
}

TEST(EdgeLabelMatchTest, UnlabeledQueryOnLabeledDataMatchesLabelZeroOnly) {
  // Strict semantics: a query edge with label 0 only matches data edges
  // with label 0.
  Graph data = Graph::FromLabeledEdges({0, 0, 0}, {{0, 1}, {1, 2}}, {0, 5});
  Graph query = Graph::FromEdges({0, 0}, {{0, 1}});
  MatchResult r = DafMatch(query, data);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, 2u);  // only the label-0 edge, both directions
}

// The full cross-engine agreement sweep under random edge labels.
class EdgeLabelCrossTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeLabelCrossTest, AllEnginesAgree) {
  Rng rng(9100 + GetParam());
  const uint32_t n = 30 + static_cast<uint32_t>(rng.UniformInt(40));
  Graph base = daf::testing::RandomDataGraph(
      n, 2 * n + rng.UniformInt(3 * n), 3, rng);
  // Re-label edges randomly from a small bond alphabet.
  std::vector<Edge> edges = base.EdgeList();
  std::vector<Label> edge_labels;
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_labels.push_back(static_cast<Label>(rng.UniformInt(3)));
  }
  std::vector<Label> labels(base.NumVertices());
  for (uint32_t v = 0; v < base.NumVertices(); ++v) {
    labels[v] = base.original_label(base.label(v));
  }
  Graph data = Graph::FromLabeledEdges(labels, edges, edge_labels);
  auto extracted =
      ExtractRandomWalkQuery(data, 4 + rng.UniformInt(4), -1.0, rng);
  if (!extracted) GTEST_SKIP();
  const Graph& query = extracted->query;
  EXPECT_TRUE(query.HasNontrivialEdgeLabels() || query.NumEdges() == 0 ||
              !data.HasNontrivialEdgeLabels());

  EmbeddingSet expected;
  baselines::MatcherOptions brute;
  brute.callback = Collector(&expected);
  baselines::BruteForceMatch(query, data, brute);
  EXPECT_GE(expected.size(), 1u);  // witness guarantees positivity

  // DAF variants + parallel.
  for (bool failing : {false, true}) {
    EmbeddingSet found;
    MatchOptions opts;
    opts.use_failing_sets = failing;
    opts.callback = Collector(&found);
    MatchResult r = DafMatch(query, data, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(found, expected) << "failing=" << failing;
  }
  {
    EmbeddingSet found;
    MatchOptions opts;
    opts.callback = Collector(&found);
    ParallelMatchResult r = ParallelDafMatch(query, data, opts, 3);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(found, expected) << "parallel";
  }
  // DAF-Boost under edge labels (equivalence classes must respect them).
  {
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    EmbeddingSet found;
    MatchOptions opts;
    opts.equivalence = &eq;
    opts.callback = Collector(&found);
    MatchResult r = DafMatch(query, data, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(found, expected) << "boost";
  }
  // All baselines.
  struct Named {
    const char* name;
    baselines::MatcherResult (*fn)(const Graph&, const Graph&,
                                   const baselines::MatcherOptions&);
  };
  const Named algorithms[] = {
      {"VF2", &baselines::Vf2Match},
      {"QuickSI", &baselines::QuickSiMatch},
      {"GraphQL", &baselines::GraphQlMatch},
      {"SPath", &baselines::SPathMatch},
      {"GADDI", &baselines::GaddiMatch},
      {"TurboIso", &baselines::TurboIsoMatch},
      {"CFL", &baselines::CflMatch},
  };
  for (const Named& algorithm : algorithms) {
    EmbeddingSet found;
    baselines::MatcherOptions opts;
    opts.callback = Collector(&found);
    baselines::MatcherResult r = algorithm.fn(query, data, opts);
    ASSERT_TRUE(r.ok) << algorithm.name;
    EXPECT_EQ(found, expected) << algorithm.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EdgeLabelCrossTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace daf

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/bruteforce.h"
#include "baselines/cfl_match.h"
#include "baselines/gaddi.h"
#include "baselines/graphql.h"
#include "baselines/quicksi.h"
#include "baselines/spath.h"
#include "baselines/turboiso.h"
#include "baselines/vf2.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

// The grand cross-check: on a grid of (density, label count, query size)
// instances, every engine in the library — DAF in all four paper variants,
// parallel DAF, DAF-Boost, and all seven baselines — must enumerate exactly
// the same embedding set.
class CrossAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CrossAlgorithmTest, AllEnginesAgree) {
  const auto [density_index, num_labels, query_size] = GetParam();
  const double densities[] = {1.5, 3.0, 5.0};
  Rng rng(7000 + density_index * 100 + num_labels * 10 + query_size);
  const uint32_t n = 40 + static_cast<uint32_t>(rng.UniformInt(40));
  const auto m = static_cast<uint64_t>(n * densities[density_index]);
  Graph data = daf::testing::RandomDataGraph(
      n, m, static_cast<uint32_t>(num_labels), rng);
  auto extracted = ExtractRandomWalkQuery(
      data, static_cast<uint32_t>(query_size), -1.0, rng);
  if (!extracted) GTEST_SKIP() << "extraction failed (tiny component)";
  const Graph& query = extracted->query;

  EmbeddingSet expected;
  baselines::MatcherOptions brute_opts;
  brute_opts.callback = Collector(&expected);
  baselines::BruteForceMatch(query, data, brute_opts);

  // DAF variants.
  for (MatchOrder order :
       {MatchOrder::kPathSize, MatchOrder::kCandidateSize}) {
    for (bool failing : {false, true}) {
      EmbeddingSet found;
      MatchOptions opts;
      opts.order = order;
      opts.use_failing_sets = failing;
      opts.callback = Collector(&found);
      MatchResult r = DafMatch(query, data, opts);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(found, expected) << "DAF order=" << static_cast<int>(order)
                                 << " failing=" << failing;
    }
  }
  // Parallel DAF.
  {
    EmbeddingSet found;
    MatchOptions opts;
    opts.callback = Collector(&found);
    ParallelMatchResult r = ParallelDafMatch(query, data, opts, 3);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(found, expected) << "ParallelDAF";
  }
  // DAF-Boost.
  {
    VertexEquivalence eq = VertexEquivalence::Compute(data);
    EmbeddingSet found;
    MatchOptions opts;
    opts.equivalence = &eq;
    opts.callback = Collector(&found);
    MatchResult r = DafMatch(query, data, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(found, expected) << "DAF-Boost";
  }
  // Baselines.
  struct Named {
    const char* name;
    baselines::MatcherResult (*fn)(const Graph&, const Graph&,
                                   const baselines::MatcherOptions&);
  };
  const Named algorithms[] = {
      {"VF2", &baselines::Vf2Match},
      {"QuickSI", &baselines::QuickSiMatch},
      {"GraphQL", &baselines::GraphQlMatch},
      {"SPath", &baselines::SPathMatch},
      {"GADDI", &baselines::GaddiMatch},
      {"TurboIso", &baselines::TurboIsoMatch},
      {"CFL", &baselines::CflMatch},
  };
  for (const Named& algorithm : algorithms) {
    EmbeddingSet found;
    baselines::MatcherOptions opts;
    opts.callback = Collector(&found);
    baselines::MatcherResult r = algorithm.fn(query, data, opts);
    ASSERT_TRUE(r.ok) << algorithm.name;
    EXPECT_EQ(found, expected) << algorithm.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossAlgorithmTest,
    ::testing::Combine(::testing::Range(0, 3),        // density
                       ::testing::Values(2, 4, 8),    // labels
                       ::testing::Values(4, 6, 9)),   // query size
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_q" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace daf

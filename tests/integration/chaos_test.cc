// Chaos harness: a MatchService under seeded mixed load with every fault
// point armed. The faults (simulated allocation failures, dropped context
// leases, admission pushes, worker dispatches, mid-steal donations) may
// fail individual jobs, but the robustness contract must hold regardless:
// no crash, every admitted job lands in exactly one terminal status with a
// self-consistent result, the terminal counters account for every
// submission, the global memory ledger returns to zero, and the service
// keeps serving after the faults stop. Runs under ASan in CI, so "no
// leaks" is enforced mechanically. See docs/ROBUSTNESS.md.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "daf/engine.h"
#include "graph/canonical.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace daf::service {
namespace {

using daf::testing::MakeClique;

Graph SmallData() { return MakeClique(std::vector<Label>(16, 0)); }
Graph EasyQuery() { return MakeClique(std::vector<Label>(3, 0)); }
Graph HardQuery() { return MakeClique(std::vector<Label>(6, 0)); }

class ChaosTest : public ::testing::Test {
 protected:
  ~ChaosTest() override { FaultInjector::Disarm(); }
};

// One full chaos round under a given fault schedule; asserts every
// robustness invariant. Used with several seeds below — the schedules
// differ, the contract does not.
void RunChaosRound(uint64_t chaos_seed, double fault_rate) {
  SCOPED_TRACE("chaos_seed=" + std::to_string(chaos_seed));
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.watchdog_interval_ms = 10;
  options.watchdog_grace_ms = 200;
  options.context_retained_bytes = 1 << 18;
  options.service_memory_limit_bytes = uint64_t{1} << 30;
  MatchService service(SmallData(), options);

  constexpr int kJobs = 60;
  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  {
    ScopedFaultInjection faults(chaos_seed, fault_rate);
    for (int i = 0; i < kJobs; ++i) {
      QueryJob job;
      job.priority = static_cast<Priority>(i % kNumPriorities);
      job.limit = 50000;
      switch (i % 4) {
        case 0:
          job.query = EasyQuery();
          break;
        case 1:
          job.query = HardQuery();
          job.deadline_ms = 30;  // deadline-bound by design
          break;
        case 2:
          job.query = EasyQuery();
          job.max_memory_bytes = 16 * 1024;  // exhaustion-bound by design
          break;
        default:
          job.query = HardQuery();
          job.limit = 2000;
          break;
      }
      handles.push_back(service.Submit(std::move(job)));
    }
    service.Drain();
  }

  // Invariant 1: every job is terminal with a self-consistent result.
  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    JobHandle& h = handles[i];
    const JobStatus status = h.Status();
    ASSERT_TRUE(IsTerminal(status)) << ToString(status);
    const MatchResult& r = h.Result();
    switch (status) {
      case JobStatus::kDone:
        EXPECT_TRUE(r.ok);
        break;
      case JobStatus::kResourceExhausted:
        EXPECT_TRUE(r.resource_exhausted);
        EXPECT_FALSE(r.Complete());
        EXPECT_FALSE(r.cs_certified_negative);
        break;
      case JobStatus::kFailed:
        EXPECT_FALSE(r.ok);
        EXPECT_FALSE(r.error.empty());
        break;
      default:
        break;  // cancelled / timed out / rejected carry partial counts
    }
  }

  // Invariant 2: the terminal counters account for every submission.
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.submitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(m.counters.submitted,
            m.counters.rejected + m.counters.completed +
                m.counters.cancelled + m.counters.timed_out +
                m.counters.failed + m.counters.resource_exhausted);

  // Invariant 3: with no job running, the global ledger holds exactly the
  // query cache's resident bytes — every per-job charge was returned (no
  // charge leaks), and the cache's own accounting agrees with the ledger.
  EXPECT_EQ(m.global_memory_used, m.cache_resident_bytes);
  EXPECT_EQ(m.global_memory_limit, uint64_t{1} << 30);

  // Invariant 4: liveness — with faults disarmed the service still serves.
  QueryJob probe;
  probe.query = EasyQuery();
  JobHandle h = service.Submit(std::move(probe));
  EXPECT_EQ(h.Wait(), JobStatus::kDone);
  EXPECT_TRUE(h.Result().Complete());
}

TEST_F(ChaosTest, Seed1LowFaultRate) { RunChaosRound(1, 0.01); }

TEST_F(ChaosTest, Seed2ModerateFaultRate) { RunChaosRound(2, 0.05); }

TEST_F(ChaosTest, Seed3HighFaultRate) { RunChaosRound(3, 0.25); }

// Cache-churn round: a tiny resident-bytes cap forces constant LRU
// eviction while repeated and permuted patterns race hits, coalesced
// builds, and the armed cache_insert/cache_evict fault points. On top of
// the standard invariants, the cache's classification must stay exact:
// every lookup is exactly one of hit / miss / coalesced.
void RunCacheChurnRound(uint64_t chaos_seed, double fault_rate) {
  SCOPED_TRACE("chaos_seed=" + std::to_string(chaos_seed));
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.watchdog_interval_ms = 10;
  options.watchdog_grace_ms = 200;
  options.service_memory_limit_bytes = uint64_t{1} << 30;
  options.cache_max_resident_bytes = 24 * 1024;  // a handful of entries
  options.cache_shards = 2;
  MatchService service(SmallData(), options);

  // A pool of patterns sized so the pool never fits resident at once,
  // submitted both verbatim and relabeled (permuted isomorphs must land on
  // the same entries even while those entries are being evicted).
  Rng rng(chaos_seed);
  std::vector<Graph> pool;
  for (uint32_t n = 3; n <= 6; ++n) {
    pool.push_back(MakeClique(std::vector<Label>(n, 0)));
  }
  constexpr int kJobs = 80;
  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  {
    ScopedFaultInjection faults(chaos_seed, fault_rate);
    for (int i = 0; i < kJobs; ++i) {
      const Graph& base = pool[static_cast<size_t>(i) % pool.size()];
      std::vector<VertexId> perm(base.NumVertices());
      for (VertexId v = 0; v < perm.size(); ++v) perm[v] = v;
      rng.Shuffle(perm);
      QueryJob job;
      job.query = i % 2 == 0 ? base : PermuteVertices(base, perm);
      job.priority = static_cast<Priority>(i % kNumPriorities);
      job.limit = 20000;
      handles.push_back(service.Submit(std::move(job)));
    }
    service.Drain();
  }

  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    ASSERT_TRUE(IsTerminal(handles[i].Status()))
        << ToString(handles[i].Status());
  }
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.submitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(m.counters.submitted,
            m.counters.rejected + m.counters.completed +
                m.counters.cancelled + m.counters.timed_out +
                m.counters.failed + m.counters.resource_exhausted);
  // Exact lookup classification, under faults and eviction churn.
  EXPECT_EQ(m.cache_hits + m.cache_misses + m.cache_coalesced,
            m.cache_lookups);
  EXPECT_LE(m.cache_lookups, m.counters.submitted);
  EXPECT_EQ(m.cache_uncacheable, 0u);  // cliques canonicalize trivially
  // The cap held and the ledgers agree.
  EXPECT_LE(m.cache_resident_bytes, options.cache_max_resident_bytes);
  EXPECT_EQ(m.global_memory_used, m.cache_resident_bytes);

  // Liveness plus a correctness probe: a warm (or rebuilt) entry still
  // produces the right count after the churn.
  QueryJob probe;
  probe.query = EasyQuery();
  JobHandle h = service.Submit(std::move(probe));
  EXPECT_EQ(h.Wait(), JobStatus::kDone);
  EXPECT_EQ(h.Result().embeddings, 16u * 15u * 14u);
}

TEST_F(ChaosTest, CacheChurnSeed4) { RunCacheChurnRound(4, 0.05); }

TEST_F(ChaosTest, CacheChurnSeed5) { RunCacheChurnRound(5, 0.15); }

// Update-churn round: standing queries subscribe, update batches apply,
// and subscriptions cancel, all while every fault point (including
// delta_apply and subscriber_notify) is armed and ordinary query jobs run
// on the workers. Contract: no crash, the graph version counts exactly the
// successful applies (a failed apply is atomic), every delivered batch
// folds cleanly or is an honest resync marker, and once the faults stop
// the subsystem still streams exact deltas.
void RunUpdateChurnRound(uint64_t chaos_seed, double fault_rate) {
  SCOPED_TRACE("chaos_seed=" + std::to_string(chaos_seed));
  using daf::testing::MakePath;
  Rng rng(chaos_seed);
  ServiceOptions options;
  options.num_workers = 2;
  options.watchdog_interval_ms = 10;
  options.watchdog_grace_ms = 200;
  options.subscription_queue_batches = 4;  // overflow resyncs are in play
  MatchService service(daf::testing::RandomDataGraph(20, 40, 3, rng),
                       options);
  const uint32_t n = service.Snapshot()->NumVertices();

  auto standing_query = [&] {
    QueryJob job;
    job.query = MakePath({static_cast<Label>(rng.UniformInt(3)),
                          static_cast<Label>(rng.UniformInt(3)),
                          static_cast<Label>(rng.UniformInt(3))});
    return job;
  };
  auto random_batch = [&] {
    dyn::UpdateBatch batch;
    const int ops = 1 + static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < ops; ++i) {
      const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
      const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
      if (u == v) continue;
      if (rng.Bernoulli(0.5)) {
        batch.InsertEdge(u, v);
      } else {
        batch.RemoveEdge(u, v);
      }
    }
    return batch;
  };

  std::vector<SubscriptionHandle> subs;
  std::vector<JobHandle> handles;
  uint64_t applied = 0;
  {
    ScopedFaultInjection faults(chaos_seed, fault_rate);
    for (int round = 0; round < 60; ++round) {
      switch (rng.UniformInt(5)) {
        case 0: {
          SubscriptionHandle sub = service.Subscribe(standing_query());
          if (sub.ok()) subs.push_back(std::move(sub));
          break;
        }
        case 1:
        case 2: {
          UpdateOutcome out = service.ApplyUpdates(random_batch());
          if (out.ok) {
            ++applied;
          } else {
            EXPECT_FALSE(out.error.empty());
          }
          break;
        }
        case 3: {
          QueryJob job;
          job.query = MakePath({0, 1});
          job.limit = 1000;
          handles.push_back(service.Submit(std::move(job)));
          break;
        }
        default: {
          if (!subs.empty()) {
            const size_t i = rng.UniformInt(subs.size());
            if (rng.Bernoulli(0.5)) {
              subs[i].Unsubscribe();
            } else {
              subs[i].Drain();  // consumers racing delivery
            }
          }
          break;
        }
      }
    }
    service.Drain();
  }

  // Failed applies were atomic: the version counts successes exactly.
  EXPECT_EQ(service.GraphVersion(), applied);
  for (JobHandle& h : handles) {
    EXPECT_TRUE(IsTerminal(h.Status())) << ToString(h.Status());
  }

  // Post-fault correctness probe: a fresh subscription streams exact
  // deltas for one more batch (oracle-style fold against DafMatch).
  QueryJob probe_job = standing_query();
  const Graph probe_query = probe_job.query;
  SubscriptionHandle probe = service.Subscribe(std::move(probe_job));
  ASSERT_TRUE(probe.ok()) << probe.error();
  daf::testing::EmbeddingSet live;
  {
    MatchOptions mo;
    mo.callback = daf::testing::Collector(&live);
    ASSERT_TRUE(DafMatch(probe_query, *service.Snapshot(), mo).ok);
  }
  UpdateOutcome out = service.ApplyUpdates(random_batch());
  ASSERT_TRUE(out.ok) << out.error;
  for (DeltaBatch& db : probe.Drain()) {
    ASSERT_FALSE(db.resync);
    for (EmbeddingDelta& d : db.deltas) {
      if (d.created) {
        EXPECT_TRUE(live.insert(std::move(d.embedding)).second);
      } else {
        EXPECT_EQ(live.erase(d.embedding), 1u);
      }
    }
  }
  daf::testing::EmbeddingSet fresh;
  {
    MatchOptions mo;
    mo.callback = daf::testing::Collector(&fresh);
    ASSERT_TRUE(DafMatch(probe_query, *service.Snapshot(), mo).ok);
  }
  EXPECT_EQ(live, fresh);
}

TEST_F(ChaosTest, UpdateChurnSeed6) { RunUpdateChurnRound(6, 0.05); }

TEST_F(ChaosTest, UpdateChurnSeed7) { RunUpdateChurnRound(7, 0.2); }

TEST_F(ChaosTest, ServiceSurvivesShutdownUnderFaults) {
  // Shutdown mid-burst with faults armed: every admitted job must still
  // resolve to a terminal state before the destructor returns.
  std::vector<JobHandle> handles;
  {
    ScopedFaultInjection faults(11, 0.1);
    ServiceOptions options;
    options.num_workers = 2;
    options.watchdog_interval_ms = 10;
    options.watchdog_grace_ms = 100;
    MatchService service(SmallData(), options);
    for (int i = 0; i < 32; ++i) {
      QueryJob job;
      job.query = i % 2 == 0 ? EasyQuery() : HardQuery();
      job.limit = 100000;
      if (i % 3 == 0) job.max_memory_bytes = 16 * 1024;
      handles.push_back(service.Submit(std::move(job)));
    }
    // No Drain: the destructor shuts down with most jobs still queued.
  }
  for (JobHandle& h : handles) {
    EXPECT_TRUE(IsTerminal(h.Status())) << ToString(h.Status());
  }
}

TEST_F(ChaosTest, WatchdogForceCancelsStuckStreamingJob) {
  // A streaming job whose consumer never drains blocks on backpressure
  // forever; its deadline alone cannot fire while the worker is parked in
  // the stream buffer's cv wait. The watchdog must detect the overdue job,
  // force-cancel it, and free the worker.
  ServiceOptions options;
  options.num_workers = 1;
  options.watchdog_interval_ms = 10;
  options.watchdog_grace_ms = 50;
  MatchService service(MakeClique(std::vector<Label>(12, 0)), options);

  QueryJob stuck;
  stuck.query = EasyQuery();  // 1320 embeddings > the stream buffer
  stuck.stream_embeddings = true;
  stuck.deadline_ms = 30;
  JobHandle handle = service.Submit(std::move(stuck));

  const JobStatus status = handle.Wait();
  EXPECT_TRUE(status == JobStatus::kCancelled ||
              status == JobStatus::kTimedOut)
      << ToString(status);
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_GE(m.watchdog_fires, 1u);

  // The freed worker serves the next job normally.
  QueryJob next;
  next.query = EasyQuery();
  JobHandle h = service.Submit(std::move(next));
  EXPECT_EQ(h.Wait(), JobStatus::kDone);
}

TEST_F(ChaosTest, WatchdogLeavesDeadlinelessJobsAlone) {
  ServiceOptions options;
  options.num_workers = 1;
  options.watchdog_interval_ms = 5;
  options.watchdog_grace_ms = 10;
  MatchService service(SmallData(), options);
  QueryJob job;
  job.query = HardQuery();
  job.limit = 200000;  // long-ish but bounded, no deadline
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_EQ(service.Metrics().watchdog_fires, 0u);
}

TEST_F(ChaosTest, PerJobBudgetOverridesServiceDefault) {
  ServiceOptions options;
  options.num_workers = 1;
  options.job_memory_limit_bytes = 8 * 1024;  // default: everything exhausts
  // The 8 KiB cap is sized to the *cold* path's arena charge; the prepared
  // (cache-hit) path stays under it, which would defeat the test's premise.
  options.enable_query_cache = false;
  MatchService service(SmallData(), options);

  QueryJob capped;
  capped.query = EasyQuery();
  JobHandle h1 = service.Submit(std::move(capped));
  EXPECT_EQ(h1.Wait(), JobStatus::kResourceExhausted);
  EXPECT_TRUE(h1.Result().resource_exhausted);

  QueryJob generous;
  generous.query = EasyQuery();
  generous.max_memory_bytes = uint64_t{1} << 30;  // per-job override
  JobHandle h2 = service.Submit(std::move(generous));
  EXPECT_EQ(h2.Wait(), JobStatus::kDone);

  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.counters.resource_exhausted, 1u);
  EXPECT_GT(m.budget_rejections, 0u);
  EXPECT_GT(m.peak_job_bytes, 0u);
}

}  // namespace
}  // namespace daf::service

// Differential cache-oracle suite: 200 seeded query pairs run cold
// (QueryJob::bypass_cache), warm (cache miss then hit), and as permuted
// resubmissions, across the full option matrix — streaming, limits,
// matching order, failing sets, leaf decomposition, homomorphisms, edge
// labels, and the intra-query parallel engine. The oracle is exact: the
// cache-served embedding set (after the service's permutation remap) must
// be identical to the cold build's, never merely the same size. Runs under
// ASan and TSan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "graph/canonical.h"
#include "graph/query_extract.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf::service {
namespace {

using daf::testing::EmbeddingSet;
using daf::testing::IsValidEmbedding;
using daf::testing::MakeClique;
using daf::testing::RandomDataGraph;

std::vector<VertexId> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm);
  return perm;
}

// Submits `query` and drains it to completion, returning the full streamed
// embedding set (in the submitted query's own vertex numbering — the
// service remaps cache-served embeddings before delivery).
EmbeddingSet StreamAll(MatchService& service, const Graph& query,
                       const MatchOptions& options, bool bypass_cache,
                       CacheOutcome* outcome = nullptr) {
  QueryJob job;
  job.query = query;
  job.options = options;
  job.stream_embeddings = true;
  job.bypass_cache = bypass_cache;
  JobHandle handle = service.Submit(std::move(job));
  EmbeddingSet out;
  for (;;) {
    std::vector<std::vector<VertexId>> batch = handle.NextBatch();
    if (batch.empty()) break;
    for (std::vector<VertexId>& e : batch) out.insert(std::move(e));
  }
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_TRUE(handle.Result().ok);
  if (outcome != nullptr) *outcome = handle.cache_outcome();
  return out;
}

// Count-only submission (optionally limited / prioritized).
uint64_t CountAll(MatchService& service, const Graph& query,
                  const MatchOptions& options, bool bypass_cache,
                  uint64_t limit = 0,
                  Priority priority = Priority::kNormal,
                  CacheOutcome* outcome = nullptr) {
  QueryJob job;
  job.query = query;
  job.options = options;
  job.limit = limit;
  job.priority = priority;
  job.bypass_cache = bypass_cache;
  JobHandle handle = service.Submit(std::move(job));
  EXPECT_EQ(handle.Wait(), JobStatus::kDone);
  EXPECT_TRUE(handle.Result().ok);
  if (outcome != nullptr) *outcome = handle.cache_outcome();
  return handle.Result().embeddings;
}

// Applies a vertex permutation to an embedding set: an embedding e of q
// becomes the embedding e' of PermuteVertices(q, perm) with
// e'[perm[v]] = e[v].
EmbeddingSet PermuteEmbeddings(const EmbeddingSet& set,
                               const std::vector<VertexId>& perm) {
  EmbeddingSet out;
  for (const std::vector<VertexId>& e : set) {
    std::vector<VertexId> p(e.size());
    for (VertexId v = 0; v < e.size(); ++v) p[perm[v]] = e[v];
    out.insert(std::move(p));
  }
  return out;
}

// The 200-pair sweep. Four interleaved differential classes:
//   i % 4 == 0  streamed full enumeration, exact set equality
//   i % 4 == 1  count-only, order/pruning option toggles
//   i % 4 == 2  count-only under a small embedding limit
//   i % 4 == 3  homomorphism counts under a safety limit
// Every iteration checks cold vs warm vs permuted-resubmission.
TEST(CacheOracleTest, TwoHundredSeededPairsColdWarmPermuted) {
  Rng data_rng(2026);
  Graph data = RandomDataGraph(150, 400, 4, data_rng);
  ServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 1024;
  MatchService service(data, service_options);

  uint64_t expected_hits = 0;
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("pair " + std::to_string(i));
    Rng rng(1000 + static_cast<uint64_t>(i));
    const uint32_t size = 4 + static_cast<uint32_t>(i % 3);
    auto extracted = ExtractRandomWalkQuery(
        data, size, i % 2 == 0 ? 0.0 : 3.0, rng);
    ASSERT_TRUE(extracted.has_value());
    const Graph& query = extracted->query;
    std::vector<VertexId> perm = RandomPermutation(query.NumVertices(), rng);
    Graph permuted = PermuteVertices(query, perm);

    MatchOptions options;
    options.order = (i / 2) % 2 == 0 ? MatchOrder::kPathSize
                                     : MatchOrder::kCandidateSize;
    options.use_failing_sets = (i / 4) % 2 == 0;
    options.leaf_decomposition = (i / 8) % 2 == 0;

    switch (i % 4) {
      case 0: {
        EmbeddingSet cold = StreamAll(service, query, options, true);
        CacheOutcome warm_outcome;
        EmbeddingSet warm =
            StreamAll(service, query, options, false, &warm_outcome);
        EXPECT_NE(warm_outcome, CacheOutcome::kNone);
        ASSERT_EQ(warm, cold);
        // The witness guarantees a nonempty differential.
        EXPECT_TRUE(cold.count(extracted->witness) == 1);
        CacheOutcome hit_outcome;
        EmbeddingSet hit =
            StreamAll(service, query, options, false, &hit_outcome);
        EXPECT_EQ(hit_outcome, CacheOutcome::kHit);
        ASSERT_EQ(hit, cold);
        CacheOutcome perm_outcome;
        EmbeddingSet perm_warm =
            StreamAll(service, permuted, options, false, &perm_outcome);
        EXPECT_EQ(perm_outcome, CacheOutcome::kHit);
        ASSERT_EQ(perm_warm, PermuteEmbeddings(cold, perm));
        for (const std::vector<VertexId>& e : perm_warm) {
          ASSERT_TRUE(IsValidEmbedding(permuted, data, e));
        }
        expected_hits += 2;
        break;
      }
      case 1: {
        const uint64_t cold = CountAll(service, query, options, true);
        EXPECT_EQ(CountAll(service, query, options, false), cold);
        CacheOutcome hit_outcome;
        EXPECT_EQ(CountAll(service, query, options, false, 0,
                           Priority::kNormal, &hit_outcome),
                  cold);
        EXPECT_EQ(hit_outcome, CacheOutcome::kHit);
        EXPECT_EQ(CountAll(service, permuted, options, false), cold);
        expected_hits += 2;
        break;
      }
      case 2: {
        const uint64_t limit = 3 + static_cast<uint64_t>(i % 11);
        const uint64_t cold =
            CountAll(service, query, options, true, limit);
        // Cold and warm may enumerate different *subsets* under a limit
        // (the canonical query's matching order differs), but the count —
        // min(limit, total) — is an invariant.
        EXPECT_EQ(CountAll(service, query, options, false, limit), cold);
        EXPECT_EQ(CountAll(service, query, options, false, limit), cold);
        EXPECT_EQ(CountAll(service, permuted, options, false, limit), cold);
        expected_hits += 2;
        break;
      }
      default: {
        options.injective = false;  // homomorphisms explode; keep a cap
        const uint64_t limit = 20000;
        const uint64_t cold =
            CountAll(service, query, options, true, limit);
        EXPECT_EQ(CountAll(service, query, options, false, limit), cold);
        EXPECT_EQ(CountAll(service, permuted, options, false, limit), cold);
        expected_hits += 1;
        break;
      }
    }
  }

  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_TRUE(m.cache_enabled);
  EXPECT_EQ(m.cache_hits + m.cache_misses + m.cache_coalesced,
            m.cache_lookups);
  EXPECT_EQ(m.cache_uncacheable, 0u);
  // Permuted resubmissions and repeats must actually hit — at least the
  // per-iteration guaranteed hits (repeats across iterations only add).
  EXPECT_GE(m.cache_hits, expected_hits);
}

// Edge-labeled differential: patterns sampled directly from an
// edge-labeled data graph (wedges with their exact edge labels), so every
// query is positive and the labels constrain the match.
TEST(CacheOracleTest, EdgeLabeledPatternsColdWarmPermuted) {
  Rng rng(77);
  // Random connected skeleton; edge label = (u + w) % 3 keeps labels
  // structural rather than random, so permuted isomorphs stay consistent.
  std::vector<Edge> edges = ErdosRenyiEdges(80, 240, rng);
  ConnectComponents(80, &edges, rng);
  std::vector<Label> labels = ZipfLabels(80, 3, 0.5, rng);
  std::vector<Label> edge_labels(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_labels[i] = (edges[i].first + edges[i].second) % 3;
  }
  Graph data = Graph::FromLabeledEdges(labels, edges, edge_labels);
  ASSERT_TRUE(data.HasNontrivialEdgeLabels());
  MatchService service(data, {});

  int tested = 0;
  for (VertexId v = 0; v < data.NumVertices() && tested < 20; ++v) {
    std::span<const VertexId> nbrs = data.Neighbors(v);
    if (nbrs.size() < 2) continue;
    const VertexId a = nbrs[0];
    const VertexId b = nbrs[nbrs.size() - 1];
    if (a == b) continue;
    SCOPED_TRACE("wedge center " + std::to_string(v));
    Graph query = Graph::FromLabeledEdges(
        {data.original_label(data.label(a)),
         data.original_label(data.label(v)),
         data.original_label(data.label(b))},
        {{0, 1}, {1, 2}},
        {data.EdgeLabelBetween(a, v), data.EdgeLabelBetween(v, b)});
    MatchOptions options;
    EmbeddingSet cold = StreamAll(service, query, options, true);
    ASSERT_FALSE(cold.empty());
    ASSERT_EQ(StreamAll(service, query, options, false), cold);
    std::vector<VertexId> perm = RandomPermutation(3, rng);
    EmbeddingSet perm_warm =
        StreamAll(service, PermuteVertices(query, perm), options, false);
    ASSERT_EQ(perm_warm, PermuteEmbeddings(cold, perm));
    ++tested;
  }
  ASSERT_GE(tested, 10);
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.cache_hits + m.cache_misses + m.cache_coalesced,
            m.cache_lookups);
}

// The intra-query parallel engine over a shared cached CS: interactive
// non-streaming jobs on a service with intra_query_threads > 1 run through
// ParallelDafMatchPrepared on a hit; counts must match the cold build.
TEST(CacheOracleTest, ParallelEngineServesFromCache) {
  Rng rng(501);
  Graph data = RandomDataGraph(200, 700, 3, rng);
  ServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.intra_query_threads = 3;
  MatchService service(data, service_options);

  for (int i = 0; i < 20; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    auto extracted = ExtractRandomWalkQuery(data, 5, 0.0, rng);
    ASSERT_TRUE(extracted.has_value());
    const Graph& query = extracted->query;
    MatchOptions options;
    const uint64_t cold = CountAll(service, query, options, true, 0,
                                   Priority::kInteractive);
    EXPECT_EQ(CountAll(service, query, options, false, 0,
                       Priority::kInteractive),
              cold);
    CacheOutcome hit_outcome;
    EXPECT_EQ(CountAll(service, query, options, false, 0,
                       Priority::kInteractive, &hit_outcome),
              cold);
    EXPECT_EQ(hit_outcome, CacheOutcome::kHit);
    Graph permuted = PermuteVertices(
        query, RandomPermutation(query.NumVertices(), rng));
    EXPECT_EQ(CountAll(service, permuted, options, false, 0,
                       Priority::kInteractive),
              cold);
  }
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_GT(m.counters.parallel_jobs, 0u);
  EXPECT_EQ(m.cache_hits + m.cache_misses + m.cache_coalesced,
            m.cache_lookups);
}

// Concurrent burst of one pattern: whatever mix of miss/coalesced/hit the
// scheduler produces, the counts agree and the classification adds up.
TEST(CacheOracleTest, ConcurrentBurstCoalescesConsistently) {
  Rng rng(9090);
  Graph data = RandomDataGraph(300, 1200, 2, rng);
  ServiceOptions service_options;
  service_options.num_workers = 4;
  MatchService service(data, service_options);

  auto extracted = ExtractRandomWalkQuery(data, 5, 0.0, rng);
  ASSERT_TRUE(extracted.has_value());
  const Graph& query = extracted->query;

  constexpr int kBurst = 16;
  std::vector<JobHandle> handles;
  handles.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    QueryJob job;
    job.query = i % 2 == 0
                    ? query
                    : PermuteVertices(
                          query, RandomPermutation(query.NumVertices(), rng));
    handles.push_back(service.Submit(std::move(job)));
  }
  uint64_t count = 0;
  bool first = true;
  for (JobHandle& h : handles) {
    ASSERT_EQ(h.Wait(), JobStatus::kDone);
    EXPECT_NE(h.cache_outcome(), CacheOutcome::kNone);
    if (first) {
      count = h.Result().embeddings;
      first = false;
    } else {
      EXPECT_EQ(h.Result().embeddings, count);
    }
  }
  obs::ServiceMetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.cache_lookups, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(m.cache_hits + m.cache_misses + m.cache_coalesced,
            m.cache_lookups);
  EXPECT_GE(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_entries, 1u);
}

}  // namespace
}  // namespace daf::service

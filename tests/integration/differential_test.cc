#include <gtest/gtest.h>

#include <vector>

#include "baselines/bruteforce.h"
#include "baselines/vf2.h"
#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

// ~200 seeded random (query, data) pairs, each matched by DAF under a
// trial-dependent option combination (both matching orders, failing sets
// on/off, leaf decomposition on/off, homomorphism mode, edge labels) and
// differentially validated against the brute-force oracle and VF2: the full
// embedding *sets* must be identical, not just the counts. All DAF runs
// share one warm MatchContext, so the arena/scratch reuse path is exercised
// across hundreds of differently-shaped queries — under ASan/UBSan in CI.

constexpr int kShards = 8;
constexpr int kTrialsPerShard = 25;

// Random connected data graph whose edges carry labels from {0, 1}.
Graph RandomEdgeLabeledData(uint32_t n, uint64_t m, uint32_t num_labels,
                            Rng& rng) {
  std::vector<Edge> edges = ErdosRenyiEdges(n, m, rng);
  ConnectComponents(n, &edges, rng);
  std::vector<Label> labels = ZipfLabels(n, num_labels, 0.5, rng);
  std::vector<Label> edge_labels;
  edge_labels.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_labels.push_back(static_cast<Label>(rng.UniformInt(2)));
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

// Rebuilds the extracted query with the edge labels its witness embedding
// realizes in `data`, so edge-label trials stay positive by construction.
Graph AttachWitnessEdgeLabels(const ExtractedQuery& extracted,
                              const Graph& data) {
  const Graph& q = extracted.query;
  std::vector<Label> labels;
  labels.reserve(q.NumVertices());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    labels.push_back(q.original_label(q.label(u)));
  }
  std::vector<Edge> edges = q.EdgeList();
  std::vector<Label> edge_labels;
  edge_labels.reserve(edges.size());
  for (const Edge& e : edges) {
    edge_labels.push_back(data.EdgeLabelBetween(extracted.witness[e.first],
                                                extracted.witness[e.second]));
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, DafAgreesWithOraclesOnRandomPairs) {
  MatchContext context;  // deliberately shared across all trials
  for (int i = 0; i < kTrialsPerShard; ++i) {
    const int trial = GetParam() * kTrialsPerShard + i;
    Rng rng(9000 + trial);

    const bool edge_labeled = trial % 4 == 3;
    const bool injective = trial % 5 != 4;  // every 5th trial: homomorphisms
    const int combo = trial % 8;
    MatchOptions opts;
    opts.order = (combo & 1) ? MatchOrder::kCandidateSize
                             : MatchOrder::kPathSize;
    opts.use_failing_sets = (combo & 2) != 0;
    opts.leaf_decomposition = (combo & 4) != 0;
    opts.injective = injective;

    const uint32_t data_n = 20 + static_cast<uint32_t>(rng.UniformInt(30));
    const uint64_t data_m = 40 + rng.UniformInt(100);
    const uint32_t num_labels = 2 + trial % 3;
    Graph data =
        edge_labeled
            ? RandomEdgeLabeledData(data_n, data_m, num_labels, rng)
            : daf::testing::RandomDataGraph(data_n, data_m, num_labels, rng);
    auto extracted = ExtractRandomWalkQuery(
        data, 4 + static_cast<uint32_t>(rng.UniformInt(5)), -1.0, rng);
    if (!extracted) continue;
    Graph query = edge_labeled ? AttachWitnessEdgeLabels(*extracted, data)
                               : std::move(extracted->query);

    EmbeddingSet expected;
    baselines::MatcherOptions oracle;
    oracle.injective = injective;
    oracle.callback = Collector(&expected);
    baselines::MatcherResult brute =
        baselines::BruteForceMatch(query, data, oracle);
    ASSERT_TRUE(brute.Complete()) << "trial " << trial;

    EmbeddingSet found;
    opts.callback =
        daf::testing::VerifyingCollector(query, data, &found, injective);
    MatchResult result = DafMatch(query, data, opts, &context);
    ASSERT_TRUE(result.ok) << "trial " << trial;
    EXPECT_EQ(result.embeddings, expected.size()) << "trial " << trial;
    EXPECT_EQ(found, expected)
        << "trial " << trial << " order=" << static_cast<int>(opts.order)
        << " failing=" << opts.use_failing_sets
        << " leaves=" << opts.leaf_decomposition
        << " injective=" << injective << " edge_labeled=" << edge_labeled;

    if (injective) {  // VF2 enumerates embeddings only
      EmbeddingSet vf2_found;
      baselines::MatcherOptions vf2_opts;
      vf2_opts.callback = Collector(&vf2_found);
      baselines::MatcherResult vf2 =
          baselines::Vf2Match(query, data, vf2_opts);
      ASSERT_TRUE(vf2.Complete()) << "trial " << trial;
      EXPECT_EQ(vf2_found, expected) << "trial " << trial;
    }
  }
  // The shared context must have settled: by the end of a 25-trial shard the
  // arena has grown to the shard's high-water mark and stopped allocating.
  EXPECT_GT(context.arena_stats().capacity_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialTest,
                         ::testing::Range(0, kShards));

}  // namespace
}  // namespace daf

// Differential oracle for the dynamic-graph subsystem: seeded random
// update batches are applied through the full MatchService stack
// (DeltaGraph + incremental DynamicCandidateSpace + delta enumeration +
// subscription delivery), and after EVERY batch the folded result set of
// each standing query — initial matches, minus destroyed, plus created —
// must equal a from-scratch DafMatch on the materialized current graph.
// The matrix covers injective and homomorphism matching, unlabeled and
// edge-labeled graphs, and both maintenance paths (forced-incremental and
// forced-rebuild budgets): 8 configurations x 25 batches = 200 oracle
// checks. Runs under ASan and TSan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "daf/engine.h"
#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf::service {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

struct OracleConfig {
  bool injective = true;
  bool edge_labels = false;
  bool force_incremental = true;
  uint64_t seed = 0;
};

// A connected random graph over 3 vertex labels, with edge labels in
// {1, 2} when requested (0 would be the "unlabeled" label).
Graph RandomData(uint32_t n, uint64_t m, bool edge_labels, Rng& rng) {
  std::vector<Edge> edges = ErdosRenyiEdges(n, m, rng);
  ConnectComponents(n, &edges, rng);
  std::vector<Label> labels = ZipfLabels(n, 3, 0.5, rng);
  if (!edge_labels) return Graph::FromEdges(std::move(labels), edges);
  std::vector<Label> elabels(edges.size());
  for (Label& l : elabels) l = 1 + static_cast<Label>(rng.UniformInt(2));
  return Graph::FromLabeledEdges(std::move(labels), edges, elabels);
}

// The standing queries of one configuration: a path and a cycle over the
// data's label alphabet (edge-labeled variants when the data is).
std::vector<Graph> StandingQueries(bool edge_labels) {
  std::vector<Graph> queries;
  if (!edge_labels) {
    queries.push_back(MakePath({0, 1, 0}));
    queries.push_back(MakeCycle({0, 1, 2}));
    return queries;
  }
  queries.push_back(Graph::FromLabeledEdges({0, 1, 0}, {{0, 1}, {1, 2}},
                                            {1, 2}));
  queries.push_back(Graph::FromLabeledEdges(
      {0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}, {1, 1, 2}));
  return queries;
}

EmbeddingSet FreshMatch(const Graph& query, const Graph& data,
                        bool injective) {
  EmbeddingSet out;
  MatchOptions options;
  options.injective = injective;
  options.callback = Collector(&out);
  MatchResult r = DafMatch(query, data, options);
  EXPECT_TRUE(r.ok) << r.error;
  return out;
}

// One random batch against the current snapshot: edge inserts and removes,
// occasional vertex additions (immediately connected) and removals. Only
// alive vertices are referenced, so every batch is valid.
dyn::UpdateBatch RandomBatch(const Graph& snapshot, bool edge_labels,
                             Rng& rng) {
  const uint32_t n = snapshot.NumVertices();
  std::vector<VertexId> alive;
  alive.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (snapshot.original_label(snapshot.label(v)) !=
        dyn::DeltaGraph::kTombstoneLabel) {
      alive.push_back(v);
    }
  }
  auto pick_alive = [&] { return alive[rng.UniformInt(alive.size())]; };
  auto edge_label = [&]() -> Label {
    return edge_labels ? 1 + static_cast<Label>(rng.UniformInt(2)) : 0;
  };

  dyn::UpdateBatch batch;
  uint32_t next_new = n;
  const int ops = 1 + static_cast<int>(rng.UniformInt(4));
  for (int i = 0; i < ops; ++i) {
    const double p = static_cast<double>(rng.UniformInt(100)) / 100.0;
    if (p < 0.40) {
      const VertexId u = pick_alive(), v = pick_alive();
      if (u != v) batch.InsertEdge(u, v, edge_label());
    } else if (p < 0.78) {
      // Remove a random current edge.
      const VertexId u = pick_alive();
      auto neighbors = snapshot.Neighbors(u);
      if (!neighbors.empty()) {
        batch.RemoveEdge(u, neighbors[rng.UniformInt(neighbors.size())]);
      }
    } else if (p < 0.92) {
      // New vertex, wired in immediately so the graph stays interesting.
      const Label l = static_cast<Label>(rng.UniformInt(3));
      batch.AddVertex(l);
      batch.InsertEdge(next_new, pick_alive(), edge_label());
      ++next_new;
    } else {
      batch.RemoveVertex(pick_alive());
    }
  }
  return batch;
}

void RunOracle(const OracleConfig& config) {
  SCOPED_TRACE("injective=" + std::to_string(config.injective) +
               " edge_labels=" + std::to_string(config.edge_labels) +
               " incremental=" + std::to_string(config.force_incremental) +
               " seed=" + std::to_string(config.seed));
  Rng rng(config.seed);

  ServiceOptions options;
  options.num_workers = 1;
  if (config.force_incremental) {
    options.dyn_rebuild_min_dirty_pairs = uint64_t{1} << 40;
  } else {
    options.dyn_rebuild_min_dirty_pairs = 0;
    options.dyn_rebuild_dirty_fraction = 0.0;  // every batch rebuilds
  }
  MatchService service(RandomData(28, 60, config.edge_labels, rng),
                       options);

  std::vector<Graph> queries = StandingQueries(config.edge_labels);
  std::vector<SubscriptionHandle> subs;
  std::vector<EmbeddingSet> live;
  for (const Graph& q : queries) {
    QueryJob job;
    job.query = q;
    job.options.injective = config.injective;
    subs.push_back(service.Subscribe(std::move(job)));
    ASSERT_TRUE(subs.back().ok()) << subs.back().error();
    live.push_back(FreshMatch(q, *service.Snapshot(), config.injective));
  }

  constexpr int kBatches = 25;
  for (int round = 0; round < kBatches; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    dyn::UpdateBatch batch =
        RandomBatch(*service.Snapshot(), config.edge_labels, rng);
    UpdateOutcome out = service.ApplyUpdates(batch);
    ASSERT_TRUE(out.ok) << out.error;

    std::shared_ptr<const Graph> now = service.Snapshot();
    for (size_t s = 0; s < subs.size(); ++s) {
      SCOPED_TRACE("query " + std::to_string(s));
      for (DeltaBatch& db : subs[s].Drain()) {
        ASSERT_FALSE(db.resync);
        for (EmbeddingDelta& d : db.deltas) {
          if (d.created) {
            ASSERT_TRUE(live[s].insert(std::move(d.embedding)).second)
                << "duplicate created delta";
          } else {
            ASSERT_EQ(live[s].erase(d.embedding), 1u)
                << "destroyed delta was not live";
          }
        }
      }
      // The oracle: folded deltas == from-scratch match on the current
      // materialized graph, as exact embedding sets.
      EXPECT_EQ(live[s], FreshMatch(queries[s], *now, config.injective));
    }
  }

  // The intended maintenance path actually ran. (A zero budget still
  // serves a batch incrementally when it generates no dirty work at all,
  // so the rebuild configs assert presence, not exclusivity.)
  const auto m = service.Metrics();
  if (config.force_incremental) {
    EXPECT_EQ(m.dyn_cs_rebuilds, 0u);
  } else {
    EXPECT_GT(m.dyn_cs_rebuilds, 0u);
  }
  EXPECT_EQ(m.dyn_batches_applied, static_cast<uint64_t>(kBatches));
}

TEST(DynamicOracleTest, InjectiveUnlabeledIncremental) {
  RunOracle({true, false, true, 101});
}
TEST(DynamicOracleTest, InjectiveUnlabeledRebuild) {
  RunOracle({true, false, false, 102});
}
TEST(DynamicOracleTest, InjectiveEdgeLabeledIncremental) {
  RunOracle({true, true, true, 103});
}
TEST(DynamicOracleTest, InjectiveEdgeLabeledRebuild) {
  RunOracle({true, true, false, 104});
}
TEST(DynamicOracleTest, HomomorphismUnlabeledIncremental) {
  RunOracle({false, false, true, 105});
}
TEST(DynamicOracleTest, HomomorphismUnlabeledRebuild) {
  RunOracle({false, false, false, 106});
}
TEST(DynamicOracleTest, HomomorphismEdgeLabeledIncremental) {
  RunOracle({false, true, true, 107});
}
TEST(DynamicOracleTest, HomomorphismEdgeLabeledRebuild) {
  RunOracle({false, true, false, 108});
}

}  // namespace
}  // namespace daf::service

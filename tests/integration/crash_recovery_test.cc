// Crash-recovery oracle (docs/PERSISTENCE.md): fork a child that runs a
// durable MatchService over a seeded batch stream with a SIGKILL armed on
// a persistence fault point (FaultInjector::KillNth), let it die
// mid-write, then recover the directory in the parent and check the
// recovered graph differentially against a never-crashed replica that
// applied the same deterministic batch prefix.
//
// The invariant: after a kill at ANY point, recovery yields exactly the
// state after some prefix of the committed batches — never a torn or
// merged state, and never a batch the service hadn't logged.
#include <gtest/gtest.h>

#ifdef __unix__

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "persist/store.h"
#include "service/match_service.h"
#include "tests/persist/persist_test_util.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace daf {
namespace {

using daf::testing::ScopedTempDir;

constexpr int kBatchesPerRun = 12;

Graph BaseGraph() {
  Rng rng(4242);
  return daf::testing::RandomDataGraph(30, 60, 3, rng);
}

/// Picks a live vertex deterministically (bounded probing).
VertexId PickAlive(const dyn::DeltaGraph& g, Rng& rng) {
  for (int tries = 0; tries < 64; ++tries) {
    const VertexId v = rng.UniformInt(g.NumVertices());
    if (g.Alive(v)) return v;
  }
  return 0;
}

/// The deterministic batch stream for `seed`: every batch is valid against
/// the state produced by its predecessors (simulated on `sim`), so child,
/// replica, and WAL replay all see the same history.
std::vector<dyn::UpdateBatch> GenBatches(const Graph& base, uint64_t seed) {
  dyn::DeltaGraph sim(base);
  Rng rng(seed);
  std::vector<dyn::UpdateBatch> out;
  for (int i = 0; i < kBatchesPerRun; ++i) {
    dyn::UpdateBatch batch;
    switch (rng.UniformInt(4)) {
      case 0: {  // grow: new vertex wired to an existing one
        batch.AddVertex(static_cast<Label>(rng.UniformInt(3)));
        batch.InsertEdge(sim.NumVertices(), PickAlive(sim, rng));
        break;
      }
      case 1: {  // densify
        const VertexId u = PickAlive(sim, rng);
        const VertexId v = PickAlive(sim, rng);
        if (u != v) batch.InsertEdge(u, v, static_cast<Label>(rng.UniformInt(2)));
        batch.AddVertex(static_cast<Label>(rng.UniformInt(3)));
        break;
      }
      case 2: {  // sparsify: drop an existing edge
        const auto edges = sim.CurrentEdges();
        if (!edges.empty()) {
          const auto& e = edges[rng.UniformInt(
              static_cast<uint32_t>(edges.size()))];
          batch.RemoveEdge(e.first.first, e.first.second);
        }
        batch.AddVertex(static_cast<Label>(rng.UniformInt(3)));
        break;
      }
      case 3: {  // tombstone a vertex
        batch.RemoveVertex(PickAlive(sim, rng));
        break;
      }
    }
    const dyn::ApplyResult r = sim.ApplyBatch(batch);
    if (!r.ok) ADD_FAILURE() << "generated invalid batch: " << r.error;
    out.push_back(std::move(batch));
  }
  return out;
}

/// Aggressive compaction so checkpoints (snapshot_write / snapshot_rename
/// polls) actually happen within a 12-batch run.
dyn::DeltaGraph::Options AggressiveCompaction() {
  dyn::DeltaGraph::Options o;
  o.compaction_ratio = 0.01;
  o.compaction_min_edges = 1;
  return o;
}

persist::DurableStore::Options StoreOptions() {
  persist::DurableStore::Options o;
  o.fsync_policy = persist::FsyncPolicy::kEveryBatch;
  o.delta_options = AggressiveCompaction();
  return o;
}

/// Child body: run the durable service with a kill armed; never returns.
[[noreturn]] void RunChild(const std::string& dir, const std::string& point,
                           uint64_t nth, uint64_t seed) {
  std::string error;
  auto store = persist::DurableStore::Open(dir, StoreOptions(), &error);
  if (store == nullptr) _exit(2);

  service::ServiceOptions options;
  options.num_workers = 1;
  options.delta_compaction_ratio = 0.01;
  options.delta_compaction_min_edges = 1;
  options.data_store = std::move(store);
  service::MatchService service(BaseGraph(), options);
  if (!service.Metrics().persist_enabled) _exit(3);

  // Armed AFTER construction: the n-th poll counts from here, so the seed
  // snapshot's own writes aren't the ones killed.
  FaultInjector::KillNth(point, nth);
  for (const dyn::UpdateBatch& batch : GenBatches(BaseGraph(), seed)) {
    const service::UpdateOutcome out = service.ApplyUpdates(batch);
    if (!out.ok) _exit(4);  // only the kill may stop the stream
  }
  _exit(0);  // kill point never reached at this nth — also legal
}

/// Forks the child, waits for the SIGKILL (or clean exit), then recovers
/// and differentially checks against a never-crashed replica.
void RunCrashCase(const std::string& point, uint64_t nth, uint64_t seed,
                  bool expect_kill) {
  SCOPED_TRACE("point=" + point + " nth=" + std::to_string(nth) +
               " seed=" + std::to_string(seed));
  ScopedTempDir dir;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunChild(dir.path(), point, nth, seed);

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  } else {
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "child failed before the kill";
    EXPECT_FALSE(expect_kill)
        << "kill point " << point << " was never polled";
  }

  // Recovery must succeed no matter where the kill landed.
  std::string error;
  auto store = persist::DurableStore::Open(dir.path(), StoreOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->has_state());
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  const uint64_t version = recovered.version();
  ASSERT_LE(version, static_cast<uint64_t>(kBatchesPerRun));

  // Replica: the same deterministic prefix, never crashed.
  dyn::DeltaGraph replica(BaseGraph(), AggressiveCompaction());
  const std::vector<dyn::UpdateBatch> batches = GenBatches(BaseGraph(), seed);
  for (uint64_t i = 0; i < version; ++i) {
    const dyn::ApplyResult r = replica.ApplyBatch(batches[i]);
    ASSERT_TRUE(r.ok) << r.error;
  }
  const Graph::CsrParts got = recovered.Materialize()->ToCsrParts();
  const Graph::CsrParts want = replica.Materialize()->ToCsrParts();
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.offsets, want.offsets);
  EXPECT_EQ(got.adjacency, want.adjacency);
  EXPECT_EQ(got.edge_labels, want.edge_labels);
  EXPECT_EQ(recovered.NumVertices(), replica.NumVertices());
  EXPECT_EQ(recovered.NumEdges(), replica.NumEdges());
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  ~CrashRecoveryTest() override { FaultInjector::Disarm(); }
};

// wal_append polls twice per append: nth=1 dies before the first byte of
// the first record, nth=4 dies mid-record in the second append — the
// genuine torn-tail case.
TEST_F(CrashRecoveryTest, KillBeforeFirstWalByte) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("wal_append", 1, seed, /*expect_kill=*/true);
  }
}

TEST_F(CrashRecoveryTest, KillMidWalRecord) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("wal_append", 4, seed, /*expect_kill=*/true);
  }
}

TEST_F(CrashRecoveryTest, KillAtFsync) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("wal_fsync", 2, seed, /*expect_kill=*/true);
  }
}

TEST_F(CrashRecoveryTest, KillDuringSnapshotWrite) {
  // Compaction cadence depends on the batch mix, so the point may not be
  // polled for every seed; recovery must hold either way.
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("snapshot_write", 1, seed, /*expect_kill=*/false);
  }
}

TEST_F(CrashRecoveryTest, KillAtSnapshotRename) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("snapshot_rename", 1, seed, /*expect_kill=*/false);
  }
}

TEST_F(CrashRecoveryTest, KillLateInTheStream) {
  // Deep into the run: several checkpoints behind, mid-append ahead.
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunCrashCase("wal_append", 17, seed, /*expect_kill=*/false);
  }
}

}  // namespace
}  // namespace daf

#else  // !__unix__

TEST(CrashRecoveryTest, SkippedOnNonUnix) { GTEST_SKIP(); }

#endif

#include <gtest/gtest.h>

#include "baselines/cfl_match.h"
#include "daf/engine.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/negative.h"
#include "workload/querygen.h"

namespace daf {
namespace {

// Scenario of Figure 2(a)/(b): spanning-tree path p1 has many embeddings,
// path p2 has many embeddings, but the non-tree edge (u3, u4) kills almost
// every combination. A spanning-tree-based matcher that postpones the
// non-tree edge pays the Cartesian product; DAF's CS prunes it during
// preprocessing because the DP uses *all* edges.
TEST(PaperScenariosTest, RedundantCartesianProductsAvoided) {
  // Query: u1(A) - u2(B) - u4(D) - u6(F), u1 - u3(C) - u5(E), u3 - u4
  // (the non-tree edge). Data: v1(A); 30 B-children each with a D-child
  // and F-grandchild; 40 C-children each with an E-child; but only ONE
  // (C, D) pair is actually connected.
  Graph query = Graph::FromEdges(
      {0, 1, 2, 3, 4, 5},
      {{0, 1}, {1, 3}, {3, 5}, {0, 2}, {2, 4}, {2, 3}});
  std::vector<Label> labels{0};  // v0 = A
  std::vector<Edge> edges;
  std::vector<VertexId> d_vertices;
  std::vector<VertexId> c_vertices;
  for (int i = 0; i < 30; ++i) {
    VertexId b = static_cast<VertexId>(labels.size());
    labels.push_back(1);
    edges.emplace_back(0, b);
    VertexId d = static_cast<VertexId>(labels.size());
    labels.push_back(3);
    edges.emplace_back(b, d);
    d_vertices.push_back(d);
    VertexId f = static_cast<VertexId>(labels.size());
    labels.push_back(5);
    edges.emplace_back(d, f);
  }
  for (int i = 0; i < 40; ++i) {
    VertexId c = static_cast<VertexId>(labels.size());
    labels.push_back(2);
    edges.emplace_back(0, c);
    c_vertices.push_back(c);
    VertexId e = static_cast<VertexId>(labels.size());
    labels.push_back(4);
    edges.emplace_back(c, e);
  }
  edges.emplace_back(c_vertices[0], d_vertices[0]);  // the only C-D edge
  Graph data = Graph::FromEdges(std::move(labels), edges);

  daf::testing::EmbeddingSet found;
  MatchOptions verify_opts;
  verify_opts.callback = daf::testing::VerifyingCollector(query, data, &found);
  MatchResult daf_result = DafMatch(query, data, verify_opts);
  ASSERT_TRUE(daf_result.ok);
  EXPECT_EQ(daf_result.embeddings, 1u);
  EXPECT_EQ(found.size(), 1u);
  // The CS keeps only the one viable (C, D) pair, so the search tree stays
  // tiny — no 30 x 40 Cartesian product.
  EXPECT_LT(daf_result.recursive_calls, 20u);
  // The CS candidate count collapses: u2/u4/u6 keep 1 candidate each.
  EXPECT_LE(daf_result.cs_candidates, 10u);

  baselines::MatcherResult cfl = baselines::CflMatch(query, data, {});
  ASSERT_TRUE(cfl.ok);
  EXPECT_EQ(cfl.embeddings, 1u);
}

// Appendix A.3 behavior: negativity certified by an empty candidate set
// costs zero search.
TEST(PaperScenariosTest, NegativeQueriesOftenCertifiedByCs) {
  Rng rng(151);
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, 0.2, 1);
  int negatives = 0;
  int certified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto extracted = ExtractRandomWalkQuery(data, 8, -1.0, rng);
    if (!extracted) continue;
    Graph perturbed = workload::PerturbLabels(extracted->query, data, 4, rng);
    MatchOptions opts;
    opts.limit = 1;
    MatchResult result = DafMatch(perturbed, data, opts);
    ASSERT_TRUE(result.ok);
    if (result.embeddings == 0) {
      ++negatives;
      if (result.cs_certified_negative) {
        ++certified;
        EXPECT_EQ(result.recursive_calls, 0u);
      }
    }
  }
  ASSERT_GT(negatives, 0);
  // The paper observes that most label-perturbed negatives have CS size 0.
  EXPECT_GT(certified * 2, negatives);
}

// End-to-end pipeline: dataset synthesis -> query set -> match with the
// paper's k = 10^5 protocol (scaled down).
TEST(PaperScenariosTest, QuerySetPipelineRuns) {
  Rng rng(152);
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, 0.3, 2);
  workload::QuerySet set = workload::MakeQuerySet(data, 8, true, 5, rng);
  ASSERT_EQ(set.queries.size(), 5u);
  for (const Graph& q : set.queries) {
    daf::testing::EmbeddingSet found;
    MatchOptions opts;
    opts.limit = 1000;
    opts.time_limit_ms = 10000;
    // Every enumerated embedding is verified against the graphs, not just
    // counted.
    opts.callback = daf::testing::VerifyingCollector(q, data, &found);
    MatchResult result = DafMatch(q, data, opts);
    ASSERT_TRUE(result.ok);
    EXPECT_GE(result.embeddings, 1u);  // positive by construction
    EXPECT_EQ(found.size(), result.embeddings);
  }
}

// The DA -> DAF relationship of Section 7.1: failing sets never lose
// solutions and never increase the number of recursive calls.
TEST(PaperScenariosTest, DafNeverWorseThanDaInCalls) {
  Rng rng(153);
  Graph data = workload::MakeDataset(workload::DatasetId::kYeast, 0.2, 3);
  uint64_t total_da = 0;
  uint64_t total_daf = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto extracted = ExtractRandomWalkQuery(data, 10, -1.0, rng);
    if (!extracted) continue;
    MatchOptions da;
    da.use_failing_sets = false;
    da.limit = 2000;
    MatchOptions daf;
    daf.use_failing_sets = true;
    daf.limit = 2000;
    MatchResult r_da = DafMatch(extracted->query, data, da);
    MatchResult r_daf = DafMatch(extracted->query, data, daf);
    ASSERT_TRUE(r_da.ok && r_daf.ok);
    EXPECT_EQ(r_da.embeddings, r_daf.embeddings);
    total_da += r_da.recursive_calls;
    total_daf += r_daf.recursive_calls;
  }
  EXPECT_LE(total_daf, total_da);
}

}  // namespace
}  // namespace daf

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/bruteforce.h"
#include "baselines/cfl_match.h"
#include "baselines/gaddi.h"
#include "baselines/graphql.h"
#include "baselines/quicksi.h"
#include "baselines/spath.h"
#include "baselines/turboiso.h"
#include "baselines/vf2.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf::baselines {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;
using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;

using MatchFn = MatcherResult (*)(const Graph&, const Graph&,
                                  const MatcherOptions&);

struct NamedAlgorithm {
  const char* name;
  MatchFn fn;
};

constexpr NamedAlgorithm kAlgorithms[] = {
    {"VF2", &Vf2Match},         {"QuickSI", &QuickSiMatch},
    {"GraphQL", &GraphQlMatch}, {"SPath", &SPathMatch},
    {"GADDI", &GaddiMatch},     {"TurboIso", &TurboIsoMatch},
    {"CFL", &CflMatch},
};

// Parameterized over (algorithm index, generator seed): every baseline must
// enumerate exactly the brute-force embedding set on random positive and
// near-negative instances.
class BaselineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineEquivalenceTest, MatchesBruteForceExactly) {
  const auto [algorithm_index, seed] = GetParam();
  const NamedAlgorithm& algorithm = kAlgorithms[algorithm_index];
  Rng rng(1000 + seed);
  for (int trial = 0; trial < 8; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(30 + rng.UniformInt(50),
                                      80 + rng.UniformInt(160), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 3 + rng.UniformInt(6),
                               rng.Bernoulli(0.5) ? 2.5 : -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet expected;
    MatcherOptions brute_opts;
    brute_opts.callback = Collector(&expected);
    BruteForceMatch(extracted->query, data, brute_opts);

    EmbeddingSet found;
    MatcherOptions opts;
    opts.callback = Collector(&found);
    MatcherResult result = algorithm.fn(extracted->query, data, opts);
    ASSERT_TRUE(result.ok) << algorithm.name;
    EXPECT_EQ(result.embeddings, expected.size()) << algorithm.name;
    EXPECT_EQ(found, expected) << algorithm.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kAlgorithms[std::get<0>(info.param)].name) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

class BaselineFixedInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineFixedInstanceTest, TriangleInClique) {
  const NamedAlgorithm& algorithm = kAlgorithms[GetParam()];
  Graph data = MakeClique({0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});
  MatcherResult result = algorithm.fn(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 60u) << algorithm.name;
}

TEST_P(BaselineFixedInstanceTest, NoEmbeddingOnMissingLabel) {
  const NamedAlgorithm& algorithm = kAlgorithms[GetParam()];
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 9});
  MatcherResult result = algorithm.fn(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 0u) << algorithm.name;
}

TEST_P(BaselineFixedInstanceTest, LimitStopsEarly) {
  const NamedAlgorithm& algorithm = kAlgorithms[GetParam()];
  Graph data = MakeClique({0, 0, 0, 0, 0, 0});
  Graph query = MakeCycle({0, 0, 0});  // 120 embeddings
  MatcherOptions opts;
  opts.limit = 9;
  MatcherResult result = algorithm.fn(query, data, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 9u) << algorithm.name;
  EXPECT_TRUE(result.limit_reached) << algorithm.name;
  EXPECT_FALSE(result.Complete()) << algorithm.name;
}

TEST_P(BaselineFixedInstanceTest, SingleEdgeQuery) {
  const NamedAlgorithm& algorithm = kAlgorithms[GetParam()];
  Graph data = MakePath({0, 1, 0});
  Graph query = MakePath({0, 1});
  MatcherResult result = algorithm.fn(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u) << algorithm.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BaselineFixedInstanceTest, ::testing::Range(0, 7),
    [](const ::testing::TestParamInfo<int>& info) {
      return kAlgorithms[info.param].name;
    });

TEST(BruteForceTest, HandlesDisconnectedQueries) {
  // Two isolated query vertices of label 0 in a 3-vertex label-0 path:
  // 3 * 2 = 6 ordered embeddings.
  Graph data = MakePath({0, 0, 0});
  Graph query = Graph::FromEdges({0, 0}, {});
  MatcherResult result = BruteForceMatch(query, data, {});
  EXPECT_EQ(result.embeddings, 6u);
}

TEST(BruteForceTest, TimeoutFires) {
  std::vector<Label> labels(40, 0);
  Graph data = MakeClique(labels);
  Graph query = MakeClique(std::vector<Label>(10, 0));
  MatcherOptions opts;
  opts.time_limit_ms = 1;
  MatcherResult result = BruteForceMatch(query, data, opts);
  EXPECT_TRUE(result.timed_out);
}

}  // namespace
}  // namespace daf::baselines

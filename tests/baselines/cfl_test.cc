#include "baselines/cfl_match.h"

#include <gtest/gtest.h>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf::baselines {
namespace {

using daf::testing::MakeCycle;
using daf::testing::MakePath;

TEST(CflMatchTest, ReportsAuxiliaryStructureSize) {
  Rng rng(121);
  Graph data = daf::testing::RandomDataGraph(60, 180, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 6, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  MatcherResult result = CflMatch(extracted->query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.aux_size, 0u);
}

TEST(CflMatchTest, CpiIsNeverSmallerThanCs) {
  // The CS uses all query edges in its DP while the CPI refines along tree
  // edges (plus backward-edge checks), so Σ|C(u)| of the CS must be <= the
  // CPI's on the same instance — the Figure 9 relationship.
  // The roots (and hence BFS trees) of the two structures may differ, so
  // the comparison is aggregated over instances, as in Figure 9.
  Rng rng(122);
  int checked = 0;
  uint64_t total_cs = 0;
  uint64_t total_cpi = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(60, 150 + rng.UniformInt(150), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 5 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    MatcherResult cfl = CflMatch(extracted->query, data, {});
    if (!cfl.ok || cfl.aux_size == 0) continue;
    QueryDag dag = QueryDag::Build(extracted->query, data);
    CandidateSpace cs = CandidateSpace::Build(extracted->query, dag, data);
    total_cs += cs.TotalCandidates();
    total_cpi += cfl.aux_size;
    ++checked;
  }
  EXPECT_GT(checked, 5);
  EXPECT_LE(total_cs, total_cpi);
}

TEST(CflMatchTest, RejectsDisconnectedQuery) {
  Graph data = MakePath({0, 0, 0});
  Graph query = Graph::FromEdges({0, 0}, {});
  MatcherResult result = CflMatch(query, data, {});
  EXPECT_FALSE(result.ok);
}

TEST(CflMatchTest, HandlesTreeQueriesWithoutCore) {
  // A path query has an empty 2-core; the core-forest-leaf decomposition
  // must still produce a valid order.
  Graph data = MakePath({0, 1, 2, 1, 0});
  Graph query = MakePath({0, 1, 2});
  MatcherResult result = CflMatch(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(CflMatchTest, HandlesCliqueQueries) {
  // A clique query is all core.
  Graph data = daf::testing::MakeClique({0, 0, 0, 0, 0});
  Graph query = daf::testing::MakeClique({0, 0, 0, 0});
  MatcherResult result = CflMatch(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 120u);  // 5*4*3*2
}

TEST(CflMatchTest, SingleVertexQuery) {
  Graph data = MakePath({3, 3, 4});
  Graph query = Graph::FromEdges({3}, {});
  MatcherResult result = CflMatch(query, data, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.embeddings, 2u);
}

}  // namespace
}  // namespace daf::baselines

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges({}, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, BasicAccessors) {
  // Triangle + pendant: 0-1, 1-2, 0-2, 2-3. Labels 5,5,9,7.
  Graph g = Graph::FromEdges({5, 5, 9, 7}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.NumLabels(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, LabelRemappingPreservesOriginals) {
  Graph g = Graph::FromEdges({100, 7, 100}, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.NumLabels(), 2u);
  // Dense labels are ordered by original value: 7 -> 0, 100 -> 1.
  EXPECT_EQ(g.label(0), 1u);
  EXPECT_EQ(g.label(1), 0u);
  EXPECT_EQ(g.original_label(0), 7u);
  EXPECT_EQ(g.original_label(1), 100u);
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges({0, 0}, {{0, 1}, {1, 0}, {0, 0}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphTest, AdjacencySortedByLabelThenId) {
  // Vertex 0 adjacent to 1(label 2), 2(label 1), 3(label 1).
  Graph g =
      Graph::FromEdges({0, 2, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  auto neighbors = g.Neighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], 2u);  // label 1, id 2
  EXPECT_EQ(neighbors[1], 3u);  // label 1, id 3
  EXPECT_EQ(neighbors[2], 1u);  // label 2
}

TEST(GraphTest, NeighborsWithLabel) {
  Graph g =
      Graph::FromEdges({0, 2, 1, 1, 2}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto ones = g.NeighborsWithLabel(0, 1);
  ASSERT_EQ(ones.size(), 2u);
  EXPECT_EQ(ones[0], 2u);
  EXPECT_EQ(ones[1], 3u);
  auto twos = g.NeighborsWithLabel(0, 2);
  ASSERT_EQ(twos.size(), 2u);
  EXPECT_EQ(g.NeighborsWithLabel(1, 2).size(), 0u);
  EXPECT_EQ(g.NeighborLabelCount(0, 1), 2u);
  EXPECT_EQ(g.NeighborLabelVariety(0), 2u);
}

TEST(GraphTest, HasEdge) {
  Graph g = Graph::FromEdges({0, 1, 2, 0}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, VerticesWithLabelAndFrequency) {
  Graph g = Graph::FromEdges({3, 3, 8, 3}, {{0, 1}, {1, 2}, {2, 3}});
  auto threes = g.VerticesWithLabel(0);  // dense label of original 3
  ASSERT_EQ(threes.size(), 3u);
  EXPECT_TRUE(std::is_sorted(threes.begin(), threes.end()));
  EXPECT_EQ(g.LabelFrequency(0), 3u);
  EXPECT_EQ(g.LabelFrequency(1), 1u);
}

TEST(GraphTest, MaxNeighborDegree) {
  Graph star = daf::testing::MakeStar({0, 1, 1, 1});
  EXPECT_EQ(star.MaxNeighborDegree(0), 1u);
  EXPECT_EQ(star.MaxNeighborDegree(1), 3u);
}

TEST(GraphTest, EdgeListRoundTrip) {
  Rng rng(11);
  Graph g = daf::testing::RandomDataGraph(40, 90, 4, rng);
  std::vector<Label> labels(g.NumVertices());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    labels[v] = g.original_label(g.label(v));
  }
  Graph g2 = Graph::FromEdges(labels, g.EdgeList());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g2.degree(v), g.degree(v));
    EXPECT_EQ(g2.label(v), g.label(v));
  }
}

TEST(MapQueryLabelsTest, MapsSharedAndMissingLabels) {
  Graph data = Graph::FromEdges({10, 20, 30}, {{0, 1}, {1, 2}});
  Graph query = Graph::FromEdges({20, 99}, {{0, 1}});
  std::vector<Label> mapped = MapQueryLabels(query, data);
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_EQ(data.original_label(mapped[0]), 20u);
  EXPECT_EQ(mapped[1], kNoSuchLabel);
}

TEST(MapQueryLabelsTest, IdentityWhenAlphabetsMatch) {
  Rng rng(12);
  Graph data = daf::testing::RandomDataGraph(30, 60, 5, rng);
  std::vector<Label> mapped = MapQueryLabels(data, data);
  for (uint32_t v = 0; v < data.NumVertices(); ++v) {
    EXPECT_EQ(mapped[v], data.label(v));
  }
}

}  // namespace
}  // namespace daf

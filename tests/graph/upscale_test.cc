#include "graph/upscale.h"

#include <gtest/gtest.h>

#include "graph/properties.h"
#include "tests/test_util.h"

namespace daf {
namespace {

TEST(UpscaleTest, ScalesVerticesAndEdges) {
  Rng rng(41);
  Graph g = daf::testing::RandomDataGraph(100, 400, 5, rng);
  for (uint32_t factor : {2u, 4u, 8u}) {
    Rng local(42);
    Graph big = Upscale(g, factor, local);
    EXPECT_EQ(big.NumVertices(), g.NumVertices() * factor);
    // Edge count within 2% of factor * |E| (duplicates after rewiring plus
    // a few connecting bridges cause slight deviations).
    double expected = static_cast<double>(g.NumEdges()) * factor;
    EXPECT_NEAR(static_cast<double>(big.NumEdges()), expected,
                expected * 0.02 + factor);
  }
}

TEST(UpscaleTest, PreservesLabelFrequencies) {
  Rng rng(43);
  Graph g = daf::testing::RandomDataGraph(80, 240, 4, rng);
  Rng local(44);
  Graph big = Upscale(g, 4, local);
  ASSERT_EQ(big.NumLabels(), g.NumLabels());
  for (uint32_t l = 0; l < g.NumLabels(); ++l) {
    EXPECT_EQ(big.LabelFrequency(l), g.LabelFrequency(l) * 4);
  }
}

TEST(UpscaleTest, ResultIsConnected) {
  Rng rng(45);
  Graph g = daf::testing::RandomDataGraph(60, 150, 3, rng);
  Rng local(46);
  Graph big = Upscale(g, 8, local);
  EXPECT_TRUE(IsConnected(big));
}

TEST(UpscaleTest, FactorOneKeepsStatistics) {
  Rng rng(47);
  Graph g = daf::testing::RandomDataGraph(60, 150, 3, rng);
  Rng local(48);
  Graph same = Upscale(g, 1, local);
  EXPECT_EQ(same.NumVertices(), g.NumVertices());
  EXPECT_EQ(same.NumEdges(), g.NumEdges());
}

TEST(UpscaleTest, CarriesEdgeLabels) {
  Graph g = Graph::FromLabeledEdges({0, 1, 0}, {{0, 1}, {1, 2}}, {3, 7});
  Rng rng(51);
  Graph big = Upscale(g, 3, rng, /*rewire_probability=*/0.0);
  EXPECT_TRUE(big.HasNontrivialEdgeLabels());
  // Copy c of edge (u, v) keeps the original edge label.
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(big.EdgeLabelBetween(c * 3 + 0, c * 3 + 1), 3u);
    EXPECT_EQ(big.EdgeLabelBetween(c * 3 + 1, c * 3 + 2), 7u);
  }
}

TEST(UpscaleTest, PreservesAverageDegreeApproximately) {
  Rng rng(49);
  Graph g = daf::testing::RandomDataGraph(100, 500, 4, rng);
  Rng local(50);
  Graph big = Upscale(g, 16, local);
  EXPECT_NEAR(big.AverageDegree(), g.AverageDegree(),
              0.05 * g.AverageDegree());
}

}  // namespace
}  // namespace daf

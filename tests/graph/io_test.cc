#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tests/test_util.h"

namespace daf {
namespace {

TEST(IoTest, ParsesWellFormedText) {
  std::string text =
      "# comment\n"
      "t 3 2\n"
      "v 0 10\n"
      "v 1 20\n"
      "v 2 10\n"
      "e 0 1\n"
      "e 1 2\n";
  std::string error;
  auto g = ParseGraphText(text, &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_EQ(g->original_label(g->label(0)), 10u);
  EXPECT_EQ(g->original_label(g->label(1)), 20u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(0, 2));
}

TEST(IoTest, AcceptsDegreeColumnAndEdgeLabels) {
  std::string text =
      "t 2 1\n"
      "v 0 5 1\n"
      "v 1 5 1\n"
      "e 0 1 3\n";
  std::string error;
  auto g = ParseGraphText(text, &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(IoTest, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(ParseGraphText("v 0 1\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(IoTest, RejectsOutOfRangeVertex) {
  std::string error;
  EXPECT_FALSE(ParseGraphText("t 2 1\nv 5 0\n", &error).has_value());
}

TEST(IoTest, RejectsOutOfRangeEdge) {
  std::string error;
  EXPECT_FALSE(
      ParseGraphText("t 2 1\nv 0 0\nv 1 0\ne 0 7\n", &error).has_value());
}

TEST(IoTest, RejectsUnknownTag) {
  std::string error;
  EXPECT_FALSE(ParseGraphText("t 1 0\nx 0\n", &error).has_value());
}

TEST(IoTest, TextRoundTrip) {
  Rng rng(21);
  Graph g = daf::testing::RandomDataGraph(50, 120, 6, rng);
  std::string error;
  auto g2 = ParseGraphText(GraphToText(g), &error);
  ASSERT_TRUE(g2.has_value()) << error;
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g2->original_label(g2->label(v)), g.original_label(g.label(v)));
    EXPECT_EQ(g2->degree(v), g.degree(v));
  }
}

TEST(IoTest, FileRoundTrip) {
  Rng rng(22);
  Graph g = daf::testing::RandomDataGraph(30, 70, 4, rng);
  std::string path = ::testing::TempDir() + "/daf_io_test_graph.txt";
  std::string error;
  ASSERT_TRUE(SaveGraph(g, path, &error)) << error;
  auto g2 = LoadGraph(path, &error);
  ASSERT_TRUE(g2.has_value()) << error;
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTrip) {
  Rng rng(23);
  Graph g = daf::testing::RandomDataGraph(60, 150, 5, rng);
  std::string path = ::testing::TempDir() + "/daf_io_test_graph.dafg";
  std::string error;
  ASSERT_TRUE(SaveGraphBinary(g, path, &error)) << error;
  auto g2 = LoadGraphBinary(path, &error);
  ASSERT_TRUE(g2.has_value()) << error;
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g2->original_label(g2->label(v)), g.original_label(g.label(v)));
    EXPECT_EQ(g2->degree(v), g.degree(v));
  }
  EXPECT_EQ(g2->EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripWithEdgeLabels) {
  Graph g = Graph::FromLabeledEdges({1, 2, 1}, {{0, 1}, {1, 2}}, {4, 9});
  std::string path = ::testing::TempDir() + "/daf_io_test_labeled.dafg";
  std::string error;
  ASSERT_TRUE(SaveGraphBinary(g, path, &error)) << error;
  auto g2 = LoadGraphBinary(path, &error);
  ASSERT_TRUE(g2.has_value()) << error;
  EXPECT_TRUE(g2->HasNontrivialEdgeLabels());
  EXPECT_EQ(g2->EdgeLabelBetween(0, 1), 4u);
  EXPECT_EQ(g2->EdgeLabelBetween(1, 2), 9u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsGarbage) {
  std::string path = ::testing::TempDir() + "/daf_io_test_garbage.dafg";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  std::string error;
  EXPECT_FALSE(LoadGraphBinary(path, &error).has_value());
  EXPECT_NE(error.find("DAFG"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  Rng rng(24);
  Graph g = daf::testing::RandomDataGraph(30, 70, 3, rng);
  std::string path = ::testing::TempDir() + "/daf_io_test_trunc.dafg";
  std::string error;
  ASSERT_TRUE(SaveGraphBinary(g, path, &error)) << error;
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string content = buffer.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<int64_t>(content.size() / 2));
  }
  EXPECT_FALSE(LoadGraphBinary(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(LoadGraph("/nonexistent/definitely/missing.txt", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace daf

#include "graph/query_extract.h"

#include <gtest/gtest.h>

#include "graph/properties.h"
#include "tests/test_util.h"

namespace daf {
namespace {

TEST(QueryExtractTest, ExtractsRequestedSizeAndConnectivity) {
  Rng rng(31);
  Graph data = daf::testing::RandomDataGraph(200, 600, 5, rng);
  for (uint32_t size : {2u, 5u, 10u, 25u}) {
    auto extracted = ExtractRandomWalkQuery(data, size, -1.0, rng);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(extracted->query.NumVertices(), size);
    EXPECT_TRUE(IsConnected(extracted->query));
  }
}

TEST(QueryExtractTest, WitnessIsAnEmbedding) {
  Rng rng(32);
  Graph data = daf::testing::RandomDataGraph(150, 500, 4, rng);
  for (int trial = 0; trial < 20; ++trial) {
    auto extracted = ExtractRandomWalkQuery(data, 8, -1.0, rng);
    ASSERT_TRUE(extracted.has_value());
    const Graph& q = extracted->query;
    const auto& witness = extracted->witness;
    // Distinct data vertices with matching labels.
    std::set<VertexId> distinct(witness.begin(), witness.end());
    EXPECT_EQ(distinct.size(), witness.size());
    for (uint32_t u = 0; u < q.NumVertices(); ++u) {
      EXPECT_EQ(q.original_label(q.label(u)),
                data.original_label(data.label(witness[u])));
    }
    // Every query edge realized in the data graph.
    for (const Edge& e : q.EdgeList()) {
      EXPECT_TRUE(data.HasEdge(witness[e.first], witness[e.second]));
    }
  }
}

TEST(QueryExtractTest, SparseTargetBoundsAverageDegree) {
  Rng rng(33);
  Graph data = daf::testing::RandomDataGraph(300, 2400, 3, rng);  // dense
  for (int trial = 0; trial < 10; ++trial) {
    auto extracted = ExtractRandomWalkQuery(data, 12, 2.6, rng);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_LE(extracted->query.AverageDegree(), 3.0);
    EXPECT_TRUE(IsConnected(extracted->query));
  }
}

TEST(QueryExtractTest, NegativeTargetKeepsAllInducedEdges) {
  Rng rng(34);
  Graph data = daf::testing::MakeClique({0, 0, 0, 0, 0, 0});
  auto extracted = ExtractRandomWalkQuery(data, 4, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  // Induced subgraph of a clique on 4 vertices is K4.
  EXPECT_EQ(extracted->query.NumEdges(), 6u);
}

TEST(QueryExtractTest, FailsWhenDataTooSmall) {
  Rng rng(35);
  Graph data = daf::testing::MakePath({0, 0, 0});
  EXPECT_FALSE(ExtractRandomWalkQuery(data, 10, -1.0, rng).has_value());
  EXPECT_FALSE(ExtractRandomWalkQuery(data, 0, -1.0, rng).has_value());
}

TEST(QueryExtractTest, SingleVertexQuery) {
  Rng rng(36);
  Graph data = daf::testing::RandomDataGraph(50, 100, 3, rng);
  auto extracted = ExtractRandomWalkQuery(data, 1, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->query.NumVertices(), 1u);
  EXPECT_EQ(extracted->query.NumEdges(), 0u);
}

}  // namespace
}  // namespace daf

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/properties.h"

namespace daf {
namespace {

TEST(GeneratorsTest, ZipfLabelsInRangeAndComplete) {
  Rng rng(1);
  std::vector<Label> labels = ZipfLabels(1000, 10, 1.0, rng);
  ASSERT_EQ(labels.size(), 1000u);
  std::set<Label> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 10u);  // every label realized
  for (Label l : labels) EXPECT_LT(l, 10u);
}

TEST(GeneratorsTest, ZipfLabelsAreSkewed) {
  Rng rng(2);
  std::vector<Label> labels = ZipfLabels(20000, 10, 1.2, rng);
  std::vector<int> counts(10, 0);
  for (Label l : labels) ++counts[l];
  // With exponent 1.2, label 0 should clearly dominate label 9.
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(GeneratorsTest, ZeroExponentIsRoughlyUniform) {
  Rng rng(3);
  std::vector<Label> labels = ZipfLabels(20000, 4, 0.0, rng);
  std::vector<int> counts(4, 0);
  for (Label l : labels) ++counts[l];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(GeneratorsTest, ErdosRenyiExactEdgeCount) {
  Rng rng(4);
  std::vector<Edge> edges = ErdosRenyiEdges(100, 300, rng);
  EXPECT_EQ(edges.size(), 300u);
  std::set<uint64_t> keys;
  for (const Edge& e : edges) {
    EXPECT_NE(e.first, e.second);
    EXPECT_LT(e.first, 100u);
    EXPECT_LT(e.second, 100u);
    uint64_t key = (static_cast<uint64_t>(std::min(e.first, e.second)) << 32) |
                   std::max(e.first, e.second);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate edge";
  }
}

TEST(GeneratorsTest, ErdosRenyiCapsAtCompleteGraph) {
  Rng rng(5);
  std::vector<Edge> edges = ErdosRenyiEdges(5, 1000, rng);
  EXPECT_EQ(edges.size(), 10u);
}

TEST(GeneratorsTest, PowerLawEdgesHitTargetAndAreSkewed) {
  Rng rng(6);
  const uint32_t n = 2000;
  const uint64_t m = 8000;
  std::vector<Edge> edges = PowerLawEdges(n, m, rng);
  EXPECT_EQ(edges.size(), m);
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : edges) {
    ++degree[e.first];
    ++degree[e.second];
  }
  uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  double avg_degree = 2.0 * m / n;
  // Preferential attachment produces hubs far above the mean.
  EXPECT_GT(max_degree, 5 * avg_degree);
}

TEST(GeneratorsTest, RmatEdgesBasicShape) {
  Rng rng(7);
  std::vector<Edge> edges = RmatEdges(10, 4000, 0.57, 0.19, 0.19, rng);
  EXPECT_GE(edges.size(), 3500u);  // may fall slightly short on collisions
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 1024u);
    EXPECT_LT(e.second, 1024u);
    EXPECT_NE(e.first, e.second);
  }
}

TEST(GeneratorsTest, ConnectComponentsMakesConnected) {
  Rng rng(8);
  // Sparse graph, almost surely disconnected.
  std::vector<Edge> edges = ErdosRenyiEdges(200, 60, rng);
  ConnectComponents(200, &edges, rng);
  Graph g = Graph::FromEdges(std::vector<Label>(200, 0), edges);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, ConnectComponentsNoOpWhenConnected) {
  Rng rng(9);
  std::vector<Edge> edges{{0, 1}, {1, 2}};
  size_t before = edges.size();
  ConnectComponents(3, &edges, rng);
  EXPECT_EQ(edges.size(), before);
}

TEST(GeneratorsTest, DeterministicInSeed) {
  Rng a(99);
  Rng b(99);
  EXPECT_EQ(ErdosRenyiEdges(50, 100, a), ErdosRenyiEdges(50, 100, b));
}

}  // namespace
}  // namespace daf

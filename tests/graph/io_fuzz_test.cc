// Loader hardening against hostile or corrupt input: declared-size caps
// (a "t 4000000000 0" header must produce an error, not a gigabyte
// reserve), negative counts (which wrap to huge values under iostream's
// unsigned parse), truncated lines, out-of-range endpoints, and a seeded
// randomized mutation sweep over a valid file. The contract under fuzzing
// is: never crash, never OOM, and either return a structurally valid graph
// or a nonempty error.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/io.h"
#include "util/rng.h"

namespace daf {
namespace {

std::string ValidText() {
  return
      "t 5 4\n"
      "v 0 1\n"
      "v 1 2\n"
      "v 2 1\n"
      "v 3 3\n"
      "v 4 1\n"
      "e 0 1\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 3 4\n";
}

TEST(IoFuzzTest, ValidTextParses) {
  std::string error;
  auto g = ParseGraphText(ValidText(), &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumVertices(), 5u);
  EXPECT_EQ(g->NumEdges(), 4u);
}

TEST(IoFuzzTest, HugeDeclaredVertexCountIsAnErrorNotAnAllocation) {
  std::string error;
  EXPECT_FALSE(ParseGraphText("t 4000000000 0\n", &error).has_value());
  EXPECT_NE(error.find("vertex count"), std::string::npos) << error;
}

TEST(IoFuzzTest, HugeDeclaredEdgeCountIsAnError) {
  std::string error;
  EXPECT_FALSE(
      ParseGraphText("t 4 99999999999\nv 0 0\n", &error).has_value());
  EXPECT_NE(error.find("edge count"), std::string::npos) << error;
}

TEST(IoFuzzTest, NegativeCountsAreRejected) {
  // iostream parses "-1" into an unsigned as a wrapped huge value
  // (strtoull semantics); the declared-size caps must catch it.
  std::string error;
  EXPECT_FALSE(ParseGraphText("t -1 0\n", &error).has_value());
  EXPECT_FALSE(ParseGraphText("t 4 -7\nv 0 0\n", &error).has_value());
}

TEST(IoFuzzTest, MalformedLinesAreErrors) {
  const char* cases[] = {
      "",                        // empty input, no header
      "t\n",                     // truncated header
      "t 5\n",                   // header missing the edge count
      "v 0 1\n",                 // vertex before header
      "e 0 1\n",                 // edge before header
      "t 2 1\nv 0\n",            // truncated vertex line
      "t 2 1\ne 0\n",            // truncated edge line
      "t 2 1\nv 5 0\n",          // vertex id out of declared range
      "t 2 1\ne 0 7\n",          // edge endpoint out of range
      "t 2 1\nx 0 1\n",          // unknown tag
      "t 2 1\nt 2 1\n",          // duplicate header
      "t 2 1\nv zero 0\n",       // non-numeric id
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    std::string error;
    EXPECT_FALSE(ParseGraphText(text, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(IoFuzzTest, DuplicateEdgesDoNotCrash) {
  std::string error;
  auto g = ParseGraphText("t 2 3\nv 0 0\nv 1 0\ne 0 1\ne 0 1\ne 1 0\n",
                          &error);
  // Whether duplicates are merged or kept is the Graph's policy; the
  // loader's contract is only to not crash or corrupt.
  if (g.has_value()) {
    EXPECT_EQ(g->NumVertices(), 2u);
  } else {
    EXPECT_FALSE(error.empty());
  }
}

// Structural sanity of a parsed graph: every reported edge endpoint in
// range. Cheap enough to run on every surviving fuzz case.
void CheckStructure(const Graph& g) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      ASSERT_LT(w, g.NumVertices());
    }
  }
}

TEST(IoFuzzTest, RandomMutationSweepNeverCrashes) {
  const std::string base = ValidText();
  Rng rng(20260806);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = base;
    // 1-4 random byte mutations: overwrite, insert, or delete.
    const int mutations = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const size_t pos = rng.NextU64() % text.size();
      switch (rng.NextU64() % 3) {
        case 0:
          text[pos] = static_cast<char>(rng.NextU64() % 96 + 32);
          break;
        case 1:
          text.insert(pos, 1, static_cast<char>(rng.NextU64() % 96 + 32));
          break;
        default:
          text.erase(pos, 1);
          break;
      }
    }
    std::string error;
    auto g = ParseGraphText(text, &error);
    if (g.has_value()) {
      ++parsed;
      CheckStructure(*g);
    } else {
      ++rejected;
      EXPECT_FALSE(error.empty()) << "silent failure on: " << text;
    }
  }
  // The sweep must have exercised both outcomes to mean anything.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(IoFuzzTest, RandomTokenSoupNeverCrashes) {
  // Lines assembled from the loader's own vocabulary with random numbers —
  // hits the header/count/range checks much harder than byte noise.
  Rng rng(7);
  const char* tags[] = {"t", "v", "e", "x", "#"};
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const int lines = static_cast<int>(rng.NextU64() % 12);
    for (int l = 0; l < lines; ++l) {
      text += tags[rng.NextU64() % 5];
      const int fields = static_cast<int>(rng.NextU64() % 4);
      for (int f = 0; f < fields; ++f) {
        text += ' ';
        // Mix small ids, huge values, and negatives.
        switch (rng.NextU64() % 4) {
          case 0: text += std::to_string(rng.NextU64() % 8); break;
          case 1: text += std::to_string(rng.NextU64()); break;
          case 2: text += "-" + std::to_string(rng.NextU64() % 100); break;
          default: text += "4000000000"; break;
        }
      }
      text += '\n';
    }
    std::string error;
    auto g = ParseGraphText(text, &error);
    if (g.has_value()) CheckStructure(*g);
  }
}

TEST(IoFuzzTest, TruncatedBinaryFilesAreErrors) {
  // Round-trip a graph to the binary format, then feed every prefix of the
  // file back: all must fail cleanly (or parse, for the full file).
  std::string error;
  auto g = ParseGraphText(ValidText(), &error);
  ASSERT_TRUE(g.has_value());
  const std::string path = ::testing::TempDir() + "/io_fuzz_graph.bin";
  ASSERT_TRUE(SaveGraphBinary(*g, path, &error)) << error;
  auto full = LoadGraphBinary(path, &error);
  ASSERT_TRUE(full.has_value()) << error;
  EXPECT_EQ(full->NumVertices(), g->NumVertices());

  // Read the bytes back.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<char> bytes;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  ASSERT_GT(bytes.size(), 16u);

  const std::string trunc_path = ::testing::TempDir() + "/io_fuzz_trunc.bin";
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::FILE* out = std::fopen(trunc_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (len > 0) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, len, out), len);
    }
    std::fclose(out);
    std::string trunc_error;
    auto truncated = LoadGraphBinary(trunc_path, &trunc_error);
    EXPECT_FALSE(truncated.has_value()) << "prefix of " << len << " bytes";
    EXPECT_FALSE(trunc_error.empty());
  }
}

}  // namespace
}  // namespace daf

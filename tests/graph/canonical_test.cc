// Canonicalizer unit and fuzz tests (graph/canonical.h): the cache-keying
// contract is that two queries produce the same canonical key iff they are
// isomorphic as vertex- and edge-labeled graphs. The sweep tests hammer the
// "if" direction with random relabelings; the near-isomorph and fuzz tests
// pin the "only if" direction against a brute-force isomorphism oracle.
#include "graph/canonical.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "daf/engine.h"
#include "graph/graph.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf {
namespace {

using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;
using daf::testing::MakeStar;
using daf::testing::RandomDataGraph;

std::vector<VertexId> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm);
  return perm;
}

// The 3-regular girth-5 Petersen graph: vertex-transitive and twin-free,
// so color refinement cannot split it and the individualization search
// must actually branch — the canonicalizer's worst case.
Graph Petersen() {
  std::vector<Label> labels(10, 0);
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                             {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
                             {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}};
  return Graph::FromEdges(labels, edges);
}

// Isomorphism oracle for small graphs: with equal vertex and edge counts,
// any injective label-preserving embedding of g1 into g2 is a bijection
// that maps the m1 = m2 edges onto each other — an isomorphism.
bool Isomorphic(const Graph& g1, const Graph& g2) {
  if (g1.NumVertices() != g2.NumVertices()) return false;
  if (g1.NumEdges() != g2.NumEdges()) return false;
  MatchOptions options;
  options.limit = 1;
  return DafMatch(g1, g2, options).embeddings > 0;
}

TEST(CanonicalTest, PermutationArraysAreInverse) {
  Rng rng(7);
  Graph g = RandomDataGraph(9, 14, 3, rng);
  CanonicalQuery form = CanonicalizeQuery(g);
  ASSERT_TRUE(form.complete);
  ASSERT_EQ(form.to_canonical.size(), g.NumVertices());
  ASSERT_EQ(form.from_canonical.size(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(form.from_canonical[form.to_canonical[v]], v);
  }
  // Deterministic: canonicalizing again yields the identical form.
  CanonicalQuery again = CanonicalizeQuery(g);
  EXPECT_EQ(again.key, form.key);
  EXPECT_EQ(again.to_canonical, form.to_canonical);
}

TEST(CanonicalTest, PermuteVerticesMovesLabelsAndEdges) {
  // Triangle with distinct vertex labels and distinct edge labels; after a
  // rotation every label must still sit on "its" vertex and edge.
  Graph g = Graph::FromLabeledEdges({10, 20, 30}, {{0, 1}, {1, 2}, {2, 0}},
                                    {5, 6, 7});
  std::vector<VertexId> perm = {1, 2, 0};  // v -> v+1 mod 3
  Graph p = PermuteVertices(g, perm);
  ASSERT_EQ(p.NumVertices(), 3u);
  EXPECT_EQ(p.original_label(p.label(1)), 10u);
  EXPECT_EQ(p.original_label(p.label(2)), 20u);
  EXPECT_EQ(p.original_label(p.label(0)), 30u);
  EXPECT_TRUE(p.HasEdgeWithLabel(1, 2, 5));
  EXPECT_TRUE(p.HasEdgeWithLabel(2, 0, 6));
  EXPECT_TRUE(p.HasEdgeWithLabel(0, 1, 7));
}

// The headline invariance sweep: 1000 random relabelings across a pool of
// base graphs (labeled and unlabeled, sparse and automorphism-rich,
// edge-labeled, disconnected) all land on their base's exact key.
TEST(CanonicalTest, KeyInvariantUnderThousandRelabelings) {
  Rng rng(42);
  std::vector<Graph> pool;
  pool.push_back(MakePath({0, 1, 1, 2, 0}));
  pool.push_back(MakeCycle({0, 0, 1, 0, 0, 1}));
  pool.push_back(MakeClique({3, 3, 3, 3, 3}));
  pool.push_back(MakeStar({1, 0, 0, 0, 0, 0, 0}));
  pool.push_back(Petersen());
  pool.push_back(Graph::FromLabeledEdges(
      {0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, {1, 2, 1, 2}));
  // Disconnected: triangle plus an isolated edge.
  pool.push_back(
      Graph::FromEdges({0, 0, 0, 1, 1}, {{0, 1}, {1, 2}, {2, 0}, {3, 4}}));
  for (int i = 0; i < 3; ++i) {
    pool.push_back(RandomDataGraph(8, 13, 3, rng));
  }

  std::vector<CanonicalQuery> base;
  for (const Graph& g : pool) {
    base.push_back(CanonicalizeQuery(g));
    ASSERT_TRUE(base.back().complete);
  }

  for (int iter = 0; iter < 1000; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    const size_t which = iter % pool.size();
    const Graph& g = pool[which];
    Graph permuted =
        PermuteVertices(g, RandomPermutation(g.NumVertices(), rng));
    CanonicalQuery form = CanonicalizeQuery(permuted);
    ASSERT_TRUE(form.complete);
    ASSERT_EQ(form.key, base[which].key);
  }
}

TEST(CanonicalTest, NearIsomorphicPairsGetDistinctKeys) {
  // C6 vs 2xC3: same vertex count, edge count, labels, and degree sequence
  // (both 2-regular), so color refinement alone cannot tell them apart —
  // only the individualization search can.
  Graph c6 = MakeCycle(std::vector<Label>(6, 0));
  Graph two_c3 = Graph::FromEdges(
      std::vector<Label>(6, 0),
      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_NE(CanonicalizeQuery(c6).key, CanonicalizeQuery(two_c3).key);

  // Same path shape, mirrored label sequences that are NOT reverses of
  // each other: 0-1-1-2 vs 0-2-1-1.
  Graph p1 = MakePath({0, 1, 1, 2});
  Graph p2 = MakePath({0, 2, 1, 1});
  EXPECT_NE(CanonicalizeQuery(p1).key, CanonicalizeQuery(p2).key);

  // Identical skeleton, one edge label flipped.
  Graph t1 = Graph::FromLabeledEdges({0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}},
                                     {0, 0, 1});
  Graph t2 = Graph::FromLabeledEdges({0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}},
                                     {0, 1, 1});
  EXPECT_NE(CanonicalizeQuery(t1).key, CanonicalizeQuery(t2).key);

  // K4 minus one edge vs the 4-star plus one edge ("paw" + isolated? no —
  // both connected, 4 vertices, 5 vs 4 edges differ; use C4 vs diamond
  // path instead): C4 vs P4 + chord = same counts, different structure.
  Graph c4 = MakeCycle(std::vector<Label>(4, 0));
  Graph paw = Graph::FromEdges(std::vector<Label>(4, 0),
                               {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_NE(CanonicalizeQuery(c4).key, CanonicalizeQuery(paw).key);
}

// Automorphism-rich families: the twin pruning must keep the search
// polynomial (complete == true) and the key stable under relabelings.
TEST(CanonicalTest, AutomorphismRichFamiliesAreStable) {
  Rng rng(99);
  std::vector<Graph> family;
  for (uint32_t n = 4; n <= 8; ++n) {
    family.push_back(MakeClique(std::vector<Label>(n, 0)));
  }
  for (uint32_t n = 4; n <= 10; ++n) {
    family.push_back(MakeStar(std::vector<Label>(n, 7)));
  }
  for (uint32_t n = 3; n <= 10; ++n) {
    family.push_back(MakeCycle(std::vector<Label>(n, 2)));
  }
  for (const Graph& g : family) {
    SCOPED_TRACE("n=" + std::to_string(g.NumVertices()) + " m=" +
                 std::to_string(g.NumEdges()));
    CanonicalQuery form = CanonicalizeQuery(g);
    ASSERT_TRUE(form.complete);
    for (int i = 0; i < 25; ++i) {
      Graph permuted =
          PermuteVertices(g, RandomPermutation(g.NumVertices(), rng));
      CanonicalQuery pform = CanonicalizeQuery(permuted);
      ASSERT_TRUE(pform.complete);
      ASSERT_EQ(pform.key, form.key);
    }
  }
}

// BuildCanonicalGraph is idempotent: the canonical representative
// canonicalizes to the same key with the identity permutation.
TEST(CanonicalTest, CanonicalGraphIsAFixedPoint) {
  Rng rng(5);
  std::vector<Graph> pool = {MakePath({0, 1, 2, 1}),
                             MakeClique(std::vector<Label>(5, 0)),
                             Petersen(), RandomDataGraph(10, 18, 4, rng)};
  for (const Graph& g : pool) {
    CanonicalQuery form = CanonicalizeQuery(g);
    ASSERT_TRUE(form.complete);
    Graph canonical = BuildCanonicalGraph(g, form);
    CanonicalQuery again = CanonicalizeQuery(canonical);
    ASSERT_TRUE(again.complete);
    EXPECT_EQ(again.key, form.key);
    for (VertexId v = 0; v < canonical.NumVertices(); ++v) {
      EXPECT_EQ(again.to_canonical[v], v);
    }
  }
}

// Fuzz the completeness direction: across random small graphs, key
// equality must coincide exactly with isomorphism (checked by DafMatch as
// a brute-force oracle — equal counts + an injective embedding).
TEST(CanonicalTest, SmallGraphFuzzKeyEqualityIsIsomorphism) {
  Rng rng(1234);
  std::vector<Graph> graphs;
  std::vector<CanonicalQuery> forms;
  for (int i = 0; i < 50; ++i) {
    const uint32_t n = 3 + static_cast<uint32_t>(rng.UniformInt(4));  // 3..6
    const uint64_t max_m = static_cast<uint64_t>(n) * (n - 1) / 2;
    const uint64_t m = 2 + rng.UniformInt(max_m - 1);
    std::vector<Label> labels(n);
    for (auto& l : labels) l = static_cast<Label>(rng.UniformInt(2));
    std::vector<Edge> edges = ErdosRenyiEdges(n, m, rng);
    graphs.push_back(Graph::FromEdges(std::move(labels), edges));
    forms.push_back(CanonicalizeQuery(graphs.back()));
    ASSERT_TRUE(forms.back().complete);
  }
  int equal_pairs = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    for (size_t j = i + 1; j < graphs.size(); ++j) {
      SCOPED_TRACE("pair " + std::to_string(i) + "," + std::to_string(j));
      const bool same_key = forms[i].key == forms[j].key;
      ASSERT_EQ(same_key, Isomorphic(graphs[i], graphs[j]));
      equal_pairs += same_key ? 1 : 0;
    }
  }
  // Sanity: with 50 graphs on <= 6 vertices, some collisions must occur,
  // or the oracle side of the test never ran.
  EXPECT_GT(equal_pairs, 0);
}

TEST(CanonicalTest, LeafCapAbortsMarkUncacheable) {
  // With a one-leaf budget the Petersen search cannot finish; the form
  // must be flagged incomplete (= uncacheable), never silently wrong.
  CanonicalQuery capped = CanonicalizeQuery(Petersen(), /*max_leaves=*/1);
  EXPECT_FALSE(capped.complete);
  // The default budget handles it fine.
  EXPECT_TRUE(CanonicalizeQuery(Petersen()).complete);
}

TEST(CanonicalTest, KeyIgnoresSubmittedVertexOrderNotMultiplicity) {
  // Two graphs over the same label *multiset* but different adjacency:
  // star center labeled 1 with 0-leaves vs path 0-1-0-0. Same labels
  // {1,0,0,0}, same edge count, different keys.
  Graph star = MakeStar({1, 0, 0, 0});
  Graph path = MakePath({0, 1, 0, 0});
  EXPECT_NE(CanonicalizeQuery(star).key, CanonicalizeQuery(path).key);
}

}  // namespace
}  // namespace daf

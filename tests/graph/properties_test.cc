#include "graph/properties.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::MakeClique;
using daf::testing::MakeCycle;
using daf::testing::MakePath;
using daf::testing::MakeStar;

TEST(PropertiesTest, ConnectedComponents) {
  // Two components: 0-1 and 2-3-4.
  Graph g = Graph::FromEdges({0, 0, 0, 0, 0}, {{0, 1}, {2, 3}, {3, 4}});
  std::vector<uint32_t> component;
  EXPECT_EQ(ConnectedComponents(g, &component), 2u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[2], component[3]);
  EXPECT_EQ(component[3], component[4]);
  EXPECT_NE(component[0], component[2]);
}

TEST(PropertiesTest, IsConnected) {
  EXPECT_TRUE(IsConnected(MakePath({0, 0, 0, 0})));
  EXPECT_FALSE(IsConnected(Graph::FromEdges({0, 0, 0}, {{0, 1}})));
  EXPECT_TRUE(IsConnected(Graph::FromEdges({}, {})));
  EXPECT_TRUE(IsConnected(Graph::FromEdges({0}, {})));
}

TEST(PropertiesTest, BfsLevels) {
  Graph g = MakePath({0, 0, 0, 0});
  std::vector<uint32_t> levels = BfsLevels(g, 0);
  EXPECT_EQ(levels, (std::vector<uint32_t>{0, 1, 2, 3}));
  levels = BfsLevels(g, 1);
  EXPECT_EQ(levels, (std::vector<uint32_t>{1, 0, 1, 2}));
}

TEST(PropertiesTest, BfsLevelsUnreachable) {
  Graph g = Graph::FromEdges({0, 0, 0}, {{0, 1}});
  std::vector<uint32_t> levels = BfsLevels(g, 0);
  EXPECT_EQ(levels[2], kUnreachableLevel);
}

TEST(PropertiesTest, DiameterOfKnownShapes) {
  EXPECT_EQ(Diameter(MakePath({0, 0, 0, 0, 0})), 4u);
  EXPECT_EQ(Diameter(MakeCycle({0, 0, 0, 0, 0, 0})), 3u);
  EXPECT_EQ(Diameter(MakeClique({0, 0, 0, 0})), 1u);
  EXPECT_EQ(Diameter(MakeStar({0, 0, 0, 0})), 2u);
}

TEST(PropertiesTest, Eccentricity) {
  Graph path = MakePath({0, 0, 0, 0, 0});
  EXPECT_EQ(Eccentricity(path, 0), 4u);
  EXPECT_EQ(Eccentricity(path, 2), 2u);
}

TEST(PropertiesTest, TwoCoreOfCycleWithTail) {
  // Cycle 0-1-2 plus tail 2-3-4: 2-core = {0,1,2}.
  Graph g = Graph::FromEdges({0, 0, 0, 0, 0},
                             {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  std::vector<bool> core = KCoreMembership(g, 2);
  EXPECT_TRUE(core[0]);
  EXPECT_TRUE(core[1]);
  EXPECT_TRUE(core[2]);
  EXPECT_FALSE(core[3]);
  EXPECT_FALSE(core[4]);
}

TEST(PropertiesTest, TwoCoreOfTreeIsEmpty) {
  std::vector<bool> core = KCoreMembership(MakePath({0, 0, 0, 0}), 2);
  for (bool b : core) EXPECT_FALSE(b);
}

TEST(PropertiesTest, KCoreCascades) {
  // Clique of 4 with a path attached; 3-core = the clique only.
  Graph g = Graph::FromEdges(
      {0, 0, 0, 0, 0, 0},
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  std::vector<bool> core3 = KCoreMembership(g, 3);
  EXPECT_TRUE(core3[0] && core3[1] && core3[2] && core3[3]);
  EXPECT_FALSE(core3[4] || core3[5]);
}

TEST(PropertiesTest, ClusteringCoefficient) {
  // Triangle: every wedge closed.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(MakeCycle({0, 0, 0})), 1.0);
  // Path: no triangles.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(MakePath({0, 0, 0, 0})), 0.0);
  // K4: fully clustered.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(MakeClique({0, 0, 0, 0})),
                   1.0);
  // Triangle + pendant: wedges = 3 (triangle corners) + C(2,2)... compute:
  // degrees 2,2,3,1 -> wedges 1+1+3+0 = 5; closed corners = 3.
  Graph g = Graph::FromEdges({0, 0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(PropertiesTest, Degeneracy) {
  EXPECT_EQ(Degeneracy(MakePath({0, 0, 0, 0, 0})), 1u);   // tree
  EXPECT_EQ(Degeneracy(MakeCycle({0, 0, 0, 0, 0})), 2u);  // cycle
  EXPECT_EQ(Degeneracy(MakeClique({0, 0, 0, 0, 0})), 4u);  // K5
  // Clique of 4 with a long tail: still 3.
  Graph g = Graph::FromEdges(
      {0, 0, 0, 0, 0, 0},
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(Degeneracy(g), 3u);
  EXPECT_EQ(Degeneracy(Graph::FromEdges({0}, {})), 0u);
}

TEST(PropertiesTest, LabelEntropy) {
  // Uniform over 4 labels -> 2 bits.
  Graph g = Graph::FromEdges({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_NEAR(LabelEntropy(g), 2.0, 1e-12);
  // Single label -> 0 bits.
  EXPECT_NEAR(LabelEntropy(MakePath({5, 5, 5})), 0.0, 1e-12);
}

TEST(PropertiesTest, ComputeStatsAggregates) {
  Graph g = MakeClique({0, 0, 1, 1});
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 6u);
  EXPECT_EQ(stats.num_labels, 2u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_DOUBLE_EQ(stats.clustering, 1.0);
  EXPECT_EQ(stats.degeneracy, 3u);
  EXPECT_TRUE(stats.connected);
  EXPECT_NEAR(stats.label_entropy, 1.0, 1e-12);
}

TEST(PropertiesTest, DegreeHistogram) {
  Graph star = MakeStar({0, 0, 0, 0, 0});
  std::vector<uint64_t> hist = DegreeHistogram(star);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

}  // namespace
}  // namespace daf

#include "persist/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "tests/persist/persist_test_util.h"
#include "util/fault_inject.h"

namespace daf::persist {
namespace {

using daf::testing::ReadFileBytes;
using daf::testing::ScopedTempDir;
using daf::testing::WriteFileBytes;

WalRecord SampleRecord(uint64_t version) {
  WalRecord r;
  r.version = version;
  r.new_vertex_labels = {static_cast<Label>(version), 7};
  r.inserts = {{0, 1, 0}, {1, 2, 5}};
  r.removes = {{2, 3, 0}};
  r.removed_vertices = {4};
  return r;
}

void ExpectSameRecord(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.new_vertex_labels, b.new_vertex_labels);
  ASSERT_EQ(a.inserts.size(), b.inserts.size());
  for (size_t i = 0; i < a.inserts.size(); ++i) {
    EXPECT_EQ(a.inserts[i].u, b.inserts[i].u);
    EXPECT_EQ(a.inserts[i].v, b.inserts[i].v);
    EXPECT_EQ(a.inserts[i].edge_label, b.inserts[i].edge_label);
  }
  ASSERT_EQ(a.removes.size(), b.removes.size());
  for (size_t i = 0; i < a.removes.size(); ++i) {
    EXPECT_EQ(a.removes[i].u, b.removes[i].u);
    EXPECT_EQ(a.removes[i].v, b.removes[i].v);
  }
  EXPECT_EQ(a.removed_vertices, b.removed_vertices);
}

std::vector<WalRecord> ScanAll(const std::string& path, WalScanResult* out) {
  std::vector<WalRecord> records;
  *out = ScanWal(path, [&](WalRecord&& r, std::string*) {
    records.push_back(std::move(r));
    return true;
  });
  return records;
}

TEST(WalTest, CreateAppendScanRoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  auto wal = WalWriter::Create(path, /*start_version=*/5, FsyncPolicy::kOff,
                               0, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint64_t v = 6; v <= 8; ++v) {
    ASSERT_TRUE(wal->Append(SampleRecord(v), &error)) << error;
  }
  EXPECT_EQ(wal->stats().appended_records, 3u);

  WalScanResult scan;
  std::vector<WalRecord> records = ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.start_version, 5u);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  ASSERT_EQ(records.size(), 3u);
  for (uint64_t v = 6; v <= 8; ++v) {
    ExpectSameRecord(SampleRecord(v), records[v - 6]);
  }
}

TEST(WalTest, RecordBatchConversionRoundTrips) {
  dyn::NormalizedBatch net;
  net.inserts = {{0, 5, 2}};
  net.removes = {{1, 2, 0}};
  net.new_vertices = {5, 6};  // assigned at NumVertices()=5
  net.removed_vertices = {3};
  const std::vector<Label> labels = {10, 11};
  const WalRecord record = MakeWalRecord(net, labels, 9);
  EXPECT_EQ(record.version, 9u);
  EXPECT_EQ(record.new_vertex_labels, labels);

  const dyn::NormalizedBatch back = ToNormalizedBatch(record, 5);
  EXPECT_EQ(back.new_vertices, net.new_vertices);
  EXPECT_EQ(back.removed_vertices, net.removed_vertices);
  ASSERT_EQ(back.inserts.size(), 1u);
  EXPECT_EQ(back.inserts[0].v, 5u);
  EXPECT_EQ(back.inserts[0].edge_label, 2);
}

TEST(WalTest, TornTailIsTruncatable) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  {
    auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (uint64_t v = 1; v <= 3; ++v) {
      ASSERT_TRUE(wal->Append(SampleRecord(v), &error)) << error;
    }
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Chop into the last record: a crash mid-append.
  bytes.resize(bytes.size() - 5);
  ASSERT_TRUE(WriteFileBytes(path, bytes));

  WalScanResult scan;
  std::vector<WalRecord> records = ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.records, 2u);
  EXPECT_GT(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes + scan.torn_bytes, bytes.size());

  ASSERT_TRUE(RepairTornTail(path, scan.valid_bytes, &error)) << error;
  records = ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.torn_bytes, 0u);

  // The repaired log accepts appends again.
  auto wal = WalWriter::OpenForAppend(path, FsyncPolicy::kOff, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(SampleRecord(3), &error)) << error;
  ScanAll(path, &scan);
  EXPECT_EQ(scan.records, 3u);
}

TEST(WalTest, CrcFailAtEofIsTornTail) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  {
    auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->Append(SampleRecord(1), &error)) << error;
    ASSERT_TRUE(wal->Append(SampleRecord(2), &error)) << error;
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Flip a byte inside the *last* record's payload: the record ends
  // exactly at EOF, so this reads as a torn tail, not corruption.
  bytes[bytes.size() - 3] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, bytes));

  WalScanResult scan;
  ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.records, 1u);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST(WalTest, MidFileCorruptionIsTypedError) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  uint64_t first_record_size = 0;
  {
    auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->Append(SampleRecord(1), &error)) << error;
    first_record_size = wal->stats().bytes;
    ASSERT_TRUE(wal->Append(SampleRecord(2), &error)) << error;
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Flip a byte inside the FIRST record (bytes follow it): committed
  // history was altered — recovery must refuse, not resync past it.
  bytes[first_record_size - 3] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, bytes));

  WalScanResult scan;
  ScanAll(path, &scan);
  EXPECT_FALSE(scan.ok);
  EXPECT_FALSE(scan.error.empty());
}

TEST(WalTest, TornHeaderIsEmptyTornFile) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  {
    auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
    ASSERT_NE(wal, nullptr) << error;
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() / 2);  // crash during segment creation
  ASSERT_TRUE(WriteFileBytes(path, bytes));

  WalScanResult scan;
  ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST(WalTest, GarbageMagicIsError) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  ASSERT_TRUE(WriteFileBytes(
      path, std::vector<uint8_t>{'n', 'o', 't', 'a', 'l', 'o', 'g', '!', 0,
                                 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  WalScanResult scan;
  ScanAll(path, &scan);
  EXPECT_FALSE(scan.ok);
}

TEST(WalTest, RollbackLastAppendRemovesRecord) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(SampleRecord(1), &error)) << error;
  const uint64_t size_after_one = wal->stats().bytes;
  ASSERT_TRUE(wal->Append(SampleRecord(2), &error)) << error;
  ASSERT_TRUE(wal->RollbackLastAppend(&error)) << error;
  EXPECT_EQ(wal->stats().bytes, size_after_one);

  WalScanResult scan;
  std::vector<WalRecord> records = ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].version, 1u);

  // The rolled-back slot is reusable.
  ASSERT_TRUE(wal->Append(SampleRecord(2), &error)) << error;
  ScanAll(path, &scan);
  EXPECT_EQ(scan.records, 2u);
}

TEST(WalTest, InjectedAppendFaultLeavesFileUntouched) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(SampleRecord(1), &error)) << error;
  const std::vector<uint8_t> before = ReadFileBytes(path);

  // First poll (before any byte) and second poll (mid-record) both roll
  // back to exactly the pre-append file.
  for (uint64_t nth = 1; nth <= 2; ++nth) {
    FaultInjector::FireNth("wal_append", nth);
    EXPECT_FALSE(wal->Append(SampleRecord(2), &error));
    FaultInjector::Disarm();
    EXPECT_EQ(ReadFileBytes(path), before) << "poll " << nth;
  }

  ASSERT_TRUE(wal->Append(SampleRecord(2), &error)) << error;
  WalScanResult scan;
  ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.records, 2u);
}

TEST(WalTest, FsyncPolicyParsingAndCounting) {
  FsyncPolicy policy;
  EXPECT_TRUE(ParseFsyncPolicy("every", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kEveryBatch);
  EXPECT_TRUE(ParseFsyncPolicy("interval", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kInterval);
  EXPECT_TRUE(ParseFsyncPolicy("off", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &policy));
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kEveryBatch), "every");

  ScopedTempDir dir;
  std::string error;
  auto every = WalWriter::Create(dir.File("every.dafw"), 0,
                                 FsyncPolicy::kEveryBatch, 0, &error);
  ASSERT_NE(every, nullptr) << error;
  const uint64_t header_fsyncs = every->stats().fsyncs;
  ASSERT_TRUE(every->Append(SampleRecord(1), &error)) << error;
  ASSERT_TRUE(every->Append(SampleRecord(2), &error)) << error;
  EXPECT_EQ(every->stats().fsyncs, header_fsyncs + 2);

  auto off =
      WalWriter::Create(dir.File("off.dafw"), 0, FsyncPolicy::kOff, 0, &error);
  ASSERT_NE(off, nullptr) << error;
  const uint64_t off_header_fsyncs = off->stats().fsyncs;
  ASSERT_TRUE(off->Append(SampleRecord(1), &error)) << error;
  EXPECT_EQ(off->stats().fsyncs, off_header_fsyncs);
  ASSERT_TRUE(off->Sync(&error)) << error;
  EXPECT_EQ(off->stats().fsyncs, off_header_fsyncs + 1);
}

TEST(WalTest, OpenForAppendResumes) {
  ScopedTempDir dir;
  const std::string path = dir.File("log.dafw");
  std::string error;
  {
    auto wal = WalWriter::Create(path, 3, FsyncPolicy::kOff, 0, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->Append(SampleRecord(4), &error)) << error;
  }
  auto wal = WalWriter::OpenForAppend(path, FsyncPolicy::kOff, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(SampleRecord(5), &error)) << error;

  WalScanResult scan;
  std::vector<WalRecord> records = ScanAll(path, &scan);
  ASSERT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.start_version, 3u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].version, 4u);
  EXPECT_EQ(records[1].version, 5u);
}

}  // namespace
}  // namespace daf::persist

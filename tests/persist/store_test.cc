#include "persist/store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "graph/io.h"
#include "tests/persist/persist_test_util.h"
#include "tests/test_util.h"
#include "util/fault_inject.h"

namespace daf::persist {
namespace {

using daf::testing::ReadFileBytes;
using daf::testing::ScopedTempDir;
using daf::testing::WriteFileBytes;

std::string SnapName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.dafs",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string WalName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.dafw",
                static_cast<unsigned long long>(version));
  return buf;
}

bool Exists(const std::string& path) {
  return std::filesystem::exists(path);
}

Graph BaseGraph() { return daf::testing::MakePath({1, 2, 3, 1, 2, 3}); }

/// A deterministic little batch history exercising every op kind,
/// including a label change in batch 3 (re-insert of a present edge with
/// a new label — normalizes to remove-old + insert-new; the case raw
/// batch replay would get wrong, which is why the WAL stores net changes).
std::vector<dyn::UpdateBatch> SampleBatches() {
  std::vector<dyn::UpdateBatch> batches(4);
  batches[0].InsertEdge(0, 2).InsertEdge(1, 3, 7);
  batches[1].AddVertex(9).InsertEdge(5, 6);
  batches[2].RemoveVertex(4).RemoveEdge(0, 1);
  batches[3].InsertEdge(1, 3, 8);
  return batches;
}

/// Appends `batch` to the store, then applies it to `dg` — the
/// append-before-apply protocol MatchService follows.
void AppendAndApply(DurableStore& store, dyn::DeltaGraph& dg,
                    const dyn::UpdateBatch& batch) {
  dyn::NormalizedBatch net;
  std::string error;
  ASSERT_TRUE(dg.Normalize(batch, &net, &error)) << error;
  ASSERT_TRUE(store.AppendBatch(net, batch.add_vertices, dg.version() + 1,
                                &error))
      << error;
  const dyn::ApplyResult r = dg.ApplyBatch(batch);
  ASSERT_TRUE(r.ok) << r.error;
}

DurableStore::Options TestOptions() {
  DurableStore::Options o;
  o.fsync_policy = FsyncPolicy::kOff;  // tests don't need durability
  return o;
}

TEST(StoreTest, FreshOpenInitializeReopen) {
  ScopedTempDir dir;
  std::string error;
  const Graph base = BaseGraph();
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_FALSE(store->has_state());
    ASSERT_TRUE(store->InitializeFresh(base, /*version=*/0, &error)) << error;
  }
  EXPECT_TRUE(Exists(dir.File(SnapName(0))));
  EXPECT_TRUE(Exists(dir.File(WalName(0))));

  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->has_state());
  EXPECT_TRUE(store->recovery().recovered);
  EXPECT_EQ(store->recovery().snapshot_version, 0u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 0u);
  dyn::DeltaGraph dg = store->TakeRecoveredGraph();
  EXPECT_EQ(dg.version(), 0u);
  EXPECT_EQ(GraphToText(*dg.Materialize()), GraphToText(base));
}

TEST(StoreTest, WalReplayMatchesMirror) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    for (const dyn::UpdateBatch& batch : SampleBatches()) {
      AppendAndApply(*store, mirror, batch);
    }
    EXPECT_EQ(store->Stats().wal_appended_batches, 4u);
  }
  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->has_state());
  EXPECT_EQ(store->recovery().wal_records_replayed, 4u);
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  EXPECT_EQ(recovered.version(), mirror.version());
  EXPECT_EQ(recovered.NumVertices(), mirror.NumVertices());
  EXPECT_FALSE(recovered.Alive(4));
  // Full structural fidelity, edge labels included (GraphToText drops
  // them): the label-change batch left (1, 3) relabeled 8.
  const Graph::CsrParts got = recovered.Materialize()->ToCsrParts();
  const Graph::CsrParts want = mirror.Materialize()->ToCsrParts();
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.offsets, want.offsets);
  EXPECT_EQ(got.adjacency, want.adjacency);
  EXPECT_EQ(got.edge_labels, want.edge_labels);
  EXPECT_EQ(recovered.Materialize()->EdgeLabelBetween(1, 3), 8);
}

TEST(StoreTest, RollbackRemovesRecord) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    // Log a batch whose apply "fails": roll it back instead of applying.
    dyn::UpdateBatch doomed;
    doomed.InsertEdge(0, 3);
    dyn::NormalizedBatch net;
    ASSERT_TRUE(mirror.Normalize(doomed, &net, &error)) << error;
    ASSERT_TRUE(store->AppendBatch(net, {}, 1, &error)) << error;
    ASSERT_TRUE(store->RollbackLastAppend(&error)) << error;
    EXPECT_FALSE(store->failed());
    // Version 1 is reusable for the batch that does commit.
    dyn::UpdateBatch committed;
    committed.InsertEdge(0, 4);
    AppendAndApply(*store, mirror, committed);
  }
  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().wal_records_replayed, 1u);
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  EXPECT_EQ(recovered.version(), 1u);
  EXPECT_EQ(GraphToText(*recovered.Materialize()),
            GraphToText(*mirror.Materialize()));
}

TEST(StoreTest, CheckpointRotatesAndAppliesRetention) {
  ScopedTempDir dir;
  std::string error;
  DurableStore::Options options = TestOptions();
  options.snapshots_to_keep = 1;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    for (const dyn::UpdateBatch& batch : SampleBatches()) {
      AppendAndApply(*store, mirror, batch);
    }
    ASSERT_TRUE(store->Checkpoint(*mirror.Materialize(), mirror.version(),
                                  &error))
        << error;
    EXPECT_EQ(store->Stats().snapshots_written, 2u);  // initial + checkpoint
    EXPECT_GT(store->Stats().last_snapshot_ms, 0.0);
  }
  // Retention (keep 1) dropped the seed snapshot and its WAL segment.
  EXPECT_FALSE(Exists(dir.File(SnapName(0))));
  EXPECT_FALSE(Exists(dir.File(WalName(0))));
  EXPECT_TRUE(Exists(dir.File(SnapName(4))));
  EXPECT_TRUE(Exists(dir.File(WalName(4))));

  auto store = DurableStore::Open(dir.path(), options, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().snapshot_version, 4u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 0u);
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  EXPECT_EQ(recovered.version(), 4u);
  EXPECT_EQ(GraphToText(*recovered.Materialize()),
            GraphToText(*mirror.Materialize()));
}

TEST(StoreTest, CorruptNewestSnapshotFallsBackToOlder) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    dyn::UpdateBatch b1;
    b1.InsertEdge(0, 2);
    AppendAndApply(*store, mirror, b1);
    ASSERT_TRUE(store->Checkpoint(*mirror.Materialize(), 1, &error)) << error;
    dyn::UpdateBatch b2;
    b2.InsertEdge(0, 3);
    AppendAndApply(*store, mirror, b2);
  }
  // Damage the newest snapshot; recovery must fall back to snapshot-0 and
  // replay BOTH WAL segments to reach the same state.
  const std::string newest = dir.File(SnapName(1));
  std::vector<uint8_t> bytes = ReadFileBytes(newest);
  bytes[bytes.size() / 2] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(newest, bytes));

  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().snapshot_version, 0u);
  EXPECT_EQ(store->recovery().snapshots_skipped, 1u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 2u);
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  EXPECT_EQ(recovered.version(), 2u);
  EXPECT_EQ(GraphToText(*recovered.Materialize()),
            GraphToText(*mirror.Materialize()));
}

TEST(StoreTest, WalWithoutSnapshotIsError) {
  ScopedTempDir dir;
  std::string error;
  auto wal = WalWriter::Create(dir.File(WalName(0)), 0, FsyncPolicy::kOff, 0,
                               &error);
  ASSERT_NE(wal, nullptr) << error;
  wal.reset();
  EXPECT_EQ(DurableStore::Open(dir.path(), TestOptions(), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StoreTest, AllSnapshotsCorruptIsError) {
  ScopedTempDir dir;
  std::string error;
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(BaseGraph(), 0, &error)) << error;
  }
  const std::string snap = dir.File(SnapName(0));
  std::vector<uint8_t> bytes = ReadFileBytes(snap);
  bytes[8] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(snap, bytes));
  // Refusing (rather than silently starting empty) is the point: state
  // existed, so an empty start would be data loss.
  EXPECT_EQ(DurableStore::Open(dir.path(), TestOptions(), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StoreTest, TornTailTruncatedAndAppendsContinue) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    dyn::UpdateBatch b1;
    b1.InsertEdge(0, 2);
    AppendAndApply(*store, mirror, b1);
    dyn::UpdateBatch b2;
    b2.InsertEdge(0, 3);
    AppendAndApply(*store, mirror, b2);
  }
  // Tear the active segment mid-record (a crash during append).
  const std::string wal_path = dir.File(WalName(0));
  std::vector<uint8_t> bytes = ReadFileBytes(wal_path);
  bytes.resize(bytes.size() - 3);
  ASSERT_TRUE(WriteFileBytes(wal_path, bytes));

  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().wal_records_replayed, 1u);
  EXPECT_GT(store->recovery().wal_truncated_bytes, 0u);
  dyn::DeltaGraph recovered = store->TakeRecoveredGraph();
  EXPECT_EQ(recovered.version(), 1u);

  // The log accepts new batches after the repair, and they survive
  // another restart.
  dyn::UpdateBatch b2;
  b2.InsertEdge(0, 3);
  dyn::NormalizedBatch net;
  ASSERT_TRUE(recovered.Normalize(b2, &net, &error)) << error;
  ASSERT_TRUE(store->AppendBatch(net, {}, 2, &error)) << error;
  ASSERT_TRUE(recovered.ApplyBatch(b2).ok);
  store.reset();

  store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->TakeRecoveredGraph().version(), 2u);
}

TEST(StoreTest, CheckpointFaultIsNonFatal) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
      << error;
  dyn::UpdateBatch b1;
  b1.InsertEdge(0, 2);
  AppendAndApply(*store, mirror, b1);

  for (const char* point : {"snapshot_write", "snapshot_rename"}) {
    FaultInjector::FireNth(point, 1);
    std::string checkpoint_error;
    EXPECT_FALSE(
        store->Checkpoint(*mirror.Materialize(), 1, &checkpoint_error))
        << point;
    EXPECT_FALSE(checkpoint_error.empty()) << point;
    FaultInjector::Disarm();
  }
  EXPECT_GE(store->Stats().persist_errors, 2u);
  EXPECT_FALSE(store->failed());
  // No half-written snapshot was left behind, and the store still works.
  EXPECT_FALSE(Exists(dir.File(SnapName(1))));
  dyn::UpdateBatch b2;
  b2.InsertEdge(0, 3);
  AppendAndApply(*store, mirror, b2);
  store.reset();

  store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().snapshot_version, 0u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 2u);
  EXPECT_EQ(store->TakeRecoveredGraph().version(), 2u);
}

TEST(StoreTest, DuplicateVersionIsOutOfSequenceAtRecovery) {
  ScopedTempDir dir;
  std::string error;
  dyn::DeltaGraph mirror(BaseGraph());
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    dyn::UpdateBatch b;
    b.InsertEdge(0, 2);
    dyn::NormalizedBatch net;
    ASSERT_TRUE(mirror.Normalize(b, &net, &error)) << error;
    // A buggy caller double-logs version 1.
    ASSERT_TRUE(store->AppendBatch(net, {}, 1, &error)) << error;
    ASSERT_TRUE(store->AppendBatch(net, {}, 1, &error)) << error;
  }
  EXPECT_EQ(DurableStore::Open(dir.path(), TestOptions(), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StoreTest, TmpFilesAreCleanedAtOpen) {
  ScopedTempDir dir;
  std::string error;
  {
    auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(BaseGraph(), 0, &error)) << error;
  }
  // A crash between tmp-write and rename leaves a .tmp; Open sweeps it.
  const std::string tmp = dir.File(SnapName(7) + ".tmp");
  ASSERT_TRUE(WriteFileBytes(tmp, {1, 2, 3}));
  auto store = DurableStore::Open(dir.path(), TestOptions(), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_FALSE(Exists(tmp));
  EXPECT_EQ(store->recovery().snapshot_version, 0u);
}

}  // namespace
}  // namespace daf::persist

// Mutation sweep over the persistence readers (issue satellite: extend the
// io_fuzz approach to snapshot + WAL). Every mutated input must produce
// either a successful load or a typed error — never a crash, hang, or
// unbounded allocation. The CI `recovery` leg runs this under ASan.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "graph/io.h"
#include "persist/snapshot.h"
#include "persist/store.h"
#include "persist/wal.h"
#include "tests/persist/persist_test_util.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf::persist {
namespace {

using daf::testing::ReadFileBytes;
using daf::testing::ScopedTempDir;
using daf::testing::WriteFileBytes;

/// Applies one seeded mutation to `bytes`: bit flips, truncation, slice
/// duplication, random extension, or a u32 overwritten with a huge value
/// (the classic length-field attack).
void Mutate(std::vector<uint8_t>& bytes, Rng& rng) {
  if (bytes.empty()) return;
  switch (rng.UniformInt(5)) {
    case 0: {  // 1-8 bit flips
      const uint32_t flips = 1 + rng.UniformInt(8);
      for (uint32_t i = 0; i < flips; ++i) {
        daf::testing::FlipBit(bytes, rng.UniformInt(
                                         static_cast<uint32_t>(bytes.size() * 8)));
      }
      break;
    }
    case 1:  // truncate
      bytes.resize(rng.UniformInt(static_cast<uint32_t>(bytes.size())));
      break;
    case 2: {  // duplicate a slice into the middle
      const size_t at = rng.UniformInt(static_cast<uint32_t>(bytes.size()));
      const size_t len =
          1 + rng.UniformInt(static_cast<uint32_t>(bytes.size() - at));
      std::vector<uint8_t> slice(bytes.begin() + at, bytes.begin() + at + len);
      bytes.insert(bytes.begin() + at, slice.begin(), slice.end());
      break;
    }
    case 3: {  // extend with random garbage
      const uint32_t extra = 1 + rng.UniformInt(64);
      for (uint32_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      break;
    }
    case 4: {  // huge u32 somewhere (length/count fields)
      if (bytes.size() < 4) break;
      const size_t at =
          rng.UniformInt(static_cast<uint32_t>(bytes.size() - 3));
      bytes[at] = 0xFF;
      bytes[at + 1] = 0xFF;
      bytes[at + 2] = 0xFF;
      bytes[at + 3] = 0x7F;
      break;
    }
  }
}

std::vector<uint8_t> ValidSnapshotBytes(const ScopedTempDir& dir) {
  Rng rng(99);
  const Graph g = daf::testing::RandomDataGraph(48, 96, 4, rng);
  const std::string path = dir.File("seed.dafs");
  std::string error;
  EXPECT_TRUE(WriteSnapshot(g, 17, path, &error)) << error;
  return ReadFileBytes(path);
}

std::vector<uint8_t> ValidWalBytes(const ScopedTempDir& dir) {
  const std::string path = dir.File("seed.dafw");
  std::string error;
  auto wal = WalWriter::Create(path, 0, FsyncPolicy::kOff, 0, &error);
  EXPECT_NE(wal, nullptr) << error;
  dyn::DeltaGraph dg(daf::testing::MakeCycle({1, 2, 3, 1, 2, 3}));
  Rng rng(7);
  for (uint64_t v = 1; v <= 6; ++v) {
    dyn::UpdateBatch batch;
    const VertexId u = rng.UniformInt(dg.NumVertices());
    const VertexId w = rng.UniformInt(dg.NumVertices());
    if (u != w) batch.InsertEdge(u, w, static_cast<Label>(rng.UniformInt(4)));
    batch.AddVertex(static_cast<Label>(rng.UniformInt(3)));
    dyn::NormalizedBatch net;
    EXPECT_TRUE(dg.Normalize(batch, &net, &error)) << error;
    EXPECT_TRUE(wal->Append(MakeWalRecord(net, batch.add_vertices, v), &error))
        << error;
    EXPECT_TRUE(dg.ApplyBatch(batch).ok);
  }
  return ReadFileBytes(path);
}

TEST(PersistFuzzTest, SnapshotReaderSurvivesMutations) {
  ScopedTempDir dir;
  const std::vector<uint8_t> valid = ValidSnapshotBytes(dir);
  const std::string path = dir.File("mut.dafs");
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    std::vector<uint8_t> bytes = valid;
    const uint32_t rounds = 1 + rng.UniformInt(3);
    for (uint32_t i = 0; i < rounds; ++i) Mutate(bytes, rng);
    ASSERT_TRUE(WriteFileBytes(path, bytes));

    std::string error;
    std::optional<Graph> loaded = LoadSnapshot(path, nullptr, &error);
    if (!loaded.has_value()) {
      EXPECT_FALSE(error.empty()) << "seed " << seed;
    }
    // Header probes must be equally tame.
    error.clear();
    (void)ReadSnapshotInfo(path, &error);
    (void)SniffSnapshot(path);
  }
}

TEST(PersistFuzzTest, WalScannerSurvivesMutations) {
  ScopedTempDir dir;
  const std::vector<uint8_t> valid = ValidWalBytes(dir);
  const std::string path = dir.File("mut.dafw");
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    std::vector<uint8_t> bytes = valid;
    const uint32_t rounds = 1 + rng.UniformInt(3);
    for (uint32_t i = 0; i < rounds; ++i) Mutate(bytes, rng);
    ASSERT_TRUE(WriteFileBytes(path, bytes));

    const WalScanResult scan =
        ScanWal(path, [](WalRecord&&, std::string*) { return true; });
    if (!scan.ok) {
      EXPECT_FALSE(scan.error.empty()) << "seed " << seed;
    } else {
      // Accounting must stay consistent even for accepted prefixes.
      EXPECT_LE(scan.valid_bytes + scan.torn_bytes, bytes.size())
          << "seed " << seed;
    }
  }
}

TEST(PersistFuzzTest, StoreOpenSurvivesMutatedDirectories) {
  // End-to-end: mutate files of a real store layout (snapshot + two WAL
  // segments) and require Open() to recover or fail with a typed error.
  ScopedTempDir seed_dir;
  std::string error;
  dyn::DeltaGraph mirror(daf::testing::MakeClique({1, 2, 3, 4}));
  {
    auto store = DurableStore::Open(seed_dir.path(), {}, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->InitializeFresh(*mirror.Materialize(), 0, &error))
        << error;
    for (uint64_t v = 1; v <= 3; ++v) {
      dyn::UpdateBatch batch;
      batch.AddVertex(static_cast<Label>(v));
      batch.InsertEdge(0, mirror.NumVertices());
      dyn::NormalizedBatch net;
      ASSERT_TRUE(mirror.Normalize(batch, &net, &error)) << error;
      ASSERT_TRUE(store->AppendBatch(net, batch.add_vertices, v, &error))
          << error;
      ASSERT_TRUE(mirror.ApplyBatch(batch).ok);
      if (v == 2) {
        ASSERT_TRUE(store->Checkpoint(*mirror.Materialize(), v, &error))
            << error;
      }
    }
  }
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(seed_dir.path())) {
    files.push_back(entry.path().filename().string());
  }
  ASSERT_GE(files.size(), 3u);  // 2 snapshots + >=1 WAL segment

  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    ScopedTempDir dir;
    for (const std::string& name : files) {
      std::vector<uint8_t> bytes = ReadFileBytes(seed_dir.File(name));
      if (rng.Bernoulli(0.5)) Mutate(bytes, rng);
      ASSERT_TRUE(WriteFileBytes(dir.File(name), bytes));
    }
    auto store = DurableStore::Open(dir.path(), {}, &error);
    if (store == nullptr) {
      EXPECT_FALSE(error.empty()) << "seed " << seed;
    } else if (store->has_state()) {
      // Whatever was recovered must be a coherent graph.
      dyn::DeltaGraph g = store->TakeRecoveredGraph();
      EXPECT_LE(g.version(), 3u) << "seed " << seed;
      (void)g.Materialize();
    }
  }
}

}  // namespace
}  // namespace daf::persist

#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "graph/io.h"
#include "tests/persist/persist_test_util.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace daf::persist {
namespace {

using daf::testing::ReadFileBytes;
using daf::testing::ScopedTempDir;
using daf::testing::WriteFileBytes;

// Structural equality through the CSR export: labels, offsets, adjacency,
// and edge labels all byte-identical (GraphToText would drop edge labels).
void ExpectSameGraph(const Graph& a, const Graph& b) {
  const Graph::CsrParts pa = a.ToCsrParts();
  const Graph::CsrParts pb = b.ToCsrParts();
  EXPECT_EQ(pa.labels, pb.labels);
  EXPECT_EQ(pa.offsets, pb.offsets);
  EXPECT_EQ(pa.adjacency, pb.adjacency);
  EXPECT_EQ(pa.edge_labels, pb.edge_labels);
}

TEST(SnapshotTest, RoundTripPlainGraph) {
  Rng rng(7);
  const Graph g = daf::testing::RandomDataGraph(200, 600, 5, rng);
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, /*graph_version=*/42, path, &error)) << error;

  uint64_t version = 0;
  std::optional<Graph> loaded = LoadSnapshot(path, &version, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(version, 42u);
  ExpectSameGraph(g, *loaded);
  EXPECT_EQ(GraphToText(g), GraphToText(*loaded));
}

TEST(SnapshotTest, RoundTripEdgeLabels) {
  const Graph g = Graph::FromLabeledEdges(
      {1, 2, 1, 3}, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}, {5, 7, 5, 9});
  ASSERT_TRUE(g.HasNontrivialEdgeLabels());
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 1, path, &error)) << error;

  std::optional<SnapshotInfo> info = ReadSnapshotInfo(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_TRUE(info->has_edge_labels);

  std::optional<Graph> loaded = LoadSnapshot(path, nullptr, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_TRUE(loaded->HasNontrivialEdgeLabels());
  ExpectSameGraph(g, *loaded);
  EXPECT_EQ(loaded->EdgeLabelBetween(0, 3), g.EdgeLabelBetween(0, 3));
}

TEST(SnapshotTest, RoundTripTombstones) {
  // A materialized DeltaGraph keeps removed vertices as isolated
  // kTombstoneLabel vertices; the snapshot must preserve them so Restore
  // can revive them as dead (ids stay stable across a crash).
  dyn::DeltaGraph dg(daf::testing::MakeCycle({1, 2, 3, 1, 2}));
  dyn::UpdateBatch batch;
  batch.RemoveVertex(2);
  ASSERT_TRUE(dg.ApplyBatch(batch).ok);

  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(*dg.Materialize(), dg.version(), path, &error))
      << error;

  uint64_t version = 0;
  std::optional<Graph> loaded = LoadSnapshot(path, &version, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectSameGraph(*dg.Materialize(), *loaded);

  dyn::DeltaGraph restored =
      dyn::DeltaGraph::Restore(std::move(*loaded), {}, version);
  EXPECT_EQ(restored.version(), dg.version());
  EXPECT_EQ(restored.NumVertices(), dg.NumVertices());
  EXPECT_FALSE(restored.Alive(2));
  EXPECT_TRUE(restored.Alive(0));
  EXPECT_EQ(restored.NumEdges(), dg.NumEdges());
}

TEST(SnapshotTest, InfoAndSniff) {
  const Graph g = daf::testing::MakePath({1, 2, 3});
  ScopedTempDir dir;
  const std::string snap = dir.File("g.dafs");
  const std::string text = dir.File("g.txt");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 9, snap, &error)) << error;
  ASSERT_TRUE(SaveGraph(g, text, &error)) << error;

  EXPECT_TRUE(SniffSnapshot(snap));
  EXPECT_FALSE(SniffSnapshot(text));
  EXPECT_FALSE(SniffSnapshot(dir.File("missing")));

  std::optional<SnapshotInfo> info = ReadSnapshotInfo(snap, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->graph_version, 9u);
  EXPECT_EQ(info->num_vertices, 3u);
  EXPECT_EQ(info->num_edges, 2u);
  EXPECT_FALSE(info->has_edge_labels);
}

TEST(SnapshotTest, LoadGraphAnyFormatDispatches) {
  const Graph g = daf::testing::MakeClique({1, 2, 3, 4});
  ScopedTempDir dir;
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 0, dir.File("g.dafs"), &error)) << error;
  ASSERT_TRUE(SaveGraph(g, dir.File("g.txt"), &error)) << error;
  ASSERT_TRUE(SaveGraphBinary(g, dir.File("g.dafg"), &error)) << error;

  for (const char* name : {"g.dafs", "g.txt", "g.dafg"}) {
    std::optional<Graph> loaded = LoadGraphAnyFormat(dir.File(name), &error);
    ASSERT_TRUE(loaded.has_value()) << name << ": " << error;
    EXPECT_EQ(GraphToText(g), GraphToText(*loaded)) << name;
  }
  EXPECT_FALSE(LoadGraphAnyFormat(dir.File("missing"), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, TruncationIsTypedError) {
  Rng rng(11);
  const Graph g = daf::testing::RandomDataGraph(64, 128, 3, rng);
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 3, path, &error)) << error;
  const std::vector<uint8_t> bytes = ReadFileBytes(path);

  // Every truncation point: header, table, and payload cuts all load-fail
  // cleanly (coarse stride keeps the sweep fast; the fuzz test goes finer).
  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    ASSERT_TRUE(WriteFileBytes(path, truncated));
    std::string load_error;
    EXPECT_FALSE(LoadSnapshot(path, nullptr, &load_error).has_value())
        << "cut at " << cut;
    EXPECT_FALSE(load_error.empty()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, BitFlipIsTypedError) {
  const Graph g = daf::testing::MakeCycle({1, 2, 3, 4, 5, 6});
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 3, path, &error)) << error;
  const std::vector<uint8_t> bytes = ReadFileBytes(path);

  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<uint8_t> mutated = bytes;
    mutated[byte] ^= 0x10;
    ASSERT_TRUE(WriteFileBytes(path, mutated));
    std::string load_error;
    // Either a typed error, or (only possible for padding-free formats
    // like this one: every byte is covered by some CRC) never a crash.
    EXPECT_FALSE(LoadSnapshot(path, nullptr, &load_error).has_value())
        << "flipped byte " << byte;
  }
}

TEST(SnapshotTest, OversizedSectionLengthRejectedWithoutAllocation) {
  const Graph g = daf::testing::MakePath({1, 2, 3, 4});
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 0, path, &error)) << error;
  std::vector<uint8_t> bytes = ReadFileBytes(path);

  // Section table entries start at byte 40; bytes 16..23 of an entry are
  // the u64 length. Blow the first section's length up to ~2^60 — a
  // reader that allocated before bounds-checking would OOM here.
  const size_t length_offset = 40 + 16;
  ASSERT_GT(bytes.size(), length_offset + 8);
  for (int i = 0; i < 8; ++i) bytes[length_offset + i] = 0xF0;
  ASSERT_TRUE(WriteFileBytes(path, bytes));
  std::string load_error;
  EXPECT_FALSE(LoadSnapshot(path, nullptr, &load_error).has_value());
  EXPECT_FALSE(load_error.empty());
}

TEST(SnapshotTest, WrongMagicAndVersion) {
  const Graph g = daf::testing::MakePath({1, 2});
  ScopedTempDir dir;
  const std::string path = dir.File("g.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 0, path, &error)) << error;
  std::vector<uint8_t> bytes = ReadFileBytes(path);

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  ASSERT_TRUE(WriteFileBytes(path, bad_magic));
  EXPECT_FALSE(LoadSnapshot(path, nullptr, &error).has_value());

  // A future format version must be rejected, not misparsed. (Flipping the
  // version also breaks the header CRC; both layers refuse.)
  std::vector<uint8_t> bad_version = bytes;
  bad_version[4] = 0x7F;
  ASSERT_TRUE(WriteFileBytes(path, bad_version));
  EXPECT_FALSE(LoadSnapshot(path, nullptr, &error).has_value());
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  const Graph g = Graph::FromEdges({}, {});
  ScopedTempDir dir;
  const std::string path = dir.File("empty.dafs");
  std::string error;
  ASSERT_TRUE(WriteSnapshot(g, 5, path, &error)) << error;
  uint64_t version = 0;
  std::optional<Graph> loaded = LoadSnapshot(path, &version, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(version, 5u);
  EXPECT_EQ(loaded->NumVertices(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

}  // namespace
}  // namespace daf::persist

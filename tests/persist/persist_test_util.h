#ifndef DAF_TESTS_PERSIST_PERSIST_TEST_UTIL_H_
#define DAF_TESTS_PERSIST_PERSIST_TEST_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace daf::testing {

/// A mkdtemp directory removed (recursively, one level deep — the persist
/// layout is flat) when the test ends.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    char tmpl[] = "/tmp/daf_persist_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path_ = made != nullptr ? made : "";
  }
  ~ScopedTempDir() {
    if (path_.empty()) return;
    // Flat directory: unlink the entries, then the dir.
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

inline std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

inline bool WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

inline void FlipBit(std::vector<uint8_t>& bytes, size_t bit) {
  bytes[(bit / 8) % bytes.size()] ^= static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace daf::testing

#endif  // DAF_TESTS_PERSIST_PERSIST_TEST_UTIL_H_

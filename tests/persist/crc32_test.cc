#include "persist/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace daf::persist {
namespace {

TEST(Crc32Test, KnownAnswer) {
  // The IEEE CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, std::strlen(check)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32(0, data.data(), split);
    crc = Crc32(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, SensitiveToEveryBit) {
  std::vector<uint8_t> data(64, 0xA5);
  const uint32_t base = Crc32(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(data.data(), data.size()), base) << "bit " << bit;
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

}  // namespace
}  // namespace daf::persist

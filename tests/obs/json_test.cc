#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>

#include "daf/engine.h"

namespace daf::obs {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter o;
  o.BeginObject().EndObject();
  EXPECT_EQ(o.str(), "{}");
  JsonWriter a;
  a.BeginArray().EndArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriterTest, CompactScalars) {
  JsonWriter w(/*indent=*/0);
  w.BeginObject();
  w.Key("u").Uint(42);
  w.Key("i").Int(-7);
  w.Key("d").Double(1.5);
  w.Key("b").Bool(true);
  w.Key("s").String("hi");
  w.Key("n").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"u\":42,\"i\":-7,\"d\":1.5,\"b\":true,\"s\":\"hi\",\"n\":null}");
}

TEST(JsonWriterTest, CommasBetweenArrayElements) {
  JsonWriter w(0);
  w.BeginArray().Uint(1).Uint(2).Uint(3).EndArray();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginObject().Key("x").Uint(1).EndObject();
  w.BeginObject().Key("x").Uint(2).EndObject();
  w.EndArray();
  w.Key("done").Bool(false);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"rows\":[{\"x\":1},{\"x\":2}],\"done\":false}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w(0);
  w.String("a\"b\\c\nd\te\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w(0);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  JsonWriter w(2);
  w.BeginObject().Key("a").BeginArray().Uint(1).EndArray().EndObject();
  EXPECT_EQ(w.str(), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(ProfileToJsonTest, ContainsEverySection) {
  SearchProfile profile;
  profile.dag_build_ms = 0.25;
  profile.cs.passes.push_back({0, true, 5, 0.1});
  profile.backtrack.depth_histogram = {1, 2, 3};
  profile.backtrack.conflict_prunes = 9;
  std::string json = ProfileToJson(profile);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"dag_build_ms\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"cs\""), std::string::npos);
  EXPECT_NE(json.find("\"reversed_dag\": true"), std::string::npos);
  EXPECT_NE(json.find("\"backtrack\""), std::string::npos);
  EXPECT_NE(json.find("\"conflict_prunes\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"depth_histogram\""), std::string::npos);
  // No per-thread section for a single-threaded profile.
  EXPECT_EQ(json.find("thread_profiles"), std::string::npos);
}

TEST(MatchResultToJsonTest, EmbedsResultAndProfile) {
  MatchResult result;
  result.embeddings = 12;
  result.recursive_calls = 99;
  SearchProfile profile;
  std::string json = MatchResultToJson(result, &profile);
  EXPECT_NE(json.find("\"result\""), std::string::npos);
  EXPECT_NE(json.find("\"embeddings\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"recursive_calls\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  // Without a profile the "profile" key is absent.
  EXPECT_EQ(MatchResultToJson(result).find("\"profile\""), std::string::npos);
}

TEST(BacktrackProfileTest, MergeSumsCountersAndHistograms) {
  BacktrackProfile a;
  a.empty_candidate_prunes = 1;
  a.conflict_prunes = 2;
  a.failing_set_skips = 3;
  a.boost_skips = 4;
  a.peak_depth = 2;
  a.depth_histogram = {5, 6};
  BacktrackProfile b;
  b.empty_candidate_prunes = 10;
  b.conflict_prunes = 20;
  b.failing_set_skips = 30;
  b.boost_skips = 40;
  b.peak_depth = 5;
  b.depth_histogram = {1, 1, 1};
  a.MergeFrom(b);
  EXPECT_EQ(a.empty_candidate_prunes, 11u);
  EXPECT_EQ(a.conflict_prunes, 22u);
  EXPECT_EQ(a.failing_set_skips, 33u);
  EXPECT_EQ(a.boost_skips, 44u);
  EXPECT_EQ(a.peak_depth, 5u);
  EXPECT_EQ(a.depth_histogram, (std::vector<uint64_t>{6, 7, 1}));
  EXPECT_EQ(a.HistogramTotal(), 14u);
}

}  // namespace
}  // namespace daf::obs

#include "obs/service_metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace daf::obs {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ms(), 0.0);
  EXPECT_EQ(h.min_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
  EXPECT_EQ(h.mean_ms(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, TracksExactCountSumMinMaxMean) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(9.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 12.0);
  EXPECT_DOUBLE_EQ(h.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 4.0);
}

TEST(LatencyHistogramTest, BucketBoundsDoubleFromOneMicrosecond) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBound(10), 0.001 * 1024);
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAndClampToMax) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  const double p50 = h.Quantile(0.5);
  const double p90 = h.Quantile(0.9);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max_ms());
  EXPECT_GT(p50, 0.0);
  // A log2 histogram is at most one power of two coarse: sample 50 lands
  // in the (32.768, 65.536] bucket.
  EXPECT_LE(p50, 65.536);
  EXPECT_GE(p50, 50.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantileIsExact) {
  // The bucket bound would overshoot; clamping to the observed max keeps
  // the reported percentile truthful.
  LatencyHistogram h;
  h.Record(3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 3.0);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 0.0);
}

TEST(LatencyHistogramTest, MergeCombinesCountsAndExtremes) {
  LatencyHistogram a;
  a.Record(1.0);
  a.Record(4.0);
  LatencyHistogram b;
  b.Record(0.5);
  b.Record(100.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(a.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(a.sum_ms(), 105.5);
  EXPECT_LE(a.Quantile(0.99), 100.0);
}

TEST(ServiceMetricsTest, JsonExportHasAllSections) {
  ServiceMetricsSnapshot m;
  m.counters.submitted = 10;
  m.counters.completed = 7;
  m.counters.rejected = 1;
  m.counters.cancelled = 1;
  m.counters.timed_out = 1;
  m.queue_depth = 2;
  m.running = 3;
  m.workers = 4;
  m.embeddings_streamed = 1234;
  m.wait.Record(0.5);
  m.run.Record(8.0);
  m.total.Record(8.5);
  std::string json = ServiceMetricsToJson(m);
  for (const char* key :
       {"\"counters\"", "\"submitted\": 10", "\"completed\": 7",
        "\"rejected\": 1", "\"cancelled\": 1", "\"timed_out\": 1",
        "\"queue_depth\": 2", "\"running\": 3", "\"workers\": 4",
        "\"embeddings_streamed\": 1234", "\"wait_latency\"",
        "\"run_latency\"", "\"total_latency\"", "\"p50_ms\"", "\"p99_ms\"",
        "\"mean_ms\""}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing " << key << " in:\n"
        << json;
  }
}

}  // namespace
}  // namespace daf::obs

#include <gtest/gtest.h>

#include "daf/boost.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "graph/query_extract.h"
#include "tests/test_util.h"

namespace daf {
namespace {

using daf::testing::Collector;
using daf::testing::EmbeddingSet;

// The Example 6.1-style instance of failing_set_test.cc: every search
// dead-ends in a u2/u5 conflict on the unique B vertex, u4's D candidates
// are irrelevant to the failure, so failing-set pruning must skip the
// remaining u4 siblings (Lemma 6.1). `shared_e` collapses the D vertices'
// pendant E children into one shared vertex, which makes all D vertices
// syntactically equivalent (one DAF-Boost class of size num_d).
struct Instance {
  Graph query;
  Graph data;
};

Instance MakeInstance(uint32_t num_d, uint32_t num_c = 20,
                      bool shared_e = false) {
  Instance inst;
  inst.query = Graph::FromEdges(
      {0, 1, 2, 3, 1, 4},
      {{0, 1}, {0, 2}, {2, 4}, {0, 3}, {3, 5}});
  std::vector<Label> labels{0, 1};  // v0 = A hub, v1 = the only B
  std::vector<Edge> edges{{0, 1}};
  for (uint32_t i = 0; i < num_c; ++i) {
    VertexId c = static_cast<VertexId>(labels.size());
    labels.push_back(2);
    edges.emplace_back(0, c);
    edges.emplace_back(c, 1);
  }
  VertexId shared = kInvalidVertex;
  if (shared_e) {
    shared = static_cast<VertexId>(labels.size());
    labels.push_back(4);
  }
  for (uint32_t i = 0; i < num_d; ++i) {
    VertexId d = static_cast<VertexId>(labels.size());
    labels.push_back(3);
    edges.emplace_back(0, d);
    if (shared_e) {
      edges.emplace_back(d, shared);
    } else {
      VertexId e = static_cast<VertexId>(labels.size());
      labels.push_back(4);
      edges.emplace_back(d, e);
    }
  }
  inst.data = Graph::FromEdges(std::move(labels), edges);
  return inst;
}

TEST(SearchProfileTest, DepthHistogramSumsToRecursiveCalls) {
  Instance inst = MakeInstance(15);
  for (bool failing : {true, false}) {
    for (MatchOrder order :
         {MatchOrder::kPathSize, MatchOrder::kCandidateSize}) {
      obs::SearchProfile profile;
      MatchOptions options;
      options.use_failing_sets = failing;
      options.order = order;
      options.profile = &profile;
      MatchResult r = DafMatch(inst.query, inst.data, options);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(profile.backtrack.HistogramTotal(), r.recursive_calls)
          << "failing=" << failing;
      EXPECT_LE(profile.backtrack.peak_depth, inst.query.NumVertices());
    }
  }
}

TEST(SearchProfileTest, DepthHistogramInvariantOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(50, 100 + rng.UniformInt(150), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(6), -1.0, rng);
    if (!extracted) continue;
    obs::SearchProfile profile;
    MatchOptions options;
    options.profile = &profile;
    MatchResult r = DafMatch(extracted->query, data, options);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(profile.backtrack.HistogramTotal(), r.recursive_calls);
  }
}

TEST(SearchProfileTest, PerCausePruneCountsOnFailingSetFixture) {
  Instance inst = MakeInstance(15);
  obs::SearchProfile profile;
  MatchOptions options;
  options.profile = &profile;
  MatchResult r = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, 0u);
  // Every dead end is a u2/u5 injectivity conflict on the unique B vertex.
  EXPECT_GT(profile.backtrack.conflict_prunes, 0u);
  // Lemma 6.1 skips the remaining redundant u4 siblings (14 of the 15).
  EXPECT_GT(profile.backtrack.failing_set_skips, 0u);
  // No boost, no equivalence skips.
  EXPECT_EQ(profile.backtrack.boost_skips, 0u);

  // Without failing sets the same search has zero failing-set skips.
  obs::SearchProfile unpruned;
  options.use_failing_sets = false;
  options.profile = &unpruned;
  MatchResult r2 = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(unpruned.backtrack.failing_set_skips, 0u);
  EXPECT_GT(unpruned.backtrack.conflict_prunes,
            profile.backtrack.conflict_prunes);
}

TEST(SearchProfileTest, BoostSkipsCountedWithEquivalence) {
  Instance inst = MakeInstance(/*num_d=*/10, /*num_c=*/5, /*shared_e=*/true);
  VertexEquivalence eq = VertexEquivalence::Compute(inst.data);
  obs::SearchProfile profile;
  MatchOptions options;
  options.use_failing_sets = false;  // isolate the boost rule
  options.equivalence = &eq;
  options.profile = &profile;
  MatchResult r = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.embeddings, 0u);
  // All D vertices are equivalent; after the first fails, the rest are
  // skipped by the DAF-Boost rule.
  EXPECT_GT(profile.backtrack.boost_skips, 0u);
  EXPECT_EQ(profile.backtrack.HistogramTotal(), r.recursive_calls);
}

TEST(SearchProfileTest, CsProfileAccountingIsConsistent) {
  Instance inst = MakeInstance(15);
  obs::SearchProfile profile;
  MatchOptions options;
  options.profile = &profile;
  MatchResult r = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(r.ok);
  const obs::CsProfile& cs = profile.cs;
  // Every examined pair is either rejected by exactly one local filter or
  // becomes an initial candidate.
  EXPECT_EQ(cs.seed_considered, cs.degree_rejected + cs.mnd_rejected +
                                    cs.nlf_rejected + cs.initial_candidates);
  EXPECT_GE(cs.initial_candidates, cs.final_candidates);
  EXPECT_EQ(cs.final_candidates, r.cs_candidates);
  EXPECT_EQ(cs.edges_materialized, r.cs_edges);
  // One recorded pass per refinement step, alternating directions.
  ASSERT_EQ(cs.passes.size(), 3u);
  EXPECT_TRUE(cs.passes[0].reversed_dag);
  EXPECT_FALSE(cs.passes[1].reversed_dag);
  EXPECT_TRUE(cs.passes[2].reversed_dag);
  uint64_t removed_total = 0;
  for (const obs::CsPassStats& p : cs.passes) removed_total += p.removed;
  EXPECT_EQ(cs.initial_candidates - removed_total, cs.final_candidates);
}

TEST(SearchProfileTest, DisabledProfileYieldsIdenticalResults) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Graph data =
        daf::testing::RandomDataGraph(40, 80 + rng.UniformInt(120), 3, rng);
    auto extracted =
        ExtractRandomWalkQuery(data, 4 + rng.UniformInt(5), -1.0, rng);
    if (!extracted) continue;
    EmbeddingSet plain_set;
    MatchOptions plain;
    plain.callback = Collector(&plain_set);
    MatchResult a = DafMatch(extracted->query, data, plain);

    EmbeddingSet profiled_set;
    obs::SearchProfile profile;
    MatchOptions profiled;
    profiled.profile = &profile;
    profiled.callback = Collector(&profiled_set);
    MatchResult b = DafMatch(extracted->query, data, profiled);

    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.embeddings, b.embeddings);
    EXPECT_EQ(a.recursive_calls, b.recursive_calls);
    EXPECT_EQ(a.cs_candidates, b.cs_candidates);
    EXPECT_EQ(a.cs_edges, b.cs_edges);
    EXPECT_EQ(plain_set, profiled_set);
  }
}

TEST(SearchProfileTest, ParallelMergeEqualsSumOfThreadProfiles) {
  Rng rng(11);
  Graph data = daf::testing::RandomDataGraph(60, 240, 2, rng);
  auto extracted = ExtractRandomWalkQuery(data, 5, -1.0, rng);
  ASSERT_TRUE(extracted.has_value());

  obs::SearchProfile profile;
  MatchOptions options;
  options.profile = &profile;
  ParallelMatchResult r =
      ParallelDafMatch(extracted->query, data, options, /*num_threads=*/4);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(profile.thread_profiles.size(), 4u);
  EXPECT_EQ(profile.threads, 4u);

  obs::BacktrackProfile sum;
  for (const obs::BacktrackProfile& tp : profile.thread_profiles) {
    sum.MergeFrom(tp);
  }
  EXPECT_EQ(sum.empty_candidate_prunes,
            profile.backtrack.empty_candidate_prunes);
  EXPECT_EQ(sum.conflict_prunes, profile.backtrack.conflict_prunes);
  EXPECT_EQ(sum.failing_set_skips, profile.backtrack.failing_set_skips);
  EXPECT_EQ(sum.boost_skips, profile.backtrack.boost_skips);
  EXPECT_EQ(sum.peak_depth, profile.backtrack.peak_depth);
  EXPECT_EQ(sum.depth_histogram, profile.backtrack.depth_histogram);
  // The merged histogram accounts for every worker's recursive calls.
  EXPECT_EQ(profile.backtrack.HistogramTotal(), r.recursive_calls);

  // Profiling does not change the embedding count.
  MatchOptions unprofiled;
  ParallelMatchResult r2 =
      ParallelDafMatch(extracted->query, data, unprofiled, 4);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r.embeddings, r2.embeddings);
}

TEST(SearchProfileTest, ProgressHookReportsMonotonicSnapshots) {
  // A single-label data graph makes a 3-path query explode into far more
  // than 4096 recursive calls, so the countdown-sampled hook must fire.
  Rng rng(5);
  Graph data = daf::testing::RandomDataGraph(150, 1500, 1, rng);
  Graph query = daf::testing::MakePath({0, 0, 0});

  std::vector<obs::ProgressSnapshot> snapshots;
  MatchOptions options;
  options.progress = [&](const obs::ProgressSnapshot& s) {
    snapshots.push_back(s);
  };
  options.progress_interval_ms = 0;  // report on every sampling tick
  MatchResult r = DafMatch(query, data, options);
  ASSERT_TRUE(r.ok);
  ASSERT_GT(r.recursive_calls, 4096u);
  ASSERT_FALSE(snapshots.empty());
  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_GE(snapshots[i].recursive_calls, snapshots[i - 1].recursive_calls);
    EXPECT_GE(snapshots[i].embeddings, snapshots[i - 1].embeddings);
    EXPECT_GE(snapshots[i].elapsed_ms, snapshots[i - 1].elapsed_ms);
  }
  for (const obs::ProgressSnapshot& s : snapshots) {
    EXPECT_EQ(s.thread, 0u);
    EXPECT_GE(s.embeddings_per_sec, 0.0);
  }

  // The hook must not change what the search finds.
  MatchResult plain = DafMatch(query, data, MatchOptions{});
  EXPECT_EQ(plain.embeddings, r.embeddings);
  EXPECT_EQ(plain.recursive_calls, r.recursive_calls);
}

TEST(SearchProfileTest, ProfileIsResetBetweenRuns) {
  Instance inst = MakeInstance(10);
  obs::SearchProfile profile;
  MatchOptions options;
  options.profile = &profile;
  MatchResult first = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(first.ok);
  MatchResult second = DafMatch(inst.query, inst.data, options);
  ASSERT_TRUE(second.ok);
  // Counters must not accumulate across runs.
  EXPECT_EQ(profile.backtrack.HistogramTotal(), second.recursive_calls);
  EXPECT_EQ(profile.cs.final_candidates, second.cs_candidates);
}

}  // namespace
}  // namespace daf

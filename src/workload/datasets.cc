#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace daf::workload {

namespace {

// Table 2 of the paper + the Twitter simulation (Appendix A.1). Query sizes
// follow the paper: {50,100,150,200} for Yeast and HPRD, {10,20,30,40} for
// the rest. The Twitter stand-in is RMAT-shaped (DESIGN.md, substitution 2):
// 2^22 vertices / 33.5M edges in place of 41.7M / 1.47B.
// Label-skew exponents are calibrated so the query workloads reproduce the
// paper's hardness profile: real labeled graphs concentrate most vertices
// in a few frequent labels, and it is exactly those low-selectivity regions
// that make CFL-Match time out on the larger sparse query sets (Figure 10)
// while DAF keeps solving them.
const DatasetSpec kSpecs[] = {
    {DatasetId::kYeast, "Yeast", 3112, 12519, 71, 8.04, 1.6, 0.051,
     {50, 100, 150, 200}},
    {DatasetId::kHuman, "Human", 4674, 86282, 44, 36.91, 1.3, 0.531,
     {10, 20, 30, 40}},
    {DatasetId::kHprd, "HPRD", 9460, 37081, 307, 7.83, 1.6, 0.014,
     {50, 100, 150, 200}},
    {DatasetId::kEmail, "Email", 36692, 183831, 20, 10.02, 1.3, 0.164,
     {10, 20, 30, 40}},
    {DatasetId::kDblp, "DBLP", 317080, 1049866, 20, 6.62, 1.3, 0.021,
     {10, 20, 30, 40}},
    {DatasetId::kYago, "YAGO", 4295825, 11413472, 49676, 5.31, 1.1, 0.414,
     {10, 20, 30, 40}},
    {DatasetId::kTwitterSim, "TwitterSim", 1u << 22, 33554432, 1000, 16.0,
     1.0, 0.0, {10, 20, 30, 40}},
};

}  // namespace

const DatasetSpec& GetSpec(DatasetId id) {
  return kSpecs[static_cast<int>(id)];
}

const std::vector<DatasetSpec>& Table2Specs() {
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>(
      kSpecs, kSpecs + 6);
  return *specs;
}

Graph MakeDataset(DatasetId id, double scale, uint64_t seed) {
  const DatasetSpec& spec = GetSpec(id);
  scale = std::clamp(scale, 1e-3, 1.0);
  Rng rng(seed ^ (static_cast<uint64_t>(id) << 32));
  const auto n =
      std::max<uint32_t>(16, static_cast<uint32_t>(spec.num_vertices * scale));
  const auto m =
      std::max<uint64_t>(n, static_cast<uint64_t>(spec.num_edges * scale));
  // The label alphabet is NOT scaled down: per-label frequencies shrink
  // naturally with |V|, and keeping the alphabet preserves the datasets'
  // label selectivity (the main driver of candidate-set sizes).
  const auto num_labels =
      std::max<uint32_t>(2, std::min<uint32_t>(n / 2, spec.num_labels));
  std::vector<Edge> edges;
  if (id == DatasetId::kTwitterSim) {
    // RMAT preserves the heavy-tailed degree skew of the social graph.
    uint32_t rmat_scale = 4;
    while ((1u << rmat_scale) < n && rmat_scale < 31) ++rmat_scale;
    edges = RmatEdges(rmat_scale, m, 0.57, 0.19, 0.19, rng);
    std::vector<Label> labels =
        ZipfLabels(1u << rmat_scale, num_labels, spec.label_zipf_exponent,
                   rng);
    ConnectComponents(1u << rmat_scale, &edges, rng);
    return Graph::FromEdges(std::move(labels), edges);
  }
  // Vertex duplication: a fraction of vertices are twins of earlier ones
  // (same label, same — or closed — neighborhood). This reproduces the
  // redundancy real datasets carry (duplicated genes in PPI networks,
  // mirrored entities in knowledge graphs) and the compression ratios of
  // Appendix A.5. The base graph is generated smaller, then duplicated
  // vertices copy a random source's adjacency snapshot.
  // Duplicates are created in *groups*: every member of a group copies the
  // same snapshot of one base vertex's adjacency. Group members stay
  // mutually SE-equivalent no matter how the rest of the graph evolves
  // afterwards (nothing ever attaches to a copy), which is what keeps the
  // realized compression ratio close to the target. A group of size k
  // collapses k vertices into one class, so for a target ratio c we need
  // roughly c*n*mu/(mu-1) duplicates at mean group size mu.
  const double target_ratio = spec.duplication_fraction;
  constexpr double kMeanGroupSize = 4.0;
  const uint32_t n_dup = std::min<uint32_t>(
      static_cast<uint32_t>(0.85 * n),
      static_cast<uint32_t>(target_ratio * n * kMeanGroupSize /
                            (kMeanGroupSize - 1.0)));
  const uint32_t n_base = std::max<uint32_t>(16, n - n_dup);
  // Copies replicate the running average degree, so the base edge budget
  // solving m = m_b * (1 + 2*n_dup/n_b) keeps the final total near m.
  const auto m_base = std::max<uint64_t>(
      n_base,
      static_cast<uint64_t>(static_cast<double>(m) /
                            (1.0 + 2.0 * n_dup / std::max(1u, n_base))));
  edges = PowerLawEdges(n_base, m_base, rng);
  std::vector<Label> labels =
      ZipfLabels(n_base, num_labels, spec.label_zipf_exponent, rng);
  labels.resize(n);

  std::vector<std::vector<VertexId>> adjacency(n_base);
  for (const Edge& e : edges) {
    adjacency[e.first].push_back(e.second);
    adjacency[e.second].push_back(e.first);
  }
  uint32_t next = n_base;
  while (next < n) {
    const uint32_t dups_left = n - next;
    uint32_t group = std::min<uint32_t>(
        dups_left, 2 + static_cast<uint32_t>(rng.UniformInt(5)));  // 2..6
    const uint64_t remaining_budget = m > edges.size() ? m - edges.size() : 0;
    const uint64_t per_dup = remaining_budget / std::max(1u, dups_left);
    VertexId source = static_cast<VertexId>(rng.UniformInt(n_base));
    for (int attempt = 0;
         attempt < 16 && adjacency[source].size() > 2 * per_dup + 4;
         ++attempt) {
      source = static_cast<VertexId>(rng.UniformInt(n_base));
    }
    // Snapshot of the source's current neighborhood (plus, 30% of the time,
    // the source itself: the copies then also form QDE pairs with it).
    std::vector<VertexId> snapshot = adjacency[source];
    if (snapshot.empty() || rng.Bernoulli(0.3)) snapshot.push_back(source);
    for (uint32_t g = 0; g < group && next < n; ++g, ++next) {
      labels[next] = labels[source];
      for (VertexId w : snapshot) edges.emplace_back(next, w);
    }
    // Note: base adjacency intentionally excludes the copies, so later
    // snapshots of w never link to earlier copies — groups stay isolated
    // and exactly equivalent.
  }
  // Top up any shortfall with random edges among base vertices (this may
  // break a few twin pairs; the duplication fractions above absorb it).
  if (edges.size() < m) {
    std::unordered_set<uint64_t> seen;
    seen.reserve(edges.size() * 2);
    auto key = [](VertexId a, VertexId b) {
      if (a > b) std::swap(a, b);
      return (static_cast<uint64_t>(a) << 32) | b;
    };
    for (const Edge& e : edges) seen.insert(key(e.first, e.second));
    uint64_t stall = 0;
    while (edges.size() < m && stall < 64 * m + 1024) {
      VertexId a = static_cast<VertexId>(rng.UniformInt(n_base));
      VertexId b = static_cast<VertexId>(rng.UniformInt(n_base));
      if (a != b && seen.insert(key(a, b)).second) {
        edges.emplace_back(a, b);
      } else {
        ++stall;
      }
    }
  }
  ConnectComponents(n, &edges, rng);
  return Graph::FromEdges(std::move(labels), edges);
}

}  // namespace daf::workload

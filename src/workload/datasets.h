#ifndef DAF_WORKLOAD_DATASETS_H_
#define DAF_WORKLOAD_DATASETS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace daf::workload {

/// The data graphs of the paper's evaluation (Table 2 plus the Twitter
/// graph of Appendix A.1). The real datasets are not distributable with
/// this repository, so each is synthesized as a stand-in matching the
/// published |V|, |E|, |Σ| and average degree, with a power-law degree
/// distribution and Zipf-distributed labels (see DESIGN.md, substitution 1).
enum class DatasetId {
  kYeast,
  kHuman,
  kHprd,
  kEmail,
  kDblp,
  kYago,
  kTwitterSim,  // RMAT stand-in for the billion-edge Twitter graph
};

/// Published statistics a stand-in must match.
struct DatasetSpec {
  DatasetId id;
  const char* name;
  uint32_t num_vertices;
  uint64_t num_edges;
  uint32_t num_labels;
  double avg_degree;            // as reported in Table 2
  double label_zipf_exponent;   // skew of the synthetic label distribution
  /// Fraction of vertices created by duplicating an existing vertex's
  /// neighborhood (SE/QDE twins). Matches the per-dataset compression
  /// ratios the paper reports in Appendix A.5 (Human 53.1%, YAGO 41.4%,
  /// Email 16.4%, Yeast 5.1%, DBLP 2.1%, HPRD 1.4%), which is what makes
  /// the DAF-Boost experiment (Figure 17) meaningful.
  double duplication_fraction;
  std::array<uint32_t, 4> query_sizes;  // the i of Q_iS / Q_iN
};

/// Spec lookup.
const DatasetSpec& GetSpec(DatasetId id);

/// The six Table 2 datasets, in the paper's order.
const std::vector<DatasetSpec>& Table2Specs();

/// Synthesizes the stand-in for `id`. `scale` in (0, 1] shrinks |V|, |E|
/// and |Σ| proportionally so benchmarks can trade fidelity for runtime;
/// scale = 1 reproduces the published sizes. Deterministic in `seed`.
Graph MakeDataset(DatasetId id, double scale, uint64_t seed);

}  // namespace daf::workload

#endif  // DAF_WORKLOAD_DATASETS_H_

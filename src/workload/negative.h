#ifndef DAF_WORKLOAD_NEGATIVE_H_
#define DAF_WORKLOAD_NEGATIVE_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace daf::workload {

/// Negative-query generators of Appendix A.3: perturbations of positive
/// queries that may destroy all embeddings.

/// Replaces `num_changes` distinct query vertices' labels with labels drawn
/// uniformly from the data graph's label alphabet.
Graph PerturbLabels(const Graph& query, const Graph& data,
                    uint32_t num_changes, Rng& rng);

/// Adds `num_edges` random non-existing edges to the query (the structure
/// of the query densifies toward a complete graph, the paper's "C" point).
Graph AddRandomEdges(const Graph& query, uint32_t num_edges, Rng& rng);

}  // namespace daf::workload

#endif  // DAF_WORKLOAD_NEGATIVE_H_

#include "workload/negative.h"

#include <algorithm>
#include <vector>

namespace daf::workload {

Graph PerturbLabels(const Graph& query, const Graph& data,
                    uint32_t num_changes, Rng& rng) {
  const uint32_t n = query.NumVertices();
  std::vector<Label> labels(n);
  for (uint32_t u = 0; u < n; ++u) {
    labels[u] = query.original_label(query.label(u));
  }
  std::vector<VertexId> victims(n);
  for (uint32_t u = 0; u < n; ++u) victims[u] = u;
  rng.Shuffle(victims);
  num_changes = std::min(num_changes, n);
  for (uint32_t i = 0; i < num_changes; ++i) {
    Label l = static_cast<Label>(rng.UniformInt(data.NumLabels()));
    labels[victims[i]] = data.original_label(l);
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  for (const auto& [e, label] : query.LabeledEdgeList()) {
    edges.push_back(e);
    edge_labels.push_back(label);
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

Graph AddRandomEdges(const Graph& query, uint32_t num_edges, Rng& rng) {
  const uint32_t n = query.NumVertices();
  std::vector<Label> labels(n);
  for (uint32_t u = 0; u < n; ++u) {
    labels[u] = query.original_label(query.label(u));
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  for (const auto& [e, label] : query.LabeledEdgeList()) {
    edges.push_back(e);
    edge_labels.push_back(label);
  }
  // Enumerate the absent pairs and sample from them; new edges reuse the
  // label of a random existing edge (0 for edge-unlabeled queries).
  std::vector<Edge> absent;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (!query.HasEdge(u, v)) absent.emplace_back(u, v);
    }
  }
  rng.Shuffle(absent);
  num_edges = std::min<uint32_t>(num_edges,
                                 static_cast<uint32_t>(absent.size()));
  const size_t original = edge_labels.size();
  for (uint32_t i = 0; i < num_edges; ++i) {
    edges.push_back(absent[i]);
    edge_labels.push_back(
        original > 0 ? edge_labels[rng.UniformInt(original)] : 0);
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

}  // namespace daf::workload

#ifndef DAF_WORKLOAD_QUERYGEN_H_
#define DAF_WORKLOAD_QUERYGEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace daf::workload {

/// A query set in the paper's sense: Q_iS (sparse, avg-deg(q) <= 3) or
/// Q_iN (non-sparse, avg-deg(q) > 3), each query a connected random-walk
/// subgraph of the data graph with i vertices — hence guaranteed positive.
struct QuerySet {
  uint32_t size = 0;   // i
  bool sparse = true;  // S or N
  std::vector<Graph> queries;

  /// "Q50S"-style display name.
  std::string Name() const;
};

/// Generates a query set of `count` queries of `size` vertices. Sparse sets
/// target avg-deg <= 3 by subsampling induced edges; non-sparse sets keep
/// all induced edges and retry walks until avg-deg > 3 (falling back to the
/// densest extraction found if the data graph region is too sparse).
QuerySet MakeQuerySet(const Graph& data, uint32_t size, bool sparse,
                      uint32_t count, Rng& rng);

/// Constraints for the sensitivity-analysis query generator (Section 7.2),
/// matched by rejection sampling. Bounds are inclusive; use 0 /
/// UINT32_MAX-style sentinels for "unbounded".
struct QueryConstraints {
  uint32_t size = 100;
  double min_avg_deg = 0;
  double max_avg_deg = 1e9;
  uint32_t min_diameter = 0;
  uint32_t max_diameter = 1u << 30;
};

/// Samples one query satisfying `constraints` (std::nullopt after
/// `max_attempts` rejections). High-density constraints (min_avg_deg > 4)
/// additionally try greedy dense-region extraction, since plain random
/// walks rarely induce such subgraphs.
std::optional<Graph> MakeConstrainedQuery(const Graph& data,
                                          const QueryConstraints& constraints,
                                          Rng& rng, int max_attempts = 200);

/// Extracts a connected `size`-vertex query by greedily growing the set
/// that maximizes induced edges (densest-region expansion from a random
/// high-degree seed). Like the random-walk extraction the result is an
/// induced subgraph of `data`, hence positive by construction.
std::optional<Graph> ExtractDenseQuery(const Graph& data, uint32_t size,
                                       Rng& rng);

}  // namespace daf::workload

#endif  // DAF_WORKLOAD_QUERYGEN_H_

#include "workload/querygen.h"

#include <algorithm>
#include <unordered_map>

#include "graph/properties.h"
#include "graph/query_extract.h"

namespace daf::workload {

std::string QuerySet::Name() const {
  return "Q" + std::to_string(size) + (sparse ? "S" : "N");
}

QuerySet MakeQuerySet(const Graph& data, uint32_t size, bool sparse,
                      uint32_t count, Rng& rng) {
  QuerySet set;
  set.size = size;
  set.sparse = sparse;
  set.queries.reserve(count);
  constexpr int kRetries = 60;
  while (set.queries.size() < count) {
    Graph best;
    double best_deg = -1;
    bool accepted = false;
    for (int attempt = 0; attempt < kRetries && !accepted; ++attempt) {
      auto extracted = ExtractRandomWalkQuery(
          data, size, sparse ? 2.6 : -1.0, rng);
      if (!extracted) continue;
      double avg_deg = extracted->query.AverageDegree();
      if (sparse ? avg_deg <= 3.0 : avg_deg > 3.0) {
        set.queries.push_back(std::move(extracted->query));
        accepted = true;
      } else if (!sparse && avg_deg > best_deg) {
        best_deg = avg_deg;
        best = std::move(extracted->query);
      }
    }
    if (!accepted) {
      if (best.NumVertices() == 0) break;  // data graph too small
      set.queries.push_back(std::move(best));
    }
  }
  return set;
}

std::optional<Graph> ExtractDenseQuery(const Graph& data, uint32_t size,
                                       Rng& rng) {
  if (size == 0 || data.NumVertices() < size) return std::nullopt;
  // Seed from a random vertex among the higher-degree ones (dense regions
  // cluster around hubs).
  VertexId best_seed = kInvalidVertex;
  for (int i = 0; i < 16; ++i) {
    VertexId v = static_cast<VertexId>(rng.UniformInt(data.NumVertices()));
    if (best_seed == kInvalidVertex ||
        data.degree(v) > data.degree(best_seed)) {
      best_seed = v;
    }
  }
  std::unordered_map<VertexId, uint32_t> inside_degree;  // frontier -> links
  std::vector<VertexId> chosen{best_seed};
  std::unordered_map<VertexId, bool> in_set;
  in_set[best_seed] = true;
  for (VertexId w : data.Neighbors(best_seed)) inside_degree[w] = 1;
  while (chosen.size() < size) {
    // Pick the frontier vertex with the most edges into the chosen set,
    // breaking ties randomly among the best few.
    VertexId best = kInvalidVertex;
    uint32_t best_links = 0;
    uint32_t ties = 0;
    for (const auto& [v, links] : inside_degree) {
      if (links > best_links) {
        best = v;
        best_links = links;
        ties = 1;
      } else if (links == best_links && links > 0) {
        // Reservoir-sample among ties for diversity across extractions.
        ++ties;
        if (rng.UniformInt(ties) == 0) best = v;
      }
    }
    if (best == kInvalidVertex) return std::nullopt;  // component exhausted
    chosen.push_back(best);
    in_set[best] = true;
    inside_degree.erase(best);
    for (VertexId w : data.Neighbors(best)) {
      if (!in_set[w]) ++inside_degree[w];
    }
  }
  std::unordered_map<VertexId, VertexId> index;
  std::vector<Label> labels(size);
  for (uint32_t i = 0; i < size; ++i) {
    index[chosen[i]] = i;
    labels[i] = data.original_label(data.label(chosen[i]));
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  for (uint32_t i = 0; i < size; ++i) {
    auto neighbors = data.Neighbors(chosen[i]);
    auto neighbor_edge_labels = data.NeighborEdgeLabels(chosen[i]);
    for (size_t j = 0; j < neighbors.size(); ++j) {
      auto it = index.find(neighbors[j]);
      if (it != index.end() && it->second > i) {
        edges.emplace_back(i, it->second);
        edge_labels.push_back(neighbor_edge_labels[j]);
      }
    }
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

std::optional<Graph> MakeConstrainedQuery(const Graph& data,
                                          const QueryConstraints& constraints,
                                          Rng& rng, int max_attempts) {
  const bool wants_dense = constraints.min_avg_deg > 4.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::optional<Graph> q;
    if (wants_dense && attempt % 2 == 0) {
      q = ExtractDenseQuery(data, constraints.size, rng);
    } else {
      // Alternate between "all induced edges" and degree-targeted
      // extraction so both dense and sparse windows are reachable.
      double target =
          (attempt % 2 == 0)
              ? -1.0
              : (constraints.min_avg_deg + constraints.max_avg_deg > 1e9
                     ? 3.0
                     : (constraints.min_avg_deg +
                        std::min(constraints.max_avg_deg, 8.0)) /
                           2.0);
      auto extracted =
          ExtractRandomWalkQuery(data, constraints.size, target, rng);
      if (extracted) q = std::move(extracted->query);
    }
    if (!q) continue;
    double avg_deg = q->AverageDegree();
    if (avg_deg < constraints.min_avg_deg ||
        avg_deg > constraints.max_avg_deg) {
      continue;
    }
    uint32_t diam = Diameter(*q);
    if (diam < constraints.min_diameter || diam > constraints.max_diameter) {
      continue;
    }
    return q;
  }
  return std::nullopt;
}

}  // namespace daf::workload

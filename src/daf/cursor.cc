#include "daf/cursor.h"

#include <cassert>
#include <utility>

namespace daf {

EmbeddingCursor::EmbeddingCursor(const Graph& query, const Graph& data,
                                 const MatchOptions& options,
                                 MatchContext* context)
    : channel_(std::make_shared<Channel>()) {
  assert(!options.callback && "the cursor owns the embedding callback");
  std::shared_ptr<Channel> channel = channel_;
  MatchOptions producer_options = options;
  producer_options.callback = [channel](std::span<const VertexId> embedding) {
    std::unique_lock<std::mutex> lock(channel->mutex);
    channel->can_produce.wait(lock, [&] {
      return channel->closed || channel->buffer.size() < Channel::kCapacity;
    });
    if (channel->closed) return false;  // consumer abandoned the cursor
    channel->buffer.emplace_back(embedding.begin(), embedding.end());
    channel->can_consume.notify_one();
    return true;
  };
  // The producer captures `query`/`data` by reference: the cursor's
  // contract (like Backtracker's) is that both, and any `context`, outlive
  // it.
  producer_ = std::thread([this, &query, &data, producer_options, channel,
                           context] {
    MatchResult result =
        context != nullptr ? DafMatch(query, data, producer_options, context)
                           : DafMatch(query, data, producer_options);
    {
      std::lock_guard<std::mutex> lock(channel->mutex);
      channel->finished = true;
      channel->can_consume.notify_all();
    }
    result_ = std::move(result);
  });
}

EmbeddingCursor::EmbeddingCursor(std::shared_ptr<const PreparedQuery> prepared,
                                 const Graph& data,
                                 const MatchOptions& options,
                                 MatchContext* context)
    : channel_(std::make_shared<Channel>()) {
  assert(!options.callback && "the cursor owns the embedding callback");
  std::shared_ptr<Channel> channel = channel_;
  MatchOptions producer_options = options;
  producer_options.callback = [channel](std::span<const VertexId> embedding) {
    std::unique_lock<std::mutex> lock(channel->mutex);
    channel->can_produce.wait(lock, [&] {
      return channel->closed || channel->buffer.size() < Channel::kCapacity;
    });
    if (channel->closed) return false;  // consumer abandoned the cursor
    channel->buffer.emplace_back(embedding.begin(), embedding.end());
    channel->can_consume.notify_one();
    return true;
  };
  // The blob is captured by shared_ptr (keeping a cache-evicted entry alive
  // for the whole stream); `data` and `context` follow the usual
  // outlive-the-cursor contract.
  producer_ = std::thread([this, prepared = std::move(prepared), &data,
                           producer_options, channel, context] {
    MatchResult result =
        DafMatchPrepared(*prepared, data, producer_options, context);
    {
      std::lock_guard<std::mutex> lock(channel->mutex);
      channel->finished = true;
      channel->can_consume.notify_all();
    }
    result_ = std::move(result);
  });
}

EmbeddingCursor::~EmbeddingCursor() {
  Close();
  if (producer_.joinable()) producer_.join();
}

std::optional<std::vector<VertexId>> EmbeddingCursor::Next() {
  std::unique_lock<std::mutex> lock(channel_->mutex);
  channel_->can_consume.wait(lock, [&] {
    return !channel_->buffer.empty() || channel_->finished ||
           channel_->closed;
  });
  if (!channel_->buffer.empty()) {
    std::vector<VertexId> embedding = std::move(channel_->buffer.front());
    channel_->buffer.pop_front();
    channel_->can_produce.notify_one();
    return embedding;
  }
  return std::nullopt;
}

void EmbeddingCursor::Close() {
  std::lock_guard<std::mutex> lock(channel_->mutex);
  channel_->closed = true;
  channel_->can_produce.notify_all();
  channel_->can_consume.notify_all();
}

const MatchResult& EmbeddingCursor::Finish() {
  if (!joined_) {
    {
      std::lock_guard<std::mutex> lock(channel_->mutex);
      // Calling Finish() before exhaustion stops the search early (the
      // result is then marked limit_reached via the callback protocol).
      if (!channel_->finished) channel_->closed = true;
      channel_->can_produce.notify_all();
    }
    if (producer_.joinable()) producer_.join();
    joined_ = true;
  }
  return result_;
}

}  // namespace daf

#ifndef DAF_DAF_PARALLEL_H_
#define DAF_DAF_PARALLEL_H_

#include <cstdint>

#include "daf/engine.h"
#include "graph/graph.h"

namespace daf {

/// Extra counters reported by the parallel engine (Appendix A.4).
struct ParallelMatchResult : MatchResult {
  uint32_t threads_used = 0;
  /// Recursive calls performed by each thread (load-balance diagnostics).
  std::vector<uint64_t> per_thread_calls;
};

/// Multi-threaded DAF (Appendix A.4): the CS is built once and shared; the
/// iterations over the root's candidates (line 4 of Algorithm 2) are
/// distributed over `num_threads` workers through a work-stealing cursor.
/// Each worker owns its visited table and failing-set stack; a shared atomic
/// counter enforces the global embedding limit, so with a limit the set of
/// embeddings found may differ across runs (their count may overshoot the
/// limit by at most `num_threads - 1`, matching the paper's termination
/// rule), while without a limit the full embedding set is always produced.
///
/// `options.callback` and `options.progress` are invoked under a mutex when
/// set. When `options.profile` is set, each worker fills its own
/// obs::BacktrackProfile; the merged aggregate lands in `profile->backtrack`
/// and the per-worker breakdowns in `profile->thread_profiles` (the merge
/// equals the element-wise sum of the per-thread profiles, with peak depth
/// taken as the max).
///
/// `context` (optional) carries the arena for the shared flat CS/weight
/// arrays and one BacktrackScratch per worker; reusing it across calls
/// gives the same zero-steady-state-allocation behavior as DafMatch with a
/// warm context. Null runs in a private context.
ParallelMatchResult ParallelDafMatch(const Graph& query, const Graph& data,
                                     const MatchOptions& options,
                                     uint32_t num_threads,
                                     MatchContext* context = nullptr);

}  // namespace daf

#endif  // DAF_DAF_PARALLEL_H_

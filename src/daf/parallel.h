#ifndef DAF_DAF_PARALLEL_H_
#define DAF_DAF_PARALLEL_H_

#include <cstdint>

#include "daf/engine.h"
#include "graph/graph.h"

namespace daf {

/// Extra counters reported by the parallel engine.
struct ParallelMatchResult : MatchResult {
  uint32_t threads_used = 0;
  /// Recursive calls performed by each thread (load-balance diagnostics).
  std::vector<uint64_t> per_thread_calls;
  // Work-stealing scheduler counters (all zero under kRootCursor).
  uint64_t tasks_executed = 0;  // subtree tasks run (seed + stolen)
  uint64_t steals = 0;          // tasks taken from another worker
  uint64_t local_steals = 0;    // ... from a same-socket victim
  uint64_t remote_steals = 0;   // ... from a victim on another socket
  uint64_t donations = 0;       // candidate ranges split off for thieves
  double idle_ms = 0;           // summed time workers spent out of work
  /// Workers were pinned to cpus (MatchOptions::pin_workers on a
  /// multi-cpu host).
  bool pinned = false;
  /// max/mean per-thread recursive calls: 1.0 = perfect balance,
  /// `threads_used` = one worker did everything.
  double call_imbalance = 0;
};

/// Multi-threaded DAF: the CS is built once and shared; the search tree is
/// distributed over `num_threads` workers. Under the default
/// ParallelStrategy::kWorkStealing each worker runs subtree tasks (a partial
/// embedding prefix plus an unexplored candidate range) from per-worker
/// deques; when a worker goes idle, busy workers split the shallowest
/// still-splittable range of their own open frames and donate the upper
/// half, so a single skewed root subtree no longer serializes the run.
/// Under kRootCursor only the root's candidate iterations (line 4 of
/// Algorithm 2) are distributed through an atomic cursor, as in the paper's
/// Appendix A.4. Each worker owns its visited table and failing-set stack;
/// a shared atomic counter enforces the global embedding limit with
/// claim-before-count semantics, so the reported count equals exactly
/// min(limit, total embeddings) — identical to a single-threaded run — while
/// the *set* of embeddings found under a limit may differ across runs.
/// Without a limit the full embedding set is always produced.
///
/// `options.callback` and `options.progress` are invoked under a mutex when
/// set. When `options.profile` is set, each worker fills its own
/// obs::BacktrackProfile; the merged aggregate lands in `profile->backtrack`
/// and the per-worker breakdowns in `profile->thread_profiles` (the merge
/// equals the element-wise sum of the per-thread profiles, with peak depth
/// taken as the max).
///
/// `context` (optional) carries the arena for the shared flat CS/weight
/// arrays and one BacktrackScratch per worker; reusing it across calls
/// gives the same zero-steady-state-allocation behavior as DafMatch with a
/// warm context. Null runs in a private context.
ParallelMatchResult ParallelDafMatch(const Graph& query, const Graph& data,
                                     const MatchOptions& options,
                                     uint32_t num_threads,
                                     MatchContext* context = nullptr);

}  // namespace daf

#endif  // DAF_DAF_PARALLEL_H_

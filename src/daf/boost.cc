#include "daf/boost.h"

#include <algorithm>
#include <unordered_map>

namespace daf {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h * 0xff51afd7ed558ccdull;
}

// Sorted (neighbor, edge label) pairs of v, optionally excluding one
// neighbor. Edge labels matter: the DAF-Boost swap argument needs the
// edges incident to the two twins to be pairwise identical, labels
// included.
using LabeledNeighborhood = std::vector<std::pair<VertexId, Label>>;

LabeledNeighborhood NeighborhoodOf(const Graph& g, VertexId v,
                                   VertexId exclude) {
  LabeledNeighborhood out;
  auto neighbors = g.Neighbors(v);
  auto edge_labels = g.NeighborEdgeLabels(v);
  out.reserve(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i] != exclude) out.emplace_back(neighbors[i],
                                                  edge_labels[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Open-neighborhood signature: (label, sorted (N(v), edge labels)).
uint64_t OpenKey(const Graph& g, VertexId v) {
  uint64_t h = HashCombine(0x1234567, g.label(v));
  auto neighbors = g.Neighbors(v);
  auto edge_labels = g.NeighborEdgeLabels(v);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    h = HashCombine(h, neighbors[i]);
    h = HashCombine(h, edge_labels[i]);
  }
  return h;
}

// Closed-neighborhood bucket key: (label, sorted N[v] ids). Edge labels
// are deliberately left out here (the twin-pair edge maps to itself, which
// a plain hash cannot express); the exact check below handles them.
uint64_t ClosedKey(const Graph& g, VertexId v, std::vector<VertexId>* tmp) {
  tmp->assign(g.Neighbors(v).begin(), g.Neighbors(v).end());
  tmp->push_back(v);
  std::sort(tmp->begin(), tmp->end());
  uint64_t h = HashCombine(0x7654321, g.label(v));
  for (VertexId u : *tmp) h = HashCombine(h, u);
  return h;
}

// SE: same label and identical labeled open neighborhoods.
bool OpenEqual(const Graph& g, VertexId a, VertexId b) {
  if (g.label(a) != g.label(b) || g.degree(a) != g.degree(b)) return false;
  return NeighborhoodOf(g, a, kInvalidVertex) ==
         NeighborhoodOf(g, b, kInvalidVertex);
}

// QDE (adjacent twins): a ~ b and N(a)\{b} equals N(b)\{a}, edge labels
// included. (Closed-neighborhood equality forces adjacency: N[a] = N[b]
// with a ∈ N[a] requires a ∈ N[b].)
bool ClosedEqual(const Graph& g, VertexId a, VertexId b) {
  if (g.label(a) != g.label(b) || g.degree(a) != g.degree(b)) return false;
  if (!g.HasEdge(a, b)) return false;
  return NeighborhoodOf(g, a, b) == NeighborhoodOf(g, b, a);
}

class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

VertexEquivalence VertexEquivalence::Compute(const Graph& g) {
  const uint32_t n = g.NumVertices();
  UnionFind uf(n);
  std::vector<VertexId> ta;

  // SE: bucket by open-neighborhood hash, verify exactly within buckets.
  {
    std::unordered_map<uint64_t, std::vector<VertexId>> buckets;
    buckets.reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
      auto& bucket = buckets[OpenKey(g, v)];
      for (VertexId other : bucket) {
        if (OpenEqual(g, other, v)) {
          uf.Union(other, v);
          break;
        }
      }
      bucket.push_back(v);
    }
  }
  // QDE: bucket by closed-neighborhood hash, verify with the exact
  // edge-label-aware check.
  {
    std::unordered_map<uint64_t, std::vector<VertexId>> buckets;
    buckets.reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
      auto& bucket = buckets[ClosedKey(g, v, &ta)];
      for (VertexId other : bucket) {
        if (ClosedEqual(g, other, v)) {
          uf.Union(other, v);
          break;
        }
      }
      bucket.push_back(v);
    }
  }

  VertexEquivalence eq;
  eq.class_id_.assign(n, 0);
  std::unordered_map<uint32_t, uint32_t> root_to_class;
  root_to_class.reserve(n);
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t root = uf.Find(v);
    auto [it, inserted] = root_to_class.emplace(
        root, static_cast<uint32_t>(eq.class_size_.size()));
    if (inserted) eq.class_size_.push_back(0);
    eq.class_id_[v] = it->second;
    ++eq.class_size_[it->second];
  }
  return eq;
}

}  // namespace daf

#ifndef DAF_DAF_QUERY_DAG_H_
#define DAF_DAF_QUERY_DAG_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace daf {

/// The rooted query DAG q_D built from a query graph q with respect to a
/// data graph G (procedure BuildDAG, Section 3 of the paper).
///
/// Construction: the root is argmin_u |C_ini(u)| / deg_q(u); a BFS from the
/// root directs all edges from upper levels to lower levels; within a level,
/// vertices are grouped by label (groups ordered by ascending label
/// frequency in G, so infrequent labels come first), each group sorted by
/// descending degree, and same-level edges are directed by that order.
///
/// Extension beyond the paper: disconnected query graphs are supported by
/// building one rooted DAG per connected component (each component's root
/// chosen by the same rule); `Roots()` lists them and `root()` returns the
/// globally best one. Everything downstream (CS construction, the DAG
/// ordering, failing sets) works unchanged on the resulting multi-rooted
/// DAG, because none of it relies on there being a single source vertex.
///
/// Besides the DAG itself this object carries everything the rest of the
/// pipeline derives from it: a topological order, per-vertex ancestor
/// bitsets anc(u) (precomputed, as Section 6.1 prescribes, so failing-set
/// construction costs no graph traversals), dense edge ids for the CS edge
/// arrays, and each query vertex's label translated into the data graph's
/// label space.
class QueryDag {
 public:
  /// Builds q_D choosing the root by the paper's rule.
  static QueryDag Build(const Graph& query, const Graph& data);

  /// Builds q_D with an explicit root (used by tests to pin down examples).
  static QueryDag BuildWithRoot(const Graph& query, const Graph& data,
                                VertexId root);

  /// Number of query vertices.
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(children_.size());
  }

  /// Number of directed DAG edges (== |E(q)|).
  uint32_t NumEdges() const { return num_edges_; }

  /// The root vertex r (of the first component).
  VertexId root() const { return root_; }

  /// One root per connected component of q; Roots()[0] == root().
  const std::vector<VertexId>& Roots() const { return roots_; }

  /// Children of u (direct successors in q_D).
  const std::vector<VertexId>& Children(VertexId u) const {
    return children_[u];
  }

  /// Parents of u (direct predecessors in q_D).
  const std::vector<VertexId>& Parents(VertexId u) const {
    return parents_[u];
  }

  /// Dense id of the DAG edge (u -> Children(u)[child_pos]).
  uint32_t ChildEdgeId(VertexId u, uint32_t child_pos) const {
    return child_edge_base_[u] + child_pos;
  }

  /// Dense ids of the edges (p -> u), aligned with Parents(u).
  const std::vector<uint32_t>& ParentEdgeIds(VertexId u) const {
    return parent_edge_ids_[u];
  }

  /// The query edge label carried by DAG edge `edge_id` (0 when the query
  /// has no edge labels).
  Label EdgeLabelOf(uint32_t edge_id) const { return edge_label_of_[edge_id]; }

  /// True iff the query carries non-zero edge labels (matching must then
  /// also preserve them).
  bool HasEdgeLabels() const { return has_edge_labels_; }

  /// Vertices in a topological order of q_D (parents before children).
  const std::vector<VertexId>& TopologicalOrder() const { return topo_; }

  /// anc(u): ancestors of u in q_D including u itself, as a bitset over
  /// V(q). Used to build conflict-class and emptyset-class failing sets.
  const Bitset& Ancestors(VertexId u) const { return ancestors_[u]; }

  /// u's label translated into the data graph's dense label space
  /// (kNoSuchLabel if the label does not occur in the data graph).
  Label DataLabel(VertexId u) const { return data_labels_[u]; }

  /// |C_ini(u)|: data vertices with u's label and degree >= deg_q(u).
  uint32_t InitialCandidateCount(VertexId u) const {
    return initial_candidate_counts_[u];
  }

  /// BFS level of u in the construction (root = 0).
  uint32_t Level(VertexId u) const { return level_[u]; }

 private:
  VertexId root_ = kInvalidVertex;
  std::vector<VertexId> roots_;
  uint32_t num_edges_ = 0;
  std::vector<std::vector<VertexId>> children_;
  std::vector<std::vector<VertexId>> parents_;
  std::vector<uint32_t> child_edge_base_;
  std::vector<std::vector<uint32_t>> parent_edge_ids_;
  std::vector<Label> edge_label_of_;
  bool has_edge_labels_ = false;
  std::vector<VertexId> topo_;
  std::vector<Bitset> ancestors_;
  std::vector<Label> data_labels_;
  std::vector<uint32_t> initial_candidate_counts_;
  std::vector<uint32_t> level_;
};

}  // namespace daf

#endif  // DAF_DAF_QUERY_DAG_H_

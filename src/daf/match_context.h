#ifndef DAF_DAF_MATCH_CONTEXT_H_
#define DAF_DAF_MATCH_CONTEXT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/intersect.h"

namespace daf {

/// Reusable build-time scratch of CandidateSpace::Build: the flat staging
/// buffers the candidate sets and CS edges are assembled in before being
/// committed to their final (arena or self-owned) storage. All vectors keep
/// their capacity across queries, so a warm scratch makes CS construction
/// allocation-free in steady state.
struct CsBuildScratch {
  std::vector<VertexId> cand_data;    // per-u candidate segments, in u order
  std::vector<uint64_t> cand_offsets; // n+1 segment starts into cand_data
  std::vector<uint32_t> cand_size;    // live candidates per u after refinement
  std::vector<Bitset> valid;          // per-u membership bitmap over V(G)
  std::vector<uint32_t> cand_index;   // data vertex -> index within C(u)
  std::vector<uint64_t> edge_seg_base;  // per DAG edge: base into edge_offsets
  std::vector<uint64_t> edge_offsets;   // absolute starts into edge_targets
  std::vector<uint32_t> edge_targets;   // child candidate indices, all edges
  std::vector<std::pair<Label, uint32_t>> nlf_profile;
  std::vector<Label> neighbor_labels;
  std::vector<Label> required_edge_label;
  // Lazy per-data-vertex neighbor-label runs: (label, count) pairs, sorted
  // by label, computed at a vertex's first NLF check of a build and reused
  // by every later check (query vertices sharing a label re-check the same
  // data vertices against different profiles).
  std::vector<uint32_t> nlf_run_start;  // per data vertex; kNoRuns = unset
  std::vector<uint32_t> nlf_run_len;
  std::vector<Label> nlf_run_labels;
  std::vector<uint32_t> nlf_run_counts;
};

/// One candidate class that failed under DAF-Boost: every class member is
/// skipped and (with failing sets on) contributes this failing set.
struct FailedClass {
  uint32_t class_id;
  Bitset failing_set;  // only meaningful when failing sets are enabled
};

/// One open sibling loop of the search, tracked only under the
/// work-stealing engine: the extendable vertex being enumerated at `depth`,
/// the next unclaimed index into its candidate list, and the (donation-
/// shrinkable) end of the range. `donated` poisons the frame's failing-set
/// certificate: a frame that gave part of its range away never computed all
/// of its children, so it must not report the Case 2.2 union upward.
struct SearchFrame {
  VertexId u = kInvalidVertex;
  uint32_t depth = 0;
  uint32_t next = 0;  // next candidate index the owner will claim
  uint32_t end = 0;   // exclusive; donation moves it down
  bool donated = false;
};

/// Reusable per-worker state of one Backtracker: the mapping arrays, the
/// visited (mapped-by) table over V(G), the failing-set stacks, and the
/// extendable-candidate buffers. ResizeForQuery re-dimensions everything
/// while retaining capacity, so repeated searches of similarly sized
/// queries allocate nothing.
struct BacktrackScratch {
  std::vector<uint32_t> mapped_cand_idx;
  std::vector<VertexId> mapped_vertex;
  std::vector<uint32_t> num_mapped_parents;
  std::vector<std::vector<uint32_t>> extendable_cands;
  std::vector<uint64_t> extendable_weight;
  std::vector<bool> is_leaf;
  std::vector<VertexId> mapped_by;
  std::vector<VertexId> extendable_list;
  std::vector<Bitset> fs_stack;
  std::vector<bool> fs_empty;
  std::vector<Bitset> fs_union;
  std::vector<std::vector<FailedClass>> failed_classes;
  // Buffers of the k-way candidate intersection (ComputeExtendableCandidates
  // hands every parent adjacency list to IntersectKWay at once): the input
  // views plus the kernels' ping-pong/bitmap scratch. Both retain capacity
  // across runs.
  std::vector<KWayList> intersect_inputs;
  KWayScratch intersect_scratch;
  std::vector<VertexId> embedding_buffer;
  // Work-stealing state (unused by single-threaded / root-cursor runs):
  // the vertices currently mapped in mapping order (map_stack[d] is the
  // vertex mapped at depth d — donation slices its first `depth` entries
  // into a task prefix), and the stack of open sibling loops.
  std::vector<VertexId> map_stack;
  std::vector<SearchFrame> frames;

  /// Sizes every buffer for an n-vertex query over a data graph with
  /// `data_n` vertices and resets their contents to the pre-search state.
  void ResizeForQuery(uint32_t n, uint32_t data_n);
};

/// Memory and scratch state reused across match runs (the "warm engine"
/// contract): a bump arena holding each query's flat candidate-space and
/// weight arrays, the CS build scratch, and one BacktrackScratch per
/// worker thread.
///
///   daf::MatchContext context;
///   for (const Graph& query : queries) {
///     daf::MatchResult r = daf::DafMatch(query, data, options, &context);
///   }
///
/// The second and every later call on a warmed context performs zero arena
/// block allocations (observable via arena_stats().blocks_acquired and the
/// SearchProfile memory counters). A context may be reused across different
/// queries and data graphs — buffers grow to the high-water mark and stay
/// there (call arena_stats() / Trim() if that is a concern).
///
/// Thread safety: a context serves one match run at a time. Parallel runs
/// (ParallelDafMatch) share one context — it hands each worker its own
/// scratch — but two concurrent DafMatch calls must use two contexts.
class MatchContext {
 public:
  MatchContext() = default;
  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// Counters of the arena backing the flat per-query structures. After a
  /// run, `blocks_acquired` is the number of system allocations that run
  /// performed (0 once warm) and `bytes_used` the footprint of its CS +
  /// weight arrays.
  const ArenaStats& arena_stats() const { return arena_.stats(); }

  /// Releases all retained memory (arena blocks and scratch capacity); the
  /// next run re-warms from scratch.
  void Trim();

  /// Partial Trim: resets the arena epoch and drops retained arena blocks
  /// (largest first) until at most `retained_bytes` of capacity remain.
  /// Scratch buffers are kept — the ContextPool's footprint-shedding policy
  /// targets the arena because that is where the per-query flat arrays (the
  /// Figure 9 blow-up) live. Invalidates the previous run's CS/weights.
  void ShrinkTo(uint64_t retained_bytes);

  // --- Engine-facing surface (used by DafMatch / ParallelDafMatch /
  // CandidateSpace::Build; user code normally only constructs a context
  // and passes it around).

  /// The arena holding the current query's flat arrays. The engine resets
  /// it at the start of each run, invalidating the previous run's
  /// CandidateSpace and WeightArray.
  Arena& arena() { return arena_; }

  CsBuildScratch& cs_scratch() { return cs_scratch_; }

  /// Scratch of worker `thread` (grown on demand; call EnsureThreads
  /// before handing scratches to concurrent workers).
  BacktrackScratch& backtrack_scratch(uint32_t thread = 0);

  /// Pre-creates scratches 0..count-1 so concurrent workers never mutate
  /// the scratch vector itself.
  void EnsureThreads(uint32_t count);

 private:
  Arena arena_;
  CsBuildScratch cs_scratch_;
  std::vector<BacktrackScratch> backtrack_scratch_;
};

}  // namespace daf

#endif  // DAF_DAF_MATCH_CONTEXT_H_

#ifndef DAF_DAF_WEIGHTS_H_
#define DAF_DAF_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"

namespace daf {

/// The weight array W_u(v) of Section 5.2 driving the *path-size* adaptive
/// matching order.
///
/// W_u(v) upper-bounds the number of CS paths corresponding to the most
/// infrequent maximal tree-like path starting at u when u is mapped to v.
/// It is computed bottom-up over q_D: with c_1..c_k the children of u having
/// exactly one parent,
///   W_{u,c_i}(v) = Σ_{v' ∈ N^u_{c_i}(v)} W_{c_i}(v'),
///   W_u(v)       = min_i W_{u,c_i}(v),
/// and W_u(v) = 1 when u has no single-parent child. Sums saturate at
/// UINT64_MAX (the values are only compared, never reported).
class WeightArray {
 public:
  /// Computes W over the given CS.
  static WeightArray Compute(const QueryDag& dag, const CandidateSpace& cs);

  /// W_u(v) for candidate index `idx` of query vertex u.
  uint64_t Weight(VertexId u, uint32_t idx) const {
    return weights_[u][idx];
  }

 private:
  std::vector<std::vector<uint64_t>> weights_;
};

}  // namespace daf

#endif  // DAF_DAF_WEIGHTS_H_

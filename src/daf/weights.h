#ifndef DAF_DAF_WEIGHTS_H_
#define DAF_DAF_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"
#include "util/arena.h"

namespace daf {

/// The weight array W_u(v) of Section 5.2 driving the *path-size* adaptive
/// matching order.
///
/// W_u(v) upper-bounds the number of CS paths corresponding to the most
/// infrequent maximal tree-like path starting at u when u is mapped to v.
/// It is computed bottom-up over q_D: with c_1..c_k the children of u having
/// exactly one parent,
///   W_{u,c_i}(v) = Σ_{v' ∈ N^u_{c_i}(v)} W_{c_i}(v'),
///   W_u(v)       = min_i W_{u,c_i}(v),
/// and W_u(v) = 1 when u has no single-parent child. Sums saturate at
/// UINT64_MAX (the values are only compared, never reported).
///
/// Storage is one flat array indexed by the CS's candidate offsets
/// (CandidateSpace::CandidateOffsets), optionally living in the same bump
/// arena as the CS itself; an arena-backed WeightArray shares the CS's
/// lifetime (valid until the arena's next Reset).
class WeightArray {
 public:
  WeightArray() = default;

  /// Computes W over the given CS. With a non-null `arena` the flat array
  /// is arena-allocated (the MatchContext path); otherwise it is owned by
  /// the returned object. The CS must outlive the WeightArray either way
  /// (the candidate offsets are shared, not copied).
  static WeightArray Compute(const QueryDag& dag, const CandidateSpace& cs,
                             Arena* arena = nullptr);

  WeightArray(WeightArray&&) = default;
  WeightArray& operator=(WeightArray&&) = default;
  WeightArray(const WeightArray&) = delete;
  WeightArray& operator=(const WeightArray&) = delete;

  /// W_u(v) for candidate index `idx` of query vertex u.
  uint64_t Weight(VertexId u, uint32_t idx) const {
    return flat_[offsets_[u] + idx];
  }

 private:
  const uint64_t* flat_ = nullptr;     // one weight per CS candidate
  const uint64_t* offsets_ = nullptr;  // the CS's candidate offsets
  std::vector<uint64_t> own_flat_;     // backing store when no arena given
};

}  // namespace daf

#endif  // DAF_DAF_WEIGHTS_H_

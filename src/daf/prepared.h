#ifndef DAF_DAF_PREPARED_H_
#define DAF_DAF_PREPARED_H_

#include <cstdint>
#include <memory>

#include "daf/candidate_space.h"
#include "daf/engine.h"
#include "daf/parallel.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "graph/graph.h"

namespace daf {

/// The shareable, immutable prefix of the DAF pipeline for one (query, data
/// graph) pair: the rooted query DAG, the fully built CandidateSpace (self-
/// owned storage — no arena to outlive), and the path-size weight array.
/// All three are pure functions of (query, data, CS build options), so one
/// PreparedQuery may serve any number of concurrent read-only searches —
/// this is the artifact the service-level query cache stores and leases.
///
/// Build once with PrepareQuery, then run any number of searches with
/// DafMatchPrepared / ParallelDafMatchPrepared, each skipping BuildDAG, CS
/// construction, and the weight pass entirely.
struct PreparedQuery {
  /// The query graph the structures below were built for. Searches run
  /// against *this* graph; callers matching a relabeled isomorph must remap
  /// embeddings through their permutation.
  Graph query;
  QueryDag dag;
  CandidateSpace cs;
  /// Path-size order weights over `cs` (valid while `cs` lives; unused by
  /// kCandidateSize runs).
  WeightArray weights;
  /// True when some candidate set came out empty: the CS certifies the
  /// query negative and every search returns immediately (Appendix A.3).
  bool cs_certified_negative = false;
  /// Approximate heap footprint of the blob (CS arrays + weights + graph
  /// + DAG), for cache residency accounting.
  uint64_t resident_bytes = 0;
  /// The CS-shaping options fingerprint this blob was built under.
  int refinement_steps = 3;
  bool use_nlf_filter = true;
  bool use_mnd_filter = true;
  bool injective = true;
};

/// Outcome of PrepareQuery: either a prepared blob, or the stop cause that
/// interrupted the build (deadline / cancel / memory exhaustion — the
/// `prepared` pointer is then null and nothing was retained).
struct PrepareOutcome {
  std::shared_ptr<const PreparedQuery> prepared;
  StopCause interrupted = StopCause::kNone;
  bool ok = true;  // false => `error` (empty query, ...)
  std::string error;
};

/// Builds the shareable prefix once: BuildDAG + standalone CS construction
/// + weight array. Honors `options.cancel`, `options.time_limit_ms`, and
/// `options.memory_budget` through the engine's usual StopCondition, so a
/// cache-filling build is exactly as cancellable as a cold match; an
/// interrupted build returns no blob (never a half-built one). Only the
/// CS-shaping options (refinement_steps, nlf/mnd filters, injective) affect
/// the result; search-time options are applied per run.
PrepareOutcome PrepareQuery(const Graph& query, const Graph& data,
                            const MatchOptions& options);

/// Runs the DAF search against a prebuilt PreparedQuery, skipping all
/// preprocessing: semantically identical to DafMatch(prepared.query, data,
/// options, context) — same embedding set, same counters — with
/// preprocess_ms ~ 0. The prepared blob is only read, so any number of
/// concurrent calls may share one blob; each call still needs its own
/// `context` (or nullptr for a private one). `options` must agree with the
/// blob's CS fingerprint for the results to mean anything; the service's
/// cache keys on that fingerprint.
MatchResult DafMatchPrepared(const PreparedQuery& prepared, const Graph& data,
                             const MatchOptions& options,
                             MatchContext* context = nullptr);

/// Parallel counterpart of DafMatchPrepared: the work-stealing (or
/// root-cursor) engine over a shared prebuilt CS. Mirrors ParallelDafMatch
/// minus the preprocessing stages.
ParallelMatchResult ParallelDafMatchPrepared(const PreparedQuery& prepared,
                                             const Graph& data,
                                             const MatchOptions& options,
                                             uint32_t num_threads,
                                             MatchContext* context = nullptr);

}  // namespace daf

#endif  // DAF_DAF_PREPARED_H_

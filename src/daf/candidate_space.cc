#include "daf/candidate_space.h"

#include <algorithm>

#include "graph/query_extract.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace daf {

namespace {

// The neighborhood label frequency profile of a query vertex, in the data
// graph's label space: (label, count) pairs. Returns false if some neighbor
// label does not occur in the data graph (no candidate can then match).
// Both vectors are caller-provided scratch.
bool QueryNlfProfile(const Graph& query, const QueryDag& dag, VertexId u,
                     std::vector<Label>* neighbor_labels,
                     std::vector<std::pair<Label, uint32_t>>* profile) {
  profile->clear();
  neighbor_labels->clear();
  for (VertexId w : query.Neighbors(u)) {
    Label l = dag.DataLabel(w);
    if (l == kNoSuchLabel) return false;
    neighbor_labels->push_back(l);
  }
  std::sort(neighbor_labels->begin(), neighbor_labels->end());
  for (size_t i = 0; i < neighbor_labels->size();) {
    size_t j = i;
    while (j < neighbor_labels->size() &&
           (*neighbor_labels)[j] == (*neighbor_labels)[i]) {
      ++j;
    }
    profile->emplace_back((*neighbor_labels)[i],
                          static_cast<uint32_t>(j - i));
    i = j;
  }
  return true;
}

// Final-array storage: an arena allocation when `arena` is set, otherwise
// the CandidateSpace-owned vector (whose heap buffer is stable across
// moves of the owning object).
template <typename T>
T* AllocateFinal(size_t count, Arena* arena, std::vector<T>* own) {
  if (arena != nullptr) return arena->AllocateArray<T>(count);
  own->resize(count);
  return own->data();
}

// Transient budget charge for the build's staging buffers: `Update` samples
// the current capacity of the growing scratch vectors and charges the delta
// since the last sample; the destructor returns everything. The sampling
// points ride on the existing per-query-vertex stop polls, so a blow-up is
// noticed within one vertex's worth of growth.
class StagingCharge {
 public:
  explicit StagingCharge(MemoryBudget* budget) : budget_(budget) {}
  StagingCharge(const StagingCharge&) = delete;
  StagingCharge& operator=(const StagingCharge&) = delete;
  ~StagingCharge() {
    if (budget_ != nullptr && charged_ > 0) budget_->Uncharge(charged_);
  }

  void Update(const CsBuildScratch& s) {
    if (budget_ == nullptr) return;
    const uint64_t now =
        s.cand_data.capacity() * sizeof(VertexId) +
        s.edge_offsets.capacity() * sizeof(uint64_t) +
        s.edge_targets.capacity() * sizeof(uint32_t);
    if (now > charged_) {
      budget_->Charge(now - charged_);
      charged_ = now;
    }
  }

 private:
  MemoryBudget* budget_;
  uint64_t charged_ = 0;
};

}  // namespace

CandidateSpace CandidateSpace::Build(const Graph& query, const QueryDag& dag,
                                     const Graph& data,
                                     const Options& options) {
  CsBuildScratch scratch;
  return BuildImpl(query, dag, data, options, nullptr, &scratch);
}

CandidateSpace CandidateSpace::Build(const Graph& query, const QueryDag& dag,
                                     const Graph& data, const Options& options,
                                     Arena* arena, CsBuildScratch* scratch) {
  return BuildImpl(query, dag, data, options, arena, scratch);
}

CandidateSpace CandidateSpace::BuildImpl(const Graph& query,
                                         const QueryDag& dag,
                                         const Graph& data,
                                         const Options& options, Arena* arena,
                                         CsBuildScratch* scratch) {
  const int refinement_steps = options.refinement_steps;
  obs::CsProfile* prof = options.profile;
  if (prof != nullptr) prof->Reset();
  Stopwatch stage_timer;
  CandidateSpace cs;
  const uint32_t n = query.NumVertices();
  const uint32_t data_n = data.NumVertices();
  cs.num_vertices_ = n;

  // Early-exit support: the predicate is polled once per query vertex in
  // each O(n · data) loop below. When it fires, the build commits a
  // structurally valid *empty* CS (offsets exist, every set has size 0, no
  // edge storage) tagged with the cause; callers must test interrupted()
  // before reading anything else.
  const StopCondition* stop = options.stop;
  StagingCharge staging(options.budget);
  StopCause stop_cause = StopCause::kNone;
  auto stopped = [&]() {
    if (stop == nullptr || stop_cause != StopCause::kNone) {
      return stop_cause != StopCause::kNone;
    }
    stop_cause = stop->Check();
    return stop_cause != StopCause::kNone;
  };
  auto commit_interrupted = [&]() {
    cs.interrupt_cause_ = stop_cause;
    uint64_t* final_offsets =
        AllocateFinal<uint64_t>(n + 1, arena, &cs.own_cand_offsets_);
    std::fill(final_offsets, final_offsets + n + 1, uint64_t{0});
    cs.cand_offsets_ = final_offsets;
    cs.cand_data_ = nullptr;
    cs.num_edge_targets_ = 0;
  };

  // Candidate membership bitmaps, kept in sync with the candidate segments.
  if (scratch->valid.size() < n) scratch->valid.resize(n);
  for (uint32_t u = 0; u < n; ++u) scratch->valid[u].Resize(data_n);
  std::vector<Bitset>& valid = scratch->valid;

  // --- Initial candidate sets: label + degree + MND + NLF local filters,
  // staged as per-u segments of one flat buffer.
  // (The paper applies the local filters during the first q_D^{-1} pass;
  // applying them while seeding C_ini is equivalent and cheaper.)
  std::vector<VertexId>& cand_data = scratch->cand_data;
  std::vector<uint64_t>& cand_offsets = scratch->cand_offsets;
  cand_data.clear();
  cand_offsets.assign(n + 1, 0);
  std::vector<std::pair<Label, uint32_t>>& profile = scratch->nlf_profile;
  // Lazy per-data-vertex neighbor-label runs. Adjacency lists are sorted by
  // (label, id), so one O(deg) scan yields the (label, count) runs; every
  // later NLF check of the same vertex is then a two-pointer merge over two
  // short sorted arrays instead of per-label binary searches into the
  // adjacency array.
  constexpr uint32_t kNoRuns = static_cast<uint32_t>(-1);
  std::vector<uint32_t>& run_start = scratch->nlf_run_start;
  std::vector<uint32_t>& run_len = scratch->nlf_run_len;
  std::vector<Label>& run_labels = scratch->nlf_run_labels;
  std::vector<uint32_t>& run_counts = scratch->nlf_run_counts;
  if (options.use_nlf_filter) {
    run_start.assign(data_n, kNoRuns);
    run_len.resize(data_n);
    run_labels.clear();
    run_counts.clear();
  }
  for (uint32_t u = 0; u < n; ++u) {
    staging.Update(*scratch);
    if (stopped()) {
      commit_interrupted();
      return cs;
    }
    cand_offsets[u] = cand_data.size();
    Label dl = dag.DataLabel(u);
    if (dl == kNoSuchLabel) continue;
    profile.clear();
    if (options.use_nlf_filter &&
        !QueryNlfProfile(query, dag, u, &scratch->neighbor_labels, &profile)) {
      continue;  // some neighbor label cannot exist in the data graph
    }
    uint32_t max_nbr_deg = 0;
    for (VertexId w : query.Neighbors(u)) {
      max_nbr_deg = std::max(max_nbr_deg, query.degree(w));
    }
    for (VertexId v : data.VerticesWithLabel(dl)) {
      if (prof != nullptr) ++prof->seed_considered;
      if (options.injective && data.degree(v) < query.degree(u)) {
        if (prof != nullptr) ++prof->degree_rejected;
        continue;
      }
      if (options.injective && options.use_mnd_filter &&
          data.MaxNeighborDegree(v) < max_nbr_deg) {
        if (prof != nullptr) ++prof->mnd_rejected;
        continue;
      }
      bool nlf_ok = true;
      if (!profile.empty()) {
        uint32_t rs = run_start[v];
        if (rs == kNoRuns) {
          rs = static_cast<uint32_t>(run_labels.size());
          run_start[v] = rs;
          for (VertexId w : data.Neighbors(v)) {
            Label lw = data.label(w);
            if (run_labels.size() > rs && run_labels.back() == lw) {
              ++run_counts.back();
            } else {
              run_labels.push_back(lw);
              run_counts.push_back(1);
            }
          }
          run_len[v] = static_cast<uint32_t>(run_labels.size()) - rs;
        }
        const Label* rl = run_labels.data() + rs;
        const uint32_t* rc = run_counts.data() + rs;
        const uint32_t nruns = run_len[v];
        uint32_t ri = 0;
        for (const auto& [label, count] : profile) {
          while (ri < nruns && rl[ri] < label) ++ri;
          if (ri == nruns || rl[ri] != label ||
              rc[ri] < (options.injective ? count : 1)) {
            nlf_ok = false;
            break;
          }
        }
      }
      if (!nlf_ok) {
        if (prof != nullptr) ++prof->nlf_rejected;
        continue;
      }
      cand_data.push_back(v);
      valid[u].Set(v);
    }
  }
  cand_offsets[n] = cand_data.size();
  std::vector<uint32_t>& cand_size = scratch->cand_size;
  cand_size.assign(n, 0);
  for (uint32_t u = 0; u < n; ++u) {
    cand_size[u] = static_cast<uint32_t>(cand_offsets[u + 1] -
                                         cand_offsets[u]);
  }
  if (prof != nullptr) {
    prof->initial_candidates = cand_data.size();
    prof->seed_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }

  // --- DAG-graph DP refinement, Recurrence (1), alternating q_D^{-1}/q_D.
  // For q' = q_D^{-1}: children in q' are parents in q_D; the reverse
  // topological order of q' is the forward topological order of q_D.
  // Edge labels participate whenever either graph carries them: an
  // unlabeled query edge (label 0) then only matches label-0 data edges.
  // Removal compacts each vertex's segment in place (the segment start
  // never moves, only cand_size[u] shrinks).
  const bool check_edge_labels =
      dag.HasEdgeLabels() || data.HasNontrivialEdgeLabels();
  const std::vector<VertexId>& topo = dag.TopologicalOrder();
  std::vector<Label>& required_edge_label = scratch->required_edge_label;
  for (int step = 0; step < refinement_steps; ++step) {
    const bool use_reversed_dag = (step % 2 == 0);
    Stopwatch pass_timer;
    uint64_t removed = 0;
    for (uint32_t pos = 0; pos < n; ++pos) {
      if (stopped()) {
        commit_interrupted();
        return cs;
      }
      VertexId u = use_reversed_dag ? topo[pos] : topo[n - 1 - pos];
      const std::vector<VertexId>& dp_children =
          use_reversed_dag ? dag.Parents(u) : dag.Children(u);
      if (dp_children.empty()) continue;
      // Query edge labels toward each DP child (all zero when unlabeled).
      required_edge_label.assign(dp_children.size(), 0);
      if (dag.HasEdgeLabels()) {
        for (size_t c = 0; c < dp_children.size(); ++c) {
          required_edge_label[c] = query.EdgeLabelBetween(u, dp_children[c]);
        }
      }
      VertexId* cand = cand_data.data() + cand_offsets[u];
      uint32_t kept = 0;
      for (uint32_t i = 0; i < cand_size[u]; ++i) {
        VertexId v = cand[i];
        bool survives = true;
        for (size_t c = 0; c < dp_children.size(); ++c) {
          VertexId uc = dp_children[c];
          bool has_valid_neighbor = false;
          if (check_edge_labels) {
            Graph::NeighborSlice slice =
                data.NeighborsWithLabelAndEdges(v, dag.DataLabel(uc));
            for (size_t j = 0; j < slice.vertices.size(); ++j) {
              if (slice.edge_labels[j] == required_edge_label[c] &&
                  valid[uc].Test(slice.vertices[j])) {
                has_valid_neighbor = true;
                break;
              }
            }
          } else {
            for (VertexId vc :
                 data.NeighborsWithLabel(v, dag.DataLabel(uc))) {
              if (valid[uc].Test(vc)) {
                has_valid_neighbor = true;
                break;
              }
            }
          }
          if (!has_valid_neighbor) {
            survives = false;
            break;
          }
        }
        if (survives) {
          cand[kept++] = v;
        } else {
          valid[u].Clear(v);
          ++removed;
        }
      }
      cand_size[u] = kept;
    }
    if (removed > 0) ++cs.effective_refinements_;
    if (prof != nullptr) {
      prof->passes.push_back(obs::CsPassStats{static_cast<uint32_t>(step),
                                              use_reversed_dag, removed,
                                              pass_timer.ElapsedMs()});
    }
  }

  // --- Commit the surviving candidates to their final flat arrays.
  uint64_t total_candidates = 0;
  for (uint32_t u = 0; u < n; ++u) total_candidates += cand_size[u];
  uint64_t* final_offsets =
      AllocateFinal<uint64_t>(n + 1, arena, &cs.own_cand_offsets_);
  VertexId* final_cand = AllocateFinal<VertexId>(
      static_cast<size_t>(total_candidates), arena, &cs.own_cand_data_);
  uint64_t write = 0;
  for (uint32_t u = 0; u < n; ++u) {
    final_offsets[u] = write;
    const VertexId* seg = cand_data.data() + cand_offsets[u];
    std::copy(seg, seg + cand_size[u], final_cand + write);
    write += cand_size[u];
  }
  final_offsets[n] = write;
  cs.cand_offsets_ = final_offsets;
  cs.cand_data_ = final_cand;
  if (prof != nullptr) {
    prof->final_candidates = total_candidates;
    prof->refine_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }

  // --- Materialize the CS edges N^u_{uc}(v), staged as one flat target
  // buffer plus absolute offsets, then committed like the candidates.
  std::vector<uint64_t>& edge_seg_base = scratch->edge_seg_base;
  std::vector<uint64_t>& edge_offsets = scratch->edge_offsets;
  std::vector<uint32_t>& edge_targets = scratch->edge_targets;
  edge_seg_base.assign(dag.NumEdges(), 0);
  edge_offsets.clear();
  edge_targets.clear();
  std::vector<uint32_t>& cand_index = scratch->cand_index;
  cand_index.assign(data_n, 0);
  for (VertexId u : topo) {
    staging.Update(*scratch);
    if (stopped()) {
      commit_interrupted();
      return cs;
    }
    // Index map: data vertex -> candidate index within C(u).
    std::span<const VertexId> child_cand = cs.Candidates(u);
    for (uint32_t i = 0; i < child_cand.size(); ++i) {
      cand_index[child_cand[i]] = i;
    }
    Label child_label = dag.DataLabel(u);
    const std::vector<VertexId>& parents = dag.Parents(u);
    const std::vector<uint32_t>& edge_ids = dag.ParentEdgeIds(u);
    for (size_t pi = 0; pi < parents.size(); ++pi) {
      VertexId p = parents[pi];
      uint32_t edge_id = edge_ids[pi];
      edge_seg_base[edge_id] = edge_offsets.size();
      std::span<const VertexId> parent_cand = cs.Candidates(p);
      const Label required = dag.EdgeLabelOf(edge_id);
      for (uint32_t ip = 0; ip < parent_cand.size(); ++ip) {
        edge_offsets.push_back(edge_targets.size());
        if (check_edge_labels) {
          Graph::NeighborSlice slice =
              data.NeighborsWithLabelAndEdges(parent_cand[ip], child_label);
          for (size_t j = 0; j < slice.vertices.size(); ++j) {
            if (slice.edge_labels[j] == required &&
                valid[u].Test(slice.vertices[j])) {
              edge_targets.push_back(cand_index[slice.vertices[j]]);
            }
          }
        } else {
          for (VertexId vc :
               data.NeighborsWithLabel(parent_cand[ip], child_label)) {
            if (valid[u].Test(vc)) {
              edge_targets.push_back(cand_index[vc]);
            }
          }
        }
      }
      edge_offsets.push_back(edge_targets.size());
    }
  }
  uint64_t* final_seg_base = AllocateFinal<uint64_t>(
      edge_seg_base.size(), arena, &cs.own_edge_seg_base_);
  std::copy(edge_seg_base.begin(), edge_seg_base.end(), final_seg_base);
  uint64_t* final_edge_offsets = AllocateFinal<uint64_t>(
      edge_offsets.size(), arena, &cs.own_edge_offsets_);
  std::copy(edge_offsets.begin(), edge_offsets.end(), final_edge_offsets);
  uint32_t* final_targets = AllocateFinal<uint32_t>(
      edge_targets.size(), arena, &cs.own_edge_targets_);
  std::copy(edge_targets.begin(), edge_targets.end(), final_targets);
  cs.edge_seg_base_ = final_seg_base;
  cs.edge_offsets_ = final_edge_offsets;
  cs.edge_targets_ = final_targets;
  cs.num_edge_targets_ = edge_targets.size();
  if (prof != nullptr) {
    prof->edges_materialized = cs.TotalEdges();
    prof->edges_ms = stage_timer.ElapsedMs();
  }
  return cs;
}

}  // namespace daf

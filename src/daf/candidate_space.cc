#include "daf/candidate_space.h"

#include <algorithm>

#include "graph/query_extract.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace daf {

namespace {

// The neighborhood label frequency profile of a query vertex, in the data
// graph's label space: (label, count) pairs. Returns false if some neighbor
// label does not occur in the data graph (no candidate can then match).
bool QueryNlfProfile(const Graph& query, const QueryDag& dag, VertexId u,
                     std::vector<std::pair<Label, uint32_t>>* profile) {
  profile->clear();
  std::vector<Label> neighbor_labels;
  neighbor_labels.reserve(query.degree(u));
  for (VertexId w : query.Neighbors(u)) {
    Label l = dag.DataLabel(w);
    if (l == kNoSuchLabel) return false;
    neighbor_labels.push_back(l);
  }
  std::sort(neighbor_labels.begin(), neighbor_labels.end());
  for (size_t i = 0; i < neighbor_labels.size();) {
    size_t j = i;
    while (j < neighbor_labels.size() && neighbor_labels[j] ==
                                             neighbor_labels[i]) {
      ++j;
    }
    profile->emplace_back(neighbor_labels[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  return true;
}

}  // namespace

CandidateSpace CandidateSpace::Build(const Graph& query, const QueryDag& dag,
                                     const Graph& data,
                                     const Options& options) {
  const int refinement_steps = options.refinement_steps;
  obs::CsProfile* prof = options.profile;
  if (prof != nullptr) prof->Reset();
  Stopwatch stage_timer;
  CandidateSpace cs;
  const uint32_t n = query.NumVertices();
  const uint32_t data_n = data.NumVertices();
  cs.candidates_.assign(n, {});

  // Candidate membership bitmaps, kept in sync with cs.candidates_.
  std::vector<Bitset> valid(n, Bitset(data_n));

  // --- Initial candidate sets: label + degree + MND + NLF local filters.
  // (The paper applies the local filters during the first q_D^{-1} pass;
  // applying them while seeding C_ini is equivalent and cheaper.)
  std::vector<std::pair<Label, uint32_t>> profile;
  for (uint32_t u = 0; u < n; ++u) {
    Label dl = dag.DataLabel(u);
    if (dl == kNoSuchLabel) continue;
    profile.clear();
    if (options.use_nlf_filter && !QueryNlfProfile(query, dag, u, &profile)) {
      continue;  // some neighbor label cannot exist in the data graph
    }
    uint32_t max_nbr_deg = 0;
    for (VertexId w : query.Neighbors(u)) {
      max_nbr_deg = std::max(max_nbr_deg, query.degree(w));
    }
    for (VertexId v : data.VerticesWithLabel(dl)) {
      if (prof != nullptr) ++prof->seed_considered;
      if (options.injective && data.degree(v) < query.degree(u)) {
        if (prof != nullptr) ++prof->degree_rejected;
        continue;
      }
      if (options.injective && options.use_mnd_filter &&
          data.MaxNeighborDegree(v) < max_nbr_deg) {
        if (prof != nullptr) ++prof->mnd_rejected;
        continue;
      }
      bool nlf_ok = true;
      for (const auto& [label, count] : profile) {
        uint32_t needed = options.injective ? count : 1;
        if (data.NeighborLabelCount(v, label) < needed) {
          nlf_ok = false;
          break;
        }
      }
      if (!nlf_ok) {
        if (prof != nullptr) ++prof->nlf_rejected;
        continue;
      }
      cs.candidates_[u].push_back(v);
      valid[u].Set(v);
    }
  }
  if (prof != nullptr) {
    for (const auto& c : cs.candidates_) prof->initial_candidates += c.size();
    prof->seed_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }

  // --- DAG-graph DP refinement, Recurrence (1), alternating q_D^{-1}/q_D.
  // For q' = q_D^{-1}: children in q' are parents in q_D; the reverse
  // topological order of q' is the forward topological order of q_D.
  // Edge labels participate whenever either graph carries them: an
  // unlabeled query edge (label 0) then only matches label-0 data edges.
  const bool check_edge_labels =
      dag.HasEdgeLabels() || data.HasNontrivialEdgeLabels();
  const std::vector<VertexId>& topo = dag.TopologicalOrder();
  for (int step = 0; step < refinement_steps; ++step) {
    const bool use_reversed_dag = (step % 2 == 0);
    Stopwatch pass_timer;
    uint64_t removed = 0;
    for (uint32_t pos = 0; pos < n; ++pos) {
      VertexId u = use_reversed_dag ? topo[pos] : topo[n - 1 - pos];
      const std::vector<VertexId>& dp_children =
          use_reversed_dag ? dag.Parents(u) : dag.Children(u);
      if (dp_children.empty()) continue;
      // Query edge labels toward each DP child (all zero when unlabeled).
      std::vector<Label> required_edge_label(dp_children.size(), 0);
      if (dag.HasEdgeLabels()) {
        for (size_t c = 0; c < dp_children.size(); ++c) {
          required_edge_label[c] =
              query.EdgeLabelBetween(u, dp_children[c]);
        }
      }
      auto& cand = cs.candidates_[u];
      size_t kept = 0;
      for (size_t i = 0; i < cand.size(); ++i) {
        VertexId v = cand[i];
        bool survives = true;
        for (size_t c = 0; c < dp_children.size(); ++c) {
          VertexId uc = dp_children[c];
          bool has_valid_neighbor = false;
          if (check_edge_labels) {
            Graph::NeighborSlice slice =
                data.NeighborsWithLabelAndEdges(v, dag.DataLabel(uc));
            for (size_t j = 0; j < slice.vertices.size(); ++j) {
              if (slice.edge_labels[j] == required_edge_label[c] &&
                  valid[uc].Test(slice.vertices[j])) {
                has_valid_neighbor = true;
                break;
              }
            }
          } else {
            for (VertexId vc :
                 data.NeighborsWithLabel(v, dag.DataLabel(uc))) {
              if (valid[uc].Test(vc)) {
                has_valid_neighbor = true;
                break;
              }
            }
          }
          if (!has_valid_neighbor) {
            survives = false;
            break;
          }
        }
        if (survives) {
          cand[kept++] = v;
        } else {
          valid[u].Clear(v);
          ++removed;
        }
      }
      cand.resize(kept);
    }
    if (removed > 0) ++cs.effective_refinements_;
    if (prof != nullptr) {
      prof->passes.push_back(obs::CsPassStats{static_cast<uint32_t>(step),
                                              use_reversed_dag, removed,
                                              pass_timer.ElapsedMs()});
    }
  }
  if (prof != nullptr) {
    for (const auto& c : cs.candidates_) prof->final_candidates += c.size();
    prof->refine_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }

  // --- Materialize the CS edges N^u_{uc}(v) as candidate-index CSR arrays.
  cs.edge_offsets_.assign(dag.NumEdges(), {});
  cs.edge_targets_.assign(dag.NumEdges(), {});
  std::vector<uint32_t> cand_index(data_n, 0);
  for (VertexId u : topo) {
    // Index map: data vertex -> candidate index within C(u).
    const auto& child_cand = cs.candidates_[u];
    for (uint32_t i = 0; i < child_cand.size(); ++i) {
      cand_index[child_cand[i]] = i;
    }
    Label child_label = dag.DataLabel(u);
    const std::vector<VertexId>& parents = dag.Parents(u);
    const std::vector<uint32_t>& edge_ids = dag.ParentEdgeIds(u);
    for (size_t pi = 0; pi < parents.size(); ++pi) {
      VertexId p = parents[pi];
      uint32_t edge_id = edge_ids[pi];
      auto& offsets = cs.edge_offsets_[edge_id];
      auto& targets = cs.edge_targets_[edge_id];
      const auto& parent_cand = cs.candidates_[p];
      const Label required = dag.EdgeLabelOf(edge_id);
      offsets.assign(parent_cand.size() + 1, 0);
      for (uint32_t ip = 0; ip < parent_cand.size(); ++ip) {
        if (check_edge_labels) {
          Graph::NeighborSlice slice =
              data.NeighborsWithLabelAndEdges(parent_cand[ip], child_label);
          for (size_t j = 0; j < slice.vertices.size(); ++j) {
            if (slice.edge_labels[j] == required &&
                valid[u].Test(slice.vertices[j])) {
              targets.push_back(cand_index[slice.vertices[j]]);
            }
          }
        } else {
          for (VertexId vc :
               data.NeighborsWithLabel(parent_cand[ip], child_label)) {
            if (valid[u].Test(vc)) {
              targets.push_back(cand_index[vc]);
            }
          }
        }
        offsets[ip + 1] = targets.size();
      }
    }
  }
  if (prof != nullptr) {
    prof->edges_materialized = cs.TotalEdges();
    prof->edges_ms = stage_timer.ElapsedMs();
  }
  return cs;
}

uint64_t CandidateSpace::TotalCandidates() const {
  uint64_t total = 0;
  for (const auto& c : candidates_) total += c.size();
  return total;
}

uint64_t CandidateSpace::TotalEdges() const {
  uint64_t total = 0;
  for (const auto& t : edge_targets_) total += t.size();
  return total;
}

}  // namespace daf

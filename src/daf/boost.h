#ifndef DAF_DAF_BOOST_H_
#define DAF_DAF_BOOST_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace daf {

/// Data-vertex equivalence classes in the spirit of BoostIso [33], used by
/// DAF-Boost (Appendix A.5 — which, like the paper, exploits only the
/// *equivalence* relationships SE/QDE, not the containment ones).
///
/// Two data vertices are equivalent iff they carry the same label and
///   * SE  (non-adjacent twins): N(v) = N(v'), or
///   * QDE (adjacent twins):     N(v) \ {v'} = N(v') \ {v}
///     (equivalently, closed neighborhoods N[v] = N[v']).
///
/// Equivalent vertices are interchangeable in any embedding, so during
/// backtracking a candidate whose class already failed exhaustively can be
/// skipped: the two search subtrees are isomorphic under the swap v <-> v'.
class VertexEquivalence {
 public:
  /// Computes the equivalence classes of g.
  static VertexEquivalence Compute(const Graph& g);

  /// Class id of data vertex v (dense, in [0, NumClasses())).
  uint32_t ClassOf(VertexId v) const { return class_id_[v]; }

  /// Number of members of class c.
  uint32_t ClassSize(uint32_t c) const { return class_size_[c]; }

  /// Number of equivalence classes.
  uint32_t NumClasses() const {
    return static_cast<uint32_t>(class_size_.size());
  }

  /// Fraction of vertices removed by compressing each class to one
  /// representative: 1 - NumClasses()/|V| (the paper's "compression ratio").
  double CompressionRatio() const {
    return class_id_.empty()
               ? 0.0
               : 1.0 - static_cast<double>(NumClasses()) / class_id_.size();
  }

 private:
  std::vector<uint32_t> class_id_;
  std::vector<uint32_t> class_size_;
};

}  // namespace daf

#endif  // DAF_DAF_BOOST_H_

#include "daf/dynamic_cs.h"

#include <algorithm>
#include <cassert>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"

namespace daf::dyn {

DynamicCandidateSpace::DynamicCandidateSpace(const Graph& query,
                                             const DeltaGraph& dg,
                                             Options options)
    : query_(query), options_(options) {
  const uint32_t n = query_.NumVertices();
  required_label_.resize(n);
  nlf_.resize(n);
  adj_.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    required_label_[u] = query_.original_label(query_.label(u));
    auto elabels = query_.NeighborEdgeLabels(u);
    auto neighbors = query_.Neighbors(u);
    std::vector<std::pair<Label, uint32_t>> profile;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      adj_[u].push_back({neighbors[i], elabels[i]});
      profile.push_back(
          {query_.original_label(query_.label(neighbors[i])), 1});
    }
    std::sort(profile.begin(), profile.end());
    // Collapse duplicate labels into counts.
    std::vector<std::pair<Label, uint32_t>>& out = nlf_[u];
    for (const auto& [l, c] : profile) {
      if (!out.empty() && out.back().first == l) {
        out.back().second += c;
      } else {
        out.push_back({l, c});
      }
    }
  }
  cand_.resize(n);
  Rebuild(dg);
}

void DynamicCandidateSpace::Rebuild(const DeltaGraph& dg) {
  std::shared_ptr<const Graph> snap = dg.Materialize();
  QueryDag dag = QueryDag::Build(query_, *snap);
  CandidateSpace::Options cs_options;
  cs_options.refinement_steps = options_.refinement_steps;
  cs_options.use_nlf_filter = options_.use_nlf_filter;
  cs_options.use_mnd_filter = options_.use_mnd_filter;
  cs_options.injective = options_.injective;
  CandidateSpace cs = CandidateSpace::Build(query_, dag, *snap, cs_options);
  total_candidates_ = 0;
  for (VertexId u = 0; u < query_.NumVertices(); ++u) {
    cand_[u].Resize(dg.NumVertices());
    for (VertexId v : cs.Candidates(u)) {
      cand_[u].Set(v);
    }
    total_candidates_ += cs.NumCandidates(u);
  }
}

bool DynamicCandidateSpace::EmptySomewhere() const {
  for (const Bitset& b : cand_) {
    if (b.None()) return true;
  }
  return false;
}

bool DynamicCandidateSpace::LocalCheck(const DeltaGraph& dg, VertexId u,
                                       VertexId v) const {
  if (!dg.Alive(v)) return false;
  if (dg.OriginalLabel(v) != required_label_[u]) return false;
  if (options_.injective && dg.Degree(v) < query_.degree(u)) return false;
  if (options_.use_nlf_filter) {
    for (const auto& [l, c] : nlf_[u]) {
      const uint32_t need = options_.injective ? c : 1;
      if (dg.NeighborOriginalLabelCount(v, l) < need) return false;
    }
  }
  return true;
}

bool DynamicCandidateSpace::FullCheck(const DeltaGraph& dg, VertexId u,
                                      VertexId v) const {
  if (!LocalCheck(dg, u, v)) return false;
  // Arc consistency over *all* query neighbors (stronger than the paper's
  // directional recurrence per pass, still a necessary condition): every
  // neighbor w of u needs some candidate of w adjacent to v through an
  // edge carrying w's required edge label.
  for (const auto& [w, elabel] : adj_[u]) {
    bool supported = false;
    dg.ForEachNeighbor(v, [&](VertexId vn, Label el) {
      if (el == elabel && cand_[w].Test(vn)) {
        supported = true;
        return false;  // stop iteration
      }
      return true;
    });
    if (!supported) return false;
  }
  return true;
}

DynamicCandidateSpace::MaintainStats DynamicCandidateSpace::Apply(
    const DeltaGraph& dg, const NormalizedBatch& net) {
  MaintainStats stats;
  const uint32_t n = query_.NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    cand_[u].GrowTo(dg.NumVertices());
  }
  const uint64_t budget =
      std::max<uint64_t>(options_.rebuild_min_dirty_pairs,
                         static_cast<uint64_t>(
                             options_.rebuild_dirty_fraction *
                             static_cast<double>(total_candidates_ + 1)));

  using Pair = std::pair<VertexId, VertexId>;  // (query vertex, data vertex)
  std::vector<Pair> flooded;
  std::vector<Pair> stack;

  // --- Phase 1: addition flood. Seeds are the data vertices whose local
  // filter state or incident adjacency improved: inserted-edge endpoints
  // and newly added vertices. No support check — over-additions are pruned
  // by phase 2.
  auto try_add = [&](VertexId u, VertexId v) {
    if (cand_[u].Test(v)) return;
    if (!LocalCheck(dg, u, v)) return;
    cand_[u].Set(v);
    ++total_candidates_;
    flooded.push_back({u, v});
    stack.push_back({u, v});
    ++stats.dirty_pairs;
    ++stats.added_pairs;
  };
  auto seed_vertex = [&](VertexId v) {
    for (VertexId u = 0; u < n; ++u) try_add(u, v);
  };
  for (const EdgeUpdate& e : net.inserts) {
    seed_vertex(e.u);
    seed_vertex(e.v);
  }
  for (VertexId v : net.new_vertices) seed_vertex(v);
  while (!stack.empty()) {
    if (stats.dirty_pairs > budget) {
      const uint64_t before = total_candidates_;
      Rebuild(dg);
      stats.rebuilt = true;
      stats.added_pairs = 0;
      stats.removed_pairs =
          before > total_candidates_ ? before - total_candidates_ : 0;
      return stats;
    }
    auto [u, v] = stack.back();
    stack.pop_back();
    for (const auto& [w, elabel] : adj_[u]) {
      dg.ForEachNeighbor(v, [&](VertexId vn, Label el) {
        if (el == elabel) try_add(w, vn);
        return true;
      });
    }
  }

  // --- Phase 2: removal refinement to fixpoint. Seeds: pairs at removed
  // vertices (cleared directly), pairs at removed-edge endpoints (their
  // degree/NLF/support may have degraded), and every flooded pair (the
  // flood did not check support).
  std::vector<Pair> worklist = std::move(flooded);
  auto seed_check = [&](VertexId v) {
    if (v >= dg.NumVertices()) return;
    for (VertexId u = 0; u < n; ++u) {
      if (cand_[u].Test(v)) worklist.push_back({u, v});
    }
  };
  auto cascade_from = [&](VertexId v) {
    // A removal at data vertex v can only break support of pairs whose
    // data vertex is adjacent to v (plus local filters at v itself, which
    // seed_check covers for edge removals).
    dg.ForEachNeighbor(v, [&](VertexId vn, Label) {
      for (VertexId u = 0; u < n; ++u) {
        if (cand_[u].Test(vn)) worklist.push_back({u, vn});
      }
      return true;
    });
  };
  for (VertexId v : net.removed_vertices) {
    for (VertexId u = 0; u < n; ++u) {
      if (cand_[u].Test(v)) {
        cand_[u].Clear(v);
        --total_candidates_;
        ++stats.removed_pairs;
      }
    }
    // Its edges are gone too; the removed-edge seeds below cascade to the
    // former neighbors (vertex removals were expanded into edge removals
    // by Normalize).
  }
  for (const EdgeUpdate& e : net.removes) {
    seed_check(e.u);
    seed_check(e.v);
    // Support of a pair at u may have gone through the removed edge; the
    // seeds above re-check both endpoints. Pairs adjacent to the endpoints
    // are only affected if an endpoint pair is removed, which cascades.
  }
  while (!worklist.empty()) {
    auto [u, v] = worklist.back();
    worklist.pop_back();
    if (!cand_[u].Test(v)) continue;
    ++stats.dirty_pairs;
    if (stats.dirty_pairs > budget) {
      const uint64_t before_added = stats.added_pairs;
      Rebuild(dg);
      stats.rebuilt = true;
      stats.added_pairs = before_added;  // flood already counted; keep
      return stats;
    }
    if (FullCheck(dg, u, v)) continue;
    cand_[u].Clear(v);
    --total_candidates_;
    ++stats.removed_pairs;
    cascade_from(v);
  }
  return stats;
}

}  // namespace daf::dyn

#include "daf/prepared.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "daf/steal.h"
#include "util/timer.h"
#include "util/topo.h"

namespace daf {

namespace {

// Budget-ledger half of the engines' FillMemoryProfile: prepared runs never
// touch the context arena (the flat arrays live in the blob), so only the
// budget counters are meaningful.
void FillBudgetProfile(obs::SearchProfile* profile, const MemoryBudget* budget) {
  if (profile == nullptr || budget == nullptr) return;
  profile->memory.budget_limit_bytes = budget->limit();
  profile->memory.budget_used_bytes = budget->used();
  profile->memory.budget_peak_bytes = budget->peak_bytes();
  profile->memory.budget_rejections = budget->rejections();
  profile->memory.budget_exhausted = budget->exhausted();
}

// Approximate heap footprint of a finished blob, from the sizes the public
// surface exposes: the flat CS arrays dominate (Figure 9), with the weight
// array, the ancestor bitsets, and the graph itself as the other terms.
uint64_t EstimateResidentBytes(const PreparedQuery& pq) {
  const uint64_t n = pq.query.NumVertices();
  const uint64_t cands = pq.cs.TotalCandidates();
  const uint64_t cs_edges = pq.cs.TotalEdges();
  uint64_t bytes = 0;
  bytes += 32 * n + 16 * pq.query.NumEdges();        // graph CSR + labels
  bytes += n * ((n + 63) / 64) * 8 + 64 * n;         // DAG ancestors + lists
  bytes += 12 * cands;                               // cand_data + offsets
  bytes += 8 * cands;                                // weight array
  bytes += 4 * cs_edges + 8 * (cands + 2 * pq.dag.NumEdges());  // CS edges
  return bytes;
}

}  // namespace

PrepareOutcome PrepareQuery(const Graph& query, const Graph& data,
                            const MatchOptions& options) {
  PrepareOutcome outcome;
  if (query.NumVertices() == 0) {
    outcome.ok = false;
    outcome.error = "empty query graph";
    return outcome;
  }

  Deadline deadline(options.time_limit_ms);
  const StopCondition stop(options.time_limit_ms > 0 ? &deadline : nullptr,
                           options.cancel, options.memory_budget);

  auto pq = std::make_shared<PreparedQuery>();
  pq->query = query;
  pq->refinement_steps = options.refinement_steps;
  pq->use_nlf_filter = options.use_nlf_filter;
  pq->use_mnd_filter = options.use_mnd_filter;
  pq->injective = options.injective;
  pq->dag = QueryDag::Build(pq->query, data);

  CandidateSpace::Options cs_options;
  cs_options.refinement_steps = options.refinement_steps;
  cs_options.use_nlf_filter = options.use_nlf_filter;
  cs_options.use_mnd_filter = options.use_mnd_filter;
  cs_options.injective = options.injective;
  cs_options.stop = stop.armed() ? &stop : nullptr;
  cs_options.budget = options.memory_budget;
  // Standalone build: the blob owns its flat arrays (move-stable), so no
  // arena has to outlive the cache entry.
  pq->cs = CandidateSpace::Build(pq->query, pq->dag, data, cs_options);

  if (pq->cs.interrupted()) {
    outcome.interrupted = pq->cs.interrupt_cause();
    return outcome;
  }
  if (StopCause cause = stop.Check(); cause != StopCause::kNone) {
    // Exhaustion/cancel may latch between the CS build's sampled polls and
    // its return; an interrupted build never yields a blob.
    outcome.interrupted = cause;
    return outcome;
  }

  for (uint32_t u = 0; u < pq->query.NumVertices(); ++u) {
    if (pq->cs.NumCandidates(u) == 0) {
      pq->cs_certified_negative = true;
      break;
    }
  }
  if (!pq->cs_certified_negative) {
    // Weights are computed eagerly: the blob serves any matching order, and
    // the pass is cheap next to the CS build it rides behind. The pointers
    // into the CS's candidate offsets survive the shared_ptr's lifetime.
    pq->weights = WeightArray::Compute(pq->dag, pq->cs);
  }
  pq->resident_bytes = EstimateResidentBytes(*pq);
  outcome.prepared = std::move(pq);
  return outcome;
}

MatchResult DafMatchPrepared(const PreparedQuery& prepared, const Graph& data,
                             const MatchOptions& options,
                             MatchContext* context) {
  MatchResult result;
  result.cs_candidates = prepared.cs.TotalCandidates();
  result.cs_edges = prepared.cs.TotalEdges();
  obs::SearchProfile* profile = options.profile;
  if (profile != nullptr) profile->Reset();
  MemoryBudget* budget = options.memory_budget;

  if (prepared.cs_certified_negative) {
    // The blob carries the Appendix A.3 negativity certificate; it was
    // established by an uninterrupted build, so it stays valid no matter
    // what this run's budget does.
    result.cs_certified_negative = true;
    FillBudgetProfile(profile, budget);
    return result;
  }

  Deadline deadline(options.time_limit_ms);
  const StopCondition stop(options.time_limit_ms > 0 ? &deadline : nullptr,
                           options.cancel, budget);
  if (StopCause cause = stop.Check(); cause != StopCause::kNone) {
    result.timed_out = cause == StopCause::kDeadline;
    result.cancelled = cause == StopCause::kCancel;
    result.resource_exhausted = cause == StopCause::kMemoryExhausted;
    FillBudgetProfile(profile, budget);
    return result;
  }

  MatchContext local_context;
  if (context == nullptr) context = &local_context;
  // The context arena is deliberately untouched: the CS and weights live in
  // the shared blob, so a cache-hit run neither resets nor grows the arena.

  Stopwatch search_timer;
  Backtracker backtracker(
      prepared.query, prepared.dag, prepared.cs,
      options.order == MatchOrder::kPathSize ? &prepared.weights : nullptr,
      data.NumVertices(), &context->backtrack_scratch(0));
  BacktrackOptions bt;
  bt.order = options.order;
  bt.use_failing_sets = options.use_failing_sets;
  bt.leaf_decomposition = options.leaf_decomposition;
  bt.limit = options.limit;
  bt.injective = options.injective;
  bt.deadline = options.time_limit_ms > 0 ? &deadline : nullptr;
  bt.cancel = options.cancel;
  bt.budget = budget;
  bt.equivalence = options.equivalence;
  bt.callback = options.callback;
  bt.profile = profile != nullptr ? &profile->backtrack : nullptr;
  bt.progress = options.progress;
  bt.progress_interval_ms = options.progress_interval_ms;
  BacktrackStats stats = backtracker.Run(bt);
  result.search_ms = search_timer.ElapsedMs();
  if (profile != nullptr) profile->search_ms = result.search_ms;
  FillBudgetProfile(profile, budget);

  result.embeddings = stats.embeddings;
  result.recursive_calls = stats.recursive_calls;
  result.limit_reached = stats.limit_reached || stats.callback_stopped;
  result.timed_out = stats.timed_out;
  result.cancelled = stats.cancelled;
  result.resource_exhausted = stats.resource_exhausted;
  if (budget != nullptr && budget->exhausted()) {
    result.resource_exhausted = true;
  }
  return result;
}

ParallelMatchResult ParallelDafMatchPrepared(const PreparedQuery& prepared,
                                             const Graph& data,
                                             const MatchOptions& options,
                                             uint32_t num_threads,
                                             MatchContext* context) {
  ParallelMatchResult result;
  if (num_threads == 0) num_threads = 1;
  result.cs_candidates = prepared.cs.TotalCandidates();
  result.cs_edges = prepared.cs.TotalEdges();
  MemoryBudget* budget = options.memory_budget;
  obs::SearchProfile* profile = options.profile;
  if (profile != nullptr) {
    profile->Reset();
    profile->threads = num_threads;
  }

  if (prepared.cs_certified_negative) {
    result.cs_certified_negative = true;
    FillBudgetProfile(profile, budget);
    return result;
  }

  Deadline deadline(options.time_limit_ms);
  const StopCondition stop(options.time_limit_ms > 0 ? &deadline : nullptr,
                           options.cancel, budget);
  if (StopCause cause = stop.Check(); cause != StopCause::kNone) {
    result.timed_out = cause == StopCause::kDeadline;
    result.cancelled = cause == StopCause::kCancel;
    result.resource_exhausted = cause == StopCause::kMemoryExhausted;
    FillBudgetProfile(profile, budget);
    return result;
  }

  MatchContext local_context;
  if (context == nullptr) context = &local_context;
  const bool path_order = options.order == MatchOrder::kPathSize;

  Stopwatch search_timer;
  std::atomic<uint64_t> shared_count{0};
  std::atomic<uint32_t> root_cursor{0};
  const bool stealing =
      options.parallel_strategy == ParallelStrategy::kWorkStealing &&
      num_threads > 1;
  const PinPlan pin_plan =
      MakePinPlan(HwTopology::Get(), num_threads, options.pin_workers);
  result.pinned = pin_plan.active;
  std::unique_ptr<StealScheduler> scheduler;
  if (stealing) {
    scheduler = std::make_unique<StealScheduler>(
        num_threads, options.split_threshold, pin_plan.socket);
    scheduler->Seed(SubtreeTask{});
  }
  std::mutex callback_mutex;

  EmbeddingCallback guarded_callback;
  if (options.callback) {
    guarded_callback = [&](std::span<const VertexId> embedding) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      return options.callback(embedding);
    };
  }
  obs::ProgressFn guarded_progress;
  if (options.progress) {
    guarded_progress = [&](const obs::ProgressSnapshot& snapshot) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      options.progress(snapshot);
    };
  }

  std::vector<obs::BacktrackProfile> thread_profiles(
      profile != nullptr ? num_threads : 0);
  std::vector<BacktrackStats> stats(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  context->EnsureThreads(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      if (pin_plan.active) PinCurrentThreadToCpu(pin_plan.cpu[t]);
      Backtracker backtracker(prepared.query, prepared.dag, prepared.cs,
                              path_order ? &prepared.weights : nullptr,
                              data.NumVertices(),
                              &context->backtrack_scratch(t));
      BacktrackOptions bt;
      bt.order = options.order;
      bt.use_failing_sets = options.use_failing_sets;
      bt.leaf_decomposition = options.leaf_decomposition;
      bt.limit = options.limit;
      bt.injective = options.injective;
      bt.deadline = options.time_limit_ms > 0 ? &deadline : nullptr;
      bt.cancel = options.cancel;
      bt.budget = budget;
      bt.shared_count = &shared_count;
      bt.equivalence = options.equivalence;
      bt.callback = guarded_callback;
      bt.profile = profile != nullptr ? &thread_profiles[t] : nullptr;
      bt.progress = guarded_progress;
      bt.progress_interval_ms = options.progress_interval_ms;
      bt.thread_id = t;
      if (stealing) {
        bt.scheduler = scheduler.get();
        bt.split_threshold = options.split_threshold;
        stats[t] = backtracker.RunWorker(bt);
      } else {
        bt.root_cursor = &root_cursor;
        stats[t] = backtracker.Run(bt);
      }
    });
  }
  for (auto& w : workers) w.join();
  result.search_ms = search_timer.ElapsedMs();

  result.threads_used = num_threads;
  result.per_thread_calls.resize(num_threads);
  uint64_t max_calls = 0;
  for (uint32_t t = 0; t < num_threads; ++t) {
    result.embeddings += stats[t].embeddings;
    result.recursive_calls += stats[t].recursive_calls;
    result.per_thread_calls[t] = stats[t].recursive_calls;
    max_calls = std::max(max_calls, stats[t].recursive_calls);
    result.limit_reached |= stats[t].limit_reached ||
                            stats[t].callback_stopped;
    result.timed_out |= stats[t].timed_out;
    result.cancelled |= stats[t].cancelled;
    result.resource_exhausted |= stats[t].resource_exhausted;
  }
  if (budget != nullptr && budget->exhausted()) {
    result.resource_exhausted = true;
  }
  if (result.recursive_calls > 0) {
    result.call_imbalance = static_cast<double>(max_calls) * num_threads /
                            static_cast<double>(result.recursive_calls);
  }
  std::vector<uint64_t> per_thread_steals(num_threads, 0);
  if (scheduler != nullptr) {
    for (uint32_t t = 0; t < num_threads; ++t) {
      const StealWorkerStats& ws = scheduler->worker_stats(t);
      result.tasks_executed += ws.tasks_executed;
      result.steals += ws.steals;
      result.local_steals += ws.local_steals;
      result.remote_steals += ws.remote_steals;
      result.donations += ws.donations;
      result.idle_ms += ws.idle_ms;
      per_thread_steals[t] = ws.steals;
    }
  }
  if (profile != nullptr) {
    profile->search_ms = result.search_ms;
    for (const obs::BacktrackProfile& tp : thread_profiles) {
      profile->backtrack.MergeFrom(tp);
    }
    profile->thread_profiles = std::move(thread_profiles);
    profile->parallel.tasks_executed = result.tasks_executed;
    profile->parallel.steals = result.steals;
    profile->parallel.local_steals = result.local_steals;
    profile->parallel.remote_steals = result.remote_steals;
    profile->parallel.donations = result.donations;
    profile->parallel.idle_ms = result.idle_ms;
    profile->parallel.call_imbalance = result.call_imbalance;
    profile->parallel.pinned = result.pinned;
    profile->parallel.per_thread_calls = result.per_thread_calls;
    profile->parallel.per_thread_steals = std::move(per_thread_steals);
  }
  FillBudgetProfile(profile, budget);
  return result;
}

}  // namespace daf

#ifndef DAF_DAF_STEAL_H_
#define DAF_DAF_STEAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace daf {

/// One splittable unit of parallel search: a partial-embedding prefix (the
/// (query vertex, candidate index) pairs mapped above the split depth, in
/// mapping order) plus an unexplored range of the split vertex's extendable
/// candidates. The executor replays the prefix through Map() — which
/// deterministically rebuilds the extendable-candidate lists — and then
/// enumerates indices [begin, end) of extendable_cands[u].
///
/// The seed task of a run leaves `u` invalid with an empty prefix: the
/// executor then selects the first extendable vertex itself and owns its
/// full candidate range.
struct SubtreeTask {
  std::vector<std::pair<VertexId, uint32_t>> prefix;
  VertexId u = kInvalidVertex;  // split vertex; invalid = seed task
  uint32_t begin = 0;           // candidate index range into C_M(u)
  uint32_t end = 0;
};

/// Per-worker scheduler counters (diagnostics; stable once workers joined).
struct StealWorkerStats {
  uint64_t tasks_executed = 0;  // tasks this worker ran (own + stolen)
  uint64_t steals = 0;          // tasks taken from another worker's deque
  uint64_t local_steals = 0;    // ... from a victim on the thief's socket
  uint64_t remote_steals = 0;   // ... from a victim on another socket
  uint64_t donations = 0;       // ranges this worker split off and published
  double idle_ms = 0;           // time spent waiting for work
};

/// Work distribution for the parallel backtracker: each worker owns a deque
/// of SubtreeTasks. A worker donates (pushes to its own deque) only while
/// some other worker is hungry — WantsWork() is a pair of relaxed atomic
/// loads, cheap enough for the search's inner loop — and donates from its
/// *shallowest* splittable frame, so published ranges are the largest
/// pending pieces of its subtree. Idle workers first drain their own deque
/// (newest first), then sweep the other deques oldest-first, stealing the
/// shallowest pending range of the first victim that has one.
///
/// GetTask blocks until a task is available, every worker is idle with all
/// deques empty (run complete), or a stop is requested; the last worker to
/// go idle detects termination and wakes the rest. RequestStop() makes all
/// current and future GetTask calls return nullopt promptly — the limit /
/// deadline / cancel path: abandoned tasks are simply never executed, which
/// is sound because a stopped run reports itself incomplete.
class StealScheduler {
 public:
  /// `split_threshold` is the minimum number of unclaimed sibling
  /// candidates a frame must have to be splittable; 1 donates maximally
  /// eagerly (every pending candidate is up for grabs — the forced-steal
  /// stress configuration). `worker_sockets` (one home-socket id per
  /// worker, e.g. PinPlan::socket) makes the steal sweep locality-aware:
  /// each thief visits same-socket victims in ring order before any remote
  /// one. Empty or mis-sized vectors mean "one socket" — every victim is
  /// local and the sweep is the plain ring.
  StealScheduler(uint32_t num_workers, uint32_t split_threshold,
                 std::vector<uint32_t> worker_sockets = {});

  StealScheduler(const StealScheduler&) = delete;
  StealScheduler& operator=(const StealScheduler&) = delete;

  /// Enqueues the initial task (worker 0's deque). Call before workers run.
  void Seed(SubtreeTask task);

  /// True while some worker is hungry (more workers idle than tasks
  /// pending). Donation sites poll this before paying for a split.
  bool WantsWork() const {
    return idle_.load(std::memory_order_relaxed) >
           pending_.load(std::memory_order_relaxed);
  }

  /// Publishes a split-off range to `worker`'s own deque (newest end).
  void Donate(uint32_t worker, SubtreeTask task);

  /// Next task for `worker`: own deque first (newest-first), then a steal
  /// sweep over the other workers (oldest-first = shallowest range), else
  /// blocks. Returns nullopt when the run is complete or stopped.
  std::optional<SubtreeTask> GetTask(uint32_t worker);

  /// Requests global termination (limit reached, deadline, cancel).
  void RequestStop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  uint32_t split_threshold() const { return split_threshold_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(slots_.size()); }

  /// Stable after every worker returned from its final GetTask.
  const StealWorkerStats& worker_stats(uint32_t worker) const {
    return slots_[worker].stats;
  }

  /// The victim sweep order of one thief (exposed for tests): same-socket
  /// victims in ring order, then remote ones in ring order.
  const std::vector<uint32_t>& steal_order(uint32_t thief) const {
    return steal_order_[thief];
  }

 private:
  struct WorkerSlot {
    std::mutex mutex;
    std::deque<SubtreeTask> deque;
    StealWorkerStats stats;
  };

  bool TryPopOwn(uint32_t worker, SubtreeTask* out);
  bool TrySteal(uint32_t thief, SubtreeTask* out);

  std::vector<WorkerSlot> slots_;
  const uint32_t split_threshold_;
  // steal_order_[t] = victims of thief t; the first num_local_[t] entries
  // share t's socket.
  std::vector<std::vector<uint32_t>> steal_order_;
  std::vector<uint32_t> num_local_;
  std::atomic<uint32_t> pending_{0};  // tasks sitting in some deque
  std::atomic<uint32_t> idle_{0};     // workers blocked in GetTask
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  bool done_ = false;  // all workers idle with no pending tasks
};

}  // namespace daf

#endif  // DAF_DAF_STEAL_H_

#include "daf/backtrack.h"

#include <algorithm>

#include "daf/steal.h"
#include "graph/graph.h"
#include "util/fault_inject.h"
#include "util/intersect.h"

namespace daf {

Backtracker::Backtracker(const Graph& query, const QueryDag& dag,
                         const CandidateSpace& cs, const WeightArray* weights,
                         uint32_t data_num_vertices, BacktrackScratch* scratch)
    : query_(query),
      dag_(dag),
      cs_(cs),
      weights_(weights),
      n_(query.NumVertices()),
      s_(scratch != nullptr ? scratch : &inline_scratch_),
      mapped_cand_idx_(s_->mapped_cand_idx),
      mapped_vertex_(s_->mapped_vertex),
      num_mapped_parents_(s_->num_mapped_parents),
      extendable_cands_(s_->extendable_cands),
      extendable_weight_(s_->extendable_weight),
      is_leaf_(s_->is_leaf),
      mapped_by_(s_->mapped_by),
      extendable_list_(s_->extendable_list),
      fs_stack_(s_->fs_stack),
      fs_empty_(s_->fs_empty),
      fs_union_(s_->fs_union),
      failed_classes_(s_->failed_classes),
      intersect_inputs_(s_->intersect_inputs),
      intersect_scratch_(s_->intersect_scratch),
      embedding_buffer_(s_->embedding_buffer),
      map_stack_(s_->map_stack),
      frames_(s_->frames) {
  s_->ResizeForQuery(n_, data_num_vertices);
  for (uint32_t u = 0; u < n_; ++u) is_leaf_[u] = query.degree(u) <= 1;
}

void Backtracker::InitRun(const BacktrackOptions& options) {
  options_ = options;
  stats_ = BacktrackStats{};
  stop_ = false;
  scheduler_ = options.scheduler;
  stop_condition_ =
      StopCondition(options.deadline, options.cancel, options.budget);
  stop_armed_ = stop_condition_.armed() ||
                static_cast<bool>(options.progress) || scheduler_ != nullptr ||
                (options.shared_count != nullptr && options.limit != 0);
  deadline_check_countdown_ = 0;
  profile_ = options.profile;
  intersect_stats_ = IntersectStats{};
  if (profile_ != nullptr) {
    profile_->Reset();
    // Depths 0..n_ inclusive: depth n_ holds the embedding-class leaves.
    profile_->depth_histogram.assign(n_ + 1, 0);
  }
  if (options_.progress) {
    run_timer_.Restart();
    next_progress_ms_ = options_.progress_interval_ms;
  }
  std::fill(mapped_cand_idx_.begin(), mapped_cand_idx_.end(), kNotMapped);
  std::fill(num_mapped_parents_.begin(), num_mapped_parents_.end(), 0u);
  map_stack_.clear();
  frames_.clear();
}

void Backtracker::SeedRoots() {
  // A single-leaf query (one vertex, or one edge where everything is a
  // leaf) still needs a selectable vertex, so leaf deferral is a preference,
  // not a filter (see SelectExtendable).

  // Seed every component root as extendable: C_M(r) = C(r). (Connected
  // queries have exactly one root; disconnected ones get one per
  // component.)
  extendable_list_.clear();
  for (VertexId root : dag_.Roots()) {
    auto& root_cands = extendable_cands_[root];
    root_cands.resize(cs_.NumCandidates(root));
    for (uint32_t i = 0; i < root_cands.size(); ++i) root_cands[i] = i;
    if (options_.order == MatchOrder::kPathSize) {
      uint64_t w = 0;
      for (uint32_t i = 0; i < root_cands.size(); ++i) {
        w += weights_->Weight(root, i);
      }
      extendable_weight_[root] = w;
    } else {
      extendable_weight_[root] = root_cands.size();
    }
    extendable_list_.push_back(root);
  }
}

BacktrackStats Backtracker::Run(const BacktrackOptions& options) {
  InitRun(options);
  SeedRoots();
  Recurse(0);
  FlushIntersectStats();
  return stats_;
}

BacktrackStats Backtracker::RunWorker(const BacktrackOptions& options) {
  InitRun(options);
  // Roots are seeded once per worker: task execution rebuilds the mapped
  // state around them but never disturbs the root candidate lists.
  SeedRoots();
  while (!stop_) {
    std::optional<SubtreeTask> task = scheduler_->GetTask(options_.thread_id);
    if (!task.has_value()) break;
    ExecuteTask(*task);
  }
  // Wake the other workers promptly when this one hit the limit, the
  // deadline, a cancel request, or a consumer stop.
  if (stop_) scheduler_->RequestStop();
  FlushIntersectStats();
  return stats_;
}

void Backtracker::FlushIntersectStats() {
  if (profile_ == nullptr) return;
  profile_->intersect_merge += intersect_stats_.merge;
  profile_->intersect_gallop += intersect_stats_.gallop;
  profile_->intersect_simd += intersect_stats_.simd;
  profile_->intersect_bitmap += intersect_stats_.bitmap;
}

void Backtracker::ExecuteTask(const SubtreeTask& task) {
  for (const auto& [u, cand_idx] : task.prefix) Map(u, cand_idx);
  const uint32_t depth = static_cast<uint32_t>(task.prefix.size());
  VertexId u = task.u;
  uint32_t begin = task.begin;
  uint32_t end = task.end;
  if (u == kInvalidVertex) {
    // Seed task: own the whole range of the first extendable vertex. This
    // is the one search-tree node no donor has counted yet.
    ++stats_.recursive_calls;
    if (profile_ != nullptr) CountNode(depth);
    u = SelectExtendable();
    begin = 0;
    end = static_cast<uint32_t>(extendable_cands_[u].size());
  }
  if (end > begin) EnumerateCandidates(u, depth, begin, end);
  for (size_t i = task.prefix.size(); i-- > 0;) Unmap(task.prefix[i].first);
}

void Backtracker::TryDonate() {
  // Simulated allocation failure while packaging a donation: the split is
  // abandoned and this worker stops as resource-exhausted. Its open frames
  // unwind normally, so partial counts stay valid.
  if (FAULT_POINT(steal_donate)) {
    stats_.resource_exhausted = true;
    stop_ = true;
    return;
  }
  const uint32_t threshold = std::max(options_.split_threshold, 1u);
  for (SearchFrame& frame : frames_) {
    const uint32_t remaining = frame.end - frame.next;
    if (remaining < threshold) continue;
    // Keep the lower half of the unclaimed range, donate the upper half
    // (at least one candidate). The donated subtree re-derives its
    // extendable candidates by replaying the prefix, so the task only
    // carries the mapping pairs and the index range.
    const uint32_t mid = frame.next + remaining / 2;
    SubtreeTask task;
    task.u = frame.u;
    task.begin = mid;
    task.end = frame.end;
    task.prefix.reserve(frame.depth);
    for (uint32_t d = 0; d < frame.depth; ++d) {
      const VertexId v = map_stack_[d];
      task.prefix.emplace_back(v, mapped_cand_idx_[v]);
    }
    frame.end = mid;
    frame.donated = true;
    scheduler_->Donate(options_.thread_id, std::move(task));
    return;  // one donation per checkpoint; shallowest frame wins
  }
}

bool Backtracker::ShouldStop() {
  if (stop_) return true;
  if (stop_armed_ && deadline_check_countdown_-- == 0) {
    deadline_check_countdown_ = 4096;
    switch (stop_condition_.Check()) {
      case StopCause::kDeadline:
        stats_.timed_out = true;
        stop_ = true;
        return true;
      case StopCause::kCancel:
        stats_.cancelled = true;
        stop_ = true;
        return true;
      case StopCause::kMemoryExhausted:
        stats_.resource_exhausted = true;
        stop_ = true;
        return true;
      case StopCause::kNone:
        break;
    }
    if (scheduler_ != nullptr && scheduler_->stop_requested()) {
      // Another worker hit a terminal condition; its stats carry the cause.
      stop_ = true;
      return true;
    }
    if (options_.shared_count != nullptr && options_.limit != 0 &&
        options_.shared_count->load(std::memory_order_relaxed) >=
            options_.limit) {
      // The shared limit filled up while this worker searched a barren
      // region; stop instead of finishing a range that can contribute
      // nothing countable.
      stats_.limit_reached = true;
      stop_ = true;
      return true;
    }
    if (options_.progress) ReportProgress();
  }
  return false;
}

void Backtracker::ReportProgress() {
  const double elapsed = run_timer_.ElapsedMs();
  if (elapsed < next_progress_ms_) return;
  next_progress_ms_ = elapsed + options_.progress_interval_ms;
  obs::ProgressSnapshot snapshot;
  snapshot.embeddings = stats_.embeddings;
  snapshot.recursive_calls = stats_.recursive_calls;
  snapshot.elapsed_ms = elapsed;
  snapshot.embeddings_per_sec =
      elapsed > 0 ? 1000.0 * static_cast<double>(stats_.embeddings) / elapsed
                  : 0;
  snapshot.thread = options_.thread_id;
  options_.progress(snapshot);
}

void Backtracker::ReportEmbedding() {
  if (options_.shared_count != nullptr && options_.limit != 0) {
    // Claim a slot under the shared limit *before* counting or delivering:
    // a claim past the limit is dropped entirely, so the workers' counts
    // sum to exactly min(limit, total embeddings) — parallel runs report
    // the same count as single-threaded ones, never limit + in-flight.
    const uint64_t prev =
        options_.shared_count->fetch_add(1, std::memory_order_relaxed);
    if (prev >= options_.limit) {
      stats_.limit_reached = true;
      stop_ = true;
      return;
    }
    ++stats_.embeddings;
    if (options_.callback) {
      for (uint32_t u = 0; u < n_; ++u) {
        embedding_buffer_[u] = mapped_vertex_[u];
      }
      if (!options_.callback(embedding_buffer_)) {
        stats_.callback_stopped = true;
        stop_ = true;
      }
    }
    if (prev + 1 >= options_.limit) {
      stats_.limit_reached = true;
      stop_ = true;
    }
    return;
  }
  ++stats_.embeddings;
  if (options_.callback) {
    for (uint32_t u = 0; u < n_; ++u) embedding_buffer_[u] = mapped_vertex_[u];
    if (!options_.callback(embedding_buffer_)) {
      stats_.callback_stopped = true;
      stop_ = true;
    }
  }
  if (options_.limit != 0 && stats_.embeddings >= options_.limit) {
    stats_.limit_reached = true;
    stop_ = true;
  }
}

VertexId Backtracker::SelectExtendable() const {
  VertexId best = kInvalidVertex;
  uint64_t best_weight = 0;
  bool best_is_leaf = true;
  for (VertexId u : extendable_list_) {
    if (mapped_cand_idx_[u] != kNotMapped) continue;
    bool leaf = options_.leaf_decomposition && is_leaf_[u];
    uint64_t w = extendable_weight_[u];
    bool better;
    if (best == kInvalidVertex) {
      better = true;
    } else if (leaf != best_is_leaf) {
      better = !leaf;  // non-leaves strictly before leaves
    } else {
      better = w < best_weight || (w == best_weight && u < best);
    }
    if (better) {
      best = u;
      best_weight = w;
      best_is_leaf = leaf;
    }
  }
  return best;
}

void Backtracker::ComputeExtendableCandidates(VertexId u) {
  const std::vector<VertexId>& parents = dag_.Parents(u);
  const std::vector<uint32_t>& edge_ids = dag_.ParentEdgeIds(u);
  auto& out = extendable_cands_[u];
  // Intersect the parents' CS adjacency lists (Definition 5.2). Lists are
  // sorted candidate indices into C(u); IntersectKWay orders them by size
  // and picks a kernel per pair — gallop when one side dwarfs the other
  // (hub parents), SIMD/merge at comparable sizes, or one blocked-bitmap
  // pass over [0, |C(u)|) when the smallest list is dense in it.
  if (parents.size() == 1) {
    std::span<const uint32_t> first =
        cs_.EdgeNeighbors(edge_ids[0], mapped_cand_idx_[parents[0]]);
    out.assign(first.begin(), first.end());
  } else {
    intersect_inputs_.resize(parents.size());
    for (size_t pi = 0; pi < parents.size(); ++pi) {
      std::span<const uint32_t> list =
          cs_.EdgeNeighbors(edge_ids[pi], mapped_cand_idx_[parents[pi]]);
      intersect_inputs_[pi] = KWayList{list.data(), list.size()};
    }
    IntersectKWay(intersect_inputs_.data(), intersect_inputs_.size(),
                  cs_.NumCandidates(u), &intersect_scratch_, &out,
                  profile_ != nullptr ? &intersect_stats_ : nullptr);
  }
  if (options_.order == MatchOrder::kPathSize) {
    uint64_t w = 0;
    for (uint32_t idx : out) w += weights_->Weight(u, idx);
    extendable_weight_[u] = w;
  } else {
    extendable_weight_[u] = out.size();
  }
}

void Backtracker::Map(VertexId u, uint32_t cand_idx) {
  mapped_cand_idx_[u] = cand_idx;
  VertexId v = cs_.CandidateVertex(u, cand_idx);
  mapped_vertex_[u] = v;
  // mapped_by_ backs the injectivity (conflict) checks only; homomorphism
  // runs allow several query vertices on one data vertex.
  if (options_.injective) mapped_by_[v] = u;
  if (scheduler_ != nullptr) map_stack_.push_back(u);
  for (VertexId c : dag_.Children(u)) {
    if (++num_mapped_parents_[c] ==
        static_cast<uint32_t>(dag_.Parents(c).size())) {
      extendable_list_.push_back(c);
      ComputeExtendableCandidates(c);
    }
  }
}

void Backtracker::Unmap(VertexId u) {
  const std::vector<VertexId>& children = dag_.Children(u);
  for (size_t i = children.size(); i-- > 0;) {
    VertexId c = children[i];
    if (num_mapped_parents_[c]-- ==
        static_cast<uint32_t>(dag_.Parents(c).size())) {
      // LIFO discipline: vertices that became extendable because of this
      // mapping are at the tail of the list.
      extendable_list_.pop_back();
    }
  }
  if (scheduler_ != nullptr) map_stack_.pop_back();
  if (options_.injective) mapped_by_[mapped_vertex_[u]] = kInvalidVertex;
  mapped_vertex_[u] = kInvalidVertex;
  mapped_cand_idx_[u] = kNotMapped;
}

void Backtracker::Recurse(uint32_t depth) {
  ++stats_.recursive_calls;
  if (profile_ != nullptr) CountNode(depth);
  if (depth == n_) {
    ReportEmbedding();
    fs_empty_[depth] = true;  // embedding-class leaf: F = ∅
    return;
  }
  if (ShouldStop()) {
    fs_empty_[depth] = true;
    return;
  }

  const VertexId u = SelectExtendable();
  const std::vector<uint32_t>& cands = extendable_cands_[u];

  if (cands.empty()) {
    // Emptyset-class leaf: F = anc(u).
    if (profile_ != nullptr) ++profile_->empty_candidate_prunes;
    if (options_.use_failing_sets) {
      fs_stack_[depth].Assign(dag_.Ancestors(u));
      fs_empty_[depth] = false;
    }
    return;
  }

  EnumerateCandidates(u, depth, 0, static_cast<uint32_t>(cands.size()));
}

void Backtracker::EnumerateCandidates(VertexId u, uint32_t depth,
                                      uint32_t begin, uint32_t end) {
  const std::vector<uint32_t>& cands = extendable_cands_[u];
  const bool failing = options_.use_failing_sets;

  Bitset& union_fs = fs_union_[depth];
  if (failing) union_fs.ClearAll();
  bool any_child_empty = false;

  const bool boost = options_.equivalence != nullptr;
  std::vector<FailedClass>& failed = failed_classes_[depth];
  if (boost) failed.clear();

  const bool at_root = (depth == 0 && options_.root_cursor != nullptr);
  const bool stealing = scheduler_ != nullptr;
  size_t frame_index = 0;
  if (stealing) {
    frame_index = frames_.size();
    frames_.push_back(SearchFrame{u, depth, begin, end, false});
  }
  uint32_t pos = begin;
  // Case 2.1: a child's failing set excluded u, so the remaining siblings
  // (claimed, donated, or root-cursor-pending) are all redundant and the
  // child's certificate propagates as this node's.
  bool pruned_rest = false;
  while (true) {
    uint32_t list_index;
    uint32_t range_end = end;
    if (at_root) {
      list_index = options_.root_cursor->fetch_add(1);
      range_end = static_cast<uint32_t>(cands.size());
      if (list_index >= range_end) break;
    } else if (stealing) {
      if (scheduler_->WantsWork()) TryDonate();
      SearchFrame& frame = frames_[frame_index];
      range_end = frame.end;  // donation may have moved it down
      if (frame.next >= range_end) break;
      list_index = frame.next++;
    } else {
      if (pos >= range_end) break;
      list_index = pos++;
    }
    const uint32_t cand_idx = cands[list_index];
    const VertexId v = cs_.CandidateVertex(u, cand_idx);

    if (ShouldStop()) {
      any_child_empty = true;
      break;
    }

    if (options_.injective && mapped_by_[v] != kInvalidVertex) {
      // Conflict-class leaf: F = anc(u) ∪ anc(u') where u' holds v.
      ++stats_.recursive_calls;
      if (profile_ != nullptr) {
        // The conflict counts as a search-tree node one level down, so the
        // depth histogram keeps summing to recursive_calls.
        CountNode(depth + 1);
        ++profile_->conflict_prunes;
      }
      if (failing) {
        union_fs.UnionWith(dag_.Ancestors(u));
        union_fs.UnionWith(dag_.Ancestors(mapped_by_[v]));
      }
      continue;
    }

    if (boost) {
      // DAF-Boost skip: a candidate equivalent to an exhausted, embedding-
      // free sibling cannot succeed either (the two subtrees are isomorphic
      // under the swap of the equivalent vertices).
      const uint32_t cls = options_.equivalence->ClassOf(v);
      bool skipped = false;
      for (const FailedClass& fc : failed) {
        if (fc.class_id == cls) {
          if (failing) union_fs.UnionWith(fc.failing_set);
          skipped = true;
          break;
        }
      }
      if (skipped) {
        if (profile_ != nullptr) ++profile_->boost_skips;
        continue;
      }
    }

    const uint64_t embeddings_before = stats_.embeddings;
    Map(u, cand_idx);
    Recurse(depth + 1);
    Unmap(u);

    if (stop_) {
      any_child_empty = true;
      break;
    }

    const bool child_found_embedding = stats_.embeddings > embeddings_before;
    if (failing) {
      if (fs_empty_[depth + 1]) {
        any_child_empty = true;  // Case 1: F_M = ∅
      } else if (!fs_stack_[depth + 1].Test(u)) {
        // Case 2.1 and Lemma 6.1: every remaining sibling is redundant.
        if (profile_ != nullptr) {
          profile_->failing_set_skips += range_end - (list_index + 1);
        }
        fs_stack_[depth].Assign(fs_stack_[depth + 1]);
        fs_empty_[depth] = false;
        pruned_rest = true;
        break;
      } else {
        union_fs.UnionWith(fs_stack_[depth + 1]);
      }
    }
    if (boost && !child_found_embedding &&
        options_.equivalence->ClassSize(options_.equivalence->ClassOf(v)) >
            1) {
      FailedClass fc;
      fc.class_id = options_.equivalence->ClassOf(v);
      if (failing && !fs_empty_[depth + 1]) {
        fc.failing_set = fs_stack_[depth + 1];
      } else if (failing) {
        fc.failing_set.Resize(n_);  // empty contribution
      }
      failed.push_back(std::move(fc));
    }
  }

  bool donated = false;
  if (stealing) {
    donated = frames_[frame_index].donated;
    frames_.pop_back();
  }
  if (pruned_rest) return;  // certificate already assigned (valid even
                            // when part of the range was donated: Lemma
                            // 6.1 needs only the one fully-searched child)

  if (failing) {
    if (any_child_empty || donated) {
      // A donated frame did not compute all of its children, so the Case
      // 2.2 union would certify emptiness of work it never did; report
      // F = ∅ instead (prunes nothing upward — always sound).
      fs_empty_[depth] = true;
    } else {
      fs_stack_[depth].Assign(union_fs);  // Case 2.2: union of children
      fs_empty_[depth] = false;
    }
  }
}

}  // namespace daf

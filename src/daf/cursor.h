#ifndef DAF_DAF_CURSOR_H_
#define DAF_DAF_CURSOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "daf/engine.h"
#include "daf/prepared.h"
#include "graph/graph.h"

namespace daf {

/// Pull-based embedding enumeration: external iteration over the
/// embeddings of `query` in `data`, as an alternative to the push-based
/// `MatchOptions::callback`.
///
///   daf::EmbeddingCursor cursor(query, data);
///   while (auto m = cursor.Next()) {
///     // (*m)[u] is the data vertex matched to query vertex u
///   }
///
/// Implementation: the DAF search runs on a private producer thread and
/// hands embeddings over through a small bounded buffer, so enumeration is
/// demand-driven — abandoning the cursor (destructor or `Close`) stops the
/// search promptly, making "give me the first few matches, lazily" cheap
/// even when billions exist. The cursor is single-consumer; `Next` must
/// not be called concurrently.
class EmbeddingCursor {
 public:
  /// Starts the search. `options.callback` must be empty (the cursor owns
  /// the delivery channel); all other options (limit, order, failing sets,
  /// time limit, injective, cancel token, ...) apply as in DafMatch. A
  /// cancel via `options.cancel` stops the producer mid-search and marks
  /// the final result `cancelled` (unlike Close(), which reports an early
  /// consumer-side stop as `limit_reached`).
  ///
  /// `context` (optional) is the MatchContext the producer's search runs
  /// in; it must outlive the cursor and — since the producer thread uses
  /// it for the cursor's whole lifetime — must not be shared with any
  /// concurrent match run or live cursor. Reusing one context across
  /// *sequential* cursors keeps enumeration allocation-free once warm.
  EmbeddingCursor(const Graph& query, const Graph& data,
                  const MatchOptions& options = {},
                  MatchContext* context = nullptr);

  /// Streams embeddings from a prebuilt PreparedQuery (the cache-hit path):
  /// the producer runs DafMatchPrepared, skipping all preprocessing. The
  /// shared_ptr keeps the blob alive for the producer's lifetime even if
  /// the cache evicts the entry mid-stream. Embeddings come out in the
  /// *prepared* (canonical) query's vertex order; callers matching a
  /// relabeled isomorph remap through their permutation.
  EmbeddingCursor(std::shared_ptr<const PreparedQuery> prepared,
                  const Graph& data, const MatchOptions& options = {},
                  MatchContext* context = nullptr);

  /// Stops the underlying search if still running.
  ~EmbeddingCursor();

  EmbeddingCursor(const EmbeddingCursor&) = delete;
  EmbeddingCursor& operator=(const EmbeddingCursor&) = delete;

  /// The next embedding (query-vertex-id order), or std::nullopt when the
  /// enumeration is exhausted. Blocks while the producer is working.
  std::optional<std::vector<VertexId>> Next();

  /// Stops the search early; subsequent Next() calls return std::nullopt.
  void Close();

  /// Joins the producer and returns the final MatchResult. If the
  /// enumeration was not exhausted yet, the search is stopped early first
  /// (the result is then marked limit_reached).
  const MatchResult& Finish();

 private:
  struct Channel {
    std::mutex mutex;
    std::condition_variable can_produce;
    std::condition_variable can_consume;
    std::deque<std::vector<VertexId>> buffer;
    bool closed = false;    // consumer went away
    bool finished = false;  // producer done
    static constexpr size_t kCapacity = 64;
  };

  std::shared_ptr<Channel> channel_;
  std::thread producer_;
  MatchResult result_;
  bool joined_ = false;
};

}  // namespace daf

#endif  // DAF_DAF_CURSOR_H_

#include "daf/match_context.h"

namespace daf {

namespace {

// Re-dimensions `bitsets` to `count` bitsets of `bits` bits each, keeping
// the capacity of both the outer vector and each bitset's word storage.
void ResizeBitsets(std::vector<Bitset>* bitsets, size_t count, size_t bits) {
  if (bitsets->size() < count) bitsets->resize(count);
  for (size_t i = 0; i < count; ++i) (*bitsets)[i].Resize(bits);
}

}  // namespace

void BacktrackScratch::ResizeForQuery(uint32_t n, uint32_t data_n) {
  mapped_cand_idx.assign(n, static_cast<uint32_t>(-1));
  mapped_vertex.assign(n, kInvalidVertex);
  num_mapped_parents.assign(n, 0);
  if (extendable_cands.size() < n) extendable_cands.resize(n);
  extendable_weight.assign(n, 0);
  is_leaf.assign(n, false);
  mapped_by.assign(data_n, kInvalidVertex);
  extendable_list.clear();
  ResizeBitsets(&fs_stack, n + 1, n);
  fs_empty.assign(n + 1, false);
  ResizeBitsets(&fs_union, n + 1, n);
  if (failed_classes.size() < n + 1) failed_classes.resize(n + 1);
  embedding_buffer.assign(n, kInvalidVertex);
  map_stack.clear();
  map_stack.reserve(n);
  frames.clear();
  frames.reserve(n + 1);
}

BacktrackScratch& MatchContext::backtrack_scratch(uint32_t thread) {
  if (backtrack_scratch_.size() <= thread) {
    backtrack_scratch_.resize(thread + 1);
  }
  return backtrack_scratch_[thread];
}

void MatchContext::EnsureThreads(uint32_t count) {
  if (backtrack_scratch_.size() < count) backtrack_scratch_.resize(count);
}

void MatchContext::Trim() {
  arena_.Release();
  cs_scratch_ = CsBuildScratch{};
  backtrack_scratch_.clear();
}

void MatchContext::ShrinkTo(uint64_t retained_bytes) {
  arena_.Reset();
  arena_.ShrinkTo(retained_bytes);
}

}  // namespace daf

#include "daf/query_dag.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/query_extract.h"

namespace daf {

namespace {

// |C_ini(u)| for every query vertex: data vertices with the same label and
// degree >= deg_q(u).
std::vector<uint32_t> InitialCandidateCounts(const Graph& query,
                                             const Graph& data,
                                             const std::vector<Label>& dl) {
  std::vector<uint32_t> counts(query.NumVertices(), 0);
  for (uint32_t u = 0; u < query.NumVertices(); ++u) {
    if (dl[u] == kNoSuchLabel) continue;
    uint32_t count = 0;
    for (VertexId v : data.VerticesWithLabel(dl[u])) {
      if (data.degree(v) >= query.degree(u)) ++count;
    }
    counts[u] = count;
  }
  return counts;
}

}  // namespace

QueryDag QueryDag::Build(const Graph& query, const Graph& data) {
  std::vector<Label> dl = MapQueryLabels(query, data);
  std::vector<uint32_t> counts = InitialCandidateCounts(query, data, dl);
  // root = argmin |C_ini(u)| / deg(u). Isolated vertices (degree 0) only
  // appear in single-vertex queries, where vertex 0 is the root.
  VertexId root = 0;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t u = 0; u < query.NumVertices(); ++u) {
    double ratio = query.degree(u) == 0
                       ? static_cast<double>(counts[u])
                       : static_cast<double>(counts[u]) / query.degree(u);
    if (ratio < best) {
      best = ratio;
      root = u;
    }
  }
  return BuildWithRoot(query, data, root);
}

QueryDag QueryDag::BuildWithRoot(const Graph& query, const Graph& data,
                                 VertexId root) {
  QueryDag dag;
  const uint32_t n = query.NumVertices();
  dag.root_ = root;
  dag.data_labels_ = MapQueryLabels(query, data);
  dag.initial_candidate_counts_ =
      InitialCandidateCounts(query, data, dag.data_labels_);

  // BFS levels from the root; disconnected queries get one BFS (and one
  // root) per component, appended in sequence.
  dag.level_.assign(n, static_cast<uint32_t>(-1));
  std::vector<std::vector<VertexId>> levels;
  {
    VertexId component_root = root;
    while (component_root != kInvalidVertex) {
      dag.roots_.push_back(component_root);
      const size_t level_base = levels.size();
      std::queue<VertexId> queue;
      dag.level_[component_root] = 0;
      queue.push(component_root);
      levels.push_back({component_root});
      while (!queue.empty()) {
        VertexId v = queue.front();
        queue.pop();
        for (VertexId u : query.Neighbors(v)) {
          if (dag.level_[u] == static_cast<uint32_t>(-1)) {
            dag.level_[u] = dag.level_[v] + 1;
            if (levels.size() <= level_base + dag.level_[u]) {
              levels.resize(level_base + dag.level_[u] + 1);
            }
            levels[level_base + dag.level_[u]].push_back(u);
            queue.push(u);
          }
        }
      }
      // Next component's root: best |C_ini|/deg ratio among the unvisited.
      component_root = kInvalidVertex;
      double best = std::numeric_limits<double>::infinity();
      for (uint32_t u = 0; u < n; ++u) {
        if (dag.level_[u] != static_cast<uint32_t>(-1)) continue;
        double ratio =
            query.degree(u) == 0
                ? static_cast<double>(dag.initial_candidate_counts_[u])
                : static_cast<double>(dag.initial_candidate_counts_[u]) /
                      query.degree(u);
        if (ratio < best) {
          best = ratio;
          component_root = u;
        }
      }
    }
  }

  // Total order: by level, then within a level grouped by label with the
  // most infrequent (in the data graph) labels first, descending degree
  // inside a group, vertex id as the final tiebreak.
  auto label_frequency = [&](VertexId u) -> uint64_t {
    Label l = dag.data_labels_[u];
    return l == kNoSuchLabel ? 0 : data.LabelFrequency(l);
  };
  std::vector<uint32_t> rank(n, 0);
  uint32_t next_rank = 0;
  for (auto& level_vertices : levels) {
    std::sort(level_vertices.begin(), level_vertices.end(),
              [&](VertexId a, VertexId b) {
                uint64_t fa = label_frequency(a);
                uint64_t fb = label_frequency(b);
                if (fa != fb) return fa < fb;
                Label la = query.label(a);
                Label lb = query.label(b);
                if (la != lb) return la < lb;
                if (query.degree(a) != query.degree(b)) {
                  return query.degree(a) > query.degree(b);
                }
                return a < b;
              });
    for (VertexId u : level_vertices) rank[u] = next_rank++;
  }

  // Direct every query edge from the lower-ranked endpoint to the higher.
  dag.children_.assign(n, {});
  dag.parents_.assign(n, {});
  for (uint32_t u = 0; u < n; ++u) {
    for (VertexId v : query.Neighbors(u)) {
      if (rank[u] < rank[v]) {
        dag.children_[u].push_back(v);
        dag.parents_[v].push_back(u);
      }
    }
  }
  // Deterministic child/parent orders (rank order = topological order).
  for (uint32_t u = 0; u < n; ++u) {
    auto by_rank = [&](VertexId a, VertexId b) { return rank[a] < rank[b]; };
    std::sort(dag.children_[u].begin(), dag.children_[u].end(), by_rank);
    std::sort(dag.parents_[u].begin(), dag.parents_[u].end(), by_rank);
  }

  // Dense edge ids: edge (u -> c) gets id child_edge_base_[u] + pos.
  dag.child_edge_base_.assign(n, 0);
  uint32_t next_edge = 0;
  for (uint32_t u = 0; u < n; ++u) {
    dag.child_edge_base_[u] = next_edge;
    next_edge += static_cast<uint32_t>(dag.children_[u].size());
  }
  dag.num_edges_ = next_edge;
  // Edge labels per dense DAG edge id (all zero for unlabeled queries).
  dag.has_edge_labels_ = query.HasNontrivialEdgeLabels();
  dag.edge_label_of_.assign(dag.num_edges_, 0);
  if (dag.has_edge_labels_) {
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t pos = 0; pos < dag.children_[u].size(); ++pos) {
        dag.edge_label_of_[dag.ChildEdgeId(u, pos)] =
            query.EdgeLabelBetween(u, dag.children_[u][pos]);
      }
    }
  }

  // parent_edge_ids_[v] must be aligned with parents_[v].
  dag.parent_edge_ids_.assign(n, {});
  for (uint32_t v = 0; v < n; ++v) {
    for (VertexId p : dag.parents_[v]) {
      const auto& siblings = dag.children_[p];
      uint32_t pos = static_cast<uint32_t>(
          std::find(siblings.begin(), siblings.end(), v) - siblings.begin());
      dag.parent_edge_ids_[v].push_back(dag.ChildEdgeId(p, pos));
    }
  }

  // Topological order = vertices sorted by rank.
  dag.topo_.resize(n);
  for (uint32_t u = 0; u < n; ++u) dag.topo_[rank[u]] = u;

  // Ancestor bitsets in topological order: anc(u) = {u} ∪ ⋃_p anc(p).
  dag.ancestors_.assign(n, Bitset(n));
  for (VertexId u : dag.topo_) {
    dag.ancestors_[u].Set(u);
    for (VertexId p : dag.parents_[u]) {
      dag.ancestors_[u].UnionWith(dag.ancestors_[p]);
    }
  }
  return dag;
}

}  // namespace daf

#include "daf/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "daf/candidate_space.h"
#include "daf/query_dag.h"
#include "daf/steal.h"
#include "daf/weights.h"
#include "util/timer.h"
#include "util/topo.h"

namespace daf {

namespace {

// Copies the context arena's counters (and the budget ledger, when one is
// attached) into the profile's memory section.
void FillMemoryProfile(obs::SearchProfile* profile, const MatchContext& context,
                       const MemoryBudget* budget) {
  if (profile == nullptr) return;
  const ArenaStats& stats = context.arena_stats();
  profile->memory.arena_bytes = stats.bytes_used;
  profile->memory.arena_peak_bytes = stats.peak_bytes;
  profile->memory.arena_blocks_acquired = stats.blocks_acquired;
  profile->memory.arena_capacity_bytes = stats.capacity_bytes;
  if (budget != nullptr) {
    profile->memory.budget_limit_bytes = budget->limit();
    profile->memory.budget_used_bytes = budget->used();
    profile->memory.budget_peak_bytes = budget->peak_bytes();
    profile->memory.budget_rejections = budget->rejections();
    profile->memory.budget_exhausted = budget->exhausted();
  }
}

// Attaches the context arena to the run's budget for the scope of the call
// and detaches on every exit path (see the engine.cc counterpart).
class ArenaBudgetScope {
 public:
  ArenaBudgetScope(MatchContext* context, MemoryBudget* budget)
      : context_(context), attached_(budget != nullptr) {
    if (attached_) context_->arena().SetBudget(budget);
  }
  ArenaBudgetScope(const ArenaBudgetScope&) = delete;
  ArenaBudgetScope& operator=(const ArenaBudgetScope&) = delete;
  ~ArenaBudgetScope() {
    if (attached_) context_->arena().SetBudget(nullptr);
  }

 private:
  MatchContext* context_;
  bool attached_;
};

}  // namespace

ParallelMatchResult ParallelDafMatch(const Graph& query, const Graph& data,
                                     const MatchOptions& options,
                                     uint32_t num_threads,
                                     MatchContext* context) {
  ParallelMatchResult result;
  if (num_threads == 0) num_threads = 1;
  if (query.NumVertices() == 0) {
    result.ok = false;
    result.error = "empty query graph";
    return result;
  }
  MatchContext local_context;
  if (context == nullptr) context = &local_context;
  context->arena().Reset();
  MemoryBudget* budget = options.memory_budget;
  ArenaBudgetScope budget_scope(context, budget);

  obs::SearchProfile* profile = options.profile;
  if (profile != nullptr) {
    profile->Reset();
    profile->threads = num_threads;
  }

  Deadline deadline(options.time_limit_ms);
  const StopCondition stop(options.time_limit_ms > 0 ? &deadline : nullptr,
                           options.cancel, budget);
  Stopwatch preprocess_timer;
  Stopwatch stage_timer;
  QueryDag dag = QueryDag::Build(query, data);
  if (profile != nullptr) {
    profile->dag_build_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }
  CandidateSpace::Options cs_options;
  cs_options.refinement_steps = options.refinement_steps;
  cs_options.use_nlf_filter = options.use_nlf_filter;
  cs_options.use_mnd_filter = options.use_mnd_filter;
  cs_options.injective = options.injective;
  cs_options.profile = profile != nullptr ? &profile->cs : nullptr;
  cs_options.stop = stop.armed() ? &stop : nullptr;
  cs_options.budget = budget;
  CandidateSpace cs = CandidateSpace::Build(
      query, dag, data, cs_options, &context->arena(), &context->cs_scratch());
  if (profile != nullptr) profile->cs_build_ms = stage_timer.ElapsedMs();
  result.cs_candidates = cs.TotalCandidates();
  result.cs_edges = cs.TotalEdges();
  if (cs.interrupted()) {
    result.timed_out = cs.interrupt_cause() == StopCause::kDeadline;
    result.cancelled = cs.interrupt_cause() == StopCause::kCancel;
    result.resource_exhausted =
        cs.interrupt_cause() == StopCause::kMemoryExhausted;
    result.preprocess_ms = preprocess_timer.ElapsedMs();
    FillMemoryProfile(profile, *context, budget);
    return result;
  }
  if (budget == nullptr || !budget->exhausted()) {
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      if (cs.NumCandidates(u) == 0) {
        // Skipped when the budget latched between polls: an exhausted run
        // must never claim a negativity certificate.
        result.cs_certified_negative = true;
        result.preprocess_ms = preprocess_timer.ElapsedMs();
        FillMemoryProfile(profile, *context, budget);
        return result;
      }
    }
  }
  if (StopCause cause = stop.Check(); cause != StopCause::kNone) {
    result.timed_out = cause == StopCause::kDeadline;
    result.cancelled = cause == StopCause::kCancel;
    result.resource_exhausted = cause == StopCause::kMemoryExhausted;
    result.preprocess_ms = preprocess_timer.ElapsedMs();
    FillMemoryProfile(profile, *context, budget);
    return result;
  }
  WeightArray weights;
  const bool path_order = options.order == MatchOrder::kPathSize;
  if (path_order) {
    stage_timer.Restart();
    weights = WeightArray::Compute(dag, cs, &context->arena());
    if (profile != nullptr) profile->weights_ms = stage_timer.ElapsedMs();
  }
  result.preprocess_ms = preprocess_timer.ElapsedMs();

  Stopwatch search_timer;
  std::atomic<uint64_t> shared_count{0};
  std::atomic<uint32_t> root_cursor{0};
  const bool stealing =
      options.parallel_strategy == ParallelStrategy::kWorkStealing &&
      num_threads > 1;
  // Worker placement: pin_workers assigns each worker a cpu in PinOrder
  // (socket-major, physical cores first) and feeds the per-worker home
  // sockets to the scheduler so its steal sweep visits same-socket victims
  // before remote ones. Inactive (and free) on single-cpu hosts.
  const PinPlan pin_plan =
      MakePinPlan(HwTopology::Get(), num_threads, options.pin_workers);
  result.pinned = pin_plan.active;
  std::unique_ptr<StealScheduler> scheduler;
  if (stealing) {
    scheduler = std::make_unique<StealScheduler>(
        num_threads, options.split_threshold, pin_plan.socket);
    // The seed task (no prefix, no pinned range) makes whichever worker
    // grabs it first start a full search; everyone else feeds on donations.
    scheduler->Seed(SubtreeTask{});
  }
  std::mutex callback_mutex;

  EmbeddingCallback guarded_callback;
  if (options.callback) {
    guarded_callback = [&](std::span<const VertexId> embedding) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      return options.callback(embedding);
    };
  }
  obs::ProgressFn guarded_progress;
  if (options.progress) {
    guarded_progress = [&](const obs::ProgressSnapshot& snapshot) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      options.progress(snapshot);
    };
  }

  // One profile per worker; merged below so parallel runs report both the
  // aggregate and the per-thread breakdown.
  std::vector<obs::BacktrackProfile> thread_profiles(
      profile != nullptr ? num_threads : 0);
  std::vector<BacktrackStats> stats(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  // Pre-create every worker's scratch: the vector must not reallocate
  // while workers hold references into it.
  context->EnsureThreads(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      if (pin_plan.active) PinCurrentThreadToCpu(pin_plan.cpu[t]);
      Backtracker backtracker(query, dag, cs, path_order ? &weights : nullptr,
                              data.NumVertices(),
                              &context->backtrack_scratch(t));
      BacktrackOptions bt;
      bt.order = options.order;
      bt.use_failing_sets = options.use_failing_sets;
      bt.leaf_decomposition = options.leaf_decomposition;
      bt.limit = options.limit;
      bt.injective = options.injective;
      bt.deadline = options.time_limit_ms > 0 ? &deadline : nullptr;
      bt.cancel = options.cancel;
      bt.budget = budget;
      bt.shared_count = &shared_count;
      bt.equivalence = options.equivalence;
      bt.callback = guarded_callback;
      bt.profile = profile != nullptr ? &thread_profiles[t] : nullptr;
      bt.progress = guarded_progress;
      bt.progress_interval_ms = options.progress_interval_ms;
      bt.thread_id = t;
      if (stealing) {
        bt.scheduler = scheduler.get();
        bt.split_threshold = options.split_threshold;
        stats[t] = backtracker.RunWorker(bt);
      } else {
        bt.root_cursor = &root_cursor;
        stats[t] = backtracker.Run(bt);
      }
    });
  }
  for (auto& w : workers) w.join();
  result.search_ms = search_timer.ElapsedMs();

  result.threads_used = num_threads;
  result.per_thread_calls.resize(num_threads);
  uint64_t max_calls = 0;
  for (uint32_t t = 0; t < num_threads; ++t) {
    result.embeddings += stats[t].embeddings;
    result.recursive_calls += stats[t].recursive_calls;
    result.per_thread_calls[t] = stats[t].recursive_calls;
    max_calls = std::max(max_calls, stats[t].recursive_calls);
    result.limit_reached |= stats[t].limit_reached ||
                            stats[t].callback_stopped;
    result.timed_out |= stats[t].timed_out;
    result.cancelled |= stats[t].cancelled;
    result.resource_exhausted |= stats[t].resource_exhausted;
  }
  if (budget != nullptr && budget->exhausted()) {
    // Exhaustion may latch between workers' sampled polls and their last
    // return; report it whenever the flag is up (deterministic outcome).
    result.resource_exhausted = true;
  }
  if (result.recursive_calls > 0) {
    result.call_imbalance = static_cast<double>(max_calls) * num_threads /
                            static_cast<double>(result.recursive_calls);
  }
  std::vector<uint64_t> per_thread_steals(num_threads, 0);
  if (scheduler != nullptr) {
    for (uint32_t t = 0; t < num_threads; ++t) {
      const StealWorkerStats& ws = scheduler->worker_stats(t);
      result.tasks_executed += ws.tasks_executed;
      result.steals += ws.steals;
      result.local_steals += ws.local_steals;
      result.remote_steals += ws.remote_steals;
      result.donations += ws.donations;
      result.idle_ms += ws.idle_ms;
      per_thread_steals[t] = ws.steals;
    }
  }
  if (profile != nullptr) {
    profile->search_ms = result.search_ms;
    for (const obs::BacktrackProfile& tp : thread_profiles) {
      profile->backtrack.MergeFrom(tp);
    }
    profile->thread_profiles = std::move(thread_profiles);
    profile->parallel.tasks_executed = result.tasks_executed;
    profile->parallel.steals = result.steals;
    profile->parallel.local_steals = result.local_steals;
    profile->parallel.remote_steals = result.remote_steals;
    profile->parallel.donations = result.donations;
    profile->parallel.idle_ms = result.idle_ms;
    profile->parallel.call_imbalance = result.call_imbalance;
    profile->parallel.pinned = result.pinned;
    profile->parallel.per_thread_calls = result.per_thread_calls;
    profile->parallel.per_thread_steals = std::move(per_thread_steals);
  }
  FillMemoryProfile(profile, *context, budget);
  return result;
}

}  // namespace daf

#ifndef DAF_DAF_CANDIDATE_SPACE_H_
#define DAF_DAF_CANDIDATE_SPACE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "daf/match_context.h"
#include "daf/query_dag.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "util/stop.h"

namespace daf {

/// The CS (candidate space) structure of Section 4: one candidate set C(u)
/// per query vertex plus, for every DAG edge (u -> u_c), the adjacency lists
/// N^u_{u_c}(v) connecting candidates of u to candidates of u_c.
///
/// The candidate sets are computed by DAG-graph DP: starting from
/// C_ini(u) = {v : L(v)=L(u), deg_G(v) >= deg_q(u)} (further filtered by the
/// local MND and NLF features), the sets are refined by Recurrence (1),
/// alternating the reversed DAG q_D^{-1} and q_D, for `refinement_steps`
/// passes (the paper fixes 3). A vertex v survives in C(u) only while a weak
/// embedding of the sub-DAG rooted at u exists at v, so the final CS is
/// sound; because every query edge is materialized, it is also *equivalent*
/// to G w.r.t. q (Theorem 4.1) and backtracking never touches G again.
///
/// Candidates are addressed by (query vertex, dense index); the adjacency
/// lists store candidate indices of the child, sorted ascending, so the
/// extendable-candidate intersection of Definition 5.2 is a sorted-list
/// intersection.
///
/// Storage is fully flat: one candidate array + one offset array over all
/// query vertices, and one target array + one absolute offset array over
/// all CS edges (a two-level CSR, mirroring Graph's own layout). The final
/// arrays either live in a caller-provided bump arena (the MatchContext
/// path — allocation-free once warm) or in vectors owned by this object
/// (the standalone Build overloads). An arena-backed CandidateSpace is
/// valid only until the arena's next Reset.
class CandidateSpace {
 public:
  /// Knobs for CS construction, exposed mainly for the ablation studies:
  /// the paper's configuration is the default (3 DP passes, both local
  /// filters on). Disabling a filter only grows the CS; soundness is kept.
  struct Options {
    /// DAG-graph DP passes (step i uses q_D^{-1} for even i, q_D for odd).
    int refinement_steps = 3;
    /// Neighborhood label frequency local filter [5, 16].
    bool use_nlf_filter = true;
    /// Maximum neighbor degree local filter [5].
    bool use_mnd_filter = true;
    /// Target mapping class. For homomorphism enumeration (false) the
    /// injectivity-based filters are relaxed: the degree and MND filters
    /// are dropped and NLF only requires each neighbor label to be
    /// *present* (several query neighbors may collapse onto one data
    /// vertex). The DAG-graph DP recurrence itself is already sound for
    /// homomorphisms — a weak embedding is one (Definition 4.5).
    bool injective = true;
    /// Optional prune-count/stage-timer sink (not owned). Reset and filled
    /// by Build; null disables all instrumentation (the construction is
    /// then bit-identical to an uninstrumented build).
    obs::CsProfile* profile = nullptr;
    /// Optional early-exit predicate (not owned), polled once per query
    /// vertex in the seeding, refinement, and edge-materialization loops.
    /// When it fires, Build returns an *interrupted* CS: structurally valid
    /// but empty (every candidate set reports size 0, no CS edges), with
    /// `interrupted()` true and `interrupt_cause()` naming the trigger.
    /// Callers must check `interrupted()` before treating the empty sets as
    /// a negativity certificate.
    const StopCondition* stop = nullptr;
    /// Optional memory budget (not owned) transiently charged with the
    /// build's *staging* capacity (the scratch candidate/edge buffers grow
    /// before anything is committed to the arena, so they — not the arena —
    /// are where a dense query blows up). The charge is released when Build
    /// returns; exhaustion surfaces through `stop` like any other cause.
    MemoryBudget* budget = nullptr;
  };

  /// Builds the CS for (query, dag, data) with self-owned storage.
  static CandidateSpace Build(const Graph& query, const QueryDag& dag,
                              const Graph& data, const Options& options);

  /// Builds the CS into `arena` using `scratch` as staging buffers (both
  /// must be non-null). The returned object only *views* the arena memory:
  /// it is valid until the arena's next Reset, and moving it is cheap.
  /// Reusing one scratch across queries makes construction allocation-free
  /// once the buffers are warm. DafMatch drives this overload through its
  /// MatchContext.
  static CandidateSpace Build(const Graph& query, const QueryDag& dag,
                              const Graph& data, const Options& options,
                              Arena* arena, CsBuildScratch* scratch);

  /// Convenience overload: paper defaults with a custom pass count.
  static CandidateSpace Build(const Graph& query, const QueryDag& dag,
                              const Graph& data, int refinement_steps = 3) {
    Options options;
    options.refinement_steps = refinement_steps;
    return Build(query, dag, data, options);
  }

  CandidateSpace(CandidateSpace&&) = default;
  CandidateSpace& operator=(CandidateSpace&&) = default;
  CandidateSpace(const CandidateSpace&) = delete;
  CandidateSpace& operator=(const CandidateSpace&) = delete;

  /// Number of candidates in C(u).
  uint32_t NumCandidates(VertexId u) const {
    return static_cast<uint32_t>(cand_offsets_[u + 1] - cand_offsets_[u]);
  }

  /// The data vertex of candidate `idx` of query vertex u.
  VertexId CandidateVertex(VertexId u, uint32_t idx) const {
    return cand_data_[cand_offsets_[u] + idx];
  }

  /// All candidates of u (data vertices, ascending).
  std::span<const VertexId> Candidates(VertexId u) const {
    return {cand_data_ + cand_offsets_[u],
            static_cast<size_t>(cand_offsets_[u + 1] - cand_offsets_[u])};
  }

  /// Segment starts of the per-vertex candidate segments within the flat
  /// candidate array; n+1 entries. Shared with WeightArray, whose flat
  /// weight array is indexed by the same offsets.
  std::span<const uint64_t> CandidateOffsets() const {
    return {cand_offsets_, static_cast<size_t>(num_vertices_) + 1};
  }

  /// N^u_{u_c}(v): candidate *indices* into C(u_c) adjacent (in G) to
  /// candidate `parent_idx` of u, for the DAG edge with dense id `edge_id`
  /// (see QueryDag::ChildEdgeId). Sorted ascending.
  std::span<const uint32_t> EdgeNeighbors(uint32_t edge_id,
                                          uint32_t parent_idx) const {
    const uint64_t* offsets =
        edge_offsets_ + edge_seg_base_[edge_id] + parent_idx;
    return {edge_targets_ + offsets[0],
            static_cast<size_t>(offsets[1] - offsets[0])};
  }

  /// Σ_u |C(u)| — the auxiliary-structure size metric of Figure 9.
  uint64_t TotalCandidates() const { return cand_offsets_[num_vertices_]; }

  /// Total number of CS edges (pairs counted once per DAG edge direction).
  uint64_t TotalEdges() const { return num_edge_targets_; }

  /// Number of DP passes that removed at least one candidate (diagnostics).
  uint32_t effective_refinements() const { return effective_refinements_; }

  /// True when Options::stop fired during construction; the CS is then a
  /// structurally valid placeholder (all candidate sets empty) and must not
  /// be interpreted as a proof of negativity.
  bool interrupted() const { return interrupt_cause_ != StopCause::kNone; }

  /// What interrupted the build (kNone when it ran to completion).
  StopCause interrupt_cause() const { return interrupt_cause_; }

 private:
  // PreparedQuery (daf/prepared.h) aggregates a CandidateSpace and needs
  // the empty state before Build's result is moved in; everyone else must
  // go through Build.
  friend struct PreparedQuery;
  CandidateSpace() = default;

  static CandidateSpace BuildImpl(const Graph& query, const QueryDag& dag,
                                  const Graph& data, const Options& options,
                                  Arena* arena, CsBuildScratch* scratch);

  // Views over the final flat arrays. When built standalone they point into
  // the own_* vectors below (stable across moves); when arena-built the
  // own_* vectors stay empty.
  const VertexId* cand_data_ = nullptr;
  const uint64_t* cand_offsets_ = nullptr;   // n+1 entries
  const uint64_t* edge_seg_base_ = nullptr;  // per edge: base into offsets
  const uint64_t* edge_offsets_ = nullptr;   // absolute starts into targets
  const uint32_t* edge_targets_ = nullptr;
  uint32_t num_vertices_ = 0;
  uint64_t num_edge_targets_ = 0;
  uint32_t effective_refinements_ = 0;
  StopCause interrupt_cause_ = StopCause::kNone;

  std::vector<VertexId> own_cand_data_;
  std::vector<uint64_t> own_cand_offsets_;
  std::vector<uint64_t> own_edge_seg_base_;
  std::vector<uint64_t> own_edge_offsets_;
  std::vector<uint32_t> own_edge_targets_;
};

}  // namespace daf

#endif  // DAF_DAF_CANDIDATE_SPACE_H_

#ifndef DAF_DAF_DYNAMIC_CS_H_
#define DAF_DAF_DYNAMIC_CS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "graph/graph.h"
#include "util/bitset.h"

namespace daf::dyn {

/// Incrementally maintained candidate sets for one standing query over a
/// DeltaGraph — the dynamic counterpart of CandidateSpace's DP-refined C(u)
/// sets, extended from build-once to maintain-under-updates.
///
/// What is maintained is the candidate *membership bitmaps* only (one
/// Bitset over data vertices per query vertex), not the CS edge arrays:
/// the delta enumerator checks adjacency directly against the DeltaGraph,
/// so edges need not be materialized. The maintained invariant is
///
///   cand(u) ⊇ { v : some embedding of the query in the current graph
///               maps u to v }                                (soundness)
///
/// i.e. the bitmaps are a *conservative superset* of the from-scratch CS
/// candidates — pruning with them never loses an embedding, which is all
/// enumeration needs. They may be slightly larger than a fresh build (the
/// incremental path applies label/degree/NLF local filters plus full
/// arc-consistency over all query neighbors, but skips the MND filter and
/// the exact weak-embedding DP), trading a few extra candidates for
/// touching only the dirty region.
///
/// Per batch (after DeltaGraph::ApplyBatch), `Apply(net)` runs:
///   1. *Addition flood* — C_ini-style unconditional adds (local filters
///      only, no support check) seeded at inserted-edge endpoints and new
///      vertices, propagating through *absent* eligible pairs along
///      label-compatible adjacency. The flood is unconditional because a
///      support-checked additive fixpoint deadlocks on cyclic dependencies
///      (a brand-new triangle: each pair's support is another absent
///      pair); flooding first and pruning after breaks the cycle.
///   2. *Removal refinement* — a worklist of (query vertex, data vertex)
///      pairs seeded at removed vertices, removed-edge endpoints, and all
///      flooded pairs, each re-checked with the full filter (local +
///      arc-consistency: every query neighbor must have a label-and-
///      edge-label-compatible adjacent candidate); removals cascade to
///      adjacent pairs. Decreasing, hence terminating; every removal is
///      justified by a violated necessary condition, hence sound.
/// When the dirty region (flooded + re-checked pairs) exceeds the budget,
/// the incremental pass aborts into a full from-scratch rebuild
/// (QueryDag + CandidateSpace::Build on the materialized snapshot), which
/// is also the initial-construction path.
class DynamicCandidateSpace {
 public:
  struct Options {
    /// Mirror of CandidateSpace::Options for the rebuild path; the
    /// incremental path honors use_nlf_filter/injective and ignores
    /// use_mnd_filter (MND cascades through neighbor degrees and is not
    /// worth tracking incrementally — skipping it only grows the set).
    int refinement_steps = 3;
    bool use_nlf_filter = true;
    bool use_mnd_filter = true;
    bool injective = true;
    /// Dirty-pair budget: rebuild when flood+recheck work exceeds
    /// max(rebuild_min_dirty_pairs,
    ///     rebuild_dirty_fraction * current total candidates).
    double rebuild_dirty_fraction = 0.5;
    uint64_t rebuild_min_dirty_pairs = 1024;
  };

  /// Outcome of one Apply, for metrics and tests.
  struct MaintainStats {
    bool rebuilt = false;
    uint64_t dirty_pairs = 0;    // flood adds + worklist re-checks
    uint64_t added_pairs = 0;    // net additions to the bitmaps
    uint64_t removed_pairs = 0;  // net removals from the bitmaps
  };

  /// Builds the initial candidate sets for `query` against the current
  /// state of `dg` (a full from-scratch build). The DeltaGraph is not
  /// retained; every later call must pass the same one.
  DynamicCandidateSpace(const Graph& query, const DeltaGraph& dg,
                        Options options);

  /// Advances the candidate sets across one applied batch. Must be called
  /// with the *net* batch returned by DeltaGraph::ApplyBatch, after that
  /// call succeeded, once per version step.
  MaintainStats Apply(const DeltaGraph& dg, const NormalizedBatch& net);

  /// Full from-scratch rebuild against the current state of `dg`.
  void Rebuild(const DeltaGraph& dg);

  /// Candidate membership.
  bool Has(VertexId u, VertexId v) const { return cand_[u].Test(v); }
  const Bitset& Candidates(VertexId u) const { return cand_[u]; }

  uint32_t NumQueryVertices() const {
    return static_cast<uint32_t>(cand_.size());
  }
  uint64_t TotalCandidates() const { return total_candidates_; }

  /// True when some query vertex has no candidates — no embedding can
  /// exist (the converse does not hold).
  bool EmptySomewhere() const;

  const Graph& query() const { return query_; }
  const Options& options() const { return options_; }

 private:
  bool LocalCheck(const DeltaGraph& dg, VertexId u, VertexId v) const;
  bool FullCheck(const DeltaGraph& dg, VertexId u, VertexId v) const;

  Graph query_;
  Options options_;
  /// Per query vertex: required data-vertex label, original space.
  std::vector<Label> required_label_;
  /// Per query vertex: NLF profile (original label -> required count),
  /// sorted by label.
  std::vector<std::vector<std::pair<Label, uint32_t>>> nlf_;
  /// Per query vertex: (neighbor query vertex, required edge label).
  std::vector<std::vector<std::pair<VertexId, Label>>> adj_;
  std::vector<Bitset> cand_;
  uint64_t total_candidates_ = 0;
};

}  // namespace daf::dyn

#endif  // DAF_DAF_DYNAMIC_CS_H_

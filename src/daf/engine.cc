#include "daf/engine.h"

#include "daf/candidate_space.h"
#include "daf/match_context.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "util/timer.h"

namespace daf {

namespace {

// Copies the context arena's counters (and the budget ledger, when one is
// attached) into the profile's memory section.
void FillMemoryProfile(obs::SearchProfile* profile, const MatchContext& context,
                       const MemoryBudget* budget) {
  if (profile == nullptr) return;
  const ArenaStats& stats = context.arena_stats();
  profile->memory.arena_bytes = stats.bytes_used;
  profile->memory.arena_peak_bytes = stats.peak_bytes;
  profile->memory.arena_blocks_acquired = stats.blocks_acquired;
  profile->memory.arena_capacity_bytes = stats.capacity_bytes;
  if (budget != nullptr) {
    profile->memory.budget_limit_bytes = budget->limit();
    profile->memory.budget_used_bytes = budget->used();
    profile->memory.budget_peak_bytes = budget->peak_bytes();
    profile->memory.budget_rejections = budget->rejections();
    profile->memory.budget_exhausted = budget->exhausted();
  }
}

// Attaches the context arena to the run's budget for the scope of one match
// and detaches on every exit path — the budget usually lives on the
// caller's stack (ProcessJob, match_cli) and must not outlive-dangle inside
// a pooled context.
class ArenaBudgetScope {
 public:
  ArenaBudgetScope(MatchContext* context, MemoryBudget* budget)
      : context_(context), attached_(budget != nullptr) {
    if (attached_) context_->arena().SetBudget(budget);
  }
  ArenaBudgetScope(const ArenaBudgetScope&) = delete;
  ArenaBudgetScope& operator=(const ArenaBudgetScope&) = delete;
  ~ArenaBudgetScope() {
    if (attached_) context_->arena().SetBudget(nullptr);
  }

 private:
  MatchContext* context_;
  bool attached_;
};

}  // namespace

MatchResult DafMatch(const Graph& query, const Graph& data,
                     const MatchOptions& options) {
  MatchContext context;
  return DafMatch(query, data, options, &context);
}

MatchResult DafMatch(const Graph& query, const Graph& data,
                     const MatchOptions& options, MatchContext* context) {
  MatchResult result;
  if (query.NumVertices() == 0) {
    result.ok = false;
    result.error = "empty query graph";
    return result;
  }

  obs::SearchProfile* profile = options.profile;
  if (profile != nullptr) profile->Reset();
  // The arena epoch of this run: invalidates the previous run's CS/weights.
  context->arena().Reset();
  MemoryBudget* budget = options.memory_budget;
  // Charges the warm arena's retained capacity up front and every block
  // acquired during the run; detached on all return paths below.
  ArenaBudgetScope budget_scope(context, budget);

  Deadline deadline(options.time_limit_ms);
  const StopCondition stop(options.time_limit_ms > 0 ? &deadline : nullptr,
                           options.cancel, budget);
  Stopwatch preprocess_timer;
  Stopwatch stage_timer;
  QueryDag dag = QueryDag::Build(query, data);
  if (profile != nullptr) {
    profile->dag_build_ms = stage_timer.ElapsedMs();
    stage_timer.Restart();
  }
  CandidateSpace::Options cs_options;
  cs_options.refinement_steps = options.refinement_steps;
  cs_options.use_nlf_filter = options.use_nlf_filter;
  cs_options.use_mnd_filter = options.use_mnd_filter;
  cs_options.injective = options.injective;
  cs_options.profile = profile != nullptr ? &profile->cs : nullptr;
  cs_options.stop = stop.armed() ? &stop : nullptr;
  cs_options.budget = budget;
  CandidateSpace cs = CandidateSpace::Build(
      query, dag, data, cs_options, &context->arena(), &context->cs_scratch());
  if (profile != nullptr) profile->cs_build_ms = stage_timer.ElapsedMs();
  result.cs_candidates = cs.TotalCandidates();
  result.cs_edges = cs.TotalEdges();

  if (cs.interrupted()) {
    // The stop predicate fired mid-CS-build: report which source without
    // mistaking the placeholder's empty candidate sets for a negativity
    // certificate.
    result.timed_out = cs.interrupt_cause() == StopCause::kDeadline;
    result.cancelled = cs.interrupt_cause() == StopCause::kCancel;
    result.resource_exhausted =
        cs.interrupt_cause() == StopCause::kMemoryExhausted;
    result.preprocess_ms = preprocess_timer.ElapsedMs();
    FillMemoryProfile(profile, *context, budget);
    return result;
  }

  if (budget == nullptr || !budget->exhausted()) {
    for (uint32_t u = 0; u < query.NumVertices(); ++u) {
      if (cs.NumCandidates(u) == 0) {
        // The CS certifies negativity: no search needed (Appendix A.3).
        // Skipped entirely when the budget latched between polls: an
        // exhausted run must never claim a certificate.
        result.cs_certified_negative = true;
        result.preprocess_ms = preprocess_timer.ElapsedMs();
        FillMemoryProfile(profile, *context, budget);
        return result;
      }
    }
  }

  if (StopCause cause = stop.Check(); cause != StopCause::kNone) {
    // The budget was consumed (or the run cancelled) during preprocessing;
    // report it with populated timers instead of entering a doomed search.
    result.timed_out = cause == StopCause::kDeadline;
    result.cancelled = cause == StopCause::kCancel;
    result.resource_exhausted = cause == StopCause::kMemoryExhausted;
    result.preprocess_ms = preprocess_timer.ElapsedMs();
    FillMemoryProfile(profile, *context, budget);
    return result;
  }

  WeightArray weights;
  if (options.order == MatchOrder::kPathSize) {
    stage_timer.Restart();
    weights = WeightArray::Compute(dag, cs, &context->arena());
    if (profile != nullptr) profile->weights_ms = stage_timer.ElapsedMs();
  }
  result.preprocess_ms = preprocess_timer.ElapsedMs();

  Stopwatch search_timer;
  Backtracker backtracker(query, dag, cs,
                          options.order == MatchOrder::kPathSize ? &weights
                                                                 : nullptr,
                          data.NumVertices(), &context->backtrack_scratch(0));
  BacktrackOptions bt;
  bt.order = options.order;
  bt.use_failing_sets = options.use_failing_sets;
  bt.leaf_decomposition = options.leaf_decomposition;
  bt.limit = options.limit;
  bt.injective = options.injective;
  bt.deadline = options.time_limit_ms > 0 ? &deadline : nullptr;
  bt.cancel = options.cancel;
  bt.budget = budget;
  bt.equivalence = options.equivalence;
  bt.callback = options.callback;
  bt.profile = profile != nullptr ? &profile->backtrack : nullptr;
  bt.progress = options.progress;
  bt.progress_interval_ms = options.progress_interval_ms;
  BacktrackStats stats = backtracker.Run(bt);
  result.search_ms = search_timer.ElapsedMs();
  if (profile != nullptr) profile->search_ms = result.search_ms;
  FillMemoryProfile(profile, *context, budget);

  result.embeddings = stats.embeddings;
  result.recursive_calls = stats.recursive_calls;
  result.limit_reached = stats.limit_reached || stats.callback_stopped;
  result.timed_out = stats.timed_out;
  result.cancelled = stats.cancelled;
  result.resource_exhausted = stats.resource_exhausted;
  if (budget != nullptr && budget->exhausted()) {
    // The budget may latch between the search's sampled polls and its last
    // return; report exhaustion whenever the flag is up so the outcome is
    // deterministic for a given schedule.
    result.resource_exhausted = true;
  }
  return result;
}

uint64_t CountAutomorphisms(const Graph& g) {
  MatchOptions options;
  options.limit = 0;
  MatchResult result = DafMatch(g, g, options);
  return result.ok ? result.embeddings : 0;
}

}  // namespace daf

#include "daf/weights.h"

#include <algorithm>
#include <limits>

namespace daf {

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    return std::numeric_limits<uint64_t>::max();
  }
  return sum;
}

}  // namespace

WeightArray WeightArray::Compute(const QueryDag& dag,
                                 const CandidateSpace& cs, Arena* arena) {
  WeightArray w;
  const uint32_t n = dag.NumVertices();
  const std::span<const uint64_t> offsets = cs.CandidateOffsets();
  w.offsets_ = offsets.data();
  const size_t total = cs.TotalCandidates();
  uint64_t* flat;
  if (arena != nullptr) {
    flat = arena->AllocateArray<uint64_t>(total);
  } else {
    w.own_flat_.resize(total);
    flat = w.own_flat_.data();
  }
  w.flat_ = flat;
  const std::vector<VertexId>& topo = dag.TopologicalOrder();
  // Bottom-up: children before parents.
  for (uint32_t pos = n; pos-- > 0;) {
    VertexId u = topo[pos];
    const uint32_t num_cand = cs.NumCandidates(u);
    uint64_t* wu = flat + offsets[u];
    std::fill(wu, wu + num_cand, uint64_t{1});
    bool first_child = true;
    const std::vector<VertexId>& children = dag.Children(u);
    for (uint32_t cpos = 0; cpos < children.size(); ++cpos) {
      VertexId c = children[cpos];
      if (dag.Parents(c).size() != 1) continue;  // not a tree-like child
      const uint64_t* wc = flat + offsets[c];
      uint32_t edge_id = dag.ChildEdgeId(u, cpos);
      for (uint32_t iv = 0; iv < num_cand; ++iv) {
        uint64_t sum = 0;
        for (uint32_t ic : cs.EdgeNeighbors(edge_id, iv)) {
          sum = SaturatingAdd(sum, wc[ic]);
        }
        wu[iv] = first_child ? sum : std::min(wu[iv], sum);
      }
      first_child = false;
    }
  }
  return w;
}

}  // namespace daf

#include "daf/steal.h"

#include "util/timer.h"

namespace daf {

StealScheduler::StealScheduler(uint32_t num_workers, uint32_t split_threshold,
                               std::vector<uint32_t> worker_sockets)
    : slots_(num_workers == 0 ? 1 : num_workers),
      split_threshold_(split_threshold == 0 ? 1 : split_threshold) {
  const uint32_t n = num_workers == 0 ? 1 : num_workers;
  if (worker_sockets.size() != n) worker_sockets.assign(n, 0);
  steal_order_.resize(n);
  num_local_.resize(n);
  for (uint32_t thief = 0; thief < n; ++thief) {
    // Ring order starting after the thief, partitioned into same-socket
    // victims first: a cheap static approximation of NUMA distance that
    // keeps the plain ring when everyone shares a socket.
    std::vector<uint32_t>& order = steal_order_[thief];
    order.reserve(n - 1);
    for (uint32_t offset = 1; offset < n; ++offset) {
      const uint32_t victim = (thief + offset) % n;
      if (worker_sockets[victim] == worker_sockets[thief]) {
        order.push_back(victim);
      }
    }
    num_local_[thief] = static_cast<uint32_t>(order.size());
    for (uint32_t offset = 1; offset < n; ++offset) {
      const uint32_t victim = (thief + offset) % n;
      if (worker_sockets[victim] != worker_sockets[thief]) {
        order.push_back(victim);
      }
    }
  }
}

void StealScheduler::Seed(SubtreeTask task) {
  {
    std::lock_guard<std::mutex> lock(slots_[0].mutex);
    slots_[0].deque.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
}

void StealScheduler::Donate(uint32_t worker, SubtreeTask task) {
  WorkerSlot& slot = slots_[worker];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.deque.push_back(std::move(task));
    ++slot.stats.donations;
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Serialize against a waiter that checked pending_ and is about to
  // sleep: taking the sleep mutex (even briefly) before notifying closes
  // the missed-wakeup window.
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  sleep_cv_.notify_one();
}

bool StealScheduler::TryPopOwn(uint32_t worker, SubtreeTask* out) {
  WorkerSlot& slot = slots_[worker];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.deque.empty()) return false;
  // Newest first: the most recently donated range shares the most prefix
  // state with what this worker just computed.
  *out = std::move(slot.deque.back());
  slot.deque.pop_back();
  return true;
}

bool StealScheduler::TrySteal(uint32_t thief, SubtreeTask* out) {
  const std::vector<uint32_t>& order = steal_order_[thief];
  for (size_t x = 0; x < order.size(); ++x) {
    WorkerSlot& victim = slots_[order[x]];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.deque.empty()) continue;
    // Oldest first: the earliest donation came from the shallowest frame,
    // i.e. the largest pending piece of the victim's subtree.
    *out = std::move(victim.deque.front());
    victim.deque.pop_front();
    StealWorkerStats& stats = slots_[thief].stats;
    ++stats.steals;
    if (x < num_local_[thief]) {
      ++stats.local_steals;
    } else {
      ++stats.remote_steals;
    }
    return true;
  }
  return false;
}

std::optional<SubtreeTask> StealScheduler::GetTask(uint32_t worker) {
  WorkerSlot& slot = slots_[worker];
  while (true) {
    if (stop_.load(std::memory_order_acquire)) return std::nullopt;
    SubtreeTask task;
    if (TryPopOwn(worker, &task) ||
        (pending_.load(std::memory_order_acquire) > 0 &&
         TrySteal(worker, &task))) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      ++slot.stats.tasks_executed;
      return task;
    }
    Stopwatch idle_timer;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    idle_.fetch_add(1, std::memory_order_release);
    if (idle_.load(std::memory_order_relaxed) == num_workers() &&
        pending_.load(std::memory_order_acquire) == 0) {
      // Every worker is parked and no deque holds work: nobody can produce
      // more tasks, so the run is complete.
      done_ = true;
      idle_.fetch_sub(1, std::memory_order_relaxed);
      slot.stats.idle_ms += idle_timer.ElapsedMs();
      sleep_cv_.notify_all();
      return std::nullopt;
    }
    sleep_cv_.wait(lock, [&] {
      return done_ || stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    idle_.fetch_sub(1, std::memory_order_relaxed);
    slot.stats.idle_ms += idle_timer.ElapsedMs();
    if (done_) return std::nullopt;
  }
}

void StealScheduler::RequestStop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  sleep_cv_.notify_all();
}

}  // namespace daf

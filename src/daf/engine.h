#ifndef DAF_DAF_ENGINE_H_
#define DAF_DAF_ENGINE_H_

#include <cstdint>
#include <string>

#include "daf/backtrack.h"
#include "daf/match_context.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace daf {

/// Options for a full DAF match (Algorithm 1: BuildDAG + BuildCS +
/// Backtrack).
struct MatchOptions {
  /// Adaptive matching order; kPathSize is the paper's final DAF.
  MatchOrder order = MatchOrder::kPathSize;
  /// Failing-set pruning (off = the paper's DA variant).
  bool use_failing_sets = true;
  /// Defer degree-one query vertices to the end of the matching order.
  bool leaf_decomposition = true;
  /// Stop after this many embeddings (the paper uses k = 10^5); 0 = all.
  uint64_t limit = 0;
  /// Wall-clock limit covering preprocessing + search; 0 = none.
  uint64_t time_limit_ms = 0;
  /// Cooperative cancellation (not owned): polled together with the
  /// deadline through one StopCondition in both the CS build loops and the
  /// backtracker, so a Cancel() from another thread stops a running match
  /// within a few thousand node expansions. A cancelled run reports
  /// `MatchResult::cancelled` with partial counts; see util/stop.h.
  const CancelToken* cancel = nullptr;
  /// Optional memory budget (not owned): the context arena and the CS build
  /// staging buffers charge it as they grow, and its `exhausted()` flag is
  /// polled through the same StopCondition as deadline/cancel. An exhausted
  /// run stops cooperatively and reports `MatchResult::resource_exhausted`
  /// with exact partial counts — never a certified-negative claim. The arena
  /// is detached from the budget before DafMatch returns, so a stack-local
  /// budget is safe. See docs/ROBUSTNESS.md.
  MemoryBudget* memory_budget = nullptr;
  /// Number of DAG-graph DP passes when building the CS (paper: 3).
  int refinement_steps = 3;
  /// CS local filters (ablation knobs; the paper has both on).
  bool use_nlf_filter = true;
  bool use_mnd_filter = true;
  /// When false, enumerates graph *homomorphisms* (injectivity dropped)
  /// instead of embeddings — the mapping class of Section 2 that weak
  /// embeddings are built from.
  bool injective = true;
  /// Data-vertex equivalence for DAF-Boost; null disables boosting.
  const VertexEquivalence* equivalence = nullptr;
  /// How ParallelDafMatch distributes work (ignored by single-threaded
  /// DafMatch). kWorkStealing splits subtree candidate ranges on demand;
  /// kRootCursor is the paper's Appendix A.4 root-partitioning baseline.
  ParallelStrategy parallel_strategy = ParallelStrategy::kWorkStealing;
  /// Minimum unclaimed candidates a frame needs before it may be split for
  /// donation (kWorkStealing only; clamped to >= 1). 1 forces maximal
  /// splitting — the stress-test configuration.
  uint32_t split_threshold = 8;
  /// Pin parallel workers to cpus (socket-major, physical cores first; see
  /// util/topo.h) and make the steal sweep prefer same-socket victims.
  /// No-op for single-threaded runs and on single-cpu hosts.
  bool pin_workers = false;
  /// Optional per-embedding callback.
  EmbeddingCallback callback;
  /// Opt-in search profile (not owned): stage timers, CS prune counts,
  /// backtrack prune breakdowns, depth histogram. Reset by the run it is
  /// attached to. Null (the default) disables all instrumentation; results
  /// are then bit-identical to an unprofiled run. See obs/metrics.h and
  /// docs/OBSERVABILITY.md.
  obs::SearchProfile* profile = nullptr;
  /// Optional sampled progress hook for long searches (embeddings/sec
  /// snapshots at most once per `progress_interval_ms`; piggybacks on the
  /// deadline-check cadence, so it is safe on hot paths).
  obs::ProgressFn progress;
  double progress_interval_ms = 1000;
};

/// Result of a full DAF match.
struct MatchResult {
  bool ok = true;          // false => `error` explains why nothing ran
  std::string error;
  uint64_t embeddings = 0;
  uint64_t recursive_calls = 0;
  bool limit_reached = false;
  bool timed_out = false;
  /// True when MatchOptions::cancel stopped the run (during preprocessing
  /// or mid-search); embeddings/recursive_calls then hold partial counts,
  /// exactly like the deadline path.
  bool cancelled = false;
  /// True when MatchOptions::memory_budget latched exhausted during the run
  /// (over-limit charge, external MarkExhausted, or an injected allocation
  /// fault). Counts are valid partial counts, like the deadline/cancel
  /// paths; the run is never reported as certified-negative.
  bool resource_exhausted = false;
  /// True when some candidate set was empty after CS construction, so the
  /// query was proven negative without any backtracking (Appendix A.3).
  bool cs_certified_negative = false;
  /// Stage wall times. Both are populated on *every* path, including
  /// early exits (cs_certified_negative, a timeout during preprocessing,
  /// or an input error): search_ms is 0 when the search never ran.
  double preprocess_ms = 0;  // BuildDAG + BuildCS + weight array
  double search_ms = 0;      // backtracking
  uint64_t cs_candidates = 0;  // Σ_u |C(u)| (Figure 9 metric)
  uint64_t cs_edges = 0;

  /// True iff the search ran to completion (all embeddings enumerated):
  /// not stopped by the limit, the deadline, a cancel request, or memory
  /// exhaustion.
  bool Complete() const {
    return ok && !limit_reached && !timed_out && !cancelled &&
           !resource_exhausted;
  }
};

/// Runs DAF end-to-end on (query, data) using `context` for all per-query
/// memory: the flat CS and weight arrays come out of its bump arena, and
/// the backtracker's tables out of its reusable scratch. Repeated calls
/// with the same context reuse that memory — the second and every later
/// call on a warmed context performs zero arena block allocations (see
/// MatchContext and SearchProfile::memory). `context` must be non-null and
/// must not serve two concurrent calls. The query must be non-empty;
/// disconnected queries are supported via per-component query DAGs (an
/// extension over the paper, which assumes connected graphs).
MatchResult DafMatch(const Graph& query, const Graph& data,
                     const MatchOptions& options, MatchContext* context);

/// Convenience overload creating a fresh context per call (one-shot
/// matching; long-lived callers should hold a MatchContext instead).
MatchResult DafMatch(const Graph& query, const Graph& data,
                     const MatchOptions& options = {});

/// Number of automorphisms of g (embeddings of g in itself), computed by
/// DAF. Useful to convert embedding counts into unordered occurrence
/// counts: occurrences = embeddings / automorphisms.
uint64_t CountAutomorphisms(const Graph& g);

}  // namespace daf

#endif  // DAF_DAF_ENGINE_H_

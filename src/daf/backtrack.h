#ifndef DAF_DAF_BACKTRACK_H_
#define DAF_DAF_BACKTRACK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "daf/boost.h"
#include "daf/candidate_space.h"
#include "daf/match_context.h"
#include "daf/query_dag.h"
#include "daf/weights.h"
#include "graph/embedding.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/stop.h"
#include "util/timer.h"

namespace daf {

class StealScheduler;  // daf/steal.h
struct SubtreeTask;    // daf/steal.h

/// Which adaptive matching order drives extendable-vertex selection
/// (Section 5.2). The paper's final algorithm DAF uses kPathSize.
enum class MatchOrder {
  kPathSize,       // min w_M(u) over extendable u (weight array estimate)
  kCandidateSize,  // min |C_M(u)| over extendable u
};

/// How ParallelDafMatch distributes the search across workers.
enum class ParallelStrategy {
  /// Splittable subtree tasks on per-worker deques with stealing: idle
  /// workers take the shallowest pending candidate range of a busy victim,
  /// so one skewed root subtree no longer serializes the run.
  kWorkStealing,
  /// The paper's Appendix A.4 scheme: an atomic cursor over the root's
  /// candidates only (kept as an ablation/regression baseline).
  kRootCursor,
};

/// Options controlling one backtracking run.
struct BacktrackOptions {
  MatchOrder order = MatchOrder::kPathSize;
  /// Enables failing-set pruning (Section 6). Off = the paper's "DA".
  bool use_failing_sets = true;
  /// When false, enumerates *homomorphisms* instead of embeddings: the
  /// injectivity requirement (condition (1) of Section 2) is dropped, so
  /// distinct query vertices may map to one data vertex and conflict-class
  /// failures disappear. Label and edge conditions still apply.
  bool injective = true;
  /// Defers degree-one query vertices to the end of the matching order
  /// (the leaf decomposition strategy adopted from CFL-Match, Section 3).
  bool leaf_decomposition = true;
  /// Stop after this many embeddings; 0 = enumerate all.
  uint64_t limit = 0;
  /// Optional wall-clock cutoff (not owned).
  const Deadline* deadline = nullptr;
  /// Optional cooperative cancellation (not owned). All stop sources are
  /// folded into one StopCondition polled every 4096 recursive calls, so a
  /// cancel request stops a running search within a few thousand node
  /// expansions (well under the 50 ms serving budget; see util/stop.h).
  const CancelToken* cancel = nullptr;
  /// Optional memory budget (not owned): polled through the same
  /// StopCondition; a latched `exhausted()` stops the search with
  /// `BacktrackStats::resource_exhausted` and valid partial counts.
  const MemoryBudget* budget = nullptr;
  /// Shared embedding counter for multi-threaded runs (not owned). When
  /// set, `limit` applies to the shared total, as in Appendix A.4.
  std::atomic<uint64_t>* shared_count = nullptr;
  /// Cursor over the root's candidates for multi-threaded kRootCursor runs
  /// (not owned). When null the backtracker scans all root candidates.
  std::atomic<uint32_t>* root_cursor = nullptr;
  /// Work-stealing scheduler for multi-threaded kWorkStealing runs (not
  /// owned; mutually exclusive with root_cursor). When set, drive the
  /// search through RunWorker instead of Run: the backtracker executes
  /// SubtreeTasks from the scheduler and, whenever another worker is
  /// hungry, donates the shallowest splittable candidate range of its own
  /// open frames.
  StealScheduler* scheduler = nullptr;
  /// Minimum number of unclaimed sibling candidates an open frame needs to
  /// be splittable (clamped to >= 1). 1 donates maximally eagerly — the
  /// forced-steal stress configuration; larger values avoid shipping
  /// near-empty ranges.
  uint32_t split_threshold = 8;
  /// Data-vertex equivalence classes; when set, enables the DAF-Boost
  /// failure-skipping rule (Appendix A.5). Not owned.
  const VertexEquivalence* equivalence = nullptr;
  /// Optional per-embedding callback.
  EmbeddingCallback callback;
  /// Optional per-cause prune counters and depth histogram (not owned).
  /// Reset by Run; null disables all profile instrumentation.
  obs::BacktrackProfile* profile = nullptr;
  /// Optional sampled progress hook: invoked at most once per
  /// `progress_interval_ms`, checked on the same 4096-call countdown as the
  /// deadline, so the disabled path costs nothing extra.
  obs::ProgressFn progress;
  double progress_interval_ms = 1000;
  /// Worker index stamped into ProgressSnapshot::thread.
  uint32_t thread_id = 0;
};

/// Outcome counters of one backtracking run.
struct BacktrackStats {
  uint64_t embeddings = 0;       // embeddings found by this backtracker
  uint64_t recursive_calls = 0;  // examined search-tree nodes
  bool limit_reached = false;
  bool timed_out = false;
  bool cancelled = false;
  /// The memory budget latched exhausted (or a simulated donation-allocation
  /// fault fired) mid-search; counts above are valid partial counts.
  bool resource_exhausted = false;
  bool callback_stopped = false;
};

/// The backtracking engine of Algorithm 2: finds all embeddings of q in the
/// CS structure (never touching the data graph, by Theorem 4.1), following a
/// DAG ordering with an adaptive matching order, and pruning redundant
/// siblings via failing sets (Lemma 6.1).
///
/// A Backtracker holds per-run scratch state sized to (query, data); it is
/// single-threaded, but independent instances may run concurrently over a
/// shared CandidateSpace (see parallel.h). The scratch may be external
/// (BacktrackScratch, usually handed out by a MatchContext) so that
/// repeated searches reuse its buffers instead of reallocating.
class Backtracker {
 public:
  /// `weights` may be null iff the run uses MatchOrder::kCandidateSize.
  /// `data_num_vertices` sizes the visited table. `scratch` (optional, not
  /// owned) provides the per-run buffers; one scratch serves one
  /// Backtracker at a time. All referenced objects must outlive the
  /// Backtracker.
  Backtracker(const Graph& query, const QueryDag& dag,
              const CandidateSpace& cs, const WeightArray* weights,
              uint32_t data_num_vertices,
              BacktrackScratch* scratch = nullptr);

  Backtracker(const Backtracker&) = delete;
  Backtracker& operator=(const Backtracker&) = delete;

  /// Runs the search; reentrant (each call resets all scratch state).
  BacktrackStats Run(const BacktrackOptions& options);

  /// Runs one worker of a work-stealing parallel search
  /// (`options.scheduler` must be set): executes SubtreeTasks from the
  /// scheduler — replaying each task's prefix into this worker's scratch,
  /// then enumerating its candidate range, donating sub-ranges on demand —
  /// until the run completes or stops. Reentrant like Run.
  BacktrackStats RunWorker(const BacktrackOptions& options);

 private:
  void InitRun(const BacktrackOptions& options);
  void SeedRoots();
  void Recurse(uint32_t depth);
  /// The sibling loop of Algorithm 2 over candidates [begin, end) of
  /// extendable vertex u at `depth`: conflict/boost/failing-set handling,
  /// plus (work-stealing) frame tracking and range donation.
  void EnumerateCandidates(VertexId u, uint32_t depth, uint32_t begin,
                           uint32_t end);
  /// Installs a task's prefix, enumerates its range, and unwinds.
  void ExecuteTask(const SubtreeTask& task);
  /// Splits the shallowest splittable open frame and publishes the upper
  /// half of its unclaimed range to this worker's deque.
  void TryDonate();
  VertexId SelectExtendable() const;
  void ComputeExtendableCandidates(VertexId u);
  void Map(VertexId u, uint32_t cand_idx);
  void Unmap(VertexId u);
  bool ShouldStop();
  void ReportEmbedding();
  void ReportProgress();
  /// Adds this run's kernel-selection counters to profile_ (when set).
  void FlushIntersectStats();
  /// Records one examined search-tree node at `depth` (profiling only).
  void CountNode(uint32_t depth) {
    ++profile_->depth_histogram[depth];
    if (depth > profile_->peak_depth) profile_->peak_depth = depth;
  }

  static constexpr uint32_t kNotMapped = static_cast<uint32_t>(-1);

  const Graph& query_;
  const QueryDag& dag_;
  const CandidateSpace& cs_;
  const WeightArray* weights_;
  const uint32_t n_;

  BacktrackOptions options_;
  BacktrackStats stats_;
  bool stop_ = false;

  // Per-run buffers live in *s_ (external when provided, else the inline
  // fallback); the references below alias its fields so the search code
  // reads like the algorithm.
  BacktrackScratch inline_scratch_;
  BacktrackScratch* const s_;
  // Per query vertex.
  std::vector<uint32_t>& mapped_cand_idx_;
  std::vector<VertexId>& mapped_vertex_;
  std::vector<uint32_t>& num_mapped_parents_;
  std::vector<std::vector<uint32_t>>& extendable_cands_;
  std::vector<uint64_t>& extendable_weight_;
  std::vector<bool>& is_leaf_;
  // Per data vertex: query vertex currently mapped to it, or kInvalidVertex.
  std::vector<VertexId>& mapped_by_;
  // LIFO list of vertices that are (or were, while mapped) extendable.
  std::vector<VertexId>& extendable_list_;
  // Failing-set machinery, one slot per recursion depth.
  std::vector<Bitset>& fs_stack_;
  std::vector<bool>& fs_empty_;
  std::vector<Bitset>& fs_union_;
  // DAF-Boost: per-depth record of candidate classes that failed.
  std::vector<std::vector<FailedClass>>& failed_classes_;
  // Scratch of the k-way candidate-set intersection (input views + kernel
  // buffers; see util/intersect.h).
  std::vector<KWayList>& intersect_inputs_;
  KWayScratch& intersect_scratch_;
  std::vector<VertexId>& embedding_buffer_;
  // Kernel-selection counters of this run; flushed into profile_ when set.
  IntersectStats intersect_stats_;
  // Work-stealing bookkeeping (only touched when scheduler_ is set).
  std::vector<VertexId>& map_stack_;
  std::vector<SearchFrame>& frames_;
  StealScheduler* scheduler_ = nullptr;
  // Deadline + cancellation folded into one sampled predicate (util/stop.h);
  // stop_armed_ caches whether the countdown needs to run at all.
  StopCondition stop_condition_;
  bool stop_armed_ = false;
  uint64_t deadline_check_countdown_ = 0;
  // Observability (all inert when options_.profile / .progress are unset).
  obs::BacktrackProfile* profile_ = nullptr;
  Stopwatch run_timer_;
  double next_progress_ms_ = 0;
};

}  // namespace daf

#endif  // DAF_DAF_BACKTRACK_H_

#include "graph/query_extract.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace daf {

std::optional<ExtractedQuery> ExtractRandomWalkQuery(const Graph& g,
                                                     uint32_t num_vertices,
                                                     double target_avg_deg,
                                                     Rng& rng) {
  if (num_vertices == 0 || g.NumVertices() < num_vertices) {
    return std::nullopt;
  }
  constexpr int kRestarts = 16;
  for (int attempt = 0; attempt < kRestarts; ++attempt) {
    VertexId start = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (g.degree(start) == 0 && num_vertices > 1) continue;

    std::unordered_map<VertexId, VertexId> data_to_query;
    std::vector<VertexId> witness;
    std::vector<Edge> walk_edges;  // in query-vertex ids
    data_to_query.reserve(num_vertices * 2);
    witness.reserve(num_vertices);

    data_to_query.emplace(start, 0);
    witness.push_back(start);

    VertexId current = start;
    // The walk is bounded so a trap (e.g., a small dense region) triggers a
    // restart instead of spinning forever.
    uint64_t max_steps = 200ull * num_vertices * num_vertices + 1000;
    while (witness.size() < num_vertices && max_steps-- > 0) {
      std::span<const VertexId> nbrs = g.Neighbors(current);
      if (nbrs.empty()) break;
      VertexId next = nbrs[rng.UniformInt(nbrs.size())];
      auto [it, inserted] = data_to_query.emplace(
          next, static_cast<VertexId>(witness.size()));
      if (inserted) {
        witness.push_back(next);
        walk_edges.emplace_back(data_to_query[current], it->second);
      }
      current = next;
    }
    if (witness.size() < num_vertices) continue;

    // Gather all induced (non-walk) edges among the visited vertices.
    std::vector<Edge> extra_edges;
    for (uint32_t qu = 0; qu < num_vertices; ++qu) {
      for (VertexId data_nbr : g.Neighbors(witness[qu])) {
        auto it = data_to_query.find(data_nbr);
        if (it != data_to_query.end() && it->second > qu) {
          extra_edges.emplace_back(qu, it->second);
        }
      }
    }
    // Walk edges are a subset of induced edges; remove them from extras.
    std::sort(walk_edges.begin(), walk_edges.end());
    std::vector<Edge> normalized_walk;
    normalized_walk.reserve(walk_edges.size());
    for (Edge e : walk_edges) {
      normalized_walk.emplace_back(std::min(e.first, e.second),
                                   std::max(e.first, e.second));
    }
    std::sort(normalized_walk.begin(), normalized_walk.end());
    normalized_walk.erase(
        std::unique(normalized_walk.begin(), normalized_walk.end()),
        normalized_walk.end());
    std::vector<Edge> candidates;
    for (const Edge& e : extra_edges) {
      if (!std::binary_search(normalized_walk.begin(), normalized_walk.end(),
                              e)) {
        candidates.push_back(e);
      }
    }
    rng.Shuffle(candidates);

    std::vector<Edge> chosen = normalized_walk;
    if (target_avg_deg <= 0) {
      chosen.insert(chosen.end(), candidates.begin(), candidates.end());
    } else {
      const size_t target_edges = static_cast<size_t>(
          std::ceil(target_avg_deg * num_vertices / 2.0));
      for (const Edge& e : candidates) {
        if (chosen.size() >= target_edges) break;
        chosen.push_back(e);
      }
    }

    std::vector<Label> labels(num_vertices);
    for (uint32_t qu = 0; qu < num_vertices; ++qu) {
      labels[qu] = g.original_label(g.label(witness[qu]));
    }
    // Edge labels carry over from the data graph, so the witness stays an
    // embedding under edge-label-preserving semantics too.
    std::vector<Label> edge_labels;
    if (g.HasNontrivialEdgeLabels()) {
      edge_labels.reserve(chosen.size());
      for (const Edge& e : chosen) {
        edge_labels.push_back(
            g.EdgeLabelBetween(witness[e.first], witness[e.second]));
      }
    }
    ExtractedQuery result;
    result.query =
        Graph::FromLabeledEdges(std::move(labels), chosen, edge_labels);
    result.witness = std::move(witness);
    return result;
  }
  return std::nullopt;
}

std::vector<Label> MapQueryLabels(const Graph& query, const Graph& data) {
  std::vector<Label> mapping(query.NumVertices());
  for (uint32_t u = 0; u < query.NumVertices(); ++u) {
    Label original = query.original_label(query.label(u));
    mapping[u] = kNoSuchLabel;
    // original_labels of `data` are sorted ascending by construction.
    uint32_t lo = 0;
    uint32_t hi = data.NumLabels();
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (data.original_label(mid) < original) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < data.NumLabels() && data.original_label(lo) == original) {
      mapping[u] = lo;
    }
  }
  return mapping;
}

}  // namespace daf

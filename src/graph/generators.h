#ifndef DAF_GRAPH_GENERATORS_H_
#define DAF_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace daf {

/// Assigns each of `n` vertices a label in [0, num_labels) with Zipf-like
/// frequencies (exponent `s`); s = 0 gives the uniform distribution. The
/// sensitivity analysis of the paper assigns labels "according to
/// power-laws" (Section 7.2).
std::vector<Label> ZipfLabels(uint32_t n, uint32_t num_labels, double s,
                              Rng& rng);

/// `m` distinct uniform random edges over `n` vertices (Erdős–Rényi G(n, m)).
std::vector<Edge> ErdosRenyiEdges(uint32_t n, uint64_t m, Rng& rng);

/// Approximately `m` edges over `n` vertices with a power-law (preferential
/// attachment) degree distribution; duplicates removed, then topped up with
/// preferential edges until exactly `m` distinct edges exist (or the graph
/// is complete).
std::vector<Edge> PowerLawEdges(uint32_t n, uint64_t m, Rng& rng);

/// R-MAT edge generator (used for the Twitter stand-in, Appendix A.1):
/// 2^scale vertices, `m` distinct edges, recursive quadrant probabilities
/// (a, b, c, implicit d = 1-a-b-c).
std::vector<Edge> RmatEdges(uint32_t scale, uint64_t m, double a, double b,
                            double c, Rng& rng);

/// Adds the minimum number of random edges required to make the graph over
/// `n` vertices with edge set `edges` connected (one edge per extra
/// component). The paper assumes connected data graphs.
void ConnectComponents(uint32_t n, std::vector<Edge>* edges, Rng& rng);

}  // namespace daf

#endif  // DAF_GRAPH_GENERATORS_H_

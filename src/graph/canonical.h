#ifndef DAF_GRAPH_CANONICAL_H_
#define DAF_GRAPH_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace daf {

/// The canonical form of a query graph: a relabeling-invariant key plus the
/// vertex permutation connecting the submitted graph to its canonical
/// representative.
///
/// Two graphs produce the same `key` (and an identical `canonical` graph)
/// iff they are isomorphic as vertex-labeled, edge-labeled graphs — the
/// exact equivalence under which a query's DAG and CandidateSpace can be
/// shared across submissions (labels are compared through original_label,
/// so the dense remapping Graph applies internally never leaks into the
/// key). This is what makes the key usable as a cross-query cache key: a
/// million relabeled resubmissions of one pattern all land on one entry.
struct CanonicalQuery {
  /// Relabeling-invariant encoding of the graph (vertex count, canonical
  /// label sequence, canonical adjacency with edge labels). Hashable and
  /// comparable as a flat word vector.
  std::vector<uint64_t> key;

  /// to_canonical[v] = the canonical position of submitted vertex v.
  std::vector<VertexId> to_canonical;

  /// from_canonical[p] = the submitted vertex at canonical position p
  /// (the inverse of to_canonical).
  std::vector<VertexId> from_canonical;

  /// True when the canonical search completed within its node budget.
  /// False marks the (pathological, regular-and-unlabeled) graphs where
  /// canonization was abandoned; the key is then NOT relabeling-invariant
  /// and the graph must be treated as uncacheable.
  bool complete = true;
};

/// Canonicalizes `g` by color refinement (vertex label + degree seeded,
/// iterated neighborhood signatures) followed by an individualization-
/// refinement search for the lexicographically smallest adjacency encoding.
/// Interchangeable "twin" vertices (identical closed/open neighborhoods,
/// e.g. clique members or star leaves) are pruned to one branch, so
/// automorphism-rich queries canonicalize in polynomial time. `max_leaves`
/// bounds the search on adversarial regular graphs; on overflow the result
/// is flagged `complete == false` (see CanonicalQuery::complete).
CanonicalQuery CanonicalizeQuery(const Graph& g, uint64_t max_leaves = 65536);

/// Rebuilds the canonical representative graph from a canonical form: the
/// graph whose vertex p carries the canonical labels/edges of position p.
/// Canonicalizing the result again yields the same key with the identity
/// permutation.
Graph BuildCanonicalGraph(const Graph& g, const CanonicalQuery& form);

/// Relabels `g`'s vertices by `perm` (perm[v] = new id of vertex v; must be
/// a permutation of 0..n-1). Labels and edges (including edge labels) move
/// with their vertices — the result is isomorphic to `g` by construction.
/// Test and bench helper for exercising relabeling invariance.
Graph PermuteVertices(const Graph& g, const std::vector<VertexId>& perm);

}  // namespace daf

#endif  // DAF_GRAPH_CANONICAL_H_

#include "graph/upscale.h"

#include <vector>

#include "graph/generators.h"

namespace daf {

Graph Upscale(const Graph& g, uint32_t factor, Rng& rng,
              double rewire_probability) {
  const uint32_t n = g.NumVertices();
  std::vector<Label> labels;
  labels.reserve(static_cast<size_t>(n) * factor);
  for (uint32_t c = 0; c < factor; ++c) {
    for (uint32_t v = 0; v < n; ++v) {
      labels.push_back(g.original_label(g.label(v)));
    }
  }
  std::vector<std::pair<Edge, Label>> original_edges = g.LabeledEdgeList();
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  edges.reserve(original_edges.size() * factor);
  edge_labels.reserve(original_edges.size() * factor);
  for (uint32_t c = 0; c < factor; ++c) {
    const uint64_t base = static_cast<uint64_t>(c) * n;
    for (const auto& [e, edge_label] : original_edges) {
      VertexId u = static_cast<VertexId>(base + e.first);
      VertexId v = static_cast<VertexId>(base + e.second);
      if (factor > 1 && rng.Bernoulli(rewire_probability)) {
        // Teleport one endpoint to its image in a random copy. The image has
        // the same label and the same local structure, so the degree and
        // label statistics are preserved.
        uint32_t target_copy = static_cast<uint32_t>(rng.UniformInt(factor));
        if (rng.Bernoulli(0.5)) {
          u = static_cast<VertexId>(
              static_cast<uint64_t>(target_copy) * n + e.first);
        } else {
          v = static_cast<VertexId>(
              static_cast<uint64_t>(target_copy) * n + e.second);
        }
      }
      edges.emplace_back(u, v);
      edge_labels.push_back(edge_label);
    }
  }
  ConnectComponents(n * factor, &edges, rng);
  edge_labels.resize(edges.size(), 0);  // bridge edges added above
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

}  // namespace daf

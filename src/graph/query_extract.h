#ifndef DAF_GRAPH_QUERY_EXTRACT_H_
#define DAF_GRAPH_QUERY_EXTRACT_H_

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace daf {

/// A query graph extracted from a data graph together with the witness
/// embedding it was extracted from (query vertex -> data vertex). The
/// witness guarantees the query has at least one embedding, which is how the
/// paper generates its positive query sets (Section 7, "Query Graphs").
struct ExtractedQuery {
  Graph query;
  std::vector<VertexId> witness;
};

/// Extracts a connected query graph with `num_vertices` vertices by the
/// paper's procedure: perform a random walk on the data graph until
/// `num_vertices` distinct vertices are visited, then keep all visited
/// vertices and a subset of the edges among them.
///
/// The subset always contains every edge the walk traversed (so the query is
/// connected) and is extended with random induced edges until the average
/// degree reaches `target_avg_deg`; pass `target_avg_deg <= 0` to keep all
/// induced edges. Labels of the query are the data graph's labels.
///
/// Returns std::nullopt if the data graph has fewer than `num_vertices`
/// vertices reachable from any sampled start (after a few restarts).
std::optional<ExtractedQuery> ExtractRandomWalkQuery(const Graph& g,
                                                     uint32_t num_vertices,
                                                     double target_avg_deg,
                                                     Rng& rng);

/// Maps every query vertex's label into the data graph's dense label space.
/// Labels that do not occur in the data graph map to `kNoSuchLabel` (such a
/// query vertex has an empty candidate set).
inline constexpr Label kNoSuchLabel = static_cast<Label>(-1);
std::vector<Label> MapQueryLabels(const Graph& query, const Graph& data);

}  // namespace daf

#endif  // DAF_GRAPH_QUERY_EXTRACT_H_

#include "graph/properties.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace daf {

uint32_t ConnectedComponents(const Graph& g,
                             std::vector<uint32_t>* component) {
  const uint32_t n = g.NumVertices();
  component->assign(n, static_cast<uint32_t>(-1));
  uint32_t next_id = 0;
  std::vector<VertexId> stack;
  for (uint32_t s = 0; s < n; ++s) {
    if ((*component)[s] != static_cast<uint32_t>(-1)) continue;
    stack.push_back(s);
    (*component)[s] = next_id;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.Neighbors(v)) {
        if ((*component)[u] == static_cast<uint32_t>(-1)) {
          (*component)[u] = next_id;
          stack.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return next_id;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  std::vector<uint32_t> component;
  return ConnectedComponents(g, &component) == 1;
}

std::vector<uint32_t> BfsLevels(const Graph& g, VertexId root) {
  std::vector<uint32_t> level(g.NumVertices(), kUnreachableLevel);
  std::queue<VertexId> queue;
  level[root] = 0;
  queue.push(root);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.Neighbors(v)) {
      if (level[u] == kUnreachableLevel) {
        level[u] = level[v] + 1;
        queue.push(u);
      }
    }
  }
  return level;
}

uint32_t Eccentricity(const Graph& g, VertexId root) {
  std::vector<uint32_t> level = BfsLevels(g, root);
  uint32_t ecc = 0;
  for (uint32_t l : level) {
    if (l != kUnreachableLevel) ecc = std::max(ecc, l);
  }
  return ecc;
}

uint32_t Diameter(const Graph& g) {
  uint32_t diameter = 0;
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    diameter = std::max(diameter, Eccentricity(g, v));
  }
  return diameter;
}

std::vector<bool> KCoreMembership(const Graph& g, uint32_t k) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<bool> in_core(n, true);
  std::vector<VertexId> worklist;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    if (degree[v] < k) {
      in_core[v] = false;
      worklist.push_back(v);
    }
  }
  while (!worklist.empty()) {
    VertexId v = worklist.back();
    worklist.pop_back();
    for (VertexId u : g.Neighbors(v)) {
      if (in_core[u] && --degree[u] < k) {
        in_core[u] = false;
        worklist.push_back(u);
      }
    }
  }
  return in_core;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  uint32_t max_degree = 0;
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  std::vector<uint64_t> histogram(max_degree + 1, 0);
  for (uint32_t v = 0; v < g.NumVertices(); ++v) ++histogram[g.degree(v)];
  return histogram;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  uint64_t closed = 0;  // each triangle counted once per corner (3 total)
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    auto neighbors = g.Neighbors(v);
    const uint64_t d = neighbors.size();
    wedges += d * (d - 1) / 2;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        if (g.HasEdge(neighbors[i], neighbors[j])) ++closed;
      }
    }
  }
  return wedges == 0 ? 0.0
                     : static_cast<double>(closed) /
                           static_cast<double>(wedges);
}

uint32_t Degeneracy(const Graph& g) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return 0;
  // Matula–Beck peeling with bucketed degrees: O(|V| + |E|).
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (uint32_t v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);
  uint32_t degeneracy = 0;
  uint32_t cursor = 0;
  for (uint32_t step = 0; step < n; ++step) {
    while (cursor <= max_degree && buckets[cursor].empty()) ++cursor;
    // The bucket may hold stale entries; skip them.
    while (cursor <= max_degree) {
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      VertexId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || degree[v] != cursor) continue;  // stale
      removed[v] = true;
      degeneracy = std::max(degeneracy, cursor);
      for (VertexId w : g.Neighbors(v)) {
        if (!removed[w] && degree[w] > 0) {
          --degree[w];
          buckets[degree[w]].push_back(w);
          if (degree[w] < cursor) cursor = degree[w];
        }
      }
      break;
    }
  }
  return degeneracy;
}

double LabelEntropy(const Graph& g) {
  const double n = g.NumVertices();
  if (n == 0) return 0;
  double entropy = 0;
  for (uint32_t l = 0; l < g.NumLabels(); ++l) {
    double p = g.LabelFrequency(l) / n;
    if (p > 0) entropy -= p * std::log2(p);
  }
  return entropy;
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats stats;
  stats.num_vertices = g.NumVertices();
  stats.num_edges = g.NumEdges();
  stats.num_labels = g.NumLabels();
  stats.avg_degree = g.AverageDegree();
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    stats.max_degree = std::max(stats.max_degree, g.degree(v));
  }
  stats.clustering = GlobalClusteringCoefficient(g);
  stats.degeneracy = Degeneracy(g);
  stats.label_entropy = LabelEntropy(g);
  stats.connected = IsConnected(g);
  return stats;
}

}  // namespace daf

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace daf {

namespace {

// Packs an undirected edge into a canonical 64-bit key for dedup.
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

std::vector<Label> ZipfLabels(uint32_t n, uint32_t num_labels, double s,
                              Rng& rng) {
  std::vector<double> weights(num_labels);
  for (uint32_t l = 0; l < num_labels; ++l) {
    weights[l] = 1.0 / std::pow(static_cast<double>(l + 1), s);
  }
  std::vector<Label> labels(n);
  // Guarantee every label occurs at least once when n >= num_labels so the
  // declared alphabet size is realized.
  uint32_t v = 0;
  if (n >= num_labels) {
    for (; v < num_labels; ++v) labels[v] = v;
  }
  for (; v < n; ++v) {
    labels[v] = static_cast<Label>(rng.WeightedIndex(weights));
  }
  rng.Shuffle(labels);
  return labels;
}

std::vector<Edge> ErdosRenyiEdges(uint32_t n, uint64_t m, Rng& rng) {
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  if (n < 2) return edges;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  edges.reserve(m);
  seen.reserve(m * 2);
  while (edges.size() < m) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<Edge> PowerLawEdges(uint32_t n, uint64_t m, Rng& rng) {
  // Holme–Kim model: preferential attachment interleaved with triad
  // formation (attach to a neighbor of the previous target). Real data
  // graphs (PPI, social, citation) are strongly clustered, and the paper's
  // random-walk query extraction relies on that clustering to find
  // non-sparse queries — plain preferential attachment would produce
  // near-tree neighborhoods whose induced subgraphs never reach
  // avg-deg > 3.
  std::vector<Edge> edges;
  if (n < 2) return edges;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  // `targets` holds one entry per endpoint, so sampling uniformly from it is
  // degree-proportional (the standard preferential-attachment trick).
  std::vector<VertexId> targets;
  targets.reserve(m * 2);
  std::vector<std::vector<VertexId>> adj(n);

  const uint32_t per_vertex =
      std::max<uint32_t>(1, static_cast<uint32_t>(m / std::max(1u, n)));
  constexpr double kTriadProbability = 0.7;
  edges.reserve(m);

  auto add_edge = [&](VertexId u, VertexId v) {
    if (u == v) return false;
    if (!seen.insert(EdgeKey(u, v)).second) return false;
    edges.emplace_back(u, v);
    targets.push_back(u);
    targets.push_back(v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    return true;
  };

  add_edge(0, 1);
  for (VertexId v = 2; v < n && edges.size() < m; ++v) {
    uint32_t added = 0;
    uint32_t attempts = 0;
    VertexId last_target = kInvalidVertex;
    while (added < per_vertex && edges.size() < m &&
           attempts < 4 * per_vertex + 32) {
      ++attempts;
      // Triad formation: attach to a neighbor of the previous target.
      if (last_target != kInvalidVertex && !adj[last_target].empty() &&
          rng.Bernoulli(kTriadProbability)) {
        VertexId w =
            adj[last_target][rng.UniformInt(adj[last_target].size())];
        if (add_edge(v, w)) {
          ++added;
          continue;
        }
      }
      VertexId u = targets[rng.UniformInt(targets.size())];
      if (add_edge(v, u)) {
        ++added;
        last_target = u;
      }
    }
    if (added == 0) {
      // Fall back to a uniform target so every vertex gets attached.
      add_edge(v, static_cast<VertexId>(rng.UniformInt(v)));
    }
  }
  // Top up to exactly m: close wedges around degree-biased pivots (keeps
  // the clustering high), falling back to preferential pairs.
  uint64_t stall = 0;
  while (edges.size() < m && stall < 64 * m + 1024) {
    bool added = false;
    VertexId pivot = targets[rng.UniformInt(targets.size())];
    if (adj[pivot].size() >= 2 && rng.Bernoulli(kTriadProbability)) {
      VertexId a = adj[pivot][rng.UniformInt(adj[pivot].size())];
      VertexId b = adj[pivot][rng.UniformInt(adj[pivot].size())];
      added = add_edge(a, b);
    } else {
      VertexId v = static_cast<VertexId>(rng.UniformInt(n));
      added = add_edge(pivot, v);
    }
    if (!added) ++stall;
  }
  // As a last resort (tiny dense graphs) fill uniformly.
  while (edges.size() < m) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    add_edge(u, v);
  }
  return edges;
}

std::vector<Edge> RmatEdges(uint32_t scale, uint64_t m, double a, double b,
                            double c, Rng& rng) {
  const uint32_t n = 1u << scale;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  uint64_t stall = 0;
  while (edges.size() < m && stall < 64 * m + 1024) {
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.UniformReal();
      // Small per-level noise avoids the degenerate striped structure of
      // noiseless R-MAT.
      double na = a * (0.95 + 0.1 * rng.UniformReal());
      double nb = b * (0.95 + 0.1 * rng.UniformReal());
      double nc = c * (0.95 + 0.1 * rng.UniformReal());
      double sum = na + nb + nc + (1 - a - b - c);
      na /= sum;
      nb /= sum;
      nc /= sum;
      u <<= 1;
      v <<= 1;
      if (r < na) {
        // top-left quadrant
      } else if (r < na + nb) {
        v |= 1;
      } else if (r < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) {
      ++stall;
      continue;
    }
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.emplace_back(u, v);
      stall = 0;
    } else {
      ++stall;
    }
  }
  return edges;
}

void ConnectComponents(uint32_t n, std::vector<Edge>* edges, Rng& rng) {
  // Union-find over the current edge set.
  std::vector<VertexId> parent(n);
  for (uint32_t v = 0; v < n; ++v) parent[v] = v;
  std::vector<VertexId> stack;
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : *edges) {
    VertexId a = find(e.first);
    VertexId b = find(e.second);
    if (a != b) parent[a] = b;
  }
  std::vector<VertexId> roots;
  for (uint32_t v = 0; v < n; ++v) {
    if (find(v) == v) roots.push_back(v);
  }
  for (size_t i = 1; i < roots.size(); ++i) {
    // Attach each extra component to a random vertex of the first one; using
    // a random anchor avoids creating one hub vertex.
    VertexId anchor = static_cast<VertexId>(rng.UniformInt(n));
    while (find(anchor) == find(roots[i])) {
      anchor = static_cast<VertexId>(rng.UniformInt(n));
    }
    edges->emplace_back(anchor, roots[i]);
    parent[find(roots[i])] = find(anchor);
  }
}

}  // namespace daf

#ifndef DAF_GRAPH_PROPERTIES_H_
#define DAF_GRAPH_PROPERTIES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace daf {

/// Assigns each vertex a component id in [0, num_components); returns the
/// number of connected components.
uint32_t ConnectedComponents(const Graph& g, std::vector<uint32_t>* component);

/// True iff g is connected (the paper assumes connected graphs).
bool IsConnected(const Graph& g);

/// BFS levels from `root`; unreachable vertices get kUnreachableLevel.
inline constexpr uint32_t kUnreachableLevel = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsLevels(const Graph& g, VertexId root);

/// Eccentricity of `root` (max BFS distance to a reachable vertex).
uint32_t Eccentricity(const Graph& g, VertexId root);

/// Exact diameter by all-pairs BFS. Intended for query graphs (the
/// sensitivity analysis of Section 7.2 bins queries by diam(q)); cost is
/// O(|V| * |E|).
uint32_t Diameter(const Graph& g);

/// Membership of each vertex in the k-core of g (the maximal subgraph with
/// minimum degree >= k). CFL-Match's "core" is the 2-core.
std::vector<bool> KCoreMembership(const Graph& g, uint32_t k);

/// Histogram of vertex degrees (index = degree).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Global (transitivity) clustering coefficient: 3 * #triangles / #wedges.
/// Real data graphs are strongly clustered, which is what makes the
/// paper's random-walk query extraction find non-sparse queries; the
/// synthetic stand-ins are validated against this. O(Σ_v deg(v)^2).
double GlobalClusteringCoefficient(const Graph& g);

/// Degeneracy of g: the largest k such that the k-core is non-empty
/// (equivalently, the smallest k with a vertex ordering where every vertex
/// has <= k later neighbors). A standard hardness proxy for matching.
uint32_t Degeneracy(const Graph& g);

/// Shannon entropy (bits) of the vertex-label distribution; lower entropy
/// = more skew = harder workloads (bigger candidate sets for the frequent
/// labels).
double LabelEntropy(const Graph& g);

/// One-stop structural summary used by the dataset validation tests and
/// the Table 2 harness.
struct GraphStats {
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t num_labels = 0;
  double avg_degree = 0;
  uint32_t max_degree = 0;
  double clustering = 0;
  uint32_t degeneracy = 0;
  double label_entropy = 0;
  bool connected = false;
};
GraphStats ComputeStats(const Graph& g);

}  // namespace daf

#endif  // DAF_GRAPH_PROPERTIES_H_

#ifndef DAF_GRAPH_GRAPH_H_
#define DAF_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace daf {

/// Vertex identifier (dense, 0-based).
using VertexId = uint32_t;

/// Vertex label identifier (dense, 0-based).
using Label = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An undirected edge as a vertex pair (unordered; both orders accepted).
using Edge = std::pair<VertexId, VertexId>;

/// Immutable undirected vertex-labeled graph in CSR form.
///
/// This is the single graph representation used for both query graphs and
/// data graphs throughout the library (Section 2 of the paper: undirected,
/// connected, vertex-labeled graphs).
///
/// Adjacency lists are sorted by (neighbor label, neighbor id). This makes
/// the two access patterns that dominate subgraph matching O(log deg) /
/// contiguous:
///   * `NeighborsWithLabel(v, l)` — the sub-range of v's neighbors carrying
///     label l (used to materialize the CS edges `N^u_{uc}(v)` and to
///     evaluate neighborhood-label-frequency filters), and
///   * `HasEdge(u, v)` — binary search using the (label, id) key.
///
/// Vertices are additionally indexed by label (`VerticesWithLabel`) to
/// produce the initial candidate sets `C_ini(u)`.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list.
  ///
  /// `labels[v]` is the label of vertex v; `num_vertices == labels.size()`.
  /// Self-loops and duplicate edges are dropped. Labels need not be dense;
  /// they are remapped to 0..NumLabels()-1 preserving relative order (the
  /// mapping is exposed via `original_label`). All edges get edge label 0.
  static Graph FromEdges(std::vector<Label> labels,
                         const std::vector<Edge>& edges);

  /// Like FromEdges, but with a label per edge (`edge_labels` aligned with
  /// `edges`) — the "multiple labels on an edge" extension the paper
  /// mentions in Section 2; bond types in chemical compound search are the
  /// canonical use. An embedding must then also preserve edge labels. If
  /// duplicate edges carry conflicting labels, the first occurrence wins.
  /// Edge labels are compared verbatim (no dense remapping).
  static Graph FromLabeledEdges(std::vector<Label> labels,
                                const std::vector<Edge>& edges,
                                const std::vector<Label>& edge_labels);

  /// The raw CSR arrays of a graph, in the *original* (caller) label space.
  /// This is the interchange form of the binary snapshot format
  /// (src/persist/snapshot.h): four flat arrays, no derived indexes.
  struct CsrParts {
    std::vector<Label> labels;        // per-vertex original labels
    std::vector<uint64_t> offsets;    // |V|+1 CSR offsets
    std::vector<VertexId> adjacency;  // 2|E|, per-vertex sorted by
                                      // (dense label, id)
    std::vector<Label> edge_labels;   // 2|E| aligned with adjacency, or
                                      // empty when every edge label is 0
  };

  /// Exports the CSR arrays. `ToCsrParts` followed by `FromCsrParts`
  /// reproduces the graph exactly (original labels round-trip; dense
  /// remapping is order-preserving, so the adjacency order is identical).
  CsrParts ToCsrParts() const;

  /// Rebuilds a graph from CSR arrays without re-sorting: the arrays must
  /// already satisfy every Graph invariant. All invariants are *validated*
  /// (std::nullopt + `*error` on violation, never UB), because the input
  /// typically comes from a file:
  ///   * offsets monotonic, offsets[0] == 0, offsets[|V|] == adjacency size;
  ///   * adjacency even-sized, ids in range, no self-loops;
  ///   * each vertex's neighbors strictly increasing by (dense label, id)
  ///     — strictness also rules out duplicate edges;
  ///   * symmetric: (u, v) present iff (v, u) present, with equal labels.
  /// Cost is O(V + E): much cheaper than FromLabeledEdges' sort and the
  /// reason binary cold-start beats text loading.
  static std::optional<Graph> FromCsrParts(CsrParts parts,
                                           std::string* error);

  /// Number of vertices.
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(labels_.size());
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  /// Number of distinct labels.
  uint32_t NumLabels() const {
    return static_cast<uint32_t>(label_frequency_.size());
  }

  /// Average degree 2|E|/|V|.
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(NumEdges()) / NumVertices();
  }

  /// Label of vertex v (dense, remapped).
  Label label(VertexId v) const { return labels_[v]; }

  /// The label value that was supplied to FromEdges for dense label l.
  Label original_label(Label l) const { return original_labels_[l]; }

  /// Inverse of original_label: the dense id for a supplied label, or
  /// static_cast<Label>(-1) (query_extract's kNoSuchLabel) when no vertex
  /// carries it. O(log NumLabels()).
  Label DenseLabel(Label original) const;

  /// Degree of vertex v.
  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Largest degree among v's neighbors (0 for isolated vertices).
  uint32_t MaxNeighborDegree(VertexId v) const {
    return max_neighbor_degree_[v];
  }

  /// All neighbors of v, sorted by (label, id).
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The neighbors of v that carry label l (contiguous sub-range).
  std::span<const VertexId> NeighborsWithLabel(VertexId v, Label l) const;

  /// Number of neighbors of v with label l (the NLF value).
  uint32_t NeighborLabelCount(VertexId v, Label l) const {
    return static_cast<uint32_t>(NeighborsWithLabel(v, l).size());
  }

  /// Number of distinct labels among v's neighbors.
  uint32_t NeighborLabelVariety(VertexId v) const;

  /// True iff the undirected edge (u, v) exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// True iff the edge (u, v) exists and carries edge label `edge_label`.
  bool HasEdgeWithLabel(VertexId u, VertexId v, Label edge_label) const;

  /// The label of edge (u, v); the edge must exist.
  Label EdgeLabelBetween(VertexId u, VertexId v) const;

  /// Edge labels aligned with Neighbors(v): element i is the label of the
  /// edge (v, Neighbors(v)[i]).
  std::span<const Label> NeighborEdgeLabels(VertexId v) const {
    return {edge_labels_.data() + offsets_[v],
            offsets_[v + 1] - offsets_[v]};
  }

  /// True iff some edge carries a non-zero label. When false (every
  /// FromEdges graph), edge-label checks can be skipped entirely.
  bool HasNontrivialEdgeLabels() const { return nontrivial_edge_labels_; }

  /// Neighbors of v with vertex label l, together with the labels of the
  /// connecting edges (both spans aligned).
  struct NeighborSlice {
    std::span<const VertexId> vertices;
    std::span<const Label> edge_labels;
  };
  NeighborSlice NeighborsWithLabelAndEdges(VertexId v, Label l) const;

  /// All vertices carrying label l, ascending by id.
  std::span<const VertexId> VerticesWithLabel(Label l) const {
    return {vertices_by_label_.data() + label_offsets_[l],
            label_offsets_[l + 1] - label_offsets_[l]};
  }

  /// Number of vertices carrying label l.
  uint32_t LabelFrequency(Label l) const { return label_frequency_[l]; }

  /// All edges as (u, v) pairs with u < v, in unspecified order.
  std::vector<Edge> EdgeList() const;

  /// All edges with their labels: ((u, v), label) with u < v.
  std::vector<std::pair<Edge, Label>> LabeledEdgeList() const;

 private:
  int64_t FindNeighborIndex(VertexId u, VertexId v) const;

  /// Fills nontrivial_edge_labels_, max_neighbor_degree_, and the label
  /// index from labels_/offsets_/adjacency_/edge_labels_.
  void BuildDerivedIndexes();

  std::vector<Label> labels_;
  std::vector<Label> original_labels_;  // dense label -> supplied label
  std::vector<uint64_t> offsets_;       // |V|+1 CSR offsets
  std::vector<VertexId> adjacency_;     // 2|E| neighbor entries
  std::vector<Label> edge_labels_;      // aligned with adjacency_
  bool nontrivial_edge_labels_ = false;
  std::vector<uint32_t> max_neighbor_degree_;
  std::vector<uint64_t> label_offsets_;  // |Σ|+1
  std::vector<VertexId> vertices_by_label_;
  std::vector<uint32_t> label_frequency_;
};

}  // namespace daf

#endif  // DAF_GRAPH_GRAPH_H_

#include "graph/io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace daf {

namespace {

// Hard caps on declared sizes, checked BEFORE any reserve/assign sized by
// the header: a hostile or corrupt `t 4000000000 0` header must produce an
// error, not an OOM. VertexId is 32-bit so 2^28 vertices (1 GiB of labels)
// is already beyond every dataset this engine targets; edges get 2^31.
constexpr uint64_t kMaxDeclaredVertices = uint64_t{1} << 28;
constexpr uint64_t kMaxDeclaredEdges = uint64_t{1} << 31;

// Never trust a declared count for more than this much up-front reserve;
// larger inputs grow geometrically and pay O(log n) reallocations, but a
// lying header can no longer commit gigabytes before the first real line.
constexpr uint64_t kMaxTrustedReserve = uint64_t{1} << 20;

}  // namespace

std::optional<Graph> ParseGraphText(const std::string& text,
                                    std::string* error) {
  std::istringstream in(text);
  std::string line;
  uint64_t declared_vertices = 0;
  uint64_t declared_edges = 0;
  bool saw_header = false;
  std::vector<Label> labels;
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  size_t line_no = 0;

  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      if (saw_header) return fail("duplicate header");
      if (!(ls >> declared_vertices >> declared_edges)) {
        return fail("malformed header");
      }
      // Negative counts wrap to huge values under iostream's unsigned
      // parse (strtoull semantics), so the caps also reject "-1".
      if (declared_vertices > kMaxDeclaredVertices) {
        return fail("declared vertex count exceeds limit");
      }
      if (declared_edges > kMaxDeclaredEdges) {
        return fail("declared edge count exceeds limit");
      }
      saw_header = true;
      labels.assign(declared_vertices, 0);
      edges.reserve(std::min(declared_edges, kMaxTrustedReserve));
    } else if (tag == 'v') {
      uint64_t id = 0;
      uint64_t label = 0;
      if (!(ls >> id >> label)) return fail("malformed vertex line");
      if (!saw_header) return fail("vertex line before 't' header");
      if (id >= declared_vertices) return fail("vertex id out of range");
      labels[id] = static_cast<Label>(label);
    } else if (tag == 'e') {
      uint64_t u = 0;
      uint64_t v = 0;
      if (!(ls >> u >> v)) return fail("malformed edge line");
      if (!saw_header) return fail("edge line before 't' header");
      if (u >= declared_vertices || v >= declared_vertices) {
        return fail("edge endpoint out of range");
      }
      uint64_t edge_label = 0;
      ls >> edge_label;  // optional trailing edge label; 0 when absent
      edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
      edge_labels.push_back(static_cast<Label>(edge_label));
    } else {
      return fail(std::string("unknown line tag '") + tag + "'");
    }
  }
  if (!saw_header) {
    if (error != nullptr) *error = "missing 't' header line";
    return std::nullopt;
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

std::optional<Graph> LoadGraph(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseGraphText(buffer.str(), error);
}

std::string GraphToText(const Graph& g) {
  std::ostringstream out;
  out << "t " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << g.original_label(g.label(v)) << " "
        << g.degree(v) << "\n";
  }
  const bool edge_labels = g.HasNontrivialEdgeLabels();
  for (const auto& [e, label] : g.LabeledEdgeList()) {
    out << "e " << e.first << " " << e.second;
    if (edge_labels) out << " " << label;
    out << "\n";
  }
  return out.str();
}

bool SaveGraph(const Graph& g, const std::string& path, std::string* error) {
  std::ofstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  file << GraphToText(g);
  if (!file) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

namespace {

constexpr char kBinaryMagic[4] = {'D', 'A', 'F', 'G'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveGraphBinary(const Graph& g, const std::string& path,
                     std::string* error) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  file.write(kBinaryMagic, sizeof(kBinaryMagic));
  WritePod(file, kBinaryVersion);
  WritePod(file, g.NumVertices());
  WritePod(file, g.NumEdges());
  const uint8_t has_edge_labels = g.HasNontrivialEdgeLabels() ? 1 : 0;
  WritePod(file, has_edge_labels);
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    WritePod(file, g.original_label(g.label(v)));
  }
  for (const auto& [e, label] : g.LabeledEdgeList()) {
    WritePod(file, e.first);
    WritePod(file, e.second);
    if (has_edge_labels != 0) WritePod(file, label);
  }
  if (!file) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

std::optional<Graph> LoadGraphBinary(const std::string& path,
                                     std::string* error) {
  std::ifstream file(path, std::ios::binary);
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!file) return fail("cannot open " + path);
  char magic[4] = {};
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return fail("not a DAFG binary graph file");
  }
  uint32_t version = 0;
  if (!ReadPod(file, &version) || version != kBinaryVersion) {
    return fail("unsupported DAFG version");
  }
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint8_t has_edge_labels = 0;
  if (!ReadPod(file, &num_vertices) || !ReadPod(file, &num_edges) ||
      !ReadPod(file, &has_edge_labels)) {
    return fail("truncated header");
  }
  if (num_vertices > kMaxDeclaredVertices) {
    return fail("declared vertex count exceeds limit");
  }
  if (num_edges > kMaxDeclaredEdges) {
    return fail("declared edge count exceeds limit");
  }
  std::vector<Label> labels(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    if (!ReadPod(file, &labels[v])) return fail("truncated vertex labels");
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  edges.reserve(std::min(num_edges, kMaxTrustedReserve));
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    if (!ReadPod(file, &u) || !ReadPod(file, &v)) {
      return fail("truncated edge list");
    }
    if (u >= num_vertices || v >= num_vertices) {
      return fail("edge endpoint out of range");
    }
    edges.emplace_back(u, v);
    if (has_edge_labels != 0) {
      Label l = 0;
      if (!ReadPod(file, &l)) return fail("truncated edge labels");
      edge_labels.push_back(l);
    }
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

}  // namespace daf

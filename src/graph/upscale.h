#ifndef DAF_GRAPH_UPSCALE_H_
#define DAF_GRAPH_UPSCALE_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace daf {

/// Upscales a data graph by `factor` in both vertices and edges while
/// preserving its statistical properties (degree distribution, label
/// frequencies, clustering) — the role EvoGraph [29] plays in the paper's
/// sensitivity analysis (Section 7.2, scale(G) ∈ {2,4,8,16}).
///
/// Construction: `factor` disjoint copies of g are created; each copied edge
/// independently "teleports" one endpoint to the equivalent vertex in a
/// uniformly random copy with probability `rewire_probability`, which mixes
/// the copies into one connected graph without changing any vertex's label
/// or expected degree. The result is then connected (a handful of bridge
/// edges at most). The default rewire probability is kept small because
/// every teleported edge breaks the triangles through it, and preserving
/// the clustering coefficient across scales is what EvoGraph is for.
Graph Upscale(const Graph& g, uint32_t factor, Rng& rng,
              double rewire_probability = 0.08);

}  // namespace daf

#endif  // DAF_GRAPH_UPSCALE_H_

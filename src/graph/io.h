#ifndef DAF_GRAPH_IO_H_
#define DAF_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

namespace daf {

/// Parses a graph from the text format used by the subgraph-matching
/// literature (and by the datasets the paper evaluates on):
///
///   t <num_vertices> <num_edges>
///   v <id> <label> [<degree>]     (one line per vertex)
///   e <u> <v> [<edge label>]      (one line per edge; edge labels ignored)
///
/// Lines starting with '#' or '%' are comments. Returns std::nullopt and
/// fills `*error` on malformed input.
std::optional<Graph> ParseGraphText(const std::string& text,
                                    std::string* error);

/// Loads a graph from a file in the text format above.
std::optional<Graph> LoadGraph(const std::string& path, std::string* error);

/// Serializes a graph to the text format above.
std::string GraphToText(const Graph& g);

/// Writes a graph to a file; returns false (and fills `*error`) on failure.
bool SaveGraph(const Graph& g, const std::string& path, std::string* error);

/// Writes a graph in the compact binary format ("DAFG", version 1,
/// host-endian). Several times faster to load than the text format (see
/// BM_LoadGraphText vs BM_LoadGraphBinary in bench_micro) — useful for the
/// multi-million-edge data graphs of Appendix A.1.
bool SaveGraphBinary(const Graph& g, const std::string& path,
                     std::string* error);

/// Loads a graph written by SaveGraphBinary.
std::optional<Graph> LoadGraphBinary(const std::string& path,
                                     std::string* error);

}  // namespace daf

#endif  // DAF_GRAPH_IO_H_

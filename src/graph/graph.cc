#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace daf {

Graph Graph::FromEdges(std::vector<Label> labels,
                       const std::vector<Edge>& edges) {
  return FromLabeledEdges(std::move(labels), edges, {});
}

Label Graph::DenseLabel(Label original) const {
  auto it = std::lower_bound(original_labels_.begin(),
                             original_labels_.end(), original);
  if (it == original_labels_.end() || *it != original) {
    return static_cast<Label>(-1);
  }
  return static_cast<Label>(it - original_labels_.begin());
}

Graph Graph::FromLabeledEdges(std::vector<Label> labels,
                              const std::vector<Edge>& edges,
                              const std::vector<Label>& edge_labels) {
  Graph g;
  const uint32_t n = static_cast<uint32_t>(labels.size());
  assert(edge_labels.empty() || edge_labels.size() == edges.size());

  // Remap labels to a dense 0..k-1 range preserving relative order.
  std::vector<Label> sorted_labels = labels;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  sorted_labels.erase(
      std::unique(sorted_labels.begin(), sorted_labels.end()),
      sorted_labels.end());
  g.original_labels_ = sorted_labels;
  g.labels_.resize(n);
  for (uint32_t v = 0; v < n; ++v) {
    g.labels_[v] = static_cast<Label>(
        std::lower_bound(sorted_labels.begin(), sorted_labels.end(),
                         labels[v]) -
        sorted_labels.begin());
  }
  // Deduplicate edges, dropping self-loops; normalize to u < v. A stable
  // sort + unique keeps the *first* occurrence of a duplicated edge, so its
  // edge label wins.
  struct LabeledEdge {
    Edge edge;
    Label label;
  };
  std::vector<LabeledEdge> clean;
  clean.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.first == e.second) continue;
    assert(e.first < n && e.second < n);
    clean.push_back({{std::min(e.first, e.second),
                      std::max(e.first, e.second)},
                     edge_labels.empty() ? 0 : edge_labels[i]});
  }
  std::stable_sort(clean.begin(), clean.end(),
                   [](const LabeledEdge& a, const LabeledEdge& b) {
                     return a.edge < b.edge;
                   });
  clean.erase(std::unique(clean.begin(), clean.end(),
                          [](const LabeledEdge& a, const LabeledEdge& b) {
                            return a.edge == b.edge;
                          }),
              clean.end());

  // CSR with adjacency (and aligned edge labels) sorted by (label, id).
  g.offsets_.assign(n + 1, 0);
  for (const LabeledEdge& e : clean) {
    ++g.offsets_[e.edge.first + 1];
    ++g.offsets_[e.edge.second + 1];
  }
  for (uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(clean.size() * 2);
  g.edge_labels_.resize(clean.size() * 2);
  {
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const LabeledEdge& e : clean) {
      g.adjacency_[cursor[e.edge.first]] = e.edge.second;
      g.edge_labels_[cursor[e.edge.first]++] = e.label;
      g.adjacency_[cursor[e.edge.second]] = e.edge.first;
      g.edge_labels_[cursor[e.edge.second]++] = e.label;
    }
  }
  {
    std::vector<std::pair<VertexId, Label>> scratch;
    for (uint32_t v = 0; v < n; ++v) {
      const uint64_t begin = g.offsets_[v];
      const uint64_t end = g.offsets_[v + 1];
      scratch.clear();
      for (uint64_t i = begin; i < end; ++i) {
        scratch.emplace_back(g.adjacency_[i], g.edge_labels_[i]);
      }
      std::sort(scratch.begin(), scratch.end(),
                [&g](const auto& a, const auto& b) {
                  return std::make_pair(g.labels_[a.first], a.first) <
                         std::make_pair(g.labels_[b.first], b.first);
                });
      for (uint64_t i = begin; i < end; ++i) {
        g.adjacency_[i] = scratch[i - begin].first;
        g.edge_labels_[i] = scratch[i - begin].second;
      }
    }
  }
  g.BuildDerivedIndexes();
  return g;
}

void Graph::BuildDerivedIndexes() {
  const uint32_t n = NumVertices();
  const uint32_t num_labels = static_cast<uint32_t>(original_labels_.size());

  nontrivial_edge_labels_ = false;
  for (Label l : edge_labels_) {
    if (l != 0) {
      nontrivial_edge_labels_ = true;
      break;
    }
  }

  // Max neighbor degree.
  max_neighbor_degree_.assign(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    for (VertexId u : Neighbors(v)) {
      max_neighbor_degree_[v] = std::max(max_neighbor_degree_[v], degree(u));
    }
  }

  // Label index.
  label_frequency_.assign(num_labels, 0);
  for (uint32_t v = 0; v < n; ++v) ++label_frequency_[labels_[v]];
  label_offsets_.assign(num_labels + 1, 0);
  for (uint32_t l = 0; l < num_labels; ++l) {
    label_offsets_[l + 1] = label_offsets_[l] + label_frequency_[l];
  }
  vertices_by_label_.resize(n);
  {
    std::vector<uint64_t> cursor(label_offsets_.begin(),
                                 label_offsets_.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      vertices_by_label_[cursor[labels_[v]]++] = v;
    }
  }
}

Graph::CsrParts Graph::ToCsrParts() const {
  CsrParts parts;
  const uint32_t n = NumVertices();
  parts.labels.resize(n);
  for (uint32_t v = 0; v < n; ++v) {
    parts.labels[v] = original_labels_[labels_[v]];
  }
  parts.offsets = offsets_;
  parts.adjacency = adjacency_;
  if (nontrivial_edge_labels_) parts.edge_labels = edge_labels_;
  return parts;
}

std::optional<Graph> Graph::FromCsrParts(CsrParts parts, std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<Graph> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  const size_t n = parts.labels.size();
  if (parts.offsets.size() != n + 1) return fail("offsets size != |V|+1");
  if (parts.offsets.front() != 0) return fail("offsets[0] != 0");
  for (size_t v = 0; v < n; ++v) {
    if (parts.offsets[v] > parts.offsets[v + 1]) {
      return fail("offsets not monotonically non-decreasing");
    }
  }
  if (parts.offsets.back() != parts.adjacency.size()) {
    return fail("offsets[|V|] != adjacency size");
  }
  if (parts.adjacency.size() % 2 != 0) return fail("adjacency size is odd");
  if (!parts.edge_labels.empty() &&
      parts.edge_labels.size() != parts.adjacency.size()) {
    return fail("edge_labels size != adjacency size");
  }

  Graph g;
  g.labels_.resize(n);
  {
    std::vector<Label> sorted_labels = parts.labels;
    std::sort(sorted_labels.begin(), sorted_labels.end());
    sorted_labels.erase(
        std::unique(sorted_labels.begin(), sorted_labels.end()),
        sorted_labels.end());
    g.original_labels_ = std::move(sorted_labels);
    for (size_t v = 0; v < n; ++v) {
      g.labels_[v] = static_cast<Label>(
          std::lower_bound(g.original_labels_.begin(),
                           g.original_labels_.end(), parts.labels[v]) -
          g.original_labels_.begin());
    }
  }
  g.offsets_ = std::move(parts.offsets);
  g.adjacency_ = std::move(parts.adjacency);
  if (parts.edge_labels.empty()) {
    g.edge_labels_.assign(g.adjacency_.size(), 0);
  } else {
    g.edge_labels_ = std::move(parts.edge_labels);
  }

  // Per-vertex invariants: ids in range, no self-loops, strictly
  // increasing (dense label, id) order (strictness rules out duplicates).
  for (size_t v = 0; v < n; ++v) {
    const uint64_t begin = g.offsets_[v];
    const uint64_t end = g.offsets_[v + 1];
    for (uint64_t i = begin; i < end; ++i) {
      const VertexId w = g.adjacency_[i];
      if (w >= n) return fail("adjacency references an out-of-range vertex");
      if (w == v) return fail("adjacency contains a self-loop");
      if (i > begin) {
        const VertexId p = g.adjacency_[i - 1];
        if (std::make_pair(g.labels_[p], p) >=
            std::make_pair(g.labels_[w], w)) {
          return fail("adjacency not strictly (label, id)-sorted");
        }
      }
    }
  }
  // Symmetry: every directed entry must have its mirror, with an equal
  // edge label. O(V + E) by sequence regeneration instead of a binary
  // search per edge: scanning sources in (dense label, id) order and
  // appending to each target's cursor reproduces exactly the (label,
  // id)-sorted slice the target must already hold — any deviation (id or
  // edge label) is an asymmetry. Binary-search probes cost E log(deg)
  // cache-hostile lookups, which dominated snapshot cold-start.
  {
    std::vector<uint32_t> order(n);  // vertex ids in (label, id) order
    {
      std::vector<uint64_t> cursor(g.original_labels_.size() + 1, 0);
      for (size_t v = 0; v < n; ++v) ++cursor[g.labels_[v] + 1u];
      for (size_t l = 1; l < cursor.size(); ++l) cursor[l] += cursor[l - 1];
      for (size_t v = 0; v < n; ++v) {
        order[cursor[g.labels_[v]]++] = static_cast<uint32_t>(v);
      }
    }
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const uint32_t v : order) {
      const uint64_t begin = g.offsets_[v];
      const uint64_t end = g.offsets_[v + 1];
      for (uint64_t i = begin; i < end; ++i) {
        const VertexId w = g.adjacency_[i];
        uint64_t& c = cursor[w];
        if (c >= g.offsets_[w + 1] || g.adjacency_[c] != v) {
          return fail("adjacency is not symmetric");
        }
        if (g.edge_labels_[c] != g.edge_labels_[i]) {
          return fail("edge labels are not symmetric");
        }
        ++c;
      }
    }
  }

  g.BuildDerivedIndexes();
  if (error != nullptr) error->clear();
  return g;
}

std::span<const VertexId> Graph::NeighborsWithLabel(VertexId v,
                                                    Label l) const {
  std::span<const VertexId> all = Neighbors(v);
  auto lo = std::lower_bound(
      all.begin(), all.end(), l,
      [this](VertexId a, Label key) { return labels_[a] < key; });
  auto hi = std::upper_bound(
      lo, all.end(), l,
      [this](Label key, VertexId a) { return key < labels_[a]; });
  return {lo, hi};
}

Graph::NeighborSlice Graph::NeighborsWithLabelAndEdges(VertexId v,
                                                       Label l) const {
  std::span<const VertexId> vertices = NeighborsWithLabel(v, l);
  if (vertices.empty()) return {{}, {}};
  const uint64_t base =
      static_cast<uint64_t>(vertices.data() - adjacency_.data());
  return {vertices, {edge_labels_.data() + base, vertices.size()}};
}

uint32_t Graph::NeighborLabelVariety(VertexId v) const {
  std::span<const VertexId> all = Neighbors(v);
  uint32_t variety = 0;
  Label prev = static_cast<Label>(-1);
  for (VertexId u : all) {
    if (labels_[u] != prev) {
      ++variety;
      prev = labels_[u];
    }
  }
  return variety;
}

namespace {

// Index of v within u's adjacency slice, or -1 when the edge is absent.
// `slice` must be u's neighbors-with-v's-label sub-range and `base` its
// offset into the global adjacency array.
int64_t FindInSlice(std::span<const VertexId> slice, uint64_t base,
                    VertexId v) {
  auto it = std::lower_bound(slice.begin(), slice.end(), v);
  if (it == slice.end() || *it != v) return -1;
  return static_cast<int64_t>(base + (it - slice.begin()));
}

}  // namespace

int64_t Graph::FindNeighborIndex(VertexId u, VertexId v) const {
  std::span<const VertexId> slice = NeighborsWithLabel(u, labels_[v]);
  if (slice.empty()) return -1;
  uint64_t base =
      offsets_[u] + static_cast<uint64_t>(slice.data() -
                                          (adjacency_.data() + offsets_[u]));
  return FindInSlice(slice, base, v);
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  std::span<const VertexId> candidates = NeighborsWithLabel(u, labels_[v]);
  return std::binary_search(candidates.begin(), candidates.end(), v);
}

bool Graph::HasEdgeWithLabel(VertexId u, VertexId v, Label edge_label) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  int64_t index = FindNeighborIndex(u, v);
  return index >= 0 && edge_labels_[static_cast<uint64_t>(index)] ==
                           edge_label;
}

Label Graph::EdgeLabelBetween(VertexId u, VertexId v) const {
  int64_t index = FindNeighborIndex(u, v);
  assert(index >= 0);
  return edge_labels_[static_cast<uint64_t>(index)];
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (uint32_t v = 0; v < NumVertices(); ++v) {
    for (VertexId u : Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return edges;
}

std::vector<std::pair<Edge, Label>> Graph::LabeledEdgeList() const {
  std::vector<std::pair<Edge, Label>> edges;
  edges.reserve(NumEdges());
  for (uint32_t v = 0; v < NumVertices(); ++v) {
    auto neighbors = Neighbors(v);
    auto labels = NeighborEdgeLabels(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (v < neighbors[i]) {
        edges.push_back({{v, neighbors[i]}, labels[i]});
      }
    }
  }
  return edges;
}

}  // namespace daf

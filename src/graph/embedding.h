#ifndef DAF_GRAPH_EMBEDDING_H_
#define DAF_GRAPH_EMBEDDING_H_

#include <functional>
#include <span>

#include "graph/graph.h"

namespace daf {

/// Invoked once per embedding with the mapping in query-vertex-id order
/// (element u is M(u)). Return false to stop the search.
using EmbeddingCallback = std::function<bool(std::span<const VertexId>)>;

}  // namespace daf

#endif  // DAF_GRAPH_EMBEDDING_H_

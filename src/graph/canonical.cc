#include "graph/canonical.h"

#include <algorithm>
#include <map>
#include <utility>

namespace daf {

namespace {

// Partition convention (nauty-style): colors[v] is the canonical start
// position of v's cell, so colors are comparable across refinement rounds,
// a discrete partition has all-distinct colors, and colors[v] is directly
// the canonical position of v once discrete.
using Coloring = std::vector<uint32_t>;

// Splits every cell by the sorted multiset of (neighbor color, edge label)
// pairs, iterating to a fixed point. Signatures are compared as flat word
// vectors with the old color leading, so refinement only ever splits cells
// and preserves their relative order — both required for the resulting
// colors to be relabeling-invariant.
void Refine(const Graph& g, Coloring* colors) {
  const uint32_t n = g.NumVertices();
  std::vector<std::vector<uint64_t>> signature(n);
  for (;;) {
    std::map<std::vector<uint64_t>, std::vector<VertexId>> groups;
    for (VertexId v = 0; v < n; ++v) {
      std::vector<uint64_t>& sig = signature[v];
      sig.clear();
      sig.push_back((*colors)[v]);
      const auto neighbors = g.Neighbors(v);
      const auto edge_labels = g.NeighborEdgeLabels(v);
      std::vector<uint64_t> entries;
      entries.reserve(neighbors.size());
      for (size_t i = 0; i < neighbors.size(); ++i) {
        entries.push_back((static_cast<uint64_t>((*colors)[neighbors[i]]) << 32) |
                          edge_labels[i]);
      }
      std::sort(entries.begin(), entries.end());
      sig.insert(sig.end(), entries.begin(), entries.end());
    }
    for (VertexId v = 0; v < n; ++v) groups[signature[v]].push_back(v);
    Coloring next(n);
    uint32_t start = 0;
    bool changed = false;
    for (const auto& [sig, members] : groups) {
      for (VertexId v : members) {
        next[v] = start;
        if (next[v] != (*colors)[v]) changed = true;
      }
      start += static_cast<uint32_t>(members.size());
    }
    *colors = std::move(next);
    if (!changed) return;
  }
}

bool IsDiscrete(const Coloring& colors) {
  std::vector<bool> seen(colors.size(), false);
  for (uint32_t c : colors) {
    if (seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

// True when swapping a and b (same vertex label) is an automorphism fixing
// every other vertex: identical neighborhoods outside {a, b} with matching
// edge labels. Clique members, star leaves, and parallel leaves are twins;
// pruning a twin branch is sound because its subtree enumerates exactly the
// encodings of the branch already taken.
bool AreTwins(const Graph& g, VertexId a, VertexId b) {
  auto row = [&](VertexId v, VertexId excluded) {
    std::vector<std::pair<VertexId, Label>> r;
    const auto neighbors = g.Neighbors(v);
    const auto edge_labels = g.NeighborEdgeLabels(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == excluded) continue;
      r.emplace_back(neighbors[i], edge_labels[i]);
    }
    std::sort(r.begin(), r.end());
    return r;
  };
  if (g.original_label(g.label(a)) != g.original_label(g.label(b))) {
    return false;
  }
  return row(a, b) == row(b, a);
}

// The canonical adjacency encoding of a discrete coloring: vertex count and
// edge count, the label sequence by canonical position, then per position
// the back-edges to earlier positions with their edge labels. Two discrete
// colorings of isomorphic graphs produce comparable encodings; the
// lexicographic minimum over all individualization-refinement leaves is the
// canonical key.
std::vector<uint64_t> Encode(const Graph& g, const Coloring& colors) {
  const uint32_t n = g.NumVertices();
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[colors[v]] = v;
  std::vector<uint64_t> words;
  words.reserve(2 + n + n + 2 * g.NumEdges());
  words.push_back(n);
  words.push_back(g.NumEdges());
  for (uint32_t p = 0; p < n; ++p) {
    words.push_back(g.original_label(g.label(order[p])));
  }
  std::vector<uint64_t> back;
  for (uint32_t p = 0; p < n; ++p) {
    back.clear();
    const VertexId v = order[p];
    const auto neighbors = g.Neighbors(v);
    const auto edge_labels = g.NeighborEdgeLabels(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const uint32_t q = colors[neighbors[i]];
      if (q < p) {
        back.push_back((static_cast<uint64_t>(q) << 32) | edge_labels[i]);
      }
    }
    std::sort(back.begin(), back.end());
    words.push_back(back.size());
    words.insert(words.end(), back.begin(), back.end());
  }
  return words;
}

struct SearchState {
  const Graph& g;
  uint64_t leaves = 0;
  uint64_t max_leaves;
  bool aborted = false;
  bool have_best = false;
  std::vector<uint64_t> best_key;
  Coloring best_colors;
};

// Individualization-refinement: `colors` is already refined. At a leaf the
// encoding competes for the minimum; at an internal node the first
// non-singleton cell is branched over, one branch per non-twin member.
void Search(SearchState* state, const Coloring& colors) {
  if (state->aborted) return;
  const uint32_t n = static_cast<uint32_t>(colors.size());
  if (IsDiscrete(colors)) {
    if (++state->leaves > state->max_leaves) {
      state->aborted = true;
      return;
    }
    std::vector<uint64_t> key = Encode(state->g, colors);
    if (!state->have_best || key < state->best_key) {
      state->have_best = true;
      state->best_key = std::move(key);
      state->best_colors = colors;
    }
    return;
  }

  // The first (smallest-start) cell with more than one member is the
  // branch target — the same rule in every branch, so the set of explored
  // leaves is isomorphism-invariant.
  uint32_t target_color = 0;
  std::vector<VertexId> members;
  for (uint32_t c = 0; c < n && members.size() < 2; ++c) {
    members.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (colors[v] == c) members.push_back(v);
    }
    target_color = c;
  }
  std::sort(members.begin(), members.end());

  std::vector<VertexId> tried;
  for (VertexId v : members) {
    if (state->aborted) return;
    bool twin = false;
    for (VertexId t : tried) {
      if (AreTwins(state->g, t, v)) {
        twin = true;
        break;
      }
    }
    if (twin) continue;
    tried.push_back(v);
    Coloring child = colors;
    // Individualize v at the front of its cell, then re-refine.
    for (VertexId w : members) {
      if (w != v) child[w] = target_color + 1;
    }
    Refine(state->g, &child);
    Search(state, child);
  }
}

}  // namespace

CanonicalQuery CanonicalizeQuery(const Graph& g, uint64_t max_leaves) {
  CanonicalQuery result;
  const uint32_t n = g.NumVertices();
  if (n == 0) {
    result.key = {0, 0};
    return result;
  }

  // Seed colors from the relabeling-invariant pair (vertex label, degree);
  // Refine folds in the neighborhood structure.
  std::vector<std::pair<std::pair<Label, uint32_t>, VertexId>> seed;
  seed.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    seed.push_back({{g.original_label(g.label(v)), g.degree(v)}, v});
  }
  std::sort(seed.begin(), seed.end());
  Coloring colors(n);
  for (uint32_t i = 0; i < n; ++i) {
    colors[seed[i].second] =
        (i > 0 && seed[i].first == seed[i - 1].first) ? colors[seed[i - 1].second]
                                                      : i;
  }
  Refine(g, &colors);

  SearchState state{g, 0, max_leaves};
  Search(&state, colors);

  if (state.aborted || !state.have_best) {
    // Canonization abandoned (adversarially regular graph): fall back to
    // the identity order so callers still get a well-formed — but NOT
    // relabeling-invariant — key, flagged uncacheable.
    result.complete = false;
    Coloring identity(n);
    for (VertexId v = 0; v < n; ++v) identity[v] = v;
    result.key = Encode(g, identity);
    result.to_canonical = identity;
    result.from_canonical = identity;
    return result;
  }

  result.key = std::move(state.best_key);
  result.to_canonical = state.best_colors;
  result.from_canonical.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.from_canonical[state.best_colors[v]] = v;
  }
  return result;
}

Graph BuildCanonicalGraph(const Graph& g, const CanonicalQuery& form) {
  const uint32_t n = g.NumVertices();
  std::vector<Label> labels(n);
  for (uint32_t p = 0; p < n; ++p) {
    labels[p] = g.original_label(g.label(form.from_canonical[p]));
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  for (const auto& [edge, label] : g.LabeledEdgeList()) {
    edges.emplace_back(form.to_canonical[edge.first],
                       form.to_canonical[edge.second]);
    edge_labels.push_back(label);
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

Graph PermuteVertices(const Graph& g, const std::vector<VertexId>& perm) {
  const uint32_t n = g.NumVertices();
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[perm[v]] = g.original_label(g.label(v));
  }
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  for (const auto& [edge, label] : g.LabeledEdgeList()) {
    edges.emplace_back(perm[edge.first], perm[edge.second]);
    edge_labels.push_back(label);
  }
  return Graph::FromLabeledEdges(std::move(labels), edges, edge_labels);
}

}  // namespace daf

#include "dyn/delta_graph.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_set>
#include <utility>

#include "graph/query_extract.h"
#include "util/fault_inject.h"

namespace daf::dyn {

DeltaGraph::DeltaGraph(Graph base, Options options, uint64_t initial_version,
                       bool restore)
    : options_(options),
      base_(std::make_shared<const Graph>(std::move(base))) {
  const uint32_t n = base_->NumVertices();
  labels_.resize(n);
  alive_.assign(n, 1);
  degree_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    labels_[v] = base_->original_label(base_->label(v));
    degree_[v] = base_->degree(v);
    if (restore && labels_[v] == kTombstoneLabel) {
      // The snapshot serialized a tombstone as an isolated labeled vertex
      // (Materialize does); restoring marks it dead again so its id stays
      // burned and no future query can match it.
      assert(degree_[v] == 0);
      alive_[v] = 0;
    }
  }
  num_edges_ = base_->NumEdges();
  version_ = initial_version;
  snapshot_ = base_;
  snapshot_version_ = initial_version;
}

Label DeltaGraph::BaseDenseLabel(Label l) const {
  return base_->DenseLabel(l);
}

bool DeltaGraph::EdgeInBase(VertexId u, VertexId v, Label* label_out) const {
  if (!InBase(u) || !InBase(v)) return false;
  if (!base_->HasEdge(u, v)) return false;
  if (label_out != nullptr) *label_out = base_->EdgeLabelBetween(u, v);
  return true;
}

bool DeltaGraph::OverlayEdgeLabel(VertexId u, VertexId v,
                                  Label* label_out) const {
  const Overlay* ov = OverlayFor(u);
  if (ov == nullptr) return false;
  for (const auto& [w, l] : ov->added) {
    if (w == v) {
      if (label_out != nullptr) *label_out = l;
      return true;
    }
  }
  return false;
}

bool DeltaGraph::EdgeLabelNow(VertexId u, VertexId v, Label* label_out) const {
  if (u == v || u >= NumVertices() || v >= NumVertices()) return false;
  if (OverlayEdgeLabel(u, v, label_out)) return true;
  const Overlay* ov = OverlayFor(u);
  if (ov != nullptr && ov->removed.count(EdgeKey(u, v))) return false;
  return EdgeInBase(u, v, label_out);
}

bool DeltaGraph::HasEdge(VertexId u, VertexId v) const {
  return EdgeLabelNow(u, v, nullptr);
}

bool DeltaGraph::HasEdgeWithLabel(VertexId u, VertexId v,
                                  Label edge_label) const {
  Label l = 0;
  return EdgeLabelNow(u, v, &l) && l == edge_label;
}

uint32_t DeltaGraph::NeighborOriginalLabelCount(VertexId v, Label l) const {
  const Overlay* ov = OverlayFor(v);
  uint32_t count = 0;
  if (InBase(v)) {
    const Label dense = BaseDenseLabel(l);
    if (dense != kNoSuchLabel) {
      auto slice = base_->NeighborsWithLabel(v, dense);
      if (ov == nullptr || ov->removed.empty()) {
        count += static_cast<uint32_t>(slice.size());
      } else {
        for (VertexId w : slice) {
          if (!ov->removed.count(EdgeKey(v, w))) ++count;
        }
      }
    }
  }
  if (ov != nullptr) {
    for (const auto& [w, el] : ov->added) {
      (void)el;
      if (labels_[w] == l) ++count;
    }
  }
  return count;
}

std::vector<VertexId> DeltaGraph::VerticesWithOriginalLabel(Label l) const {
  std::vector<VertexId> out;
  const Label dense = BaseDenseLabel(l);
  if (dense != kNoSuchLabel) {
    for (VertexId v : base_->VerticesWithLabel(dense)) {
      if (alive_[v]) out.push_back(v);
    }
  }
  for (VertexId v = base_->NumVertices(); v < NumVertices(); ++v) {
    if (alive_[v] && labels_[v] == l) out.push_back(v);
  }
  return out;
}

bool DeltaGraph::Normalize(const UpdateBatch& batch, NormalizedBatch* out,
                           std::string* error) const {
  assert(out != nullptr);
  *out = NormalizedBatch{};
  const uint32_t old_n = NumVertices();
  const uint32_t new_n =
      old_n + static_cast<uint32_t>(batch.add_vertices.size());

  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    *out = NormalizedBatch{};
    return false;
  };

  for (Label l : batch.add_vertices) {
    if (l == kTombstoneLabel || l == kNoSuchLabel) {
      return fail("reserved label in add_vertices");
    }
  }
  for (uint32_t i = 0; i < batch.add_vertices.size(); ++i) {
    out->new_vertices.push_back(old_n + i);
  }

  auto vertex_ok = [&](VertexId v) {
    if (v >= new_n) return false;
    if (v < old_n && !alive_[v]) return false;
    return true;
  };

  // Simulate the edge operations in order over (current state + pending
  // changes of this batch). `pending` maps edge key -> (present, label).
  struct Pending {
    bool present;
    Label label;
  };
  std::unordered_map<uint64_t, Pending> pending;
  auto current = [&](VertexId u, VertexId v, Label* label) -> bool {
    auto it = pending.find(EdgeKey(u, v));
    if (it != pending.end()) {
      if (label != nullptr) *label = it->second.label;
      return it->second.present;
    }
    // New vertices of this batch have no pre-existing edges.
    if (u >= old_n || v >= old_n) return false;
    return EdgeLabelNow(u, v, label);
  };

  for (const EdgeUpdate& e : batch.insert_edges) {
    if (!vertex_ok(e.u) || !vertex_ok(e.v)) {
      return fail("insert_edges references an invalid or removed vertex");
    }
    if (e.u == e.v) {
      ++out->ignored_ops;
      continue;
    }
    Label existing = 0;
    if (current(e.u, e.v, &existing) && existing == e.edge_label) {
      ++out->ignored_ops;  // duplicate insert, same label
      continue;
    }
    // New edge, or a label change (modeled as remove(old) + insert(new)
    // by the final diff below).
    pending[EdgeKey(e.u, e.v)] = {true, e.edge_label};
  }
  for (const EdgeUpdate& e : batch.remove_edges) {
    if (!vertex_ok(e.u) || !vertex_ok(e.v)) {
      return fail("remove_edges references an invalid or removed vertex");
    }
    if (e.u == e.v) {
      ++out->ignored_ops;
      continue;
    }
    if (!current(e.u, e.v, nullptr)) {
      ++out->ignored_ops;  // removing an absent edge
      continue;
    }
    pending[EdgeKey(e.u, e.v)] = {false, 0};
  }

  std::unordered_set<VertexId> removed_set;
  for (VertexId v : batch.remove_vertices) {
    if (!vertex_ok(v)) {
      return fail("remove_vertices references an invalid or removed vertex");
    }
    if (v >= old_n) {
      return fail("remove_vertices targets a vertex added in this batch");
    }
    if (!removed_set.insert(v).second) {
      ++out->ignored_ops;
      continue;
    }
    out->removed_vertices.push_back(v);
    // Expand into incident-edge removals against the simulated state:
    // pre-existing incident edges not already removed in this batch...
    ForEachNeighbor(v, [&](VertexId w, Label) {
      if (!pending.count(EdgeKey(v, w))) {
        pending[EdgeKey(v, w)] = {false, 0};
      }
      return true;
    });
    // ...plus edges attached to v earlier in this same batch.
    for (auto& [key, p] : pending) {
      const VertexId a = static_cast<VertexId>(key >> 32);
      const VertexId b = static_cast<VertexId>(key & 0xffffffffu);
      if (p.present && (a == v || b == v)) p.present = false;
    }
  }

  // Diff the simulated final state against the pre-batch state.
  for (const auto& [key, p] : pending) {
    const VertexId a = static_cast<VertexId>(key >> 32);
    const VertexId b = static_cast<VertexId>(key & 0xffffffffu);
    Label before_label = 0;
    const bool before =
        a < old_n && b < old_n && EdgeLabelNow(a, b, &before_label);
    if (before && p.present) {
      if (before_label != p.label) {
        out->removes.push_back({a, b, before_label});
        out->inserts.push_back({a, b, p.label});
      }
      // else: net no-op (remove+reinsert with the same label, ...).
    } else if (before && !p.present) {
      out->removes.push_back({a, b, before_label});
    } else if (!before && p.present) {
      out->inserts.push_back({a, b, p.label});
    }
    // !before && !p.present: transient edge within the batch; net no-op.
  }

  // Deterministic order for seeds, tests, and subscriber streams.
  auto edge_less = [](const EdgeUpdate& x, const EdgeUpdate& y) {
    return EdgeKey(x.u, x.v) < EdgeKey(y.u, y.v);
  };
  std::sort(out->inserts.begin(), out->inserts.end(), edge_less);
  std::sort(out->removes.begin(), out->removes.end(), edge_less);
  std::sort(out->removed_vertices.begin(), out->removed_vertices.end());
  return true;
}

void DeltaGraph::InstallEdge(VertexId u, VertexId v, Label edge_label) {
  const uint64_t key = EdgeKey(u, v);
  Overlay& ou = MutableOverlay(u);
  Overlay& ov = MutableOverlay(v);
  if (ou.removed.erase(key) > 0) {
    ov.removed.erase(key);
    --removed_count_;
    // Re-inserting a previously removed base edge: back to base state if
    // the label matches; otherwise keep the removal and shadow with an
    // added edge carrying the new label.
    Label base_label = 0;
    if (EdgeInBase(u, v, &base_label) && base_label == edge_label) {
      ++degree_[u];
      ++degree_[v];
      ++num_edges_;
      return;
    }
    ou.removed.insert(key);
    ov.removed.insert(key);
    ++removed_count_;
  }
  for (auto& [w, l] : ou.added) {
    if (w == v) {
      // Label change on an overlay edge: rewrite both directions in place.
      l = edge_label;
      for (auto& [w2, l2] : ov.added) {
        if (w2 == u) l2 = edge_label;
      }
      return;
    }
  }
  ou.added.push_back({v, edge_label});
  ov.added.push_back({u, edge_label});
  ++added_count_;
  ++degree_[u];
  ++degree_[v];
  ++num_edges_;
}

void DeltaGraph::UninstallEdge(VertexId u, VertexId v) {
  auto drop_added = [](Overlay& o, VertexId w) {
    for (size_t i = 0; i < o.added.size(); ++i) {
      if (o.added[i].first == w) {
        o.added[i] = o.added.back();
        o.added.pop_back();
        return true;
      }
    }
    return false;
  };
  Overlay& ou = MutableOverlay(u);
  if (drop_added(ou, v)) {
    drop_added(MutableOverlay(v), u);
    --added_count_;
    --degree_[u];
    --degree_[v];
    --num_edges_;
    return;
  }
  if (EdgeInBase(u, v, nullptr)) {
    const uint64_t key = EdgeKey(u, v);
    if (ou.removed.insert(key).second) {
      MutableOverlay(v).removed.insert(key);
      ++removed_count_;
      --degree_[u];
      --degree_[v];
      --num_edges_;
    }
  }
}

ApplyResult DeltaGraph::ApplyBatch(const UpdateBatch& batch,
                                   NormalizedBatch* normalized) {
  ApplyResult result;
  NormalizedBatch local;
  NormalizedBatch* net = normalized != nullptr ? normalized : &local;
  std::string error;
  if (!Normalize(batch, net, &error)) {
    result.ok = false;
    result.error = error;
    result.version = version_;
    return result;
  }
  if (FAULT_POINT(delta_apply)) {
    result.ok = false;
    result.error = "injected fault: delta_apply";
    result.version = version_;
    *net = NormalizedBatch{};
    return result;
  }

  return Install(*net, batch.add_vertices);
}

ApplyResult DeltaGraph::Install(const NormalizedBatch& net,
                                const std::vector<Label>& new_vertex_labels) {
  for (uint32_t i = 0; i < net.new_vertices.size(); ++i) {
    assert(net.new_vertices[i] == labels_.size());
    labels_.push_back(new_vertex_labels[i]);
    alive_.push_back(1);
    degree_.push_back(0);
  }
  for (const EdgeUpdate& e : net.removes) UninstallEdge(e.u, e.v);
  for (const EdgeUpdate& e : net.inserts) InstallEdge(e.u, e.v, e.edge_label);
  for (VertexId v : net.removed_vertices) {
    assert(degree_[v] == 0);
    alive_[v] = 0;
    labels_[v] = kTombstoneLabel;
  }
  ++version_;
  snapshot_.reset();  // invalidate the Materialize cache

  ApplyResult result;
  result.ok = true;
  result.version = version_;
  result.inserted_edges = net.inserts.size();
  result.removed_edges = net.removes.size();
  result.added_vertices = net.new_vertices.size();
  result.removed_vertices = net.removed_vertices.size();
  result.ignored_ops = net.ignored_ops;

  const uint64_t base_edges = base_->NumEdges();
  if (base_edges >= options_.compaction_min_edges &&
      static_cast<double>(OverlayEdges()) >
          options_.compaction_ratio * static_cast<double>(base_edges)) {
    Compact();
    result.compacted = true;
  }
  return result;
}

ApplyResult DeltaGraph::ApplyNormalized(
    const NormalizedBatch& net, const std::vector<Label>& new_vertex_labels) {
  ApplyResult result;
  result.version = version_;
  auto fail = [&](const char* msg) {
    result.ok = false;
    result.error = msg;
    return result;
  };
  // Structural validation only: the record was produced by Normalize at
  // this exact version, so semantic checks (edge existed, labels differ,
  // ...) would be redundant — but a corrupt-yet-CRC-valid or out-of-place
  // record must never write out of bounds.
  if (net.new_vertices.size() != new_vertex_labels.size()) {
    return fail("replay: new-vertex labels misaligned");
  }
  const uint32_t new_n =
      NumVertices() + static_cast<uint32_t>(net.new_vertices.size());
  for (uint32_t i = 0; i < net.new_vertices.size(); ++i) {
    if (net.new_vertices[i] != NumVertices() + i) {
      return fail("replay: non-dense new-vertex ids");
    }
    if (new_vertex_labels[i] == kTombstoneLabel ||
        new_vertex_labels[i] == kNoSuchLabel) {
      return fail("replay: reserved label on new vertex");
    }
  }
  for (const EdgeUpdate& e : net.inserts) {
    if (e.u >= new_n || e.v >= new_n || e.u == e.v) {
      return fail("replay: insert endpoint out of range");
    }
  }
  for (const EdgeUpdate& e : net.removes) {
    if (e.u >= new_n || e.v >= new_n || e.u == e.v) {
      return fail("replay: remove endpoint out of range");
    }
  }
  for (VertexId v : net.removed_vertices) {
    if (v >= NumVertices()) {
      return fail("replay: removed vertex out of range");
    }
  }
  return Install(net, new_vertex_labels);
}

std::vector<std::pair<Edge, Label>> DeltaGraph::CurrentEdges() const {
  std::vector<std::pair<Edge, Label>> edges;
  edges.reserve(num_edges_);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    ForEachNeighbor(v, [&](VertexId w, Label l) {
      if (v < w) edges.push_back({{v, w}, l});
      return true;
    });
  }
  return edges;
}

std::shared_ptr<const Graph> DeltaGraph::Materialize() const {
  if (snapshot_ != nullptr && snapshot_version_ == version_) {
    return snapshot_;
  }
  std::vector<Label> labels = labels_;  // original space; tombstones keep
                                        // kTombstoneLabel and stay isolated
  auto labeled = CurrentEdges();
  std::vector<Edge> edges;
  std::vector<Label> edge_labels;
  edges.reserve(labeled.size());
  edge_labels.reserve(labeled.size());
  for (const auto& [e, l] : labeled) {
    edges.push_back(e);
    edge_labels.push_back(l);
  }
  snapshot_ = std::make_shared<const Graph>(
      Graph::FromLabeledEdges(std::move(labels), edges, edge_labels));
  snapshot_version_ = version_;
  return snapshot_;
}

void DeltaGraph::Compact() {
  base_ = Materialize();
  overlay_.clear();
  added_count_ = 0;
  removed_count_ = 0;
  // labels_/alive_/degree_/num_edges_ already describe the current state.
}

}  // namespace daf::dyn

#ifndef DAF_DYN_DELTA_GRAPH_H_
#define DAF_DYN_DELTA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dyn/update_batch.h"
#include "graph/graph.h"

namespace daf::dyn {

/// A versioned dynamic-graph layer over the immutable CSR Graph: a compacted
/// *base* snapshot plus a per-vertex adjacency overlay holding the edges
/// inserted and removed since the last compaction. Batches apply atomically
/// (all-or-nothing) and advance a monotonically increasing version id; when
/// the overlay grows past a configurable fraction of the base, the graph is
/// compacted back into a fresh CSR (ids preserved) and the overlay cleared.
///
/// Identity and labels:
///   * Vertex ids are stable for the lifetime of a DeltaGraph — compaction
///     never renumbers. Removed vertices become *tombstones*: they keep
///     their id, lose all edges, and take the reserved kTombstoneLabel so
///     no query label can ever match them again.
///   * All label queries on this class are in the *original* (caller)
///     label space, not any snapshot's dense remap — dense label ids shift
///     whenever a batch introduces a new label, so nothing dynamic may key
///     on them. Materialized snapshots translate internally.
///   * Edge labels are verbatim (never remapped), as in Graph.
///
/// Concurrency: ApplyBatch/Compact are writer operations and must be
/// externally serialized (MatchService holds one update mutex); all read
/// accessors are safe against concurrent *reads* only. Snapshots returned
/// by Materialize are immutable and may be shared freely across threads.
class DeltaGraph {
 public:
  /// Label given to removed vertices; queries never carry it.
  static constexpr Label kTombstoneLabel = static_cast<Label>(-2);

  /// Overlay-to-base edge ratio beyond which ApplyBatch compacts.
  struct Options {
    double compaction_ratio = 0.25;
    /// Floor below which the ratio test is skipped (tiny graphs would
    /// otherwise compact on every batch).
    uint64_t compaction_min_edges = 4096;
  };

  explicit DeltaGraph(Graph base) : DeltaGraph(std::move(base), Options()) {}
  DeltaGraph(Graph base, Options options)
      : DeltaGraph(std::move(base), options, 0, /*restore=*/false) {}

  /// Restoring constructor (crash recovery): `base` is a materialized
  /// snapshot taken at `initial_version` — versioning resumes there
  /// instead of 0, so query-cache keys and subscriber resync markers stay
  /// monotone across a restart. Unlike the plain constructors, vertices
  /// carrying kTombstoneLabel in `base` are restored as *dead* tombstones
  /// (a materialized snapshot keeps them as isolated labeled vertices).
  static DeltaGraph Restore(Graph base, Options options,
                            uint64_t initial_version) {
    return DeltaGraph(std::move(base), options, initial_version,
                      /*restore=*/true);
  }

  DeltaGraph(const DeltaGraph&) = delete;
  DeltaGraph& operator=(const DeltaGraph&) = delete;
  DeltaGraph(DeltaGraph&&) = default;
  DeltaGraph& operator=(DeltaGraph&&) = default;

  // --- Versioning.

  /// Number of successfully applied batches; the initial graph is v0.
  uint64_t version() const { return version_; }

  // --- Writer operations (externally serialized).

  /// Computes the net effect of `batch` against the current state (see
  /// NormalizedBatch). Pure: does not modify the graph. Returns false with
  /// `*error` set when the batch is invalid (an endpoint id out of range,
  /// an operation on a tombstoned vertex, ...); partial application never
  /// happens because validation precedes any mutation in ApplyBatch.
  bool Normalize(const UpdateBatch& batch, NormalizedBatch* out,
                 std::string* error) const;

  /// Applies `batch` atomically: validates + normalizes, then installs the
  /// net changes and bumps the version. On failure (validation error or an
  /// injected `delta_apply` fault) the graph is untouched and the version
  /// does not advance. When `normalized` is non-null the net change set is
  /// returned to the caller (the seed list for CS maintenance and delta
  /// enumeration). May trigger compaction afterwards.
  ApplyResult ApplyBatch(const UpdateBatch& batch,
                         NormalizedBatch* normalized = nullptr);

  /// Installs an already-normalized net change verbatim: the WAL replay
  /// path. `net` must be exactly what Normalize produced against this
  /// version of the graph (persist::WalRecord stores it), and
  /// `new_vertex_labels` the labels of `net.new_vertices` in order. No
  /// re-normalization happens — re-deriving the net change from a raw
  /// batch would let removals shadow a label-change's reinsertion — and no
  /// fault point is polled, so replay is deterministic. Only structural
  /// preconditions are validated (id ranges, label/vertex alignment);
  /// returns false with the graph untouched when they fail.
  ApplyResult ApplyNormalized(const NormalizedBatch& net,
                              const std::vector<Label>& new_vertex_labels);

  /// Rebuilds the base CSR from the current state and clears the overlay.
  /// Ids are preserved; tombstones stay as isolated kTombstoneLabel
  /// vertices. Invalidates nothing — reads before/after agree.
  void Compact();

  // --- Read interface (original label space).

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(labels_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }
  uint64_t OverlayEdges() const {
    return added_count_ + removed_count_;
  }

  bool Alive(VertexId v) const { return alive_[v]; }

  /// Original-space label of v (kTombstoneLabel once removed).
  Label OriginalLabel(VertexId v) const { return labels_[v]; }

  uint32_t Degree(VertexId v) const { return degree_[v]; }

  /// True iff the undirected edge (u, v) currently exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// True iff (u, v) exists and carries `edge_label`.
  bool HasEdgeWithLabel(VertexId u, VertexId v, Label edge_label) const;

  /// Invokes fn(neighbor, edge_label) for every current neighbor of v, in
  /// unspecified order. `fn` returning false stops the iteration early.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    const Overlay* ov = OverlayFor(v);
    if (InBase(v)) {
      const Graph& b = *base_;
      auto neighbors = b.Neighbors(v);
      auto elabels = b.NeighborEdgeLabels(v);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        if (ov != nullptr && ov->removed.count(EdgeKey(v, neighbors[i]))) {
          continue;
        }
        if (!fn(neighbors[i], elabels[i])) return;
      }
    }
    if (ov != nullptr) {
      for (const auto& [w, l] : ov->added) {
        if (!fn(w, l)) return;
      }
    }
  }

  /// Number of current neighbors of v carrying original label `l` (the NLF
  /// value in the dynamic layer).
  uint32_t NeighborOriginalLabelCount(VertexId v, Label l) const;

  /// All current vertex ids carrying original label `l` (ascending). Used
  /// to seed single-vertex-query deltas and tests; O(overlay) on top of the
  /// base label index.
  std::vector<VertexId> VerticesWithOriginalLabel(Label l) const;

  /// An immutable CSR snapshot of the current state (ids preserved,
  /// tombstones as isolated kTombstoneLabel vertices). Cached: repeated
  /// calls at the same version return the same instance, and ApplyBatch
  /// invalidates the cache, so a static workload pays for at most one
  /// materialization per version actually queried.
  std::shared_ptr<const Graph> Materialize() const;

  /// Current edge list with labels ((u, v) with u < v), for tests and
  /// compaction.
  std::vector<std::pair<Edge, Label>> CurrentEdges() const;

 private:
  DeltaGraph(Graph base, Options options, uint64_t initial_version,
             bool restore);

  /// The shared install path of ApplyBatch and ApplyNormalized: pushes new
  /// vertices, uninstalls removes, installs inserts, tombstones removed
  /// vertices, bumps the version, and maybe compacts. Preconditions were
  /// validated by the caller.
  ApplyResult Install(const NormalizedBatch& net,
                      const std::vector<Label>& new_vertex_labels);

  /// Per-vertex overlay, stored *symmetrically*: an added edge (u, v)
  /// appears in both endpoints' `added` lists and a removed base edge's
  /// key in both `removed` sets, so every per-vertex read is local.
  struct Overlay {
    /// Edges added since the last compaction: (neighbor, edge label),
    /// unordered. Small per vertex; linear scans are fine.
    std::vector<std::pair<VertexId, Label>> added;
    /// Base edges removed since the last compaction, by edge key.
    std::unordered_set<uint64_t> removed;
  };

  bool InBase(VertexId v) const { return v < base_->NumVertices(); }
  const Overlay* OverlayFor(VertexId v) const {
    auto it = overlay_.find(v);
    return it == overlay_.end() ? nullptr : &it->second;
  }
  Overlay& MutableOverlay(VertexId v) { return overlay_[v]; }

  /// Dense label of original label `l` in the base snapshot, or
  /// query_extract's kNoSuchLabel when absent from the base.
  Label BaseDenseLabel(Label l) const;

  void InstallEdge(VertexId u, VertexId v, Label edge_label);
  void UninstallEdge(VertexId u, VertexId v);
  bool EdgeInBase(VertexId u, VertexId v, Label* label_out) const;
  bool OverlayEdgeLabel(VertexId u, VertexId v, Label* label_out) const;
  /// Current existence + label of (u, v), overlay-aware.
  bool EdgeLabelNow(VertexId u, VertexId v, Label* label_out) const;

  Options options_;
  std::shared_ptr<const Graph> base_;
  std::vector<Label> labels_;   // original space; kTombstoneLabel when dead
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> degree_;
  std::unordered_map<VertexId, Overlay> overlay_;
  uint64_t num_edges_ = 0;
  uint64_t added_count_ = 0;    // overlay insertions
  uint64_t removed_count_ = 0;  // overlay removals of base edges
  uint64_t version_ = 0;
  mutable std::shared_ptr<const Graph> snapshot_;  // cache for Materialize
  mutable uint64_t snapshot_version_ = 0;
};

}  // namespace daf::dyn

#endif  // DAF_DYN_DELTA_GRAPH_H_

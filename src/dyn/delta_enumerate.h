#ifndef DAF_DYN_DELTA_ENUMERATE_H_
#define DAF_DYN_DELTA_ENUMERATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "daf/dynamic_cs.h"
#include "dyn/delta_graph.h"
#include "dyn/update_batch.h"
#include "graph/graph.h"
#include "util/stop.h"

namespace daf::dyn {

struct DeltaEnumOptions {
  /// Optional early-exit predicate (not owned), polled periodically.
  const StopCondition* stop = nullptr;
  /// Cap on reported embeddings (0 = unlimited). Hitting it clears
  /// `complete`.
  uint64_t limit = 0;
};

struct DeltaEnumResult {
  /// False when `stop` fired or `limit` was hit — the embedding list is
  /// then a prefix, not the full delta.
  bool complete = true;
  uint64_t recursive_calls = 0;
  /// Each embedding maps query vertex u to embedding[u].
  std::vector<std::vector<VertexId>> embeddings;
};

/// Delta-driven re-enumeration for one standing query: instead of
/// re-matching the whole graph after a batch, every embedding in the delta
/// must touch a net-changed edge, so enumeration is *seeded* there — one
/// query edge pinned onto each changed data edge (both orientations), the
/// rest of the query matched by DFS outward from the pinned pair, pruned
/// by the DynamicCandidateSpace bitmaps and direct DeltaGraph adjacency.
///
/// Exactness (net-batch semantics):
///   * `Created` enumerates embeddings of the *post-batch* graph that use
///     at least one net-inserted edge — exactly the embeddings the batch
///     created (an embedding using no inserted edge existed before; one
///     using any inserted edge could not have).
///   * `Destroyed` enumerates embeddings of the *pre-batch* graph that use
///     at least one net-removed edge — exactly the embeddings the batch
///     destroyed. It must therefore run BEFORE DeltaGraph::ApplyBatch,
///     against the pre-batch graph and pre-batch bitmaps.
///   An edge label change appears as remove(old)+insert(new), destroying
///   and creating accordingly. Vertex removals were expanded into
///   incident-edge removals by Normalize; new/removed vertices only
///   matter directly for single-vertex queries, which are seeded on the
///   vertex lists instead.
///
/// Duplicate suppression (an embedding may use several changed edges, and
/// under homomorphism several query edges may map onto one data edge): an
/// embedding M found from seed (changed edge i, query edge qe, orientation
/// o) is reported iff i is the *minimum* changed-edge index used by M and
/// (qe, o) is lexicographically minimal among the query-edge/orientation
/// pairs of M that map onto edge i — each delta embedding is counted from
/// exactly one seed.
class DeltaEnumerator {
 public:
  /// `cs` must outlive this object and stay in sync with the DeltaGraph
  /// passed to Created/Destroyed (post-batch bitmaps for Created,
  /// pre-batch bitmaps for Destroyed).
  DeltaEnumerator(const Graph& query, const DynamicCandidateSpace& cs);

  /// Embeddings created by the net batch. Call after ApplyBatch and after
  /// DynamicCandidateSpace::Apply.
  DeltaEnumResult Created(const DeltaGraph& dg, const NormalizedBatch& net,
                          const DeltaEnumOptions& options) const;

  /// Embeddings destroyed by the net batch. Call before ApplyBatch, with
  /// the net batch obtained from DeltaGraph::Normalize.
  DeltaEnumResult Destroyed(const DeltaGraph& dg, const NormalizedBatch& net,
                            const DeltaEnumOptions& options) const;

 private:
  struct SeedOrder {
    std::vector<VertexId> order;  // BFS order; order[0], order[1] = edge
    std::vector<uint32_t> pos;    // inverse of order
  };

  /// Shared engine: `changed` are the seed data edges (with the labels
  /// they carry in `dg`), `changed_vertices` seeds single-vertex queries.
  DeltaEnumResult Enumerate(const DeltaGraph& dg,
                            const std::vector<EdgeUpdate>& changed,
                            const std::vector<VertexId>& changed_vertices,
                            const DeltaEnumOptions& options) const;

  const Graph& query_;
  const DynamicCandidateSpace& cs_;
  std::vector<std::pair<Edge, Label>> query_edges_;  // canonical, u < v
  std::vector<SeedOrder> seed_orders_;  // one per query edge
};

}  // namespace daf::dyn

#endif  // DAF_DYN_DELTA_ENUMERATE_H_

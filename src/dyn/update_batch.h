#ifndef DAF_DYN_UPDATE_BATCH_H_
#define DAF_DYN_UPDATE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace daf::dyn {

/// One edge operation of an update batch. Endpoints are DeltaGraph vertex
/// ids; `edge_label` is compared verbatim (no dense remapping), 0 being the
/// "unlabeled" label, exactly as in Graph::FromLabeledEdges.
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  Label edge_label = 0;  // ignored by removals
};

/// A batch of graph updates, applied atomically by DeltaGraph::ApplyBatch:
/// either every operation takes effect and the graph version advances by
/// one, or (on validation failure / injected fault) nothing changes.
///
/// Operations are interpreted in this order: vertex additions first (each
/// gets the next dense id, so a batch may add a vertex and immediately
/// connect it), then all edge insertions, then all edge removals —
/// removals take precedence, so an edge both inserted and removed in one
/// batch ends up absent (a net no-op if it did not exist before, a net
/// removal if it did) — then vertex removals, each of which also removes
/// the vertex's remaining incident edges.
///
/// The batch-dynamic *semantics* follow "GPU-Accelerated Batch-Dynamic
/// Subgraph Matching": the observable effect of a batch is its net change
/// against the pre-batch graph, and the embedding deltas streamed to
/// standing queries are exactly the embeddings destroyed by the net
/// removals plus the ones created by the net insertions.
struct UpdateBatch {
  /// Labels (original label space) of vertices to add; ids are assigned
  /// densely after the current NumVertices, in order.
  std::vector<Label> add_vertices;
  std::vector<EdgeUpdate> insert_edges;
  std::vector<EdgeUpdate> remove_edges;
  std::vector<VertexId> remove_vertices;

  bool Empty() const {
    return add_vertices.empty() && insert_edges.empty() &&
           remove_edges.empty() && remove_vertices.empty();
  }

  // Convenience builders.
  UpdateBatch& AddVertex(Label label) {
    add_vertices.push_back(label);
    return *this;
  }
  UpdateBatch& InsertEdge(VertexId u, VertexId v, Label edge_label = 0) {
    insert_edges.push_back({u, v, edge_label});
    return *this;
  }
  UpdateBatch& RemoveEdge(VertexId u, VertexId v) {
    remove_edges.push_back({u, v, 0});
    return *this;
  }
  UpdateBatch& RemoveVertex(VertexId v) {
    remove_vertices.push_back(v);
    return *this;
  }
};

/// The net effect of an UpdateBatch against the pre-batch graph, computed
/// by DeltaGraph::Normalize: self-loops, duplicate inserts, removals of
/// absent edges, and insert+remove cancellations are resolved, and vertex
/// removals are expanded into removals of their incident edges. An edge
/// whose label changes (remove + reinsert with a different label) appears
/// in *both* lists — it destroys embeddings that required the old label and
/// creates ones that require the new.
///
/// This is the seed list of the delta machinery: incremental CS maintenance
/// marks the endpoints dirty, and delta enumeration pins one query edge to
/// each net-changed data edge.
struct NormalizedBatch {
  std::vector<EdgeUpdate> inserts;        // absent before, present after
  std::vector<EdgeUpdate> removes;        // present before (old label), absent after
  std::vector<VertexId> new_vertices;     // ids assigned to add_vertices
  std::vector<VertexId> removed_vertices; // tombstoned by this batch
  uint64_t ignored_ops = 0;  // self-loops, duplicate/absent-edge ops, ...

  bool Empty() const {
    return inserts.empty() && removes.empty() && new_vertices.empty() &&
           removed_vertices.empty();
  }
};

/// Outcome of DeltaGraph::ApplyBatch (also surfaced, with delta counts
/// added, as service::UpdateOutcome by MatchService::ApplyUpdates).
struct ApplyResult {
  bool ok = true;      // false => `error`; the graph is unchanged
  std::string error;
  uint64_t version = 0;  // graph version after the batch
  uint64_t inserted_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t added_vertices = 0;
  uint64_t removed_vertices = 0;
  uint64_t ignored_ops = 0;
  /// True when this batch tripped the overlay-compaction trigger — the
  /// persistence layer rolls the WAL into a fresh snapshot on compaction.
  bool compacted = false;
};

/// Packs an undirected edge into one 64-bit key (order-insensitive).
inline uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace daf::dyn

#endif  // DAF_DYN_UPDATE_BATCH_H_
